// vpn-mpls reproduces the paper's Fig 8 scenario: the same high-level
// goal as the GRE example, but the NM is told to realise it as an MPLS
// LSP — the CONMan script barely changes while the device-level
// configuration is completely different (label allocation, ILM/NHLFE
// cross-connects). That indifference of the management plane to the
// data-plane technology is the paper's central claim.
package main

import (
	"fmt"
	"log"

	"conman"
)

func main() {
	tb, err := conman.BuildFig4()
	if err != nil {
		log.Fatal(err)
	}

	path, scripts, err := conman.ConfigureVPN(tb, conman.Fig4Goal(), "MPLS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configured path: %s\n\n", path.Modules())

	fmt.Println("CONMan scripts (Fig 8b):")
	for _, s := range scripts {
		fmt.Printf("--- %s\n%s\n", s.Device, s.Script())
	}

	fmt.Println("\nlabel-switching state derived by the modules:")
	for _, dev := range []conman.DeviceID{"A", "B", "C"} {
		fmt.Printf("--- %s\n", dev)
		for _, l := range tb.Devices[dev].Kernel.ExecLog() {
			fmt.Println("  " + l)
		}
	}

	if err := tb.VerifyConnectivity(8); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverified: site S1 <-> S2 traffic rides the LSP, label-swapped at B")

	// The far-end LSR reported establishment to the NM unsolicited.
	for _, n := range tb.NM.Notifies() {
		fmt.Printf("notification: %s from %s\n", n.Kind, n.Module)
	}
}
