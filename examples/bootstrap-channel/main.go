// bootstrap-channel demonstrates the paper's §III-A straw-man management
// channel: management frames encapsulated directly in Ethernet and
// flooded hop by hop, so the channel needs NO pre-configuration at all —
// unlike the UDP channel over the dedicated management network. The NM
// lives on router A and reaches router C two hops away before any
// addresses exist anywhere.
package main

import (
	"fmt"
	"log"

	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
	"conman/internal/msg"
	"conman/internal/netsim"
	"conman/internal/nm"
)

func main() {
	net := netsim.New()

	// Three bare routers in a chain. No IP addresses, no configuration.
	var devs []*device.Device
	for _, id := range []core.DeviceID{"A", "B", "C"} {
		d, err := device.New(net, id, kernel.RoleRouter, "eth0", "eth1")
		if err != nil {
			log.Fatal(err)
		}
		devs = append(devs, d)
	}
	mustConnect(net, "AB", netsim.PortID{Device: "A", Name: "eth1"}, netsim.PortID{Device: "B", Name: "eth0"})
	mustConnect(net, "BC", netsim.PortID{Device: "B", Name: "eth1"}, netsim.PortID{Device: "C", Name: "eth0"})

	// Every device attaches its MA to the self-bootstrapping flood
	// channel; the NM additionally rides on device A's node.
	manager := nm.New()
	manager.AttachChannel(devs[0].FloodNode().Endpoint(msg.NMName))
	for _, d := range devs {
		d.MA.AttachChannel(d.FloodNode().Endpoint(string(d.ID)))
	}
	for _, d := range devs {
		if err := d.MA.Start(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("devices that reached the NM over the un-configured channel:")
	for _, id := range manager.Devices() {
		info, _ := manager.Device(id)
		fmt.Printf("  %s (hello=%v, %d ports reported)\n", id, info.Hello, len(info.Topology.Ports))
	}

	// The NM can invoke primitives across multiple hops.
	if _, err := manager.ShowPotential("C"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("showPotential(C) answered across two flooded hops — no addresses needed")
}

func mustConnect(net *netsim.Network, name string, a, b netsim.PortID) {
	if _, err := net.Connect(name, a, b); err != nil {
		log.Fatal(err)
	}
}
