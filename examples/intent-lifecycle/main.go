// Command intent-lifecycle walks the declarative API end to end on the
// paper's Fig 4 testbed: dry-run plan, apply, idempotent re-plan,
// failure repair, and destroy.
package main

import (
	"fmt"
	"log"

	"conman"
)

func main() {
	tb, err := conman.BuildFig4()
	if err != nil {
		log.Fatal(err)
	}
	intent := conman.VPNIntent(conman.Fig4Goal(), "GRE-IP tunnel")

	// 1. Plan is a dry run: nothing is sent until Apply.
	plan, err := tb.NM.Plan(intent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Render())

	// 2. Apply reconciles the network toward the intent.
	if err := tb.NM.Apply(plan); err != nil {
		log.Fatal(err)
	}
	fmt.Println("applied.")

	// 3. A second Plan is empty: Apply is idempotent.
	again, err := tb.NM.Plan(intent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-plan empty: %v (%d components in place)\n", again.Empty(), again.InPlace)

	// 4. Kill a component out of band (the g/l pipe carrying the GRE
	// tunnel on router A); the next cycle heals exactly the damage.
	if err := tb.NM.Delete(conman.DeleteRequest{
		Kind:   conman.ComponentPipe,
		Module: conman.Ref(conman.NameGRE, "A", "l"),
		ID:     "P1",
	}); err != nil {
		log.Fatal(err)
	}
	repair, err := tb.NM.Plan(intent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failure:\n%s", repair.Render())
	if err := tb.NM.Apply(repair); err != nil {
		log.Fatal(err)
	}
	fmt.Println("healed.")

	// 5. Destroy tears the whole path back down.
	down, err := tb.NM.Destroy(intent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("destroyed %d device batches; path gone.\n", len(down.Deletes))
}
