// Daemon: autonomous reconciliation. Two customer VPNs run over the
// shared-core diamond under the reconciliation daemon; the program
// cuts the wire both of them ride and never calls Reconcile — the cut
// surfaces as carrier-loss topology re-reports, the daemon debounces
// them into a dirty set and reconciles until the network converges,
// and both VPNs come back over the standby arm.
package main

import (
	"fmt"
	"log"
	"time"

	"conman"
)

// wait bounds each convergence; the daemon is typically done in tens
// of milliseconds.
const wait = 15 * time.Second

func main() {
	tb, pairs, err := conman.BuildDiamondShared(2)
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
			log.Fatal(err)
		}
	}

	// Start the control loop. The daemon reconciles immediately, so the
	// initial configuration also needs no explicit call.
	d, stop := tb.StartDaemon(conman.DaemonConfig{})
	defer stop()
	if err := d.WaitConverged(0, wait); err != nil {
		log.Fatal(err)
	}
	report(d, "after initial convergence")
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(7000+100*i)); err != nil {
			log.Fatalf("pair %d: %v", p.Index, err)
		}
	}
	fmt.Println("both customer pairs deliver — configured by the daemon alone")

	// The fault. Both VPNs tunnel via transit switch B1; cutting A-B1
	// strands them. Nobody calls Reconcile from here on.
	gen := d.ConvergeGen()
	fmt.Println("\ncutting wire A-B1 ...")
	if err := tb.Net.SetMediumUp("A-B1", false); err != nil {
		log.Fatal(err)
	}
	if err := d.WaitConverged(gen, wait); err != nil {
		log.Fatal(err)
	}
	report(d, "after autonomous healing")
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(7500+100*i)); err != nil {
			log.Fatalf("pair %d after heal: %v", p.Index, err)
		}
	}
	fmt.Println("both customer pairs deliver again — rerouted via B2, no operator")
}

// report prints the daemon's own view: the same data `conman doctor`
// renders from /status.
func report(d *conman.Daemon, when string) {
	st := d.Status()
	fmt.Printf("\n%s: healthy=%v (generation %d)\n", when, st.Healthy(), st.ConvergeGen)
	for _, h := range st.Intents {
		fmt.Printf("  intent %s: devices %v, %d exclusive / %d shared components\n",
			h.Name, h.Devices, h.Exclusive, h.Shared)
	}
}
