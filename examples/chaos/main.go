// Chaos: multi-failure convergence on a generated fabric. A 64-switch
// ring carries two customer VPNs under the reconciliation daemon; one
// seeded episode cuts two wires and kills a transit switch — all
// concurrently — and nobody calls Reconcile. The min-cut guard keeps
// the intents satisfiable, so the only acceptable outcome is a healed,
// delivering network.
package main

import (
	"fmt"
	"log"
	"time"

	"conman"
)

const wait = 30 * time.Second

func main() {
	w, err := conman.Ring(64)
	if err != nil {
		log.Fatal(err)
	}
	tb, pairs, err := conman.BuildTopoVLAN(w, 2)
	if err != nil {
		log.Fatal(err)
	}
	defer tb.Close()
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("fabric: %s %s — %d devices, %d wires, %d intents\n",
		w.Family, w.Param, len(w.Devices), len(w.Wires), len(pairs))

	d, stop := tb.StartDaemon(conman.DaemonConfig{})
	defer stop()
	if err := d.WaitConverged(0, wait); err != nil {
		log.Fatal(err)
	}
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(8000+100*i)); err != nil {
			log.Fatalf("pair %d: %v", p.Index, err)
		}
	}
	fmt.Println("converged; both customer pairs deliver end to end")

	// The episode: seeded victim choice under the min-cut guard, all
	// faults injected concurrently, re-convergence fully autonomous.
	protect, err := w.CrossCorePairs(len(pairs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninjecting 2 wire cuts + 1 device kill, concurrently ...")
	rep, err := tb.RunChaos(d, w, protect, conman.ChaosSpec{
		Seed: 7, Wires: 2, Devices: 1, Timeout: wait,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range rep.Wires {
		fmt.Printf("  cut wire %s\n", name)
	}
	for _, dev := range rep.Devices {
		fmt.Printf("  killed device %s\n", dev)
	}
	fmt.Printf("  (%d candidates rejected by the min-cut guard)\n", rep.Guarded)

	st := d.Status()
	fmt.Printf("\nafter autonomous healing: healthy=%v (generation %d)\n",
		st.Healthy(), st.ConvergeGen)
	for _, h := range st.Intents {
		fmt.Printf("  intent %s: devices %v\n", h.Name, h.Devices)
	}
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(8500+100*i)); err != nil {
			log.Fatalf("pair %d after heal: %v", p.Index, err)
		}
	}
	fmt.Println("both customer pairs deliver again — no operator, no Reconcile call")
}
