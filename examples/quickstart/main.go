// Quickstart: build the paper's Fig 4 testbed, let the NM discover the
// network's potential, configure site-to-site VPN connectivity with one
// call, and verify it by probing across the customer sites.
package main

import (
	"fmt"
	"log"

	"conman"
)

func main() {
	// The testbed: ISP routers A, B, C between customer routers D and E,
	// each ISP device running a CONMan management agent; the NM has
	// already collected topology reports and showPotential answers.
	tb, err := conman.BuildFig4()
	if err != nil {
		log.Fatal(err)
	}

	// What does the NM know? (Table IV)
	info, _ := tb.NM.Device("A")
	fmt.Println("modules on device A:")
	for _, abs := range info.Modules {
		fmt.Printf("  %-12s switching %s\n", abs.Ref, abs.Switch.ModesString())
	}

	// One high-level goal: connect customer C1's two sites.
	goal := conman.Fig4Goal()
	path, scripts, err := conman.ConfigureVPN(tb, goal, "") // "" = let the NM choose
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchosen path (%s): %s\n", path.Describe(), path.Modules())
	fmt.Println("\nCONMan script executed on router A:")
	for _, s := range scripts {
		if s.Device == "A" {
			fmt.Println(s.Script())
		}
	}

	// Prove it works: probe from site S1 to site S2 through the tunnel.
	if err := tb.VerifyConnectivity(42); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsite S1 <-> site S2 connectivity verified (probe + reply + isolation)")
}
