// vpn-gre reproduces the paper's Fig 7 scenario: the NM configures a
// provider-provisioned VPN over a GRE-IP tunnel, and the example shows
// everything the human manager never has to see — the negotiated keys,
// sequence numbers, tunnel endpoints — surfacing in the device-level
// commands the modules generated.
package main

import (
	"fmt"
	"log"

	"conman"
)

func main() {
	tb, err := conman.BuildFig4()
	if err != nil {
		log.Fatal(err)
	}
	tb.NM.EnableMessageLog()

	path, scripts, err := conman.ConfigureVPN(tb, conman.Fig4Goal(), "GRE-IP tunnel")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configured path: %s\n\n", path.Modules())

	fmt.Println("management-channel traffic during establishment (Fig 3):")
	for _, line := range tb.NM.MessageLog() {
		fmt.Println("  " + line)
	}

	fmt.Println("\nCONMan scripts (Fig 7b):")
	for _, s := range scripts {
		fmt.Printf("--- %s\n%s\n", s.Device, s.Script())
	}

	fmt.Println("\ndevice-level commands derived by the modules on A:")
	for _, l := range tb.Devices["A"].Kernel.ExecLog() {
		fmt.Println("  " + l)
	}

	if err := tb.VerifyConnectivity(7); err != nil {
		log.Fatal(err)
	}
	c := tb.NM.Counters()
	fmt.Printf("\nverified; NM sent %d and received %d messages (paper: 3n+2=11, 2n+2=8 for n=3)\n",
		c.Sent(), c.Received())
}
