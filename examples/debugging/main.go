// debugging demonstrates the paper's §III-C.2 debugging story: after the
// NM configures the GRE VPN, we inject the faults the paper lists —
// a cut wire and an invalid filter blocking the tunnel endpoints — and
// show how the NM localises them: the wire cut shows up in the topology
// map, the filter through module self-tests (§II-D.2) and showActual.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"conman"
	"conman/internal/core"
	"conman/internal/kernel"
)

func main() {
	tb, err := conman.BuildFig4()
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := conman.ConfigureVPN(tb, conman.Fig4Goal(), "GRE-IP tunnel"); err != nil {
		log.Fatal(err)
	}
	if err := tb.VerifyConnectivity(1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("VPN configured and verified")

	greA := core.Ref(core.NameGRE, "A", "l")

	// Healthy baseline: the GRE module can reach its tunnel endpoint.
	ok, detail, err := tb.NM.SelfTest(greA, "P1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-test %s: ok=%v (%s)\n", greA, ok, detail)

	// Fault 1: "a wire getting cut" — take the B-C link down and watch
	// the self-test localise the loss of endpoint connectivity.
	fmt.Println("\n--- cutting the B-C wire")
	if err := tb.Net.SetMediumUp("BC", false); err != nil {
		log.Fatal(err)
	}
	ok, detail, _ = tb.NM.SelfTest(greA, "P1")
	fmt.Printf("self-test %s: ok=%v (%s)\n", greA, ok, detail)
	// The refreshed topology report shows the port detached.
	if err := tb.Devices["B"].MA.ReportTopology(); err != nil {
		log.Fatal(err)
	}
	info, _ := tb.NM.Device("B")
	for _, p := range info.Topology.Ports {
		fmt.Printf("  topology: B port %s attached=%v\n", p.Name, p.Attached)
	}
	if err := tb.Net.SetMediumUp("BC", true); err != nil {
		log.Fatal(err)
	}

	// Fault 2: "an invalid filter rule in the network that blocks IP
	// connectivity between the tunnel end points" (§III-C.2). Install a
	// rogue drop filter on B and let the self-test detect it; the NM
	// then inspects B's state with showActual and finds the rule.
	fmt.Println("\n--- installing a rogue filter on router B")
	tb.Devices["B"].Kernel.AddFilter(kernel.FilterEntry{
		ID:        "rogue",
		DstPrefix: netip.MustParsePrefix("204.9.169.1/32"), // C's tunnel endpoint
		Action:    core.ActionDrop,
	})
	ok, detail, _ = tb.NM.SelfTest(greA, "P1")
	fmt.Printf("self-test %s: ok=%v (%s)\n", greA, ok, detail)

	states, err := tb.NM.ShowActual("B")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  showActual(B) module states inspected:", len(states))
	for _, f := range tb.Devices["B"].Kernel.Filters() {
		fmt.Printf("  found filter %q dst=%s hits=%d -> the culprit\n", f.ID, f.DstPrefix, f.Hits)
	}
	tb.Devices["B"].Kernel.DelFilter("rogue")
	ok, detail, _ = tb.NM.SelfTest(greA, "P1")
	fmt.Printf("after removal: ok=%v (%s)\n", ok, detail)
}
