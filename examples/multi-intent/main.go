// Multi-intent: the NM holds all the goals. Two customer VPNs cross the
// same diamond of switches; the intent store configures their union in
// one Reconcile (shared transit state created once and refcounted),
// proves reconciliation is idempotent, and then withdraws one VPN —
// removing exactly its unshared components while the other keeps
// delivering.
package main

import (
	"fmt"
	"log"

	"conman"
)

func main() {
	// The shared-core diamond: customer pairs (D1,E1) and (D2,E2) on
	// edge switches A and C, transit switches B1 and B2. Both VPNs must
	// coexist on every managed device.
	tb, pairs, err := conman.BuildDiamondShared(2)
	if err != nil {
		log.Fatal(err)
	}

	// Register both goals. Submitting sends nothing — the store is
	// desired state, and Reconcile derives configuration from its union.
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
			log.Fatal(err)
		}
	}
	plan, err := tb.NM.PlanStore()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dry run of the union of both goals:")
	fmt.Print(plan.Render())

	// Reconcile: shared pipes and switch rules are configured once.
	if err := tb.NM.ApplyStore(plan); err != nil {
		log.Fatal(err)
	}
	for _, p := range pairs {
		if err := tb.VerifyPair(p, uint32(4000+100*p.Index)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nboth customer pairs verified over the shared core")

	// Idempotence: reconciling again observes, matches, sends nothing.
	again, err := tb.NM.Reconcile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-reconcile: empty=%v (%d components in place, %d shared)\n",
		again.Empty(), again.InPlace, again.Shared)

	// Withdraw one VPN: only its unshared components (the customer-port
	// classification at the edges) are deleted.
	if err := tb.NM.Withdraw("vpn-c1"); err != nil {
		log.Fatal(err)
	}
	down, err := tb.NM.Reconcile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwithdrawal of vpn-c1 executed:")
	for _, ds := range down.Deletes {
		for _, line := range ds.Rendered {
			fmt.Printf("  %s: %s\n", ds.Device, line)
		}
	}
	if err := tb.VerifyPair(pairs[1], 4500); err != nil {
		log.Fatal(err)
	}
	fmt.Println("vpn-c2 still delivers — shared components survived the withdrawal")
}
