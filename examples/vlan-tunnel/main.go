// vlan-tunnel reproduces the paper's Fig 9 scenario: the same management
// logic that built GRE and MPLS VPNs configures a Layer-2 VPN across
// three CatOS switches via 802.1Q tunneling (QinQ) — "with CONMan in
// place, the same management logic can deal with new data-plane
// technologies as and when they arise".
package main

import (
	"fmt"
	"log"

	"conman"
)

func main() {
	tb, err := conman.BuildFig9()
	if err != nil {
		log.Fatal(err)
	}

	path, scripts, err := conman.ConfigureVPN(tb, conman.Fig9Goal(), "VLAN tunnel")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configured path: %s\n\n", path.Modules())

	fmt.Println("CONMan scripts (Fig 9b):")
	for _, s := range scripts {
		fmt.Printf("--- switch %s\n%s\n", s.Device, s.Script())
	}

	fmt.Println("\nCatOS commands derived by the modules:")
	for _, dev := range []conman.DeviceID{"A", "B", "C"} {
		fmt.Printf("--- switch %s\n", dev)
		for _, l := range tb.Devices[dev].Kernel.ExecLog() {
			fmt.Println("  " + l)
		}
	}

	if err := tb.VerifyConnectivity(9); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nverified: customer frames ride VLAN 22 across the switches (QinQ at the edges)")
}
