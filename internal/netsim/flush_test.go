package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
)

type countingHandler struct{ n atomic.Int64 }

func (h *countingHandler) HandleFrame(port string, frame []byte) { h.n.Add(1) }

// TestFlushBarrier pins the completion barrier: frames sent from many
// goroutines race each other's pumps (a Send hitting an active pump
// enqueues and returns), but after Flush every delivery has been
// handed to its receiver.
func TestFlushBarrier(t *testing.T) {
	net := New()
	h := &countingHandler{}
	net.AddDevice("A", h)
	net.AddDevice("B", h)
	if _, err := net.AddPort("A", "eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddPort("B", "eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Connect("AB",
		PortID{Device: "A", Name: "eth0"}, PortID{Device: "B", Name: "eth0"}); err != nil {
		t.Fatal(err)
	}

	const senders, frames = 16, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			from := PortID{Device: "A", Name: "eth0"}
			if s%2 == 1 {
				from = PortID{Device: "B", Name: "eth0"}
			}
			for i := 0; i < frames; i++ {
				if err := net.Send(from, []byte{byte(s), byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	net.Flush()
	if got, want := h.n.Load(), int64(senders*frames); got != want {
		t.Errorf("delivered %d frames after Flush, want %d", got, want)
	}
	// Flush on a quiescent network returns immediately.
	net.Flush()
}
