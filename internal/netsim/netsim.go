// Package netsim is the physical substrate of the reproduction: devices
// with named ports (NICs), point-to-point links and broadcast buses, and
// deterministic frame delivery. It stands in for the Ethernet-connected
// Linux testbed of the paper's §III-A.
//
// Delivery model: Send enqueues a frame for every other live port on the
// medium; a single FIFO queue is then pumped until quiescence, invoking
// each receiving device's FrameHandler synchronously. Handlers may call
// Send re-entrantly (forwarding); the pump guard turns that into iterative
// queue growth rather than recursion, so simulations are deterministic and
// cannot blow the stack. A step limit bounds broadcast storms.
package netsim

import (
	"fmt"
	"sort"
	"sync"

	"conman/internal/core"
	"conman/internal/packet"
)

// PortID names a port globally: device plus interface name.
type PortID struct {
	Device core.DeviceID
	Name   string // e.g. "eth0", "gigabitethernet0/7"
}

func (p PortID) String() string { return string(p.Device) + ":" + p.Name }

// Port is one attachment point of a device to a medium.
type Port struct {
	ID     PortID
	MAC    packet.MAC
	medium *Medium
}

// Medium connects two or more ports: a point-to-point link (2 ports) or a
// broadcast bus (>2). Media can be taken down for fault injection.
type Medium struct {
	Name  string
	ports []*Port
	up    bool
}

// Up reports whether the medium is currently passing frames.
func (m *Medium) Up() bool { return m.up }

// Ports returns the identifiers of the attached ports.
func (m *Medium) Ports() []PortID {
	ids := make([]PortID, len(m.ports))
	for i, p := range m.ports {
		ids[i] = p.ID
	}
	return ids
}

// Broadcast reports whether the medium attaches more than two ports.
func (m *Medium) Broadcast() bool { return len(m.ports) > 2 }

// FrameHandler is implemented by devices: it receives every frame
// delivered to one of the device's ports.
type FrameHandler interface {
	HandleFrame(port string, frame []byte)
}

// Capture is one captured frame on a medium.
type Capture struct {
	Seq   int
	From  PortID
	Bytes []byte
}

type delivery struct {
	to    *Port
	frame []byte
}

// Network is the collection of devices, ports and media, plus the
// delivery queue.
type Network struct {
	mu       sync.Mutex
	quiet    *sync.Cond // signalled when the pump drains the queue
	handlers map[core.DeviceID]FrameHandler
	ports    map[PortID]*Port
	media    map[string]*Medium
	carrier  map[core.DeviceID]func()
	tcn      map[core.DeviceID]func()
	queue    []delivery
	pumping  bool
	seq      int
	macSeq   uint32
	captures map[string][]Capture
	capture  map[string]bool
	// LossFunc, when set, is consulted per delivery; returning true drops
	// the frame (failure injection for tests).
	LossFunc func(to PortID, frame []byte) bool
	// MaxSteps bounds a single pump run. Exceeding it panics: a
	// forwarding loop is a bug in the configuration under test.
	MaxSteps int

	txCount map[PortID]uint64
	rxCount map[PortID]uint64
}

// New creates an empty network.
func New() *Network {
	n := &Network{
		handlers: make(map[core.DeviceID]FrameHandler),
		ports:    make(map[PortID]*Port),
		media:    make(map[string]*Medium),
		carrier:  make(map[core.DeviceID]func()),
		tcn:      make(map[core.DeviceID]func()),
		captures: make(map[string][]Capture),
		capture:  make(map[string]bool),
		MaxSteps: 1_000_000,
		txCount:  make(map[PortID]uint64),
		rxCount:  make(map[PortID]uint64),
	}
	n.quiet = sync.NewCond(&n.mu)
	return n
}

// Flush blocks until the network is quiescent: no pump is running and
// the delivery queue is empty. A Send racing an active pump enqueues
// into that pump and returns immediately, so concurrent data-plane
// tests (parallel probe sweeps, SelfTest fan-out) call Flush to get a
// deterministic read-after-send barrier before inspecting delivery
// state.
func (n *Network) Flush() {
	n.mu.Lock()
	for n.pumping || len(n.queue) > 0 {
		n.quiet.Wait()
	}
	n.mu.Unlock()
}

// AddDevice registers a frame handler for a device. Ports may be added
// before or after.
func (n *Network) AddDevice(id core.DeviceID, h FrameHandler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
}

// AddPort creates a port on a device with a deterministic locally
// administered MAC address.
func (n *Network) AddPort(dev core.DeviceID, name string) (*Port, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := PortID{Device: dev, Name: name}
	if _, ok := n.ports[id]; ok {
		return nil, fmt.Errorf("netsim: port %s already exists", id)
	}
	n.macSeq++
	p := &Port{
		ID:  id,
		MAC: packet.MAC{0x02, 0x00, 0x5e, byte(n.macSeq >> 16), byte(n.macSeq >> 8), byte(n.macSeq)},
	}
	n.ports[id] = p
	return p, nil
}

// PortMAC returns the MAC address of a port.
func (n *Network) PortMAC(id PortID) (packet.MAC, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.ports[id]
	if !ok {
		return packet.MAC{}, fmt.Errorf("netsim: no port %s", id)
	}
	return p.MAC, nil
}

// Connect joins ports into a medium. Two ports form a point-to-point
// link; more form a broadcast bus. All ports must exist and be unattached.
func (n *Network) Connect(name string, ids ...PortID) (*Medium, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.connectLocked(name, ids...)
}

// WireSpec names one point-to-point wire of a batch.
type WireSpec struct {
	Name string
	A, B PortID
}

// ConnectAll joins every wire of a generated fabric under one lock
// acquisition — the batch path for topology generators, where wiring a
// few thousand media one Connect call at a time is measurable setup
// cost. The batch is atomic in naming only: on error, wires connected
// before the failing spec stay connected.
func (n *Network) ConnectAll(wires []WireSpec) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, w := range wires {
		if _, err := n.connectLocked(w.Name, w.A, w.B); err != nil {
			return err
		}
	}
	return nil
}

func (n *Network) connectLocked(name string, ids ...PortID) (*Medium, error) {
	if len(ids) < 2 {
		return nil, fmt.Errorf("netsim: medium %q needs at least 2 ports", name)
	}
	if _, ok := n.media[name]; ok {
		return nil, fmt.Errorf("netsim: medium %q already exists", name)
	}
	m := &Medium{Name: name, up: true}
	for _, id := range ids {
		p, ok := n.ports[id]
		if !ok {
			return nil, fmt.Errorf("netsim: no port %s", id)
		}
		if p.medium != nil {
			return nil, fmt.Errorf("netsim: port %s already attached to %q", id, p.medium.Name)
		}
		m.ports = append(m.ports, p)
	}
	for _, p := range m.ports {
		p.medium = m
	}
	n.media[name] = m
	return m, nil
}

// SetMediumUp raises or cuts a medium (the "wire getting cut" fault of
// paper §III-C.2). Devices attached to the medium that registered a
// carrier callback are notified (outside the network lock) when the
// state actually changed — the NIC's link-state interrupt.
func (n *Network) SetMediumUp(name string, up bool) error {
	n.mu.Lock()
	m, ok := n.media[name]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: no medium %q", name)
	}
	changed := m.up != up
	m.up = up
	var notify []func()
	if changed {
		// Domain-wide listeners first: a bridge must have fast-aged its
		// table before the adjacent devices' link-state interrupts kick
		// off reconciliation traffic.
		for _, fn := range n.tcn {
			notify = append(notify, fn)
		}
		seen := make(map[core.DeviceID]bool)
		for _, p := range m.ports {
			if fn := n.carrier[p.ID.Device]; fn != nil && !seen[p.ID.Device] {
				seen[p.ID.Device] = true
				notify = append(notify, fn)
			}
		}
	}
	n.mu.Unlock()
	for _, fn := range notify {
		fn()
	}
	return nil
}

// OnCarrierChange registers a callback invoked whenever the up/down
// state of a medium touching one of the device's ports flips. Devices
// use it to re-report topology to the NM without being polled.
func (n *Network) OnCarrierChange(dev core.DeviceID, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.carrier[dev] = fn
}

// OnTopologyChange registers a callback invoked when ANY medium in the
// network flips, adjacent or not — the data-plane analogue of 802.1D's
// topology-change notification, which reaches every bridge in the L2
// domain so all of them fast-age their forwarding tables. Without it a
// path that swings away from a failure leaves unicast entries on
// untouched switches pointing into the dead direction forever (the
// simulator has no aging clock).
func (n *Network) OnTopologyChange(dev core.DeviceID, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tcn[dev] = fn
}

// Medium returns a medium by name.
func (n *Network) Medium(name string) (*Medium, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.media[name]
	return m, ok
}

// Media returns all medium names, sorted.
func (n *Network) Media() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	names := make([]string, 0, len(n.media))
	for name := range n.media {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Neighbor reports the port at the other end of a point-to-point link,
// standing in for link-layer neighbour discovery (LLDP). Devices use it to
// report their physical connectivity to the NM (paper §II-D). For buses it
// returns all other attached ports.
func (n *Network) Neighbor(id PortID) ([]PortID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.ports[id]
	if !ok {
		return nil, fmt.Errorf("netsim: no port %s", id)
	}
	if p.medium == nil {
		return nil, nil
	}
	var out []PortID
	for _, q := range p.medium.ports {
		if q != p {
			out = append(out, q.ID)
		}
	}
	return out, nil
}

// Attached reports whether the port is connected to a live medium.
func (n *Network) Attached(id PortID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.ports[id]
	return ok && p.medium != nil && p.medium.up
}

// EnableCapture starts recording frames crossing the named medium.
func (n *Network) EnableCapture(medium string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.capture[medium] = true
}

// Captures returns the frames recorded on a medium.
func (n *Network) Captures(medium string) []Capture {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Capture(nil), n.captures[medium]...)
}

// ClearCaptures discards recorded frames.
func (n *Network) ClearCaptures() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.captures = make(map[string][]Capture)
}

// TxCount and RxCount report per-port frame counters.
func (n *Network) TxCount(id PortID) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.txCount[id]
}

// RxCount reports frames delivered to a port.
func (n *Network) RxCount(id PortID) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rxCount[id]
}

// Send transmits a frame out of the given port. The frame is copied. If no
// pump is running, Send pumps the queue to quiescence before returning, so
// from a caller's perspective delivery (and all forwarding it triggers) is
// synchronous.
//
// Send is safe to call from multiple goroutines (device kernels run
// concurrently under the concurrent NM): exactly one caller pumps at a
// time, and a Send racing an active pump enqueues its frame for that
// pump and returns. Callers that need read-after-send guarantees (probe
// tests) should serialise their own traffic.
func (n *Network) Send(from PortID, frame []byte) error {
	n.mu.Lock()
	p, ok := n.ports[from]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("netsim: no port %s", from)
	}
	if p.medium == nil || !p.medium.up {
		n.mu.Unlock()
		return nil // unplugged or cut: frame silently lost, as on real hardware
	}
	n.txCount[from]++
	if n.capture[p.medium.Name] {
		n.seq++
		n.captures[p.medium.Name] = append(n.captures[p.medium.Name],
			Capture{Seq: n.seq, From: from, Bytes: append([]byte(nil), frame...)})
	}
	for _, q := range p.medium.ports {
		if q == p {
			continue
		}
		if n.LossFunc != nil && n.LossFunc(q.ID, frame) {
			continue
		}
		n.queue = append(n.queue, delivery{to: q, frame: append([]byte(nil), frame...)})
	}
	if n.pumping {
		n.mu.Unlock()
		return nil
	}
	n.pumping = true
	n.mu.Unlock()
	n.pump()
	return nil
}

func (n *Network) pump() {
	n.mu.Lock()
	maxSteps := n.MaxSteps
	n.mu.Unlock()
	steps := 0
	for {
		n.mu.Lock()
		if len(n.queue) == 0 {
			n.pumping = false
			n.quiet.Broadcast()
			n.mu.Unlock()
			return
		}
		d := n.queue[0]
		n.queue = n.queue[1:]
		n.rxCount[d.to.ID]++
		h := n.handlers[d.to.ID.Device]
		n.mu.Unlock()

		steps++
		if steps > maxSteps {
			panic(fmt.Sprintf("netsim: forwarding loop: more than %d deliveries in one pump", maxSteps))
		}
		if h != nil {
			h.HandleFrame(d.to.ID.Name, d.frame)
		}
	}
}
