package netsim

import (
	"testing"

	"conman/internal/core"
)

type recorder struct {
	got []struct {
		port  string
		frame []byte
	}
	// forward, when set, retransmits every received frame out of the
	// named port (exercises re-entrant Send).
	forward *struct {
		net  *Network
		port PortID
	}
}

func (r *recorder) HandleFrame(port string, frame []byte) {
	r.got = append(r.got, struct {
		port  string
		frame []byte
	}{port, frame})
	if r.forward != nil {
		_ = r.forward.net.Send(r.forward.port, frame)
	}
}

func build(t *testing.T) (*Network, *recorder, *recorder) {
	t.Helper()
	n := New()
	ra, rb := &recorder{}, &recorder{}
	n.AddDevice("A", ra)
	n.AddDevice("B", rb)
	if _, err := n.AddPort("A", "eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddPort("B", "eth0"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("ab", PortID{"A", "eth0"}, PortID{"B", "eth0"}); err != nil {
		t.Fatal(err)
	}
	return n, ra, rb
}

func TestPointToPointDelivery(t *testing.T) {
	n, ra, rb := build(t)
	if err := n.Send(PortID{"A", "eth0"}, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if len(rb.got) != 1 || string(rb.got[0].frame) != "hello" || rb.got[0].port != "eth0" {
		t.Fatalf("B got %+v", rb.got)
	}
	if len(ra.got) != 0 {
		t.Fatal("sender must not receive its own frame")
	}
	if n.TxCount(PortID{"A", "eth0"}) != 1 || n.RxCount(PortID{"B", "eth0"}) != 1 {
		t.Fatal("counters wrong")
	}
}

func TestBroadcastBusDelivery(t *testing.T) {
	n := New()
	recs := map[core.DeviceID]*recorder{}
	var ids []PortID
	for _, d := range []core.DeviceID{"A", "B", "C"} {
		r := &recorder{}
		recs[d] = r
		n.AddDevice(d, r)
		if _, err := n.AddPort(d, "eth0"); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, PortID{d, "eth0"})
	}
	m, err := n.Connect("bus", ids...)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Broadcast() {
		t.Fatal("3-port medium must be broadcast")
	}
	if err := n.Send(ids[0], []byte("x")); err != nil {
		t.Fatal(err)
	}
	if len(recs["B"].got) != 1 || len(recs["C"].got) != 1 || len(recs["A"].got) != 0 {
		t.Fatalf("bus delivery wrong: B=%d C=%d A=%d",
			len(recs["B"].got), len(recs["C"].got), len(recs["A"].got))
	}
}

func TestMediumDownDropsFrames(t *testing.T) {
	n, _, rb := build(t)
	if err := n.SetMediumUp("ab", false); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(PortID{"A", "eth0"}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if len(rb.got) != 0 {
		t.Fatal("frame crossed a cut link")
	}
	if err := n.SetMediumUp("ab", true); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(PortID{"A", "eth0"}, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if len(rb.got) != 1 {
		t.Fatal("frame lost after link restored")
	}
}

func TestReentrantForwardingChain(t *testing.T) {
	// A -> B -> C where B's handler forwards. Exercises the pump guard.
	n := New()
	ra, rb, rc := &recorder{}, &recorder{}, &recorder{}
	n.AddDevice("A", ra)
	n.AddDevice("B", rb)
	n.AddDevice("C", rc)
	for _, p := range []PortID{{"A", "e0"}, {"B", "e0"}, {"B", "e1"}, {"C", "e0"}} {
		if _, err := n.AddPort(p.Device, p.Name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Connect("ab", PortID{"A", "e0"}, PortID{"B", "e0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("bc", PortID{"B", "e1"}, PortID{"C", "e0"}); err != nil {
		t.Fatal(err)
	}
	rb.forward = &struct {
		net  *Network
		port PortID
	}{n, PortID{"B", "e1"}}
	if err := n.Send(PortID{"A", "e0"}, []byte("chain")); err != nil {
		t.Fatal(err)
	}
	if len(rc.got) != 1 || string(rc.got[0].frame) != "chain" {
		t.Fatalf("C got %+v", rc.got)
	}
}

func TestForwardingLoopPanics(t *testing.T) {
	// Two devices forwarding everything at each other must hit MaxSteps.
	n := New()
	ra, rb := &recorder{}, &recorder{}
	n.AddDevice("A", ra)
	n.AddDevice("B", rb)
	if _, err := n.AddPort("A", "e0"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddPort("B", "e0"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect("ab", PortID{"A", "e0"}, PortID{"B", "e0"}); err != nil {
		t.Fatal(err)
	}
	ra.forward = &struct {
		net  *Network
		port PortID
	}{n, PortID{"A", "e0"}}
	rb.forward = &struct {
		net  *Network
		port PortID
	}{n, PortID{"B", "e0"}}
	n.MaxSteps = 100
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on forwarding loop")
		}
	}()
	_ = n.Send(PortID{"A", "e0"}, []byte("boom"))
}

func TestLossInjection(t *testing.T) {
	n, _, rb := build(t)
	drop := true
	n.LossFunc = func(to PortID, frame []byte) bool { return drop }
	_ = n.Send(PortID{"A", "eth0"}, []byte("1"))
	drop = false
	_ = n.Send(PortID{"A", "eth0"}, []byte("2"))
	if len(rb.got) != 1 || string(rb.got[0].frame) != "2" {
		t.Fatalf("loss injection wrong: %+v", rb.got)
	}
}

func TestCapture(t *testing.T) {
	n, _, _ := build(t)
	n.EnableCapture("ab")
	_ = n.Send(PortID{"A", "eth0"}, []byte("one"))
	_ = n.Send(PortID{"B", "eth0"}, []byte("two"))
	caps := n.Captures("ab")
	if len(caps) != 2 {
		t.Fatalf("captures = %d", len(caps))
	}
	if caps[0].From != (PortID{"A", "eth0"}) || string(caps[1].Bytes) != "two" {
		t.Fatalf("captures wrong: %+v", caps)
	}
	n.ClearCaptures()
	if len(n.Captures("ab")) != 0 {
		t.Fatal("ClearCaptures did not clear")
	}
}

func TestNeighborDiscovery(t *testing.T) {
	n, _, _ := build(t)
	peers, err := n.Neighbor(PortID{"A", "eth0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 1 || peers[0] != (PortID{"B", "eth0"}) {
		t.Fatalf("peers = %v", peers)
	}
	if !n.Attached(PortID{"A", "eth0"}) {
		t.Fatal("port should be attached")
	}
	if _, err := n.AddPort("A", "eth9"); err != nil {
		t.Fatal(err)
	}
	if n.Attached(PortID{"A", "eth9"}) {
		t.Fatal("unattached port reported attached")
	}
}

func TestErrors(t *testing.T) {
	n, _, _ := build(t)
	if _, err := n.AddPort("A", "eth0"); err == nil {
		t.Fatal("want duplicate port error")
	}
	if _, err := n.Connect("ab2", PortID{"A", "eth0"}, PortID{"B", "eth0"}); err == nil {
		t.Fatal("want already-attached error")
	}
	if _, err := n.Connect("solo", PortID{"A", "eth0"}); err == nil {
		t.Fatal("want too-few-ports error")
	}
	if err := n.Send(PortID{"Z", "eth0"}, nil); err == nil {
		t.Fatal("want unknown-port error")
	}
	if err := n.SetMediumUp("zz", true); err == nil {
		t.Fatal("want unknown-medium error")
	}
	if _, err := n.Neighbor(PortID{"Z", "nope"}); err == nil {
		t.Fatal("want unknown-port error")
	}
	if _, err := n.PortMAC(PortID{"Z", "nope"}); err == nil {
		t.Fatal("want unknown-port error")
	}
}

func TestDistinctMACs(t *testing.T) {
	n := New()
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		p, err := n.AddPort("D", string(rune('a'+i%26))+string(rune('0'+i/26)))
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.MAC.String()] {
			t.Fatalf("duplicate MAC %s", p.MAC)
		}
		seen[p.MAC.String()] = true
	}
}
