package topo

import (
	"reflect"
	"testing"
)

// TestParseWiringRoundTrip pins the interchange contract on every
// generator family: ParseWiring(Canonical(w)) rebuilds w exactly.
func TestParseWiringRoundTrip(t *testing.T) {
	gens := map[string]func() (*Wiring, error){
		"fat-tree": func() (*Wiring, error) { return FatTree(4) },
		"ring":     func() (*Wiring, error) { return Ring(8) },
		"torus":    func() (*Wiring, error) { return Torus(3, 4) },
		"waxman":   func() (*Wiring, error) { return Waxman(16, 0.4, 0.4, 7) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			w, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			got, err := ParseWiring(w.Canonical())
			if err != nil {
				t.Fatalf("reparsing canonical form: %v", err)
			}
			if !reflect.DeepEqual(w, got) {
				t.Fatalf("round trip changed the wiring:\nwant %#v\ngot  %#v", w, got)
			}
			if got.Canonical() != w.Canonical() {
				t.Fatalf("round trip changed the canonical form")
			}
		})
	}
}

// FuzzWiringCanonical attacks the ParseWiring/Canonical round trip with
// arbitrary input: anything ParseWiring accepts must re-render to a
// canonical form that parses back to the identical Wiring.
func FuzzWiringCanonical(f *testing.F) {
	for _, gen := range []func() (*Wiring, error){
		func() (*Wiring, error) { return FatTree(4) },
		func() (*Wiring, error) { return Ring(5) },
		func() (*Wiring, error) { return Torus(3, 3) },
		func() (*Wiring, error) { return Waxman(8, 0.5, 0.5, 1) },
	} {
		w, err := gen()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(w.Canonical())
	}
	f.Add("topo   devices=0 wires=0\nedges\n")
	f.Add("topo t p devices=1 wires=0\ndevice d ports=\nedges d\n")

	f.Fuzz(func(t *testing.T, s string) {
		w1, err := ParseWiring(s)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		c1 := w1.Canonical()
		w2, err := ParseWiring(c1)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%q", err, c1)
		}
		if !reflect.DeepEqual(w1, w2) {
			t.Fatalf("round trip changed the wiring\ninput %q\nfirst %#v\nsecond %#v", s, w1, w2)
		}
		if c2 := w2.Canonical(); c2 != c1 {
			t.Fatalf("canonical form is not a fixed point\nfirst  %q\nsecond %q", c1, c2)
		}
	})
}
