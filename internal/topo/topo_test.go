package topo

import (
	"strings"
	"testing"

	"conman/internal/core"
)

// sweep builds every family across a parameter/seed sweep. The chaos
// harness and scale suites draw from the same families, so the
// properties asserted here (connectivity, degree bounds, determinism)
// are the contract everything downstream assumes.
func sweep(t *testing.T) map[string]*Wiring {
	t.Helper()
	out := map[string]*Wiring{}
	for _, k := range []int{2, 4, 8} {
		w, err := FatTree(k)
		if err != nil {
			t.Fatalf("FatTree(%d): %v", k, err)
		}
		out["fat-tree/"+w.Param] = w
	}
	for _, n := range []int{3, 8, 64} {
		w, err := Ring(n)
		if err != nil {
			t.Fatalf("Ring(%d): %v", n, err)
		}
		out["ring/"+w.Param] = w
	}
	for _, rc := range [][2]int{{3, 3}, {4, 8}} {
		w, err := Torus(rc[0], rc[1])
		if err != nil {
			t.Fatalf("Torus(%dx%d): %v", rc[0], rc[1], err)
		}
		out["torus/"+w.Param] = w
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		w, err := Waxman(48, 0.7, 0.25, seed)
		if err != nil {
			t.Fatalf("Waxman(seed=%d): %v", seed, err)
		}
		out["waxman/"+w.Param] = w
	}
	return out
}

func TestGeneratorsConnected(t *testing.T) {
	for name, w := range sweep(t) {
		if !w.Connected() {
			t.Errorf("%s: generated fabric is partitioned", name)
		}
	}
}

func TestGeneratorsDegreeBounds(t *testing.T) {
	for name, w := range sweep(t) {
		deg := w.Degrees()
		for _, d := range w.Devices {
			got := deg[d.ID]
			if got != len(d.Ports) {
				t.Errorf("%s %s: degree %d but %d allocated ports", name, d.ID, got, len(d.Ports))
			}
			switch w.Family {
			case "ring":
				if got != 2 {
					t.Errorf("%s %s: ring degree = %d, want 2", name, d.ID, got)
				}
			case "torus":
				if got != 4 {
					t.Errorf("%s %s: torus degree = %d, want 4", name, d.ID, got)
				}
			case "fat-tree":
				// Core and aggregation switches have full degree k; edge
				// switches carry k/2 uplinks (their other k/2 ports are
				// customer-facing and not part of the trunk wiring).
				switch {
				case strings.HasPrefix(string(d.ID), "ed"):
					if got*2 != fatTreeK(w) {
						t.Errorf("%s %s: edge degree = %d, want k/2 = %d", name, d.ID, got, fatTreeK(w)/2)
					}
				default:
					if got != fatTreeK(w) {
						t.Errorf("%s %s: degree = %d, want k = %d", name, d.ID, got, fatTreeK(w))
					}
				}
			case "waxman":
				if got < 1 || got >= len(w.Devices) {
					t.Errorf("%s %s: waxman degree %d out of [1, n)", name, d.ID, got)
				}
			}
		}
	}
}

// fatTreeK recovers k from the edge-switch count (k pods of k/2 each).
func fatTreeK(w *Wiring) int {
	for k := 2; ; k += 2 {
		if k*k/2 == len(w.Edges) {
			return k
		}
		if k*k/2 > len(w.Edges) {
			return -1
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	regen := func(name string) *Wiring {
		t.Helper()
		// Rebuild by re-running the same sweep; map iteration order does
		// not matter because generation is side-effect free.
		return sweep(t)[name]
	}
	for name, w := range sweep(t) {
		again := regen(name)
		if again == nil {
			t.Fatalf("%s: missing from second sweep", name)
		}
		if w.Canonical() != again.Canonical() {
			t.Errorf("%s: same parameters produced different wiring", name)
		}
	}
}

func TestWaxmanSeedsDiffer(t *testing.T) {
	a, err := Waxman(48, 0.7, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Waxman(48, 0.7, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Canonical() == b.Canonical() {
		t.Error("different seeds produced identical Waxman graphs")
	}
}

func TestCrossCorePairsSpanDistinctDevices(t *testing.T) {
	for name, w := range sweep(t) {
		max := len(w.Edges) / 2
		pairs, err := w.CrossCorePairs(max)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seen := map[core.DeviceID]bool{}
		for _, p := range pairs {
			if seen[p.A] || seen[p.B] || p.A == p.B {
				t.Errorf("%s: pair %v reuses a device", name, p)
			}
			seen[p.A], seen[p.B] = true, true
			if !w.ConnectedWithout(nil, nil, p.A, p.B) {
				t.Errorf("%s: pair %v not connected", name, p)
			}
		}
		if _, err := w.CrossCorePairs(max + 1); err == nil {
			t.Errorf("%s: CrossCorePairs(%d) should exceed capacity", name, max+1)
		}
	}
}

func TestConnectedWithoutCuts(t *testing.T) {
	w, err := Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	a, b := w.Edges[0], w.Edges[4]
	// One cut leaves the other arc; cutting both arcs disconnects.
	one := map[string]bool{w.Wires[0].Name: true}
	if !w.ConnectedWithout(one, nil, a, b) {
		t.Error("single ring cut should not disconnect opposite devices")
	}
	two := map[string]bool{w.Wires[0].Name: true, w.Wires[4].Name: true}
	if w.ConnectedWithout(two, nil, a, b) {
		t.Error("cutting both ring arcs must disconnect opposite devices")
	}
	// A dead intermediate device severs its arc like a wire cut.
	dead := map[core.DeviceID]bool{w.Devices[2].ID: true}
	if !w.ConnectedWithout(nil, dead, a, b) {
		t.Error("one dead transit device should not disconnect a ring")
	}
	dead[w.Devices[6].ID] = true
	if w.ConnectedWithout(nil, dead, a, b) {
		t.Error("dead devices on both arcs must disconnect")
	}
	if w.ConnectedWithout(nil, map[core.DeviceID]bool{a: true}, a, b) {
		t.Error("a dead endpoint can never be connected")
	}
}

func TestGeneratorArgumentValidation(t *testing.T) {
	if _, err := FatTree(3); err == nil {
		t.Error("FatTree(3) should reject odd k")
	}
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) should reject n < 3")
	}
	if _, err := Torus(2, 5); err == nil {
		t.Error("Torus(2,5) should reject rows < 3")
	}
	if _, err := Waxman(1, 0.5, 0.2, 1); err == nil {
		t.Error("Waxman(1) should reject n < 2")
	}
	if _, err := Waxman(8, 1.5, 0.2, 1); err == nil {
		t.Error("Waxman alpha > 1 should be rejected")
	}
}

func TestFatTreeShape(t *testing.T) {
	w, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(w.Devices), 20; got != want {
		t.Errorf("fat-tree k=4 devices = %d, want %d", got, want)
	}
	if got, want := len(w.Wires), 32; got != want {
		t.Errorf("fat-tree k=4 wires = %d, want %d", got, want)
	}
	if got, want := len(w.Edges), 8; got != want {
		t.Errorf("fat-tree k=4 edge switches = %d, want %d", got, want)
	}
}
