package topo

import (
	"fmt"
	"strings"

	"conman/internal/core"
)

// ParseWiring is the inverse of (*Wiring).Canonical: it rebuilds a
// Wiring from its canonical rendering. Canonical(ParseWiring(s)) is
// byte-identical to s for any s produced by Canonical, which gives
// tests and tools a durable interchange format (dump a fabric, diff
// it, reload it) and gives the fuzzer a round-trip property to attack.
//
// The grammar is exactly what Canonical emits, one record per line:
//
//	topo <family> <param> devices=<n> wires=<m>
//	device <id> ports=<p1,p2,...>
//	wire <name> <devA>:<portA> <devB>:<portB>
//	edges [<id> ...]
//
// Wire endpoints must reference declared devices; the declared device
// list disambiguates device ids that themselves contain ':'.
func ParseWiring(s string) (*Wiring, error) {
	if !strings.HasSuffix(s, "\n") {
		return nil, fmt.Errorf("topo: parse: missing trailing newline")
	}
	lines := strings.Split(strings.TrimSuffix(s, "\n"), "\n")
	if len(lines) < 2 {
		return nil, fmt.Errorf("topo: parse: want at least topo and edges lines, got %d", len(lines))
	}

	w := &Wiring{}
	var wantDevices, wantWires int

	head := strings.Fields(lines[0])
	if len(head) < 3 || head[0] != "topo" {
		return nil, fmt.Errorf("topo: parse line 1: want %q header, got %q", "topo", lines[0])
	}
	last, prev := head[len(head)-1], head[len(head)-2]
	if _, err := fmt.Sscanf(prev, "devices=%d", &wantDevices); err != nil {
		return nil, fmt.Errorf("topo: parse line 1: bad %q: %v", prev, err)
	}
	if _, err := fmt.Sscanf(last, "wires=%d", &wantWires); err != nil {
		return nil, fmt.Errorf("topo: parse line 1: bad %q: %v", last, err)
	}
	mid := head[1 : len(head)-2]
	if len(mid) > 0 {
		w.Family = mid[0]
		w.Param = strings.Join(mid[1:], " ")
	}

	final := lines[len(lines)-1]
	if final != "edges" && !strings.HasPrefix(final, "edges ") {
		return nil, fmt.Errorf("topo: parse: last line must be the edges record, got %q", final)
	}
	for _, e := range strings.Fields(final)[1:] {
		w.Edges = append(w.Edges, core.DeviceID(e))
	}

	for i, line := range lines[1 : len(lines)-1] {
		lineNo := i + 2
		switch {
		case strings.HasPrefix(line, "device "):
			f := strings.Fields(line)
			if len(f) != 3 || !strings.HasPrefix(f[2], "ports=") {
				return nil, fmt.Errorf("topo: parse line %d: want %q, got %q", lineNo, "device <id> ports=<list>", line)
			}
			d := Device{ID: core.DeviceID(f[1])}
			if list := strings.TrimPrefix(f[2], "ports="); list != "" {
				d.Ports = strings.Split(list, ",")
			}
			w.Devices = append(w.Devices, d)
		case strings.HasPrefix(line, "wire "):
			f := strings.Fields(line)
			if len(f) != 4 {
				return nil, fmt.Errorf("topo: parse line %d: want %q, got %q", lineNo, "wire <name> <a> <b>", line)
			}
			a, err := w.parseEndpoint(f[2])
			if err != nil {
				return nil, fmt.Errorf("topo: parse line %d: %v", lineNo, err)
			}
			b, err := w.parseEndpoint(f[3])
			if err != nil {
				return nil, fmt.Errorf("topo: parse line %d: %v", lineNo, err)
			}
			w.Wires = append(w.Wires, Wire{Name: f[1], A: a, B: b})
		default:
			return nil, fmt.Errorf("topo: parse line %d: unknown record %q", lineNo, line)
		}
	}

	if len(w.Devices) != wantDevices {
		return nil, fmt.Errorf("topo: parse: header says devices=%d, found %d", wantDevices, len(w.Devices))
	}
	if len(w.Wires) != wantWires {
		return nil, fmt.Errorf("topo: parse: header says wires=%d, found %d", wantWires, len(w.Wires))
	}
	return w, nil
}

// parseEndpoint resolves "<dev>:<port>" against the devices declared so
// far, preferring the longest declared id so ids containing ':' stay
// unambiguous.
func (w *Wiring) parseEndpoint(s string) (Port, error) {
	best := -1
	for i, d := range w.Devices {
		id := string(d.ID)
		if len(s) > len(id)+1 && strings.HasPrefix(s, id+":") {
			if best < 0 || len(id) > len(string(w.Devices[best].ID)) {
				best = i
			}
		}
	}
	if best < 0 {
		return Port{}, fmt.Errorf("wire endpoint %q does not reference a declared device", s)
	}
	id := w.Devices[best].ID
	return Port{Device: id, Port: s[len(id)+1:]}, nil
}
