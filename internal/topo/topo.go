// Package topo generates deterministic, seedable network topologies
// for testbeds and experiments: fat-tree/Clos fabrics, rings, tori and
// random Waxman graphs. A generator emits a Wiring — the device, port
// and wire inventory of the fabric plus the edge devices eligible for
// customer attachment — which the experiments package turns into a
// running netsim testbed (BuildTopoVLAN and friends), generalizing the
// hand-built BuildLinear*/BuildDiamond* shapes to arbitrary graphs.
//
// Everything is deterministic: the parameterised families (fat-tree,
// ring, torus) depend only on their parameters, and Waxman graphs
// depend only on (n, alpha, beta, seed). Canonical() renders a Wiring
// to a byte-stable string so tests can assert same-seed => identical
// fabric. The package also carries the graph utilities the chaos
// harness builds on: connectivity queries under a set of dead wires
// and devices (the minimum-cut guard) and degree accounting.
//
// The package is pure data — it imports only core and the standard
// library, so nm, netsim and experiments can all depend on it.
package topo

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"conman/internal/core"
)

// Port identifies one attachment point of a wire.
type Port struct {
	Device core.DeviceID
	Port   string
}

func (p Port) String() string { return string(p.Device) + ":" + p.Port }

// Wire is one physical link of the fabric. Names are unique within a
// Wiring and double as netsim medium names.
type Wire struct {
	Name string
	A, B Port
}

// Device is one managed device of the fabric with its trunk ports (in
// allocation order). Customer-facing ports are not part of the Wiring;
// testbed builders add them per intent pair.
type Device struct {
	ID    core.DeviceID
	Ports []string
}

// Pair is a pair of edge devices an intent crosses the core between.
type Pair struct {
	A, B core.DeviceID
}

// Wiring is a generated topology: the full device/port/wire inventory
// plus the ordered list of edge devices eligible to host customers.
type Wiring struct {
	// Family names the generator ("fat-tree", "ring", "torus", "waxman").
	Family string
	// Param is the human-readable parameterisation ("k=4", "n=64", ...).
	Param string

	Devices []Device
	Wires   []Wire

	// Edges lists the customer-eligible devices in an order chosen so
	// that CrossCorePairs' index pairing spans the fabric core (edge
	// switches in pod order for fat-trees, device order otherwise).
	Edges []core.DeviceID
}

// builder accumulates a Wiring, allocating ports as wires are added so
// the same construction order always yields the same fabric.
type builder struct {
	w     *Wiring
	idx   map[core.DeviceID]int
	ports map[core.DeviceID]int
}

func newBuilder(family, param string) *builder {
	return &builder{
		w:     &Wiring{Family: family, Param: param},
		idx:   make(map[core.DeviceID]int),
		ports: make(map[core.DeviceID]int),
	}
}

func (b *builder) addDevice(id core.DeviceID) {
	b.idx[id] = len(b.w.Devices)
	b.w.Devices = append(b.w.Devices, Device{ID: id})
}

// port allocates the next trunk port on dev ("p000", "p001", ...).
func (b *builder) port(dev core.DeviceID) string {
	n := b.ports[dev]
	b.ports[dev] = n + 1
	name := fmt.Sprintf("p%03d", n)
	i := b.idx[dev]
	b.w.Devices[i].Ports = append(b.w.Devices[i].Ports, name)
	return name
}

// wire links a and b over freshly allocated ports. Wire names embed an
// index (unique even for parallel links) plus both endpoints for
// debuggability.
func (b *builder) wire(a, c core.DeviceID) {
	name := fmt.Sprintf("w%05d.%s~%s", len(b.w.Wires), a, c)
	b.w.Wires = append(b.w.Wires, Wire{
		Name: name,
		A:    Port{Device: a, Port: b.port(a)},
		B:    Port{Device: c, Port: b.port(c)},
	})
}

// FatTree generates a k-ary fat-tree/Clos fabric (k even, k >= 2):
// (k/2)^2 core switches and k pods of k/2 aggregation plus k/2 edge
// switches. Every edge switch connects to every aggregation switch of
// its pod; aggregation switch a of each pod connects to cores
// a*(k/2)..a*(k/2)+k/2-1. Edge switches are the customer-eligible
// devices, listed in pod order so CrossCorePairs spans pods (and hence
// the core layer).
func FatTree(k int) (*Wiring, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree needs even k >= 2, got %d", k)
	}
	h := k / 2
	b := newBuilder("fat-tree", fmt.Sprintf("k=%d", k))
	cores := make([]core.DeviceID, h*h)
	for i := range cores {
		cores[i] = core.DeviceID(fmt.Sprintf("cr%03d", i))
		b.addDevice(cores[i])
	}
	aggs := make([][]core.DeviceID, k)
	edges := make([][]core.DeviceID, k)
	for p := 0; p < k; p++ {
		aggs[p] = make([]core.DeviceID, h)
		edges[p] = make([]core.DeviceID, h)
		for a := 0; a < h; a++ {
			aggs[p][a] = core.DeviceID(fmt.Sprintf("ag%02d.%02d", p, a))
			b.addDevice(aggs[p][a])
		}
		for e := 0; e < h; e++ {
			edges[p][e] = core.DeviceID(fmt.Sprintf("ed%02d.%02d", p, e))
			b.addDevice(edges[p][e])
			b.w.Edges = append(b.w.Edges, edges[p][e])
		}
	}
	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			for a := 0; a < h; a++ {
				b.wire(edges[p][e], aggs[p][a])
			}
		}
		for a := 0; a < h; a++ {
			for c := 0; c < h; c++ {
				b.wire(aggs[p][a], cores[a*h+c])
			}
		}
	}
	return b.w, nil
}

// Ring generates a cycle of n switches (n >= 3). Every device is
// customer-eligible; CrossCorePairs pairs diametrically opposite
// devices, so each intent crosses half the ring.
func Ring(n int) (*Wiring, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs n >= 3, got %d", n)
	}
	b := newBuilder("ring", fmt.Sprintf("n=%d", n))
	ids := make([]core.DeviceID, n)
	for i := range ids {
		ids[i] = core.DeviceID(fmt.Sprintf("sw%04d", i))
		b.addDevice(ids[i])
		b.w.Edges = append(b.w.Edges, ids[i])
	}
	for i := 0; i < n; i++ {
		b.wire(ids[i], ids[(i+1)%n])
	}
	return b.w, nil
}

// Torus generates a rows x cols 2D torus (both >= 3): every device
// links to its right and down neighbour with wraparound, degree 4
// everywhere. All devices are customer-eligible, in row-major order.
func Torus(rows, cols int) (*Wiring, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("topo: torus needs rows, cols >= 3, got %dx%d", rows, cols)
	}
	b := newBuilder("torus", fmt.Sprintf("n=%dx%d", rows, cols))
	ids := make([]core.DeviceID, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := core.DeviceID(fmt.Sprintf("t%03d.%03d", r, c))
			ids[r*cols+c] = id
			b.addDevice(id)
			b.w.Edges = append(b.w.Edges, id)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.wire(ids[r*cols+c], ids[r*cols+(c+1)%cols])
			b.wire(ids[r*cols+c], ids[((r+1)%rows)*cols+c])
		}
	}
	return b.w, nil
}

// Waxman generates a random geometric graph after Waxman (1988): n
// devices at seeded-uniform positions in the unit square, a wire
// between each pair with probability alpha*exp(-d/(beta*L)) where d is
// their Euclidean distance and L the maximal distance. Because a
// random draw can leave the graph partitioned, remaining components
// are then stitched together deterministically by repeatedly wiring
// the closest cross-component device pair, so every returned graph is
// connected. Identical (n, alpha, beta, seed) yields a byte-identical
// Wiring. All devices are customer-eligible.
func Waxman(n int, alpha, beta float64, seed int64) (*Wiring, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: waxman needs n >= 2, got %d", n)
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 {
		return nil, fmt.Errorf("topo: waxman needs 0 < alpha <= 1 and beta > 0, got alpha=%g beta=%g", alpha, beta)
	}
	b := newBuilder("waxman", fmt.Sprintf("n=%d alpha=%g beta=%g seed=%d", n, alpha, beta, seed))
	rng := rand.New(rand.NewSource(seed))
	type pt struct{ x, y float64 }
	pos := make([]pt, n)
	ids := make([]core.DeviceID, n)
	for i := range ids {
		ids[i] = core.DeviceID(fmt.Sprintf("wx%04d", i))
		b.addDevice(ids[i])
		b.w.Edges = append(b.w.Edges, ids[i])
		pos[i] = pt{rng.Float64(), rng.Float64()}
	}
	dist := func(i, j int) float64 {
		return math.Hypot(pos[i].x-pos[j].x, pos[i].y-pos[j].y)
	}
	l := math.Sqrt2
	comp := make([]int, n) // union-find, path-halving
	for i := range comp {
		comp[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for comp[i] != i {
			comp[i] = comp[comp[i]]
			i = comp[i]
		}
		return i
	}
	union := func(i, j int) { comp[find(i)] = find(j) }
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < alpha*math.Exp(-dist(i, j)/(beta*l)) {
				b.wire(ids[i], ids[j])
				union(i, j)
			}
		}
	}
	// Stitch components: closest cross-component pair, smallest (i, j)
	// on ties — fully deterministic.
	for {
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if find(i) == find(j) {
					continue
				}
				if d := dist(i, j); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		if bi < 0 {
			return b.w, nil
		}
		b.wire(ids[bi], ids[bj])
		union(bi, bj)
	}
}

// ---------------------------------------------------------------------------
// Graph utilities

// index returns device ID -> position in w.Devices.
func (w *Wiring) index() map[core.DeviceID]int {
	idx := make(map[core.DeviceID]int, len(w.Devices))
	for i, d := range w.Devices {
		idx[d.ID] = i
	}
	return idx
}

// Degrees returns each device's trunk degree (parallel links counted).
func (w *Wiring) Degrees() map[core.DeviceID]int {
	deg := make(map[core.DeviceID]int, len(w.Devices))
	for _, d := range w.Devices {
		deg[d.ID] = 0
	}
	for _, wi := range w.Wires {
		deg[wi.A.Device]++
		deg[wi.B.Device]++
	}
	return deg
}

// ConnectedWithout reports whether a path exists between a and b over
// wires not in deadWires whose endpoints are not in deadDevs. A dead
// endpoint device makes the query false. Nil maps mean nothing dead.
// This is the primitive under the chaos harness's minimum-cut guard: a
// candidate kill is admissible only if every intent's endpoint pair
// stays connected without it.
func (w *Wiring) ConnectedWithout(deadWires map[string]bool, deadDevs map[core.DeviceID]bool, a, b core.DeviceID) bool {
	if deadDevs[a] || deadDevs[b] {
		return false
	}
	if a == b {
		return true
	}
	idx := w.index()
	ai, ok := idx[a]
	if !ok {
		return false
	}
	bi, ok := idx[b]
	if !ok {
		return false
	}
	adj := make([][]int, len(w.Devices))
	for _, wi := range w.Wires {
		if deadWires[wi.Name] || deadDevs[wi.A.Device] || deadDevs[wi.B.Device] {
			continue
		}
		i, j := idx[wi.A.Device], idx[wi.B.Device]
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	seen := make([]bool, len(w.Devices))
	queue := []int{ai}
	seen[ai] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == bi {
			return true
		}
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return false
}

// Connected reports whether the whole fabric is one component.
func (w *Wiring) Connected() bool {
	if len(w.Devices) == 0 {
		return true
	}
	idx := w.index()
	adj := make([][]int, len(w.Devices))
	for _, wi := range w.Wires {
		i, j := idx[wi.A.Device], idx[wi.B.Device]
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	seen := make([]bool, len(w.Devices))
	queue := []int{0}
	seen[0] = true
	reached := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				reached++
				queue = append(queue, nb)
			}
		}
	}
	return reached == len(w.Devices)
}

// CrossCorePairs returns m intent endpoint pairs spanning the fabric:
// edge device i is paired with edge device i + len(Edges)/2, so every
// pair crosses the core (opposite pods on a fat-tree, diametrically
// opposite devices on a ring). All 2m devices are distinct; m is
// capped at len(Edges)/2.
func (w *Wiring) CrossCorePairs(m int) ([]Pair, error) {
	half := len(w.Edges) / 2
	if m < 1 || m > half {
		return nil, fmt.Errorf("topo: %s %s supports 1..%d cross-core pairs, got %d", w.Family, w.Param, half, m)
	}
	pairs := make([]Pair, m)
	for i := 0; i < m; i++ {
		pairs[i] = Pair{A: w.Edges[i], B: w.Edges[i+half]}
	}
	return pairs, nil
}

// Canonical renders the wiring to a byte-stable string: the generator
// determinism contract is Canonical(gen(args)) == Canonical(gen(args)).
func (w *Wiring) Canonical() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "topo %s %s devices=%d wires=%d\n", w.Family, w.Param, len(w.Devices), len(w.Wires))
	for _, d := range w.Devices {
		fmt.Fprintf(&sb, "device %s ports=%s\n", d.ID, strings.Join(d.Ports, ","))
	}
	for _, wi := range w.Wires {
		fmt.Fprintf(&sb, "wire %s %s %s\n", wi.Name, wi.A, wi.B)
	}
	fmt.Fprintf(&sb, "edges")
	for _, e := range w.Edges {
		fmt.Fprintf(&sb, " %s", e)
	}
	sb.WriteString("\n")
	return sb.String()
}
