package nm

// Goal-directed best-first path search (§III-C.1: the NM "determines
// the sequence of modules" for a goal). The exhaustive finder in
// pathfinder.go materialises every protocol-sane variant and filters
// afterwards; on long L2 chains that space is exponential and the
// DefaultMaxPaths cap truncates it, making selection over the result
// unreliable. FindBest instead keeps a priority queue of partial paths
// ordered by the paper's selection metric — pipes instantiated, then
// forwarding speed, then hop count — and a dominance table keyed on
// (module, entry, open peer-group stack, flavour) so only promising
// prefixes expand. The best path pops first, without the variant space
// ever being built; the number of expanded states is linear in path
// length on the chains where enumeration explodes.

import (
	"container/heap"
	"fmt"
	"strings"

	"conman/internal/core"
)

// bfMaxExpand is the runaway safety valve on queue expansions. The
// dominance table bounds the reachable state space far below this on
// every real topology; hitting the valve is reported as an error.
const bfMaxExpand = 1 << 20

// DefaultMaxStack is the open-header bound applied when
// FindSpec.MaxStack is zero: comfortably above the paper's deepest
// stack (GRE-over-MPLS opens five) while keeping the best-first state
// space linear in chain length.
const DefaultMaxStack = 8

// bfStack is one open protocol header on a partial path's stack, as an
// immutable linked list shared between the partial paths that diverge
// above it (top points down). Nodes are immutable, so the rendered
// dominance-key signature is computed once at construction (pushes are
// frequent; signature reads happen on every frontier insertion).
type bfStack struct {
	below     *bfStack
	protocol  core.ModuleName
	domain    string
	external  bool
	depth     int    // headers open including this one
	cachedSig string // this header's rendering + everything below
}

// pushStack opens a header above s, caching the combined signature.
func pushStack(s *bfStack, protocol core.ModuleName, domain string, external bool) *bfStack {
	n := &bfStack{below: s, protocol: protocol, domain: domain, external: external, depth: 1}
	if s != nil {
		n.depth = s.depth + 1
	}
	var b strings.Builder
	// %q quoting keeps the signature injective for arbitrary operator
	// domain strings.
	fmt.Fprintf(&b, "%s/%q", protocol, domain)
	if external {
		b.WriteByte('!')
	}
	b.WriteByte(';')
	if s != nil {
		b.WriteString(s.cachedSig)
	}
	n.cachedSig = b.String()
	return n
}

// sig renders the open-header stack, top first, for the dominance key.
func (s *bfStack) sig() string {
	if s == nil {
		return ""
	}
	return s.cachedSig
}

// bfFlavor accumulates the Describe()-relevant features of a partial
// path. It is part of the dominance key so a cheap prefix of one path
// flavour never prunes the prefix of another: FindBest must be able to
// return the best path of the *preferred* flavour, and the features
// below are exactly what Describe derives a flavour from.
type bfFlavor struct {
	hasGRE     bool
	ipGroups   uint8 // internal IPv4 groups pushed (capped)
	vlanGroups uint8 // VLAN groups pushed (capped)
	vlanUsed   bool
	plainDev   bool // a fully traversed device had no VLAN hop
	ipOffMPLS  bool // a fully traversed device had IPv4 hops but no MPLS
	firstMPLS  core.DeviceID
	lastMPLS   core.DeviceID
}

func (f bfFlavor) sig() string {
	var b strings.Builder
	if f.hasGRE {
		b.WriteByte('g')
	}
	if f.vlanUsed {
		b.WriteByte('v')
	}
	if f.plainDev {
		b.WriteByte('t')
	}
	if f.ipOffMPLS {
		b.WriteByte('i')
	}
	// %q quoting keeps the signature injective for arbitrary device ids.
	fmt.Fprintf(&b, "%d.%d.%q%q", f.ipGroups, f.vlanGroups, string(f.firstMPLS), string(f.lastMPLS))
	return b.String()
}

// bfNode is one hop of a partial path on the best-first frontier. Hops
// form a parent-linked chain; a completed path is materialised by
// replaying the chain through the same peer-group bookkeeping the
// exhaustive enumerator maintains, so the resulting Path is
// structurally identical to an enumerated one.
type bfNode struct {
	parent *bfNode
	node   *Node
	mode   core.SwitchMode

	entryVia   *Node       // co-located module we entered from (up/down entries)
	entryPhys  core.PipeID // physical pipe we entered on ("" otherwise)
	parentExit core.PipeID // the pipe the parent exited on (physical transitions)
	finalPhys  core.PipeID // accepting external exit (accepted leaves only)
	accepted   bool

	// Score so far, in the selection metric's order.
	depth int
	pipes int
	fast  bool

	stack *bfStack
	flav  bfFlavor
	// Per-device flavour accumulators, folded into flav when the path
	// leaves the device over a wire (or accepted).
	devVLAN, devIPv4, devMPLS bool

	// mods/modes mirror Path.Modules() / modeString incrementally; they
	// are the deterministic tie-breaks matching the enumerator's sort.
	mods, modes string
	seq         int  // insertion order, the final tie-break
	dropped     bool // superseded on its dominance frontier; skip on pop
}

// dominates reports whether a recorded arrival makes the candidate
// redundant: no completion of the candidate can beat the best
// completion of the recorded one under (pipes, fast, hops, module
// sequence). Pipes and hops only grow by suffix-identical amounts from
// a shared state, and fast only ORs in, so Pareto comparison is sound;
// on full score ties the lexicographically smaller prefix wins, exactly
// like the enumerator's sorted tie-break.
func (r *bfNode) dominates(c *bfNode) bool {
	if r.pipes > c.pipes || r.depth > c.depth || (!r.fast && c.fast) {
		return false
	}
	if r.pipes < c.pipes || r.depth < c.depth || (r.fast && !c.fast) {
		return true
	}
	if r.mods != c.mods {
		return r.mods < c.mods
	}
	return r.modes <= c.modes
}

// bfLess is the frontier (and final-answer) ordering: the selection
// metric, then the enumerator-parity tie-breaks, then insertion order.
func bfLess(a, b *bfNode) bool {
	if a.pipes != b.pipes {
		return a.pipes < b.pipes
	}
	if a.fast != b.fast {
		return a.fast
	}
	if a.depth != b.depth {
		return a.depth < b.depth
	}
	if a.mods != b.mods {
		return a.mods < b.mods
	}
	if a.modes != b.modes {
		return a.modes < b.modes
	}
	return a.seq < b.seq
}

type bfHeap []*bfNode

func (h bfHeap) Len() int           { return len(h) }
func (h bfHeap) Less(i, j int) bool { return bfLess(h[i], h[j]) }
func (h bfHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *bfHeap) Push(x any)        { *h = append(*h, x.(*bfNode)) }
func (h *bfHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

type bfFinder struct {
	g        *Graph
	spec     FindSpec
	stats    PruneStats
	queue    bfHeap
	seen     map[string][]*bfNode
	seq      int
	max      int // accepted-pop safety valve
	maxDepth int
	maxStack int
	initial  *bfStack
}

// FindBest returns the single best path for the spec: the preferred
// flavour's best when spec.Prefer is set, the paper's selection metric
// otherwise (fewest pipes instantiated, fast forwarding on ties, then
// hop count). By default it runs the goal-directed best-first search
// and never materialises the variant space; spec.Exhaustive reroutes
// through the legacy enumerate-then-filter engine for A/B comparison.
// A nil path with a nil error means no protocol-sane path (or none of
// the preferred flavour) exists.
func (g *Graph) FindBest(spec FindSpec) (*Path, PruneStats, error) {
	if spec.Exhaustive {
		paths, stats, err := g.FindPaths(spec)
		stats.PreferUnknown = spec.Prefer != "" && !PreferRecognized(spec.Prefer)
		if err != nil {
			return nil, stats, err
		}
		if spec.Prefer != "" {
			for _, p := range paths {
				if p.Describe() == spec.Prefer {
					return p, stats, nil
				}
			}
			return nil, stats, nil
		}
		return SelectPath(paths), stats, nil
	}

	from, entryPipe, err := g.resolveEndpoints(spec)
	if err != nil {
		return nil, PruneStats{}, err
	}
	f := &bfFinder{
		g:        g,
		spec:     spec,
		seen:     make(map[string][]*bfNode),
		max:      spec.MaxPaths,
		maxDepth: spec.MaxDepth,
		maxStack: spec.MaxStack,
		// The customer frame arrives with an Ethernet header around an
		// IP packet in the customer's address domain (same premise as
		// the enumerator).
		initial: pushStack(
			pushStack(nil, core.NameIPv4, spec.TrafficDomain, true),
			core.NameETH, "", true),
	}
	if f.max == 0 {
		f.max = DefaultMaxPaths
	}
	if f.maxDepth == 0 {
		f.maxDepth = 2 * len(g.nodes)
	}
	if f.maxStack == 0 {
		f.maxStack = DefaultMaxStack
	}
	f.stats.PreferUnknown = spec.Prefer != "" && !PreferRecognized(spec.Prefer)
	heap.Init(&f.queue)
	f.enter(nil, from, core.EndPhy, nil, entryPipe, "")

	// held is the best acceptable completion popped so far. It cannot
	// be returned the moment it pops: pipes are monotone along a path
	// but the fast bit is not (a tied-on-pipes route may gain fast
	// forwarding deeper in), so an equal-pipes better completion can
	// still be hiding behind an unexpanded prefix. Draining the frontier
	// until its minimum pipe count exceeds the held completion's makes
	// the result exact — nothing left can even tie.
	var held *bfNode
	var heldPath *Path
	acceptedPops := 0
	for f.queue.Len() > 0 {
		if held != nil && f.queue[0].pipes > held.pipes {
			return heldPath, f.stats, nil
		}
		b := heap.Pop(&f.queue).(*bfNode)
		if b.dropped {
			continue
		}
		if b.accepted {
			p := f.materialize(b)
			if f.spec.Prefer == "" || p.Describe() == f.spec.Prefer {
				if held == nil || bfLess(b, held) {
					held, heldPath = b, p
				}
			} else if acceptedPops++; acceptedPops >= f.max {
				return heldPath, f.stats, nil
			}
			continue
		}
		if f.stats.Expanded++; f.stats.Expanded > bfMaxExpand {
			return nil, f.stats, fmt.Errorf("nm: best-first search exceeded %d expansions", bfMaxExpand)
		}
		f.expand(b)
	}
	if held != nil {
		return heldPath, f.stats, nil
	}
	// Completeness net: the dominance key deliberately omits the set of
	// modules a prefix has visited, so in a topology where equal-scored
	// arms reconverge, the surviving arm could later be blocked by the
	// per-module visit limit while the pruned one would have completed.
	// No built-in scenario triggers this, but FindBest is the default
	// compile engine for arbitrary topologies — so an empty result that
	// was not caused by an explicit valve (MaxStack prune, accepted-pop
	// cap) is re-checked against the exhaustive enumerator before "no
	// path" is reported. The cost is paid only on the no-path error
	// path (including a Prefer flavour that genuinely does not exist),
	// bounded by the enumerator's own MaxPaths cap. Known residual of
	// the same hole: if the blocked survivor completes via a *worse*
	// suffix instead of not at all, the returned path can be
	// metric-suboptimal — accepted as the price of a visited-set-free
	// dominance key (tracked in ROADMAP's finder follow-ups).
	if f.stats.StackCap == 0 && acceptedPops < f.max {
		exh := spec
		exh.Exhaustive = true
		p, estats, err := g.FindBest(exh)
		f.stats.Expanded += estats.Expanded
		return p, f.stats, err
	}
	return nil, f.stats, nil
}

// expand pushes every admissible successor of a popped partial path.
func (f *bfFinder) expand(b *bfNode) {
	switch b.mode.To {
	case core.EndUp:
		ups := f.g.Above(b.node)
		if len(ups) == 0 {
			f.stats.DeadEnd++
		}
		for _, up := range ups {
			f.enter(b, up, core.EndDown, b.node, "", "")
		}
	case core.EndDown:
		downs := f.g.Below(b.node)
		if len(downs) == 0 {
			f.stats.DeadEnd++
		}
		for _, down := range downs {
			f.enter(b, down, core.EndUp, b.node, "", "")
		}
	case core.EndPhy:
		// External exits only ever complete the path at the goal module
		// (maybeAccept rejects everything else), so skip them entirely on
		// transit nodes and, when the spec pins the exit port, probe that
		// one attachment instead of scanning the edge switch's thousands
		// of customer ports.
		if b.node.Ref == f.spec.To {
			if f.spec.ToPipe != "" {
				if pa, ok := f.g.PhysAt(b.node, f.spec.ToPipe); ok && pa.External && pa.Pipe != b.entryPhys {
					f.maybeAccept(b, pa.Pipe)
				}
			} else {
				for _, pa := range f.g.Externals(b.node) {
					if pa.Pipe != b.entryPhys {
						f.maybeAccept(b, pa.Pipe)
					}
				}
			}
		}
		for _, pa := range f.g.Wires(b.node) {
			if pa.Pipe != b.entryPhys { // never exit the pipe we entered on
				f.enter(b, pa.Peer, core.EndPhy, nil, pa.PeerPipe, pa.Pipe)
			}
		}
	}
}

// enter tries every switching mode of node reachable from the given
// entry end, pushing one child hop per admissible mode. The cycle rule
// is the enumerator's: each module at most once per path, twice for
// [phy => down] L2 ETH modules (Fig 9b traverses module a twice).
func (f *bfFinder) enter(parent *bfNode, node *Node, entry core.PipeEnd, entryVia *Node, entryPhys, parentExit core.PipeID) {
	if parent != nil && parent.depth >= f.maxDepth {
		return
	}
	count := 0
	for b := parent; b != nil; b = b.parent {
		if b.node == node {
			count++
		}
	}
	if count >= visitLimit(node) {
		f.stats.Visited++
		return
	}
	for _, mode := range node.Abs.Switch.Modes {
		if mode.From != entry {
			continue
		}
		if child := f.makeChild(parent, node, mode, entryVia, entryPhys, parentExit); child != nil {
			f.push(child)
		}
	}
}

// makeChild applies the mode's header effect and the paper's pruning
// rules (protocol sanity, external-frame termination, Fig 6b address
// domains) to produce the child hop, or nil when the branch is pruned.
func (f *bfFinder) makeChild(parent *bfNode, node *Node, mode core.SwitchMode, entryVia *Node, entryPhys, parentExit core.PipeID) *bfNode {
	stack := f.initial
	if parent != nil {
		stack = parent.stack
	}
	newStack := stack
	switch mode.Effect() {
	case core.EffectPop, core.EffectProcess:
		if stack == nil {
			f.stats.StackUnderflow++
			return nil
		}
		if !f.spec.DisableSanityPruning && canon(stack.protocol) != canon(node.Ref.Name) {
			f.stats.NameMismatch++
			return nil
		}
		// The customer's own Ethernet framing may only be terminated at
		// the goal's endpoint modules.
		if stack.external && canon(stack.protocol) == core.NameETH &&
			node.Ref != f.spec.From && node.Ref != f.spec.To {
			f.stats.ExternalLeak++
			return nil
		}
		// Address-domain rule (Fig 6b).
		if !f.spec.DisableDomainPruning &&
			canon(node.Ref.Name) == core.NameIPv4 &&
			stack.domain != "" && node.Domain != "" && stack.domain != node.Domain {
			f.stats.DomainMismatch++
			return nil
		}
		if mode.Effect() == core.EffectPop {
			newStack = stack.below
		}
	case core.EffectPush:
		if stack != nil && stack.depth >= f.maxStack {
			f.stats.StackCap++
			return nil
		}
		newStack = pushStack(stack, node.Ref.Name, node.Domain, false)
	}

	child := &bfNode{
		parent: parent, node: node, mode: mode,
		entryVia: entryVia, entryPhys: entryPhys, parentExit: parentExit,
		depth: 1, stack: newStack,
	}
	if parent != nil {
		child.depth = parent.depth + 1
		child.pipes = parent.pipes
		if entryPhys == "" {
			child.pipes++ // the parent exits through an up-down pipe
		}
		child.fast = parent.fast
		child.flav = parent.flav
		child.mods = parent.mods + ", " + string(node.Ref.Module)
		child.modes = parent.modes + mode.String()
		if entryPhys == "" {
			child.devVLAN, child.devIPv4, child.devMPLS = parent.devVLAN, parent.devIPv4, parent.devMPLS
		} else {
			// Crossing a wire completes the parent's device traversal:
			// fold its flavour accumulators and start fresh.
			foldDevice(&child.flav, parent)
		}
	} else {
		child.mods = string(node.Ref.Module)
		child.modes = mode.String()
	}
	if node.Abs.Attributes["forwarding"] == "fast" {
		child.fast = true
	}
	applyFlavor(child, node, mode)
	if f.spec.Prefer != "" && !flavorViable(f.spec.Prefer, child.flav) {
		f.stats.PreferMismatch++
		return nil
	}
	return child
}

// PreferRecognized reports whether a preference string belongs to one
// of the flavour families the goal-directed pruner understands (the
// Describe() vocabulary: VLAN tunnel variants, plain, MPLS, GRE-IP and
// IP-IP tunnels, with or without qualifiers). An unrecognised string
// never matches any built-in Describe() output, so the search runs
// undirected and finds nothing of that flavour; FindBest flags it via
// PruneStats.PreferUnknown so callers can warn instead of reporting a
// bare "no path".
func PreferRecognized(prefer string) bool {
	switch {
	case strings.HasPrefix(prefer, "VLAN"),
		prefer == "plain",
		prefer == "MPLS",
		strings.HasPrefix(prefer, "GRE-IP tunnel"),
		strings.HasPrefix(prefer, "IP-IP tunnel"):
		return true
	}
	return false
}

// flavorViable reports whether a partial path's flavour features can
// still complete into the preferred Describe() string — the
// goal-direction of the search. Only monotone features are consulted
// (hasGRE, vlanUsed, group counts, plainDev and firstMPLS never revert
// once set), so a false here is definitive; unrecognised preference
// strings (see PreferRecognized) disable the filter rather than risk
// hiding the preferred path, costing only extra expansions.
func flavorViable(prefer string, fl bfFlavor) bool {
	switch {
	case prefer == "VLAN tunnel":
		// One tag spanning every switch: no transparently bridged
		// device, no second tag group.
		return !fl.plainDev && fl.vlanGroups <= 1
	case prefer == "VLAN tunnel (segmented)":
		return !fl.plainDev
	case strings.HasPrefix(prefer, "VLAN"):
		return true
	case prefer == "plain":
		return !fl.hasGRE && !fl.vlanUsed && fl.ipGroups == 0 && fl.firstMPLS == ""
	case prefer == "MPLS":
		return !fl.hasGRE && !fl.vlanUsed && fl.ipGroups == 0
	case strings.HasPrefix(prefer, "GRE-IP tunnel"):
		if fl.vlanUsed {
			return false
		}
		return prefer != "GRE-IP tunnel" || fl.firstMPLS == ""
	case strings.HasPrefix(prefer, "IP-IP tunnel"):
		if fl.vlanUsed || fl.hasGRE {
			return false
		}
		return prefer != "IP-IP tunnel" || fl.firstMPLS == ""
	default:
		return true
	}
}

// foldDevice folds a left device's accumulators into the flavour.
func foldDevice(fl *bfFlavor, b *bfNode) {
	if !b.devVLAN {
		fl.plainDev = true
	}
	if b.devIPv4 && !b.devMPLS {
		fl.ipOffMPLS = true
	}
}

// applyFlavor records one hop's contribution to the flavour signature.
func applyFlavor(b *bfNode, node *Node, mode core.SwitchMode) {
	name := canon(node.Ref.Name)
	push := mode.Effect() == core.EffectPush
	switch name {
	case core.NameGRE:
		b.flav.hasGRE = true
	case core.NameVLAN:
		b.flav.vlanUsed = true
		b.devVLAN = true
		if push && b.flav.vlanGroups < 3 {
			b.flav.vlanGroups++
		}
	case core.NameIPv4:
		b.devIPv4 = true
		if push && b.flav.ipGroups < 3 {
			b.flav.ipGroups++
		}
	case core.NameMPLS:
		b.devMPLS = true
		if b.flav.firstMPLS == "" {
			b.flav.firstMPLS = node.Ref.Device
		}
		b.flav.lastMPLS = node.Ref.Device
	}
}

// push inserts a child into the frontier unless a recorded arrival at
// the same dominance state makes it redundant; recorded arrivals the
// child supersedes are dropped (skipped when they pop).
func (f *bfFinder) push(child *bfNode) {
	key := fmt.Sprintf("%s|%s|%q|%s|%s|%v%v%v",
		child.node.Ref, child.mode, string(child.entryPhys),
		child.stack.sig(), child.flav.sig(),
		child.devVLAN, child.devIPv4, child.devMPLS)
	recs := f.seen[key]
	for _, r := range recs {
		if r.dominates(child) {
			return
		}
	}
	kept := recs[:0]
	for _, r := range recs {
		if child.dominates(r) {
			r.dropped = true
		} else {
			kept = append(kept, r)
		}
	}
	f.seen[key] = append(kept, child)
	f.seq++
	child.seq = f.seq
	heap.Push(&f.queue, child)
}

// maybeAccept pushes a completed-path leaf when the hop exits the goal
// module's external pipe with a clean header stack: the freshly pushed
// Ethernet header directly above the customer's original IP packet.
func (f *bfFinder) maybeAccept(b *bfNode, pipe core.PipeID) {
	if b.node.Ref != f.spec.To {
		return
	}
	if f.spec.ToPipe != "" && pipe != f.spec.ToPipe {
		return
	}
	s := b.stack
	if s == nil || s.external || canon(s.protocol) != core.NameETH {
		return
	}
	if s.below == nil || !s.below.external || s.below.below != nil {
		return
	}
	leaf := *b
	leaf.accepted = true
	leaf.finalPhys = pipe
	f.seq++
	leaf.seq = f.seq
	heap.Push(&f.queue, &leaf)
}

// materialize rebuilds the full Path from an accepted leaf's hop chain,
// replaying the enumerator's peer-group bookkeeping so the result is
// structurally identical to an enumerated path.
func (f *bfFinder) materialize(leaf *bfNode) *Path {
	var chain []*bfNode
	for b := leaf; b != nil; b = b.parent {
		chain = append(chain, b)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	groups := []PeerGroup{
		{Protocol: core.NameETH, External: true},
		{Protocol: core.NameIPv4, Domain: f.spec.TrafficDomain, External: true},
	}
	stack := []int{0, 1}
	hops := make([]Hop, len(chain))
	for i, b := range chain {
		h := Hop{Node: b.node, Mode: b.mode, EntryVia: b.entryVia, EntryPhys: b.entryPhys}
		switch b.mode.Effect() {
		case core.EffectPop:
			h.Group = stack[0]
			groups[h.Group].Members = append(groups[h.Group].Members, i)
			groups[h.Group].Closed = true
			stack = stack[1:]
		case core.EffectProcess:
			h.Group = stack[0]
			groups[h.Group].Members = append(groups[h.Group].Members, i)
		case core.EffectPush:
			h.Group = len(groups)
			groups = append(groups, PeerGroup{
				Protocol: b.node.Ref.Name, Domain: b.node.Domain, Members: []int{i},
			})
			stack = append([]int{h.Group}, stack...)
		}
		if i+1 < len(chain) {
			next := chain[i+1]
			if next.entryPhys == "" {
				h.ExitVia = next.node
			} else {
				h.ExitPhys = next.parentExit
			}
		} else {
			h.ExitPhys = b.finalPhys
		}
		hops[i] = h
	}
	return &Path{Hops: hops, Groups: groups}
}
