package nm

import (
	"fmt"
	"sort"
	"strings"

	"conman/internal/core"
	"conman/internal/msg"
)

// Intent is a declarative connectivity goal: the NM holds it as desired
// state and can (re)derive device configuration from it at any time —
// the paper's model of a manager that keeps high-level goals and
// re-invokes configuration after failures (§II, §IV). An Intent is
// side-effect free; Plan computes what would change and Apply reconciles
// the network toward it.
type Intent struct {
	// Name identifies the intent in plan renderings.
	Name string
	// Goal is the high-level connectivity goal (§III-C).
	Goal Goal
	// Prefer pins a path flavour by its Describe() string ("GRE-IP
	// tunnel", "MPLS", "VLAN tunnel"); empty selects the paper's path
	// selector (minimise pipes, prefer fast forwarding).
	Prefer string
	// MaxPaths bounds the path search (0 = DefaultMaxPaths): the
	// enumeration cap in Exhaustive mode, a safety valve otherwise.
	MaxPaths int
	// Exhaustive compiles through the legacy enumerate-then-filter
	// finder instead of the default best-first search (A/B testing;
	// infeasible on long L2 chains, where the enumeration cap truncates
	// the variant space).
	Exhaustive bool
}

// Plan is the diff between an intent's desired configuration and the
// device state the NM observed via showActual: per-device delete batches
// for stale components and create batches for missing ones. A Plan is
// inert until Apply executes it, so it doubles as the dry-run rendering.
type Plan struct {
	Intent Intent
	// Path is the chosen module-level path (nil for destroy plans the
	// intent could no longer resolve).
	Path *Path
	// Deletes are per-device batches removing stale components (switch
	// rules first, then pipes). Executed before Creates.
	Deletes []DeviceScript
	// Creates are per-device batches creating missing components, in
	// compiler order.
	Creates []DeviceScript
	// InPlace counts desired components that were already configured and
	// therefore appear in neither batch.
	InPlace int
	// Unreachable lists stranded devices (previously touched, off the
	// current path) that could not be observed — killed or partitioned.
	// Their stale state cannot be pruned this pass; the NM remembers
	// them and retries when they answer again.
	Unreachable []core.DeviceID

	// touched is the device set of the intent's current path; a
	// successful Apply records it so later Plans prune devices the path
	// migrated away from. Destroy plans clear the record instead.
	touched []core.DeviceID
	destroy bool
	// pruned lists stranded devices that were observed (and cleaned)
	// this pass; Apply clears their stale mark.
	pruned []core.DeviceID
	// handleDeps are the (provider, component) pairs desired rules embed
	// resolved handles from; Apply installs triggers for them (§II-E).
	handleDeps []handleDep
}

// Empty reports whether applying the plan would send no commands.
func (p *Plan) Empty() bool { return len(p.Deletes) == 0 && len(p.Creates) == 0 }

// Render prints the plan in the dry-run style of declarative tooling:
// every command that Apply would send, per device, plus a summary line.
func (p *Plan) Render() string {
	var b strings.Builder
	title := p.Intent.Name
	if title == "" {
		title = "(unnamed)"
	}
	fmt.Fprintf(&b, "plan for intent %q", title)
	if p.Path != nil {
		fmt.Fprintf(&b, " — path %s: %s", p.Path.Describe(), p.Path.Modules())
	}
	b.WriteString("\n")
	for _, ds := range p.Deletes {
		for _, line := range ds.Rendered {
			fmt.Fprintf(&b, "  %s: %s\n", ds.Device, line)
		}
	}
	for _, ds := range p.Creates {
		for _, line := range ds.Rendered {
			fmt.Fprintf(&b, "  %s: %s\n", ds.Device, line)
		}
	}
	creates, deletes := 0, 0
	for _, ds := range p.Creates {
		creates += len(ds.Items)
	}
	for _, ds := range p.Deletes {
		deletes += len(ds.Items)
	}
	if p.Empty() {
		fmt.Fprintf(&b, "  no changes (%d components in place)\n", p.InPlace)
	} else {
		fmt.Fprintf(&b, "  %d to create, %d to delete, %d in place\n", creates, deletes, p.InPlace)
	}
	return b.String()
}

// graph returns the potential-connectivity graph for the NM's current
// compile generation, rebuilding only when discovery, topology or
// domain knowledge moved since the last build. Cache misses rebuild
// outside n.mu (BuildGraph takes it internally); a generation that
// moved mid-build simply leaves the cache unset for the next caller.
func (n *NM) graph() (*Graph, error) {
	n.mu.Lock()
	gen := n.compileGen
	if g := n.graphCache; g != nil && n.graphGen == gen {
		n.mu.Unlock()
		return g, nil
	}
	n.mu.Unlock()
	g, err := BuildGraph(n)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.compileGen == gen {
		n.graphCache, n.graphGen = g, gen
	}
	n.mu.Unlock()
	return g, nil
}

// compileIntent resolves an intent to its chosen path and the full
// desired per-device scripts (what a from-scratch configuration would
// execute).
func (n *NM) compileIntent(intent Intent) (*Path, []DeviceScript, error) {
	g, err := n.graph()
	if err != nil {
		return nil, nil, err
	}
	chosen, stats, err := g.FindBest(FindSpec{
		From:          intent.Goal.From,
		To:            intent.Goal.To,
		TrafficDomain: intent.Goal.TrafficDomain,
		FromPipe:      intent.Goal.FromPipe,
		ToPipe:        intent.Goal.ToPipe,
		MaxPaths:      intent.MaxPaths,
		Prefer:        intent.Prefer,
		Exhaustive:    intent.Exhaustive,
	})
	if err != nil {
		return nil, nil, err
	}
	if chosen == nil {
		if stats.PreferUnknown {
			return nil, nil, fmt.Errorf("nm: intent %q: no %q path found — %q is not a path flavour the finder recognises (want a Describe() string such as \"GRE-IP tunnel\", \"MPLS\" or \"VLAN tunnel\"), so the search ran undirected", intent.Name, intent.Prefer, intent.Prefer)
		}
		if intent.Prefer != "" {
			return nil, nil, fmt.Errorf("nm: intent %q: no %q path found", intent.Name, intent.Prefer)
		}
		return nil, nil, fmt.Errorf("nm: intent %q: no path satisfies the goal", intent.Name)
	}
	scripts, err := n.Compile(chosen, intent.Goal)
	if err != nil {
		return nil, nil, err
	}
	return chosen, scripts, nil
}

// observed is the NM's per-device view of configured components, built
// from showActual.
type observed struct {
	// pipes maps a pipe id to the (upper, lower) modules it connects
	// and their remote peers. Physical pipes are excluded: the NM
	// cannot create or delete them.
	pipes map[core.PipeID]obsPipe
	// rules lists installed switch rules across the device's modules.
	rules []obsRule

	// The remaining fields are the incremental store's binding indexes,
	// lazily built by ensureIndex (storestate.go); a bare observed as
	// observe() or a test constructs it carries none of them.

	// claimed marks observed pipes bound to a desired union pipe.
	claimed map[core.PipeID]bool
	// usedIDs tracks every wire id ever observed on or allocated for the
	// device, so deleted ids are not reused while the entry is cached.
	usedIDs map[core.PipeID]bool
	// ruleIdx indexes rules by binding identity (obsRule.key) and
	// ruleByID by installed id; tombstoned rules (id=="") are unindexed.
	ruleIdx  map[string][]int
	ruleByID map[string]int
}

type obsPipe struct {
	upper, lower         core.ModuleRef
	upperPeer, lowerPeer core.ModuleRef
	// upperSeen reports whether the upper module reported the pipe (so
	// upperPeer is meaningful; switch ETH modules do not track pipes
	// they sit above).
	upperSeen bool
}

// matches reports whether the observed pipe satisfies a desired pipe
// request: same modules AND same remote peers — a pipe whose far-end
// peer changed must be recreated so the modules renegotiate (VID,
// keys, labels) with the new peer.
func (o obsPipe) matches(req core.PipeRequest) bool {
	if o.upper != req.Upper || o.lower != req.Lower || o.lowerPeer != req.LowerPeer {
		return false
	}
	if o.upperSeen {
		return o.upperPeer == req.UpperPeer
	}
	// The upper module does not report its pipes; only a peer-less
	// desired upper end can be confirmed in place.
	return req.UpperPeer.IsZero()
}

type obsRule struct {
	id       string
	module   core.ModuleRef
	from, to core.PipeID
	match    string
	via      string
	// matchResolved/viaResolved are the concrete values the rule was
	// installed with; a rule whose fresh resolution differs has drifted
	// and must be replaced even though its abstract form still matches.
	matchResolved string
	viaResolved   string
	// handle is the low-level handle the rule embeds from the module
	// below its To pipe (core.CanonicalHandle form), as the installing
	// module reported it; stale handles force replacement (§II-E).
	handle string
	used   bool
}

func classifierKey(c *core.Classifier) string {
	if c == nil {
		return ""
	}
	return c.Kind + "=" + c.Value
}

// observe fetches showActual for every device and condenses it into the
// diffable view. Devices are queried on the NM's worker pool. Devices in
// the optional set (stranded: previously touched, off every current
// path) may fail to answer — a killed device must not wedge
// reconciliation of the survivors — and are returned as unreachable
// with no entry in the map.
func (n *NM) observe(devs []core.DeviceID, optional map[core.DeviceID]bool) (map[core.DeviceID]*observed, []core.DeviceID, error) {
	out := make([]*observed, len(devs))
	unreach := make([]bool, len(devs))
	err := n.forEach(len(devs), func(i int) error {
		states, err := n.ShowActual(devs[i])
		if err != nil {
			if optional[devs[i]] {
				unreach[i] = true
				return nil
			}
			return err
		}
		o := &observed{pipes: make(map[core.PipeID]obsPipe)}
		for _, st := range states {
			for _, ps := range st.Pipes {
				// The module below a pipe reports it as an up pipe (Other
				// = the module above, Peer = its own remote peer); the
				// module above reports the same pipe as a down pipe
				// carrying the upper-side peer. Physical pipes are not
				// diffable.
				switch ps.End {
				case core.EndUp:
					op := o.pipes[ps.ID]
					op.upper, op.lower, op.lowerPeer = ps.Other, st.Ref, ps.Peer
					o.pipes[ps.ID] = op
				case core.EndDown:
					op := o.pipes[ps.ID]
					op.upperPeer, op.upperSeen = ps.Peer, true
					o.pipes[ps.ID] = op
				}
			}
			for _, r := range st.SwitchRules {
				o.rules = append(o.rules, obsRule{
					id: r.ID, module: st.Ref,
					from: r.From, to: r.To,
					match: classifierKey(r.Match), via: r.Via,
					matchResolved: r.MatchResolved, viaResolved: r.ViaResolved,
					handle: r.HandleResolved,
				})
			}
		}
		out[i] = o
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	m := make(map[core.DeviceID]*observed, len(devs))
	var unreachable []core.DeviceID
	for i, d := range devs {
		if unreach[i] {
			unreachable = append(unreachable, d)
			continue
		}
		m[d] = out[i]
	}
	sort.Slice(unreachable, func(i, j int) bool { return unreachable[i] < unreachable[j] })
	return m, unreachable, nil
}

// optionalSet builds the observe() optional set from a stranded list.
func optionalSet(stranded []core.DeviceID) map[core.DeviceID]bool {
	if len(stranded) == 0 {
		return nil
	}
	set := make(map[core.DeviceID]bool, len(stranded))
	for _, d := range stranded {
		set[d] = true
	}
	return set
}

func scriptDevices(scripts []DeviceScript) []core.DeviceID {
	out := make([]core.DeviceID, len(scripts))
	for i := range scripts {
		out[i] = scripts[i].Device
	}
	return out
}

// strandedDevices returns the devices a previous Apply of this intent
// touched that the current path no longer visits, in sorted order.
func (n *NM) strandedDevices(intentName string, current []core.DeviceID) []core.DeviceID {
	if intentName == "" {
		return nil
	}
	cur := make(map[core.DeviceID]bool, len(current))
	for _, d := range current {
		cur[d] = true
	}
	n.mu.Lock()
	var out []core.DeviceID
	for d := range n.intentDevs[intentName] {
		if !cur[d] {
			out = append(out, d)
			cur[d] = true
		}
	}
	// Devices that were unreachable when a previous pass wanted to prune
	// them: keep trying until they answer.
	for d := range n.staleDevs {
		if !cur[d] {
			out = append(out, d)
			cur[d] = true
		}
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// recordIntent updates the NM's memory of which devices an applied
// plan's intent occupies.
func (n *NM) recordIntent(plan *Plan) {
	if plan.Intent.Name == "" {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if plan.destroy {
		delete(n.intentDevs, plan.Intent.Name)
		return
	}
	set := make(map[core.DeviceID]bool, len(plan.touched))
	for _, d := range plan.touched {
		set[d] = true
	}
	n.intentDevs[plan.Intent.Name] = set
}

// pruneAll builds a delete batch removing every observed switch rule
// and NM-created pipe of one device (used for devices an intent's path
// migrated away from).
func pruneAll(dev core.DeviceID, o *observed) DeviceScript {
	del := DeviceScript{Device: dev}
	for j := range o.rules {
		or := &o.rules[j]
		di, rendered := deleteItem(core.DeleteRequest{
			Kind: core.ComponentSwitchRule, Module: or.module, ID: or.id,
		})
		del.Items = append(del.Items, di)
		del.Rendered = append(del.Rendered, rendered)
	}
	ids := make([]core.PipeID, 0, len(o.pipes))
	for id, op := range o.pipes {
		if op.lower.IsZero() {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		di, rendered := deleteItem(core.DeleteRequest{
			Kind: core.ComponentPipe, Module: o.pipes[id].lower, ID: string(id),
		})
		del.Items = append(del.Items, di)
		del.Rendered = append(del.Rendered, rendered)
	}
	return del
}

// deleteItem builds one delete command plus its rendering.
func deleteItem(req core.DeleteRequest) (msg.CommandItem, string) {
	return msg.CommandItem{Delete: &msg.DeleteReq{Req: req}},
		fmt.Sprintf("delete (%s, %s, %s)", req.Kind, req.Module, req.ID)
}

// Plan computes the reconciliation diff for an intent: it compiles the
// desired configuration, observes the actual state of every device on
// the chosen path — plus any device a previous Apply of this intent
// touched that the path has since migrated away from — and returns
// per-device batches that create what is missing and delete what is
// stale. Planning sends no configuration commands; Apply(plan) twice
// in a row therefore sends zero commands on the second pass.
func (n *NM) Plan(intent Intent) (*Plan, error) {
	path, desired, err := n.compileIntent(intent)
	if err != nil {
		return nil, err
	}
	devs := scriptDevices(desired)
	stranded := n.strandedDevices(intent.Name, devs)
	obs, unreachable, err := n.observe(append(append([]core.DeviceID(nil), devs...), stranded...), optionalSet(stranded))
	if err != nil {
		return nil, err
	}

	plan := &Plan{Intent: intent, Path: path, touched: devs, Unreachable: unreachable}
	// Devices a previous Apply of this intent touched but the current
	// path avoids (e.g. rerouted around a failure): everything on them
	// is stale. Unreachable ones are skipped and remembered.
	for _, dev := range stranded {
		o := obs[dev]
		if o == nil {
			continue
		}
		plan.pruned = append(plan.pruned, dev)
		if del := pruneAll(dev, o); len(del.Items) > 0 {
			plan.Deletes = append(plan.Deletes, del)
		}
	}
	for _, ds := range desired {
		o := obs[ds.Device]
		var creates DeviceScript
		var delRules, delPipes DeviceScript
		creates.Device, delRules.Device, delPipes.Device = ds.Device, ds.Device, ds.Device

		// Pipe pass: decide which desired pipes are in place. A pipe id
		// observed with different endpoints is churned: deleted and
		// recreated. Rules referencing churned pipes cannot be kept.
		churned := map[core.PipeID]bool{}
		desiredPipes := map[core.PipeID]bool{}
		lowerOf := map[core.PipeID]core.ModuleRef{}
		for _, item := range ds.Items {
			if item.Pipe == nil {
				continue
			}
			id := item.Pipe.ID
			desiredPipes[id] = true
			lowerOf[id] = item.Pipe.Req.Lower
			got, exists := o.pipes[id]
			switch {
			case exists && got.matches(item.Pipe.Req):
				plan.InPlace++
			case exists:
				// Same id, different endpoints or peers: replace, so the
				// modules renegotiate with the new far end.
				di, rendered := deleteItem(core.DeleteRequest{
					Kind: core.ComponentPipe, Module: got.lower, ID: string(id),
				})
				delPipes.Items = append(delPipes.Items, di)
				delPipes.Rendered = append(delPipes.Rendered, rendered)
				churned[id] = true
			default:
				churned[id] = true
			}
		}

		// Stale pipes: observed, deletable, but not desired. (Entries
		// with a zero lower module were only reported from their upper
		// end and cannot be addressed for deletion.)
		var staleIDs []core.PipeID
		for id, op := range o.pipes {
			if !desiredPipes[id] && !op.lower.IsZero() {
				staleIDs = append(staleIDs, id)
			}
		}
		sort.Slice(staleIDs, func(i, j int) bool { return staleIDs[i] < staleIDs[j] })
		for _, id := range staleIDs {
			di, rendered := deleteItem(core.DeleteRequest{
				Kind: core.ComponentPipe, Module: o.pipes[id].lower, ID: string(id),
			})
			delPipes.Items = append(delPipes.Items, di)
			delPipes.Rendered = append(delPipes.Rendered, rendered)
			churned[id] = true
		}

		// Item pass, in compiler order (so the create batch reads exactly
		// like a from-scratch script): a desired pipe is created unless
		// in place; a desired rule is in place iff an identical rule is
		// observed and none of its pipes churned. Every observed rule not
		// kept this way is stale and deleted (its pipes changed, or it
		// belongs to a previous configuration).
		for i, item := range ds.Items {
			switch {
			case item.Pipe != nil:
				if churned[item.Pipe.ID] {
					creates.Items = append(creates.Items, item)
					creates.Rendered = append(creates.Rendered, ds.Rendered[i])
				}
			case item.Switch != nil:
				r := item.Switch.Rule
				// The rule consumes exported handles when it steers into a
				// pipe whose lower module is a *different* module that
				// advertises HandleFields (an egress rule's To pipe has the
				// rule's own module below it — nothing is embedded).
				prov, hasProv := lowerOf[r.To]
				exports := hasProv && prov != r.Module && n.handleExporter(prov)
				if exports {
					plan.handleDeps = append(plan.handleDeps, handleDep{prov, "pipe:" + string(r.To)})
				}
				kept := false
				if !churned[r.From] && !churned[r.To] {
					for j := range o.rules {
						or := &o.rules[j]
						if or.used || or.module != r.Module || or.from != r.From || or.to != r.To {
							continue
						}
						if or.match != classifierKey(r.Match) || or.via != r.Via {
							continue
						}
						// Resolved-value drift: the NM's domain/gateway
						// knowledge changed since install — replace.
						if or.matchResolved != item.Switch.MatchResolved ||
							or.viaResolved != item.Switch.ViaResolved {
							continue
						}
						// Stale embedded handle (§II-E): the module below
						// To regenerated its exported fields (pipe churn
						// renumbered an NHLFE); the rule's embedded copy
						// points at dead state — replace.
						if exports && !n.handleFresh(prov, r.To, or.handle) {
							continue
						}
						or.used = true
						kept = true
						break
					}
				}
				if kept {
					plan.InPlace++
					continue
				}
				creates.Items = append(creates.Items, item)
				creates.Rendered = append(creates.Rendered, ds.Rendered[i])
			default:
				// Filters and other non-diffed items always execute.
				creates.Items = append(creates.Items, item)
				creates.Rendered = append(creates.Rendered, ds.Rendered[i])
			}
		}
		for j := range o.rules {
			or := &o.rules[j]
			if or.used {
				continue
			}
			di, rendered := deleteItem(core.DeleteRequest{
				Kind: core.ComponentSwitchRule, Module: or.module, ID: or.id,
			})
			delRules.Items = append(delRules.Items, di)
			delRules.Rendered = append(delRules.Rendered, rendered)
		}

		// Rules are deleted before the pipes they reference so modules
		// can undo rule state while the pipes still exist.
		del := DeviceScript{Device: ds.Device}
		del.Items = append(append(del.Items, delRules.Items...), delPipes.Items...)
		del.Rendered = append(append(del.Rendered, delRules.Rendered...), delPipes.Rendered...)
		if len(del.Items) > 0 {
			plan.Deletes = append(plan.Deletes, del)
		}
		if len(creates.Items) > 0 {
			plan.Creates = append(plan.Creates, creates)
		}
	}
	return plan, nil
}

// PlanDestroy computes the teardown plan for an intent: every component
// of the intent's configuration that is actually present is deleted
// (switch rules first, then pipes, in reverse creation order). Planning
// sends no configuration commands.
func (n *NM) PlanDestroy(intent Intent) (*Plan, error) {
	path, desired, err := n.compileIntent(intent)
	if err != nil {
		return nil, err
	}
	devs := scriptDevices(desired)
	stranded := n.strandedDevices(intent.Name, devs)
	obs, unreachable, err := n.observe(append(append([]core.DeviceID(nil), devs...), stranded...), optionalSet(stranded))
	if err != nil {
		return nil, err
	}
	plan := &Plan{Intent: intent, Path: path, destroy: true, Unreachable: unreachable}
	for _, dev := range stranded {
		o := obs[dev]
		if o == nil {
			continue
		}
		plan.pruned = append(plan.pruned, dev)
		if del := pruneAll(dev, o); len(del.Items) > 0 {
			plan.Deletes = append(plan.Deletes, del)
		}
	}
	for _, ds := range desired {
		o := obs[ds.Device]
		var rules, pipes DeviceScript
		// Reverse creation order so dependent rules go before the pipes
		// they were built on.
		for i := len(ds.Items) - 1; i >= 0; i-- {
			item := ds.Items[i]
			switch {
			case item.Switch != nil:
				r := item.Switch.Rule
				for j := range o.rules {
					or := &o.rules[j]
					if or.used || or.module != r.Module || or.from != r.From || or.to != r.To {
						continue
					}
					if or.match != classifierKey(r.Match) || or.via != r.Via {
						continue
					}
					or.used = true
					di, rendered := deleteItem(core.DeleteRequest{
						Kind: core.ComponentSwitchRule, Module: or.module, ID: or.id,
					})
					rules.Items = append(rules.Items, di)
					rules.Rendered = append(rules.Rendered, rendered)
					break
				}
			case item.Pipe != nil:
				got, exists := o.pipes[item.Pipe.ID]
				if !exists || got.lower.IsZero() {
					continue
				}
				di, rendered := deleteItem(core.DeleteRequest{
					Kind: core.ComponentPipe, Module: got.lower, ID: string(item.Pipe.ID),
				})
				pipes.Items = append(pipes.Items, di)
				pipes.Rendered = append(pipes.Rendered, rendered)
			}
		}
		del := DeviceScript{Device: ds.Device}
		del.Items = append(append(del.Items, rules.Items...), pipes.Items...)
		del.Rendered = append(append(del.Rendered, rules.Rendered...), pipes.Rendered...)
		if len(del.Items) > 0 {
			plan.Deletes = append(plan.Deletes, del)
		}
	}
	return plan, nil
}

// Apply reconciles the network toward the plan's intent: stale
// components are deleted first, then missing ones created, both through
// the wave executor (one batch per device per phase, concurrently
// across devices unless n.Sequential). Applying an empty plan sends
// nothing; applying the same intent's fresh Plan right after a
// successful Apply is therefore a no-op.
func (n *NM) Apply(plan *Plan) error {
	// The per-intent path writes device state behind the store's
	// observation cache, so every touched device's generation is bumped
	// and the next store pass observes it fresh.
	touched := make(map[core.DeviceID]bool)
	for _, ds := range plan.Deletes {
		touched[ds.Device] = true
	}
	for _, ds := range plan.Creates {
		touched[ds.Device] = true
	}
	defer n.invalidateDevices(touched)
	if len(plan.Deletes) > 0 {
		if err := n.Execute(plan.Deletes); err != nil {
			return fmt.Errorf("nm: apply %q (teardown phase): %w", plan.Intent.Name, err)
		}
	}
	if len(plan.Creates) > 0 {
		if err := n.Execute(plan.Creates); err != nil {
			return fmt.Errorf("nm: apply %q: %w", plan.Intent.Name, err)
		}
	}
	// Dependency maintenance (§II-E): watch every provider component a
	// desired rule embeds handles from, so churn fires a Trigger.
	if err := n.installHandleTriggers(plan.handleDeps); err != nil {
		return fmt.Errorf("nm: apply %q (triggers): %w", plan.Intent.Name, err)
	}
	n.markStale(plan.pruned, plan.Unreachable)
	n.recordIntent(plan)
	return nil
}

// Destroy tears an intent's configuration back down: it plans the
// teardown against observed state and applies it, returning the plan
// that was executed.
func (n *NM) Destroy(intent Intent) (*Plan, error) {
	plan, err := n.PlanDestroy(intent)
	if err != nil {
		return nil, err
	}
	if err := n.Apply(plan); err != nil {
		return plan, err
	}
	return plan, nil
}
