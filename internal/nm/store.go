package nm

// The intent store: the NM holds the full set of high-level goals and
// derives device configuration from their union (the paper's "NM holds
// all the goals" model, §III). Submit and Withdraw register and remove
// goals; Reconcile compiles every registered intent, merges the desired
// configuration per device with ownership tracking, diffs the union
// against observed state once, and sends create/delete batches that only
// remove components *no* registered intent wants. Intents sharing
// transit devices therefore coexist, and withdrawing one goal removes
// exactly its unshared components. NM.Plan remains available as the
// per-intent dry-run view of the same machinery.

import (
	"fmt"
	"sort"
	"strings"

	"conman/internal/core"
	"conman/internal/msg"
)

// Submit registers an intent (a named connectivity goal) in the NM's
// intent store, replacing any registered intent of the same name in
// place. Submitting sends nothing: the store only changes desired
// state, and the next Reconcile moves the network toward it.
func (n *NM) Submit(intent Intent) error {
	if intent.Name == "" {
		return fmt.Errorf("nm: submit: intent needs a name")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.store[intent.Name]; !ok {
		n.storeOrder = append(n.storeOrder, intent.Name)
	}
	n.store[intent.Name] = intent
	return nil
}

// Withdraw removes the named intent from the store. Its configuration
// stays on the devices until the next Reconcile, which prunes exactly
// the components no remaining intent wants (shared pipes and switch
// rules survive as long as another goal still needs them).
func (n *NM) Withdraw(name string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.store[name]; !ok {
		return fmt.Errorf("nm: withdraw: no intent %q registered", name)
	}
	delete(n.store, name)
	for i, s := range n.storeOrder {
		if s == name {
			n.storeOrder = append(n.storeOrder[:i], n.storeOrder[i+1:]...)
			break
		}
	}
	return nil
}

// Registered returns the store's intents in submission order.
func (n *NM) Registered() []Intent {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Intent, 0, len(n.storeOrder))
	for _, name := range n.storeOrder {
		out = append(out, n.store[name])
	}
	return out
}

// IntentView is one intent's slice of a StorePlan: the path chosen for
// it, the devices its desired configuration occupies, and how much of
// that configuration it shares with other registered intents.
type IntentView struct {
	// Intent is the registered goal this view describes.
	Intent Intent
	// Path is the module-level path the store compiled for the intent.
	Path *Path
	// Devices lists the devices the intent's configuration occupies.
	Devices []core.DeviceID
	// Exclusive counts desired components only this intent wants;
	// withdrawing the intent removes exactly these.
	Exclusive int
	// Shared counts desired components at least one other registered
	// intent wants too; these survive the intent's withdrawal.
	Shared int
}

// StorePlan is the store-wide reconciliation diff: the union of every
// registered intent's desired configuration, compared against observed
// device state in a single sweep. Like a Plan it is inert — computing
// it sends no configuration commands — and it doubles as the dry-run
// rendering of what Reconcile would do.
type StorePlan struct {
	// Views holds the per-intent breakdown, in submission order.
	Views []IntentView
	// Deletes are per-device batches removing components no registered
	// intent wants (switch rules before the pipes they reference).
	Deletes []DeviceScript
	// Creates are per-device batches creating missing components, in
	// first-appearance compiler order across the intents.
	Creates []DeviceScript
	// InPlace counts desired components already configured.
	InPlace int
	// Shared counts distinct desired components wanted by more than one
	// intent (the store's refcounted overlap).
	Shared int
	// Unreachable lists stranded devices (occupied only by withdrawn or
	// rerouted intents) that did not answer showActual — killed or
	// partitioned. Their stale state could not be pruned this pass; the
	// NM remembers them and retries once they answer again.
	Unreachable []core.DeviceID

	// records is the per-intent device occupancy a successful
	// ApplyStore commits to the NM's memory.
	records map[string][]core.DeviceID
	// pruned lists stranded devices that were observed (and cleaned)
	// this pass; ApplyStore clears their stale mark.
	pruned []core.DeviceID
	// handleDeps are the (provider, component) pairs desired rules embed
	// resolved handles from; ApplyStore installs triggers for them
	// (§II-E).
	handleDeps []handleDep
}

// Empty reports whether applying the store plan would send no commands.
func (p *StorePlan) Empty() bool { return len(p.Deletes) == 0 && len(p.Creates) == 0 }

// Render prints the store plan dry-run style: every intent's chosen
// path, every command Reconcile would send (shared components annotated
// with their owning intents), and a summary line.
func (p *StorePlan) Render() string {
	var b strings.Builder
	noun := "intents"
	if len(p.Views) == 1 {
		noun = "intent"
	}
	fmt.Fprintf(&b, "store plan (%d %s)\n", len(p.Views), noun)
	for _, v := range p.Views {
		fmt.Fprintf(&b, "  intent %q", v.Intent.Name)
		if v.Path != nil {
			fmt.Fprintf(&b, " — path %s: %s", v.Path.Describe(), v.Path.Modules())
		}
		fmt.Fprintf(&b, " (%d exclusive, %d shared components)\n", v.Exclusive, v.Shared)
	}
	for _, ds := range p.Deletes {
		for _, line := range ds.Rendered {
			fmt.Fprintf(&b, "  %s: %s\n", ds.Device, line)
		}
	}
	for _, ds := range p.Creates {
		for _, line := range ds.Rendered {
			fmt.Fprintf(&b, "  %s: %s\n", ds.Device, line)
		}
	}
	creates, deletes := 0, 0
	for _, ds := range p.Creates {
		creates += len(ds.Items)
	}
	for _, ds := range p.Deletes {
		deletes += len(ds.Items)
	}
	if p.Empty() {
		fmt.Fprintf(&b, "  no changes (%d components in place, %d shared)\n", p.InPlace, p.Shared)
	} else {
		fmt.Fprintf(&b, "  %d to create, %d to delete, %d in place, %d shared\n", creates, deletes, p.InPlace, p.Shared)
	}
	return b.String()
}

// unionPipe is one desired pipe in the union of all registered intents.
// Its identity is its content — endpoint modules, remote peers and
// dependency choices — not a compiled pipe id: intents compiled in
// isolation number their pipes independently, so the store matches
// pipes structurally and assigns wire ids afterwards (adopting the id
// of a matching observed pipe, or allocating a fresh one).
type unionPipe struct {
	req    core.PipeRequest
	owners []string
	// id is the resolved wire id: the observed pipe's id when the pipe
	// is already in place, a freshly allocated one otherwise.
	id      core.PipeID
	inPlace bool
}

// unionRule is one desired switch rule in the union. From/To referring
// to NM-created pipes are tracked through the unionPipe they resolve
// against (fromPipe/toPipe non-nil); physical pipe references stay
// literal.
type unionRule struct {
	rule             core.SwitchRule
	fromPipe, toPipe *unionPipe
	matchResolved    string
	viaResolved      string
	owners           []string
	kept             bool
}

// resolved returns the rule with From/To rewritten to the final wire
// ids of the union pipes it references.
func (r *unionRule) resolved() core.SwitchRule {
	rr := r.rule
	if r.fromPipe != nil {
		rr.From = r.fromPipe.id
	}
	if r.toPipe != nil {
		rr.To = r.toPipe.id
	}
	return rr
}

// unionItem keeps the per-device first-appearance order of desired
// components, so create batches read like a from-scratch script.
// Exactly one field is set.
type unionItem struct {
	pipe  *unionPipe
	rule  *unionRule
	other *unionOther
}

// unionOther is a non-diffed desired item (filters and future command
// kinds); it always executes, attributed to the intent that wants it.
type unionOther struct {
	item     msg.CommandItem
	rendered string
	owner    string
}

// deviceUnion is the merged desired configuration of one device across
// every registered intent, with ownership per component.
type deviceUnion struct {
	dev   core.DeviceID
	items []unionItem
	pipes map[string]*unionPipe
	rules map[string]*unionRule
}

// pipeKey is the canonical content identity of a desired pipe.
func pipeKey(req core.PipeRequest) string {
	var b strings.Builder
	b.WriteString(req.Upper.String())
	b.WriteByte('|')
	b.WriteString(req.Lower.String())
	b.WriteByte('|')
	b.WriteString(req.UpperPeer.String())
	b.WriteByte('|')
	b.WriteString(req.LowerPeer.String())
	for _, d := range req.Satisfy {
		b.WriteByte('|')
		b.WriteString(d.Token + "/" + d.Tradeoff + "/" + d.Value + "/" + d.Provider)
	}
	return b.String()
}

// ruleUnionKey is the canonical identity of a desired switch rule, with
// pipe references lifted into content space so two intents' rules over
// the same (structurally identical) pipes unify.
func ruleUnionKey(r *msg.CreateSwitchReq, fp, tp *unionPipe) string {
	from, to := string(r.Rule.From), string(r.Rule.To)
	if fp != nil {
		from = "pipe:" + pipeKey(fp.req)
	}
	if tp != nil {
		to = "pipe:" + pipeKey(tp.req)
	}
	return r.Rule.Module.String() + "|" + from + "|" + to + "|" +
		classifierKey(r.Rule.Match) + "|" + r.Rule.Via + "|" +
		fmt.Sprint(r.Rule.Bidirectional) + "|" + r.MatchResolved + "|" + r.ViaResolved
}

// ConflictError reports two registered intents whose desired switch
// rules classify the same traffic at the same module but steer it to
// different targets — a packet cannot obey both, so reconciliation
// refuses to install either and names the colliding goals instead of
// leaving the outcome to rule-installation order.
type ConflictError struct {
	// Device and Module locate the collision.
	Device core.DeviceID
	Module core.ModuleRef
	// IntentA/IntentB name one owner of each colliding rule, and
	// RuleA/RuleB are the rules as those intents compiled them.
	IntentA, IntentB string
	RuleA, RuleB     core.SwitchRule
	// TargetA/TargetB describe where each rule steers the traffic in
	// structural terms (compile-local pipe ids like P1 collide across
	// intents, so the rendered rules alone can look identical).
	TargetA, TargetB string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("nm: reconcile: conflicting switch rules on %s: intent %q wants %s (into %s), intent %q wants %s (into %s)",
		e.Module, e.IntentA, renderSwitchCreate(e.RuleA), e.TargetA, e.IntentB, renderSwitchCreate(e.RuleB), e.TargetB)
}

// conflicts scans one device union for classified rules that agree on
// (module, entry pipe, classifier) but disagree on where the traffic
// goes. Pipe references are compared structurally (two intents compile
// the same pipe under different local ids), and rules that unified into
// one union entry are by construction conflict-free.
func (du *deviceUnion) conflicts() error {
	type target struct {
		to  string
		via string
		it  *unionRule
	}
	seen := make(map[string]target)
	ident := func(lit core.PipeID, up *unionPipe) string {
		if up != nil {
			return "pipe:" + pipeKey(up.req)
		}
		return string(lit)
	}
	// describe renders a rule target for the error message: the pipe's
	// structural endpoints rather than a compile-local id.
	describe := func(lit core.PipeID, up *unionPipe, via string) string {
		out := string(lit)
		if up != nil {
			out = fmt.Sprintf("the %s~%s pipe", up.req.Upper, up.req.Lower)
		}
		if i := strings.IndexByte(via, '/'); i > 0 {
			out += " via " + via[:i]
		}
		return out
	}
	for _, it := range du.items {
		r := it.rule
		// Only value-carrying classifiers are exclusive: dst-domain
		// routes a prefix exactly one way, so divergent targets clash.
		// Valueless classifiers ("Tagged") select a traffic class that
		// L2 delivery further discriminates — the multi-tenant edge
		// legitimately fans one trunk out to several customer ports.
		if r == nil || r.rule.Match == nil || r.rule.Match.Value == "" {
			continue
		}
		key := r.rule.Module.String() + "|" + ident(r.rule.From, r.fromPipe) + "|" +
			classifierKey(r.rule.Match) + "|" + r.matchResolved
		tgt := target{to: ident(r.rule.To, r.toPipe), via: r.rule.Via + "/" + r.viaResolved, it: r}
		prev, ok := seen[key]
		if !ok {
			seen[key] = tgt
			continue
		}
		if prev.to != tgt.to || prev.via != tgt.via {
			return &ConflictError{
				Device:  du.dev,
				Module:  r.rule.Module,
				IntentA: prev.it.owners[0], IntentB: r.owners[0],
				RuleA: prev.it.rule, RuleB: r.rule,
				TargetA: describe(prev.it.rule.To, prev.it.toPipe, prev.via),
				TargetB: describe(r.rule.To, r.toPipe, tgt.via),
			}
		}
	}
	return nil
}

// addOwner appends an intent name once.
func addOwner(owners []string, name string) []string {
	for _, o := range owners {
		if o == name {
			return owners
		}
	}
	return append(owners, name)
}

// mergeScripts folds one intent's compiled device scripts into the
// per-device unions, recording ownership (refcounting) per component.
func mergeScripts(unions map[core.DeviceID]*deviceUnion, order *[]core.DeviceID, name string, scripts []DeviceScript) {
	for _, ds := range scripts {
		du := unions[ds.Device]
		if du == nil {
			du = &deviceUnion{
				dev:   ds.Device,
				pipes: make(map[string]*unionPipe),
				rules: make(map[string]*unionRule),
			}
			unions[ds.Device] = du
			*order = append(*order, ds.Device)
		}
		// local maps this intent's compile-time pipe ids (device-scoped
		// P0, P1, ...) to their union pipes.
		local := make(map[core.PipeID]*unionPipe)
		for i, item := range ds.Items {
			switch {
			case item.Pipe != nil:
				key := pipeKey(item.Pipe.Req)
				up := du.pipes[key]
				if up == nil {
					up = &unionPipe{req: item.Pipe.Req}
					du.pipes[key] = up
					du.items = append(du.items, unionItem{pipe: up})
				}
				up.owners = addOwner(up.owners, name)
				local[item.Pipe.ID] = up
			case item.Switch != nil:
				fp, tp := local[item.Switch.Rule.From], local[item.Switch.Rule.To]
				key := ruleUnionKey(item.Switch, fp, tp)
				ur := du.rules[key]
				if ur == nil {
					ur = &unionRule{
						rule: item.Switch.Rule, fromPipe: fp, toPipe: tp,
						matchResolved: item.Switch.MatchResolved,
						viaResolved:   item.Switch.ViaResolved,
					}
					du.rules[key] = ur
					du.items = append(du.items, unionItem{rule: ur})
				}
				ur.owners = addOwner(ur.owners, name)
			default:
				du.items = append(du.items, unionItem{other: &unionOther{
					item: item, rendered: ds.Rendered[i], owner: name,
				}})
			}
		}
	}
}

// ownersSuffix annotates a rendered create line with the owning intents
// when a component is shared.
func ownersSuffix(owners []string) string {
	if len(owners) < 2 {
		return ""
	}
	return "  [shared: " + strings.Join(owners, ", ") + "]"
}

// diff reconciles one device's union against its observed state,
// appending delete/create batches to the plan. Pipes are matched by
// content (adopting observed wire ids so surviving configuration is
// untouched); anything observed that no desired component claims is
// stale and deleted, rules before pipes. The NM is consulted for
// handle-freshness probes on rules that embed exported low-level
// fields (§II-E).
func (du *deviceUnion) diff(n *NM, o *observed, plan *StorePlan) {
	// Pipe pass 1: bind desired pipes to observed ones by content.
	claimed := make(map[core.PipeID]bool)
	obsIDs := make([]core.PipeID, 0, len(o.pipes))
	for id := range o.pipes {
		obsIDs = append(obsIDs, id)
	}
	sort.Slice(obsIDs, func(i, j int) bool { return obsIDs[i] < obsIDs[j] })
	for _, it := range du.items {
		if it.pipe == nil {
			continue
		}
		for _, id := range obsIDs {
			if claimed[id] {
				continue
			}
			if o.pipes[id].matches(it.pipe.req) {
				it.pipe.id, it.pipe.inPlace, claimed[id] = id, true, true
				plan.InPlace++
				break
			}
		}
	}
	// Pipe pass 2: allocate fresh wire ids for missing pipes, avoiding
	// every id observed on the device (stale pipes are deleted in the
	// same reconcile, but their ids are not reused within it).
	used := make(map[core.PipeID]bool, len(obsIDs))
	for _, id := range obsIDs {
		used[id] = true
	}
	next := 0
	for _, it := range du.items {
		if it.pipe == nil || it.pipe.inPlace {
			continue
		}
		for {
			cand := core.PipeID(fmt.Sprintf("P%d", next))
			next++
			if !used[cand] {
				it.pipe.id = cand
				used[cand] = true
				break
			}
		}
	}
	// Rule pass: a desired rule is kept iff an identical installed rule
	// exists and every NM-created pipe it references is in place (a rule
	// on a freshly created pipe resolves to a fresh id no installed rule
	// can match).
	for _, it := range du.items {
		if it.rule == nil {
			continue
		}
		// The rule consumes exported handles when it steers into a pipe
		// whose lower module is a *different* module that advertises
		// HandleFields (an egress rule's To pipe has the rule's own
		// module below it — nothing is embedded).
		exports := it.rule.toPipe != nil && it.rule.toPipe.req.Lower != it.rule.rule.Module &&
			n.handleExporter(it.rule.toPipe.req.Lower)
		if exports {
			// The rule embeds fields the To pipe's lower module exports:
			// register the dependency so ApplyStore installs a trigger.
			plan.handleDeps = append(plan.handleDeps, handleDep{
				it.rule.toPipe.req.Lower, "pipe:" + string(it.rule.toPipe.id),
			})
		}
		if (it.rule.fromPipe != nil && !it.rule.fromPipe.inPlace) ||
			(it.rule.toPipe != nil && !it.rule.toPipe.inPlace) {
			continue
		}
		rr := it.rule.resolved()
		for j := range o.rules {
			or := &o.rules[j]
			if or.used || or.module != rr.Module || or.from != rr.From || or.to != rr.To {
				continue
			}
			if or.match != classifierKey(rr.Match) || or.via != rr.Via {
				continue
			}
			// Resolved-value drift (SetDomain/SetGateway changed since
			// install): the abstract rule matches but its concrete
			// resolution no longer does — replace it.
			if or.matchResolved != it.rule.matchResolved || or.viaResolved != it.rule.viaResolved {
				continue
			}
			// Stale embedded handle (§II-E): the provider below the To
			// pipe regenerated its exported fields since this rule was
			// installed (e.g. an NHLFE renumbered by pipe churn), so the
			// installed rule's embedded copy points at dead state even
			// though its abstract and resolved forms still match —
			// replace it.
			if exports && !n.handleFresh(it.rule.toPipe.req.Lower, rr.To, or.handle) {
				continue
			}
			or.used = true
			it.rule.kept = true
			plan.InPlace++
			break
		}
	}
	// Stale observed state: rules no desired component kept, then pipes
	// no desired component claimed.
	del := DeviceScript{Device: du.dev}
	for j := range o.rules {
		or := &o.rules[j]
		if or.used {
			continue
		}
		di, rendered := deleteItem(core.DeleteRequest{
			Kind: core.ComponentSwitchRule, Module: or.module, ID: or.id,
		})
		del.Items = append(del.Items, di)
		del.Rendered = append(del.Rendered, rendered)
	}
	for _, id := range obsIDs {
		if claimed[id] || o.pipes[id].lower.IsZero() {
			continue
		}
		di, rendered := deleteItem(core.DeleteRequest{
			Kind: core.ComponentPipe, Module: o.pipes[id].lower, ID: string(id),
		})
		del.Items = append(del.Items, di)
		del.Rendered = append(del.Rendered, rendered)
	}
	if len(del.Items) > 0 {
		plan.Deletes = append(plan.Deletes, del)
	}
	// Creates, in first-appearance order across the intents.
	creates := DeviceScript{Device: du.dev}
	for _, it := range du.items {
		switch {
		case it.pipe != nil && !it.pipe.inPlace:
			creates.Items = append(creates.Items, msg.CommandItem{
				Pipe: &msg.CreatePipeItem{ID: it.pipe.id, Req: it.pipe.req},
			})
			creates.Rendered = append(creates.Rendered,
				renderPipeCreate(it.pipe.id, it.pipe.req)+ownersSuffix(it.pipe.owners))
		case it.rule != nil && !it.rule.kept:
			rr := it.rule.resolved()
			creates.Items = append(creates.Items, msg.CommandItem{
				Switch: &msg.CreateSwitchReq{
					Rule:          rr,
					MatchResolved: it.rule.matchResolved,
					ViaResolved:   it.rule.viaResolved,
				},
			})
			creates.Rendered = append(creates.Rendered,
				renderSwitchCreate(rr)+ownersSuffix(it.rule.owners))
		case it.other != nil:
			creates.Items = append(creates.Items, it.other.item)
			creates.Rendered = append(creates.Rendered, it.other.rendered)
		}
	}
	if len(creates.Items) > 0 {
		plan.Creates = append(plan.Creates, creates)
	}
}

// recordedDevices returns devices some previously applied intent
// (registered or since withdrawn) touched but no current desired script
// occupies, in sorted order. Everything observed on them is stale.
func (n *NM) recordedDevices(current []core.DeviceID) []core.DeviceID {
	cur := make(map[core.DeviceID]bool, len(current))
	for _, d := range current {
		cur[d] = true
	}
	n.mu.Lock()
	seen := make(map[core.DeviceID]bool)
	var out []core.DeviceID
	for _, devs := range n.intentDevs {
		for d := range devs {
			if !cur[d] && !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	// Devices that were unreachable when a previous pass wanted to prune
	// them: keep trying until they answer.
	for d := range n.staleDevs {
		if !cur[d] && !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	n.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PlanStore computes the store-wide reconciliation diff: it compiles
// every registered intent, merges the desired configuration per device
// (deduplicating pipes and switch rules by content, with ownership
// refcounts), observes every relevant device once — including devices
// only a withdrawn or rerouted intent occupied — and diffs the union
// against reality. Planning sends no configuration commands.
func (n *NM) PlanStore() (*StorePlan, error) {
	intents := n.Registered()
	plan := &StorePlan{records: make(map[string][]core.DeviceID, len(intents))}
	unions := make(map[core.DeviceID]*deviceUnion)
	var order []core.DeviceID
	for _, intent := range intents {
		path, scripts, err := n.compileIntent(intent)
		if err != nil {
			return nil, fmt.Errorf("nm: reconcile: %w", err)
		}
		devs := scriptDevices(scripts)
		plan.Views = append(plan.Views, IntentView{Intent: intent, Path: path, Devices: devs})
		plan.records[intent.Name] = devs
		mergeScripts(unions, &order, intent.Name, scripts)
	}
	// Conflict detection before anything is observed or sent: two goals
	// steering the same classified traffic to different places is a
	// specification error, reported as a typed ConflictError.
	for _, dev := range order {
		if err := unions[dev].conflicts(); err != nil {
			return nil, err
		}
	}
	stranded := n.recordedDevices(order)
	obs, unreachable, err := n.observe(append(append([]core.DeviceID(nil), order...), stranded...), optionalSet(stranded))
	if err != nil {
		return nil, err
	}
	plan.Unreachable = unreachable
	// Devices no registered intent occupies any more: everything on
	// them is stale. Unreachable ones are skipped and remembered.
	for _, dev := range stranded {
		o := obs[dev]
		if o == nil {
			continue
		}
		plan.pruned = append(plan.pruned, dev)
		if del := pruneAll(dev, o); len(del.Items) > 0 {
			plan.Deletes = append(plan.Deletes, del)
		}
	}
	for _, dev := range order {
		unions[dev].diff(n, obs[dev], plan)
	}
	// Sharing accounting, per intent and store-wide.
	viewOf := make(map[string]*IntentView, len(plan.Views))
	for i := range plan.Views {
		viewOf[plan.Views[i].Intent.Name] = &plan.Views[i]
	}
	tally := func(owners []string) {
		if len(owners) > 1 {
			plan.Shared++
		}
		for _, o := range owners {
			if v := viewOf[o]; v != nil {
				if len(owners) > 1 {
					v.Shared++
				} else {
					v.Exclusive++
				}
			}
		}
	}
	for _, dev := range order {
		for _, it := range unions[dev].items {
			switch {
			case it.pipe != nil:
				tally(it.pipe.owners)
			case it.rule != nil:
				tally(it.rule.owners)
			case it.other != nil:
				tally([]string{it.other.owner})
			}
		}
	}
	return plan, nil
}

// ApplyStore executes a store plan through the wave executor — stale
// components deleted first, missing ones created — and commits the
// per-intent device records the plan computed, replacing the NM's
// previous occupancy memory (withdrawn intents' records drop out here,
// after their components were pruned).
func (n *NM) ApplyStore(plan *StorePlan) error {
	if len(plan.Deletes) > 0 {
		if err := n.Execute(plan.Deletes); err != nil {
			return fmt.Errorf("nm: reconcile (teardown phase): %w", err)
		}
	}
	if len(plan.Creates) > 0 {
		if err := n.Execute(plan.Creates); err != nil {
			return fmt.Errorf("nm: reconcile: %w", err)
		}
	}
	// Dependency maintenance (§II-E): watch every provider component a
	// desired rule embeds handles from, so churn fires a Trigger.
	if err := n.installHandleTriggers(plan.handleDeps); err != nil {
		return fmt.Errorf("nm: reconcile (triggers): %w", err)
	}
	n.markStale(plan.pruned, plan.Unreachable)
	n.mu.Lock()
	n.intentDevs = make(map[string]map[core.DeviceID]bool, len(plan.records))
	for name, devs := range plan.records {
		set := make(map[core.DeviceID]bool, len(devs))
		for _, d := range devs {
			set[d] = true
		}
		n.intentDevs[name] = set
	}
	n.mu.Unlock()
	return nil
}

// Reconcile moves the network to the union of all registered intents:
// PlanStore followed by ApplyStore, returning the plan that was
// executed. Reconcile treats the store as the complete desired state —
// components no registered intent wants are pruned, and components two
// goals share are configured once and survive until the last owner is
// withdrawn. Reconcile is idempotent: immediately reconciling again
// sends zero commands.
func (n *NM) Reconcile() (*StorePlan, error) {
	plan, err := n.PlanStore()
	if err != nil {
		return nil, err
	}
	if err := n.ApplyStore(plan); err != nil {
		return plan, err
	}
	return plan, nil
}
