package nm

// The intent store: the NM holds the full set of high-level goals and
// derives device configuration from their union (the paper's "NM holds
// all the goals" model, §III). Submit, Update and Withdraw register,
// replace and remove goals; Reconcile merges the desired configuration
// per device with ownership tracking, diffs the union against observed
// state, and sends create/delete batches that only remove components
// *no* registered intent wants. Intents sharing transit devices
// therefore coexist, and withdrawing one goal removes exactly its
// unshared components. The work is incremental (storestate.go): only
// dirty intents recompile, only devices whose observation generation
// moved re-observe, and every mutation is journaled through the
// datastore package when persistence is attached. NM.Plan remains
// available as the per-intent dry-run view of the same machinery.

import (
	"fmt"
	"sort"
	"strings"

	"conman/internal/core"
	"conman/internal/msg"
	"conman/internal/nm/datastore"
)

// DuplicateIntentError reports a Submit of an intent name that is
// already registered. Replacing a live intent is a distinct operation
// (Update) so a name collision between unrelated goals cannot silently
// overwrite desired state.
type DuplicateIntentError struct{ Name string }

func (e *DuplicateIntentError) Error() string {
	return fmt.Sprintf("nm: submit: intent %q is already registered (use Update to replace it)", e.Name)
}

// UnknownIntentError reports an operation on an intent name the store
// does not hold.
type UnknownIntentError struct {
	Op   string // "withdraw" or "update"
	Name string
}

func (e *UnknownIntentError) Error() string {
	return fmt.Sprintf("nm: %s: no intent %q registered", e.Op, e.Name)
}

// Submit registers a new intent (a named connectivity goal) in the NM's
// intent store. Submitting an already-registered name is a typed
// DuplicateIntentError — use Update to replace a live intent.
// Submitting sends nothing: the store only changes desired state, and
// the next Reconcile moves the network toward it.
func (n *NM) Submit(intent Intent) error {
	if intent.Name == "" {
		return fmt.Errorf("nm: submit: intent needs a name")
	}
	n.mu.Lock()
	if _, ok := n.store[intent.Name]; ok {
		n.mu.Unlock()
		return &DuplicateIntentError{Name: intent.Name}
	}
	n.storePos[intent.Name] = len(n.storeOrder)
	n.storeOrder = append(n.storeOrder, intent.Name)
	n.store[intent.Name] = intent
	n.ssDirty[intent.Name] = true
	// A withdraw-then-resubmit within one reconcile window is a
	// replacement; the dirty mark alone covers it.
	delete(n.ssRemoved, intent.Name)
	err := n.journalLocked(datastore.OpSubmit, intent.Name, intent, 0)
	n.mu.Unlock()
	return err
}

// Update replaces a registered intent's goal in place, keeping its
// submission position. Updating an unknown name is a typed
// UnknownIntentError.
func (n *NM) Update(intent Intent) error {
	if intent.Name == "" {
		return fmt.Errorf("nm: update: intent needs a name")
	}
	n.mu.Lock()
	if _, ok := n.store[intent.Name]; !ok {
		n.mu.Unlock()
		return &UnknownIntentError{Op: "update", Name: intent.Name}
	}
	n.store[intent.Name] = intent
	n.ssDirty[intent.Name] = true
	err := n.journalLocked(datastore.OpUpdate, intent.Name, intent, 0)
	n.mu.Unlock()
	return err
}

// Withdraw removes the named intent from the store. Its configuration
// stays on the devices until the next Reconcile, which prunes exactly
// the components no remaining intent wants (shared pipes and switch
// rules survive as long as another goal still needs them). Withdrawing
// an unknown name is a typed UnknownIntentError.
func (n *NM) Withdraw(name string) error {
	n.mu.Lock()
	if _, ok := n.store[name]; !ok {
		n.mu.Unlock()
		return &UnknownIntentError{Op: "withdraw", Name: name}
	}
	delete(n.store, name)
	delete(n.ssDirty, name)
	n.ssRemoved[name] = true
	delete(n.storePos, name)
	for i, s := range n.storeOrder {
		if s == name {
			n.storeOrder = append(n.storeOrder[:i], n.storeOrder[i+1:]...)
			for j := i; j < len(n.storeOrder); j++ {
				n.storePos[n.storeOrder[j]] = j
			}
			break
		}
	}
	err := n.journalLocked(datastore.OpWithdraw, name, nil, 0)
	n.mu.Unlock()
	return err
}

// Registered returns the store's intents in submission order.
func (n *NM) Registered() []Intent {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Intent, 0, len(n.storeOrder))
	for _, name := range n.storeOrder {
		out = append(out, n.store[name])
	}
	return out
}

// IntentView is one intent's slice of a StorePlan: the path chosen for
// it, the devices its desired configuration occupies, and how much of
// that configuration it shares with other registered intents.
type IntentView struct {
	// Intent is the registered goal this view describes.
	Intent Intent
	// Path is the module-level path the store compiled for the intent.
	Path *Path
	// Devices lists the devices the intent's configuration occupies.
	Devices []core.DeviceID
	// Exclusive counts desired components only this intent wants;
	// withdrawing the intent removes exactly these.
	Exclusive int
	// Shared counts desired components at least one other registered
	// intent wants too; these survive the intent's withdrawal.
	Shared int
}

// StorePlan is the store-wide reconciliation diff: the union of every
// registered intent's desired configuration, compared against observed
// device state in a single sweep. Like a Plan it is inert — computing
// it sends no configuration commands — and it doubles as the dry-run
// rendering of what Reconcile would do.
type StorePlan struct {
	// Views holds the per-intent breakdown, in submission order. The
	// slice and its elements are shared, immutable snapshots (the store
	// mutates copy-on-write): read freely, never write through them.
	Views []*IntentView
	// Deletes are per-device batches removing components no registered
	// intent wants (switch rules before the pipes they reference).
	Deletes []DeviceScript
	// Creates are per-device batches creating missing components, in
	// first-appearance compiler order across the intents.
	Creates []DeviceScript
	// InPlace counts desired components already configured.
	InPlace int
	// Shared counts distinct desired components wanted by more than one
	// intent (the store's refcounted overlap).
	Shared int
	// Unreachable lists stranded devices (occupied only by withdrawn or
	// rerouted intents) that did not answer showActual — killed or
	// partitioned. Their stale state could not be pruned this pass; the
	// NM remembers them and retries once they answer again.
	Unreachable []core.DeviceID
	// Stats reports how much work computing the plan actually did — the
	// incremental store's cost model (O(changed), not O(store)).
	Stats StoreStats

	// records is the device occupancy of intents whose contributions
	// changed this pass (a delta, not the whole store); a successful
	// ApplyStore merges it into the NM's memory.
	records map[string][]core.DeviceID
	// removedIntents are withdrawn intents whose occupancy records a
	// successful ApplyStore retires.
	removedIntents []string
	// pruned lists stranded devices that were observed (and cleaned)
	// this pass; ApplyStore clears their stale mark.
	pruned []core.DeviceID
	// handleDeps are the (provider, component) pairs desired rules embed
	// resolved handles from; ApplyStore installs triggers for them
	// (§II-E).
	handleDeps []handleDep
	// createBinds aligns, per device, with that device's Creates items:
	// the union components each created item realises, so ApplyStore can
	// bind them to the ids the device reports (write-through instead of
	// a re-observe).
	createBinds map[core.DeviceID][]bindTarget
	// pass ties the plan to the storeState generation it was computed
	// from; ApplyStore refuses a plan superseded by a newer PlanStore.
	pass uint64
	// applied guards against executing the same plan's batches twice.
	applied bool
}

// StoreStats quantifies one PlanStore pass.
type StoreStats struct {
	// Recompiled counts intents compiled this pass (dirty ones only,
	// unless a compile-input change forced a full rebuild).
	Recompiled int
	// Observed counts devices fetched fresh via showActual (including
	// stranded devices, which are always probed for liveness).
	Observed int
	// CacheHits / CacheMisses count occupied devices served from the
	// observation cache vs re-observed because their generation moved.
	CacheHits   int
	CacheMisses int
	// DiffedDevices counts devices whose union was diffed at all;
	// devices with a valid cache and no pending changes are skipped.
	DiffedDevices int
	// FullRebuild reports that compile inputs changed (topology, module
	// discovery, domain bindings) and the whole union was rebuilt.
	FullRebuild bool
}

// bindTarget is the union component a created batch item realises.
// Exactly one field is set.
type bindTarget struct {
	pipe  *unionPipe
	rule  *unionRule
	other *unionOther
}

// Empty reports whether applying the store plan would send no commands.
func (p *StorePlan) Empty() bool { return len(p.Deletes) == 0 && len(p.Creates) == 0 }

// Render prints the store plan dry-run style: every intent's chosen
// path, every command Reconcile would send (shared components annotated
// with their owning intents), and a summary line.
func (p *StorePlan) Render() string {
	var b strings.Builder
	noun := "intents"
	if len(p.Views) == 1 {
		noun = "intent"
	}
	fmt.Fprintf(&b, "store plan (%d %s)\n", len(p.Views), noun)
	for _, v := range p.Views {
		fmt.Fprintf(&b, "  intent %q", v.Intent.Name)
		if v.Path != nil {
			fmt.Fprintf(&b, " — path %s: %s", v.Path.Describe(), v.Path.Modules())
		}
		fmt.Fprintf(&b, " (%d exclusive, %d shared components)\n", v.Exclusive, v.Shared)
	}
	for _, ds := range p.Deletes {
		for _, line := range ds.Rendered {
			fmt.Fprintf(&b, "  %s: %s\n", ds.Device, line)
		}
	}
	for _, ds := range p.Creates {
		for _, line := range ds.Rendered {
			fmt.Fprintf(&b, "  %s: %s\n", ds.Device, line)
		}
	}
	creates, deletes := 0, 0
	for _, ds := range p.Creates {
		creates += len(ds.Items)
	}
	for _, ds := range p.Deletes {
		deletes += len(ds.Items)
	}
	if p.Empty() {
		fmt.Fprintf(&b, "  no changes (%d components in place, %d shared)\n", p.InPlace, p.Shared)
	} else {
		fmt.Fprintf(&b, "  %d to create, %d to delete, %d in place, %d shared\n", creates, deletes, p.InPlace, p.Shared)
	}
	return b.String()
}

// unionPipe is one desired pipe in the union of all registered intents.
// Its identity is its content — endpoint modules, remote peers and
// dependency choices — not a compiled pipe id: intents compiled in
// isolation number their pipes independently, so the store matches
// pipes structurally and assigns wire ids afterwards (adopting the id
// of a matching observed pipe, or allocating a fresh one).
type unionPipe struct {
	req    core.PipeRequest
	owners []string
	// id is the resolved wire id: the observed pipe's id when the pipe
	// is already in place, a freshly allocated one otherwise.
	id      core.PipeID
	inPlace bool
	// key caches pipeKey(req); gone tombstones a pipe whose last owner
	// withdrew (the incremental store never reslices items).
	key  string
	gone bool
}

// unionRule is one desired switch rule in the union. From/To referring
// to NM-created pipes are tracked through the unionPipe they resolve
// against (fromPipe/toPipe non-nil); physical pipe references stay
// literal.
type unionRule struct {
	rule             core.SwitchRule
	fromPipe, toPipe *unionPipe
	matchResolved    string
	viaResolved      string
	owners           []string
	kept             bool
	// boundID is the installed rule id this desired rule is bound to
	// while kept, so a later withdrawal can delete it without an
	// observation sweep.
	boundID string
	// key caches ruleUnionKey; gone tombstones a withdrawn rule.
	key  string
	gone bool
}

// resolved returns the rule with From/To rewritten to the final wire
// ids of the union pipes it references.
func (r *unionRule) resolved() core.SwitchRule {
	rr := r.rule
	if r.fromPipe != nil {
		rr.From = r.fromPipe.id
	}
	if r.toPipe != nil {
		rr.To = r.toPipe.id
	}
	return rr
}

// unionItem keeps the per-device first-appearance order of desired
// components, so create batches read like a from-scratch script.
// Exactly one field is set.
type unionItem struct {
	pipe  *unionPipe
	rule  *unionRule
	other *unionOther
}

// unionOther is a non-diffed desired item (filters and future command
// kinds); it executes once, attributed to the intent that wants it.
type unionOther struct {
	item     msg.CommandItem
	rendered string
	owner    string
	done     bool
	gone     bool
}

// deviceUnion is the merged desired configuration of one device across
// every registered intent, with ownership per component. The full-pass
// fields (items/pipes/rules) carry the union itself; the rest is the
// incremental bookkeeping the delta diff consumes.
type deviceUnion struct {
	dev   core.DeviceID
	items []unionItem
	pipes map[string]*unionPipe
	rules map[string]*unionRule

	// newItems are components merged since the last diff resolved them:
	// each is still waiting to be bound to an observed component or
	// created on the device.
	newItems []unionItem
	// pendingDelRules/pendingDelPipes are bound components whose last
	// owner withdrew; the next pass deletes them (rules before pipes)
	// without a full sweep.
	pendingDelRules []core.DeleteRequest
	pendingDelPipes []core.DeleteRequest
	// classes indexes value-carrying classifier rules by (module, entry,
	// classifier, resolution) for incremental conflict detection.
	classes map[string][]*unionRule
	// bound counts desired components currently bound to device state;
	// live counts non-tombstoned items; dead counts tombstones awaiting
	// compaction.
	bound int
	live  int
	dead  int
}

// hasWork reports whether the delta diff has anything to do on this
// device.
func (du *deviceUnion) hasWork() bool {
	return len(du.newItems) > 0 || len(du.pendingDelRules) > 0 || len(du.pendingDelPipes) > 0
}

// gone reports whether an item is tombstoned.
func (it unionItem) isGone() bool {
	switch {
	case it.pipe != nil:
		return it.pipe.gone
	case it.rule != nil:
		return it.rule.gone
	case it.other != nil:
		return it.other.gone
	}
	return true
}

// pipeKey is the canonical content identity of a desired pipe.
func pipeKey(req core.PipeRequest) string {
	var b strings.Builder
	b.WriteString(req.Upper.String())
	b.WriteByte('|')
	b.WriteString(req.Lower.String())
	b.WriteByte('|')
	b.WriteString(req.UpperPeer.String())
	b.WriteByte('|')
	b.WriteString(req.LowerPeer.String())
	for _, d := range req.Satisfy {
		b.WriteByte('|')
		b.WriteString(d.Token + "/" + d.Tradeoff + "/" + d.Value + "/" + d.Provider)
	}
	return b.String()
}

// ruleUnionKey is the canonical identity of a desired switch rule, with
// pipe references lifted into content space so two intents' rules over
// the same (structurally identical) pipes unify.
func ruleUnionKey(r *msg.CreateSwitchReq, fp, tp *unionPipe) string {
	from, to := string(r.Rule.From), string(r.Rule.To)
	if fp != nil {
		from = "pipe:" + pipeKey(fp.req)
	}
	if tp != nil {
		to = "pipe:" + pipeKey(tp.req)
	}
	return r.Rule.Module.String() + "|" + from + "|" + to + "|" +
		classifierKey(r.Rule.Match) + "|" + r.Rule.Via + "|" +
		fmt.Sprint(r.Rule.Bidirectional) + "|" + r.MatchResolved + "|" + r.ViaResolved
}

// ConflictError reports two registered intents whose desired switch
// rules classify the same traffic at the same module but steer it to
// different targets — a packet cannot obey both, so reconciliation
// refuses to install either and names the colliding goals instead of
// leaving the outcome to rule-installation order.
type ConflictError struct {
	// Device and Module locate the collision.
	Device core.DeviceID
	Module core.ModuleRef
	// IntentA/IntentB name one owner of each colliding rule, and
	// RuleA/RuleB are the rules as those intents compiled them.
	IntentA, IntentB string
	RuleA, RuleB     core.SwitchRule
	// TargetA/TargetB describe where each rule steers the traffic in
	// structural terms (compile-local pipe ids like P1 collide across
	// intents, so the rendered rules alone can look identical).
	TargetA, TargetB string
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("nm: reconcile: conflicting switch rules on %s: intent %q wants %s (into %s), intent %q wants %s (into %s)",
		e.Module, e.IntentA, renderSwitchCreate(e.RuleA), e.TargetA, e.IntentB, renderSwitchCreate(e.RuleB), e.TargetB)
}

// conflicts scans one device union for classified rules that agree on
// (module, entry pipe, classifier) but disagree on where the traffic
// goes. Pipe references are compared structurally (two intents compile
// the same pipe under different local ids), and rules that unified into
// one union entry are by construction conflict-free.
func (du *deviceUnion) conflicts() error {
	type target struct {
		to  string
		via string
		it  *unionRule
	}
	seen := make(map[string]target)
	for _, it := range du.items {
		r := it.rule
		// Only value-carrying classifiers are exclusive: dst-domain
		// routes a prefix exactly one way, so divergent targets clash.
		// Valueless classifiers ("Tagged") select a traffic class that
		// L2 delivery further discriminates — the multi-tenant edge
		// legitimately fans one trunk out to several customer ports.
		if r == nil || r.gone || r.rule.Match == nil || r.rule.Match.Value == "" {
			continue
		}
		key := ruleClassKey(r)
		tgt := target{to: pipeIdent(r.rule.To, r.toPipe), via: r.rule.Via + "/" + r.viaResolved, it: r}
		prev, ok := seen[key]
		if !ok {
			seen[key] = tgt
			continue
		}
		if prev.to != tgt.to || prev.via != tgt.via {
			return &ConflictError{
				Device:  du.dev,
				Module:  r.rule.Module,
				IntentA: prev.it.owners[0], IntentB: r.owners[0],
				RuleA: prev.it.rule, RuleB: r.rule,
				TargetA: describeTarget(prev.it.rule.To, prev.it.toPipe, prev.via),
				TargetB: describeTarget(r.rule.To, r.toPipe, tgt.via),
			}
		}
	}
	return nil
}

// mergeScripts folds one intent's compiled device scripts into the
// per-device unions, recording ownership (refcounting) per component.
func mergeScripts(unions map[core.DeviceID]*deviceUnion, order *[]core.DeviceID, name string, scripts []DeviceScript) {
	_ = mergeScriptsCtx(nil, unions, order, name, scripts)
}

// mergeScriptsCtx is mergeScripts with incremental bookkeeping: when ss
// is non-nil it records contribution refs (so a later withdraw/update
// can remove exactly this intent's share), maintains the sharing
// tallies and the per-device conflict-class index, and reports
// classifier conflicts as they merge. A conflict aborts the merge with
// this intent's partial contributions rolled back.
func mergeScriptsCtx(ss *storeState, unions map[core.DeviceID]*deviceUnion, order *[]core.DeviceID, name string, scripts []DeviceScript) error {
	var contrib *intentContrib
	if ss != nil {
		contrib = ss.contribs[name]
	}
	record := func(du *deviceUnion, it unionItem) {
		if contrib != nil {
			contrib.refs = append(contrib.refs, contribRef{du: du, it: it})
		}
	}
	for _, ds := range scripts {
		du := unions[ds.Device]
		if du == nil {
			du = &deviceUnion{
				dev:   ds.Device,
				pipes: make(map[string]*unionPipe),
				rules: make(map[string]*unionRule),
			}
			unions[ds.Device] = du
			*order = append(*order, ds.Device)
		}
		// local maps this intent's compile-time pipe ids (device-scoped
		// P0, P1, ...) to their union pipes.
		local := make(map[core.PipeID]*unionPipe)
		for i, item := range ds.Items {
			switch {
			case item.Pipe != nil:
				key := pipeKey(item.Pipe.Req)
				up := du.pipes[key]
				if up == nil {
					up = &unionPipe{req: item.Pipe.Req, key: key}
					du.pipes[key] = up
					du.items = append(du.items, unionItem{pipe: up})
					du.newItems = append(du.newItems, unionItem{pipe: up})
					du.live++
				}
				if added := addOwnerLen(&up.owners, name); added {
					ss.ownerAdded(up.owners)
					record(du, unionItem{pipe: up})
				}
				local[item.Pipe.ID] = up
			case item.Switch != nil:
				fp, tp := local[item.Switch.Rule.From], local[item.Switch.Rule.To]
				key := ruleUnionKey(item.Switch, fp, tp)
				ur := du.rules[key]
				if ur == nil {
					ur = &unionRule{
						rule: item.Switch.Rule, fromPipe: fp, toPipe: tp,
						matchResolved: item.Switch.MatchResolved,
						viaResolved:   item.Switch.ViaResolved,
						key:           key,
					}
					if ss != nil {
						if err := du.classAdd(ur, name); err != nil {
							ss.rollbackContrib(name)
							return err
						}
					}
					du.rules[key] = ur
					du.items = append(du.items, unionItem{rule: ur})
					du.newItems = append(du.newItems, unionItem{rule: ur})
					du.live++
				}
				if added := addOwnerLen(&ur.owners, name); added {
					ss.ownerAdded(ur.owners)
					record(du, unionItem{rule: ur})
				}
			default:
				uo := &unionOther{item: item, rendered: ds.Rendered[i], owner: name}
				du.items = append(du.items, unionItem{other: uo})
				du.newItems = append(du.newItems, unionItem{other: uo})
				du.live++
				ss.ownerAdded([]string{name})
				record(du, unionItem{other: uo})
			}
		}
	}
	return nil
}

// ownersSuffix annotates a rendered create line with the owning intents
// when a component is shared.
func ownersSuffix(owners []string) string {
	if len(owners) < 2 {
		return ""
	}
	return "  [shared: " + strings.Join(owners, ", ") + "]"
}

// diff reconciles one device's whole union against its observed state
// (the full rematch), appending delete/create batches to the plan.
// Pipes are matched by content (adopting observed wire ids so surviving
// configuration is untouched); anything observed that no desired
// component claims is stale and deleted, rules before pipes. The NM is
// consulted for handle-freshness probes on rules that embed exported
// low-level fields (§II-E). On return the union's incremental
// bookkeeping is rebuilt from scratch: newItems holds exactly the
// create-pending components and pendingDel* exactly the queued
// deletions, so a plan that is never applied re-emits the same work
// through the delta path next pass.
func (du *deviceUnion) diff(n *NM, o *observed, plan *StorePlan) {
	o.ensureIndex()
	o.compactRules()
	// Reset every binding: the rematch re-derives them all.
	o.claimed = make(map[core.PipeID]bool)
	for j := range o.rules {
		o.rules[j].used = false
	}
	du.bound = 0
	du.pendingDelRules, du.pendingDelPipes = nil, nil
	for _, it := range du.items {
		switch {
		case it.pipe != nil:
			it.pipe.inPlace = false
			it.pipe.id = ""
		case it.rule != nil:
			it.rule.kept = false
			it.rule.boundID = ""
		}
	}
	// Pipe pass 1: bind desired pipes to observed ones by content.
	obsIDs := make([]core.PipeID, 0, len(o.pipes))
	for id := range o.pipes {
		obsIDs = append(obsIDs, id)
	}
	sort.Slice(obsIDs, func(i, j int) bool { return obsIDs[i] < obsIDs[j] })
	for _, it := range du.items {
		if it.pipe == nil || it.pipe.gone {
			continue
		}
		for _, id := range obsIDs {
			if o.claimed[id] {
				continue
			}
			if o.pipes[id].matches(it.pipe.req) {
				it.pipe.id, it.pipe.inPlace, o.claimed[id] = id, true, true
				du.bound++
				plan.InPlace++
				break
			}
		}
	}
	// Pipe pass 2: allocate fresh wire ids for missing pipes, avoiding
	// every id observed on the device (stale pipes are deleted in the
	// same reconcile, but their ids are not reused within it).
	used := make(map[core.PipeID]bool, len(obsIDs))
	for _, id := range obsIDs {
		used[id] = true
	}
	next := 0
	for _, it := range du.items {
		if it.pipe == nil || it.pipe.gone || it.pipe.inPlace {
			continue
		}
		for {
			cand := core.PipeID(fmt.Sprintf("P%d", next))
			next++
			if !used[cand] {
				it.pipe.id = cand
				used[cand] = true
				break
			}
		}
	}
	for id := range used {
		o.usedIDs[id] = true
	}
	// Rule pass: a desired rule is kept iff an identical installed rule
	// exists and every NM-created pipe it references is in place (a rule
	// on a freshly created pipe resolves to a fresh id no installed rule
	// can match).
	for _, it := range du.items {
		if it.rule == nil || it.rule.gone {
			continue
		}
		// The rule consumes exported handles when it steers into a pipe
		// whose lower module is a *different* module that advertises
		// HandleFields (an egress rule's To pipe has the rule's own
		// module below it — nothing is embedded).
		exports := it.rule.toPipe != nil && it.rule.toPipe.req.Lower != it.rule.rule.Module &&
			n.handleExporter(it.rule.toPipe.req.Lower)
		if exports {
			// The rule embeds fields the To pipe's lower module exports:
			// register the dependency so ApplyStore installs a trigger.
			plan.handleDeps = append(plan.handleDeps, handleDep{
				it.rule.toPipe.req.Lower, "pipe:" + string(it.rule.toPipe.id),
			})
		}
		if !pipesReady(it.rule) {
			continue
		}
		rr := it.rule.resolved()
		// The index key carries module, endpoints, classifier and the
		// concrete resolutions, so resolved-value drift (SetDomain /
		// SetGateway changed since install) simply fails to match and the
		// rule is replaced.
		for _, j := range o.ruleIdx[desiredRuleKey(rr, it.rule.matchResolved, it.rule.viaResolved)] {
			or := &o.rules[j]
			if or.used || or.id == "" {
				continue
			}
			// Stale embedded handle (§II-E): the provider below the To
			// pipe regenerated its exported fields since this rule was
			// installed (e.g. an NHLFE renumbered by pipe churn), so the
			// installed rule's embedded copy points at dead state even
			// though its abstract and resolved forms still match —
			// replace it.
			if exports && !n.handleFresh(it.rule.toPipe.req.Lower, rr.To, or.handle) {
				continue
			}
			or.used = true
			it.rule.kept, it.rule.boundID = true, or.id
			du.bound++
			plan.InPlace++
			break
		}
	}
	// Stale observed state: rules no desired component kept, then pipes
	// no desired component claimed. Recorded as pending deletions too,
	// so a dropped plan re-queues them instead of losing them.
	del := DeviceScript{Device: du.dev}
	for j := range o.rules {
		or := &o.rules[j]
		if or.used || or.id == "" {
			continue
		}
		req := core.DeleteRequest{Kind: core.ComponentSwitchRule, Module: or.module, ID: or.id}
		du.pendingDelRules = append(du.pendingDelRules, req)
		di, rendered := deleteItem(req)
		del.Items = append(del.Items, di)
		del.Rendered = append(del.Rendered, rendered)
	}
	for _, id := range obsIDs {
		if o.claimed[id] || o.pipes[id].lower.IsZero() {
			continue
		}
		req := core.DeleteRequest{Kind: core.ComponentPipe, Module: o.pipes[id].lower, ID: string(id)}
		du.pendingDelPipes = append(du.pendingDelPipes, req)
		di, rendered := deleteItem(req)
		del.Items = append(del.Items, di)
		del.Rendered = append(del.Rendered, rendered)
	}
	if len(del.Items) > 0 {
		plan.Deletes = append(plan.Deletes, del)
	}
	// Creates, in first-appearance order across the intents; newItems is
	// rebuilt to exactly this create-pending set.
	creates := DeviceScript{Device: du.dev}
	var binds []bindTarget
	newItems := du.newItems[:0]
	for _, it := range du.items {
		switch {
		case it.pipe != nil && !it.pipe.gone && !it.pipe.inPlace:
			creates.Items = append(creates.Items, msg.CommandItem{
				Pipe: &msg.CreatePipeItem{ID: it.pipe.id, Req: it.pipe.req},
			})
			creates.Rendered = append(creates.Rendered,
				renderPipeCreate(it.pipe.id, it.pipe.req)+ownersSuffix(it.pipe.owners))
			binds = append(binds, bindTarget{pipe: it.pipe})
			newItems = append(newItems, it)
		case it.rule != nil && !it.rule.gone && !it.rule.kept:
			rr := it.rule.resolved()
			creates.Items = append(creates.Items, msg.CommandItem{
				Switch: &msg.CreateSwitchReq{
					Rule:          rr,
					MatchResolved: it.rule.matchResolved,
					ViaResolved:   it.rule.viaResolved,
				},
			})
			creates.Rendered = append(creates.Rendered,
				renderSwitchCreate(rr)+ownersSuffix(it.rule.owners))
			binds = append(binds, bindTarget{rule: it.rule})
			newItems = append(newItems, it)
		case it.other != nil && !it.other.gone && !it.other.done:
			creates.Items = append(creates.Items, it.other.item)
			creates.Rendered = append(creates.Rendered, it.other.rendered)
			binds = append(binds, bindTarget{other: it.other})
			newItems = append(newItems, it)
		}
	}
	du.newItems = newItems
	if len(creates.Items) > 0 {
		plan.Creates = append(plan.Creates, creates)
		if plan.createBinds == nil {
			plan.createBinds = make(map[core.DeviceID][]bindTarget)
		}
		plan.createBinds[du.dev] = binds
	}
}
