package nm

import (
	"fmt"
	"strings"
	"sync/atomic"

	"conman/internal/core"
	"conman/internal/msg"
)

// Goal is the NM-internal form of a high-level connectivity goal:
// "configure connectivity between the customer-facing interfaces From and
// To for traffic between FromDomain and ToDomain" (§III-C).
type Goal struct {
	From, To      core.ModuleRef
	FromDomain    string // e.g. "C1-S1"
	ToDomain      string // e.g. "C1-S2"
	FromGateway   string // abstract token, e.g. "S1-gateway"
	ToGateway     string // e.g. "S2-gateway"
	TrafficDomain string // e.g. "C1"
	Tradeoffs     []core.Tradeoff
	// TagClassified marks the customer-side classification on L2
	// endpoints ("Tagged" in Fig 9b).
	TagClassified bool
	// FromPipe/ToPipe optionally pin the external physical pipes the
	// path must enter and leave through ("Phy-<port>"). Edge modules
	// with a single customer-facing port can leave them empty; on a
	// multi-tenant edge (several customer ports behind one module) they
	// select which customer attachment this goal serves.
	FromPipe, ToPipe core.PipeID
}

// DefaultTradeoffs are the paper's choices for the GRE pipe: in-order
// delivery and low error-rate (Fig 7b command (2)).
func DefaultTradeoffs() []core.Tradeoff {
	return []core.Tradeoff{
		{Give: []core.Metric{core.MetricJitter, core.MetricDelay}, Get: []core.Metric{core.MetricOrdering}, Scope: core.EndUp},
		{Give: []core.Metric{core.MetricLossRate}, Get: []core.Metric{core.MetricErrorRate}, Scope: core.EndUp},
	}
}

// DeviceScript is the compiled per-device command batch plus its
// paper-style rendering.
type DeviceScript struct {
	Device   core.DeviceID
	Items    []msg.CommandItem
	Rendered []string
}

// Script renders the batch as the figures print it.
func (d DeviceScript) Script() string { return strings.Join(d.Rendered, "\n") }

type compiledPipe struct {
	id           core.PipeID
	device       core.DeviceID
	upper, lower *Node
	upperPeer    core.ModuleRef
	lowerPeer    core.ModuleRef
	deps         []core.DependencyChoice
	emitted      bool
}

// Compile translates a chosen path into per-device CONMan command batches
// (the algorithmically generated scripts of Figs 7b/8b/9b). The NM
// resolves its own abstract tokens (domains, gateways) into
// MatchResolved/ViaResolved; everything else stays abstract.
func (n *NM) Compile(path *Path, goal Goal) ([]DeviceScript, error) {
	if len(path.Hops) < 2 {
		return nil, fmt.Errorf("nm: path too short to compile")
	}
	if len(goal.Tradeoffs) == 0 {
		goal.Tradeoffs = DefaultTradeoffs()
	}

	// 1. Materialise pipes at each co-located transition.
	pipeSeq := map[core.DeviceID]int{}
	entryPipe := make([]*compiledPipe, len(path.Hops)) // pipe the hop was entered through
	exitPipe := make([]*compiledPipe, len(path.Hops))
	for i := 0; i < len(path.Hops)-1; i++ {
		hop, next := path.Hops[i], path.Hops[i+1]
		if hop.ExitVia == nil {
			continue // physical transition
		}
		dev := hop.Node.Ref.Device
		var upper, lower *Node
		if hop.Mode.To == core.EndDown {
			upper, lower = hop.Node, next.Node
		} else {
			upper, lower = next.Node, hop.Node
		}
		cp := &compiledPipe{
			id:     core.PipeID(fmt.Sprintf("P%d", pipeSeq[dev])),
			device: dev,
			upper:  upper, lower: lower,
		}
		pipeSeq[dev]++
		// Peers from the group roles.
		upperHop, lowerHop := i, i+1
		if upper != hop.Node {
			upperHop, lowerHop = i+1, i
		}
		cp.upperPeer = n.peerFor(path, upperHop, upperHop != i)
		cp.lowerPeer = n.peerFor(path, lowerHop, lowerHop != i)
		// Dependencies: any declared for this pipe get the goal's
		// trade-off choices.
		if len(lower.Abs.Up.Dependencies) > 0 || len(upper.Abs.Down.Dependencies) > 0 {
			for _, t := range goal.Tradeoffs {
				cp.deps = append(cp.deps, core.DependencyChoice{Tradeoff: t.Key()})
			}
		}
		exitPipe[i] = cp
		entryPipe[i+1] = cp
	}

	// 2. Identify the customer-edge IP hops (first and last members of
	// the external IP group) for the classified rules.
	startEdge, goalEdge := -1, -1
	for _, g := range path.Groups {
		if g.External && canon(g.Protocol) == core.NameIPv4 && len(g.Members) > 0 {
			startEdge = g.Members[0]
			goalEdge = g.Members[len(g.Members)-1]
		}
	}

	// 3. Emit per-device scripts in hop order.
	var out []DeviceScript
	scriptOf := map[core.DeviceID]int{}
	getScript := func(dev core.DeviceID) *DeviceScript {
		if idx, ok := scriptOf[dev]; ok {
			return &out[idx]
		}
		out = append(out, DeviceScript{Device: dev})
		scriptOf[dev] = len(out) - 1
		return &out[len(out)-1]
	}

	emitPipe := func(ds *DeviceScript, cp *compiledPipe) {
		if cp == nil || cp.emitted {
			return
		}
		cp.emitted = true
		req := core.PipeRequest{
			Upper: cp.upper.Ref, Lower: cp.lower.Ref,
			UpperPeer: cp.upperPeer, LowerPeer: cp.lowerPeer,
			Satisfy: cp.deps,
		}
		ds.Items = append(ds.Items, msg.CommandItem{Pipe: &msg.CreatePipeItem{ID: cp.id, Req: req}})
		ds.Rendered = append(ds.Rendered, renderPipeCreate(cp.id, req))
	}

	for i := range path.Hops {
		hop := &path.Hops[i]
		dev := hop.Node.Ref.Device
		ds := getScript(dev)
		emitPipe(ds, entryPipe[i])
		emitPipe(ds, exitPipe[i])

		entryRef := refOf(entryPipe[i], hop.EntryPhys)
		exitRef := refOf(exitPipe[i], hop.ExitPhys)

		switch {
		case i == startEdge:
			prefix, _ := n.ResolveDomain(goal.ToDomain)
			gw, _ := n.ResolveGateway(goal.FromGateway)
			n.emitClassified(ds, hop.Node.Ref, entryRef, exitRef,
				goal.ToDomain, prefix, goal.FromGateway, gw)
		case i == goalEdge:
			prefix, _ := n.ResolveDomain(goal.FromDomain)
			gw, _ := n.ResolveGateway(goal.ToGateway)
			n.emitClassified(ds, hop.Node.Ref, exitRef, entryRef,
				goal.FromDomain, prefix, goal.ToGateway, gw)
		case hop.Node.Ref.Name == core.NameETH && (i == 0 || i == len(path.Hops)-1):
			// Endpoint ETH module. On routers the customer port feeds
			// its single up pipe implicitly (Fig 7b has no rule for a).
			// On L2 switches the Tagged classification selects the
			// VLAN tunnel (Fig 9b).
			if goal.TagClassified {
				rule := core.SwitchRule{
					Module: hop.Node.Ref, From: entryRef, To: exitRef,
					Match: &core.Classifier{Kind: "tagged", Value: ""},
				}
				ds.Items = append(ds.Items, msg.CommandItem{Switch: &msg.CreateSwitchReq{Rule: rule}})
				ds.Rendered = append(ds.Rendered, renderSwitchCreate(rule))
				rev := core.SwitchRule{Module: hop.Node.Ref, From: exitRef, To: entryRef}
				ds.Items = append(ds.Items, msg.CommandItem{Switch: &msg.CreateSwitchReq{Rule: rev}})
				ds.Rendered = append(ds.Rendered, renderSwitchCreate(rev))
			}
		default:
			rule := core.SwitchRule{
				Module: hop.Node.Ref, From: entryRef, To: exitRef, Bidirectional: true,
			}
			ds.Items = append(ds.Items, msg.CommandItem{Switch: &msg.CreateSwitchReq{Rule: rule}})
			ds.Rendered = append(ds.Rendered, renderSwitchCreate(rule))
		}
	}

	// 4. Control-module state (§II-F). A closed internal IPv4 peer group
	// with transit members — a tunnel whose endpoints are more than one
	// router apart — needs reachability state the IP modules cannot
	// derive from their own pairwise exchanges: the transit routers have
	// no routes between the link subnets. When every member's device
	// hosts a control module whose ProvidesState matches the IP module's
	// switch-state dependency token, the NM compiles one pipe per
	// adjacency (Upper = provider, Lower = IP, peers = the neighbouring
	// provider/IP pair) and the providers flood the rest among
	// themselves, exactly as IKE is named for IPSec's keying dependency.
	// Without full provider coverage the group compiles as before and
	// forwarding relies on directly connected subnets (the paper's n=3).
	n.emitRouteProviders(path, getScript, pipeSeq)
	return out, nil
}

// emitRouteProviders appends the control-module adjacency pipes for
// every transit IPv4 group that has full provider coverage (see step 4
// of Compile).
func (n *NM) emitRouteProviders(path *Path, getScript func(core.DeviceID) *DeviceScript, pipeSeq map[core.DeviceID]int) {
	type memberInfo struct {
		ip, provider core.ModuleRef
		token        string
	}
	for _, grp := range path.Groups {
		if grp.External || !grp.Closed || canon(grp.Protocol) != core.NameIPv4 || len(grp.Members) < 3 {
			continue
		}
		members := make([]memberInfo, 0, len(grp.Members))
		covered := true
		for _, hi := range grp.Members {
			node := path.Hops[hi].Node
			provider, token, ok := n.routeProvider(node)
			if !ok {
				covered = false
				break
			}
			members = append(members, memberInfo{ip: node.Ref, provider: provider, token: token})
		}
		if !covered {
			continue
		}
		for k, m := range members {
			emitAdj := func(other memberInfo) {
				dev := m.ip.Device
				ds := getScript(dev)
				id := core.PipeID(fmt.Sprintf("P%d", pipeSeq[dev]))
				pipeSeq[dev]++
				req := core.PipeRequest{
					Upper: m.provider, Lower: m.ip,
					UpperPeer: other.provider, LowerPeer: other.ip,
					Satisfy: []core.DependencyChoice{{
						Token: m.token, Provider: m.provider.String(),
					}},
				}
				ds.Items = append(ds.Items, msg.CommandItem{Pipe: &msg.CreatePipeItem{ID: id, Req: req}})
				ds.Rendered = append(ds.Rendered, renderPipeCreate(id, req))
			}
			if k > 0 {
				emitAdj(members[k-1])
			}
			if k < len(members)-1 {
				emitAdj(members[k+1])
			}
		}
	}
}

// routeProvider finds a co-located control module satisfying the
// member IP module's switch-state dependency. The match is pure token
// equality plus mutual connectability — the NM needs no idea what the
// state is, only who can provide it (§II-F).
func (n *NM) routeProvider(member *Node) (core.ModuleRef, string, bool) {
	dep := member.Abs.Switch.StateDependency
	if dep == nil || dep.Token == "" {
		return core.ModuleRef{}, "", false
	}
	info, ok := n.Device(member.Ref.Device)
	if !ok || info == nil {
		return core.ModuleRef{}, "", false
	}
	for _, abs := range info.Modules {
		if abs.Kind != core.KindControl {
			continue
		}
		if !abs.Down.CanConnect(member.Ref.Name) || !member.Abs.Up.CanConnect(abs.Ref.Name) {
			continue
		}
		for _, tok := range abs.ProvidesState {
			if tok == dep.Token {
				return abs.Ref, tok, true
			}
		}
	}
	return core.ModuleRef{}, "", false
}

// peerFor derives a module's peer on one of its pipes from the path's
// peer groups (§III-C.1). entrySide says whether the pipe is the hop's
// entry pipe (toward the start of the path) or its exit pipe.
func (n *NM) peerFor(path *Path, hopIdx int, entrySide bool) core.ModuleRef {
	hop := path.Hops[hopIdx]
	grp := path.Groups[hop.Group]
	pos := -1
	for i, m := range grp.Members {
		if m == hopIdx {
			pos = i
			break
		}
	}
	if pos < 0 {
		return core.ModuleRef{}
	}
	if entrySide {
		if pos > 0 {
			return path.Hops[grp.Members[pos-1]].Node.Ref
		}
		// Pusher: the peer across the pipe above the encapsulation is
		// the popper at the far end.
		if !grp.External && grp.Closed && len(grp.Members) > 1 {
			return path.Hops[grp.Members[len(grp.Members)-1]].Node.Ref
		}
		return core.ModuleRef{}
	}
	if pos < len(grp.Members)-1 {
		return path.Hops[grp.Members[pos+1]].Node.Ref
	}
	// Popper: peer is the pusher.
	if !grp.External && grp.Closed && len(grp.Members) > 1 {
		return path.Hops[grp.Members[0]].Node.Ref
	}
	return core.ModuleRef{}
}

func refOf(cp *compiledPipe, phys core.PipeID) core.PipeID {
	if cp != nil {
		return cp.id
	}
	return phys
}

func (n *NM) emitClassified(ds *DeviceScript, module core.ModuleRef, customerPipe, insidePipe core.PipeID,
	dstDomain, dstPrefix, gwToken, gwAddr string) {
	in := core.SwitchRule{
		Module: module, From: customerPipe, To: insidePipe,
		Match: &core.Classifier{Kind: "dst-domain", Value: dstDomain},
	}
	ds.Items = append(ds.Items, msg.CommandItem{Switch: &msg.CreateSwitchReq{
		Rule: in, MatchResolved: dstPrefix,
	}})
	ds.Rendered = append(ds.Rendered, renderSwitchCreate(in))

	outRule := core.SwitchRule{
		Module: module, From: insidePipe, To: customerPipe, Via: gwToken,
	}
	ds.Items = append(ds.Items, msg.CommandItem{Switch: &msg.CreateSwitchReq{
		Rule: outRule, ViaResolved: gwAddr,
	}})
	ds.Rendered = append(ds.Rendered, renderSwitchCreate(outRule))
}

// renderPipeCreate renders one create (pipe, ...) command as the
// figures print it: upper and lower modules, the two remote peers, then
// the dependency choices ("None" where absent).
func renderPipeCreate(id core.PipeID, req core.PipeRequest) string {
	up, low := "None", "None"
	if !req.UpperPeer.IsZero() {
		up = req.UpperPeer.String()
	}
	if !req.LowerPeer.IsZero() {
		low = req.LowerPeer.String()
	}
	extra := "None"
	if len(req.Satisfy) > 0 {
		var parts []string
		for _, d := range req.Satisfy {
			parts = append(parts, "trade-off: "+tradeoffGetName(d.Tradeoff))
		}
		extra = strings.Join(parts, ", ")
	}
	return fmt.Sprintf("%s = create (pipe, %s, %s, %s, %s, %s)",
		id, req.Upper, req.Lower, up, low, extra)
}

// renderSwitchCreate renders one create (switch, ...) command in the
// form the figures use for the rule's shape: bidirectional rules in the
// bare three-argument form, classified and via-directed rules in the
// bracketed [from => to] forms.
func renderSwitchCreate(r core.SwitchRule) string {
	switch {
	case r.Bidirectional:
		return fmt.Sprintf("create (switch, %s, %s, %s)", r.Module, r.From, r.To)
	case r.Match != nil && r.Match.Kind == "tagged":
		return fmt.Sprintf("create (switch, %s, [%s, Tagged => %s])", r.Module, r.From, r.To)
	case r.Match != nil:
		return fmt.Sprintf("create (switch, %s, [%s, dst:%s => %s])", r.Module, r.From, r.Match.Value, r.To)
	case r.Via != "":
		return fmt.Sprintf("create (switch, %s, [%s => %s, %s])", r.Module, r.From, r.To, r.Via)
	default:
		return fmt.Sprintf("create (switch, %s, [%s => %s])", r.Module, r.From, r.To)
	}
}

// tradeoffGetName extracts the "get" metric names from a trade-off key
// for rendering ("ordering", "error-rate").
func tradeoffGetName(key string) string {
	parts := strings.Split(key, "|")
	if len(parts) != 3 {
		return key
	}
	return parts[1]
}

// Execute runs compiled device scripts, one batch per device (Table VI's
// "commands to each router along the path").
//
// By default scripts are grouped into per-device chains that run
// concurrently, each chain strictly in order: a device that appears more
// than once has its later scripts follow its earlier ones, but no device
// ever waits on another device's progress — the executor pipelines
// instead of synchronising every chain on the slowest device at a wave
// barrier. Module peering stays correct because the initiator rule keys
// on module references (device identity), not on configuration arrival
// order, and every module defers work whose parameters have not arrived
// yet (ErrPending / pending replies). The message Counters are therefore
// byte-identical to sequential execution. On the first batch failure the
// other chains stop starting new batches. Setting n.Sequential restores
// the strict in-order execution of the paper's accounting runs.
func (n *NM) Execute(scripts []DeviceScript) error {
	_, err := n.executeCollect(scripts)
	return err
}

// executeCollect runs scripts like Execute and additionally returns the
// per-script batch responses, aligned with scripts, so callers can bind
// desired state to the component ids the devices actually created.
// Entries for scripts not reached before an error are zero-valued.
func (n *NM) executeCollect(scripts []DeviceScript) ([]msg.CommandBatchResp, error) {
	resps := make([]msg.CommandBatchResp, len(scripts))
	if n.Sequential {
		for i := range scripts {
			r, err := n.runScript(&scripts[i])
			resps[i] = r
			if err != nil {
				return resps, err
			}
		}
		return resps, nil
	}
	chains := executionChains(scripts)
	var failed atomic.Bool
	return resps, n.forEach(len(chains), func(c int) error {
		for _, idx := range chains[c] {
			if failed.Load() {
				return nil
			}
			r, err := n.runScript(&scripts[idx])
			resps[idx] = r
			if err != nil {
				failed.Store(true)
				return err
			}
		}
		return nil
	})
}

// executionChains groups script indexes into per-device chains ordered by
// each device's first appearance; within a chain the original script
// order is preserved. With one script per device (the compiler's normal
// output) every chain has length one.
func executionChains(scripts []DeviceScript) [][]int {
	chainOf := make(map[core.DeviceID]int, len(scripts))
	var chains [][]int
	for i := range scripts {
		c, ok := chainOf[scripts[i].Device]
		if !ok {
			c = len(chains)
			chains = append(chains, nil)
			chainOf[scripts[i].Device] = c
		}
		chains[c] = append(chains[c], i)
	}
	return chains
}

// executionWaves partitions script indexes into waves: each script lands
// in the earliest wave after every earlier script for the same device.
// With one script per device (the compiler's normal output) that is a
// single wave. The concurrent executor now pipelines via executionChains;
// the wave view remains the lock-step grouping (and its invariants are
// still tested) for the Sequential-adjacent analysis tooling.
func executionWaves(scripts []DeviceScript) [][]int {
	deviceWave := make(map[core.DeviceID]int, len(scripts))
	var waves [][]int
	for i := range scripts {
		w := deviceWave[scripts[i].Device] // next wave this device may use
		if w == len(waves) {
			waves = append(waves, nil)
		}
		waves[w] = append(waves[w], i)
		deviceWave[scripts[i].Device] = w + 1
	}
	return waves
}

// runScript sends one device's batch and surfaces per-item errors.
func (n *NM) runScript(ds *DeviceScript) (msg.CommandBatchResp, error) {
	resp, err := n.ExecuteBatch(ds.Device, ds.Items)
	if err != nil {
		return resp, fmt.Errorf("nm: batch on %s: %w", ds.Device, err)
	}
	for i, e := range resp.Errors {
		if e != "" {
			return resp, fmt.Errorf("nm: batch on %s item %d (%s): %s", ds.Device, i, ds.Rendered[i], e)
		}
	}
	return resp, nil
}
