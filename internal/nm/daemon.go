package nm

// The autonomous reconciliation daemon (ROADMAP item 1): a control
// loop that subscribes to the NM's event feed — module notifications,
// dependency triggers (§II-E), topology re-reports — debounces them
// into a dirty set, and drives Reconcile with retry/backoff until the
// network converges on the registered intents. A cut wire, killed
// pipe or killed device heals with no caller: the failure surfaces as
// events, the daemon reconciles. The loop is level-triggered — events
// only say *that* something changed; every pass re-derives the diff
// from observed state — so lost or coalesced events cost at most an
// extra pass (or one poll interval), never correctness.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"conman/internal/core"
	"conman/internal/obs"
)

// DaemonConfig tunes the control loop. Zero values select defaults.
type DaemonConfig struct {
	// Debounce is how long the loop waits after an event before
	// reconciling, coalescing bursts (a link failure produces one
	// topology re-report per adjacent device). Default 10ms.
	Debounce time.Duration
	// Backoff is the initial retry delay after a failed reconcile; it
	// doubles per consecutive failure up to MaxBackoff. Defaults 50ms
	// and 2s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Poll, when positive, adds a periodic audit pass so drift that
	// produced no event is still caught (the pull side of push-vs-poll;
	// the event path is the push side). Default 0: pure push. Each poll
	// tick invalidates the NM's observation cache — a poll that trusted
	// the cache would only catch drift that also produced an event,
	// which is exactly what polling must not rely on.
	Poll time.Duration
	// EventsDisabled turns the push side off: the daemon does not
	// subscribe to the NM's event feed and heals only on poll ticks.
	// Exists for the measured push-vs-poll comparison (docs/daemon.md);
	// production configs leave it false.
	EventsDisabled bool
	// Buffer sizes the event subscription channel.
	Buffer int
	// Logger receives structured reconcile logs with per-reconcile
	// trace IDs; nil discards them.
	Logger *slog.Logger
	// Metrics is the registry the daemon publishes into; nil creates a
	// private one (see Daemon.Metrics).
	Metrics *obs.Metrics
}

func (c *DaemonConfig) defaults() {
	if c.Debounce <= 0 {
		c.Debounce = 10 * time.Millisecond
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewMetrics()
	}
}

// IntentHealth is one intent's slice of the daemon's status snapshot.
type IntentHealth struct {
	Name      string          `json:"name"`
	Path      string          `json:"path,omitempty"`
	Devices   []core.DeviceID `json:"devices"`
	Exclusive int             `json:"exclusive"`
	Shared    int             `json:"shared"`
}

// DaemonStatus is the daemon's /status document.
type DaemonStatus struct {
	Running       bool            `json:"running"`
	Converged     bool            `json:"converged"`
	ConvergeGen   uint64          `json:"converge_gen"`
	Dirty         []string        `json:"dirty,omitempty"`
	PendingEvents int             `json:"pending_events"`
	LastError     string          `json:"last_error,omitempty"`
	Unreachable   []core.DeviceID `json:"unreachable,omitempty"`
	Intents       []IntentHealth  `json:"intents"`
	Metrics       map[string]any  `json:"metrics"`
}

// Healthy reports whether every intent is reconciled and reachable.
func (s DaemonStatus) Healthy() bool {
	return s.Running && s.Converged && s.LastError == "" && len(s.Dirty) == 0
}

// Daemon is the autonomous reconciliation loop over one NM.
type Daemon struct {
	nm  *NM
	cfg DaemonConfig
	log *slog.Logger

	mReconcile    *obs.Histogram
	mTrigConverge *obs.Histogram
	cRuns         *obs.Counter
	cErrors       *obs.Counter
	cInstalled    *obs.Counter
	cWithdrawn    *obs.Counter
	cNotify       *obs.Counter
	cTrigger      *obs.Counter
	cTopology     *obs.Counter
	cPoll         *obs.Counter
	cDropped      *obs.Counter
	cCacheHits    *obs.Counter
	cCacheMisses  *obs.Counter
	cRecompiles   *obs.Counter
	cObserves     *obs.Counter
	cJournal      *obs.Counter
	cSnapshots    *obs.Counter

	mu          sync.Mutex
	running     bool
	events      <-chan Event
	dirty       map[string]bool
	dirtySince  time.Time
	reconciling bool
	converged   bool
	convergeGen uint64
	lastErr     error
	lastViews   []*IntentView
	unreachable []core.DeviceID
	traceSeq    uint64
	lastDropped uint64
	// lastJournal/lastSnapshots are the delta baselines for the
	// persistence counters (the NM counts absolutes; the metrics are
	// monotone counters fed per epoch).
	lastJournal   uint64
	lastSnapshots uint64
}

// NewDaemon builds a daemon over the NM. Call Run to start it.
func NewDaemon(n *NM, cfg DaemonConfig) *Daemon {
	cfg.defaults()
	m := cfg.Metrics
	return &Daemon{
		nm:  n,
		cfg: cfg,
		log: cfg.Logger,
		mReconcile: m.Histogram("conman_reconcile_latency_seconds",
			"Wall-clock latency of one Reconcile pass"),
		mTrigConverge: m.Histogram("conman_trigger_to_converged_seconds",
			"Time from the first event of a dirty epoch to convergence"),
		cRuns:   m.Counter("conman_reconcile_runs_total", "Reconcile passes executed"),
		cErrors: m.Counter("conman_reconcile_errors_total", "Reconcile passes that failed"),
		cInstalled: m.Counter("conman_components_installed_total",
			"Components (pipes, routes/switch rules) created by the daemon"),
		cWithdrawn: m.Counter("conman_components_withdrawn_total",
			"Components deleted by the daemon"),
		cNotify:   m.Counter("conman_events_notify_total", "Module notifications processed (push)"),
		cTrigger:  m.Counter("conman_events_trigger_total", "Dependency triggers processed (push)"),
		cTopology: m.Counter("conman_events_topology_total", "Topology changes processed (push)"),
		cPoll:     m.Counter("conman_events_poll_total", "Periodic audit passes (pull)"),
		cDropped:  m.Counter("conman_events_dropped_total", "Events dropped on a full subscriber buffer"),
		cCacheHits: m.Counter("conman_observe_cache_hits_total",
			"Occupied devices served from the observation cache"),
		cCacheMisses: m.Counter("conman_observe_cache_misses_total",
			"Occupied devices re-observed because their generation moved"),
		cRecompiles: m.Counter("conman_store_recompiles_total",
			"Intents recompiled by reconcile passes (dirty ones only)"),
		cObserves: m.Counter("conman_observes_total",
			"Devices fetched fresh via showActual by reconcile passes"),
		cJournal:   m.Counter("conman_journal_entries_total", "Journal entries appended"),
		cSnapshots: m.Counter("conman_snapshot_writes_total", "Datastore snapshots written"),
		dirty:      make(map[string]bool),
	}
}

// Metrics returns the registry the daemon publishes into.
func (d *Daemon) Metrics() *obs.Metrics { return d.cfg.Metrics }

// Run executes the control loop until ctx is cancelled. It performs
// one initial reconcile (establishing convergence on the current
// store), then reacts to events.
func (d *Daemon) Run(ctx context.Context) error {
	var events <-chan Event
	if !d.cfg.EventsDisabled {
		ch, cancel := d.nm.Subscribe(d.cfg.Buffer)
		defer cancel()
		events = ch
	}
	d.mu.Lock()
	d.events = events
	d.running = true
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.running = false
		d.mu.Unlock()
	}()

	var pollC <-chan time.Time
	if d.cfg.Poll > 0 {
		t := time.NewTicker(d.cfg.Poll)
		defer t.Stop()
		pollC = t.C
	}
	backoff := d.cfg.Backoff
	// Initial pass, immediately.
	wake := time.After(0)
	for {
		select {
		case <-ctx.Done():
			return nil
		case ev := <-events:
			d.noteEvent(ev)
			wake = time.After(d.cfg.Debounce)
		case <-pollC:
			d.cPoll.Inc()
			d.nm.InvalidateObservations()
			d.markDirty("*")
			wake = time.After(d.cfg.Debounce)
		case <-wake:
			wake = nil
			if d.reconcileEpoch() {
				backoff = d.cfg.Backoff
			} else {
				d.log.Info("retry scheduled", "backoff", backoff)
				wake = time.After(backoff)
				backoff *= 2
				if backoff > d.cfg.MaxBackoff {
					backoff = d.cfg.MaxBackoff
				}
			}
		}
	}
}

// noteEvent counts an event and marks the dirty set.
func (d *Daemon) noteEvent(ev Event) {
	switch ev.Kind {
	case EventNotify:
		d.cNotify.Inc()
	case EventTrigger:
		d.cTrigger.Inc()
	case EventTopology:
		d.cTopology.Inc()
	}
	switch ev.Kind {
	case EventTopology:
		// A changed physical view can re-route any intent.
		d.markDirty("*")
	default:
		// Notifies and triggers implicate the intents whose applied
		// configuration touches the reporting device (the §II-E
		// dependents); none known means the event predates our records
		// — dirty everything.
		names := d.nm.IntentsOn(ev.Device)
		if len(names) == 0 {
			d.markDirty("*")
			return
		}
		for _, name := range names {
			d.markDirty(name)
		}
	}
}

func (d *Daemon) markDirty(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dirtySince.IsZero() {
		d.dirtySince = time.Now()
	}
	d.dirty[name] = true
	d.converged = false
}

// reconcileEpoch runs Reconcile until the plan is empty (bounded),
// reporting false when the epoch must be retried with backoff.
func (d *Daemon) reconcileEpoch() bool {
	d.mu.Lock()
	dirty := d.dirty
	d.dirty = make(map[string]bool)
	since := d.dirtySince
	d.dirtySince = time.Time{}
	d.reconciling = true
	d.traceSeq++
	trace := fmt.Sprintf("r-%06d", d.traceSeq)
	d.mu.Unlock()

	log := d.log.With("trace", trace)
	log.Debug("reconcile epoch", "dirty", sortedKeys(dirty))

	fail := func(err error) bool {
		d.cErrors.Inc()
		log.Warn("reconcile failed", "err", err)
		d.mu.Lock()
		d.lastErr = err
		for k := range dirty {
			d.dirty[k] = true
		}
		if d.dirtySince.IsZero() {
			d.dirtySince = since
		}
		d.reconciling = false
		d.mu.Unlock()
		return false
	}

	for iter := 0; ; iter++ {
		t0 := time.Now()
		plan, err := d.nm.Reconcile()
		d.cRuns.Inc()
		d.mReconcile.Observe(time.Since(t0).Seconds())
		if delta := d.nm.EventsDropped() - d.lastDropped; delta > 0 {
			d.cDropped.Add(delta)
			d.lastDropped += delta
		}
		if err != nil {
			return fail(err)
		}
		d.cCacheHits.Add(uint64(plan.Stats.CacheHits))
		d.cCacheMisses.Add(uint64(plan.Stats.CacheMisses))
		d.cRecompiles.Add(uint64(plan.Stats.Recompiled))
		d.cObserves.Add(uint64(plan.Stats.Observed))
		if js := d.nm.JournalStatus(); js.Enabled {
			if delta := js.Entries - d.lastJournal; delta > 0 {
				d.cJournal.Add(delta)
				d.lastJournal += delta
			}
			if delta := js.Snapshots - d.lastSnapshots; delta > 0 {
				d.cSnapshots.Add(delta)
				d.lastSnapshots += delta
			}
		}
		creates, deletes := planCounts(plan)
		d.cInstalled.Add(uint64(creates))
		d.cWithdrawn.Add(uint64(deletes))
		d.mu.Lock()
		d.lastViews = plan.Views
		d.unreachable = plan.Unreachable
		d.mu.Unlock()
		if plan.Empty() {
			if !since.IsZero() {
				d.mTrigConverge.Observe(time.Since(since).Seconds())
			}
			log.Info("converged", "iterations", iter+1, "unreachable", len(plan.Unreachable))
			d.mu.Lock()
			d.lastErr = nil
			d.converged = true
			d.convergeGen++
			d.reconciling = false
			d.mu.Unlock()
			return true
		}
		log.Info("reconciled", "creates", creates, "deletes", deletes, "iteration", iter+1)
		if iter >= 7 {
			return fail(fmt.Errorf("nm: daemon: no convergence after %d passes", iter+1))
		}
	}
}

func planCounts(plan *StorePlan) (creates, deletes int) {
	for _, ds := range plan.Creates {
		creates += len(ds.Items)
	}
	for _, ds := range plan.Deletes {
		deletes += len(ds.Items)
	}
	return creates, deletes
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Status snapshots the daemon for /status and conman doctor.
func (d *Daemon) Status() DaemonStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DaemonStatus{
		Running:     d.running,
		Converged:   d.converged,
		ConvergeGen: d.convergeGen,
		Dirty:       sortedKeys(d.dirty),
		Unreachable: append([]core.DeviceID(nil), d.unreachable...),
		Metrics:     d.cfg.Metrics.Snapshot(),
	}
	if d.events != nil {
		s.PendingEvents = len(d.events)
	}
	if d.lastErr != nil {
		s.LastError = d.lastErr.Error()
	}
	for _, v := range d.lastViews {
		h := IntentHealth{
			Name:      v.Intent.Name,
			Devices:   append([]core.DeviceID(nil), v.Devices...),
			Exclusive: v.Exclusive,
			Shared:    v.Shared,
		}
		if v.Path != nil {
			h.Path = v.Path.Describe()
		}
		s.Intents = append(s.Intents, h)
	}
	return s
}

// ConvergeGen returns the current convergence generation; it bumps on
// every convergence, so callers can wait for one *after* an injected
// fault.
func (d *Daemon) ConvergeGen() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.convergeGen
}

// WaitConverged blocks until the daemon is idle — converged with
// generation > after, nothing dirty, no buffered events — or the
// timeout expires.
func (d *Daemon) WaitConverged(after uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		d.mu.Lock()
		idle := d.converged && d.convergeGen > after && !d.reconciling &&
			len(d.dirty) == 0 && (d.events == nil || len(d.events) == 0)
		gen := d.convergeGen
		errLast := d.lastErr
		d.mu.Unlock()
		if idle {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("nm: daemon: not converged after %v (gen %d > %d wanted, last error: %v)",
				timeout, gen, after, errLast)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
