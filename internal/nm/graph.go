package nm

import (
	"fmt"
	"sort"
	"strings"

	"conman/internal/core"
)

// Node is one module in the potential-connectivity graph.
type Node struct {
	Ref    core.ModuleRef
	Abs    core.Abstraction
	Domain string // address domain, for IP modules (§III-C pruning)
}

// String renders the node as its module reference.
func (n *Node) String() string { return n.Ref.String() }

// PhysAttachment is one physical pipe of an (ETH) module with its
// resolved far end.
type PhysAttachment struct {
	Pipe     core.PipeID
	External bool
	Peer     *Node // nil when external or unresolved
	PeerPipe core.PipeID
}

// Graph is the NM's potential-connectivity graph: modules as nodes,
// potential up-down pipes and discovered physical pipes as edges (Fig 5).
type Graph struct {
	nodes   map[string]*Node
	ordered []*Node
	above   map[string][]*Node
	below   map[string][]*Node
	phys    map[string][]PhysAttachment
	// Partitions of phys, built once so the finders do not rescan every
	// customer port per expansion on an edge switch with thousands of
	// external attachments: wires carries only resolved device-to-device
	// links, externals only external ports, physAt indexes by pipe id.
	wires     map[string][]PhysAttachment
	externals map[string][]PhysAttachment
	physAt    map[string]map[core.PipeID]PhysAttachment
}

// BuildGraph constructs the graph from everything the NM has learnt
// through topology reports and showPotential.
func BuildGraph(n *NM) (*Graph, error) {
	g := &Graph{
		nodes:     make(map[string]*Node),
		above:     make(map[string][]*Node),
		below:     make(map[string][]*Node),
		phys:      make(map[string][]PhysAttachment),
		wires:     make(map[string][]PhysAttachment),
		externals: make(map[string][]PhysAttachment),
		physAt:    make(map[string]map[core.PipeID]PhysAttachment),
	}
	// Nodes.
	type portTop struct {
		peerDev  core.DeviceID
		peerPort string
		external bool
		attached bool
	}
	type devModules struct {
		dev  core.DeviceID
		mods []core.Abstraction
		top  map[string]portTop
	}
	var devs []devModules
	for _, id := range n.Devices() {
		info, _ := n.Device(id)
		if info == nil || len(info.Modules) == 0 {
			continue
		}
		dm := devModules{dev: id, mods: info.Modules, top: make(map[string]portTop)}
		for _, p := range info.Topology.Ports {
			dm.top[p.Name] = portTop{p.PeerDevice, p.PeerPort, p.External, p.Attached}
		}
		devs = append(devs, dm)
	}
	for _, dm := range devs {
		for _, abs := range dm.mods {
			node := &Node{Ref: abs.Ref, Abs: abs.Clone(), Domain: abs.Attributes["address-domain"]}
			g.nodes[node.Ref.String()] = node
			g.ordered = append(g.ordered, node)
		}
	}
	// Potential up-down edges within each device.
	for _, dm := range devs {
		for _, upper := range dm.mods {
			for _, lower := range dm.mods {
				if upper.Ref == lower.Ref {
					continue
				}
				if upper.Down.CanConnect(lower.Ref.Name) && lower.Up.CanConnect(upper.Ref.Name) {
					u := g.nodes[upper.Ref.String()]
					l := g.nodes[lower.Ref.String()]
					g.below[u.Ref.String()] = append(g.below[u.Ref.String()], l)
					g.above[l.Ref.String()] = append(g.above[l.Ref.String()], u)
				}
			}
		}
	}
	// Physical edges from topology reports matched by the Phy-<port>
	// pipe naming convention.
	portOwner := make(map[string]*Node) // "<dev>/<port>" -> ETH node
	for _, dm := range devs {
		for _, abs := range dm.mods {
			for _, pp := range abs.Physical {
				port := strings.TrimPrefix(string(pp.Pipe), "Phy-")
				portOwner[string(dm.dev)+"/"+port] = g.nodes[abs.Ref.String()]
			}
		}
	}
	for _, dm := range devs {
		for _, abs := range dm.mods {
			node := g.nodes[abs.Ref.String()]
			for _, pp := range abs.Physical {
				port := strings.TrimPrefix(string(pp.Pipe), "Phy-")
				t, ok := dm.top[port]
				att := PhysAttachment{Pipe: pp.Pipe, External: pp.External || (ok && t.external)}
				// A reported-down link (cut wire, §III-C.2) contributes no
				// physical edge, so the path finder routes around it.
				if ok && t.peerDev != "" && t.attached && !att.External {
					if peer, found := portOwner[string(t.peerDev)+"/"+t.peerPort]; found {
						att.Peer = peer
						att.PeerPipe = core.PipeID("Phy-" + t.peerPort)
					}
				}
				key := node.Ref.String()
				g.phys[key] = append(g.phys[key], att)
				switch {
				case att.External:
					g.externals[key] = append(g.externals[key], att)
				case att.Peer != nil:
					g.wires[key] = append(g.wires[key], att)
				}
				if g.physAt[key] == nil {
					g.physAt[key] = make(map[core.PipeID]PhysAttachment)
				}
				g.physAt[key][att.Pipe] = att
			}
		}
	}
	// Deterministic neighbour ordering.
	for _, m := range []map[string][]*Node{g.above, g.below} {
		for k := range m {
			sort.Slice(m[k], func(i, j int) bool { return m[k][i].Ref.String() < m[k][j].Ref.String() })
		}
	}
	return g, nil
}

// Node fetches a node by reference.
func (g *Graph) Node(ref core.ModuleRef) (*Node, bool) {
	n, ok := g.nodes[ref.String()]
	return n, ok
}

// Nodes returns all nodes.
func (g *Graph) Nodes() []*Node { return append([]*Node(nil), g.ordered...) }

// Above returns the modules that can sit above n.
func (g *Graph) Above(n *Node) []*Node { return g.above[n.Ref.String()] }

// Below returns the modules that can sit below n.
func (g *Graph) Below(n *Node) []*Node { return g.below[n.Ref.String()] }

// Phys returns n's physical attachments.
func (g *Graph) Phys(n *Node) []PhysAttachment { return g.phys[n.Ref.String()] }

// Wires returns n's resolved device-to-device attachments only.
func (g *Graph) Wires(n *Node) []PhysAttachment { return g.wires[n.Ref.String()] }

// Externals returns n's external attachments only.
func (g *Graph) Externals(n *Node) []PhysAttachment { return g.externals[n.Ref.String()] }

// PhysAt fetches one attachment of n by pipe id.
func (g *Graph) PhysAt(n *Node, pipe core.PipeID) (PhysAttachment, bool) {
	pa, ok := g.physAt[n.Ref.String()][pipe]
	return pa, ok
}

// DeviceSubgraph renders the potential-connectivity sub-graph of one
// device as an edge list (the paper's Fig 5).
func (g *Graph) DeviceSubgraph(dev core.DeviceID) []string {
	var lines []string
	for _, n := range g.ordered {
		if n.Ref.Device != dev {
			continue
		}
		for _, b := range g.Below(n) {
			lines = append(lines, fmt.Sprintf("%s -- down/up pipe -- %s", n.Ref, b.Ref))
		}
		for _, m := range n.Abs.Switch.Modes {
			if m == core.SwDownDown || m == core.SwUpUp || m == core.SwPhyPhy {
				lines = append(lines, fmt.Sprintf("%s has %s switching", n.Ref, m))
			}
		}
		for _, pa := range g.Phys(n) {
			if pa.External {
				lines = append(lines, fmt.Sprintf("%s -- physical pipe %s -- (external)", n.Ref, pa.Pipe))
			} else if pa.Peer != nil {
				lines = append(lines, fmt.Sprintf("%s -- physical pipe %s -- %s", n.Ref, pa.Pipe, pa.Peer.Ref))
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// DOT renders the device sub-graph in Graphviz format (for Fig 5).
func (g *Graph) DOT(dev core.DeviceID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", string(dev))
	b.WriteString("  rankdir=BT;\n")
	for _, n := range g.ordered {
		if n.Ref.Device != dev {
			continue
		}
		label := n.Ref.String()
		for _, m := range n.Abs.Switch.Modes {
			if m == core.SwDownDown {
				label += "\\n[down=>down]"
			}
			if m == core.SwUpUp {
				label += "\\n[up=>up]"
			}
			if m == core.SwPhyPhy {
				label += "\\n[phy=>phy]"
			}
		}
		fmt.Fprintf(&b, "  %q [label=%q];\n", n.Ref.String(), label)
	}
	seen := map[string]bool{}
	for _, n := range g.ordered {
		if n.Ref.Device != dev {
			continue
		}
		for _, lower := range g.Below(n) {
			key := n.Ref.String() + "--" + lower.Ref.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			fmt.Fprintf(&b, "  %q -- %q;\n", lower.Ref.String(), n.Ref.String())
		}
		for _, pa := range g.Phys(n) {
			if pa.External {
				fmt.Fprintf(&b, "  %q -- %q [style=dashed,label=%q];\n", n.Ref.String(), "external:"+string(pa.Pipe), string(pa.Pipe))
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
