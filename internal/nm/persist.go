package nm

// Persistence for the intent store (ISSUE 7): every Submit/Update/
// Withdraw appends to a datastore journal, ApplyStore brackets its
// device writes with apply-begin/commit records, and Checkpoint writes
// a full snapshot (intents, NM knowledge, observation cache). Persist
// restores all of it on restart, so a recovered daemon reaches the same
// StorePlan without re-observing devices that did not change while it
// was down.

import (
	"encoding/json"
	"fmt"
	"sort"

	"conman/internal/core"
	"conman/internal/msg"
	"conman/internal/nm/datastore"
)

// autoSnapshotEvery bounds journal growth: ApplyStore checkpoints after
// this many entries accumulate past the last snapshot.
const autoSnapshotEvery = 128

// journalLocked appends one entry to the attached journal (a no-op
// without persistence). Caller holds n.mu.
func (n *NM) journalLocked(op datastore.Op, name string, data any, to uint64) error {
	if n.journal == nil {
		return nil
	}
	if _, err := n.journal.Append(op, name, data, to); err != nil {
		return fmt.Errorf("nm: journal: %w", err)
	}
	n.journalEntries++
	return nil
}

// snapshotV1 is the on-disk snapshot: the intent store plus everything
// the NM learned over the management channel that a restarted process
// would otherwise have to rediscover, including the observed-state
// cache so recovery costs zero showActual calls for unchanged devices.
type snapshotV1 struct {
	Version  int                      `json:"version"`
	Intents  []datastore.IntentRecord `json:"intents"`
	Domains  map[string]string        `json:"domains,omitempty"`
	Gateways map[string]string        `json:"gateways,omitempty"`
	Devices  []deviceSnap             `json:"devices,omitempty"`
	// IntentDevs is the committed occupancy memory (which devices each
	// applied intent touched), and StaleDevs the unreachable-with-stale-
	// state set.
	IntentDevs map[string][]core.DeviceID `json:"intent_devs,omitempty"`
	StaleDevs  []core.DeviceID            `json:"stale_devs,omitempty"`
	// Triggers are the installed dependency-trigger keys, so a restart
	// does not re-install (and re-count) them.
	Triggers []string  `json:"triggers,omitempty"`
	Observed []obsSnap `json:"observed,omitempty"`
}

type deviceSnap struct {
	ID       core.DeviceID      `json:"id"`
	Hello    bool               `json:"hello"`
	Topology msg.Topology       `json:"topology"`
	Modules  []core.Abstraction `json:"modules,omitempty"`
}

type obsSnap struct {
	Device  core.DeviceID `json:"device"`
	Gen     uint64        `json:"gen"`
	Pipes   []obsPipeSnap `json:"pipes,omitempty"`
	Rules   []obsRuleSnap `json:"rules,omitempty"`
	UsedIDs []core.PipeID `json:"used_ids,omitempty"`
}

type obsPipeSnap struct {
	ID        core.PipeID    `json:"id"`
	Upper     core.ModuleRef `json:"upper"`
	Lower     core.ModuleRef `json:"lower"`
	UpperPeer core.ModuleRef `json:"upper_peer"`
	LowerPeer core.ModuleRef `json:"lower_peer"`
	UpperSeen bool           `json:"upper_seen"`
}

type obsRuleSnap struct {
	ID            string         `json:"id"`
	Module        core.ModuleRef `json:"module"`
	From          core.PipeID    `json:"from"`
	To            core.PipeID    `json:"to"`
	Match         string         `json:"match"`
	Via           string         `json:"via"`
	MatchResolved string         `json:"match_resolved"`
	ViaResolved   string         `json:"via_resolved"`
	Handle        string         `json:"handle,omitempty"`
}

// Persist attaches a datastore backend to the NM and restores whatever
// state it holds: intents are replayed from snapshot + journal into the
// store (all marked dirty, so the next Reconcile re-derives the unions
// against the restored observation cache — zero showActual calls for
// devices that did not change), NM knowledge and occupancy records are
// restored for devices that have not re-announced themselves live, and
// every device named by a post-snapshot apply-begin record is
// invalidated, committed or not — the snapshot's cached observation
// predates those writes, so observe it fresh rather than trust the
// snapshot. Returns the number of intents
// restored into the store. Subsequent store mutations journal through
// the backend.
func (n *NM) Persist(b datastore.Backend) (int, error) {
	n.planMu.Lock()
	defer n.planMu.Unlock()
	log, st, err := datastore.Open(b)
	if err != nil {
		return 0, fmt.Errorf("nm: persist: %w", err)
	}
	var snap snapshotV1
	if st.Snapshot != nil {
		if err := json.Unmarshal(st.Snapshot, &snap); err != nil {
			return 0, fmt.Errorf("nm: persist: corrupt snapshot: %w", err)
		}
	}
	recs, err := datastore.ReplayIntents(snap.Intents, st.Entries, 0)
	if err != nil {
		return 0, fmt.Errorf("nm: persist: %w", err)
	}

	ss := n.ss
	n.mu.Lock()
	defer n.mu.Unlock()
	// Devices already announced live on this channel outrank the
	// snapshot: their state may have changed while we were down.
	live := make(map[core.DeviceID]bool)
	for id, d := range n.devices {
		if d.Hello {
			live[id] = true
		}
	}
	for k, v := range snap.Domains {
		if _, ok := n.domains[k]; !ok {
			n.domains[k] = v
		}
	}
	for k, v := range snap.Gateways {
		if _, ok := n.gateways[k]; !ok {
			n.gateways[k] = v
		}
	}
	for _, dsnap := range snap.Devices {
		if live[dsnap.ID] {
			continue
		}
		d := n.deviceInfoLocked(dsnap.ID)
		d.Hello = dsnap.Hello
		d.Topology = dsnap.Topology
		d.Modules = dsnap.Modules
	}
	restored := 0
	for _, rec := range recs {
		var intent Intent
		if err := json.Unmarshal(rec.Data, &intent); err != nil {
			return restored, fmt.Errorf("nm: persist: intent %q: %w", rec.Name, err)
		}
		if _, ok := n.store[intent.Name]; ok {
			continue // a live submission outranks the journal
		}
		n.storePos[intent.Name] = len(n.storeOrder)
		n.storeOrder = append(n.storeOrder, intent.Name)
		n.store[intent.Name] = intent
		n.ssDirty[intent.Name] = true
		restored++
	}
	for name, devs := range snap.IntentDevs {
		if _, ok := n.intentDevs[name]; ok {
			continue
		}
		set := make(map[core.DeviceID]bool, len(devs))
		for _, dev := range devs {
			set[dev] = true
			ss.recordedCount[dev]++
		}
		n.intentDevs[name] = set
	}
	for _, dev := range snap.StaleDevs {
		n.staleDevs[dev] = true
	}
	for _, key := range snap.Triggers {
		n.installedTriggers[key] = true
	}
	for _, os := range snap.Observed {
		if live[os.Device] {
			continue // it rebooted or re-announced; observe it fresh
		}
		o := &observed{
			pipes:   make(map[core.PipeID]obsPipe, len(os.Pipes)),
			usedIDs: make(map[core.PipeID]bool, len(os.UsedIDs)),
		}
		for _, p := range os.Pipes {
			o.pipes[p.ID] = obsPipe{
				upper: p.Upper, lower: p.Lower,
				upperPeer: p.UpperPeer, lowerPeer: p.LowerPeer,
				upperSeen: p.UpperSeen,
			}
		}
		for _, r := range os.Rules {
			o.rules = append(o.rules, obsRule{
				id: r.ID, module: r.Module, from: r.From, to: r.To,
				match: r.Match, via: r.Via,
				matchResolved: r.MatchResolved, viaResolved: r.ViaResolved,
				handle: r.Handle,
			})
		}
		for _, id := range os.UsedIDs {
			o.usedIDs[id] = true
		}
		ss.cache[os.Device] = &obsEntry{gen: os.Gen, o: o}
		if n.obsGens[os.Device] < os.Gen {
			n.obsGens[os.Device] = os.Gen
		}
	}
	// An apply-begin after the snapshot means device writes may have
	// landed (or half-landed) that the snapshot's cache predates:
	// invalidate those devices so the next pass observes them for real.
	for _, e := range st.Entries {
		if e.Op != datastore.OpApplyBegin || len(e.Data) == 0 {
			continue
		}
		var devs []core.DeviceID
		if json.Unmarshal(e.Data, &devs) == nil {
			for _, dev := range devs {
				n.obsGens[dev]++
			}
		}
	}
	n.journal = log
	return restored, nil
}

// Checkpoint writes a full snapshot through the attached journal,
// resetting its since-snapshot entry count.
func (n *NM) Checkpoint() error {
	n.planMu.Lock()
	defer n.planMu.Unlock()
	return n.checkpointLocked()
}

func (n *NM) checkpointLocked() error {
	ss := n.ss
	n.mu.Lock()
	j := n.journal
	if j == nil {
		n.mu.Unlock()
		return fmt.Errorf("nm: checkpoint: no persistence attached (use Persist)")
	}
	snap := snapshotV1{
		Version:  1,
		Domains:  copyStringMap(n.domains),
		Gateways: copyStringMap(n.gateways),
	}
	for _, name := range n.storeOrder {
		data, err := json.Marshal(n.store[name])
		if err != nil {
			n.mu.Unlock()
			return fmt.Errorf("nm: checkpoint: intent %q: %w", name, err)
		}
		snap.Intents = append(snap.Intents, datastore.IntentRecord{Name: name, Data: data})
	}
	for _, id := range n.order {
		d := n.devices[id]
		snap.Devices = append(snap.Devices, deviceSnap{
			ID: id, Hello: d.Hello, Topology: d.Topology, Modules: d.Modules,
		})
	}
	if len(n.intentDevs) > 0 {
		snap.IntentDevs = make(map[string][]core.DeviceID, len(n.intentDevs))
		for name, devs := range n.intentDevs {
			snap.IntentDevs[name] = sortedDevs(devs)
		}
	}
	snap.StaleDevs = sortedDevs(n.staleDevs)
	for key := range n.installedTriggers {
		snap.Triggers = append(snap.Triggers, key)
	}
	sort.Strings(snap.Triggers)
	cached := make([]core.DeviceID, 0, len(ss.cache))
	for dev := range ss.cache {
		cached = append(cached, dev)
	}
	sort.Slice(cached, func(i, j int) bool { return cached[i] < cached[j] })
	for _, dev := range cached {
		ce := ss.cache[dev]
		if ce.o == nil || ce.gen != n.obsGens[dev] {
			// An entry the live NM has already invalidated (an event or a
			// bind fallback moved the generation) must not be persisted:
			// a restore would trust it and skip the re-observe the live
			// process knew it owed.
			continue
		}
		os := obsSnap{Device: dev, Gen: ce.gen}
		ids := make([]core.PipeID, 0, len(ce.o.pipes))
		for id := range ce.o.pipes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			p := ce.o.pipes[id]
			os.Pipes = append(os.Pipes, obsPipeSnap{
				ID: id, Upper: p.upper, Lower: p.lower,
				UpperPeer: p.upperPeer, LowerPeer: p.lowerPeer,
				UpperSeen: p.upperSeen,
			})
		}
		for _, r := range ce.o.rules {
			if r.id == "" { // tombstone
				continue
			}
			os.Rules = append(os.Rules, obsRuleSnap{
				ID: r.id, Module: r.module, From: r.from, To: r.to,
				Match: r.match, Via: r.via,
				MatchResolved: r.matchResolved, ViaResolved: r.viaResolved,
				Handle: r.handle,
			})
		}
		os.UsedIDs = sortedDevsPipe(ce.o.usedIDs)
		snap.Observed = append(snap.Observed, os)
	}
	n.mu.Unlock()

	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("nm: checkpoint: %w", err)
	}
	if _, err := j.WriteSnapshot(data); err != nil {
		return fmt.Errorf("nm: checkpoint: %w", err)
	}
	n.mu.Lock()
	n.snapshotsWritten++
	n.mu.Unlock()
	return nil
}

func copyStringMap(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortedDevsPipe(set map[core.PipeID]bool) []core.PipeID {
	out := make([]core.PipeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// JournalStats reports the state of the attached persistence.
type JournalStats struct {
	// Enabled reports whether a journal is attached (Persist was called).
	Enabled bool
	// Entries / Snapshots count this process's journal appends and
	// snapshot writes.
	Entries   uint64
	Snapshots uint64
	// LastSeq is the journal's last sequence number; SinceSnapshot counts
	// entries past the last snapshot (auto-checkpoint trips at
	// autoSnapshotEvery).
	LastSeq       uint64
	SinceSnapshot int
}

// JournalStatus returns a snapshot of the persistence counters.
func (n *NM) JournalStatus() JournalStats {
	n.mu.Lock()
	j := n.journal
	st := JournalStats{Enabled: j != nil, Entries: n.journalEntries, Snapshots: n.snapshotsWritten}
	n.mu.Unlock()
	if j != nil {
		st.LastSeq = j.LastSeq()
		st.SinceSnapshot = j.SinceSnapshot()
	}
	return st
}
