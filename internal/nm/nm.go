// Package nm implements the CONMan Network Manager (paper §II-D): it
// learns the network's physical topology and module abstractions over the
// management channel, builds the potential-connectivity graph (Fig 5),
// finds protocol-sane module-level paths between endpoints (Fig 6,
// §III-C.1), compiles a chosen path into protocol-agnostic CONMan
// primitives (Figs 7b/8b/9b) and executes them, relaying module-to-module
// messages (conveyMessage / listFieldsAndValues) since modules can only
// talk to the NM.
//
// Control modules (§II-F) are matched by token equality: a data
// module's declared state dependency (IPSec's keying material, the IP
// module's transit routes) is satisfied by a co-located control module
// advertising ProvidesState with the same token, and the compiler
// emits the pipes that introduce provider peers to each other (one
// pipe per IGP adjacency along a transit IPv4 group) without ever
// understanding the state itself.
//
// Path selection is goal-directed: Graph.FindBest runs a best-first
// search over partial paths scored by the paper's selection metric
// (pipes instantiated, forwarding speed, hop count) with a
// flavour-aware dominance table, returning the best — or best
// preferred-flavour — path without materialising the variant space.
// Graph.FindPaths remains the exhaustive enumerator (the Fig 6
// path-counting experiments, and the Exhaustive A/B knob).
//
// # The intent store
//
// The NM's public surface is declarative, in two tiers. The per-intent
// tier is Plan / Apply / Destroy: one Intent (a named connectivity Goal)
// is compiled, diffed against observed device state, and reconciled.
// The store tier implements the paper's "NM holds all the goals" model
// (§III): Submit and Withdraw register and remove goals in the intent
// store, and Reconcile compiles the union of every registered intent,
// deduplicates the desired pipes and switch rules by content with
// per-intent ownership (refcounting), observes every relevant device
// once, and sends create/delete batches that only remove components no
// registered intent wants. Goals whose paths cross the same transit
// devices therefore coexist — their shared components are configured
// once and survive until the last owner is withdrawn — and withdrawing
// one goal removes exactly its unshared components. PlanStore is the
// dry-run form of Reconcile; NM.Plan remains the per-intent dry-run
// view. Pipe identity in the store is structural (endpoint modules,
// remote peers, dependency choices), so reconciliation adopts the wire
// ids of matching installed pipes instead of churning them.
//
// The store is incremental and persistent. Reconcile recompiles only
// intents dirtied since the last pass (cached compilations are reused,
// and the potential graph is memoised on the compile generation), and
// answers unchanged devices from a per-device observation cache keyed
// on device generations — so the cost of a pass scales with what
// changed, not with what is registered. With NM.Persist the store
// journals every Submit/Withdraw/commit to an append-only log
// (internal/nm/datastore) with periodic snapshots; a restarted NM
// restores its goals and observation cache and converges without
// re-observing devices whose state nothing questions.
package nm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/msg"
	"conman/internal/nm/datastore"
)

// DefaultWorkers bounds the NM's concurrent device fan-out when
// NM.Workers is unset. Per-device management work is dominated by
// channel round trips, so a pool larger than GOMAXPROCS still pays off.
const DefaultWorkers = 16

// Counters tracks the NM's management-channel traffic in the categories
// of the paper's Table VI: configuration commands sent (one batch per
// device), module-message relays (each relayed message counts once
// received from the source and once sent to the destination), and
// unsolicited notifications received. Transport-level acknowledgements
// (batch responses) are tracked separately and not part of the Table VI
// numbers, matching the paper's accounting of n command sends with no
// per-command receive.
type Counters struct {
	CmdSent     int // command batches sent
	RelayIn     int // convey/listFields messages received for relay
	RelayOut    int // convey/listFields messages relayed out
	NotifyRecv  int // unsolicited notifications received
	AckRecv     int // batch responses (transport-level, not in Table VI)
	TriggerRecv int
}

// Sent is the Table VI "messages sent" figure.
func (c Counters) Sent() int { return c.CmdSent + c.RelayOut }

// Received is the Table VI "messages received" figure.
func (c Counters) Received() int { return c.RelayIn + c.NotifyRecv }

// DeviceInfo is everything the NM knows about one device.
type DeviceInfo struct {
	ID       core.DeviceID
	Hello    bool
	Topology msg.Topology
	Modules  []core.Abstraction // from showPotential
}

type relayOrigin struct {
	dev string
	id  uint64
}

// logEntry is one recorded management-channel event, tagged with the
// stream it belongs to and its sequence number within that stream. A
// stream is a causally ordered unit of traffic: one device's command
// batches, or one module-pair conversation (whose init/reply/ack all
// pass through the NM in order). Under the concurrent executor the
// global arrival interleave across streams is nondeterministic, but
// each stream's internal order is not — so sorting by (stream, seq)
// yields a trace that is byte-reproducible run to run.
type logEntry struct {
	stream string
	seq    uint64
	text   string
}

func (e logEntry) String() string {
	return fmt.Sprintf("[%s #%d] %s", e.stream, e.seq, e.text)
}

// conveyStream names the conversation stream of a relayed module
// message: direction-normalised module pair plus message kind, so a
// request and its reply land in the same stream.
func conveyStream(a, b core.ModuleRef, kind string) string {
	as, bs := a.String(), b.String()
	if bs < as {
		as, bs = bs, as
	}
	return "convey:" + as + "~" + bs + ":" + kind
}

// NM is the network manager.
type NM struct {
	mu       sync.Mutex
	ep       channel.Endpoint
	devices  map[core.DeviceID]*DeviceInfo // guarded by mu
	order    []core.DeviceID               // guarded by mu
	counters Counters

	reqSeq  uint64
	waiters map[uint64]chan msg.Envelope // guarded by mu

	relaySeq uint64
	relays   map[uint64]relayOrigin // guarded by mu

	// domains maps abstract domain names (the NM's admitted
	// protocol-specific knowledge, §III-C) to prefixes, and gateway
	// tokens to addresses.
	domains  map[string]string // guarded by mu
	gateways map[string]string // guarded by mu

	// intentDevs remembers, per applied intent name, the devices its
	// configuration touched, so a later Plan or Reconcile can prune
	// state from devices a re-chosen path no longer traverses (reroute
	// after failure) or that only a withdrawn intent occupied.
	intentDevs map[string]map[core.DeviceID]bool // guarded by mu

	// store holds the registered goals of the intent store
	// (Submit/Withdraw) by intent name; storeOrder keeps submission
	// order so Reconcile compiles and renders deterministically.
	store      map[string]Intent // guarded by mu
	storeOrder []string          // guarded by mu

	// notifies/triggers retain the most recent unsolicited events for
	// inspection (bounded to eventRetain; live consumers use Subscribe).
	notifies []msg.Notify  // guarded by mu
	triggers []msg.Trigger // guarded by mu

	// subs are the live event subscribers (Subscribe); publishes that
	// find a subscriber's buffer full are counted in eventsDropped
	// rather than blocking the management channel.
	subs          map[uint64]chan Event // guarded by mu
	subSeq        uint64
	eventSeq      uint64
	eventsDropped uint64

	// staleDevs are devices that were unreachable while holding stale
	// configuration; they are re-checked (and pruned) once reachable.
	staleDevs map[core.DeviceID]bool // guarded by mu

	// installedTriggers dedups the NM's own InstallTrigger calls per
	// (module, component), so repeated reconciles stay quiet.
	installedTriggers map[string]bool // guarded by mu

	// obsGens is the per-device observation generation: bumped by every
	// signal that the device's configured state may have changed (hello,
	// topology change, module notify, dependency trigger). The store's
	// observed-state cache is valid only while its recorded generation
	// still matches — event-driven invalidation instead of a showActual
	// sweep per reconcile.
	obsGens map[core.DeviceID]uint64 // guarded by mu
	// compileGen is bumped by everything that can change compilation
	// inputs (module discovery, topology, domain/gateway bindings). The
	// store falls back to a full union rebuild when it moves.
	compileGen uint64
	// graphCache memoises BuildGraph for the current compileGen: a full
	// store rebuild compiles every intent against the same topology, and
	// rebuilding the potential graph per intent is O(k^2) at store
	// scale. The graph is read-only after construction (searches keep
	// their state in a per-call finder), so sharing it is safe.
	graphCache *Graph // guarded by mu
	graphGen   uint64
	// expectNotify counts module notifies the NM's own reconcile deletes
	// are about to cause (keyed dev|kind|detail), so self-inflicted
	// events do not invalidate the observation cache the reconcile just
	// wrote through. The events still publish to subscribers.
	expectNotify map[string]int // guarded by mu

	// planMu serialises store planning/apply and guards ss, the
	// incremental union + observation-cache state. Lock order: planMu
	// before mu, never the reverse.
	planMu sync.Mutex
	ss     *storeState // guarded by planMu

	// ssDirty/ssRemoved record store mutations since the last PlanStore
	// drained them; storePos keeps each registered intent's submission
	// index so dirty intents merge in deterministic order.
	ssDirty   map[string]bool // guarded by mu
	ssRemoved map[string]bool // guarded by mu
	storePos  map[string]int

	// journal, when set via Persist, durably records store mutations;
	// journalEntries/snapshotsWritten count this process's writes.
	journal          *datastore.Log
	journalEntries   uint64
	snapshotsWritten uint64

	logEnabled bool
	msgLog     []logEntry        // guarded by mu
	logSeq     map[string]uint64 // guarded by mu

	// onTrigger, when set via SetOnTrigger, is invoked for
	// dependency-maintenance triggers (§II-E). It has its own lock so
	// registration waits out any in-flight dispatch instead of racing
	// with it.
	triggerMu sync.RWMutex
	onTrigger func(t msg.Trigger) // guarded by triggerMu

	// CallTimeout bounds request/response calls.
	CallTimeout time.Duration

	// RetryInterval, when positive, retransmits an unanswered request
	// (same envelope, same ID) every interval until CallTimeout expires,
	// letting calls converge over lossy management channels. Device
	// agents dedup by (requester, envelope ID), so a retransmitted
	// request is answered from the reply cache rather than re-executed.
	// Zero (the default) keeps single-shot calls. Set before attaching a
	// channel; it is read without locking.
	RetryInterval time.Duration

	// callRetries counts request retransmissions issued by call().
	callRetries atomic.Uint64

	// Sequential restores the strictly one-device-at-a-time behaviour
	// for DiscoverAll and Execute (the paper's original accounting mode,
	// and a safe fallback for channels that cannot carry concurrent
	// traffic). The default is concurrent fan-out. Set before the first
	// DiscoverAll/Execute call; it is read without locking.
	Sequential bool

	// Workers bounds the concurrent fan-out of DiscoverAll and of each
	// Execute wave. Zero or negative selects DefaultWorkers. Set before
	// the first DiscoverAll/Execute call; it is read without locking.
	Workers int
}

// relayIDBase keeps relay envelope ids disjoint from the NM's own call
// ids (reqSeq): both appear as envelope IDs in ListFieldsResp/Error
// replies, and a collision would misroute a call response to a relay
// origin.
const relayIDBase = uint64(1) << 32

// New creates a network manager.
func New() *NM {
	return &NM{
		devices:           make(map[core.DeviceID]*DeviceInfo),
		waiters:           make(map[uint64]chan msg.Envelope),
		relays:            make(map[uint64]relayOrigin),
		relaySeq:          relayIDBase,
		domains:           make(map[string]string),
		gateways:          make(map[string]string),
		intentDevs:        make(map[string]map[core.DeviceID]bool),
		store:             make(map[string]Intent),
		subs:              make(map[uint64]chan Event),
		staleDevs:         make(map[core.DeviceID]bool),
		installedTriggers: make(map[string]bool),
		obsGens:           make(map[core.DeviceID]uint64),
		expectNotify:      make(map[string]int),
		ss:                newStoreState(),
		ssDirty:           make(map[string]bool),
		ssRemoved:         make(map[string]bool),
		storePos:          make(map[string]int),
		CallTimeout:       5 * time.Second,
	}
}

// AttachChannel connects the NM to the management channel.
func (n *NM) AttachChannel(ep channel.Endpoint) {
	n.mu.Lock()
	n.ep = ep
	n.mu.Unlock()
	ep.SetHandler(n.handle)
}

// SetDomain registers an address-domain name -> prefix binding ("C1-S2"
// -> "10.0.2.0/24"). Per §III-C the NM legitimately owns this knowledge.
func (n *NM) SetDomain(name, prefix string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.domains[name] = prefix
	n.compileGen++
}

// SetGateway registers a gateway token -> address binding ("S1-gateway"
// -> "192.168.0.1").
func (n *NM) SetGateway(token, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.gateways[token] = addr
	n.compileGen++
}

// ResolveDomain returns the prefix for a domain name.
func (n *NM) ResolveDomain(name string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	p, ok := n.domains[name]
	return p, ok
}

// ResolveGateway returns the address for a gateway token.
func (n *NM) ResolveGateway(token string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.gateways[token]
	return a, ok
}

// Counters returns a snapshot of the message counters.
func (n *NM) Counters() Counters {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counters
}

// ResetCounters zeroes the counters (called before a configuration run so
// Table VI counts configuration traffic only).
func (n *NM) ResetCounters() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.counters = Counters{}
	n.msgLog = nil
	n.logSeq = nil
}

// EnableMessageLog starts recording a human-readable trace of the NM's
// management-channel traffic (used to regenerate the paper's Fig 3
// message sequence). Entries carry per-device sequence numbers.
func (n *NM) EnableMessageLog() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.logEnabled = true
}

// MessageLog returns the recorded trace. Under the concurrent executor
// the arrival interleave across streams is nondeterministic, so the
// trace is returned in canonical order — streams sorted by name, each
// stream's entries in causal sequence — which is byte-reproducible run
// to run. In Sequential mode arrival order is itself deterministic and
// chronological (the paper's Fig 3 is a time-ordered sequence diagram),
// so the trace keeps it.
func (n *NM) MessageLog() []string {
	n.mu.Lock()
	entries := append([]logEntry(nil), n.msgLog...)
	n.mu.Unlock()
	if !n.Sequential {
		sort.SliceStable(entries, func(i, j int) bool {
			if entries[i].stream != entries[j].stream {
				return entries[i].stream < entries[j].stream
			}
			return entries[i].seq < entries[j].seq
		})
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.String()
	}
	return out
}

// logf records one event in the given stream. Caller must pick the
// stream so that all its events are causally ordered at the NM.
func (n *NM) logfLocked(stream string, format string, args ...any) {
	if !n.logEnabled {
		return
	}
	if n.logSeq == nil {
		n.logSeq = make(map[string]uint64)
	}
	n.logSeq[stream]++
	n.msgLog = append(n.msgLog, logEntry{stream: stream, seq: n.logSeq[stream], text: fmt.Sprintf(format, args...)})
}

// Devices returns the known device ids in hello order.
func (n *NM) Devices() []core.DeviceID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]core.DeviceID(nil), n.order...)
}

// Device returns the NM's knowledge of one device.
func (n *NM) Device(id core.DeviceID) (*DeviceInfo, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	d, ok := n.devices[id]
	if !ok {
		return nil, false
	}
	cp := *d
	cp.Modules = append([]core.Abstraction(nil), d.Modules...)
	return &cp, true
}

// IntentsOn returns the registered intents whose last applied
// configuration touched the device (sorted). The daemon uses it to map
// a device-scoped event to the dependent intents.
func (n *NM) IntentsOn(dev core.DeviceID) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	for name, devs := range n.intentDevs {
		if devs[dev] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Notifies returns the unsolicited notifications received so far.
func (n *NM) Notifies() []msg.Notify {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]msg.Notify(nil), n.notifies...)
}

// Triggers returns fired dependency triggers.
func (n *NM) Triggers() []msg.Trigger {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]msg.Trigger(nil), n.triggers...)
}

func (n *NM) deviceInfoLocked(id core.DeviceID) *DeviceInfo {
	d, ok := n.devices[id]
	if !ok {
		d = &DeviceInfo{ID: id}
		n.devices[id] = d
		n.order = append(n.order, id)
		sort.Slice(n.order, func(i, j int) bool { return n.order[i] < n.order[j] })
	}
	return d
}

// ---------------------------------------------------------------------------
// Channel handling

func (n *NM) handle(env msg.Envelope) {
	switch env.Type {
	case msg.TypeHello:
		var h msg.Hello
		if env.Decode(&h) == nil {
			n.mu.Lock()
			n.deviceInfoLocked(h.Device).Hello = true
			// A (re)booted device starts from clean state: both its cached
			// observation and the potential graph are suspect.
			n.bumpObsLocked(h.Device)
			n.compileGen++
			n.mu.Unlock()
		}

	case msg.TypeTopology:
		var t msg.Topology
		if env.Decode(&t) == nil {
			n.mu.Lock()
			d := n.deviceInfoLocked(t.Device)
			prev := d.Topology
			d.Topology = t
			if len(prev.Ports) == 0 || !topologyEqual(prev, t) {
				n.bumpObsLocked(t.Device)
				n.compileGen++
			}
			// A re-report that changed the device's physical view (link
			// up/down, peer change) is an event the daemon reacts to;
			// the initial report and identical re-reports are not.
			if len(prev.Ports) > 0 && !topologyEqual(prev, t) {
				n.publishLocked(Event{Kind: EventTopology, Device: t.Device})
			}
			n.mu.Unlock()
		}

	case msg.TypeConvey:
		var c msg.Convey
		if env.Decode(&c) != nil {
			return
		}
		n.mu.Lock()
		n.counters.RelayIn++
		n.logfLocked(conveyStream(c.FromModule, c.ToModule, c.Kind), "conveyMessage (%s -> %s, %s)", c.FromModule, c.ToModule, c.Kind)
		ep := n.ep
		n.mu.Unlock()
		out := msg.MustNew(msg.TypeConvey, msg.NMName, string(c.ToModule.Device), env.ID, c)
		if ep != nil && ep.Send(out) == nil {
			n.mu.Lock()
			n.counters.RelayOut++
			n.mu.Unlock()
		}

	case msg.TypeListFieldsReq:
		var req msg.ListFieldsReq
		if env.Decode(&req) != nil {
			return
		}
		n.mu.Lock()
		n.counters.RelayIn++
		n.relaySeq++
		rid := n.relaySeq
		n.relays[rid] = relayOrigin{dev: env.From, id: env.ID}
		n.logfLocked("fields:"+req.Requester.String()+"~"+req.Target.String(),
			"listFieldsAndValues(%s) from %s", req.Target, req.Requester)
		ep := n.ep
		n.mu.Unlock()
		out := msg.MustNew(msg.TypeListFieldsReq, msg.NMName, string(req.Target.Device), rid, req)
		if ep != nil && ep.Send(out) == nil {
			n.mu.Lock()
			n.counters.RelayOut++
			n.mu.Unlock()
		}

	case msg.TypeListFieldsResp:
		// Either an answer to a relayed module query, or (never) ours.
		n.mu.Lock()
		origin, isRelay := n.relays[env.ID]
		if isRelay {
			delete(n.relays, env.ID)
			n.counters.RelayIn++
		}
		ep := n.ep
		n.mu.Unlock()
		if isRelay {
			var body msg.ListFieldsResp
			if env.Decode(&body) != nil {
				return
			}
			out := msg.MustNew(msg.TypeListFieldsResp, msg.NMName, origin.dev, origin.id, body)
			if ep != nil && ep.Send(out) == nil {
				n.mu.Lock()
				n.counters.RelayOut++
				n.mu.Unlock()
			}
			return
		}
		n.wake(env)

	case msg.TypeNotify:
		var note msg.Notify
		if env.Decode(&note) != nil {
			return
		}
		n.mu.Lock()
		n.counters.NotifyRecv++
		n.notifies = appendBounded(n.notifies, note)
		n.logfLocked("notify:"+note.Module.String(), "notify (%s: %s)", note.Module, note.Kind)
		// A notify the NM's own reconcile deletes caused (e.g. the lower
		// module reporting pipe-deleted) does not invalidate the cached
		// observation — the reconcile already wrote the change through.
		if key := expectKey(note.Module.Device, note.Kind, note.Detail); n.expectNotify[key] > 0 {
			n.expectNotify[key]--
			if n.expectNotify[key] == 0 {
				delete(n.expectNotify, key)
			}
		} else {
			n.bumpObsLocked(note.Module.Device)
		}
		n.publishLocked(Event{
			Kind: EventNotify, Device: note.Module.Device,
			Module: note.Module, What: note.Kind, Detail: note.Detail,
		})
		n.mu.Unlock()

	case msg.TypeTrigger:
		var t msg.Trigger
		if env.Decode(&t) != nil {
			return
		}
		n.mu.Lock()
		n.counters.TriggerRecv++
		n.triggers = appendBounded(n.triggers, t)
		n.bumpObsLocked(t.Module.Device)
		n.publishLocked(Event{
			Kind: EventTrigger, Device: t.Module.Device,
			Module: t.Module, Component: t.Component,
		})
		n.mu.Unlock()
		// The callback is invoked under triggerMu (not n.mu), so
		// SetOnTrigger waits out an in-flight dispatch instead of
		// swapping the handler mid-call.
		n.triggerMu.RLock()
		if cb := n.onTrigger; cb != nil {
			cb(t)
		}
		n.triggerMu.RUnlock()

	case msg.TypeError:
		// Could be a failed relay or an answer to one of our requests.
		n.mu.Lock()
		origin, isRelay := n.relays[env.ID]
		if isRelay {
			delete(n.relays, env.ID)
		}
		ep := n.ep
		n.mu.Unlock()
		if isRelay {
			var e msg.Error
			_ = env.Decode(&e)
			out := msg.MustNew(msg.TypeError, msg.NMName, origin.dev, origin.id, e)
			if ep != nil {
				_ = ep.Send(out)
			}
			return
		}
		n.wake(env)

	case msg.TypeCommandBatchResp:
		n.mu.Lock()
		n.counters.AckRecv++
		n.mu.Unlock()
		n.wake(env)

	default:
		// Responses to the NM's own requests.
		n.wake(env)
	}
}

// bumpObsLocked advances a device's observation generation (caller
// holds n.mu), invalidating any cached observation of it.
func (n *NM) bumpObsLocked(dev core.DeviceID) {
	n.obsGens[dev]++
}

// expectKey keys the expectNotify suppression map.
func expectKey(dev core.DeviceID, kind, detail string) string {
	return string(dev) + "|" + kind + "|" + detail
}

// InvalidateObservations discards the store's confidence in every
// cached device observation, forcing the next reconcile pass to
// re-observe whatever it touches. The daemon's poll path calls this on
// each tick: a poll audit that trusted the cache would only ever see
// drift that also produced an event, which is exactly what polling is
// meant not to rely on.
func (n *NM) InvalidateObservations() {
	n.mu.Lock()
	for d := range n.devices {
		n.obsGens[d]++
	}
	n.mu.Unlock()
}

func (n *NM) wake(env msg.Envelope) {
	n.mu.Lock()
	ch, ok := n.waiters[env.ID]
	n.mu.Unlock()
	if ok {
		select {
		case ch <- env:
		default:
		}
	}
}

// call performs a request/response round trip to a device.
func (n *NM) call(t msg.Type, dev core.DeviceID, body any) (msg.Envelope, error) {
	n.mu.Lock()
	n.reqSeq++
	id := n.reqSeq
	ch := make(chan msg.Envelope, 1)
	n.waiters[id] = ch
	ep := n.ep
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.waiters, id)
		n.mu.Unlock()
	}()
	if ep == nil {
		return msg.Envelope{}, fmt.Errorf("nm: no management channel attached")
	}
	env, err := msg.New(t, msg.NMName, string(dev), id, body)
	if err != nil {
		return msg.Envelope{}, err
	}
	if err := ep.Send(env); err != nil {
		return msg.Envelope{}, err
	}
	deadline := time.After(n.CallTimeout)
	var retry <-chan time.Time
	if n.RetryInterval > 0 {
		ticker := time.NewTicker(n.RetryInterval)
		defer ticker.Stop()
		retry = ticker.C
	}
	for {
		select {
		case resp := <-ch:
			if resp.Type == msg.TypeError {
				var e msg.Error
				_ = resp.Decode(&e)
				return msg.Envelope{}, fmt.Errorf("nm: %s on %s: %s", t, dev, e.Message)
			}
			return resp, nil
		case <-retry:
			// Best effort: a failed retransmit leaves the deadline in
			// charge, exactly as a lost datagram would.
			n.callRetries.Add(1)
			_ = ep.Send(env)
		case <-deadline:
			return msg.Envelope{}, fmt.Errorf("nm: %s on %s: timeout", t, dev)
		}
	}
}

// CallRetries reports how many request retransmissions call() has issued
// (nonzero only with RetryInterval set and an unreliable channel).
func (n *NM) CallRetries() uint64 { return n.callRetries.Load() }

// ---------------------------------------------------------------------------
// Primitives (Table I)

// ShowPotential fetches (and caches) a device's module abstractions.
func (n *NM) ShowPotential(dev core.DeviceID) ([]core.Abstraction, error) {
	resp, err := n.call(msg.TypeShowPotentialReq, dev, nil)
	if err != nil {
		return nil, err
	}
	var body msg.ShowPotentialResp
	if err := resp.Decode(&body); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.deviceInfoLocked(dev).Modules = body.Modules
	n.compileGen++
	n.mu.Unlock()
	return body.Modules, nil
}

// ShowActual fetches a device's module states.
func (n *NM) ShowActual(dev core.DeviceID) ([]core.ModuleState, error) {
	resp, err := n.call(msg.TypeShowActualReq, dev, nil)
	if err != nil {
		return nil, err
	}
	var body msg.ShowActualResp
	if err := resp.Decode(&body); err != nil {
		return nil, err
	}
	return body.Modules, nil
}

// ExecuteBatch sends one configuration command batch to a device (the
// Table VI "command to each router").
func (n *NM) ExecuteBatch(dev core.DeviceID, items []msg.CommandItem) (msg.CommandBatchResp, error) {
	n.mu.Lock()
	n.counters.CmdSent++
	n.logfLocked("cmd:"+string(dev), "command batch -> %s (%d items)", dev, len(items))
	n.mu.Unlock()
	resp, err := n.call(msg.TypeCommandBatchReq, dev, msg.CommandBatchReq{Items: items})
	if err != nil {
		return msg.CommandBatchResp{}, err
	}
	var body msg.CommandBatchResp
	if err := resp.Decode(&body); err != nil {
		return msg.CommandBatchResp{}, err
	}
	return body, nil
}

// CreateFilter installs an abstract filter rule on its inspecting module.
func (n *NM) CreateFilter(rule core.FilterRule) (string, error) {
	resp, err := n.call(msg.TypeCreateFilterReq, rule.Module.Device, msg.CreateFilterReq{Rule: rule})
	if err != nil {
		return "", err
	}
	var body msg.CreateFilterResp
	if err := resp.Decode(&body); err != nil {
		return "", err
	}
	return body.RuleID, nil
}

// Delete removes a component.
func (n *NM) Delete(req core.DeleteRequest) error {
	_, err := n.call(msg.TypeDeleteReq, req.Module.Device, msg.DeleteReq{Req: req})
	return err
}

// InstallTrigger asks a module to report low-level value changes for a
// component (§II-E dependency maintenance).
func (n *NM) InstallTrigger(module core.ModuleRef, component string) (string, error) {
	resp, err := n.call(msg.TypeInstallTriggerReq, module.Device, msg.InstallTriggerReq{
		Module: module, Component: component,
	})
	if err != nil {
		return "", err
	}
	var body msg.InstallTriggerResp
	if err := resp.Decode(&body); err != nil {
		return "", err
	}
	return body.TriggerID, nil
}

// ListFields resolves an abstract component of a module to its current
// low-level fields (listFieldsAndValues issued by the NM itself,
// §II-E). It is how the NM checks whether a handle another component
// embedded is still current.
func (n *NM) ListFields(target core.ModuleRef, component string) (map[string]string, error) {
	resp, err := n.call(msg.TypeListFieldsReq, target.Device, msg.ListFieldsReq{
		Target: target, Component: component,
	})
	if err != nil {
		return nil, err
	}
	var body msg.ListFieldsResp
	if err := resp.Decode(&body); err != nil {
		return nil, err
	}
	return body.Fields, nil
}

// ensureTrigger installs a dependency-maintenance trigger once per
// (module, component): repeated Applies of the same plan stay quiet.
func (n *NM) ensureTrigger(module core.ModuleRef, component string) error {
	key := module.String() + "|" + component
	n.mu.Lock()
	done := n.installedTriggers[key]
	n.mu.Unlock()
	if done {
		return nil
	}
	if _, err := n.InstallTrigger(module, component); err != nil {
		return err
	}
	n.mu.Lock()
	n.installedTriggers[key] = true
	n.mu.Unlock()
	return nil
}

// SelfTest asks a module to probe data-plane connectivity to its peer
// (§II-D.2).
func (n *NM) SelfTest(module core.ModuleRef, pipe core.PipeID) (bool, string, error) {
	resp, err := n.call(msg.TypeSelfTestReq, module.Device, msg.SelfTestReq{Module: module, Pipe: pipe})
	if err != nil {
		return false, "", err
	}
	var body msg.SelfTestResp
	if err := resp.Decode(&body); err != nil {
		return false, "", err
	}
	return body.OK, body.Detail, nil
}

// DiscoverAll invokes showPotential on every device that said hello.
// Devices are queried concurrently on a bounded worker pool unless
// n.Sequential is set; the result (the NM's device/module knowledge) is
// identical in both modes, only wall-clock time differs.
func (n *NM) DiscoverAll() error {
	devs := n.Devices()
	return n.forEach(len(devs), func(i int) error {
		_, err := n.ShowPotential(devs[i])
		return err
	})
}

// workerCount resolves the effective fan-out bound.
func (n *NM) workerCount() int {
	if n.Workers > 0 {
		return n.Workers
	}
	return DefaultWorkers
}

// forEach runs fn(0..count-1) on a bounded worker pool (or in order when
// n.Sequential is set). All indexes run even if some fail; the returned
// error is the lowest-index one, so failures are reported
// deterministically regardless of goroutine scheduling.
func (n *NM) forEach(count int, fn func(i int) error) error {
	workers := n.workerCount()
	if workers > count {
		workers = count
	}
	if n.Sequential || workers <= 1 {
		for i := 0; i < count; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, count)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < count; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
