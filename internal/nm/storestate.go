package nm

// The incremental store engine (ROADMAP: persistent, incremental intent
// datastore). storeState lives across reconcile passes, guarded by
// NM.planMu: the merged per-device unions, each intent's contribution
// refs into them, per-intent sharing views, and the observed-state
// cache. A pass only pays for what changed — dirty intents recompile,
// devices whose observation generation moved re-observe, and devices
// with a valid, fully bound cache entry diff in O(pending work) or are
// skipped outright.

import (
	"fmt"
	"sort"

	"conman/internal/core"
	"conman/internal/msg"
	"conman/internal/nm/datastore"
)

// obsEntry is one device's cached observation, tagged with the
// generation it was fetched at. The entry is *valid* while the device's
// observation generation still equals gen (no event since the fetch)
// and *synced* once a full diff has bound the union against it — only
// then can a later pass trust the recorded bindings and diff just the
// delta.
type obsEntry struct {
	gen    uint64
	o      *observed
	synced bool
}

// intentContrib is one registered intent's share of the union: the path
// it compiled to, the devices it occupies, and a ref per union
// component it co-owns (so Withdraw/Update removes exactly this share).
type intentContrib struct {
	path    *Path
	devices []core.DeviceID
	refs    []contribRef
}

type contribRef struct {
	du *deviceUnion
	it unionItem
}

// storeState is the incremental heart of the intent store.
type storeState struct {
	unions map[core.DeviceID]*deviceUnion
	order  []core.DeviceID
	// contribs tracks each registered intent's union share.
	contribs map[string]*intentContrib
	// views/viewIdx are the per-intent sharing summaries, maintained on
	// ownership transitions instead of a full-store tally per pass.
	// Every StorePlan captures the slice as-is (copying 10k views per
	// pass would defeat O(changed)), so it is copy-on-write: once
	// viewsShared is set, mutators clone the slice — and bumpView the
	// element — before writing, leaving captured snapshots untouched.
	views       []*IntentView
	viewIdx     map[string]int
	viewsShared bool
	// shared counts distinct components with more than one owner.
	shared int
	// compiledGen is the NM compileGen the unions were built against; a
	// mismatch forces a full rebuild (topology, module discovery or
	// domain changes can re-route any intent).
	compiledGen uint64
	// cache holds the per-device observations.
	cache map[core.DeviceID]*obsEntry
	// recordedCount counts, per device, how many committed intent
	// records occupy it (the incremental form of scanning intentDevs for
	// stranded devices).
	recordedCount map[core.DeviceID]int
	// removedIntents / recordsDirty stage occupancy-record changes for
	// the next successful ApplyStore commit.
	removedIntents map[string]bool
	recordsDirty   map[string]bool
	// passSeq ties plans to the state generation they were computed
	// from; an ApplyStore of a superseded plan is refused.
	passSeq uint64
}

func newStoreState() *storeState {
	return &storeState{
		unions:         make(map[core.DeviceID]*deviceUnion),
		contribs:       make(map[string]*intentContrib),
		viewIdx:        make(map[string]int),
		cache:          make(map[core.DeviceID]*obsEntry),
		recordedCount:  make(map[core.DeviceID]int),
		removedIntents: make(map[string]bool),
		recordsDirty:   make(map[string]bool),
	}
}

// reset discards the unions and views (compile inputs changed; every
// intent re-merges from scratch) while keeping the observation cache
// and record counts: cached device state is still real state, so the
// rebuild can rematch against it without a single showActual. Pending
// per-device work (newItems, queued deletes) is discarded with the
// unions — the full rematch re-derives it from the union-vs-cache diff.
func (ss *storeState) reset() {
	ss.unions = make(map[core.DeviceID]*deviceUnion)
	ss.order = nil
	ss.contribs = make(map[string]*intentContrib)
	ss.views = nil
	ss.viewIdx = make(map[string]int)
	ss.viewsShared = false
	ss.shared = 0
	for _, ce := range ss.cache {
		ce.synced = false
	}
}

// ---------------------------------------------------------------------------
// Ownership accounting

// addOwnerLen appends an intent name once, reporting whether it was new.
func addOwnerLen(owners *[]string, name string) bool {
	for _, o := range *owners {
		if o == name {
			return false
		}
	}
	*owners = append(*owners, name)
	return true
}

func removeOwner(owners *[]string, name string) bool {
	for i, o := range *owners {
		if o == name {
			*owners = append((*owners)[:i], (*owners)[i+1:]...)
			return true
		}
	}
	return false
}

// ownerAdded updates the sharing tallies after name (the last element)
// joined a component's owner list. Nil-safe: mergeScripts without a
// store context skips the accounting.
func (ss *storeState) ownerAdded(owners []string) {
	if ss == nil {
		return
	}
	switch len(owners) {
	case 1:
		ss.bumpView(owners[0], 1, 0)
	case 2:
		// The component just became shared: it leaves the first owner's
		// exclusive tally and enters both owners' shared ones.
		ss.shared++
		ss.bumpView(owners[0], -1, 1)
		ss.bumpView(owners[1], 0, 1)
	default:
		ss.bumpView(owners[len(owners)-1], 0, 1)
	}
}

// unshared moves a component back into its now-sole owner's exclusive
// tally.
func (ss *storeState) unshared(owner string) {
	ss.shared--
	ss.bumpView(owner, 1, -1)
}

func (ss *storeState) bumpView(name string, dExclusive, dShared int) {
	if i, ok := ss.viewIdx[name]; ok {
		ss.ownViews()
		// Clone the element too: a snapshot captured last pass still
		// points at the old struct.
		v := *ss.views[i]
		v.Exclusive += dExclusive
		v.Shared += dShared
		ss.views[i] = &v
	}
}

// ownViews makes the views slice writable, cloning it if a StorePlan
// snapshot captured it. The clone copies pointers only; elements are
// cloned individually by their mutators.
func (ss *storeState) ownViews() {
	if !ss.viewsShared {
		return
	}
	ss.views = append([]*IntentView(nil), ss.views...)
	ss.viewsShared = false
}

// setView installs (or replaces in place) an intent's view with zeroed
// sharing counts; the subsequent merge re-accumulates them.
func (ss *storeState) setView(v IntentView) {
	ss.ownViews()
	if i, ok := ss.viewIdx[v.Intent.Name]; ok {
		ss.views[i] = &v
		return
	}
	ss.viewIdx[v.Intent.Name] = len(ss.views)
	ss.views = append(ss.views, &v)
}

func (ss *storeState) removeView(name string) {
	i, ok := ss.viewIdx[name]
	if !ok {
		return
	}
	ss.ownViews()
	ss.views = append(ss.views[:i], ss.views[i+1:]...)
	delete(ss.viewIdx, name)
	for j := i; j < len(ss.views); j++ {
		ss.viewIdx[ss.views[j].Intent.Name] = j
	}
}

// rollbackContrib undoes a partial merge after a conflict: the refs
// recorded so far are removed exactly like a withdrawal.
func (ss *storeState) rollbackContrib(name string) {
	if ss != nil {
		ss.removeContribs(name)
	}
}

// removeContribs drops one intent's share of every union component it
// contributed to. Components whose last owner leaves are tombstoned;
// ones bound to installed device state queue their deletion for the
// next pass (no observation sweep — the binding already knows the
// installed ids). The departing intent's own view is left to the caller
// (deleted on withdraw, replaced on update).
func (ss *storeState) removeContribs(name string) {
	contrib := ss.contribs[name]
	if contrib == nil {
		return
	}
	for _, ref := range contrib.refs {
		du := ref.du
		switch {
		case ref.it.pipe != nil:
			p := ref.it.pipe
			if !removeOwner(&p.owners, name) {
				continue
			}
			switch len(p.owners) {
			case 0:
				du.killPipe(p)
			case 1:
				ss.unshared(p.owners[0])
			}
		case ref.it.rule != nil:
			r := ref.it.rule
			if !removeOwner(&r.owners, name) {
				continue
			}
			switch len(r.owners) {
			case 0:
				du.killRule(r)
			case 1:
				ss.unshared(r.owners[0])
			}
		case ref.it.other != nil:
			du.killOther(ref.it.other)
		}
		du.maybeCompact()
	}
	contrib.refs = nil
}

// ---------------------------------------------------------------------------
// Union component lifecycle (kill + compaction + conflict classes)

func (du *deviceUnion) killPipe(p *unionPipe) {
	p.gone = true
	delete(du.pipes, p.key)
	du.live--
	du.dead++
	if p.inPlace {
		p.inPlace = false
		du.bound--
		du.pendingDelPipes = append(du.pendingDelPipes, core.DeleteRequest{
			Kind: core.ComponentPipe, Module: p.req.Lower, ID: string(p.id),
		})
	}
}

func (du *deviceUnion) killRule(r *unionRule) {
	r.gone = true
	delete(du.rules, r.key)
	du.classRemove(r)
	du.live--
	du.dead++
	if r.kept {
		r.kept = false
		du.bound--
		du.pendingDelRules = append(du.pendingDelRules, core.DeleteRequest{
			Kind: core.ComponentSwitchRule, Module: r.rule.Module, ID: r.boundID,
		})
		r.boundID = ""
	}
}

func (du *deviceUnion) killOther(o *unionOther) {
	o.gone = true
	du.live--
	du.dead++
}

// maybeCompact drops tombstoned items once they outnumber the live ones
// (amortised O(1) per kill), so long-lived unions do not accrete every
// component ever withdrawn.
func (du *deviceUnion) maybeCompact() {
	if du.dead <= 16 || du.dead <= du.live {
		return
	}
	keepItems := du.items[:0]
	for _, it := range du.items {
		if !it.isGone() {
			keepItems = append(keepItems, it)
		}
	}
	du.items = keepItems
	keepNew := du.newItems[:0]
	for _, it := range du.newItems {
		if !it.isGone() {
			keepNew = append(keepNew, it)
		}
	}
	du.newItems = keepNew
	du.dead = 0
}

// pipeIdent is the structural identity of a rule's pipe reference: two
// intents compile the same pipe under different local ids, so NM-created
// pipes compare by content, physical references by literal id.
func pipeIdent(lit core.PipeID, up *unionPipe) string {
	if up != nil {
		return "pipe:" + pipeKey(up.req)
	}
	return string(lit)
}

// describeTarget renders a rule target for a conflict message: the
// pipe's structural endpoints rather than a compile-local id.
func describeTarget(lit core.PipeID, up *unionPipe, via string) string {
	out := string(lit)
	if up != nil {
		out = fmt.Sprintf("the %s~%s pipe", up.req.Upper, up.req.Lower)
	}
	if i := indexByte(via, '/'); i > 0 {
		out += " via " + via[:i]
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// ruleClassKey identifies the traffic a value-carrying classifier rule
// claims: module, entry pipe (structural), classifier and resolution.
// Rules sharing it must agree on the target or they conflict.
func ruleClassKey(r *unionRule) string {
	return r.rule.Module.String() + "|" + pipeIdent(r.rule.From, r.fromPipe) + "|" +
		classifierKey(r.rule.Match) + "|" + r.matchResolved
}

// classAdd indexes a new value-carrying classifier rule and reports a
// typed conflict if an existing rule claims the same traffic for a
// different target (the incremental form of deviceUnion.conflicts:
// detection happens as each dirty intent merges, not in a full scan).
func (du *deviceUnion) classAdd(r *unionRule, owner string) error {
	if r.rule.Match == nil || r.rule.Match.Value == "" {
		return nil
	}
	if du.classes == nil {
		du.classes = make(map[string][]*unionRule)
	}
	key := ruleClassKey(r)
	to, via := pipeIdent(r.rule.To, r.toPipe), r.rule.Via+"/"+r.viaResolved
	for _, prev := range du.classes[key] {
		if prev.gone {
			continue
		}
		prevVia := prev.rule.Via + "/" + prev.viaResolved
		if pipeIdent(prev.rule.To, prev.toPipe) != to || prevVia != via {
			return &ConflictError{
				Device: du.dev, Module: r.rule.Module,
				IntentA: prev.owners[0], IntentB: owner,
				RuleA: prev.rule, RuleB: r.rule,
				TargetA: describeTarget(prev.rule.To, prev.toPipe, prevVia),
				TargetB: describeTarget(r.rule.To, r.toPipe, via),
			}
		}
	}
	du.classes[key] = append(du.classes[key], r)
	return nil
}

func (du *deviceUnion) classRemove(r *unionRule) {
	if du.classes == nil || r.rule.Match == nil || r.rule.Match.Value == "" {
		return
	}
	key := ruleClassKey(r)
	list := du.classes[key]
	for i, e := range list {
		if e == r {
			du.classes[key] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(du.classes[key]) == 0 {
		delete(du.classes, key)
	}
}

// ---------------------------------------------------------------------------
// Observation-cache binding indexes

// ensureIndex lazily builds the binding indexes a bare observed (as
// tests construct it, or as observe() returns it) does not carry.
func (o *observed) ensureIndex() {
	if o.claimed == nil {
		o.claimed = make(map[core.PipeID]bool)
	}
	if o.usedIDs == nil {
		o.usedIDs = make(map[core.PipeID]bool)
	}
	if o.ruleIdx == nil {
		o.rebuildRuleIndex()
	}
}

func (o *observed) rebuildRuleIndex() {
	o.ruleIdx = make(map[string][]int, len(o.rules))
	o.ruleByID = make(map[string]int, len(o.rules))
	for j := range o.rules {
		or := &o.rules[j]
		if or.id == "" { // tombstone
			continue
		}
		o.ruleIdx[or.key()] = append(o.ruleIdx[or.key()], j)
		o.ruleByID[or.id] = j
	}
}

// key is the binding identity of an installed rule — exactly the fields
// the full diff compares when deciding whether a desired rule is kept.
func (or *obsRule) key() string {
	return or.module.String() + "|" + string(or.from) + "|" + string(or.to) + "|" +
		or.match + "|" + or.via + "|" + or.matchResolved + "|" + or.viaResolved
}

// desiredRuleKey is the same identity computed from a desired rule's
// resolved form.
func desiredRuleKey(rr core.SwitchRule, matchResolved, viaResolved string) string {
	return rr.Module.String() + "|" + string(rr.From) + "|" + string(rr.To) + "|" +
		classifierKey(rr.Match) + "|" + rr.Via + "|" + matchResolved + "|" + viaResolved
}

// addRule write-through-appends a just-installed rule.
func (o *observed) addRule(or obsRule) {
	j := len(o.rules)
	o.rules = append(o.rules, or)
	o.ruleIdx[or.key()] = append(o.ruleIdx[or.key()], j)
	o.ruleByID[or.id] = j
}

// tombstoneRule write-through-removes a just-deleted rule.
func (o *observed) tombstoneRule(id string) {
	j, ok := o.ruleByID[id]
	if !ok {
		return
	}
	or := &o.rules[j]
	key := or.key()
	idx := o.ruleIdx[key]
	for k, v := range idx {
		if v == j {
			o.ruleIdx[key] = append(idx[:k], idx[k+1:]...)
			break
		}
	}
	if len(o.ruleIdx[key]) == 0 {
		delete(o.ruleIdx, key)
	}
	delete(o.ruleByID, id)
	or.id = ""
}

// compactRules drops tombstones before a full rematch.
func (o *observed) compactRules() {
	dead := false
	for j := range o.rules {
		if o.rules[j].id == "" {
			dead = true
			break
		}
	}
	if !dead {
		return
	}
	keep := o.rules[:0]
	for _, or := range o.rules {
		if or.id != "" {
			keep = append(keep, or)
		}
	}
	o.rules = keep
	o.rebuildRuleIndex()
}

// matchUnclaimed finds the lowest-id unclaimed observed pipe matching a
// desired request.
func (o *observed) matchUnclaimed(req core.PipeRequest) (core.PipeID, bool) {
	ids := make([]core.PipeID, 0, len(o.pipes))
	for id := range o.pipes {
		if !o.claimed[id] {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if o.pipes[id].matches(req) {
			return id, true
		}
	}
	return "", false
}

// allocPipeID allocates a wire id never observed on and never before
// allocated for this device (deleted ids are not reused, so a delete
// and a create of the same shape in one pass cannot collide).
func (o *observed) allocPipeID() core.PipeID {
	for next := 0; ; next++ {
		cand := core.PipeID(fmt.Sprintf("P%d", next))
		if o.usedIDs[cand] {
			continue
		}
		if _, exists := o.pipes[cand]; exists {
			continue
		}
		o.usedIDs[cand] = true
		return cand
	}
}

// ---------------------------------------------------------------------------
// Delta diff

// adoptPendingPipe cancels a queued pipe deletion whose installed pipe
// matches a re-merged desired pipe (the update/resubmit path), so an
// unchanged component is re-adopted instead of churned.
func (du *deviceUnion) adoptPendingPipe(o *observed, req core.PipeRequest) (core.PipeID, bool) {
	for i, dr := range du.pendingDelPipes {
		id := core.PipeID(dr.ID)
		op, ok := o.pipes[id]
		if !ok || !op.matches(req) {
			continue
		}
		du.pendingDelPipes = append(du.pendingDelPipes[:i], du.pendingDelPipes[i+1:]...)
		return id, true
	}
	return "", false
}

// adoptPendingRule is the rule-side cancellation: a queued rule
// deletion whose installed form matches a re-merged desired rule is
// dropped and the installed rule re-bound.
func (du *deviceUnion) adoptPendingRule(n *NM, o *observed, key string, exports bool, provider core.ModuleRef, to core.PipeID) (string, bool) {
	for i, dr := range du.pendingDelRules {
		j, ok := o.ruleByID[dr.ID]
		if !ok {
			continue
		}
		or := &o.rules[j]
		if or.key() != key {
			continue
		}
		if exports && !n.handleFresh(provider, to, or.handle) {
			continue
		}
		du.pendingDelRules = append(du.pendingDelRules[:i], du.pendingDelRules[i+1:]...)
		or.used = true
		return or.id, true
	}
	return "", false
}

func pipesReady(r *unionRule) bool {
	return (r.fromPipe == nil || r.fromPipe.inPlace) && (r.toPipe == nil || r.toPipe.inPlace)
}

// deltaDiff reconciles only the pending work on a device whose cached
// observation is valid and already bound (synced): queued deletions of
// withdrawn components and newly merged components. Cost is O(pending),
// independent of the union and store size — the incremental store's
// fast path.
func (du *deviceUnion) deltaDiff(n *NM, o *observed, plan *StorePlan) {
	o.ensureIndex()
	// Everything bound before this pass is in place by definition.
	plan.InPlace += du.bound
	creates := DeviceScript{Device: du.dev}
	var binds []bindTarget
	keep := du.newItems[:0]
	for _, it := range du.newItems {
		switch {
		case it.pipe != nil && !it.pipe.gone:
			p := it.pipe
			if p.inPlace {
				continue
			}
			if id, ok := du.adoptPendingPipe(o, p.req); ok {
				p.id, p.inPlace = id, true
				du.bound++
				plan.InPlace++
				continue
			}
			if id, ok := o.matchUnclaimed(p.req); ok {
				p.id, p.inPlace = id, true
				o.claimed[id] = true
				du.bound++
				plan.InPlace++
				continue
			}
			if p.id == "" {
				p.id = o.allocPipeID()
			}
			creates.Items = append(creates.Items, msg.CommandItem{
				Pipe: &msg.CreatePipeItem{ID: p.id, Req: p.req},
			})
			creates.Rendered = append(creates.Rendered,
				renderPipeCreate(p.id, p.req)+ownersSuffix(p.owners))
			binds = append(binds, bindTarget{pipe: p})
			keep = append(keep, it)
		case it.rule != nil && !it.rule.gone:
			r := it.rule
			if r.kept {
				continue
			}
			exports := r.toPipe != nil && r.toPipe.req.Lower != r.rule.Module &&
				n.handleExporter(r.toPipe.req.Lower)
			if exports {
				plan.handleDeps = append(plan.handleDeps, handleDep{
					r.toPipe.req.Lower, "pipe:" + string(r.toPipe.id),
				})
			}
			rr := r.resolved()
			if pipesReady(r) {
				key := desiredRuleKey(rr, r.matchResolved, r.viaResolved)
				bound := false
				for _, j := range o.ruleIdx[key] {
					or := &o.rules[j]
					if or.used || or.id == "" {
						continue
					}
					if exports && !n.handleFresh(r.toPipe.req.Lower, rr.To, or.handle) {
						continue
					}
					or.used = true
					r.kept, r.boundID = true, or.id
					du.bound++
					plan.InPlace++
					bound = true
					break
				}
				if !bound {
					var prov core.ModuleRef
					if r.toPipe != nil {
						prov = r.toPipe.req.Lower
					}
					if id, ok := du.adoptPendingRule(n, o, key, exports, prov, rr.To); ok {
						r.kept, r.boundID = true, id
						du.bound++
						plan.InPlace++
						bound = true
					}
				}
				if bound {
					continue
				}
			}
			creates.Items = append(creates.Items, msg.CommandItem{
				Switch: &msg.CreateSwitchReq{
					Rule:          rr,
					MatchResolved: r.matchResolved,
					ViaResolved:   r.viaResolved,
				},
			})
			creates.Rendered = append(creates.Rendered,
				renderSwitchCreate(rr)+ownersSuffix(r.owners))
			binds = append(binds, bindTarget{rule: r})
			keep = append(keep, it)
		case it.other != nil && !it.other.gone && !it.other.done:
			creates.Items = append(creates.Items, it.other.item)
			creates.Rendered = append(creates.Rendered, it.other.rendered)
			binds = append(binds, bindTarget{other: it.other})
			keep = append(keep, it)
		}
	}
	du.newItems = keep
	// Deletes after adoption so cancelled ones never hit the wire; the
	// executor still runs all Deletes before any Creates.
	if len(du.pendingDelRules)+len(du.pendingDelPipes) > 0 {
		del := DeviceScript{Device: du.dev}
		for _, req := range du.pendingDelRules {
			di, rendered := deleteItem(req)
			del.Items = append(del.Items, di)
			del.Rendered = append(del.Rendered, rendered)
		}
		for _, req := range du.pendingDelPipes {
			di, rendered := deleteItem(req)
			del.Items = append(del.Items, di)
			del.Rendered = append(del.Rendered, rendered)
		}
		plan.Deletes = append(plan.Deletes, del)
	}
	if len(creates.Items) > 0 {
		plan.Creates = append(plan.Creates, creates)
		if plan.createBinds == nil {
			plan.createBinds = make(map[core.DeviceID][]bindTarget)
		}
		plan.createBinds[du.dev] = binds
	}
}

// ---------------------------------------------------------------------------
// PlanStore / ApplyStore / Reconcile

// PlanStore computes the store-wide reconciliation diff incrementally:
// only intents whose goals changed since the last pass recompile, only
// devices whose observation generation moved re-observe, and devices
// with a valid, fully bound cache entry diff in O(pending) — or are
// skipped outright when nothing on them changed. A compile-input change
// (topology, module discovery, domain bindings) falls back to a full
// union rebuild, still rematching against cached observations.
// Planning sends no configuration commands. The plan is tied to the
// store state it was computed from; a newer PlanStore supersedes it.
func (n *NM) PlanStore() (*StorePlan, error) {
	n.planMu.Lock()
	defer n.planMu.Unlock()
	return n.planStoreLocked()
}

func (n *NM) planStoreLocked() (*StorePlan, error) {
	ss := n.ss

	// Drain the mutation marks and snapshot the generations.
	n.mu.Lock()
	curGen := n.compileGen
	full := ss.compiledGen != curGen
	var dirty []string
	if full {
		dirty = append([]string(nil), n.storeOrder...)
	} else {
		dirty = make([]string, 0, len(n.ssDirty))
		for name := range n.ssDirty {
			dirty = append(dirty, name)
		}
		sort.Slice(dirty, func(i, j int) bool { return n.storePos[dirty[i]] < n.storePos[dirty[j]] })
	}
	removed := make([]string, 0, len(n.ssRemoved))
	for name := range n.ssRemoved {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	intents := make(map[string]Intent, len(dirty))
	for _, name := range dirty {
		intents[name] = n.store[name]
	}
	n.ssDirty = make(map[string]bool)
	n.ssRemoved = make(map[string]bool)
	gens := make(map[core.DeviceID]uint64, len(n.obsGens))
	for d, g := range n.obsGens {
		gens[d] = g
	}
	n.mu.Unlock()

	if full {
		ss.reset()
		ss.compiledGen = curGen
	}
	plan := &StorePlan{records: make(map[string][]core.DeviceID)}
	plan.Stats.FullRebuild = full

	// Withdrawals first: drop the leaving intents' shares (queueing
	// deletes of their bound components) and stage record retirement.
	for _, name := range removed {
		ss.removeContribs(name)
		delete(ss.contribs, name)
		ss.removeView(name)
		ss.removedIntents[name] = true
		delete(ss.recordsDirty, name)
	}

	// Dirty intents: recompile and re-merge, in submission order.
	for i, name := range dirty {
		intent := intents[name]
		path, scripts, err := n.compileIntent(intent)
		if err != nil {
			n.requeueDirty(dirty[i:])
			return nil, fmt.Errorf("nm: reconcile: %w", err)
		}
		plan.Stats.Recompiled++
		devs := scriptDevices(scripts)
		ss.removeContribs(name)
		ss.contribs[name] = &intentContrib{path: path, devices: devs}
		ss.setView(IntentView{Intent: intent, Path: path, Devices: devs})
		if err := mergeScriptsCtx(ss, ss.unions, &ss.order, name, scripts); err != nil {
			delete(ss.contribs, name)
			ss.removeView(name)
			n.requeueDirty(dirty[i:])
			return nil, err
		}
		ss.recordsDirty[name] = true
		delete(ss.removedIntents, name)
	}

	// Device classification: what does each occupied device need?
	const (
		actSkip = iota
		actFull
		actDelta
	)
	action := make(map[core.DeviceID]int)
	var required []core.DeviceID
	occupied := make(map[core.DeviceID]bool)
	for _, dev := range ss.order {
		du := ss.unions[dev]
		if du == nil || du.live == 0 {
			continue
		}
		occupied[dev] = true
		ce := ss.cache[dev]
		switch {
		case ce == nil || ce.o == nil || ce.gen != gens[dev]:
			// An event moved the generation (or we never looked):
			// observe fresh, then rematch the whole union.
			required = append(required, dev)
			action[dev] = actFull
			plan.Stats.CacheMisses++
		case !ce.synced:
			// Cached observation is current but the union was rebuilt
			// (or restored): rematch against the cache, zero RPCs.
			action[dev] = actFull
			plan.Stats.CacheHits++
		case du.hasWork():
			action[dev] = actDelta
			plan.Stats.CacheHits++
		default:
			plan.InPlace += du.bound
			plan.Stats.CacheHits++
		}
	}

	// Stranded devices — occupied only by withdrawn or rerouted goals,
	// or flagged unreachable-with-stale-state — are always probed fresh:
	// the cache cannot vouch for a device we are about to stop watching.
	n.mu.Lock()
	strandedSet := make(map[core.DeviceID]bool)
	for dev, cnt := range ss.recordedCount {
		if cnt > 0 && !occupied[dev] {
			strandedSet[dev] = true
		}
	}
	for dev := range n.staleDevs {
		if !occupied[dev] {
			strandedSet[dev] = true
		}
	}
	n.mu.Unlock()
	stranded := sortedDevs(strandedSet)

	obs, unreachable, err := n.observe(
		append(append([]core.DeviceID(nil), required...), stranded...),
		optionalSet(stranded))
	if err != nil {
		return nil, err
	}
	plan.Unreachable = unreachable
	plan.Stats.Observed = len(obs)
	for _, dev := range required {
		ss.cache[dev] = &obsEntry{gen: gens[dev], o: obs[dev]}
	}

	// Prune stranded devices first (their whole observed state is
	// stale); unreachable ones are skipped and remembered.
	for _, dev := range stranded {
		o := obs[dev]
		if o == nil {
			continue
		}
		ss.cache[dev] = &obsEntry{gen: gens[dev], o: o}
		plan.pruned = append(plan.pruned, dev)
		if del := pruneAll(dev, o); len(del.Items) > 0 {
			plan.Deletes = append(plan.Deletes, del)
		}
		if du := ss.unions[dev]; du != nil {
			du.pendingDelRules, du.pendingDelPipes, du.newItems = nil, nil, nil
		}
	}

	for _, dev := range ss.order {
		du := ss.unions[dev]
		switch action[dev] {
		case actFull:
			ce := ss.cache[dev]
			du.diff(n, ce.o, plan)
			ce.synced = true
			plan.Stats.DiffedDevices++
		case actDelta:
			du.deltaDiff(n, ss.cache[dev].o, plan)
			plan.Stats.DiffedDevices++
		}
	}

	// The plan captures the views slice without copying (O(changed), not
	// O(store)); mutators clone before the next write. Elements are
	// effectively immutable once captured.
	plan.Views = ss.views
	ss.viewsShared = true
	plan.Shared = ss.shared
	for name := range ss.recordsDirty {
		if c := ss.contribs[name]; c != nil {
			plan.records[name] = c.devices
		}
	}
	for name := range ss.removedIntents {
		plan.removedIntents = append(plan.removedIntents, name)
	}
	sort.Strings(plan.removedIntents)
	ss.passSeq++
	plan.pass = ss.passSeq
	return plan, nil
}

// requeueDirty re-marks still-registered intents dirty after a failed
// pass, so the next one retries them.
func (n *NM) requeueDirty(names []string) {
	n.mu.Lock()
	for _, name := range names {
		if _, ok := n.store[name]; ok {
			n.ssDirty[name] = true
		}
	}
	n.mu.Unlock()
}

func sortedDevs(set map[core.DeviceID]bool) []core.DeviceID {
	out := make([]core.DeviceID, 0, len(set))
	for dev := range set {
		out = append(out, dev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// planDevices is the sorted union of devices a plan touches.
func planDevices(plan *StorePlan) []core.DeviceID {
	set := make(map[core.DeviceID]bool)
	for _, ds := range plan.Deletes {
		set[ds.Device] = true
	}
	for _, ds := range plan.Creates {
		set[ds.Device] = true
	}
	return sortedDevs(set)
}

func scriptDeviceSet(scripts []DeviceScript) map[core.DeviceID]bool {
	set := make(map[core.DeviceID]bool, len(scripts))
	for _, ds := range scripts {
		set[ds.Device] = true
	}
	return set
}

func (n *NM) invalidateDevice(dev core.DeviceID) {
	n.mu.Lock()
	n.obsGens[dev]++
	n.mu.Unlock()
}

func (n *NM) invalidateDevices(devs map[core.DeviceID]bool) {
	n.mu.Lock()
	for dev := range devs {
		n.obsGens[dev]++
	}
	n.mu.Unlock()
}

func (n *NM) clearExpected() {
	n.mu.Lock()
	n.expectNotify = make(map[string]int)
	n.mu.Unlock()
}

// ApplyStore executes a store plan — stale components deleted first,
// missing ones created — then binds the created components to the ids
// the devices reported, writing them through the observation cache so
// the next pass needs no re-observe. On success it commits the plan's
// occupancy-record delta and journals the apply (when persistence is
// attached). A plan superseded by a newer PlanStore is refused.
func (n *NM) ApplyStore(plan *StorePlan) error {
	n.planMu.Lock()
	defer n.planMu.Unlock()
	return n.applyStoreLocked(plan)
}

func (n *NM) applyStoreLocked(plan *StorePlan) error {
	ss := n.ss
	if plan.pass != ss.passSeq {
		return fmt.Errorf("nm: apply: plan superseded by a newer PlanStore (recompute and retry)")
	}
	if plan.applied {
		return fmt.Errorf("nm: apply: plan already applied")
	}
	plan.applied = true

	if !plan.Empty() {
		n.mu.Lock()
		jerr := n.journalLocked(datastore.OpApplyBegin, "", planDevices(plan), 0)
		if jerr == nil {
			// Our own pipe deletes make the lower module notify
			// pipe-deleted; those events must not invalidate the cache
			// this apply writes through.
			for _, ds := range plan.Deletes {
				for _, item := range ds.Items {
					if item.Delete != nil && item.Delete.Req.Kind == core.ComponentPipe {
						n.expectNotify[expectKey(ds.Device, "pipe-deleted", item.Delete.Req.ID)]++
					}
				}
			}
		}
		n.mu.Unlock()
		if jerr != nil {
			return jerr
		}
	}

	if len(plan.Deletes) > 0 {
		if _, err := n.executeCollect(plan.Deletes); err != nil {
			n.invalidateDevices(scriptDeviceSet(plan.Deletes))
			n.clearExpected()
			return fmt.Errorf("nm: reconcile (teardown phase): %w", err)
		}
		// Write the deletions through the observation cache and retire
		// the queued work they came from.
		for _, ds := range plan.Deletes {
			if ce := ss.cache[ds.Device]; ce != nil && ce.o != nil {
				ce.o.ensureIndex()
				for _, item := range ds.Items {
					if item.Delete == nil {
						continue
					}
					switch item.Delete.Req.Kind {
					case core.ComponentSwitchRule:
						ce.o.tombstoneRule(item.Delete.Req.ID)
					case core.ComponentPipe:
						id := core.PipeID(item.Delete.Req.ID)
						delete(ce.o.pipes, id)
						delete(ce.o.claimed, id)
					}
				}
			}
			if du := ss.unions[ds.Device]; du != nil {
				du.pendingDelRules, du.pendingDelPipes = nil, nil
			}
		}
	}

	if len(plan.Creates) > 0 {
		resps, err := n.executeCollect(plan.Creates)
		if err != nil {
			n.invalidateDevices(scriptDeviceSet(plan.Creates))
			n.clearExpected()
			return fmt.Errorf("nm: reconcile: %w", err)
		}
		for i, ds := range plan.Creates {
			n.bindCreatesLocked(ds, resps[i], plan.createBinds[ds.Device])
		}
	}

	// Dependency maintenance (§II-E): watch every provider component a
	// desired rule embeds handles from, so churn fires a Trigger.
	if err := n.installHandleTriggers(plan.handleDeps); err != nil {
		n.clearExpected()
		return fmt.Errorf("nm: reconcile (triggers): %w", err)
	}
	n.markStale(plan.pruned, plan.Unreachable)
	for _, dev := range plan.pruned {
		delete(ss.cache, dev)
		if du := ss.unions[dev]; du != nil && du.live == 0 {
			delete(ss.unions, dev)
			for i, d := range ss.order {
				if d == dev {
					ss.order = append(ss.order[:i], ss.order[i+1:]...)
					break
				}
			}
		}
	}

	// Commit the occupancy-record delta (withdrawn intents drop out
	// here, after their components were pruned).
	n.mu.Lock()
	for _, name := range plan.removedIntents {
		for dev := range n.intentDevs[name] {
			ss.recordedCount[dev]--
			if ss.recordedCount[dev] <= 0 {
				delete(ss.recordedCount, dev)
			}
		}
		delete(n.intentDevs, name)
		delete(ss.removedIntents, name)
	}
	for name, devs := range plan.records {
		old := n.intentDevs[name]
		set := make(map[core.DeviceID]bool, len(devs))
		for _, dev := range devs {
			set[dev] = true
			if !old[dev] {
				ss.recordedCount[dev]++
			}
		}
		for dev := range old {
			if !set[dev] {
				ss.recordedCount[dev]--
				if ss.recordedCount[dev] <= 0 {
					delete(ss.recordedCount, dev)
				}
			}
		}
		n.intentDevs[name] = set
		delete(ss.recordsDirty, name)
	}
	var jerr error
	if !plan.Empty() {
		jerr = n.journalLocked(datastore.OpCommit, "", nil, 0)
	}
	// Self-inflicted notifies usually land before the batch response;
	// any suppression still unclaimed is dropped so a later *real* event
	// is never swallowed (worst case: one spurious re-observe).
	n.expectNotify = make(map[string]int)
	j := n.journal
	n.mu.Unlock()
	if jerr != nil {
		return jerr
	}
	if j != nil && j.SinceSnapshot() >= autoSnapshotEvery {
		if err := n.checkpointLocked(); err != nil {
			return fmt.Errorf("nm: apply: checkpoint: %w", err)
		}
	}
	return nil
}

// bindCreates binds the union components a create batch realised to the
// identifiers the device reported, writing them through the observation
// cache — the plan's components are in place without a re-observe. Any
// shape mismatch, or a result the NM cannot take at face value (a
// pending rule, or one embedding an exported handle the NM never saw),
// falls back to invalidating the device so the next pass observes it
// fresh.
func (n *NM) bindCreatesLocked(ds DeviceScript, resp msg.CommandBatchResp, binds []bindTarget) {
	ss := n.ss
	ce := ss.cache[ds.Device]
	du := ss.unions[ds.Device]
	if ce == nil || ce.o == nil || du == nil ||
		len(binds) != len(ds.Items) || len(resp.Results) != len(ds.Items) {
		n.invalidateDevice(ds.Device)
		return
	}
	o := ce.o
	o.ensureIndex()
	invalidate := false
	for i := range ds.Items {
		b := binds[i]
		res := resp.Results[i]
		switch {
		case b.pipe != nil:
			p := b.pipe
			if p.gone || p.inPlace {
				continue
			}
			if res.PipeID != "" && res.PipeID != p.id {
				invalidate = true
				continue
			}
			p.inPlace = true
			du.bound++
			o.pipes[p.id] = obsPipe{
				upper: p.req.Upper, lower: p.req.Lower,
				upperPeer: p.req.UpperPeer, lowerPeer: p.req.LowerPeer,
				upperSeen: true,
			}
			o.claimed[p.id] = true
			o.usedIDs[p.id] = true
		case b.rule != nil:
			r := b.rule
			if r.gone || r.kept {
				continue
			}
			exports := r.toPipe != nil && r.toPipe.req.Lower != r.rule.Module &&
				n.handleExporter(r.toPipe.req.Lower)
			if exports || res.Pending || res.RuleID == "" {
				// The installed form embeds state the NM did not see (an
				// exported handle) or is not installed yet: observe it
				// for real next pass.
				invalidate = true
				continue
			}
			rr := r.resolved()
			r.kept, r.boundID = true, res.RuleID
			du.bound++
			o.addRule(obsRule{
				id: res.RuleID, module: rr.Module, from: rr.From, to: rr.To,
				match: classifierKey(rr.Match), via: rr.Via,
				matchResolved: r.matchResolved, viaResolved: r.viaResolved,
				used: true,
			})
		case b.other != nil:
			b.other.done = true
		}
	}
	keep := du.newItems[:0]
	for _, it := range du.newItems {
		if it.isGone() {
			continue
		}
		if (it.pipe != nil && it.pipe.inPlace) || (it.rule != nil && it.rule.kept) ||
			(it.other != nil && it.other.done) {
			continue
		}
		keep = append(keep, it)
	}
	du.newItems = keep
	if invalidate {
		n.invalidateDevice(ds.Device)
	}
}

// Reconcile moves the network to the union of all registered intents:
// PlanStore followed by ApplyStore under one lock, returning the plan
// that was executed. Reconcile treats the store as the complete desired
// state — components no registered intent wants are pruned, and
// components two goals share are configured once and survive until the
// last owner is withdrawn. Reconcile is idempotent: immediately
// reconciling again sends zero commands.
func (n *NM) Reconcile() (*StorePlan, error) {
	n.planMu.Lock()
	defer n.planMu.Unlock()
	plan, err := n.planStoreLocked()
	if err != nil {
		return nil, err
	}
	if err := n.applyStoreLocked(plan); err != nil {
		return plan, err
	}
	return plan, nil
}
