package nm

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/msg"
)

// eventNM wires a bare NM to a hub with one device endpoint the test
// uses to inject unsolicited traffic.
func eventNM(t *testing.T) (*NM, channel.Endpoint) {
	t.Helper()
	hub := channel.NewHub()
	n := New()
	n.AttachChannel(hub.Endpoint(msg.NMName))
	return n, hub.Endpoint("dev")
}

func sendNotify(t *testing.T, ep channel.Endpoint, detail string) {
	t.Helper()
	env := msg.MustNew(msg.TypeNotify, "dev", msg.NMName, 0, msg.Notify{
		Module: core.Ref(core.NameIPv4, "dev", "g"), Kind: "test", Detail: detail,
	})
	if err := ep.Send(env); err != nil {
		t.Fatal(err)
	}
}

func sendTrigger(t *testing.T, ep channel.Endpoint, component string) {
	t.Helper()
	env := msg.MustNew(msg.TypeTrigger, "dev", msg.NMName, 0, msg.Trigger{
		Module: core.Ref(core.NameMPLS, "dev", "o"), Component: component,
	})
	if err := ep.Send(env); err != nil {
		t.Fatal(err)
	}
}

func sendTopology(t *testing.T, ep channel.Endpoint, attached bool) {
	t.Helper()
	env := msg.MustNew(msg.TypeTopology, "dev", msg.NMName, 0, msg.Topology{
		Device: "dev",
		Ports:  []msg.PortReport{{Name: "eth0", Attached: attached, PeerDevice: "peer", PeerPort: "eth1"}},
	})
	if err := ep.Send(env); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeDeliversKinds pins the event feed: notifies, triggers
// and *changed* topology re-reports each surface as one typed event.
func TestSubscribeDeliversKinds(t *testing.T) {
	n, dev := eventNM(t)
	events, cancel := n.Subscribe(16)
	defer cancel()

	sendTopology(t, dev, true) // first report: baseline, no event
	sendNotify(t, dev, "hello")
	sendTrigger(t, dev, "pipe:P0")
	sendTopology(t, dev, true)  // identical: suppressed
	sendTopology(t, dev, false) // changed: one event

	want := []EventKind{EventNotify, EventTrigger, EventTopology}
	for i, k := range want {
		select {
		case ev := <-events:
			if ev.Kind != k {
				t.Fatalf("event %d: kind %s, want %s", i, ev.Kind, k)
			}
			if ev.Device != "dev" {
				t.Fatalf("event %d: device %s, want dev", i, ev.Device)
			}
			if ev.Seq == 0 {
				t.Fatalf("event %d: zero sequence number", i)
			}
		case <-time.After(time.Second):
			t.Fatalf("event %d (%s) never arrived", i, k)
		}
	}
	select {
	case ev := <-events:
		t.Fatalf("unexpected extra event: %+v (identical topology re-report must be suppressed)", ev)
	default:
	}
}

// TestSubscribeDropsWhenFull pins the non-blocking publish contract: a
// full subscriber buffer drops events and counts them, and the channel
// handler never blocks.
func TestSubscribeDropsWhenFull(t *testing.T) {
	n, dev := eventNM(t)
	events, cancel := n.Subscribe(1)
	defer cancel()

	for i := 0; i < 4; i++ {
		sendNotify(t, dev, fmt.Sprintf("burst-%d", i))
	}
	if got := len(events); got != 1 {
		t.Errorf("buffered events = %d, want 1 (buffer size)", got)
	}
	if got := n.EventsDropped(); got != 3 {
		t.Errorf("EventsDropped = %d, want 3", got)
	}
	// The retained tail is unaffected by subscriber overflow.
	if got := len(n.Notifies()); got != 4 {
		t.Errorf("Notifies tail = %d, want 4", got)
	}
}

// TestEventTailsBounded pins the fix for the unbounded NM.notifies /
// NM.triggers growth: the retained tails cap at eventRetain and keep
// the newest entries.
func TestEventTailsBounded(t *testing.T) {
	n, dev := eventNM(t)
	total := eventRetain + 57
	for i := 0; i < total; i++ {
		sendNotify(t, dev, fmt.Sprintf("n-%d", i))
	}
	notes := n.Notifies()
	if len(notes) != eventRetain {
		t.Fatalf("Notifies tail = %d, want %d", len(notes), eventRetain)
	}
	if got, want := notes[len(notes)-1].Detail, fmt.Sprintf("n-%d", total-1); got != want {
		t.Errorf("newest notify = %q, want %q", got, want)
	}
	if got, want := notes[0].Detail, fmt.Sprintf("n-%d", total-eventRetain); got != want {
		t.Errorf("oldest kept notify = %q, want %q", got, want)
	}
}

// TestSetOnTriggerConcurrent races handler swaps against trigger
// dispatch; under -race this pins the fix for the unsynchronised
// OnTrigger field (a handler could be swapped mid-dispatch).
func TestSetOnTriggerConcurrent(t *testing.T) {
	n, dev := eventNM(t)
	var calls sync.Map
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := i
			n.SetOnTrigger(func(tr msg.Trigger) { calls.Store(id, tr.Component) })
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			sendTrigger(t, dev, fmt.Sprintf("pipe:P%d", i))
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	n.SetOnTrigger(nil)
	if got := len(n.Triggers()); got != 500 {
		t.Errorf("trigger tail = %d, want 500", got)
	}
}

// TestTopologyEqual pins the suppression predicate.
func TestTopologyEqual(t *testing.T) {
	a := msg.Topology{Device: "d", Ports: []msg.PortReport{{Name: "eth0", Attached: true}}}
	b := msg.Topology{Device: "d", Ports: []msg.PortReport{{Name: "eth0", Attached: true}}}
	if !topologyEqual(a, b) {
		t.Error("identical topologies compare unequal")
	}
	b.Ports[0].Attached = false
	if topologyEqual(a, b) {
		t.Error("changed attachment compares equal")
	}
	b = msg.Topology{Device: "d"}
	if topologyEqual(a, b) {
		t.Error("different port counts compare equal")
	}
}
