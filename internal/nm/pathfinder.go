package nm

import (
	"fmt"
	"sort"
	"strings"

	"conman/internal/core"
)

// PeerGroup records every module that touched one protocol header along a
// path: the pusher first, processors in order, the popper last. The NM
// derives pipe peer relationships from these groups (§III-C.1: "This also
// allows the NM to determine modules that are peers of each other").
type PeerGroup struct {
	Protocol core.ModuleName
	Domain   string
	Members  []int // hop indices, in path order
	External bool  // header originated outside the managed domain
	Closed   bool  // popped within the path
}

// Hop is one module traversal in a found path.
type Hop struct {
	Node *Node
	Mode core.SwitchMode
	// EntryVia/ExitVia are the co-located neighbour modules for up/down
	// entries and exits (nil for physical).
	EntryVia, ExitVia *Node
	// EntryPhys/ExitPhys are set for physical entries and exits.
	EntryPhys, ExitPhys core.PipeID
	// Group is the index of the PeerGroup this hop touched.
	Group int
}

// Path is one protocol-sane module-level path.
type Path struct {
	Hops   []Hop
	Groups []PeerGroup
}

// Modules returns the path as the paper prints it: the module-id sequence
// ("a, g, l, h, b, c, i, d, e, j, n, k, f").
func (p *Path) Modules() string {
	ids := make([]string, len(p.Hops))
	for i, h := range p.Hops {
		ids[i] = string(h.Node.Ref.Module)
	}
	return strings.Join(ids, ", ")
}

// Pipes counts the up-down pipes the path would instantiate (the paper's
// selection metric: "minimizes the total number of pipes instantiated in
// the routers").
func (p *Path) Pipes() int {
	n := 0
	for _, h := range p.Hops {
		if h.ExitVia != nil {
			n++
		}
	}
	return n
}

// uses reports whether any hop's module has the given name.
func (p *Path) uses(name core.ModuleName) bool {
	for _, h := range p.Hops {
		if h.Node.Ref.Name == name {
			return true
		}
	}
	return false
}

// Describe classifies the path in the paper's §III-C.1 vocabulary, e.g.
// "MPLS", "GRE-IP tunnel", "IP-IP over MPLS (A-B)".
func (p *Path) Describe() string {
	var tunnel string
	hasGRE := p.uses(core.NameGRE)
	ipGroups := 0
	for _, g := range p.Groups {
		if g.Protocol == core.NameIPv4 && !g.External {
			ipGroups++
		}
	}
	switch {
	case hasGRE:
		tunnel = "GRE-IP tunnel"
	case ipGroups > 0:
		tunnel = "IP-IP tunnel"
	}
	var mplsDevs []string
	seen := map[string]bool{}
	for _, h := range p.Hops {
		if h.Node.Ref.Name == core.NameMPLS && !seen[string(h.Node.Ref.Device)] {
			seen[string(h.Node.Ref.Device)] = true
			mplsDevs = append(mplsDevs, string(h.Node.Ref.Device))
		}
	}
	if p.uses(core.NameVLAN) {
		// Distinguish the canonical configuration (one VLAN spanning
		// every switch, Fig 9) from variants where a transit switch
		// bridges tagged frames with [phy => phy] only, or where the
		// tag is popped and re-pushed mid-path (segmented tunnels).
		withVLAN := map[core.DeviceID]bool{}
		all := map[core.DeviceID]bool{}
		for _, h := range p.Hops {
			all[h.Node.Ref.Device] = true
			if h.Node.Ref.Name == core.NameVLAN {
				withVLAN[h.Node.Ref.Device] = true
			}
		}
		vlanGroups := 0
		for _, g := range p.Groups {
			if g.Protocol == core.NameVLAN {
				vlanGroups++
			}
		}
		switch {
		case len(withVLAN) < len(all):
			return "VLAN tunnel (transparent core)"
		case vlanGroups > 1:
			return "VLAN tunnel (segmented)"
		default:
			return "VLAN tunnel"
		}
	}
	switch {
	case len(mplsDevs) == 0 && tunnel == "":
		return "plain"
	case len(mplsDevs) == 0:
		return tunnel
	case tunnel == "":
		return "MPLS"
	default:
		span := fmt.Sprintf("%s-%s", mplsDevs[0], mplsDevs[len(mplsDevs)-1])
		all := true
		for _, h := range p.Hops {
			if h.Node.Ref.Name == core.NameIPv4 && !seen[string(h.Node.Ref.Device)] {
				all = false
			}
		}
		if all {
			return fmt.Sprintf("%s over MPLS", tunnel)
		}
		return fmt.Sprintf("%s over MPLS (%s)", tunnel, span)
	}
}

// PruneStats counts why the search abandoned branches (Fig 6's
// examples), plus how many states it expanded — the cost metric the
// exhaustive-vs-best-first benchmark compares.
type PruneStats struct {
	NameMismatch   int // header/protocol mismatch ("protocol sanity")
	DomainMismatch int // peers in different address domains (Fig 6b)
	Visited        int // cycle avoidance
	DeadEnd        int
	StackUnderflow int
	ExternalLeak   int // customer L2 header handled off the endpoints
	StackCap       int // encapsulation deeper than MaxStack (best-first)
	PreferMismatch int // prefixes that can no longer match Prefer (best-first)
	Expanded       int // module entries explored (DFS visits / queue pops)
	// PreferUnknown reports that FindSpec.Prefer was set to a string the
	// finder does not recognise as a Describe() flavour family. The
	// search still runs — goal-direction is disabled rather than risking
	// hiding the preferred path — but no built-in flavour can ever match
	// such a string, so a nil result usually means a typo (e.g.
	// "GRE tunnel" instead of "GRE-IP tunnel") rather than a missing
	// path. Callers surface it as a warning; see PreferRecognized.
	PreferUnknown bool
}

// DefaultMaxPaths is the enumeration cap applied when FindSpec.MaxPaths
// is zero. For the exhaustive enumerator it bounds the materialised
// variant space (on long L2 chains that space is exponential, and only
// the canonical-first mode ordering keeps the canonical path inside the
// cap — selection over the truncated set is unreliable). The best-first
// finder does not enumerate, so for it the cap is a safety valve only:
// the number of completed-but-unpreferred paths it will pop before
// giving up.
const DefaultMaxPaths = 1000

// FindSpec describes what the path finder should connect.
type FindSpec struct {
	// From/To are the endpoint (customer-facing) ETH modules.
	From, To core.ModuleRef
	// TrafficDomain is the address domain of the customer traffic the
	// path must carry (e.g. "C1").
	TrafficDomain string
	// FromPipe/ToPipe optionally pin the external physical pipes the
	// path must enter and leave through ("Phy-<port>"). Zero values keep
	// the default: enter on the From module's first external pipe, leave
	// on any external pipe of To. Pinning matters on multi-tenant edges
	// where one module fronts several customer ports.
	FromPipe, ToPipe core.PipeID
	// MaxPaths bounds the search (0 = DefaultMaxPaths): the enumeration
	// cap for the exhaustive finder, the accepted-path safety valve for
	// the best-first finder.
	MaxPaths int
	// Prefer pins a path flavour by its Describe() string ("GRE-IP
	// tunnel", "MPLS", "VLAN tunnel") for FindBest. Empty selects by the
	// paper's metric: fewest pipes, fast forwarding on ties (§III-C.1).
	Prefer string
	// Exhaustive makes FindBest fall back to the legacy
	// enumerate-then-filter engine (FindPaths + selection) instead of
	// the goal-directed best-first search — kept for A/B testing and the
	// equivalence suite.
	Exhaustive bool
	// MaxDepth bounds path length in hops. Zero derives the bound from
	// the graph: twice the node count, the upper limit the per-module
	// visit rule already implies, so large linear topologies (n=128 and
	// beyond) enumerate without an artificial ceiling.
	MaxDepth int
	// MaxStack bounds how many protocol headers a partial path may have
	// open at once in the best-first search (0 = DefaultMaxStack). Real
	// encapsulation stacks are shallow — the paper's deepest,
	// GRE-over-MPLS, opens five — but an L2 chain admits unbounded
	// re-tagging (push a fresh VLAN header at every switch), and those
	// never-selectable deep variants are exactly what makes the search
	// space quadratic instead of linear. The exhaustive enumerator is
	// deliberately left unbounded for parity with the paper's Fig 6
	// pruning rules.
	MaxStack int
	// DisableDomainPruning turns off the Fig 6(b) rule (for the ablation
	// benchmark).
	DisableDomainPruning bool
	// DisableSanityPruning turns off header-name matching (ablation;
	// paths found this way are not usable, only counted).
	DisableSanityPruning bool
}

type finder struct {
	g        *Graph
	spec     FindSpec
	stats    PruneStats
	visited  map[string]int
	hops     []Hop
	groups   []PeerGroup
	stack    []int // group indices, top first
	paths    []*Path
	max      int
	maxDepth int
}

// visitLimit implements the paper's cycle avoidance: each module appears
// at most once in a path. L2-switch ETH modules are the one exception —
// the paper's own Fig 9b script sends the packet through module a twice
// (customer port in, VLAN tag, trunk port out) — so modules advertising
// [phy => down] may be traversed twice.
func visitLimit(n *Node) int {
	if n.Abs.Switch.Supports(core.SwPhyDown) {
		return 2
	}
	return 1
}

// FindPaths enumerates all protocol-sane paths from spec.From's external
// physical pipe to spec.To's, applying the paper's two pruning rules:
// encapsulation sanity and address-domain compatibility (§III-C.1).
func (g *Graph) FindPaths(spec FindSpec) ([]*Path, PruneStats, error) {
	from, entryPipe, err := g.resolveEndpoints(spec)
	if err != nil {
		return nil, PruneStats{}, err
	}
	f := &finder{
		g:        g,
		spec:     spec,
		visited:  make(map[string]int),
		max:      spec.MaxPaths,
		maxDepth: spec.MaxDepth,
	}
	if f.max == 0 {
		f.max = DefaultMaxPaths
	}
	if f.maxDepth == 0 {
		f.maxDepth = 2 * len(g.nodes)
	}
	// The customer frame arrives with an Ethernet header (pushed by the
	// customer's equipment) around an IP packet in the customer's
	// address domain.
	f.groups = []PeerGroup{
		{Protocol: core.NameETH, External: true},
		{Protocol: core.NameIPv4, Domain: spec.TrafficDomain, External: true},
	}
	f.stack = []int{0, 1}
	f.visit(from, core.EndPhy, nil, entryPipe)
	// Deterministic result order: by length, module sequence, then mode
	// sequence (paths can share modules but differ in switching modes).
	sort.Slice(f.paths, func(i, j int) bool {
		a, b := f.paths[i], f.paths[j]
		if len(a.Hops) != len(b.Hops) {
			return len(a.Hops) < len(b.Hops)
		}
		if am, bm := a.Modules(), b.Modules(); am != bm {
			return am < bm
		}
		return modeString(a) < modeString(b)
	})
	return f.paths, f.stats, nil
}

// resolveEndpoints validates the spec's endpoint modules and resolves
// the external physical pipe the search must enter on.
func (g *Graph) resolveEndpoints(spec FindSpec) (*Node, core.PipeID, error) {
	from, ok := g.Node(spec.From)
	if !ok {
		return nil, "", fmt.Errorf("nm: unknown module %s", spec.From)
	}
	if _, ok := g.Node(spec.To); !ok {
		return nil, "", fmt.Errorf("nm: unknown module %s", spec.To)
	}
	var entryPipe core.PipeID
	if spec.FromPipe != "" {
		// Pinned entry port: direct lookup instead of scanning an edge
		// switch's customer ports.
		if pa, ok := g.PhysAt(from, spec.FromPipe); ok && pa.External {
			entryPipe = pa.Pipe
		}
	} else {
		for _, pa := range g.Phys(from) {
			if pa.External {
				entryPipe = pa.Pipe
				break
			}
		}
	}
	if entryPipe == "" {
		if spec.FromPipe != "" {
			return nil, "", fmt.Errorf("nm: %s has no external physical pipe %s", spec.From, spec.FromPipe)
		}
		return nil, "", fmt.Errorf("nm: %s has no external physical pipe", spec.From)
	}
	return from, entryPipe, nil
}

func modeString(p *Path) string {
	var b strings.Builder
	for _, h := range p.Hops {
		b.WriteString(h.Mode.String())
	}
	return b.String()
}

func canon(n core.ModuleName) core.ModuleName {
	if n == "IP" {
		return core.NameIPv4
	}
	return n
}

// modeRank orders mode exploration so the canonical configuration is
// enumerated first when the path cap truncates an exponential search
// space (a long L2 chain where every transit switch could also bridge
// transparently or pop-and-repush the tag): header processing dives
// deepest, pushes come next, pops unwind, and phy exits — which leave
// the device without touching its protocol modules — are tried last.
// Declared order breaks ties, so small-topology enumerations are
// unchanged.
func modeRank(m core.SwitchMode) int {
	if m.To == core.EndPhy {
		return 3
	}
	switch m.Effect() {
	case core.EffectProcess:
		return 0
	case core.EffectPush:
		return 1
	default:
		return 2
	}
}

// visit explores from node, entered at the given end.
func (f *finder) visit(node *Node, entry core.PipeEnd, entryVia *Node, entryPhys core.PipeID) {
	if len(f.paths) >= f.max || len(f.hops) >= f.maxDepth {
		return
	}
	key := node.Ref.String()
	if f.visited[key] >= visitLimit(node) {
		f.stats.Visited++
		return
	}
	f.visited[key]++
	defer func() { f.visited[key]-- }()
	f.stats.Expanded++

	var modes []core.SwitchMode
	for _, mode := range node.Abs.Switch.Modes {
		if mode.From == entry {
			modes = append(modes, mode)
		}
	}
	sort.SliceStable(modes, func(i, j int) bool { return modeRank(modes[i]) < modeRank(modes[j]) })
	for _, mode := range modes {
		f.tryMode(node, mode, entryVia, entryPhys)
	}
}

func (f *finder) tryMode(node *Node, mode core.SwitchMode, entryVia *Node, entryPhys core.PipeID) {
	effect := mode.Effect()
	var groupIdx int

	// Apply the header effect, with undo information.
	switch effect {
	case core.EffectPop, core.EffectProcess:
		if len(f.stack) == 0 {
			f.stats.StackUnderflow++
			return
		}
		groupIdx = f.stack[0]
		grp := &f.groups[groupIdx]
		if !f.spec.DisableSanityPruning && canon(grp.Protocol) != canon(node.Ref.Name) {
			f.stats.NameMismatch++
			return
		}
		// The customer's own Ethernet framing may only be terminated at
		// the goal's endpoint modules: a transit device transparently
		// bridging customer frames through the shared core would defeat
		// the isolation the goal asks for.
		if grp.External && canon(grp.Protocol) == core.NameETH &&
			node.Ref != f.spec.From && node.Ref != f.spec.To {
			f.stats.ExternalLeak++
			return
		}
		// Address-domain rule (Fig 6b): IP modules handling a header
		// must share its domain.
		if !f.spec.DisableDomainPruning &&
			canon(node.Ref.Name) == core.NameIPv4 &&
			grp.Domain != "" && node.Domain != "" && grp.Domain != node.Domain {
			f.stats.DomainMismatch++
			return
		}
		grp.Members = append(grp.Members, len(f.hops))
		if effect == core.EffectPop {
			grp.Closed = true
			f.stack = f.stack[1:]
		}
	case core.EffectPush:
		groupIdx = len(f.groups)
		f.groups = append(f.groups, PeerGroup{
			Protocol: node.Ref.Name,
			Domain:   node.Domain,
			Members:  []int{len(f.hops)},
		})
		f.stack = append([]int{groupIdx}, f.stack...)
	}

	hop := Hop{
		Node: node, Mode: mode,
		EntryVia: entryVia, EntryPhys: entryPhys,
		Group: groupIdx,
	}
	f.hops = append(f.hops, hop)

	f.explore(node, mode)

	// Undo.
	f.hops = f.hops[:len(f.hops)-1]
	switch effect {
	case core.EffectPop:
		grp := &f.groups[groupIdx]
		grp.Members = grp.Members[:len(grp.Members)-1]
		grp.Closed = false
		f.stack = append([]int{groupIdx}, f.stack...)
	case core.EffectProcess:
		grp := &f.groups[groupIdx]
		grp.Members = grp.Members[:len(grp.Members)-1]
	case core.EffectPush:
		f.groups = f.groups[:len(f.groups)-1]
		f.stack = f.stack[1:]
	}
}

func (f *finder) explore(node *Node, mode core.SwitchMode) {
	hopIdx := len(f.hops) - 1
	switch mode.To {
	case core.EndUp:
		ups := f.g.Above(node)
		if len(ups) == 0 {
			f.stats.DeadEnd++
		}
		for _, up := range ups {
			f.hops[hopIdx].ExitVia = up
			f.visit(up, core.EndDown, node, "")
		}
		f.hops[hopIdx].ExitVia = nil
	case core.EndDown:
		downs := f.g.Below(node)
		if len(downs) == 0 {
			f.stats.DeadEnd++
		}
		for _, down := range downs {
			f.hops[hopIdx].ExitVia = down
			f.visit(down, core.EndUp, node, "")
		}
		f.hops[hopIdx].ExitVia = nil
	case core.EndPhy:
		for _, pa := range f.g.Phys(node) {
			if pa.Pipe == f.hops[hopIdx].EntryPhys {
				continue // never exit the pipe we entered on
			}
			f.hops[hopIdx].ExitPhys = pa.Pipe
			if pa.External {
				f.maybeAccept(node)
			} else if pa.Peer != nil {
				f.visit(pa.Peer, core.EndPhy, nil, pa.PeerPipe)
			}
		}
		f.hops[hopIdx].ExitPhys = ""
	}
}

// maybeAccept records a completed path if we are exiting the goal
// module's external pipe with a clean header stack: the freshly pushed
// Ethernet header on top of the customer's original IP packet — every
// header pushed inside the network has been popped.
func (f *finder) maybeAccept(node *Node) {
	if node.Ref != f.spec.To {
		return
	}
	if f.spec.ToPipe != "" && f.hops[len(f.hops)-1].ExitPhys != f.spec.ToPipe {
		return
	}
	if len(f.stack) != 2 {
		return
	}
	top, under := &f.groups[f.stack[0]], &f.groups[f.stack[1]]
	if canon(top.Protocol) != core.NameETH || top.External {
		return
	}
	if !under.External {
		return
	}
	// Deep-copy the path.
	p := &Path{
		Hops:   append([]Hop(nil), f.hops...),
		Groups: make([]PeerGroup, len(f.groups)),
	}
	for i, g := range f.groups {
		p.Groups[i] = PeerGroup{
			Protocol: g.Protocol, Domain: g.Domain,
			Members:  append([]int(nil), g.Members...),
			External: g.External, Closed: g.Closed,
		}
	}
	f.paths = append(f.paths, p)
}

// SelectPath implements the paper's selector: minimise instantiated
// pipes, preferring modules that advertise fast forwarding (the MPLS
// preference of §III-C.1) on ties.
func SelectPath(paths []*Path) *Path {
	if len(paths) == 0 {
		return nil
	}
	best := paths[0]
	bestFast := pathFast(best)
	for _, p := range paths[1:] {
		switch {
		case p.Pipes() < best.Pipes():
			best, bestFast = p, pathFast(p)
		case p.Pipes() == best.Pipes() && pathFast(p) && !bestFast:
			best, bestFast = p, true
		}
	}
	return best
}

func pathFast(p *Path) bool {
	for _, h := range p.Hops {
		if h.Node.Abs.Attributes["forwarding"] == "fast" {
			return true
		}
	}
	return false
}
