package nm

import (
	"testing"

	"conman/internal/core"
)

// TestFindBestMatchesSelectPath pins the engines against each other on
// the two-router graph: the best-first result must be the exact path
// the exhaustive enumerate-then-select pipeline picks, and the
// Exhaustive knob must route FindBest through the legacy engine with
// the same outcome.
func TestFindBestMatchesSelectPath(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	spec := FindSpec{
		From:          core.Ref(core.NameETH, "R1", "a"),
		To:            core.Ref(core.NameETH, "R2", "f"),
		TrafficDomain: "C1",
	}
	paths, _, err := g.FindPaths(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := SelectPath(paths)
	if want == nil {
		t.Fatal("enumerator found no path")
	}
	best, stats, err := g.FindBest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil {
		t.Fatal("best-first found no path")
	}
	if best.Modules() != want.Modules() || modeString(best) != modeString(want) {
		t.Fatalf("best-first picked %q [%s], enumerator %q [%s]",
			best.Modules(), modeString(best), want.Modules(), modeString(want))
	}
	if stats.Expanded == 0 {
		t.Error("best-first reported zero expanded states")
	}

	exh := spec
	exh.Exhaustive = true
	legacy, _, err := g.FindBest(exh)
	if err != nil {
		t.Fatal(err)
	}
	if legacy == nil || legacy.Modules() != want.Modules() {
		t.Fatalf("Exhaustive knob picked %v, want %q", legacy, want.Modules())
	}
}

// TestFindBestPrefer exercises flavour pinning: each Describe() string
// present in the enumeration must be reachable through Prefer, and an
// unknown flavour must come back nil without error.
func TestFindBestPrefer(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	spec := FindSpec{
		From:          core.Ref(core.NameETH, "R1", "a"),
		To:            core.Ref(core.NameETH, "R2", "f"),
		TrafficDomain: "C1",
	}
	paths, _, err := g.FindPaths(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for _, p := range paths {
		sp := spec
		sp.Prefer = p.Describe()
		got, _, err := g.FindBest(sp)
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatalf("Prefer %q found no path", sp.Prefer)
		}
		if got.Describe() != sp.Prefer {
			t.Fatalf("Prefer %q returned a %q path", sp.Prefer, got.Describe())
		}
	}
	sp := spec
	sp.Prefer = "carrier pigeon"
	if got, _, err := g.FindBest(sp); err != nil || got != nil {
		t.Fatalf("unknown flavour: got %v, %v; want nil, nil", got, err)
	}
}

// TestFindBestEndpointErrors mirrors the enumerator's endpoint
// validation.
func TestFindBestEndpointErrors(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.FindBest(FindSpec{
		From: core.Ref(core.NameETH, "R9", "z"),
		To:   core.Ref(core.NameETH, "R2", "f"),
	}); err == nil {
		t.Error("unknown From module did not error")
	}
	if _, _, err := g.FindBest(FindSpec{
		From: core.Ref(core.NameETH, "R1", "b"), // internal, no external pipe
		To:   core.Ref(core.NameETH, "R2", "f"),
	}); err == nil {
		t.Error("From module without an external pipe did not error")
	}
}

// TestFindBestMaxStack pins the encapsulation bound: a MaxStack too
// small for the only available path must yield no path (counted in
// StackCap), not a crash or a deeper-than-allowed path.
func TestFindBestMaxStack(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	spec := FindSpec{
		From:          core.Ref(core.NameETH, "R1", "a"),
		To:            core.Ref(core.NameETH, "R2", "f"),
		TrafficDomain: "C1",
		// Even the plain path must re-push an Ethernet header over the
		// customer's IP packet; a bound of one forbids every push.
		MaxStack: 1,
	}
	got, stats, err := g.FindBest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("MaxStack=1 still found %q", got.Modules())
	}
	if stats.StackCap == 0 {
		t.Error("StackCap prune counter never fired")
	}
}

// TestPreferUnknownFlag pins the satellite fix for exotic preference
// strings: Prefer only understands the Describe() vocabulary, and a
// string outside it used to fall back to undirected search silently.
// Both engines must now raise PruneStats.PreferUnknown so callers can
// tell a typo ("GRE tunnel") from a genuinely missing path, while known
// flavours and unpinned searches leave the flag clear.
func TestPreferUnknownFlag(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	spec := FindSpec{
		From:          core.Ref(core.NameETH, "R1", "a"),
		To:            core.Ref(core.NameETH, "R2", "f"),
		TrafficDomain: "C1",
	}

	for _, known := range []string{
		"plain", "MPLS", "GRE-IP tunnel", "GRE-IP tunnel over MPLS (A-B)",
		"IP-IP tunnel", "VLAN tunnel", "VLAN tunnel (segmented)",
		"VLAN tunnel (transparent core)",
	} {
		if !PreferRecognized(known) {
			t.Errorf("PreferRecognized(%q) = false, want true", known)
		}
	}
	for _, exotic := range []string{"GRE tunnel", "carrier pigeon", "mpls"} {
		if PreferRecognized(exotic) {
			t.Errorf("PreferRecognized(%q) = true, want false", exotic)
		}
	}

	// Unpinned search: flag stays clear.
	if _, stats, err := g.FindBest(spec); err != nil || stats.PreferUnknown {
		t.Fatalf("unpinned search: PreferUnknown=%v err=%v, want false, nil", stats.PreferUnknown, err)
	}

	// A recognised flavour: flag stays clear.
	sp := spec
	sp.Prefer = "plain"
	if _, stats, err := g.FindBest(sp); err != nil || stats.PreferUnknown {
		t.Fatalf("recognised flavour: PreferUnknown=%v err=%v, want false, nil", stats.PreferUnknown, err)
	}

	// An exotic string (a plausible typo of "GRE-IP tunnel"): nil path,
	// flag raised, and the search still ran — undirected, not aborted.
	sp.Prefer = "GRE tunnel"
	got, stats, err := g.FindBest(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("exotic flavour returned a %q path", got.Describe())
	}
	if !stats.PreferUnknown {
		t.Error("exotic flavour did not raise PreferUnknown")
	}
	if stats.Expanded == 0 {
		t.Error("exotic flavour expanded no states: search should run undirected")
	}

	// The legacy engine raises it too.
	sp.Exhaustive = true
	if _, stats, err := g.FindBest(sp); err != nil || !stats.PreferUnknown {
		t.Fatalf("exhaustive engine: PreferUnknown=%v err=%v, want true, nil", stats.PreferUnknown, err)
	}
}
