package nm

import (
	"testing"

	"conman/internal/core"
)

// TestFindBestMatchesSelectPath pins the engines against each other on
// the two-router graph: the best-first result must be the exact path
// the exhaustive enumerate-then-select pipeline picks, and the
// Exhaustive knob must route FindBest through the legacy engine with
// the same outcome.
func TestFindBestMatchesSelectPath(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	spec := FindSpec{
		From:          core.Ref(core.NameETH, "R1", "a"),
		To:            core.Ref(core.NameETH, "R2", "f"),
		TrafficDomain: "C1",
	}
	paths, _, err := g.FindPaths(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := SelectPath(paths)
	if want == nil {
		t.Fatal("enumerator found no path")
	}
	best, stats, err := g.FindBest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil {
		t.Fatal("best-first found no path")
	}
	if best.Modules() != want.Modules() || modeString(best) != modeString(want) {
		t.Fatalf("best-first picked %q [%s], enumerator %q [%s]",
			best.Modules(), modeString(best), want.Modules(), modeString(want))
	}
	if stats.Expanded == 0 {
		t.Error("best-first reported zero expanded states")
	}

	exh := spec
	exh.Exhaustive = true
	legacy, _, err := g.FindBest(exh)
	if err != nil {
		t.Fatal(err)
	}
	if legacy == nil || legacy.Modules() != want.Modules() {
		t.Fatalf("Exhaustive knob picked %v, want %q", legacy, want.Modules())
	}
}

// TestFindBestPrefer exercises flavour pinning: each Describe() string
// present in the enumeration must be reachable through Prefer, and an
// unknown flavour must come back nil without error.
func TestFindBestPrefer(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	spec := FindSpec{
		From:          core.Ref(core.NameETH, "R1", "a"),
		To:            core.Ref(core.NameETH, "R2", "f"),
		TrafficDomain: "C1",
	}
	paths, _, err := g.FindPaths(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for _, p := range paths {
		sp := spec
		sp.Prefer = p.Describe()
		got, _, err := g.FindBest(sp)
		if err != nil {
			t.Fatal(err)
		}
		if got == nil {
			t.Fatalf("Prefer %q found no path", sp.Prefer)
		}
		if got.Describe() != sp.Prefer {
			t.Fatalf("Prefer %q returned a %q path", sp.Prefer, got.Describe())
		}
	}
	sp := spec
	sp.Prefer = "carrier pigeon"
	if got, _, err := g.FindBest(sp); err != nil || got != nil {
		t.Fatalf("unknown flavour: got %v, %v; want nil, nil", got, err)
	}
}

// TestFindBestEndpointErrors mirrors the enumerator's endpoint
// validation.
func TestFindBestEndpointErrors(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.FindBest(FindSpec{
		From: core.Ref(core.NameETH, "R9", "z"),
		To:   core.Ref(core.NameETH, "R2", "f"),
	}); err == nil {
		t.Error("unknown From module did not error")
	}
	if _, _, err := g.FindBest(FindSpec{
		From: core.Ref(core.NameETH, "R1", "b"), // internal, no external pipe
		To:   core.Ref(core.NameETH, "R2", "f"),
	}); err == nil {
		t.Error("From module without an external pipe did not error")
	}
}

// TestFindBestMaxStack pins the encapsulation bound: a MaxStack too
// small for the only available path must yield no path (counted in
// StackCap), not a crash or a deeper-than-allowed path.
func TestFindBestMaxStack(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	spec := FindSpec{
		From:          core.Ref(core.NameETH, "R1", "a"),
		To:            core.Ref(core.NameETH, "R2", "f"),
		TrafficDomain: "C1",
		// Even the plain path must re-push an Ethernet header over the
		// customer's IP packet; a bound of one forbids every push.
		MaxStack: 1,
	}
	got, stats, err := g.FindBest(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("MaxStack=1 still found %q", got.Modules())
	}
	if stats.StackCap == 0 {
		t.Error("StackCap prune counter never fired")
	}
}
