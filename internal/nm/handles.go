package nm

import (
	"sort"

	"conman/internal/core"
)

// Dependency maintenance for embedded low-level handles (§II-E). Some
// modules export low-level fields through listFieldsAndValues that a
// module above embeds verbatim into its own configuration — the MPLS
// module's NHLFE key, consumed by the IP module's classified-ingress
// route. The embedded copy is invisible to the abstract diff: if the
// provider recreates the component (pipe churn regenerates the key), a
// kept consumer rule silently points at state that no longer exists.
//
// The NM closes the loop in two places:
//   - at diff time, a would-be-kept rule steering into a pipe whose
//     lower module advertises HandleFields is probed with listFields and
//     replaced when the recorded handle (HandleResolved, reported via
//     showActual) no longer matches;
//   - at apply time, an installTrigger is registered on each such
//     provider component, so the provider's fieldsChanged fires a
//     Trigger the reconciliation daemon turns into a dirty mark for the
//     dependent intents.

// handleDep is one (provider module, component) pair some desired switch
// rule embeds resolved fields from.
type handleDep struct {
	provider  core.ModuleRef
	component string
}

// handleExporter reports whether the module advertises exported handle
// fields in its abstraction (Table II's listFieldsAndValues contract).
func (n *NM) handleExporter(ref core.ModuleRef) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := n.devices[ref.Device]
	if d == nil {
		return false
	}
	for _, abs := range d.Modules {
		if abs.Ref == ref {
			return len(abs.HandleFields) > 0
		}
	}
	return false
}

// handleFresh probes the provider's current fields for the component and
// reports whether a consumer rule installed with the recorded handle is
// still valid. An unreachable provider or empty current fields count as
// stale: the consumer must be reinstalled once the provider settles.
func (n *NM) handleFresh(provider core.ModuleRef, pipe core.PipeID, recorded string) bool {
	fields, err := n.ListFields(provider, "pipe:"+string(pipe))
	if err != nil {
		return false
	}
	return core.CanonicalHandle(fields) == recorded
}

// installHandleTriggers registers a dependency-maintenance trigger for
// each collected handle dependency (deduplicated; ensureTrigger keeps
// repeated applies quiet).
func (n *NM) installHandleTriggers(deps []handleDep) error {
	sort.Slice(deps, func(i, j int) bool {
		if deps[i].provider.String() != deps[j].provider.String() {
			return deps[i].provider.String() < deps[j].provider.String()
		}
		return deps[i].component < deps[j].component
	})
	var last handleDep
	for i, d := range deps {
		if i > 0 && d == last {
			continue
		}
		last = d
		if err := n.ensureTrigger(d.provider, d.component); err != nil {
			return err
		}
	}
	return nil
}

// markStale updates the NM's memory of devices whose state could not be
// observed (killed or partitioned): pruned devices were reached and
// cleaned this pass, unreachable ones are remembered so later plans keep
// trying to prune them when they come back.
func (n *NM) markStale(pruned, unreachable []core.DeviceID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, d := range pruned {
		delete(n.staleDevs, d)
	}
	for _, d := range unreachable {
		n.staleDevs[d] = true
	}
}
