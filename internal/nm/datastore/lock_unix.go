//go:build unix

package datastore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// DirLock is an exclusive advisory lock on a state directory. The
// daemon and the offline store admin commands both take it before
// opening a FileBackend, so two processes never write the same journal
// concurrently (two writers would hand out independent, colliding
// sequence numbers, and a live daemon would never see an offline
// rollback).
type DirLock struct {
	f *os.File
}

// LockDir takes the exclusive lock on dir (creating the directory if
// needed), failing fast with a descriptive error if another process
// holds it. The lock is advisory — every writer of the directory must
// acquire it — and is released by Close or by process exit, so a
// crashed holder never wedges the directory.
func LockDir(dir string) (*DirLock, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datastore: create state dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("datastore: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		holder := ""
		if b, readErr := os.ReadFile(f.Name()); readErr == nil {
			if pid := string(bytes.TrimSpace(b)); pid != "" {
				holder = " (pid " + pid + ")"
			}
		}
		f.Close()
		return nil, fmt.Errorf("datastore: state dir %s is locked by another process%s — stop it first", dir, holder)
	}
	// Record our pid for the error message above; best-effort.
	_ = f.Truncate(0)
	_, _ = fmt.Fprintf(f, "%d\n", os.Getpid())
	return &DirLock{f: f}, nil
}

// Close releases the lock.
func (l *DirLock) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	return f.Close()
}
