package datastore

import "sync"

// MemBackend is an in-memory Backend for tests and ephemeral runs.
type MemBackend struct {
	mu      sync.Mutex
	snapSeq uint64
	snap    []byte
	entries []Entry
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// LoadSnapshot implements Backend.
func (m *MemBackend) LoadSnapshot() (uint64, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapSeq, append([]byte(nil), m.snap...), nil
}

// WriteSnapshot implements Backend.
func (m *MemBackend) WriteSnapshot(seq uint64, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snapSeq, m.snap = seq, append([]byte(nil), data...)
	return nil
}

// Append implements Backend.
func (m *MemBackend) Append(e Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = append(m.entries, e)
	return nil
}

// Entries implements Backend.
func (m *MemBackend) Entries() ([]Entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Entry(nil), m.entries...), nil
}

// Close implements Backend.
func (m *MemBackend) Close() error { return nil }
