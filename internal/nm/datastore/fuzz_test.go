package datastore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReopen attacks crash recovery with an arbitrary journal
// file, modeling "the process died mid-append and restarted":
//
//   - opening the backend must repair the tail, never fail or panic;
//     afterwards the journal must end on a line boundary and be a
//     prefix of what was on disk (repair only ever truncates);
//   - if the journal then reads cleanly, an appended entry must survive
//     a reopen — including a reopen after a second simulated torn
//     write — with every previously recovered entry still present.
func FuzzJournalReopen(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("\n"))
	f.Add([]byte(`{"seq":1,"op":"submit","name":"a","data":{"x":1}}` + "\n"))
	f.Add([]byte(`{"seq":1,"op":"submit","name":"a"}` + "\n" + `{"seq":2,"op":"withdr`)) // torn tail
	f.Add([]byte(`not json at all` + "\n"))
	f.Add([]byte(`{"seq":1,` + "\n" + `{"seq":2,"op":"commit"}` + "\n")) // mid-file corruption
	f.Add([]byte(`{"seq":9007199254740993,"op":"submit"}` + "\n"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		journal := filepath.Join(dir, "journal.jsonl")
		if err := os.WriteFile(journal, raw, 0o644); err != nil {
			t.Fatal(err)
		}

		b, err := NewFileBackend(dir)
		if err != nil {
			t.Fatalf("opening backend over arbitrary journal: %v", err)
		}
		repaired, err := os.ReadFile(journal)
		if err != nil {
			t.Fatal(err)
		}
		if len(repaired) > 0 && repaired[len(repaired)-1] != '\n' {
			t.Fatalf("tail repair left a partial final line: %q", repaired)
		}
		if !bytes.HasPrefix(raw, repaired) {
			t.Fatalf("tail repair rewrote history\nwas %q\nnow %q", raw, repaired)
		}

		log, st, err := Open(b)
		if err != nil {
			// Mid-file corruption is a legitimate hard error; it must
			// not be silently dropped, so nothing more to check.
			b.Close()
			return
		}
		entry, err := log.Append(OpSubmit, "fuzz-intent", map[string]string{"k": "v"}, 0)
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := b.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// Crash again: torn bytes after the acknowledged append.
		jf, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := jf.Write([]byte(`{"seq":torn`)); err != nil {
			t.Fatal(err)
		}
		jf.Close()

		b2, err := NewFileBackend(dir)
		if err != nil {
			t.Fatalf("reopen after simulated crash: %v", err)
		}
		defer b2.Close()
		_, st2, err := Open(b2)
		if err != nil {
			t.Fatalf("recovery after acknowledged append: %v", err)
		}
		if st2.LastSeq < entry.Seq {
			t.Fatalf("acknowledged entry lost: LastSeq %d < appended seq %d", st2.LastSeq, entry.Seq)
		}
		if len(st2.Entries) < len(st.Entries)+1 {
			t.Fatalf("recovered %d entries before the append, %d after", len(st.Entries), len(st2.Entries))
		}
		last := st2.Entries[len(st2.Entries)-1]
		if last.Seq != entry.Seq || last.Op != OpSubmit || last.Name != "fuzz-intent" {
			t.Fatalf("last recovered entry is not the acknowledged append: %+v", last)
		}
		// Replay must consume whatever survived without panicking;
		// individual bad records may error, which is fine.
		_, _ = ReplayIntents(nil, st2.Entries, 0)
	})
}
