package datastore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FileBackend stores the snapshot and journal in a state directory:
//
//	<dir>/snapshot.json  — {"seq": N, "data": <opaque JSON>}, replaced
//	                       atomically via write-to-temp + rename
//	<dir>/journal.jsonl  — one Entry per line, O_APPEND only
//
// A torn final journal line (crash mid-append) is tolerated and
// dropped on load; corruption anywhere else is an error.
type FileBackend struct {
	dir     string
	journal *os.File
}

// NewFileBackend opens (creating if needed) a state directory.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datastore: create state dir: %w", err)
	}
	j, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("datastore: open journal: %w", err)
	}
	return &FileBackend{dir: dir, journal: j}, nil
}

type fileSnapshot struct {
	Seq  uint64          `json:"seq"`
	Data json.RawMessage `json:"data"`
}

// LoadSnapshot implements Backend.
func (f *FileBackend) LoadSnapshot() (uint64, []byte, error) {
	b, err := os.ReadFile(filepath.Join(f.dir, "snapshot.json"))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	var s fileSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return 0, nil, fmt.Errorf("corrupt snapshot.json: %w", err)
	}
	return s.Seq, s.Data, nil
}

// WriteSnapshot implements Backend via write-to-temp + rename.
func (f *FileBackend) WriteSnapshot(seq uint64, data []byte) error {
	b, err := json.Marshal(fileSnapshot{Seq: seq, Data: data})
	if err != nil {
		return err
	}
	tmp := filepath.Join(f.dir, "snapshot.json.tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(f.dir, "snapshot.json"))
}

// Append implements Backend: one JSON line, synced before returning so
// an acknowledged mutation survives a crash.
func (f *FileBackend) Append(e Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := f.journal.Write(append(b, '\n')); err != nil {
		return err
	}
	return f.journal.Sync()
}

// Entries implements Backend.
func (f *FileBackend) Entries() ([]Entry, error) {
	r, err := os.Open(filepath.Join(f.dir, "journal.jsonl"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(text, &e); err != nil {
			// A torn trailing line is a crash artifact, not corruption.
			if atEOF(sc) {
				break
			}
			return nil, fmt.Errorf("corrupt journal line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return nil, err
	}
	return out, nil
}

// atEOF reports whether the scanner has no further lines.
func atEOF(sc *bufio.Scanner) bool { return !sc.Scan() }

// Dir returns the backing state directory.
func (f *FileBackend) Dir() string { return f.dir }

// Close implements Backend.
func (f *FileBackend) Close() error { return f.journal.Close() }
