package datastore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FileBackend stores the snapshot and journal in a state directory:
//
//	<dir>/snapshot.json  — {"seq": N, "data": <opaque JSON>}, replaced
//	                       atomically via fsynced write-to-temp + rename
//	<dir>/journal.jsonl  — one JSON Entry per line, O_APPEND only, each
//	                       line fsynced before the append is acknowledged
//	<dir>/lock           — advisory flock taken by LockDir (daemon and
//	                       store admin commands; not by this type)
//
// A torn final journal line (crash mid-append) is truncated away on
// open — it must not survive, or the next O_APPEND write would
// concatenate onto it and turn a tolerated crash artifact into
// mid-file corruption. Corruption anywhere else is an error.
type FileBackend struct {
	dir     string
	journal *os.File
}

// NewFileBackend opens (creating if needed) a state directory.
func NewFileBackend(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datastore: create state dir: %w", err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	if err := truncateTornTail(path); err != nil {
		return nil, fmt.Errorf("datastore: repair journal tail: %w", err)
	}
	j, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("datastore: open journal: %w", err)
	}
	return &FileBackend{dir: dir, journal: j}, nil
}

// truncateTornTail cuts a partial final line (crash mid-append) off the
// journal so the next append starts on a line boundary. Entry writes
// are single Write calls of JSON + '\n' with no embedded newlines, so a
// torn append is exactly "the file does not end in '\n'".
func truncateTornTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	// Find the offset just past the last '\n', scanning backwards.
	keep := int64(0)
	buf := make([]byte, 4096)
	for end := size; end > 0; {
		start := end - int64(len(buf))
		if start < 0 {
			start = 0
		}
		n := int(end - start)
		if _, err := f.ReadAt(buf[:n], start); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(buf[:n], '\n'); i >= 0 {
			keep = start + int64(i) + 1
			break
		}
		end = start
	}
	if keep == size {
		return nil
	}
	if err := f.Truncate(keep); err != nil {
		return err
	}
	return f.Sync()
}

type fileSnapshot struct {
	Seq  uint64          `json:"seq"`
	Data json.RawMessage `json:"data"`
}

// LoadSnapshot implements Backend. An unreadable snapshot is moved
// aside (snapshot.json.corrupt) rather than returned as an error: the
// journal is retained in full, so replay from empty reproduces the
// intent set and the daemon still boots — it just re-observes.
func (f *FileBackend) LoadSnapshot() (uint64, []byte, error) {
	path := filepath.Join(f.dir, "snapshot.json")
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	var s fileSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		if renameErr := os.Rename(path, path+".corrupt"); renameErr != nil {
			return 0, nil, fmt.Errorf("corrupt snapshot.json: %w", err)
		}
		return 0, nil, nil
	}
	return s.Seq, s.Data, nil
}

// WriteSnapshot implements Backend via write-to-temp + fsync + rename:
// without the fsync before the rename, power loss can make the rename
// durable while the data is not, leaving a corrupt snapshot.json.
func (f *FileBackend) WriteSnapshot(seq uint64, data []byte) error {
	b, err := json.Marshal(fileSnapshot{Seq: seq, Data: data})
	if err != nil {
		return err
	}
	tmp := filepath.Join(f.dir, "snapshot.json.tmp")
	t, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := t.Write(b); err != nil {
		t.Close()
		return err
	}
	if err := t.Sync(); err != nil {
		t.Close()
		return err
	}
	if err := t.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, "snapshot.json")); err != nil {
		return err
	}
	// Make the rename itself durable. Best-effort: some platforms
	// cannot fsync a directory handle.
	if d, err := os.Open(f.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Append implements Backend: one JSON line, synced before returning so
// an acknowledged mutation survives a crash.
func (f *FileBackend) Append(e Entry) error {
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := f.journal.Write(append(b, '\n')); err != nil {
		return err
	}
	return f.journal.Sync()
}

// Entries implements Backend. An unparseable final line is tolerated
// only when the file does not end in '\n': per the append contract
// that is exactly a torn write, while a newline-terminated line that
// fails to parse is corruption wherever it sits. (Accepting the latter
// would be worse than failing now: the next append would bury the bad
// line mid-file, and the boot after that would refuse the journal —
// with acknowledged writes after the corruption held hostage.)
func (f *FileBackend) Entries() ([]Entry, error) {
	r, err := os.Open(filepath.Join(f.dir, "journal.jsonl"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer r.Close()
	tornTailPossible, err := lacksFinalNewline(r)
	if err != nil {
		return nil, err
	}
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(text, &e); err != nil {
			// A torn trailing line is a crash artifact, not corruption.
			if tornTailPossible && atEOF(sc) {
				break
			}
			return nil, fmt.Errorf("corrupt journal line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return nil, err
	}
	return out, nil
}

// lacksFinalNewline reports whether the (non-empty) file does not end
// with '\n', i.e. its last line may be a torn append. The read offset
// is restored to the start.
func lacksFinalNewline(f *os.File) (bool, error) {
	st, err := f.Stat()
	if err != nil {
		return false, err
	}
	if st.Size() == 0 {
		return false, nil
	}
	var last [1]byte
	if _, err := f.ReadAt(last[:], st.Size()-1); err != nil {
		return false, err
	}
	return last[0] != '\n', nil
}

// atEOF reports whether the scanner has no further lines.
func atEOF(sc *bufio.Scanner) bool { return !sc.Scan() }

// Dir returns the backing state directory.
func (f *FileBackend) Dir() string { return f.dir }

// Close implements Backend.
func (f *FileBackend) Close() error { return f.journal.Close() }
