// Package datastore is the persistence layer behind the NM's intent
// store: a snapshot plus an append-only journal of store mutations,
// behind a pluggable Backend so file, memory (and later etcd/sqlite)
// storage share one replay semantics.
//
// The journal records *mutations* (submit / update / withdraw /
// apply-begin / commit / rollback), never derived state: the NM's
// compiled unions and bindings are recomputed from the intent set on
// restart, while the expensive observed-state cache rides in the
// snapshot payload, which this package treats as opaque bytes. The
// full journal is retained after a snapshot so `conman store log`
// shows commit history and `conman store rollback` can rewind to any
// recorded sequence number.
package datastore

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Op is a journal entry kind.
type Op string

// Journal operations.
const (
	// OpSubmit records a new intent entering the store (Data = intent JSON).
	OpSubmit Op = "submit"
	// OpUpdate records an in-place replacement of a registered intent.
	OpUpdate Op = "update"
	// OpWithdraw records an intent leaving the store.
	OpWithdraw Op = "withdraw"
	// OpApplyBegin records the device set a reconcile pass is about to
	// mutate (Data = JSON array of device ids). On restart every device
	// named by a post-snapshot apply-begin is treated as dirty: its
	// snapshotted observation can no longer be trusted.
	OpApplyBegin Op = "apply-begin"
	// OpCommit records that the apply-begin immediately preceding it
	// executed successfully on every device.
	OpCommit Op = "commit"
	// OpRollback rewinds the intent set to sequence To. Data carries the
	// full replacement intent set ([]IntentRecord) so replay never has
	// to walk backwards.
	OpRollback Op = "rollback"
)

// Entry is one journal record.
type Entry struct {
	Seq      uint64          `json:"seq"`
	TimeUnix int64           `json:"time_unix"`
	Op       Op              `json:"op"`
	Name     string          `json:"name,omitempty"`
	Data     json.RawMessage `json:"data,omitempty"`
	To       uint64          `json:"to,omitempty"`
}

// Backend is pluggable storage for one snapshot and an ordered journal.
// Implementations must persist Append before returning (the NM journals
// a mutation before acknowledging it).
type Backend interface {
	// LoadSnapshot returns the latest snapshot, or (0, nil, nil) when
	// none has been written.
	LoadSnapshot() (seq uint64, data []byte, err error)
	// WriteSnapshot atomically replaces the snapshot.
	WriteSnapshot(seq uint64, data []byte) error
	// Append durably adds one entry to the journal.
	Append(e Entry) error
	// Entries returns the full journal in append order.
	Entries() ([]Entry, error)
	Close() error
}

// State is what Open recovered: the latest snapshot (opaque to this
// package) and every journal entry recorded after it.
type State struct {
	SnapshotSeq uint64
	Snapshot    []byte
	// Entries holds journal records with Seq > SnapshotSeq, in order.
	Entries []Entry
	// LastSeq is the highest sequence number seen anywhere.
	LastSeq uint64
}

// Log is a sequenced writer over a Backend.
type Log struct {
	mu        sync.Mutex
	b         Backend
	seq       uint64
	sinceSnap int
}

// Open loads the backend's snapshot and journal and returns a Log
// positioned after the last recorded entry.
func Open(b Backend) (*Log, State, error) {
	snapSeq, snap, err := b.LoadSnapshot()
	if err != nil {
		return nil, State{}, fmt.Errorf("datastore: load snapshot: %w", err)
	}
	all, err := b.Entries()
	if err != nil {
		return nil, State{}, fmt.Errorf("datastore: read journal: %w", err)
	}
	st := State{SnapshotSeq: snapSeq, Snapshot: snap, LastSeq: snapSeq}
	for _, e := range all {
		if e.Seq > st.LastSeq {
			st.LastSeq = e.Seq
		}
		if e.Seq > snapSeq {
			st.Entries = append(st.Entries, e)
		}
	}
	l := &Log{b: b, seq: st.LastSeq, sinceSnap: len(st.Entries)}
	return l, st, nil
}

// Append durably records one mutation and returns it with its assigned
// sequence number. data may be nil; non-nil values are JSON-encoded.
func (l *Log) Append(op Op, name string, data any, to uint64) (Entry, error) {
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return Entry{}, fmt.Errorf("datastore: encode %s entry: %w", op, err)
		}
		raw = b
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e := Entry{Seq: l.seq, TimeUnix: time.Now().Unix(), Op: op, Name: name, Data: raw, To: to}
	if err := l.b.Append(e); err != nil {
		// The sequence number is burned, not reused: the backend may have
		// written the entry before failing (e.g. the sync after a
		// successful write), and a reused seq would then appear twice in
		// the journal, confusing show/rollback -to targeting. Replay
		// tolerates gaps.
		return Entry{}, fmt.Errorf("datastore: append: %w", err)
	}
	l.sinceSnap++
	return e, nil
}

// WriteSnapshot records data as the state at the current sequence
// number and resets the since-snapshot counter. The journal is kept.
func (l *Log) WriteSnapshot(data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.b.WriteSnapshot(l.seq, data); err != nil {
		return 0, fmt.Errorf("datastore: write snapshot: %w", err)
	}
	l.sinceSnap = 0
	return l.seq, nil
}

// LastSeq returns the sequence number of the most recent entry.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// SinceSnapshot returns how many entries have been appended since the
// last snapshot (used for auto-checkpoint cadence).
func (l *Log) SinceSnapshot() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceSnap
}

// Close closes the underlying backend.
func (l *Log) Close() error { return l.b.Close() }

// IntentRecord is a named opaque intent payload, the unit the journal
// and the snapshot's intent list share.
type IntentRecord struct {
	Name string          `json:"name"`
	Data json.RawMessage `json:"data"`
}

// ReplayIntents folds a base intent set (from a snapshot; may be nil)
// and journal entries into the intent set as of sequence upTo
// (0 = all entries). Order is submission order, the order the NM
// registers intents in after a restore.
func ReplayIntents(base []IntentRecord, entries []Entry, upTo uint64) ([]IntentRecord, error) {
	out := append([]IntentRecord(nil), base...)
	idx := make(map[string]int, len(out))
	for i, r := range out {
		idx[r.Name] = i
	}
	remove := func(name string) {
		i, ok := idx[name]
		if !ok {
			return
		}
		out = append(out[:i], out[i+1:]...)
		delete(idx, name)
		for j := i; j < len(out); j++ {
			idx[out[j].Name] = j
		}
	}
	for _, e := range entries {
		if upTo != 0 && e.Seq > upTo {
			break
		}
		switch e.Op {
		case OpSubmit, OpUpdate:
			if i, ok := idx[e.Name]; ok {
				out[i].Data = e.Data
			} else {
				idx[e.Name] = len(out)
				out = append(out, IntentRecord{Name: e.Name, Data: e.Data})
			}
		case OpWithdraw:
			remove(e.Name)
		case OpRollback:
			var set []IntentRecord
			if err := json.Unmarshal(e.Data, &set); err != nil {
				return nil, fmt.Errorf("datastore: rollback entry %d: %w", e.Seq, err)
			}
			out = append(out[:0:0], set...)
			idx = make(map[string]int, len(out))
			for i, r := range out {
				idx[r.Name] = i
			}
		case OpApplyBegin, OpCommit:
			// No effect on the intent set.
		}
	}
	return out, nil
}

// SnapshotIntents extracts the intent list from a snapshot payload by
// convention: any snapshot format used with this package exposes a
// top-level "intents" array of IntentRecord, so offline tools (store
// log / rollback) can replay without importing the NM.
func SnapshotIntents(snapshot []byte) ([]IntentRecord, error) {
	if len(snapshot) == 0 {
		return nil, nil
	}
	var probe struct {
		Intents []IntentRecord `json:"intents"`
	}
	if err := json.Unmarshal(snapshot, &probe); err != nil {
		return nil, fmt.Errorf("datastore: decode snapshot intents: %w", err)
	}
	return probe.Intents, nil
}
