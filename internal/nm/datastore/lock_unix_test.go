//go:build unix

package datastore

import (
	"strings"
	"testing"
)

// Flock conflicts between distinct open file descriptions even within
// one process, so the daemon-vs-admin exclusion is testable in-process.
func TestLockDirExcludesSecondHolder(t *testing.T) {
	dir := t.TempDir()
	l1, err := LockDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LockDir(dir); err == nil {
		t.Fatal("second LockDir acquired a held lock")
	} else if !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("unhelpful lock error: %v", err)
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := LockDir(dir)
	if err != nil {
		t.Fatalf("lock not released by Close: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}
