package datastore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, l *Log, op Op, name string, data any, to uint64) Entry {
	t.Helper()
	e, err := l.Append(op, name, data, to)
	if err != nil {
		t.Fatalf("append %s/%s: %v", op, name, err)
	}
	return e
}

func TestLogSequencingAndReopen(t *testing.T) {
	b, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l, st, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != 0 || st.Snapshot != nil || len(st.Entries) != 0 {
		t.Fatalf("fresh state not empty: %+v", st)
	}
	mustAppend(t, l, OpSubmit, "a", json.RawMessage(`{"name":"a"}`), 0)
	mustAppend(t, l, OpSubmit, "b", json.RawMessage(`{"name":"b"}`), 0)
	if seq, err := l.WriteSnapshot([]byte(`{"intents":[{"name":"a","data":{}},{"name":"b","data":{}}]}`)); err != nil || seq != 2 {
		t.Fatalf("snapshot: seq=%d err=%v", seq, err)
	}
	mustAppend(t, l, OpWithdraw, "a", nil, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := NewFileBackend(b.Dir())
	if err != nil {
		t.Fatal(err)
	}
	l2, st2, err := Open(b2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st2.SnapshotSeq != 2 || st2.LastSeq != 3 {
		t.Fatalf("reopened seqs: snap=%d last=%d", st2.SnapshotSeq, st2.LastSeq)
	}
	if len(st2.Entries) != 1 || st2.Entries[0].Op != OpWithdraw || st2.Entries[0].Name != "a" {
		t.Fatalf("post-snapshot entries: %+v", st2.Entries)
	}
	// New appends continue the sequence.
	if e := mustAppend(t, l2, OpSubmit, "c", json.RawMessage(`{}`), 0); e.Seq != 4 {
		t.Fatalf("seq after reopen = %d, want 4", e.Seq)
	}
}

func TestReplayIntents(t *testing.T) {
	raw := func(s string) json.RawMessage { return json.RawMessage(s) }
	base := []IntentRecord{{Name: "a", Data: raw(`1`)}, {Name: "b", Data: raw(`2`)}}
	entries := []Entry{
		{Seq: 3, Op: OpUpdate, Name: "a", Data: raw(`10`)},
		{Seq: 4, Op: OpSubmit, Name: "c", Data: raw(`3`)},
		{Seq: 5, Op: OpApplyBegin, Data: raw(`["A","C"]`)},
		{Seq: 6, Op: OpCommit},
		{Seq: 7, Op: OpWithdraw, Name: "b"},
	}
	got, err := ReplayIntents(base, entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []IntentRecord{{Name: "a", Data: raw(`10`)}, {Name: "c", Data: raw(`3`)}}
	if len(got) != len(want) {
		t.Fatalf("replay = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i].Name != want[i].Name || string(got[i].Data) != string(want[i].Data) {
			t.Fatalf("replay[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}

	// upTo stops before the withdraw.
	got, err = ReplayIntents(base, entries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].Name != "b" {
		t.Fatalf("replay upTo=4 = %+v", got)
	}

	// Rollback replaces the whole set.
	rb := append(entries, Entry{Seq: 8, Op: OpRollback, To: 4,
		Data: raw(`[{"name":"a","data":10},{"name":"b","data":2},{"name":"c","data":3}]`)})
	got, err = ReplayIntents(base, rb, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].Name != "b" {
		t.Fatalf("replay after rollback = %+v", got)
	}
}

func TestFileBackendToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, OpSubmit, "a", json.RawMessage(`{}`), 0)
	mustAppend(t, l, OpSubmit, "b", json.RawMessage(`{}`), 0)
	l.Close()

	// Simulate a crash mid-append: a truncated final line.
	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"sub`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := Open(b2)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer b2.Close()
	if len(st.Entries) != 2 || st.LastSeq != 2 {
		t.Fatalf("torn tail not dropped: %d entries, last=%d", len(st.Entries), st.LastSeq)
	}
}

// TestTornTailTruncatedBeforeAppend is the second-restart-after-a-crash
// regression: the torn line must be physically truncated on reopen, or
// the next O_APPEND write concatenates onto it and the journal grows a
// corrupt line in its middle that the following Open hard-fails on.
func TestTornTailTruncatedBeforeAppend(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, OpSubmit, "a", json.RawMessage(`{}`), 0)
	mustAppend(t, l, OpSubmit, "b", json.RawMessage(`{}`), 0)
	l.Close()

	path := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":3,"op":"sub`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// First restart after the crash: the torn tail is gone from disk.
	b2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Fatalf("torn tail not truncated, journal ends %q", raw[len(raw)-10:])
	}
	l2, st2, err := Open(b2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.LastSeq != 2 {
		t.Fatalf("after truncation last seq = %d, want 2", st2.LastSeq)
	}
	mustAppend(t, l2, OpSubmit, "c", json.RawMessage(`{}`), 0)
	l2.Close()

	// Second restart: every line must parse.
	b3, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Close()
	_, st3, err := Open(b3)
	if err != nil {
		t.Fatalf("second restart after crash: %v", err)
	}
	if len(st3.Entries) != 3 || st3.LastSeq != 3 {
		t.Fatalf("second restart: %d entries, last=%d, want 3/3", len(st3.Entries), st3.LastSeq)
	}
}

// TestCorruptSnapshotFallsBackToJournal: an unreadable snapshot.json
// must not brick the boot — the journal is retained in full, so the
// intent set replays from empty.
func TestCorruptSnapshotFallsBackToJournal(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := Open(b)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, OpSubmit, "a", json.RawMessage(`{"name":"a"}`), 0)
	mustAppend(t, l, OpSubmit, "b", json.RawMessage(`{"name":"b"}`), 0)
	if _, err := l.WriteSnapshot([]byte(`{"intents":[{"name":"a","data":{}},{"name":"b","data":{}}]}`)); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, OpWithdraw, "a", nil, 0)
	l.Close()

	// Simulate a half-written snapshot (power loss made the rename
	// durable but not the data).
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte(`{"seq":2,"da`), 0o644); err != nil {
		t.Fatal(err)
	}

	b2, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	_, st, err := Open(b2)
	if err != nil {
		t.Fatalf("open with corrupt snapshot: %v", err)
	}
	if st.SnapshotSeq != 0 || st.Snapshot != nil {
		t.Fatalf("corrupt snapshot not discarded: seq=%d", st.SnapshotSeq)
	}
	recs, err := ReplayIntents(nil, st.Entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Name != "b" {
		t.Fatalf("journal-only replay = %+v, want just b", recs)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json.corrupt")); err != nil {
		t.Errorf("corrupt snapshot not preserved aside: %v", err)
	}
}

// flakyBackend fails an Append after the underlying write succeeded —
// the sync-failed-after-write case a torn power loss produces.
type flakyBackend struct {
	*MemBackend
	failNext bool
}

func (f *flakyBackend) Append(e Entry) error {
	if err := f.MemBackend.Append(e); err != nil {
		return err
	}
	if f.failNext {
		f.failNext = false
		return os.ErrDeadlineExceeded
	}
	return nil
}

func TestFailedAppendBurnsSeq(t *testing.T) {
	fb := &flakyBackend{MemBackend: NewMemBackend()}
	l, _, err := Open(fb)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, OpSubmit, "a", json.RawMessage(`{}`), 0)
	fb.failNext = true
	if _, err := l.Append(OpSubmit, "ghost", json.RawMessage(`{}`), 0); err == nil {
		t.Fatal("armed append did not fail")
	}
	e := mustAppend(t, l, OpSubmit, "c", json.RawMessage(`{}`), 0)
	if e.Seq != 3 {
		t.Fatalf("seq after failed append = %d, want 3 (seq 2 burned)", e.Seq)
	}
	entries, err := fb.Entries()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]int{}
	for _, got := range entries {
		seen[got.Seq]++
	}
	for seq, n := range seen {
		if n > 1 {
			t.Fatalf("seq %d appears %d times in the journal", seq, n)
		}
	}
}

func TestSnapshotIntents(t *testing.T) {
	got, err := SnapshotIntents([]byte(`{"version":1,"intents":[{"name":"x","data":{"goal":1}}],"extra":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "x" {
		t.Fatalf("SnapshotIntents = %+v", got)
	}
	if got, err := SnapshotIntents(nil); err != nil || got != nil {
		t.Fatalf("empty snapshot: %v %v", got, err)
	}
}

func TestMemBackendRoundTrip(t *testing.T) {
	m := NewMemBackend()
	l, _, err := Open(m)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, OpSubmit, "a", json.RawMessage(`{}`), 0)
	if _, err := l.WriteSnapshot([]byte(`{"intents":[]}`)); err != nil {
		t.Fatal(err)
	}
	if l.SinceSnapshot() != 0 {
		t.Fatalf("sinceSnap after snapshot = %d", l.SinceSnapshot())
	}
	mustAppend(t, l, OpWithdraw, "a", nil, 0)
	_, st, err := Open(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotSeq != 1 || len(st.Entries) != 1 {
		t.Fatalf("mem reopen: %+v", st)
	}
}
