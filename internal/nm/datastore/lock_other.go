//go:build !unix

package datastore

import (
	"fmt"
	"os"
	"path/filepath"
)

// DirLock is a no-op stand-in on platforms without flock; the state
// directory is not protected against concurrent writers there.
type DirLock struct {
	f *os.File
}

// LockDir creates the lock file but provides no mutual exclusion on
// this platform.
func LockDir(dir string) (*DirLock, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datastore: create state dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("datastore: open lock file: %w", err)
	}
	return &DirLock{f: f}, nil
}

// Close releases the lock file handle.
func (l *DirLock) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	f := l.f
	l.f = nil
	return f.Close()
}
