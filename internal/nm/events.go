package nm

// Management-channel events as a consumable feed. The NM always
// received unsolicited traffic — module notifications, dependency
// triggers (§II-E), topology re-reports — but used to drop it into
// append-only slices nobody read. This file turns that traffic into
// bounded queues: a short retained tail for inspection (Notifies /
// Triggers) and live subscriber channels (Subscribe) that the
// reconciliation daemon drains. Publishing never blocks the channel
// handler; a subscriber that falls behind loses the oldest events and
// the loss is counted, which for a level-triggered consumer (the
// daemon re-reconciles from observed state, not from event payloads)
// only costs an extra reconcile pass, never correctness.

import (
	"conman/internal/core"
	"conman/internal/msg"
)

// eventRetain bounds the notify/trigger tails kept for inspection and
// is the default Subscribe buffer.
const eventRetain = 1024

// EventKind classifies an NM event.
type EventKind uint8

const (
	// EventNotify is an unsolicited module -> NM notification.
	EventNotify EventKind = iota
	// EventTrigger is a fired dependency-maintenance trigger (§II-E).
	EventTrigger
	// EventTopology is a device topology re-report that changed the
	// NM's physical view (identical re-reports are suppressed).
	EventTopology
)

func (k EventKind) String() string {
	switch k {
	case EventNotify:
		return "notify"
	case EventTrigger:
		return "trigger"
	case EventTopology:
		return "topology"
	}
	return "unknown"
}

// Event is one unsolicited management-channel occurrence.
type Event struct {
	// Seq is the NM-global publication sequence number.
	Seq uint64
	// Kind says what happened.
	Kind EventKind
	// Device is the reporting device.
	Device core.DeviceID
	// Module is the source module for notifies and triggers.
	Module core.ModuleRef
	// Component is the watched component for triggers.
	Component string
	// What is the notify kind; Detail its free-form payload.
	What   string
	Detail string
}

// Subscribe returns a live event feed and its cancel function. The
// channel is buffered (buf <= 0 selects eventRetain); events published
// while the buffer is full are dropped and counted in EventsDropped.
// Cancel unregisters the subscriber; the channel is never closed, so a
// consumer selecting on it must also select on its own done signal.
func (n *NM) Subscribe(buf int) (<-chan Event, func()) {
	if buf <= 0 {
		buf = eventRetain
	}
	ch := make(chan Event, buf)
	n.mu.Lock()
	n.subSeq++
	id := n.subSeq
	n.subs[id] = ch
	n.mu.Unlock()
	cancel := func() {
		n.mu.Lock()
		delete(n.subs, id)
		n.mu.Unlock()
	}
	return ch, cancel
}

// EventsDropped reports how many published events found a subscriber's
// buffer full (cumulative across subscribers).
func (n *NM) EventsDropped() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eventsDropped
}

// SetOnTrigger registers (or, with nil, clears) the dependency-trigger
// callback. Registration synchronises with dispatch: the call returns
// only once no in-flight trigger is still running the previous handler.
func (n *NM) SetOnTrigger(fn func(t msg.Trigger)) {
	n.triggerMu.Lock()
	n.onTrigger = fn
	n.triggerMu.Unlock()
}

// publishLocked fans an event out to every subscriber. Caller holds
// n.mu.
func (n *NM) publishLocked(ev Event) {
	n.eventSeq++
	ev.Seq = n.eventSeq
	for _, ch := range n.subs {
		select {
		case ch <- ev:
		default:
			n.eventsDropped++
		}
	}
}

// appendBounded appends to a retained-tail slice, discarding the
// oldest entries beyond eventRetain.
func appendBounded[T any](s []T, v T) []T {
	s = append(s, v)
	if len(s) > eventRetain {
		s = s[len(s)-eventRetain:]
	}
	return s
}

// topologyEqual reports whether two topology reports describe the same
// physical view.
func topologyEqual(a, b msg.Topology) bool {
	if a.Device != b.Device || len(a.Ports) != len(b.Ports) {
		return false
	}
	for i := range a.Ports {
		if a.Ports[i] != b.Ports[i] {
			return false
		}
	}
	return true
}
