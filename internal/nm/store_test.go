package nm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"conman/internal/core"
	"conman/internal/msg"
)

func TestSubmitWithdrawBookkeeping(t *testing.T) {
	n := New()
	if err := n.Submit(Intent{}); err == nil {
		t.Error("submit accepted an unnamed intent")
	}
	a := Intent{Name: "a", Prefer: "GRE-IP tunnel"}
	b := Intent{Name: "b"}
	for _, in := range []Intent{a, b} {
		if err := n.Submit(in); err != nil {
			t.Fatal(err)
		}
	}
	// Resubmitting a live name is a typed error, not a silent overwrite.
	var dup *DuplicateIntentError
	if err := n.Submit(Intent{Name: "a", Prefer: "MPLS"}); !errors.As(err, &dup) {
		t.Fatalf("double submit = %v, want *DuplicateIntentError", err)
	} else if dup.Name != "a" {
		t.Errorf("duplicate error names %q, want a", dup.Name)
	}
	// Update replaces in place, keeping submission order.
	if err := n.Update(Intent{Name: "a", Prefer: "MPLS"}); err != nil {
		t.Fatal(err)
	}
	got := n.Registered()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("registered = %+v, want [a b]", got)
	}
	if got[0].Prefer != "MPLS" {
		t.Errorf("update did not replace: prefer = %q", got[0].Prefer)
	}
	// Update and Withdraw of unknown names are typed errors too.
	var unk *UnknownIntentError
	if err := n.Update(Intent{Name: "nope"}); !errors.As(err, &unk) {
		t.Fatalf("update of unknown = %v, want *UnknownIntentError", err)
	} else if unk.Op != "update" || unk.Name != "nope" {
		t.Errorf("unknown error = %+v, want op=update name=nope", unk)
	}
	unk = nil
	if err := n.Withdraw("nope"); !errors.As(err, &unk) {
		t.Fatalf("withdraw of unknown = %v, want *UnknownIntentError", err)
	} else if unk.Op != "withdraw" {
		t.Errorf("unknown error op = %q, want withdraw", unk.Op)
	}
	if err := n.Withdraw("a"); err != nil {
		t.Fatal(err)
	}
	got = n.Registered()
	if len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("after withdraw, registered = %+v, want [b]", got)
	}
}

// script builds a DeviceScript from pipe/rule specs the way the
// compiler would emit it.
func pipeItem(id core.PipeID, req core.PipeRequest) (msg.CommandItem, string) {
	return msg.CommandItem{Pipe: &msg.CreatePipeItem{ID: id, Req: req}}, renderPipeCreate(id, req)
}

func ruleItem(r core.SwitchRule) (msg.CommandItem, string) {
	return msg.CommandItem{Switch: &msg.CreateSwitchReq{Rule: r}}, renderSwitchCreate(r)
}

func appendItems(ds *DeviceScript, items ...func() (msg.CommandItem, string)) {
	for _, f := range items {
		it, rendered := f()
		ds.Items = append(ds.Items, it)
		ds.Rendered = append(ds.Rendered, rendered)
	}
}

// TestUnionMergeDedupesSharedComponents drives mergeScripts + diff
// directly: two intents compile the same transit pipe and rule on one
// device (each numbering the pipe P0 in isolation), plus one exclusive
// rule each. The union must configure the shared pair once, refcount it
// with both owners, and keep the exclusive rules separate.
func TestUnionMergeDedupesSharedComponents(t *testing.T) {
	dev := core.DeviceID("X")
	eth := core.Ref(core.NameETH, dev, "e")
	vlan := core.Ref(core.NameVLAN, dev, "v")
	req := core.PipeRequest{Upper: eth, Lower: vlan, LowerPeer: core.Ref(core.NameVLAN, "Y", "v")}

	mkScript := func(custPort string) DeviceScript {
		ds := DeviceScript{Device: dev}
		appendItems(&ds,
			func() (msg.CommandItem, string) { return pipeItem("P0", req) },
			func() (msg.CommandItem, string) {
				return ruleItem(core.SwitchRule{
					Module: eth, From: core.PipeID("Phy-" + custPort), To: "P0",
					Match: &core.Classifier{Kind: "tagged"},
				})
			},
			func() (msg.CommandItem, string) {
				return ruleItem(core.SwitchRule{Module: vlan, From: "P0", To: "Phy-trunk", Bidirectional: true})
			},
		)
		return ds
	}

	unions := make(map[core.DeviceID]*deviceUnion)
	var order []core.DeviceID
	mergeScripts(unions, &order, "vpn-a", []DeviceScript{mkScript("c1")})
	mergeScripts(unions, &order, "vpn-b", []DeviceScript{mkScript("c2")})

	du := unions[dev]
	if len(du.pipes) != 1 {
		t.Fatalf("union holds %d pipes, want 1 (shared)", len(du.pipes))
	}
	if len(du.rules) != 3 {
		t.Fatalf("union holds %d rules, want 3 (2 exclusive + 1 shared)", len(du.rules))
	}
	plan := &StorePlan{}
	du.diff(New(), &observed{pipes: map[core.PipeID]obsPipe{}}, plan)
	if len(plan.Creates) != 1 {
		t.Fatalf("want one create batch, got %d", len(plan.Creates))
	}
	if got := len(plan.Creates[0].Items); got != 4 {
		t.Fatalf("create batch has %d items, want 4 (1 pipe + 3 rules):\n%s",
			got, strings.Join(plan.Creates[0].Rendered, "\n"))
	}
	rendered := strings.Join(plan.Creates[0].Rendered, "\n")
	if !strings.Contains(rendered, "[shared: vpn-a, vpn-b]") {
		t.Errorf("shared components not annotated with owners:\n%s", rendered)
	}
}

// TestDiffAdoptsObservedPipeIDs pins the content-based matching that
// makes reconciliation stable across intent withdrawal: the desired
// pipe was compiled as P0 but is observed installed as P7 — the diff
// must adopt P7 (no churn), keep the installed rule referencing it, and
// delete only the truly stale rule.
func TestDiffAdoptsObservedPipeIDs(t *testing.T) {
	dev := core.DeviceID("X")
	eth := core.Ref(core.NameETH, dev, "e")
	vlan := core.Ref(core.NameVLAN, dev, "v")
	req := core.PipeRequest{Upper: eth, Lower: vlan, LowerPeer: core.Ref(core.NameVLAN, "Y", "v")}

	ds := DeviceScript{Device: dev}
	appendItems(&ds,
		func() (msg.CommandItem, string) { return pipeItem("P0", req) },
		func() (msg.CommandItem, string) {
			return ruleItem(core.SwitchRule{Module: vlan, From: "P0", To: "Phy-trunk", Bidirectional: true})
		},
	)
	unions := make(map[core.DeviceID]*deviceUnion)
	var order []core.DeviceID
	mergeScripts(unions, &order, "vpn-a", []DeviceScript{ds})

	o := &observed{
		pipes: map[core.PipeID]obsPipe{
			"P7": {upper: eth, lower: vlan, lowerPeer: core.Ref(core.NameVLAN, "Y", "v")},
		},
		rules: []obsRule{
			{id: "r1", module: vlan, from: "P7", to: "Phy-trunk"},
			{id: "r2", module: vlan, from: "P7", to: "Phy-dead"},
		},
	}
	plan := &StorePlan{}
	unions[dev].diff(New(), o, plan)
	if len(plan.Creates) != 0 {
		t.Errorf("in-place pipe churned:\n%s", plan.Render())
	}
	if plan.InPlace != 2 {
		t.Errorf("InPlace = %d, want 2 (pipe + kept rule)", plan.InPlace)
	}
	if len(plan.Deletes) != 1 || len(plan.Deletes[0].Items) != 1 {
		t.Fatalf("want exactly one stale-rule delete, got:\n%s", plan.Render())
	}
	if !strings.Contains(plan.Deletes[0].Rendered[0], "r2") {
		t.Errorf("wrong rule deleted: %s", plan.Deletes[0].Rendered[0])
	}
}

// classifiedRule forges a resolved classified switch rule item the way
// the compiler emits customer-edge ingress rules.
func classifiedRule(module core.ModuleRef, from, to core.PipeID, domain, resolved string) func() (msg.CommandItem, string) {
	return func() (msg.CommandItem, string) {
		r := core.SwitchRule{
			Module: module, From: from, To: to,
			Match: &core.Classifier{Kind: "dst-domain", Value: domain},
		}
		return msg.CommandItem{Switch: &msg.CreateSwitchReq{Rule: r, MatchResolved: resolved}},
			renderSwitchCreate(r)
	}
}

// TestStoreConflictDetection pins the typed conflict error: two intents
// whose rules classify the same traffic (same module, same entry pipe,
// same classifier) but steer it into different pipes must surface as a
// ConflictError naming both intents — not as an order-dependent
// installation outcome.
func TestStoreConflictDetection(t *testing.T) {
	dev := core.DeviceID("A")
	ipm := core.Ref(core.NameIPv4, dev, "g")
	gre := core.Ref(core.NameGRE, dev, "l")
	mpls := core.Ref(core.NameMPLS, dev, "o")

	// Intent a: classify C1-S2 into a pipe toward GRE. Intent b: the
	// same classifier into a pipe toward MPLS.
	mk := func(lower core.ModuleRef) DeviceScript {
		ds := DeviceScript{Device: dev}
		appendItems(&ds,
			func() (msg.CommandItem, string) {
				return pipeItem("P0", core.PipeRequest{Upper: ipm, Lower: lower})
			},
			classifiedRule(ipm, "Phy-cust", "P0", "C1-S2", "10.0.2.0/24"),
		)
		return ds
	}
	unions := make(map[core.DeviceID]*deviceUnion)
	var order []core.DeviceID
	mergeScripts(unions, &order, "a", []DeviceScript{mk(gre)})
	mergeScripts(unions, &order, "b", []DeviceScript{mk(mpls)})

	err := unions[dev].conflicts()
	ce, ok := err.(*ConflictError)
	if !ok {
		t.Fatalf("conflicts() = %v, want *ConflictError", err)
	}
	if ce.IntentA != "a" || ce.IntentB != "b" {
		t.Errorf("conflict names intents %q/%q, want a/b", ce.IntentA, ce.IntentB)
	}
	if ce.Module != ipm {
		t.Errorf("conflict module = %s, want %s", ce.Module, ipm)
	}
	if !strings.Contains(ce.Error(), `"a"`) || !strings.Contains(ce.Error(), `"b"`) {
		t.Errorf("error text does not name both intents: %s", ce)
	}
}

// TestStoreConflictTolerates pins the non-conflicts: identical rules
// unify (shared, refcounted), divergent valueless Tagged classifiers
// coexist (the multi-tenant edge), and different classifier values are
// independent.
func TestStoreConflictTolerates(t *testing.T) {
	dev := core.DeviceID("A")
	ipm := core.Ref(core.NameIPv4, dev, "g")
	gre := core.Ref(core.NameGRE, dev, "l")
	eth := core.Ref(core.NameETH, dev, "a")

	unions := make(map[core.DeviceID]*deviceUnion)
	var order []core.DeviceID
	for i, name := range []string{"a", "b"} {
		ds := DeviceScript{Device: dev}
		appendItems(&ds,
			func() (msg.CommandItem, string) {
				return pipeItem("P0", core.PipeRequest{Upper: ipm, Lower: gre})
			},
			// Same classifier, same structural target: shared, fine.
			classifiedRule(ipm, "Phy-cust", "P0", "C1-S2", "10.0.2.0/24"),
			// Different classifier values: independent, fine.
			classifiedRule(ipm, "Phy-cust", "P0", fmt.Sprintf("C1-S%d", 3+i), fmt.Sprintf("10.0.%d.0/24", 3+i)),
			// Valueless Tagged classifier to per-intent customer ports:
			// the multi-tenant edge, fine.
			func() (msg.CommandItem, string) {
				r := core.SwitchRule{
					Module: eth, From: "Phy-trunk", To: core.PipeID(fmt.Sprintf("Phy-cust%d", i)),
					Match: &core.Classifier{Kind: "tagged"},
				}
				return msg.CommandItem{Switch: &msg.CreateSwitchReq{Rule: r}}, renderSwitchCreate(r)
			},
		)
		mergeScripts(unions, &order, name, []DeviceScript{ds})
	}
	if err := unions[dev].conflicts(); err != nil {
		t.Fatalf("false conflict: %v", err)
	}
}
