package nm

import (
	"fmt"
	"testing"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/msg"
)

// fakeMA answers NM requests with canned data over a hub.
type fakeMA struct {
	ep  channel.Endpoint
	abs []core.Abstraction
}

func newFakeMA(hub *channel.Hub, dev core.DeviceID, abs []core.Abstraction) *fakeMA {
	f := &fakeMA{ep: hub.Endpoint(string(dev)), abs: abs}
	f.ep.SetHandler(func(env msg.Envelope) {
		switch env.Type {
		case msg.TypeShowPotentialReq:
			resp := msg.MustNew(msg.TypeShowPotentialResp, string(dev), env.From, env.ID,
				msg.ShowPotentialResp{Modules: abs})
			_ = f.ep.Send(resp)
		case msg.TypeCommandBatchReq:
			var batch msg.CommandBatchReq
			_ = env.Decode(&batch)
			resp := msg.MustNew(msg.TypeCommandBatchResp, string(dev), env.From, env.ID,
				msg.CommandBatchResp{Errors: make([]string, len(batch.Items))})
			_ = f.ep.Send(resp)
		case msg.TypeListFieldsReq:
			resp := msg.MustNew(msg.TypeListFieldsResp, string(dev), env.From, env.ID,
				msg.ListFieldsResp{Fields: map[string]string{"address": "1.2.3.4"}})
			_ = f.ep.Send(resp)
		}
	})
	return f
}

func ethAbs(dev core.DeviceID, id core.ModuleID, iface string, external bool) core.Abstraction {
	return core.Abstraction{
		Ref:      core.Ref(core.NameETH, dev, id),
		Up:       core.PipeSpec{Connectable: []core.ModuleName{core.NameIPv4}},
		Peerable: []core.ModuleName{core.NameETH},
		Switch:   core.SwitchSpec{Modes: []core.SwitchMode{core.SwPhyUp, core.SwUpPhy}},
		Physical: []core.PhysicalPipeInfo{{Pipe: core.PipeID("Phy-" + iface), Enabled: true, External: external}},
	}
}

func ipAbs(dev core.DeviceID, id core.ModuleID, domain string) core.Abstraction {
	return core.Abstraction{
		Ref:      core.Ref(core.NameIPv4, dev, id),
		Up:       core.PipeSpec{Connectable: []core.ModuleName{core.NameIPv4}},
		Down:     core.PipeSpec{Connectable: []core.ModuleName{core.NameIPv4, core.NameETH}},
		Peerable: []core.ModuleName{core.NameIPv4},
		Switch: core.SwitchSpec{Modes: []core.SwitchMode{
			core.SwDownUp, core.SwUpDown, core.SwDownDown,
		}},
		Attributes: map[string]string{"address-domain": domain},
	}
}

// buildTwoRouterNM assembles an NM that discovered a 2-router topology:
// D -(ext)- R1 - R2 -(ext)- E, each router with one customer ETH, one core
// ETH and IP modules.
func buildTwoRouterNM(t *testing.T) *NM {
	t.Helper()
	hub := channel.NewHub()
	n := New()
	n.AttachChannel(hub.Endpoint(msg.NMName))

	r1 := []core.Abstraction{
		ethAbs("R1", "a", "eth0", true),
		ethAbs("R1", "b", "eth1", false),
		ipAbs("R1", "g", "C1"),
		ipAbs("R1", "h", "ISP"),
	}
	r2 := []core.Abstraction{
		ethAbs("R2", "c", "eth0", false),
		ethAbs("R2", "f", "eth1", true),
		ipAbs("R2", "j", "ISP"),
		ipAbs("R2", "k", "C1"),
	}
	ma1 := newFakeMA(hub, "R1", r1)
	ma2 := newFakeMA(hub, "R2", r2)
	_ = ma1
	_ = ma2
	// Hellos and topology.
	for _, dev := range []string{"R1", "R2"} {
		_ = hub
		env := msg.MustNew(msg.TypeHello, dev, msg.NMName, 0, msg.Hello{Device: core.DeviceID(dev)})
		ep := hub.Endpoint(dev + "-announcer")
		ep.SetHandler(func(msg.Envelope) {})
		if err := ep.Send(env); err != nil {
			t.Fatal(err)
		}
	}
	send := func(top msg.Topology) {
		ep := hub.Endpoint(string(top.Device) + "-top")
		ep.SetHandler(func(msg.Envelope) {})
		if err := ep.Send(msg.MustNew(msg.TypeTopology, string(top.Device), msg.NMName, 0, top)); err != nil {
			t.Fatal(err)
		}
	}
	send(msg.Topology{Device: "R1", Ports: []msg.PortReport{
		{Name: "eth0", Attached: true, External: true},
		{Name: "eth1", Attached: true, PeerDevice: "R2", PeerPort: "eth0"},
	}})
	send(msg.Topology{Device: "R2", Ports: []msg.PortReport{
		{Name: "eth0", Attached: true, PeerDevice: "R1", PeerPort: "eth1"},
		{Name: "eth1", Attached: true, External: true},
	}})
	if err := n.DiscoverAll(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGraphConstruction(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) != 8 {
		t.Fatalf("nodes = %d", len(g.Nodes()))
	}
	gNode, ok := g.Node(core.Ref(core.NameIPv4, "R1", "g"))
	if !ok {
		t.Fatal("no node g")
	}
	if gNode.Domain != "C1" {
		t.Fatalf("domain = %q", gNode.Domain)
	}
	// g can sit above both ETH modules and the other IP module.
	if len(g.Below(gNode)) != 3 {
		t.Fatalf("below(g) = %v", g.Below(gNode))
	}
	// Physical edge resolution across the R1-R2 wire.
	bNode, _ := g.Node(core.Ref(core.NameETH, "R1", "b"))
	phys := g.Phys(bNode)
	if len(phys) != 1 || phys[0].Peer == nil || phys[0].Peer.Ref.Module != "c" {
		t.Fatalf("phys(b) = %+v", phys)
	}
	aNode, _ := g.Node(core.Ref(core.NameETH, "R1", "a"))
	if pa := g.Phys(aNode); len(pa) != 1 || !pa[0].External {
		t.Fatalf("phys(a) = %+v", pa)
	}
}

func TestFindPathsTwoRouters(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	paths, stats, err := g.FindPaths(FindSpec{
		From:          core.Ref(core.NameETH, "R1", "a"),
		To:            core.Ref(core.NameETH, "R2", "f"),
		TrafficDomain: "C1",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two paths exist: plain routing (g and k are adjacent customer
	// routers in the same domain) and the IP-IP tunnel via h/j.
	if len(paths) != 2 {
		for _, p := range paths {
			t.Logf("path: %s [%s]", p.Describe(), p.Modules())
		}
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	if got := paths[0].Modules(); got != "a, g, b, c, k, f" {
		t.Fatalf("plain path = %q", got)
	}
	if got := paths[1].Modules(); got != "a, g, h, b, c, j, k, f" {
		t.Fatalf("tunnel path = %q", got)
	}
	if stats.DomainMismatch == 0 {
		t.Error("expected domain prunes (g cannot peer with ISP modules)")
	}
	// Peer groups of the tunnel path: the ISP-IP tunnel h..j, the wire
	// ETH b..c, the external groups.
	p := paths[1]
	var ispGroup *PeerGroup
	for i := range p.Groups {
		gr := &p.Groups[i]
		if gr.Protocol == core.NameIPv4 && !gr.External {
			ispGroup = gr
		}
	}
	if ispGroup == nil || len(ispGroup.Members) != 2 || !ispGroup.Closed {
		t.Fatalf("ISP group = %+v", ispGroup)
	}
}

func TestFindPathsErrors(t *testing.T) {
	n := buildTwoRouterNM(t)
	g, err := BuildGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.FindPaths(FindSpec{
		From: core.Ref(core.NameETH, "R1", "nope"),
		To:   core.Ref(core.NameETH, "R2", "f"),
	}); err == nil {
		t.Error("want unknown-module error")
	}
	// A non-external module as start.
	if _, _, err := g.FindPaths(FindSpec{
		From: core.Ref(core.NameETH, "R1", "b"),
		To:   core.Ref(core.NameETH, "R2", "f"),
	}); err == nil {
		t.Error("want no-external-pipe error")
	}
}

func TestSelectPathPrefersFewerPipes(t *testing.T) {
	plain := &Node{Abs: core.Abstraction{}}
	short := &Path{Hops: []Hop{{Node: plain, ExitVia: plain}, {Node: plain}}}
	long := &Path{Hops: []Hop{{Node: plain, ExitVia: plain}, {Node: plain, ExitVia: plain}, {Node: plain}}}
	if got := SelectPath([]*Path{long, short}); got != short {
		t.Error("selector did not prefer fewer pipes")
	}
	if SelectPath(nil) != nil {
		t.Error("empty selection should be nil")
	}
}

func TestSelectPathPrefersFastForwardingOnTie(t *testing.T) {
	slow := &Path{Hops: []Hop{{ExitVia: &Node{}, Node: &Node{Abs: core.Abstraction{}}}, {Node: &Node{Abs: core.Abstraction{}}}}}
	fast := &Path{Hops: []Hop{
		{ExitVia: &Node{}, Node: &Node{Abs: core.Abstraction{Attributes: map[string]string{"forwarding": "fast"}}}},
		{Node: &Node{Abs: core.Abstraction{}}},
	}}
	if got := SelectPath([]*Path{slow, fast}); got != fast {
		t.Error("selector did not prefer fast forwarding on tie")
	}
}

func TestCountersAccounting(t *testing.T) {
	c := Counters{CmdSent: 3, RelayIn: 8, RelayOut: 8, NotifyRecv: 0, AckRecv: 3}
	if c.Sent() != 11 || c.Received() != 8 {
		t.Fatalf("sent=%d recv=%d", c.Sent(), c.Received())
	}
}

func TestNMRelaysConvey(t *testing.T) {
	hub := channel.NewHub()
	n := New()
	n.AttachChannel(hub.Endpoint(msg.NMName))

	var gotOnB []msg.Envelope
	b := hub.Endpoint("B")
	b.SetHandler(func(e msg.Envelope) { gotOnB = append(gotOnB, e) })

	a := hub.Endpoint("A")
	a.SetHandler(func(msg.Envelope) {})
	convey := msg.Convey{
		FromModule: core.Ref(core.NameGRE, "A", "l"),
		ToModule:   core.Ref(core.NameGRE, "B", "n"),
		Kind:       "gre-params",
	}
	if err := a.Send(msg.MustNew(msg.TypeConvey, "A", msg.NMName, 0, convey)); err != nil {
		t.Fatal(err)
	}
	if len(gotOnB) != 1 || gotOnB[0].Type != msg.TypeConvey {
		t.Fatalf("B got %+v", gotOnB)
	}
	c := n.Counters()
	if c.RelayIn != 1 || c.RelayOut != 1 {
		t.Fatalf("counters %+v", c)
	}
}

func TestNMRelaysListFields(t *testing.T) {
	hub := channel.NewHub()
	n := New()
	n.AttachChannel(hub.Endpoint(msg.NMName))
	newFakeMA(hub, "B", nil) // answers listFields with address=1.2.3.4

	got := make(chan msg.Envelope, 1)
	a := hub.Endpoint("A")
	a.SetHandler(func(e msg.Envelope) { got <- e })
	req := msg.ListFieldsReq{
		Requester: core.Ref(core.NameIPv4, "A", "h"),
		Target:    core.Ref(core.NameIPv4, "B", "j"),
		Component: "self",
	}
	if err := a.Send(msg.MustNew(msg.TypeListFieldsReq, "A", msg.NMName, 55, req)); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-got:
		if e.ID != 55 {
			t.Fatalf("response id %d, want the requester's 55", e.ID)
		}
		var resp msg.ListFieldsResp
		if err := e.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.Fields["address"] != "1.2.3.4" {
			t.Fatalf("fields %v", resp.Fields)
		}
	default:
		t.Fatal("no relayed response")
	}
	c := n.Counters()
	if c.RelayIn != 2 || c.RelayOut != 2 {
		t.Fatalf("counters %+v (one query+answer must be 2/2, Table VI)", c)
	}
}

func TestDomainAndGatewayResolution(t *testing.T) {
	n := New()
	n.SetDomain("C1-S2", "10.0.2.0/24")
	n.SetGateway("S1-gateway", "192.168.0.1")
	if p, ok := n.ResolveDomain("C1-S2"); !ok || p != "10.0.2.0/24" {
		t.Fatalf("domain %q %v", p, ok)
	}
	if a, ok := n.ResolveGateway("S1-gateway"); !ok || a != "192.168.0.1" {
		t.Fatalf("gateway %q %v", a, ok)
	}
	if _, ok := n.ResolveDomain("nope"); ok {
		t.Error("unknown domain resolved")
	}
}

// ---------------------------------------------------------------------------
// Concurrency: wave grouping, worker pool, sequential fallback

func TestExecutionWaves(t *testing.T) {
	ds := func(dev string) DeviceScript { return DeviceScript{Device: core.DeviceID(dev)} }
	cases := []struct {
		name    string
		scripts []DeviceScript
		want    [][]int
	}{
		{"empty", nil, nil},
		{"distinct-devices", []DeviceScript{ds("A"), ds("B"), ds("C")}, [][]int{{0, 1, 2}}},
		{"repeat-device", []DeviceScript{ds("A"), ds("B"), ds("A")}, [][]int{{0, 1}, {2}}},
		{"interleaved", []DeviceScript{ds("A"), ds("B"), ds("A"), ds("B"), ds("A")},
			[][]int{{0, 1}, {2, 3}, {4}}},
		{"late-first-appearance", []DeviceScript{ds("A"), ds("A"), ds("B")},
			[][]int{{0, 2}, {1}}},
	}
	for _, c := range cases {
		got := executionWaves(c.scripts)
		if len(got) != len(c.want) {
			t.Errorf("%s: %d waves, want %d (%v)", c.name, len(got), len(c.want), got)
			continue
		}
		for w := range got {
			if len(got[w]) != len(c.want[w]) {
				t.Errorf("%s wave %d: %v, want %v", c.name, w, got[w], c.want[w])
				continue
			}
			for i := range got[w] {
				if got[w][i] != c.want[w][i] {
					t.Errorf("%s wave %d: %v, want %v", c.name, w, got[w], c.want[w])
					break
				}
			}
		}
	}
}

func TestExecutionChains(t *testing.T) {
	ds := func(dev string) DeviceScript { return DeviceScript{Device: core.DeviceID(dev)} }
	cases := []struct {
		name    string
		scripts []DeviceScript
		want    [][]int
	}{
		{"empty", nil, nil},
		{"distinct-devices", []DeviceScript{ds("A"), ds("B"), ds("C")}, [][]int{{0}, {1}, {2}}},
		{"repeat-device", []DeviceScript{ds("A"), ds("B"), ds("A")}, [][]int{{0, 2}, {1}}},
		{"interleaved", []DeviceScript{ds("A"), ds("B"), ds("A"), ds("B"), ds("A")},
			[][]int{{0, 2, 4}, {1, 3}}},
		{"late-first-appearance", []DeviceScript{ds("A"), ds("A"), ds("B")},
			[][]int{{0, 1}, {2}}},
	}
	for _, c := range cases {
		got := executionChains(c.scripts)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("%s: chains %v, want %v", c.name, got, c.want)
		}
	}
}

func TestForEachDeterministicError(t *testing.T) {
	n := New()
	n.Workers = 8
	// Two failures: the lowest index must win no matter how goroutines
	// are scheduled.
	for trial := 0; trial < 20; trial++ {
		err := n.forEach(16, func(i int) error {
			if i == 3 || i == 11 {
				return fmt.Errorf("boom %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom 3" {
			t.Fatalf("trial %d: got %v, want boom 3", trial, err)
		}
	}
}

func TestDiscoverAllSequentialFlag(t *testing.T) {
	for _, sequential := range []bool{false, true} {
		n := buildTwoRouterNM(t)
		n.Sequential = sequential
		if err := n.DiscoverAll(); err != nil {
			t.Fatalf("sequential=%v: %v", sequential, err)
		}
		devs := n.Devices()
		if len(devs) != 2 || devs[0] != "R1" || devs[1] != "R2" {
			t.Fatalf("sequential=%v: devices %v", sequential, devs)
		}
	}
}

func TestExecuteConcurrentCountsMatchSequential(t *testing.T) {
	scripts := []DeviceScript{
		{Device: "R1", Items: []msg.CommandItem{{}, {}}},
		{Device: "R2", Items: []msg.CommandItem{{}}},
	}
	run := func(sequential bool) Counters {
		n := buildTwoRouterNM(t)
		n.Sequential = sequential
		n.ResetCounters()
		if err := n.Execute(scripts); err != nil {
			t.Fatalf("sequential=%v: %v", sequential, err)
		}
		return n.Counters()
	}
	seq, conc := run(true), run(false)
	if seq != conc {
		t.Errorf("counters differ: sequential %+v, concurrent %+v", seq, conc)
	}
	if seq.CmdSent != 2 || seq.AckRecv != 2 {
		t.Errorf("unexpected accounting: %+v", seq)
	}
}
