// Package core defines the CONMan architectural model from Ballani &
// Francis, "CONMan: A Step towards Network Manageability" (SIGCOMM 2007):
// devices with globally unique identifiers, protocol modules addressed as
// <module name, module-id, device-id> tuples, the generic module
// abstraction (pipes, switch, filter, performance, security, dependencies;
// the paper's Table II), and the protocol-independent primitives the
// network manager uses to configure the network (the paper's Table I).
//
// Everything in this package is protocol-agnostic on purpose: the whole
// point of CONMan is that the management plane never sees GRE keys, MPLS
// labels or VLAN IDs. Protocol modules (internal/modules/...) translate
// these abstract components into concrete protocol state.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// DeviceID is a globally unique, topology-independent device identifier.
// The paper notes it can carry cryptographic meaning (hash of a public
// key); here it is an opaque string.
type DeviceID string

// ModuleID identifies a module uniquely within one device.
type ModuleID string

// ModuleName names a protocol ("IPv4", "GRE", ...) or an application
// (possibly a URI). Module names are how connectable-modules and
// peerable-modules lists are expressed.
type ModuleName string

// Well-known module names used throughout the reproduction. The paper
// writes "IP" in figures and "IPv4" in connectable lists; we canonicalise
// on these spellings and display "IP" for IPv4 in figure-style output.
const (
	NameETH   ModuleName = "ETH"
	NameIPv4  ModuleName = "IPv4"
	NameIPv6  ModuleName = "IPv6"
	NameGRE   ModuleName = "GRE"
	NameMPLS  ModuleName = "MPLS"
	NameVLAN  ModuleName = "VLAN"
	NameUDP   ModuleName = "UDP"
	NameTCP   ModuleName = "TCP"
	NameIPSec ModuleName = "IPSec"
	NameIKE   ModuleName = "IKE"
	NameIGP   ModuleName = "IGP"
)

// Display returns the figure-style spelling of a module name ("IP" for
// IPv4), used when rendering paper artifacts.
func (n ModuleName) Display() string {
	if n == NameIPv4 {
		return "IP"
	}
	return string(n)
}

// ModuleRef is the <module name, module-id, device-id> tuple that uniquely
// refers to a module anywhere in the network (paper §II).
type ModuleRef struct {
	Name   ModuleName `json:"name"`
	Module ModuleID   `json:"module"`
	Device DeviceID   `json:"device"`
}

// Ref is a convenience constructor for ModuleRef.
func Ref(name ModuleName, dev DeviceID, mod ModuleID) ModuleRef {
	return ModuleRef{Name: name, Module: mod, Device: dev}
}

// String renders the reference in the paper's "<IP,A,g>" notation.
// Plain concatenation, not fmt: the rendering doubles as the map key
// for graph nodes and diff indexes, so it sits on the reconcile hot
// path at store scale.
func (r ModuleRef) String() string {
	return "<" + r.Name.Display() + "," + string(r.Device) + "," + string(r.Module) + ">"
}

// IsZero reports whether the reference is unset.
func (r ModuleRef) IsZero() bool { return r == ModuleRef{} }

// ParseModuleRef parses the "<IP,A,g>" notation produced by
// ModuleRef.String. It accepts both "IP" and "IPv4" spellings.
func ParseModuleRef(s string) (ModuleRef, error) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, "<") || !strings.HasSuffix(t, ">") {
		return ModuleRef{}, fmt.Errorf("core: module ref %q: want \"<name,device,module>\"", s)
	}
	parts := strings.Split(t[1:len(t)-1], ",")
	if len(parts) != 3 {
		return ModuleRef{}, fmt.Errorf("core: module ref %q: want 3 comma-separated fields", s)
	}
	name := ModuleName(strings.TrimSpace(parts[0]))
	if name == "IP" {
		name = NameIPv4
	}
	return ModuleRef{
		Name:   name,
		Device: DeviceID(strings.TrimSpace(parts[1])),
		Module: ModuleID(strings.TrimSpace(parts[2])),
	}, nil
}

// PipeID identifies a pipe. Pipe identifiers are allocated by the module
// that owns the pipe endpoint (for up/down pipes) or by the device (for
// physical pipes) and are referred to by the NM when installing switch
// rules.
type PipeID string

// PipeEnd distinguishes the three kinds of pipe attachment a module has:
// up pipes toward modules above it, down pipes toward modules below it,
// and physical pipes (actual network links; only some modules, notably
// ETH, have them).
type PipeEnd uint8

const (
	EndUp PipeEnd = iota
	EndDown
	EndPhy
)

func (e PipeEnd) String() string {
	switch e {
	case EndUp:
		return "up"
	case EndDown:
		return "down"
	case EndPhy:
		return "phy"
	}
	return fmt.Sprintf("PipeEnd(%d)", uint8(e))
}

// SwitchMode is one basic switching configuration, e.g. [down => up]
// (paper §II-C.2). A module advertises the set of modes it supports.
type SwitchMode struct {
	From, To PipeEnd
}

// The basic switching configurations enumerated in the paper, plus the
// [phy => down]/[down => phy] pair that the paper's own VLAN tunneling
// example (Fig 9b: "[P0, Tagged => P1]" where P1 leads downward) implies
// for L2-switch ETH modules.
var (
	SwDownUp   = SwitchMode{EndDown, EndUp}
	SwUpDown   = SwitchMode{EndUp, EndDown}
	SwDownDown = SwitchMode{EndDown, EndDown}
	SwUpUp     = SwitchMode{EndUp, EndUp}
	SwUpPhy    = SwitchMode{EndUp, EndPhy}
	SwPhyUp    = SwitchMode{EndPhy, EndUp}
	SwPhyPhy   = SwitchMode{EndPhy, EndPhy}
	SwPhyDown  = SwitchMode{EndPhy, EndDown}
	SwDownPhy  = SwitchMode{EndDown, EndPhy}
)

func (m SwitchMode) String() string {
	return fmt.Sprintf("[%s => %s]", m.From, m.To)
}

// HeaderEffect is what a switching configuration does to the packet's
// outermost header, as the NM's path finder tracks it (paper §III-C.1):
// modules encapsulate when switching [up=>down] or [up=>phy], decapsulate
// when switching [down=>up] or [phy=>up], and process the header in place
// for [down=>down], [up=>up] and [phy=>phy].
type HeaderEffect uint8

const (
	EffectPush HeaderEffect = iota
	EffectPop
	EffectProcess
)

func (e HeaderEffect) String() string {
	switch e {
	case EffectPush:
		return "push"
	case EffectPop:
		return "pop"
	case EffectProcess:
		return "process"
	}
	return fmt.Sprintf("HeaderEffect(%d)", uint8(e))
}

// Effect returns the header effect of the switching mode. Packets
// entering from a physical pipe have the module's header outermost, so the
// module consumes it; packets exiting to a physical pipe or a down pipe
// from above get the module's header pushed; same-level transits process
// the header in place. [phy => phy] is modelled as process (the L2 switch
// examines but does not change nesting).
func (m SwitchMode) Effect() HeaderEffect {
	if m.From == m.To {
		return EffectProcess
	}
	switch {
	case m.From == EndUp, m.To == EndPhy:
		return EffectPush
	default:
		// down=>up, phy=>up, phy=>down: the module's header comes off.
		return EffectPop
	}
}

// DependencyKind classifies what a module needs before a component can be
// created (paper §II-C.1, §II-F).
type DependencyKind uint8

const (
	// DepTradeoff: the NM must choose performance trade-offs when
	// creating the pipe (e.g. GRE's up-pipe dependency in Table III).
	DepTradeoff DependencyKind = iota
	// DepExternalState: state must be supplied by a control module or
	// the NM itself (e.g. IPsec's keying material).
	DepExternalState
	// DepControlModule: a specific control module must be running.
	DepControlModule
)

func (k DependencyKind) String() string {
	switch k {
	case DepTradeoff:
		return "tradeoff-choice"
	case DepExternalState:
		return "external-state"
	case DepControlModule:
		return "control-module"
	}
	return fmt.Sprintf("DependencyKind(%d)", uint8(k))
}

// Dependency is one declared dependency of a module component. Token is a
// capability token: a control module advertising ProvidesState with the
// same token satisfies the dependency (paper §II-F's "PPP depends on X,
// LCP satisfies X").
type Dependency struct {
	Kind        DependencyKind `json:"kind"`
	Token       string         `json:"token,omitempty"`
	Description string         `json:"description,omitempty"`
}

// Metric is one of the six generic performance metrics of the abstraction
// (paper §II-C.4).
type Metric uint8

const (
	MetricDelay Metric = iota
	MetricJitter
	MetricBandwidth
	MetricLossRate
	MetricErrorRate
	MetricOrdering
)

var metricNames = [...]string{"delay", "jitter", "bandwidth", "loss-rate", "error-rate", "ordering"}

func (m Metric) String() string {
	if int(m) < len(metricNames) {
		return metricNames[m]
	}
	return fmt.Sprintf("Metric(%d)", uint8(m))
}

// ParseMetric maps a metric name back to its value.
func ParseMetric(s string) (Metric, error) {
	for i, n := range metricNames {
		if n == s {
			return Metric(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown metric %q", s)
}

// Tradeoff is an advertised performance trade-off: the module can give up
// the Give metrics to obtain the Get metrics, applicable to traffic on
// pipes of kind Scope. Table III row xi shows GRE advertising
// {[jitter, delay] vs [ordering] | up-pipe} (sequence numbers) and
// {[loss-rate] vs [error-rate] | up-pipe} (checksums) without exposing
// either mechanism.
type Tradeoff struct {
	Give  []Metric `json:"give"`
	Get   []Metric `json:"get"`
	Scope PipeEnd  `json:"scope"`
}

func (t Tradeoff) String() string {
	return fmt.Sprintf("{[%s] vs [%s] | %s-pipe}", metricList(t.Give), metricList(t.Get), t.Scope)
}

func metricList(ms []Metric) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = m.String()
	}
	return strings.Join(parts, ", ")
}

// Key returns a canonical identity for a trade-off so the NM can refer to
// the trade-off it chose when satisfying a pipe dependency.
func (t Tradeoff) Key() string {
	return fmt.Sprintf("%s|%s|%s", metricList(t.Give), metricList(t.Get), t.Scope)
}

// FilterClassifier names one abstract thing a module can filter on:
// other modules, devices, pipes or module types (paper §II-C.3).
type FilterClassifier uint8

const (
	FilterByModule FilterClassifier = iota
	FilterByDevice
	FilterByPipe
	FilterByModuleType
)

func (c FilterClassifier) String() string {
	switch c {
	case FilterByModule:
		return "module"
	case FilterByDevice:
		return "device"
	case FilterByPipe:
		return "pipe"
	case FilterByModuleType:
		return "module-type"
	}
	return fmt.Sprintf("FilterClassifier(%d)", uint8(c))
}

// FilterSpec advertises whether and how a module can filter packets.
type FilterSpec struct {
	Classifiers []FilterClassifier `json:"classifiers,omitempty"`
	Locations   []PipeEnd          `json:"locations,omitempty"`
}

// CanFilter reports whether the module advertises any filtering ability.
func (f FilterSpec) CanFilter() bool { return len(f.Classifiers) > 0 }

// StateSource says whether the switching state that conditions how packets
// are switched is generated locally by the module (through peer
// interaction) or must be provided externally (paper Table II, §II-F).
type StateSource uint8

const (
	StateLocal StateSource = iota
	StateExternal
)

func (s StateSource) String() string {
	if s == StateLocal {
		return "local"
	}
	return "external"
}

// SwitchSpec advertises a module's switching capabilities.
type SwitchSpec struct {
	Modes       []SwitchMode `json:"modes,omitempty"`
	Multicast   bool         `json:"multicast,omitempty"`
	StateSource StateSource  `json:"state_source"`
	// StateDependency, when non-nil, declares that switching state the
	// module cannot derive through local peer interaction can be supplied
	// by a control module advertising ProvidesState with the same token
	// (paper §II-F: an IP module's transit routes come from an IGP). The
	// dependency is advisory — a module whose StateSource is local still
	// switches between directly connected subnets without a provider.
	StateDependency *Dependency `json:"state_dependency,omitempty"`
}

// Supports reports whether mode is among the advertised modes.
func (s SwitchSpec) Supports(mode SwitchMode) bool {
	for _, m := range s.Modes {
		if m == mode {
			return true
		}
	}
	return false
}

// ModesString renders the modes in the paper's Table III/IV style, e.g.
// "[Down => Up],[Up => Down]".
func (s SwitchSpec) ModesString() string {
	parts := make([]string, len(s.Modes))
	for i, m := range s.Modes {
		parts[i] = m.String()
	}
	return strings.Join(parts, ",")
}

// SecuritySpec advertises the ability to secure communication with peer
// modules (paper §II-C.5). If StateDependency is non-nil the keying state
// must be provided externally (IPsec's dependency on IKE); otherwise the
// module negotiates it with its peer (SSL-style).
type SecuritySpec struct {
	Integrity       bool        `json:"integrity,omitempty"`
	Authenticity    bool        `json:"authenticity,omitempty"`
	Confidentiality bool        `json:"confidentiality,omitempty"`
	StateDependency *Dependency `json:"state_dependency,omitempty"`
}

// Offers reports whether any security property is advertised.
func (s SecuritySpec) Offers() bool {
	return s.Integrity || s.Authenticity || s.Confidentiality
}

// EnforcementSpec advertises explicit performance enforcement abilities:
// queuing/shaping or service classes (paper Table II).
type EnforcementSpec struct {
	Queuing        bool     `json:"queuing,omitempty"`
	Shaping        bool     `json:"shaping,omitempty"`
	ServiceClasses []string `json:"service_classes,omitempty"`
}

// PipeSpec describes what a module advertises about one kind of pipe
// (up or down): which module names it can connect to and what must be
// satisfied before such a pipe can be created.
type PipeSpec struct {
	Connectable  []ModuleName `json:"connectable,omitempty"`
	Dependencies []Dependency `json:"dependencies,omitempty"`
}

// CanConnect reports whether the pipe spec allows connecting to a module
// with the given name.
func (p PipeSpec) CanConnect(name ModuleName) bool {
	for _, n := range p.Connectable {
		if n == name {
			return true
		}
	}
	return false
}

// PhysicalPipeInfo describes one physical pipe attached to a module. The
// NM cannot create physical pipes, only discover and enable them; the
// peer fields are filled in once topology discovery has matched both ends.
type PhysicalPipeInfo struct {
	Pipe       PipeID   `json:"pipe"`
	Broadcast  bool     `json:"broadcast,omitempty"`
	Enabled    bool     `json:"enabled"`
	PeerDevice DeviceID `json:"peer_device,omitempty"`
	PeerModule ModuleID `json:"peer_module,omitempty"`
	PeerPipe   PipeID   `json:"peer_pipe,omitempty"`
	// External marks a pipe that leads outside the managed domain
	// (e.g. a customer-facing interface). Such pipes are legal path
	// endpoints even though the NM has no abstraction for the far end.
	External bool `json:"external,omitempty"`
}

// Abstraction is the complete self-description of a module, the thing
// showPotential() returns per module (paper Table II). Control modules use
// ProvidesState to advertise the dependencies they can satisfy (§II-F)
// and typically leave the data-plane fields empty.
type Abstraction struct {
	Ref      ModuleRef          `json:"ref"`
	Kind     ModuleKind         `json:"kind"`
	Up       PipeSpec           `json:"up"`
	Down     PipeSpec           `json:"down"`
	Physical []PhysicalPipeInfo `json:"physical,omitempty"`
	Peerable []ModuleName       `json:"peerable,omitempty"`
	Filter   FilterSpec         `json:"filter"`
	Switch   SwitchSpec         `json:"switch"`

	// PerfReporting lists the counters/metrics the module reports,
	// e.g. "rx-packets/pipe", "tx-packets/pipe".
	PerfReporting []string        `json:"perf_reporting,omitempty"`
	Tradeoffs     []Tradeoff      `json:"tradeoffs,omitempty"`
	Enforcement   EnforcementSpec `json:"enforcement"`
	Security      SecuritySpec    `json:"security"`

	// ProvidesState lists dependency tokens this (control) module can
	// satisfy for data modules.
	ProvidesState []string `json:"provides_state,omitempty"`

	// HandleFields lists the low-level fields this module exports via
	// listFieldsAndValues("pipe:<id>") that a module above may embed in
	// its own configuration (an MPLS NHLFE key inside an IP route).
	// A non-empty list tells the NM the exported values can change
	// independently of the consumer — dependency maintenance (§II-E)
	// must watch them via installTrigger and re-check embedded copies.
	HandleFields []string `json:"handle_fields,omitempty"`

	// Attributes carries coarse, generic hints usable by the NM's path
	// selector without protocol knowledge, e.g. "forwarding" => "fast"
	// for MPLS (the paper's NM prefers the MPLS path because "the MPLS
	// abstraction mentions that it offers good forwarding bandwidth").
	Attributes map[string]string `json:"attributes,omitempty"`
}

// ModuleKind separates data-plane from control-plane modules (§II-C).
type ModuleKind uint8

const (
	KindData ModuleKind = iota
	KindControl
	KindApplication
)

func (k ModuleKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindControl:
		return "control"
	case KindApplication:
		return "application"
	}
	return fmt.Sprintf("ModuleKind(%d)", uint8(k))
}

// Clone returns a deep copy of the abstraction so callers can mutate
// their copy without aliasing the module's own state.
func (a Abstraction) Clone() Abstraction {
	b := a
	b.Up.Connectable = append([]ModuleName(nil), a.Up.Connectable...)
	b.Up.Dependencies = append([]Dependency(nil), a.Up.Dependencies...)
	b.Down.Connectable = append([]ModuleName(nil), a.Down.Connectable...)
	b.Down.Dependencies = append([]Dependency(nil), a.Down.Dependencies...)
	b.Physical = append([]PhysicalPipeInfo(nil), a.Physical...)
	b.Peerable = append([]ModuleName(nil), a.Peerable...)
	b.Filter.Classifiers = append([]FilterClassifier(nil), a.Filter.Classifiers...)
	b.Filter.Locations = append([]PipeEnd(nil), a.Filter.Locations...)
	b.Switch.Modes = append([]SwitchMode(nil), a.Switch.Modes...)
	if a.Switch.StateDependency != nil {
		d := *a.Switch.StateDependency
		b.Switch.StateDependency = &d
	}
	b.PerfReporting = append([]string(nil), a.PerfReporting...)
	b.Tradeoffs = make([]Tradeoff, len(a.Tradeoffs))
	for i, t := range a.Tradeoffs {
		b.Tradeoffs[i] = Tradeoff{
			Give:  append([]Metric(nil), t.Give...),
			Get:   append([]Metric(nil), t.Get...),
			Scope: t.Scope,
		}
	}
	b.Enforcement.ServiceClasses = append([]string(nil), a.Enforcement.ServiceClasses...)
	if a.Security.StateDependency != nil {
		d := *a.Security.StateDependency
		b.Security.StateDependency = &d
	}
	b.ProvidesState = append([]string(nil), a.ProvidesState...)
	b.HandleFields = append([]string(nil), a.HandleFields...)
	if a.Attributes != nil {
		b.Attributes = make(map[string]string, len(a.Attributes))
		for k, v := range a.Attributes {
			b.Attributes[k] = v
		}
	}
	return b
}

// CanPeer reports whether the module may have a peer with the given name.
func (a Abstraction) CanPeer(name ModuleName) bool {
	for _, n := range a.Peerable {
		if n == name {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Actual state (showActual)

// PipeStatus is the operational state of a configured pipe.
type PipeStatus uint8

const (
	PipeCreating PipeStatus = iota
	PipeUp
	PipeDown
)

func (s PipeStatus) String() string {
	switch s {
	case PipeCreating:
		return "creating"
	case PipeUp:
		return "up"
	case PipeDown:
		return "down"
	}
	return fmt.Sprintf("PipeStatus(%d)", uint8(s))
}

// PipeState is the actual state of one pipe of a module.
type PipeState struct {
	ID     PipeID     `json:"id"`
	End    PipeEnd    `json:"end"`
	Other  ModuleRef  `json:"other,omitempty"` // module at the other end (same device) for up/down pipes
	Peer   ModuleRef  `json:"peer,omitempty"`  // remote peer module, if known
	Status PipeStatus `json:"status"`
	RxPkts uint64     `json:"rx_pkts"`
	TxPkts uint64     `json:"tx_pkts"`
}

// SwitchRuleState is an installed switch rule as reported by showActual.
type SwitchRuleState struct {
	ID    string      `json:"id"`
	From  PipeID      `json:"from"`
	To    PipeID      `json:"to"`
	Match *Classifier `json:"match,omitempty"`
	Via   string      `json:"via,omitempty"`
	// MatchResolved/ViaResolved echo the concrete values the NM resolved
	// when the rule was installed (the prefix behind a dst-domain
	// classifier, the address behind a gateway token). Reconciliation
	// diffs them against a fresh resolution, so a SetDomain/SetGateway
	// change after apply surfaces as drift instead of silently diverging.
	MatchResolved string `json:"match_resolved,omitempty"`
	ViaResolved   string `json:"via_resolved,omitempty"`
	// HandleResolved is the canonical form (CanonicalHandle) of the
	// low-level handle fields another module exported and this rule
	// embedded at install time (e.g. the MPLS NHLFE key an IP route
	// points at). Reconciliation compares it against the provider's
	// *current* fields: a mismatch means the provider churned under the
	// rule and the embedded copy is stale (§II-E), so the rule must be
	// reinstalled even though its abstract form still matches.
	HandleResolved string `json:"handle_resolved,omitempty"`
}

// CanonicalHandle renders exported low-level fields in a canonical,
// comparable form: "k1=v1;k2=v2" with keys sorted. An empty map is "".
func CanonicalHandle(fields map[string]string) string {
	if len(fields) == 0 {
		return ""
	}
	keys := make([]string, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(fields[k])
	}
	return b.String()
}

// FilterRuleState is an installed filter rule as reported by showActual.
type FilterRuleState struct {
	ID   string     `json:"id"`
	Rule FilterRule `json:"rule"`
	// ResolvedFields are the concrete protocol fields the module derived
	// from the abstract rule (addresses, ports). Opaque to the NM but
	// reported for operators and for dependency tracking.
	ResolvedFields map[string]string `json:"resolved_fields,omitempty"`
	Hits           uint64            `json:"hits"`
}

// PerfReport carries the generic performance metrics a module reports for
// itself and its pipes.
type PerfReport struct {
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ModuleState is the per-module return of showActual (paper §II-D.1.b).
type ModuleState struct {
	Ref         ModuleRef         `json:"ref"`
	Pipes       []PipeState       `json:"pipes,omitempty"`
	SwitchRules []SwitchRuleState `json:"switch_rules,omitempty"`
	Filters     []FilterRuleState `json:"filters,omitempty"`
	Perf        PerfReport        `json:"perf"`
	// LowLevel exposes resolved protocol fields (tunnel endpoints, keys,
	// labels...) for operators; the NM treats the values as opaque.
	LowLevel map[string]string `json:"low_level,omitempty"`
}

// SortedLowLevel returns the low-level keys in deterministic order, for
// rendering.
func (s ModuleState) SortedLowLevel() []string {
	keys := make([]string, 0, len(s.LowLevel))
	for k := range s.LowLevel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ---------------------------------------------------------------------------
// Primitive requests (create/delete arguments)

// ComponentKind is what create()/delete() operates on.
type ComponentKind uint8

const (
	ComponentPipe ComponentKind = iota
	ComponentSwitchRule
	ComponentFilterRule
	ComponentPerfState
)

func (k ComponentKind) String() string {
	switch k {
	case ComponentPipe:
		return "pipe"
	case ComponentSwitchRule:
		return "switch"
	case ComponentFilterRule:
		return "filter"
	case ComponentPerfState:
		return "perf"
	}
	return fmt.Sprintf("ComponentKind(%d)", uint8(k))
}

// DependencyChoice is the NM's satisfaction of one declared dependency
// when creating a component: for DepTradeoff dependencies it names the
// metrics the NM wants (by trade-off key); for external state it carries
// an opaque value or names the control module to use.
type DependencyChoice struct {
	Token    string `json:"token,omitempty"`
	Tradeoff string `json:"tradeoff,omitempty"` // Tradeoff.Key() of the chosen trade-off
	Value    string `json:"value,omitempty"`
	Provider string `json:"provider,omitempty"` // ModuleRef.String() of a control module
}

// PipeRequest is create(pipe, upper, lower, upperPeer, lowerPeer, deps...):
// it creates the up-down pipe pair between Upper and Lower on one device
// and tells both modules who their remote peers for this pipe are (paper
// §III-B commands (1),(2),(4)). Peers may be zero when unknown, e.g. the
// customer-facing pipe P0 in Fig 7(b).
type PipeRequest struct {
	Upper     ModuleRef          `json:"upper"`
	Lower     ModuleRef          `json:"lower"`
	UpperPeer ModuleRef          `json:"upper_peer,omitempty"`
	LowerPeer ModuleRef          `json:"lower_peer,omitempty"`
	Satisfy   []DependencyChoice `json:"satisfy,omitempty"`
}

// Classifier is an abstract traffic class usable in switch and filter
// rules. The NM only ever names abstract identities (address domains,
// modules, pipes); modules resolve them to protocol fields.
type Classifier struct {
	Kind  string `json:"kind"`  // e.g. "dst-domain", "src-module", "tagged"
	Value string `json:"value"` // e.g. "C1-S2"
}

func (c Classifier) String() string {
	if c.Kind == "tagged" {
		return "Tagged"
	}
	return fmt.Sprintf("%s:%s", strings.TrimPrefix(c.Kind, "dst-domain"), c.Value)
}

// SwitchRule is create(switch, module, from, to [, match, via]): direct
// the module to switch packets between two of its pipes, optionally
// conditioned on an abstract classifier (Fig 7(b) commands (3),(4),(6),...).
// Rules are bidirectional when Bidirectional is set (the paper's simple
// "create (switch, <GRE,A,b>, P1, P2)" form binds both directions).
type SwitchRule struct {
	Module        ModuleRef   `json:"module"`
	From          PipeID      `json:"from"`
	To            PipeID      `json:"to"`
	Match         *Classifier `json:"match,omitempty"`
	Via           string      `json:"via,omitempty"` // abstract gateway token, e.g. "S2-gateway"
	Bidirectional bool        `json:"bidirectional,omitempty"`
}

// FilterAction is what a filter rule does with matching packets.
type FilterAction uint8

const (
	ActionDrop FilterAction = iota
	ActionAllow
)

func (a FilterAction) String() string {
	if a == ActionDrop {
		return "drop"
	}
	return "allow"
}

// FilterRule is create(filter, module, ...): "drop packets from module
// <IP,B,y> going to <FOO,C,z>" (paper §II-E). All match fields are
// abstract; the inspecting module resolves them with listFieldsAndValues.
type FilterRule struct {
	Module     ModuleRef    `json:"module"` // inspecting module
	FromModule *ModuleRef   `json:"from_module,omitempty"`
	ToModule   *ModuleRef   `json:"to_module,omitempty"`
	FromDevice *DeviceID    `json:"from_device,omitempty"`
	ToDevice   *DeviceID    `json:"to_device,omitempty"`
	OnPipe     *PipeID      `json:"on_pipe,omitempty"`
	Action     FilterAction `json:"action"`
}

// DeleteRequest identifies a component to delete.
type DeleteRequest struct {
	Kind   ComponentKind `json:"kind"`
	Module ModuleRef     `json:"module"`
	ID     string        `json:"id"` // PipeID or rule id
}

// ---------------------------------------------------------------------------
// Primitive names (Table I)

// Primitive enumerates the CONMan functions of the architecture, Table I.
type Primitive string

const (
	PrimShowPotential       Primitive = "showPotential"
	PrimShowActual          Primitive = "showActual"
	PrimCreate              Primitive = "create"
	PrimDelete              Primitive = "delete"
	PrimConveyMessage       Primitive = "conveyMessage"
	PrimListFieldsAndValues Primitive = "listFieldsAndValues"
)

// Primitives lists all primitives in Table I order.
func Primitives() []Primitive {
	return []Primitive{
		PrimShowPotential, PrimShowActual, PrimCreate,
		PrimDelete, PrimConveyMessage, PrimListFieldsAndValues,
	}
}
