package core

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestModuleRefString(t *testing.T) {
	cases := []struct {
		ref  ModuleRef
		want string
	}{
		{Ref(NameIPv4, "A", "g"), "<IP,A,g>"},
		{Ref(NameGRE, "B", "b'"), "<GRE,B,b'>"},
		{Ref(NameETH, "C", "f"), "<ETH,C,f>"},
	}
	for _, c := range cases {
		if got := c.ref.String(); got != c.want {
			t.Errorf("%+v -> %q, want %q", c.ref, got, c.want)
		}
		back, err := ParseModuleRef(c.want)
		if err != nil {
			t.Fatalf("parse %q: %v", c.want, err)
		}
		if back != c.ref {
			t.Errorf("round trip %q -> %+v, want %+v", c.want, back, c.ref)
		}
	}
}

func TestParseModuleRefErrors(t *testing.T) {
	for _, bad := range []string{"", "IP,A,g", "<IP,A>", "<a,b,c,d>"} {
		if _, err := ParseModuleRef(bad); err == nil {
			t.Errorf("ParseModuleRef(%q): want error", bad)
		}
	}
}

func TestQuickModuleRefRoundTrip(t *testing.T) {
	f := func(dev, mod string) bool {
		for _, s := range []string{dev, mod} {
			for _, r := range s {
				if r == ',' || r == '<' || r == '>' || r == '\n' {
					return true // skip separators; identifiers exclude them
				}
			}
			if s == "" {
				return true
			}
		}
		ref := Ref(NameGRE, DeviceID(dev), ModuleID(mod))
		back, err := ParseModuleRef(ref.String())
		return err == nil && back == ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchModeEffects(t *testing.T) {
	cases := []struct {
		mode SwitchMode
		want HeaderEffect
	}{
		{SwUpDown, EffectPush},
		{SwUpPhy, EffectPush},
		{SwDownPhy, EffectPush},
		{SwDownUp, EffectPop},
		{SwPhyUp, EffectPop},
		{SwPhyDown, EffectPop},
		{SwDownDown, EffectProcess},
		{SwUpUp, EffectProcess},
		{SwPhyPhy, EffectProcess},
	}
	for _, c := range cases {
		if got := c.mode.Effect(); got != c.want {
			t.Errorf("%s effect = %s, want %s", c.mode, got, c.want)
		}
	}
}

func TestSwitchModeString(t *testing.T) {
	if s := SwDownUp.String(); s != "[down => up]" {
		t.Errorf("got %q", s)
	}
	if s := SwPhyPhy.String(); s != "[phy => phy]" {
		t.Errorf("got %q", s)
	}
}

func TestMetricParseRoundTrip(t *testing.T) {
	for m := MetricDelay; m <= MetricOrdering; m++ {
		back, err := ParseMetric(m.String())
		if err != nil || back != m {
			t.Errorf("metric %v round trip: %v %v", m, back, err)
		}
	}
	if _, err := ParseMetric("bogus"); err == nil {
		t.Error("want error for unknown metric")
	}
}

func TestTradeoffKeyAndString(t *testing.T) {
	to := Tradeoff{
		Give:  []Metric{MetricJitter, MetricDelay},
		Get:   []Metric{MetricOrdering},
		Scope: EndUp,
	}
	if got := to.String(); got != "{[jitter, delay] vs [ordering] | up-pipe}" {
		t.Errorf("String = %q", got)
	}
	if got := to.Key(); got != "jitter, delay|ordering|up" {
		t.Errorf("Key = %q", got)
	}
}

func TestPipeSpecCanConnect(t *testing.T) {
	p := PipeSpec{Connectable: []ModuleName{NameIPv4, NameGRE}}
	if !p.CanConnect(NameIPv4) || !p.CanConnect(NameGRE) || p.CanConnect(NameETH) {
		t.Error("CanConnect wrong")
	}
}

func TestAbstractionClone(t *testing.T) {
	a := Abstraction{
		Ref:      Ref(NameGRE, "A", "l"),
		Up:       PipeSpec{Connectable: []ModuleName{NameIPv4}},
		Peerable: []ModuleName{NameGRE},
		Switch:   SwitchSpec{Modes: []SwitchMode{SwUpDown}},
		Tradeoffs: []Tradeoff{{
			Give: []Metric{MetricLossRate}, Get: []Metric{MetricErrorRate}, Scope: EndUp,
		}},
		Security:   SecuritySpec{StateDependency: &Dependency{Kind: DepExternalState, Token: "keys"}},
		Attributes: map[string]string{"k": "v"},
	}
	b := a.Clone()
	b.Up.Connectable[0] = NameETH
	b.Switch.Modes[0] = SwPhyPhy
	b.Tradeoffs[0].Get[0] = MetricDelay
	b.Security.StateDependency.Token = "changed"
	b.Attributes["k"] = "changed"
	if a.Up.Connectable[0] != NameIPv4 || a.Switch.Modes[0] != SwUpDown ||
		a.Tradeoffs[0].Get[0] != MetricErrorRate ||
		a.Security.StateDependency.Token != "keys" || a.Attributes["k"] != "v" {
		t.Error("Clone aliases original state")
	}
}

func TestAbstractionJSONRoundTrip(t *testing.T) {
	a := Abstraction{
		Ref:      Ref(NameIPv4, "A", "g"),
		Up:       PipeSpec{Connectable: []ModuleName{NameIPv4, NameGRE}},
		Down:     PipeSpec{Connectable: []ModuleName{NameETH}},
		Peerable: []ModuleName{NameIPv4},
		Switch: SwitchSpec{
			Modes: []SwitchMode{SwDownUp, SwDownDown}, StateSource: StateLocal,
		},
		Attributes: map[string]string{"address-domain": "C1"},
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Abstraction
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Ref != a.Ref || len(back.Switch.Modes) != 2 ||
		back.Attributes["address-domain"] != "C1" {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestSwitchSpecSupports(t *testing.T) {
	s := SwitchSpec{Modes: []SwitchMode{SwDownUp, SwUpDown}}
	if !s.Supports(SwDownUp) || s.Supports(SwPhyPhy) {
		t.Error("Supports wrong")
	}
	if got := s.ModesString(); got != "[down => up],[up => down]" {
		t.Errorf("ModesString = %q", got)
	}
}

func TestFilterSpecCanFilter(t *testing.T) {
	var f FilterSpec
	if f.CanFilter() {
		t.Error("empty spec filters")
	}
	f.Classifiers = []FilterClassifier{FilterByModule}
	if !f.CanFilter() {
		t.Error("spec with classifiers does not filter")
	}
}

func TestSecuritySpecOffers(t *testing.T) {
	if (SecuritySpec{}).Offers() {
		t.Error("empty security offers")
	}
	if !(SecuritySpec{Integrity: true}).Offers() {
		t.Error("integrity not offered")
	}
}

func TestCanPeer(t *testing.T) {
	a := Abstraction{Peerable: []ModuleName{NameGRE}}
	if !a.CanPeer(NameGRE) || a.CanPeer(NameIPv4) {
		t.Error("CanPeer wrong")
	}
}

func TestPrimitivesTableI(t *testing.T) {
	ps := Primitives()
	want := []Primitive{
		PrimShowPotential, PrimShowActual, PrimCreate,
		PrimDelete, PrimConveyMessage, PrimListFieldsAndValues,
	}
	if len(ps) != len(want) {
		t.Fatalf("got %d primitives", len(ps))
	}
	for i := range want {
		if ps[i] != want[i] {
			t.Errorf("primitive %d = %s, want %s", i, ps[i], want[i])
		}
	}
}

func TestEnumStrings(t *testing.T) {
	// Exercising all String methods keeps renders stable.
	for _, s := range []string{
		EndUp.String(), EndDown.String(), EndPhy.String(),
		EffectPush.String(), EffectPop.String(), EffectProcess.String(),
		DepTradeoff.String(), DepExternalState.String(), DepControlModule.String(),
		FilterByModule.String(), FilterByDevice.String(), FilterByPipe.String(), FilterByModuleType.String(),
		StateLocal.String(), StateExternal.String(),
		KindData.String(), KindControl.String(), KindApplication.String(),
		PipeCreating.String(), PipeUp.String(), PipeDown.String(),
		ComponentPipe.String(), ComponentSwitchRule.String(), ComponentFilterRule.String(), ComponentPerfState.String(),
		ActionDrop.String(), ActionAllow.String(),
	} {
		if s == "" {
			t.Error("empty enum string")
		}
	}
	if NameIPv4.Display() != "IP" || NameGRE.Display() != "GRE" {
		t.Error("Display wrong")
	}
}

func TestModuleStateSortedLowLevel(t *testing.T) {
	st := ModuleState{LowLevel: map[string]string{"b": "2", "a": "1", "c": "3"}}
	keys := st.SortedLowLevel()
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("keys = %v", keys)
	}
}

func TestClassifierString(t *testing.T) {
	if got := (Classifier{Kind: "tagged"}).String(); got != "Tagged" {
		t.Errorf("got %q", got)
	}
}
