package experiments

import (
	"fmt"
	"net/netip"
	"time"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
	"conman/internal/modules"
	"conman/internal/msg"
	"conman/internal/netsim"
	"conman/internal/nm"
)

// rid names the k-th router (1-based) with zero padding so lexicographic
// device order matches path order (the modules' initiator rule relies on
// it, as the paper's implicit ordering does on device identity). Three
// digits keep the ordering correct up to n=999 for the scale suite.
func rid(k int) core.DeviceID { return core.DeviceID(fmt.Sprintf("R%03d", k)) }

// Chain wiring convention: every router attaches to its left neighbour
// (toward customer site D) on chainLeft and to its right neighbour
// (toward site E) on chainRight. The boundary cases fall out of the same
// rule: R1's chainLeft port and Rn's chainRight port face the customer
// routers and are therefore the external edge ports.
const (
	chainLeft  = "eth0"
	chainRight = "eth1"
)

// linkSubnet returns the ISP /24 for the link between router k and k+1.
// The link index spans two octets (10.100.k.0/24 for k < 256, then
// 10.101.0.0/24, ...) so chains up to the rid naming ceiling of n=999
// get unique subnets.
func linkSubnet(k int) (left, right netip.Prefix) {
	hi, lo := 100+k>>8, k&0xff
	return pfx(fmt.Sprintf("10.%d.%d.1/24", hi, lo)), pfx(fmt.Sprintf("10.%d.%d.2/24", hi, lo))
}

// newBareBase creates the transport-and-manager core of a testbed:
// netsim, management channel, NM. A nil factory selects the in-process
// Hub; passing one (e.g. UDP sockets) runs the management plane over
// that transport instead. Customers, devices and domain knowledge are
// the caller's business.
func newBareBase(factory EndpointFactory) (*Testbed, error) {
	tb := &Testbed{
		Net: netsim.New(), NM: nm.New(),
		Devices:  make(map[core.DeviceID]*device.Device),
		Customer: make(map[core.DeviceID]*kernel.Kernel),
		factory:  factory,
	}
	if tb.factory == nil {
		tb.Hub = channel.NewHub()
		tb.factory = func(name string) (channel.Endpoint, error) {
			return tb.Hub.Endpoint(name), nil
		}
	}
	nmEP, err := tb.newEndpoint(msg.NMName)
	if err != nil {
		return nil, err
	}
	tb.NM.AttachChannel(nmEP)
	return tb, nil
}

// newLinearBase creates the shared parts of a linear-n testbed: netsim,
// management channel, NM, customer routers D and E at the ends. A nil
// factory selects the in-process Hub; passing one (e.g. UDP sockets)
// runs the management plane over that transport instead.
func newLinearBase(factory EndpointFactory) (*Testbed, error) {
	tb, err := newBareBase(factory)
	if err != nil {
		return nil, err
	}
	d, err := customerRouter(tb.Net, "D", pfx("192.168.0.1/24"), pfx("10.0.1.1/24"), ip("192.168.0.2"))
	if err != nil {
		return nil, err
	}
	e, err := customerRouter(tb.Net, "E", pfx("192.168.1.1/24"), pfx("10.0.2.1/24"), ip("192.168.1.2"))
	if err != nil {
		return nil, err
	}
	tb.Customer["D"], tb.Customer["E"] = d, e
	tb.NM.SetDomain("C1-S1", "10.0.1.0/24")
	tb.NM.SetDomain("C1-S2", "10.0.2.0/24")
	tb.NM.SetGateway("S1-gateway", "192.168.0.1")
	tb.NM.SetGateway("S2-gateway", "192.168.1.1")
	return tb, nil
}

func (tb *Testbed) startAll() error {
	for _, dev := range tb.Devices {
		ep, err := tb.newEndpoint(string(dev.ID))
		if err != nil {
			return err
		}
		dev.MA.AttachChannel(ep)
	}
	for _, dev := range tb.Devices {
		if err := dev.MA.Start(); err != nil {
			return err
		}
	}
	if err := tb.waitAnnounced(5 * time.Second); err != nil {
		return err
	}
	return tb.NM.DiscoverAll()
}

// waitAnnounced waits until every managed device's hello and topology
// report reached the NM: instantaneous on the synchronous Hub, a short
// poll on asynchronous transports (UDP).
func (tb *Testbed) waitAnnounced(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := 0
		for id := range tb.Devices {
			if info, ok := tb.NM.Device(id); ok && info.Hello && info.Topology.Device != "" {
				ready++
			}
		}
		if ready == len(tb.Devices) {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("experiments: only %d/%d devices announced before timeout", ready, len(tb.Devices))
		}
		time.Sleep(time.Millisecond)
	}
}

func (tb *Testbed) wire(n int) error {
	if err := connect(tb.Net, "D-R1",
		netsim.PortID{Device: "D", Name: "eth0"},
		netsim.PortID{Device: rid(1), Name: chainLeft}); err != nil {
		return err
	}
	for k := 1; k < n; k++ {
		if err := connect(tb.Net, fmt.Sprintf("R%d-R%d", k, k+1),
			netsim.PortID{Device: rid(k), Name: chainRight},
			netsim.PortID{Device: rid(k + 1), Name: chainLeft}); err != nil {
			return err
		}
	}
	return connect(tb.Net, "Rn-E",
		netsim.PortID{Device: rid(n), Name: chainRight},
		netsim.PortID{Device: "E", Name: "eth0"})
}

// BuildLinearGRE builds a chain of n >= 3 routers with GRE modules at the
// ends, for the Table VI GRE row (messages: 3n+2 sent, 2n+2 received).
// Without routing control modules transit routers only reach directly
// connected subnets, so the data plane forwards end-to-end at n=3 only;
// BuildLinearGREIGP opens the scenario at any n.
func BuildLinearGRE(n int) (*Testbed, error) { return BuildLinearGREOver(n, nil) }

// BuildLinearGREOver is BuildLinearGRE with the management channel
// running over the given transport (nil = in-process Hub).
func BuildLinearGREOver(n int, factory EndpointFactory) (*Testbed, error) {
	return buildLinearGRE(n, factory, false)
}

// BuildLinearGREIGP builds the GRE chain with an IGP routing control
// module (§II-F) on every router: the NM's compiled configuration then
// includes one pipe per IGP adjacency, the modules flood link state and
// install transit routes, and the tunnel forwards end-to-end at any n.
func BuildLinearGREIGP(n int) (*Testbed, error) { return BuildLinearGREIGPOver(n, nil) }

// BuildLinearGREIGPOver is BuildLinearGREIGP over the given transport
// (nil = in-process Hub).
func BuildLinearGREIGPOver(n int, factory EndpointFactory) (*Testbed, error) {
	return buildLinearGRE(n, factory, true)
}

func buildLinearGRE(n int, factory EndpointFactory, withIGP bool) (*Testbed, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: linear chain needs n >= 2, got %d", n)
	}
	tb, err := newLinearBase(factory)
	if err != nil {
		return nil, err
	}
	for k := 1; k <= n; k++ {
		dev, err := device.New(tb.Net, rid(k), kernel.RoleRouter, "eth0", "eth1")
		if err != nil {
			return nil, err
		}
		tb.Devices[rid(k)] = dev
		edge := k == 1 || k == n
		custIface, coreIface := chainLeft, chainRight
		if k == n {
			custIface, coreIface = chainRight, chainLeft
		}

		e0 := modules.NewETH(dev.MA, "e0", false, "eth0")
		e1 := modules.NewETH(dev.MA, "e1", false, "eth1")
		if edge {
			dev.MarkExternal(custIface)
			if custIface == "eth0" {
				e0.RegisterPhysical(dev.MA, "eth0")
				e1.RegisterPhysical(dev.MA)
			} else {
				e0.RegisterPhysical(dev.MA)
				e1.RegisterPhysical(dev.MA, "eth1")
			}
		} else {
			e0.RegisterPhysical(dev.MA)
			e1.RegisterPhysical(dev.MA)
		}
		dev.AddModule(e0)
		dev.AddModule(e1)

		ispAddrs := map[string]netip.Prefix{}
		if k > 1 {
			_, right := linkSubnet(k - 1)
			ispAddrs[chainLeft] = right
		}
		if k < n {
			left, _ := linkSubnet(k)
			ispAddrs[chainRight] = left
		}
		var ips *modules.IP
		if edge {
			custAddr := pfx("192.168.0.2/24")
			if k == n {
				custAddr = pfx("192.168.1.2/24")
			}
			ipc, err := modules.NewIP(dev.MA, "ipc", "C1", map[string]netip.Prefix{custIface: custAddr})
			if err != nil {
				return nil, err
			}
			dev.AddModule(ipc)
			ips, err = modules.NewIP(dev.MA, "ips", "ISP", map[string]netip.Prefix{coreIface: ispAddrs[coreIface]})
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			ips, err = modules.NewIP(dev.MA, "ips", "ISP", ispAddrs)
			if err != nil {
				return nil, err
			}
		}
		if withIGP {
			ips.AllowConnectable(core.NameIGP)
			dev.AddModule(modules.NewIGP(dev.MA, "igp"))
		}
		dev.AddModule(ips)
		if edge {
			dev.AddModule(modules.NewGRE(dev.MA, "gre"))
		}
	}
	if err := tb.wire(n); err != nil {
		return nil, err
	}
	if err := tb.startAll(); err != nil {
		return nil, err
	}
	return tb, nil
}

// BuildLinearMPLS builds a chain of n routers: edge routers carry the
// customer IP module and MPLS; transit routers are pure LSRs (MPLS + two
// ETH modules; their link addresses live in the kernel).
func BuildLinearMPLS(n int) (*Testbed, error) { return BuildLinearMPLSOver(n, nil) }

// BuildLinearMPLSOver is BuildLinearMPLS over the given transport.
func BuildLinearMPLSOver(n int, factory EndpointFactory) (*Testbed, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: linear chain needs n >= 2, got %d", n)
	}
	tb, err := newLinearBase(factory)
	if err != nil {
		return nil, err
	}
	for k := 1; k <= n; k++ {
		dev, err := device.New(tb.Net, rid(k), kernel.RoleRouter, "eth0", "eth1")
		if err != nil {
			return nil, err
		}
		tb.Devices[rid(k)] = dev
		edge := k == 1 || k == n
		custIface := chainLeft
		if k == n {
			custIface = chainRight
		}
		e0 := modules.NewETH(dev.MA, "e0", false, "eth0")
		e1 := modules.NewETH(dev.MA, "e1", false, "eth1")
		if edge {
			dev.MarkExternal(custIface)
		}
		if edge && custIface == "eth0" {
			e0.RegisterPhysical(dev.MA, "eth0")
			e1.RegisterPhysical(dev.MA)
		} else if edge {
			e0.RegisterPhysical(dev.MA)
			e1.RegisterPhysical(dev.MA, "eth1")
		} else {
			e0.RegisterPhysical(dev.MA)
			e1.RegisterPhysical(dev.MA)
		}
		dev.AddModule(e0)
		dev.AddModule(e1)

		// ISP link addresses (kernel-level for transit LSRs).
		if k > 1 {
			_, right := linkSubnet(k - 1)
			if err := dev.Kernel.AddAddr("eth0", right); err != nil {
				return nil, err
			}
		}
		if k < n {
			left, _ := linkSubnet(k)
			iface := "eth1"
			if err := dev.Kernel.AddAddr(iface, left); err != nil {
				return nil, err
			}
		}
		if edge {
			custAddr := pfx("192.168.0.2/24")
			if k == n {
				custAddr = pfx("192.168.1.2/24")
			}
			ipc, err := modules.NewIP(dev.MA, "ipc", "C1", map[string]netip.Prefix{custIface: custAddr})
			if err != nil {
				return nil, err
			}
			dev.AddModule(ipc)
		}
		dev.AddModule(modules.NewMPLS(dev.MA, "mpls", uint32(1000*(k+1)+1)))
	}
	if err := tb.wire(n); err != nil {
		return nil, err
	}
	if err := tb.startAll(); err != nil {
		return nil, err
	}
	return tb, nil
}

// BuildLinearVLAN builds a chain of n L2 switches with QinQ tunnel ports
// at the ends.
func BuildLinearVLAN(n int) (*Testbed, error) { return BuildLinearVLANOver(n, nil) }

// BuildLinearVLANOver is BuildLinearVLAN over the given transport.
func BuildLinearVLANOver(n int, factory EndpointFactory) (*Testbed, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: linear chain needs n >= 2, got %d", n)
	}
	tb, err := newLinearBase(factory)
	if err != nil {
		return nil, err
	}
	// L2 endpoints share one subnet.
	d, e := tb.Customer["D"], tb.Customer["E"]
	resetCustomerL2(d, pfx("192.168.5.1/24"), ip("192.168.5.2"), pfx("10.0.2.0/24"))
	resetCustomerL2(e, pfx("192.168.5.2/24"), ip("192.168.5.1"), pfx("10.0.1.0/24"))
	tb.NM.SetGateway("S1-gateway", "192.168.5.1")
	tb.NM.SetGateway("S2-gateway", "192.168.5.2")

	for k := 1; k <= n; k++ {
		edge := k == 1 || k == n
		custIface := chainLeft
		if k == n {
			custIface = chainRight
		}
		dev, err := device.New(tb.Net, rid(k), kernel.RoleSwitch, "eth0", "eth1")
		if err != nil {
			return nil, err
		}
		tb.Devices[rid(k)] = dev
		eth := modules.NewETH(dev.MA, "eth", true, "eth0", "eth1")
		if edge {
			dev.MarkExternal(custIface)
			eth.RegisterPhysical(dev.MA, custIface)
		} else {
			eth.RegisterPhysical(dev.MA)
		}
		dev.AddModule(eth)
		dev.AddModule(modules.NewVLAN(dev.MA, "vlan", 22, "C1", 1504))
	}
	if err := tb.wire(n); err != nil {
		return nil, err
	}
	if err := tb.startAll(); err != nil {
		return nil, err
	}
	return tb, nil
}

// resetCustomerL2 rewires a customer router for the shared-subnet L2
// scenario (replacing the defaults newLinearBase installed).
func resetCustomerL2(k *kernel.Kernel, uplink netip.Prefix, peer netip.Addr, remoteSite netip.Prefix) {
	k.DelRoutes("main", "eth0")
	_ = k.AddAddr("eth0", uplink)
	_ = k.AddRoute("", kernel.Route{Dst: remoteSite, Via: peer, Dev: "eth0", MPLSKey: -1})
}

// LinearGoal is the site-to-site goal on a linear chain.
func LinearGoal(n int, tagClassified bool) nm.Goal {
	fromMod, toMod := core.ModuleID("e0"), core.ModuleID("e1")
	if tagClassified {
		fromMod, toMod = "eth", "eth"
	}
	return nm.Goal{
		From:          core.Ref(core.NameETH, rid(1), fromMod),
		To:            core.Ref(core.NameETH, rid(n), toMod),
		FromDomain:    "C1-S1",
		ToDomain:      "C1-S2",
		FromGateway:   "S1-gateway",
		ToGateway:     "S2-gateway",
		TrafficDomain: "C1",
		TagClassified: tagClassified,
	}
}
