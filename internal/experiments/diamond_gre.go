package experiments

import (
	"fmt"
	"net/netip"

	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
	"conman/internal/modules"
	"conman/internal/netsim"
	"conman/internal/nm"
)

// BuildDiamondGRE constructs a routed diamond for the GRE reroute
// scenarios: edge routers EL and ER with customer sites D and E, and two
// equivalent transit routers B1 and B2. The GRE tunnel between the edges
// crosses one arm; cutting the wire on that arm reroutes it over the
// other, and the IGP control modules re-converge so the tunnel's cached
// endpoint addresses — which sit on the now-dead links — stay reachable
// over the surviving arm:
//
//	D -- EL == B1 == ER -- E
//	      \\        //
//	       === B2 ===
//
// (EL-B1/B1-ER carry 10.100.1.0/24 and 10.100.2.0/24; the B2 arm carries
// 10.200.1.0/24 and 10.200.2.0/24.)
func BuildDiamondGRE() (*Testbed, error) {
	tb, err := newLinearBase(nil)
	if err != nil {
		return nil, err
	}

	type routerSpec struct {
		id       core.DeviceID
		ports    []string
		external string // customer-facing port ("" for transit)
		custAddr netip.Prefix
		ispAddrs map[string]netip.Prefix
	}
	specs := []routerSpec{
		{
			id: "EL", ports: []string{"eth0", "eth1", "eth2"}, external: "eth0",
			custAddr: pfx("192.168.0.2/24"),
			ispAddrs: map[string]netip.Prefix{"eth1": pfx("10.100.1.1/24"), "eth2": pfx("10.200.1.1/24")},
		},
		{
			id: "B1", ports: []string{"eth0", "eth1"},
			ispAddrs: map[string]netip.Prefix{"eth0": pfx("10.100.1.2/24"), "eth1": pfx("10.100.2.1/24")},
		},
		{
			id: "B2", ports: []string{"eth0", "eth1"},
			ispAddrs: map[string]netip.Prefix{"eth0": pfx("10.200.1.2/24"), "eth1": pfx("10.200.2.1/24")},
		},
		{
			id: "ER", ports: []string{"eth0", "eth1", "eth2"}, external: "eth2",
			custAddr: pfx("192.168.1.2/24"),
			ispAddrs: map[string]netip.Prefix{"eth0": pfx("10.100.2.2/24"), "eth1": pfx("10.200.2.2/24")},
		},
	}
	for _, spec := range specs {
		dev, err := device.New(tb.Net, spec.id, kernel.RoleRouter, spec.ports...)
		if err != nil {
			return nil, err
		}
		tb.Devices[spec.id] = dev
		if spec.external != "" {
			dev.MarkExternal(spec.external)
		}
		for i, port := range spec.ports {
			eth := modules.NewETH(dev.MA, core.ModuleID(fmt.Sprintf("e%d", i)), false, port)
			if port == spec.external {
				eth.RegisterPhysical(dev.MA, port)
			} else {
				eth.RegisterPhysical(dev.MA)
			}
			dev.AddModule(eth)
		}
		if spec.external != "" {
			ipc, err := modules.NewIP(dev.MA, "ipc", "C1", map[string]netip.Prefix{spec.external: spec.custAddr})
			if err != nil {
				return nil, err
			}
			dev.AddModule(ipc)
		}
		ips, err := modules.NewIP(dev.MA, "ips", "ISP", spec.ispAddrs)
		if err != nil {
			return nil, err
		}
		ips.AllowConnectable(core.NameIGP)
		dev.AddModule(ips)
		dev.AddModule(modules.NewIGP(dev.MA, "igp"))
		if spec.external != "" {
			dev.AddModule(modules.NewGRE(dev.MA, "gre"))
		}
	}

	for _, l := range []struct {
		name string
		a, b netsim.PortID
	}{
		{"D-EL", netsim.PortID{Device: "D", Name: "eth0"}, netsim.PortID{Device: "EL", Name: "eth0"}},
		{"EL-B1", netsim.PortID{Device: "EL", Name: "eth1"}, netsim.PortID{Device: "B1", Name: "eth0"}},
		{"EL-B2", netsim.PortID{Device: "EL", Name: "eth2"}, netsim.PortID{Device: "B2", Name: "eth0"}},
		{"B1-ER", netsim.PortID{Device: "B1", Name: "eth1"}, netsim.PortID{Device: "ER", Name: "eth0"}},
		{"B2-ER", netsim.PortID{Device: "B2", Name: "eth1"}, netsim.PortID{Device: "ER", Name: "eth1"}},
		{"ER-E", netsim.PortID{Device: "ER", Name: "eth2"}, netsim.PortID{Device: "E", Name: "eth0"}},
	} {
		if err := connect(tb.Net, l.name, l.a, l.b); err != nil {
			return nil, err
		}
	}
	if err := tb.startAll(); err != nil {
		return nil, err
	}
	return tb, nil
}

// DiamondGREGoal is the site-to-site goal across the routed diamond.
func DiamondGREGoal() nm.Goal {
	return nm.Goal{
		From:          core.Ref(core.NameETH, "EL", "e0"),
		To:            core.Ref(core.NameETH, "ER", "e2"),
		FromDomain:    "C1-S1",
		ToDomain:      "C1-S2",
		FromGateway:   "S1-gateway",
		ToGateway:     "S2-gateway",
		TrafficDomain: "C1",
	}
}
