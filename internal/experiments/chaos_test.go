package experiments

// Multi-failure convergence tests on generated topologies (ROADMAP
// item 4): the chaos harness kills k wires/devices/pipes concurrently
// on fat-tree, ring and Waxman fabrics and asserts every registered
// intent re-converges through the daemon alone — zero manual Reconcile
// calls — with data-plane delivery re-verified after the heal. The
// plan-level suite exercises generation + compile at n in the
// thousands, where data-plane testbeds would be too heavy but the
// NM's planning path still has to hold up.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"conman/internal/core"
	"conman/internal/nm"
	"conman/internal/topo"
)

// mustPairs re-derives the builder's intent endpoint pairs for the
// min-cut guard (CrossCorePairs is deterministic).
func mustPairs(t *testing.T, w *topo.Wiring, n int) []topo.Pair {
	t.Helper()
	pairs, err := w.CrossCorePairs(n)
	if err != nil {
		t.Fatal(err)
	}
	return pairs
}

// startConverged builds the VLAN fabric for w with pairsN customer
// pairs, submits every pair's intent, starts a daemon and waits for
// initial convergence with delivery verified.
func startConverged(t *testing.T, w *topo.Wiring, pairsN int, cfg nm.DaemonConfig) (*Testbed, []SharedPair, *nm.Daemon, func()) {
	t.Helper()
	tb, pairs, err := BuildTopoVLAN(w, pairsN)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
			t.Fatal(err)
		}
	}
	d, stop := tb.StartDaemon(cfg)
	if err := d.WaitConverged(0, daemonWait); err != nil {
		stop()
		t.Fatalf("initial convergence on %s %s: %v", w.Family, w.Param, err)
	}
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(97000+100*i)); err != nil {
			stop()
			t.Fatalf("pair %d before chaos: %v", p.Index, err)
		}
	}
	return tb, pairs, d, stop
}

// verifyAll re-checks delivery for every pair after a heal.
func verifyAll(t *testing.T, tb *Testbed, pairs []SharedPair, base uint32) {
	t.Helper()
	for i, p := range pairs {
		if err := tb.VerifyPair(p, base+uint32(100*i)); err != nil {
			t.Errorf("pair %d after chaos: %v", p.Index, err)
		}
	}
}

// TestChaosFatTreeKillWires kills k in {1, 2, 4} wires concurrently on
// a fat-tree(k=4) fabric carrying two VLAN intents across pods.
func TestChaosFatTreeKillWires(t *testing.T) {
	for _, kills := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("kills=%d", kills), func(t *testing.T) {
			w, err := topo.FatTree(4)
			if err != nil {
				t.Fatal(err)
			}
			tb, pairs, d, stop := startConverged(t, w, 2, nm.DaemonConfig{})
			defer stop()
			rep, err := tb.RunChaos(d, w, mustPairs(t, w, 2), ChaosSpec{Seed: int64(40 + kills), Wires: kills})
			if err != nil {
				t.Fatalf("chaos (report %+v): %v", rep, err)
			}
			if len(rep.Wires) != kills {
				t.Fatalf("killed %d wires, want %d", len(rep.Wires), kills)
			}
			verifyAll(t, tb, pairs, 97500)
		})
	}
}

// TestChaosRingWiresAndDevice kills two wires and one device at once
// on a 64-switch ring. The ring is only 2-connected, so this is the
// tightest guard workout: most candidates would strand an intent and
// must be rejected.
func TestChaosRingWiresAndDevice(t *testing.T) {
	w, err := topo.Ring(64)
	if err != nil {
		t.Fatal(err)
	}
	tb, pairs, d, stop := startConverged(t, w, 2, nm.DaemonConfig{})
	defer stop()
	rep, err := tb.RunChaos(d, w, mustPairs(t, w, 2), ChaosSpec{Seed: 7, Wires: 2, Devices: 1, Timeout: 2 * daemonWait})
	if err != nil {
		t.Fatalf("chaos (report %+v): %v", rep, err)
	}
	if rep.Guarded == 0 {
		t.Error("expected the min-cut guard to reject candidates on a ring")
	}
	verifyAll(t, tb, pairs, 98000)
}

// TestChaosWaxmanSeedSweep runs seed-swept episodes on random Waxman
// graphs: different seeds generate different fabrics AND different
// kill choices, with the kill budget growing across the sweep.
func TestChaosWaxmanSeedSweep(t *testing.T) {
	for i, seed := range []int64{1, 2, 3} {
		kills := 1 << i // 1, 2, 4
		t.Run(fmt.Sprintf("seed=%d kills=%d", seed, kills), func(t *testing.T) {
			w, err := topo.Waxman(64, 0.7, 0.25, seed)
			if err != nil {
				t.Fatal(err)
			}
			tb, pairs, d, stop := startConverged(t, w, 2, nm.DaemonConfig{})
			defer stop()
			rep, err := tb.RunChaos(d, w, mustPairs(t, w, 2), ChaosSpec{Seed: seed, Wires: kills})
			if err != nil {
				t.Fatalf("chaos (report %+v): %v", rep, err)
			}
			verifyAll(t, tb, pairs, 98500)
		})
	}
}

// TestChaosMixedFaultClasses injects wire cuts, a device death and
// tunnel-pipe deletions in the same episode on a fat-tree: topology
// events and notifies overlap, which is exactly the regime where a
// level-triggered loop must still converge.
func TestChaosMixedFaultClasses(t *testing.T) {
	w, err := topo.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	tb, pairs, d, stop := startConverged(t, w, 2, nm.DaemonConfig{})
	defer stop()
	rep, err := tb.RunChaos(d, w, mustPairs(t, w, 2),
		ChaosSpec{Seed: 11, Wires: 2, Devices: 1, Pipes: 2, Timeout: 2 * daemonWait})
	if err != nil {
		t.Fatalf("chaos (report %+v): %v", rep, err)
	}
	if rep.Faults() != 5 {
		t.Fatalf("injected %d faults, want 5 (%+v)", rep.Faults(), rep)
	}
	verifyAll(t, tb, pairs, 99000)
}

// TestChaosRoutedRingGREIGP runs the routed family end to end: a ring
// of IGP routers with a GRE tunnel intent across it; a wire cut must
// reroute the tunnel the long way around, with the IGP re-flooding and
// transit routes reinstalled — all daemon-driven.
func TestChaosRoutedRingGREIGP(t *testing.T) {
	w, err := topo.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	tb, pairs, err := BuildTopoGREIGP(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("GRE-IP tunnel")); err != nil {
			t.Fatal(err)
		}
	}
	d, stop := tb.StartDaemon(nm.DaemonConfig{})
	defer stop()
	if err := d.WaitConverged(0, daemonWait); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	for _, p := range pairs {
		if err := tb.VerifyPair(p, 99300); err != nil {
			t.Fatalf("pair %d before chaos: %v", p.Index, err)
		}
	}
	rep, err := tb.RunChaos(d, w, mustPairs(t, w, 1), ChaosSpec{Seed: 5, Wires: 1, Timeout: 2 * daemonWait})
	if err != nil {
		t.Fatalf("chaos (report %+v): %v", rep, err)
	}
	verifyAll(t, tb, pairs, 99400)
}

// TestMinCutGuardNeverStrands is the guard's property test: across
// families and seeds, every admitted kill set leaves all intent
// endpoint pairs connected (so the daemon is never asked to satisfy an
// impossible goal).
func TestMinCutGuardNeverStrands(t *testing.T) {
	fabrics := []*topo.Wiring{}
	for _, gen := range []func() (*topo.Wiring, error){
		func() (*topo.Wiring, error) { return topo.FatTree(4) },
		func() (*topo.Wiring, error) { return topo.Ring(32) },
		func() (*topo.Wiring, error) { return topo.Torus(4, 8) },
		func() (*topo.Wiring, error) { return topo.Waxman(48, 0.7, 0.25, 9) },
	} {
		w, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		fabrics = append(fabrics, w)
	}
	for _, w := range fabrics {
		pairs := mustPairs(t, w, 2)
		admitted := 0
		for seed := int64(0); seed < 20; seed++ {
			spec := ChaosSpec{Seed: seed, Wires: 3, Devices: 1}
			wires, devs, _, err := pickChaosKills(w, pairs, spec, rand.New(rand.NewSource(seed)))
			if err != nil {
				// Some (fabric, seed) combinations legitimately cannot
				// yield the full budget; that is a refusal, not a strand.
				continue
			}
			admitted++
			deadW := map[string]bool{}
			for _, n := range wires {
				deadW[n] = true
			}
			deadD := map[core.DeviceID]bool{}
			for _, dv := range devs {
				deadD[dv] = true
			}
			for _, p := range pairs {
				if !w.ConnectedWithout(deadW, deadD, p.A, p.B) {
					t.Errorf("%s %s seed %d: kill set %v+%v strands pair %v",
						w.Family, w.Param, seed, wires, devs, p)
				}
			}
		}
		if admitted == 0 {
			t.Errorf("%s %s: guard admitted no kill set across 20 seeds", w.Family, w.Param)
		}
	}
}

// TestTopoPlanLevelScale proves generation + planning at thousand-
// device scale: build a lite fabric (no customer routers), plan one
// cross-core intent, and require a non-empty compiled plan. Path
// lengths stay bounded through fabric choice (torus diameter grows as
// sqrt(n), ring as n/2), pinning the planner's behavior beyond the
// line without the data-plane cost.
func TestTopoPlanLevelScale(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-device plan suite skipped in -short")
	}
	cases := []struct {
		name string
		gen  func() (*topo.Wiring, error)
	}{
		{"ring/512", func() (*topo.Wiring, error) { return topo.Ring(512) }},
		{"torus/1024", func() (*topo.Wiring, error) { return topo.Torus(32, 32) }},
		{"torus/4096", func() (*topo.Wiring, error) { return topo.Torus(64, 64) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := tc.gen()
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			tb, intents, err := BuildTopoVLANLite(w, 1)
			if err != nil {
				t.Fatal(err)
			}
			build := time.Since(start)
			start = time.Now()
			plan, err := tb.NM.Plan(intents[0])
			if err != nil {
				t.Fatalf("plan on %d devices: %v", len(w.Devices), err)
			}
			if plan.Empty() || plan.Path == nil {
				t.Fatalf("plan on %d devices compiled to nothing", len(w.Devices))
			}
			t.Logf("%s: build %v, plan %v, %d create batches", tc.name, build, time.Since(start), len(plan.Creates))
		})
	}
}

// TestDaemonEventBurstSurvival is the event-feed stress test: flap
// several wires concurrently, repeatedly, against a daemon with a
// deliberately tiny subscription buffer. Events WILL be dropped — that
// is the point — but the level-triggered loop must neither deadlock
// nor lose convergence: WaitConverged returns after the burst and
// delivery still verifies, because reconcile reads actual state
// instead of trusting the (lossy) event stream.
func TestDaemonEventBurstSurvival(t *testing.T) {
	w, err := topo.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	tb, pairs, d, stop := startConverged(t, w, 2, nm.DaemonConfig{Buffer: 2})
	defer stop()

	droppedBefore := tb.NM.EventsDropped()
	gen := d.ConvergeGen()
	const flappers, toggles = 6, 8
	var wg sync.WaitGroup
	for i := 0; i < flappers; i++ {
		wire := w.Wires[(i*5)%len(w.Wires)].Name
		wg.Add(1)
		go func(wire string) {
			defer wg.Done()
			for k := 0; k < toggles; k++ {
				if err := tb.Net.SetMediumUp(wire, false); err != nil {
					t.Error(err)
					return
				}
				if err := tb.Net.SetMediumUp(wire, true); err != nil {
					t.Error(err)
					return
				}
			}
		}(wire)
	}
	wg.Wait()

	if err := d.WaitConverged(gen, 2*daemonWait); err != nil {
		t.Fatalf("daemon lost convergence under event burst: %v", err)
	}
	if !d.Status().Healthy() {
		t.Errorf("daemon unhealthy after burst: %+v", d.Status())
	}
	verifyAll(t, tb, pairs, 99600)
	t.Logf("burst dropped %d events (buffer=2)", tb.NM.EventsDropped()-droppedBefore)
}
