package experiments

import "conman/internal/nm"

// nmBuild builds the NM's potential graph for a testbed.
func nmBuild(tb *Testbed) (*nm.Graph, error) { return nm.BuildGraph(tb.NM) }

// nmSpec turns a goal into a path-finder spec.
func nmSpec(goal nm.Goal) nm.FindSpec {
	return nm.FindSpec{From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain}
}

// pathWith selects the first path with the given description.
func pathWith(paths []*nm.Path, desc string) *nm.Path {
	for _, p := range paths {
		if p.Describe() == desc {
			return p
		}
	}
	return nil
}

// ConfigureVPN is the one-call high-level API the examples use: find all
// paths for the goal, pick one (preferring the given description when
// non-empty, the paper's selector otherwise), compile and execute it.
func ConfigureVPN(tb *Testbed, goal nm.Goal, prefer string) (*nm.Path, []nm.DeviceScript, error) {
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		return nil, nil, err
	}
	paths, _, err := g.FindPaths(nmSpec(goal))
	if err != nil {
		return nil, nil, err
	}
	var chosen *nm.Path
	if prefer != "" {
		chosen = pathWith(paths, prefer)
	}
	if chosen == nil {
		chosen = nm.SelectPath(paths)
	}
	if chosen == nil {
		return nil, nil, errNoPath
	}
	scripts, err := tb.NM.Compile(chosen, goal)
	if err != nil {
		return nil, nil, err
	}
	if err := tb.NM.Execute(scripts); err != nil {
		return nil, nil, err
	}
	return chosen, scripts, nil
}

type noPathError struct{}

func (noPathError) Error() string { return "experiments: no path satisfies the goal" }

var errNoPath = noPathError{}
