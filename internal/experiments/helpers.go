package experiments

import "conman/internal/nm"

// nmBuild builds the NM's potential graph for a testbed.
func nmBuild(tb *Testbed) (*nm.Graph, error) { return nm.BuildGraph(tb.NM) }

// nmSpec turns a goal into a path-finder spec.
func nmSpec(goal nm.Goal) nm.FindSpec {
	return nm.FindSpec{From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain}
}

// pathWith selects the first path with the given description.
func pathWith(paths []*nm.Path, desc string) *nm.Path {
	for _, p := range paths {
		if p.Describe() == desc {
			return p
		}
	}
	return nil
}

// VPNIntent wraps a goal as a named intent; prefer pins a path flavour
// by description ("MPLS", "GRE-IP tunnel", "VLAN tunnel") or "" for the
// paper's automatic selector.
func VPNIntent(goal nm.Goal, prefer string) nm.Intent {
	name := prefer
	if name == "" {
		name = "vpn"
	}
	return nm.Intent{Name: name, Goal: goal, Prefer: prefer}
}

// ConfigureVPN is the one-call high-level API the examples use: plan the
// goal as an intent and apply the reconciliation. On a fresh testbed the
// plan is pure creation, so this behaves exactly like the old one-shot
// pipeline; on a partially (or differently) configured one it heals or
// reconfigures. Returns the chosen path and the create batches applied.
func ConfigureVPN(tb *Testbed, goal nm.Goal, prefer string) (*nm.Path, []nm.DeviceScript, error) {
	plan, err := tb.NM.Plan(VPNIntent(goal, prefer))
	if err != nil {
		return nil, nil, err
	}
	if err := tb.NM.Apply(plan); err != nil {
		return nil, nil, err
	}
	return plan.Path, plan.Creates, nil
}
