package experiments

import (
	"net/netip"
	"testing"

	"conman/internal/core"
	"conman/internal/modules"
	"conman/internal/msg"
)

// TestFilterResolutionAndDependencyMaintenance reproduces §II-E: the NM
// installs "drop packets from module X going to <FOO,C,z>" on an IP
// module; the module resolves the abstract endpoints to addresses and a
// port via listFieldsAndValues; when the application moves to another
// port, the installed trigger fires and the NM re-resolves the filter —
// the classic "application was started on some other port" failure mode
// handled automatically.
func TestFilterResolutionAndDependencyMaintenance(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	// Configure the GRE VPN so sites can exchange UDP.
	if _, _, err := ConfigureVPN(tb, Fig4Goal(), "GRE-IP tunnel"); err != nil {
		t.Fatal(err)
	}

	// A "FOO" application module on device C at port 592 (the paper's
	// example values), reachable at C's customer-side address.
	appAddr := ip("192.168.1.2")
	foo := modules.NewApp(tb.Devices["C"].MA, "FOO", "z", appAddr, 592)
	tb.Devices["C"].AddModule(foo)

	// Sanity: before any filter, datagrams reach the app. (D's kernel
	// originates them; the path is direct IP routing to C.)
	if err := tb.Customer["E"].SendUDP(ip("192.168.1.1"), appAddr, 4000, 592, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got := foo.Received(); len(got) != 1 || string(got[0]) != "hello" {
		t.Fatalf("app received %v", got)
	}

	// The NM asks the inspecting IP module on C to drop traffic to the
	// app — in abstract terms only.
	target := foo.Ref()
	rule := core.FilterRule{
		Module:   core.Ref(core.NameIPv4, "C", "k"),
		ToModule: &target,
		Action:   core.ActionDrop,
	}
	ruleID, err := tb.NM.CreateFilter(rule)
	if err != nil {
		t.Fatal(err)
	}
	if ruleID == "" {
		t.Fatal("no rule id")
	}
	// The module resolved the app's concrete fields itself.
	states, err := tb.NM.ShowActual("C")
	if err != nil {
		t.Fatal(err)
	}
	var resolved map[string]string
	for _, st := range states {
		for _, f := range st.Filters {
			if f.ID == ruleID {
				resolved = f.ResolvedFields
			}
		}
	}
	if resolved["dst"] != appAddr.String() || resolved["dst-port"] != "592" {
		t.Fatalf("resolved fields = %v", resolved)
	}

	// Blocked now.
	if err := tb.Customer["E"].SendUDP(ip("192.168.1.1"), appAddr, 4000, 592, []byte("blocked")); err != nil {
		t.Fatal(err)
	}
	if got := foo.Received(); len(got) != 1 {
		t.Fatalf("filter did not block: %d datagrams", len(got))
	}

	// Dependency maintenance: watch the app, re-resolve on change.
	if _, err := tb.NM.InstallTrigger(foo.Ref(), "self"); err != nil {
		t.Fatal(err)
	}
	reResolved := make(chan struct{}, 1)
	tb.NM.SetOnTrigger(func(tr msg.Trigger) {
		// The NM's dependency tracker re-resolves the dependent filter.
		k, _ := tb.Devices["C"].MA.LocalModule("k")
		if ipMod, ok := k.(*modules.IP); ok {
			if err := ipMod.ReResolveFilter(ruleID); err == nil {
				reResolved <- struct{}{}
			}
		}
	})

	// The application moves to port 593 — without maintenance the old
	// filter would now miss it.
	foo.SetPort(593)
	select {
	case <-reResolved:
	default:
		t.Fatal("trigger did not fire or filter was not re-resolved")
	}
	if err := tb.Customer["E"].SendUDP(ip("192.168.1.1"), appAddr, 4000, 593, []byte("after-move")); err != nil {
		t.Fatal(err)
	}
	if got := foo.Received(); len(got) != 1 {
		t.Fatalf("re-resolved filter did not block the new port: %d datagrams", len(got))
	}

	// Deleting the filter restores delivery.
	if err := tb.NM.Delete(core.DeleteRequest{
		Kind: core.ComponentFilterRule, Module: rule.Module, ID: ruleID,
	}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Customer["E"].SendUDP(ip("192.168.1.1"), appAddr, 4000, 593, []byte("open-again")); err != nil {
		t.Fatal(err)
	}
	if got := foo.Received(); len(got) != 2 || string(got[1]) != "open-again" {
		t.Fatalf("after delete: %v", got)
	}
}

// TestSelfTestPrimitive exercises §II-D.2 through the NM.
func TestSelfTestPrimitive(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConfigureVPN(tb, Fig4Goal(), "GRE-IP tunnel"); err != nil {
		t.Fatal(err)
	}
	greA := core.Ref(core.NameGRE, "A", "l")
	ok, detail, err := tb.NM.SelfTest(greA, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("self-test failed: %s", detail)
	}
	// Cut the core link: the self-test must localise the fault.
	if err := tb.Net.SetMediumUp("BC", false); err != nil {
		t.Fatal(err)
	}
	ok, _, err = tb.NM.SelfTest(greA, "P1")
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("self-test passed across a cut wire")
	}
}

// TestShowActualExposesNegotiatedState verifies operators can see the
// low-level values the modules derived (keys, endpoints) without the NM
// needing them.
func TestShowActualExposesNegotiatedState(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConfigureVPN(tb, Fig4Goal(), "GRE-IP tunnel"); err != nil {
		t.Fatal(err)
	}
	states, err := tb.NM.ShowActual("A")
	if err != nil {
		t.Fatal(err)
	}
	var greState *core.ModuleState
	for i, st := range states {
		if st.Ref.Name == core.NameGRE {
			greState = &states[i]
		}
	}
	if greState == nil {
		t.Fatal("no GRE state")
	}
	found := false
	for _, k := range greState.SortedLowLevel() {
		v := greState.LowLevel[k]
		if len(k) > 7 && k[:7] == "tunnel:" {
			found = true
			for _, want := range []string{"local=204.9.168.1", "remote=204.9.169.1", "ikey=1001", "okey=2001"} {
				if !containsStr(v, want) {
					t.Errorf("tunnel state missing %q: %s", want, v)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no tunnel low-level state: %v", greState.LowLevel)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPipeDeletion verifies delete() tears down a tunnel.
func TestPipeDeletion(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConfigureVPN(tb, Fig4Goal(), "GRE-IP tunnel"); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(100); err != nil {
		t.Fatal(err)
	}
	// Delete the GRE up-pipe on A: the module removes its tunnel.
	if err := tb.NM.Delete(core.DeleteRequest{
		Kind:   core.ComponentPipe,
		Module: core.Ref(core.NameGRE, "A", "l"),
		ID:     "P1",
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Devices["A"].Kernel.Tunnel("gre-P1-P2"); ok {
		t.Fatal("tunnel survived pipe deletion")
	}
	// Traffic no longer flows.
	before := len(tb.Customer["E"].ProbeEchoes())
	if err := tb.Customer["D"].SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 101); err != nil {
		t.Fatal(err)
	}
	if got := len(tb.Customer["E"].ProbeEchoes()); got != before {
		t.Fatal("traffic still flows after pipe deletion")
	}
}

func TestFloodChannelRunsWholeVPN(t *testing.T) {
	// The self-bootstrapping channel can carry the entire configuration:
	// rebuild Fig 4 but attach everything through flood nodes.
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	// Re-attach: NM on device A's flood node, MAs on their own.
	tb.NM.AttachChannel(tb.Devices["A"].FloodNode().Endpoint(msg.NMName))
	for _, id := range []core.DeviceID{"A", "B", "C"} {
		dev := tb.Devices[id]
		dev.MA.AttachChannel(dev.FloodNode().Endpoint(string(id)))
		if err := dev.MA.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.NM.DiscoverAll(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConfigureVPN(tb, Fig4Goal(), "MPLS"); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(777); err != nil {
		t.Fatal(err)
	}
}

var _ = netip.Addr{}
