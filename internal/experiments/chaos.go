package experiments

// Multi-failure chaos harness: inject k concurrent faults — wire cuts,
// device deaths, pipe deletions — into a daemon-managed testbed built
// from a generated topology, then assert that every registered intent
// re-converges autonomously (WaitConverged, zero manual Reconcile
// calls). Faults are chosen by a seeded RNG under a minimum-cut guard:
// a candidate kill is admitted only if every intent's endpoint pair
// stays connected in the surviving fabric, so the intents remain
// satisfiable and "the daemon did not converge" can only mean a daemon
// bug, not an impossible goal. This is the harness that can falsify
// the daemon's level-triggered claim (lost events cost a pass, never
// correctness) under overlapping failures — one cut at a time never
// could.

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"conman/internal/core"
	"conman/internal/nm"
	"conman/internal/topo"
)

// ChaosSpec is one chaos episode: how many of each fault to inject,
// chosen deterministically from Seed.
type ChaosSpec struct {
	// Seed drives every random choice of the episode.
	Seed int64
	// Wires, Devices and Pipes are the kill budgets per fault class.
	// Wires and devices are picked from the fabric under the min-cut
	// guard; pipes are picked from the currently applied configuration
	// of the registered intents.
	Wires   int
	Devices int
	Pipes   int
	// Timeout bounds the wait for re-convergence (default 30s).
	Timeout time.Duration
}

// ChaosReport records what an episode actually killed.
type ChaosReport struct {
	Wires   []string
	Devices []core.DeviceID
	Pipes   []core.DeleteRequest
	// Guarded counts candidates the minimum-cut guard rejected.
	Guarded int
}

// Faults returns the total number of injected faults.
func (r *ChaosReport) Faults() int {
	return len(r.Wires) + len(r.Devices) + len(r.Pipes)
}

// pickChaosKills selects the episode's wire and device victims: a
// seeded shuffle per fault class, each candidate admitted only if all
// protected endpoint pairs stay connected after it (on top of every
// kill already admitted). Intent endpoint devices are never killed.
func pickChaosKills(w *topo.Wiring, protect []topo.Pair, spec ChaosSpec, rng *rand.Rand) (wires []string, devs []core.DeviceID, guarded int, err error) {
	deadWires := make(map[string]bool)
	deadDevs := make(map[core.DeviceID]bool)
	endpoints := make(map[core.DeviceID]bool)
	for _, p := range protect {
		endpoints[p.A], endpoints[p.B] = true, true
	}
	allOK := func() bool {
		for _, p := range protect {
			if !w.ConnectedWithout(deadWires, deadDevs, p.A, p.B) {
				return false
			}
		}
		return true
	}

	devCands := make([]core.DeviceID, 0, len(w.Devices))
	for _, d := range w.Devices {
		if !endpoints[d.ID] {
			devCands = append(devCands, d.ID)
		}
	}
	rng.Shuffle(len(devCands), func(i, j int) { devCands[i], devCands[j] = devCands[j], devCands[i] })
	for _, d := range devCands {
		if len(devs) == spec.Devices {
			break
		}
		deadDevs[d] = true
		if allOK() {
			devs = append(devs, d)
		} else {
			delete(deadDevs, d)
			guarded++
		}
	}
	if len(devs) < spec.Devices {
		return nil, nil, guarded, fmt.Errorf("experiments: only %d/%d killable devices on %s %s (guard rejected %d)",
			len(devs), spec.Devices, w.Family, w.Param, guarded)
	}

	wireCands := make([]topo.Wire, len(w.Wires))
	copy(wireCands, w.Wires)
	rng.Shuffle(len(wireCands), func(i, j int) { wireCands[i], wireCands[j] = wireCands[j], wireCands[i] })
	for _, wi := range wireCands {
		if len(wires) == spec.Wires {
			break
		}
		// Wires already severed by a device kill are not separate faults.
		if deadDevs[wi.A.Device] || deadDevs[wi.B.Device] {
			continue
		}
		deadWires[wi.Name] = true
		if allOK() {
			wires = append(wires, wi.Name)
		} else {
			delete(deadWires, wi.Name)
			guarded++
		}
	}
	if len(wires) < spec.Wires {
		return nil, nil, guarded, fmt.Errorf("experiments: only %d/%d killable wires on %s %s (guard rejected %d)",
			len(wires), spec.Wires, w.Family, w.Param, guarded)
	}
	return wires, devs, guarded, nil
}

// pickChaosPipes selects up to n applied tunnel pipes (VLAN/GRE/MPLS
// modules) from the daemon's registered intents, skipping devices
// already marked dead. Deleting one simulates configuration loss — the
// §III-C "pipe getting killed" fault — which surfaces to the daemon as
// a notify, not a topology event.
func (tb *Testbed) pickChaosPipes(d *nm.Daemon, n int, dead map[core.DeviceID]bool, rng *rand.Rand) ([]core.DeleteRequest, error) {
	if n == 0 {
		return nil, nil
	}
	seen := make(map[core.DeviceID]bool)
	var cands []core.DeleteRequest
	for _, ih := range d.Status().Intents {
		for _, dev := range ih.Devices {
			if seen[dev] || dead[dev] {
				continue
			}
			seen[dev] = true
			states, err := tb.NM.ShowActual(dev)
			if err != nil {
				return nil, err
			}
			for _, ms := range states {
				switch ms.Ref.Name {
				case core.NameVLAN, core.NameGRE, core.NameMPLS:
				default:
					continue
				}
				for _, p := range ms.Pipes {
					cands = append(cands, core.DeleteRequest{
						Kind:   core.ComponentPipe,
						Module: ms.Ref,
						ID:     string(p.ID),
					})
				}
			}
		}
	}
	if len(cands) < n {
		return nil, fmt.Errorf("experiments: only %d applied tunnel pipes available, need %d", len(cands), n)
	}
	rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	return cands[:n], nil
}

// RunChaos executes one chaos episode against a running daemon: pick
// victims (seeded, min-cut-guarded), inject every fault concurrently,
// and wait for the daemon to reconverge on its own. It returns an
// error if convergence times out, the daemon reports unhealthy state,
// or any intent still rides a killed device afterwards. protect lists
// the intent endpoint pairs (fabric edge devices) the guard must keep
// connected.
func (tb *Testbed) RunChaos(d *nm.Daemon, w *topo.Wiring, protect []topo.Pair, spec ChaosSpec) (*ChaosReport, error) {
	timeout := spec.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	wires, devs, guarded, err := pickChaosKills(w, protect, spec, rng)
	if err != nil {
		return nil, err
	}
	dead := make(map[core.DeviceID]bool, len(devs))
	for _, dv := range devs {
		dead[dv] = true
	}
	pipes, err := tb.pickChaosPipes(d, spec.Pipes, dead, rng)
	if err != nil {
		return nil, err
	}
	report := &ChaosReport{Wires: wires, Devices: devs, Pipes: pipes, Guarded: guarded}

	gen := d.ConvergeGen()
	var wg sync.WaitGroup
	errs := make(chan error, report.Faults())
	for _, name := range wires {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			errs <- tb.Net.SetMediumUp(name, false)
		}(name)
	}
	for _, dv := range devs {
		wg.Add(1)
		go func(dv core.DeviceID) {
			defer wg.Done()
			errs <- tb.KillDevice(dv)
		}(dv)
	}
	for _, req := range pipes {
		wg.Add(1)
		go func(req core.DeleteRequest) {
			defer wg.Done()
			errs <- tb.NM.Delete(req)
		}(req)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		if e != nil {
			return report, fmt.Errorf("experiments: fault injection: %w", e)
		}
	}

	if err := d.WaitConverged(gen, timeout); err != nil {
		return report, fmt.Errorf("experiments: daemon did not reconverge after %d faults: %w", report.Faults(), err)
	}
	st := d.Status()
	if !st.Healthy() {
		return report, fmt.Errorf("experiments: daemon unhealthy after chaos: converged=%v lastErr=%q dirty=%v",
			st.Converged, st.LastError, st.Dirty)
	}
	for _, ih := range st.Intents {
		for _, dev := range ih.Devices {
			if dead[dev] {
				return report, fmt.Errorf("experiments: intent %s still rides killed device %s", ih.Name, dev)
			}
		}
	}
	return report, nil
}
