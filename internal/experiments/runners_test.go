package experiments

import (
	"strings"
	"testing"

	"conman/internal/core"
	"conman/internal/legacy"
)

func TestTable3GREAbstraction(t *testing.T) {
	abs, rendered, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	// Row-by-row checks against the paper's Table III.
	if got := abs.Ref; got != core.Ref(core.NameGRE, "A", "l") {
		t.Errorf("name = %s", got)
	}
	if len(abs.Up.Connectable) != 1 || abs.Up.Connectable[0] != core.NameIPv4 {
		t.Errorf("up connectable = %v, want IPv4 only", abs.Up.Connectable)
	}
	if len(abs.Up.Dependencies) != 1 || abs.Up.Dependencies[0].Kind != core.DepTradeoff {
		t.Errorf("up dependencies = %v, want trade-off choice", abs.Up.Dependencies)
	}
	if len(abs.Down.Connectable) != 1 || abs.Down.Connectable[0] != core.NameIPv4 {
		t.Errorf("down connectable = %v", abs.Down.Connectable)
	}
	if len(abs.Down.Dependencies) != 0 {
		t.Errorf("down dependencies = %v, want none", abs.Down.Dependencies)
	}
	if len(abs.Physical) != 0 {
		t.Errorf("physical pipes = %v, want none", abs.Physical)
	}
	if len(abs.Peerable) != 1 || abs.Peerable[0] != core.NameGRE {
		t.Errorf("peerable = %v, want GRE", abs.Peerable)
	}
	if abs.Filter.CanFilter() {
		t.Error("filter should be nil")
	}
	if !abs.Switch.Supports(core.SwUpDown) || !abs.Switch.Supports(core.SwDownUp) || len(abs.Switch.Modes) != 2 {
		t.Errorf("switch modes = %v", abs.Switch.Modes)
	}
	if len(abs.Tradeoffs) != 2 {
		t.Fatalf("tradeoffs = %v, want 2", abs.Tradeoffs)
	}
	if abs.Tradeoffs[0].Get[0] != core.MetricOrdering {
		t.Errorf("first tradeoff gets %v, want ordering", abs.Tradeoffs[0].Get)
	}
	if abs.Tradeoffs[1].Get[0] != core.MetricErrorRate {
		t.Errorf("second tradeoff gets %v, want error-rate", abs.Tradeoffs[1].Get)
	}
	if abs.Security.Offers() {
		t.Error("security should be nil")
	}
	for _, want := range []string{"<GRE,A,l>", "[up => down],[down => up]", "ordering", "error-rate"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendering missing %q:\n%s", want, rendered)
		}
	}
}

func TestTable4DeviceAModules(t *testing.T) {
	out, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	// Spot checks against Table IV.
	for _, want := range []string{
		"<ETH,A,a>",
		"customer-facing",
		"<MPLS,A,o>  Up: {IP}, Down: {ETH}",
		"[down => down]", // MPLS transit capability
		"<IP,A,g>  Up: {IP, GRE}, Down: {IP, GRE, MPLS, ETH}",
		"<GRE,A,l>  Up: {IP}, Down: {IP}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table IV missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Subgraph(t *testing.T) {
	edges, dot, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(edges, "\n")
	// Fig 5's key edges on device A.
	for _, want := range []string{
		"<IP,A,g> -- down/up pipe -- <ETH,A,a>",
		"<IP,A,g> -- down/up pipe -- <GRE,A,l>",
		"<GRE,A,l> -- down/up pipe -- <IP,A,h>",
		"<IP,A,g> -- down/up pipe -- <MPLS,A,o>",
		"<MPLS,A,o> -- down/up pipe -- <ETH,A,b>",
		"<IP,A,g> has [down => down] switching",
		"physical pipe Phy-eth1 -- (external)",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("Fig5 missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(dot, "graph \"A\"") || !strings.Contains(dot, "<GRE,A,l>") {
		t.Errorf("DOT rendering malformed:\n%s", dot)
	}
}

func TestFig6PruningRules(t *testing.T) {
	res, err := Paths9()
	if err != nil {
		t.Fatal(err)
	}
	// Fig 6(b): the path finder must have rejected cross-domain peering
	// (customer IP module peering with ISP IP module) at least once.
	if res.Stats.DomainMismatch == 0 {
		t.Error("no address-domain prunes recorded (Fig 6b rule inactive)")
	}
	// Encapsulation sanity must also have pruned branches.
	if res.Stats.NameMismatch == 0 {
		t.Error("no protocol-sanity prunes recorded")
	}
	if res.Stats.Visited == 0 {
		t.Error("no cycle-avoidance prunes recorded")
	}
}

func TestPaths9Render(t *testing.T) {
	res, err := Paths9()
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "9 paths") {
		t.Errorf("render: %s", out)
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	rows, rendered, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]legacy.TableVRow{}
	for _, r := range rows {
		byName[r.Scenario] = r
	}
	// Today columns: exact paper values (asserted in legacy tests too).
	if c := byName["GRE"].Today; c.SpecificCommands != 6 || c.SpecificVars != 11 {
		t.Errorf("GRE today = %+v", c)
	}
	// CONMan columns: the paper's headline results hold exactly —
	// zero protocol-specific commands everywhere, and only the
	// customer prefix + gateway remain as specific variables for the
	// routed scenarios.
	for _, sc := range []string{"GRE", "MPLS", "VLAN"} {
		c := byName[sc].CONMan
		if c.SpecificCommands != 0 {
			t.Errorf("%s CONMan specific commands = %d, want 0", sc, c.SpecificCommands)
		}
		if c.GenericCommands != 2 {
			t.Errorf("%s CONMan generic commands = %d, want 2 (create pipe/switch)", sc, c.GenericCommands)
		}
	}
	if c := byName["GRE"].CONMan; c.SpecificVars != 2 {
		t.Errorf("GRE CONMan specific vars = %d, want 2 (C1-S2, S1-gateway)", c.SpecificVars)
	}
	if c := byName["MPLS"].CONMan; c.SpecificVars != 2 {
		t.Errorf("MPLS CONMan specific vars = %d, want 2", c.SpecificVars)
	}
	if !strings.Contains(rendered, "Generic Commands") {
		t.Errorf("render:\n%s", rendered)
	}
}

func TestTable6FormulasHold(t *testing.T) {
	rows, rendered, err := Table6([]int{3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Matches() {
			t.Errorf("%s n=%d: sent %d (want %d), received %d (want %d)",
				r.Scenario, r.N, r.Sent, r.WantSent, r.Received, r.WantReceived)
		}
	}
	if testing.Verbose() {
		t.Log("\n" + rendered)
	}
}

func TestTable6DataPlaneAtPaperScale(t *testing.T) {
	// The paper's lab had n=3; verify the chains actually forward at
	// that scale (larger n would need an IGP for transit reachability,
	// which CONMan delegates to control modules, §II-F).
	for _, sc := range []struct {
		name  string
		build func(int) (*Testbed, error)
		desc  string
		tag   bool
	}{
		{"GRE", BuildLinearGRE, "GRE-IP tunnel", false},
		{"MPLS", BuildLinearMPLS, "MPLS", false},
		{"VLAN", BuildLinearVLAN, "VLAN tunnel", true},
	} {
		tb, err := sc.build(3)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		g, err := nmBuild(tb)
		if err != nil {
			t.Fatal(err)
		}
		goal := LinearGoal(3, sc.tag)
		paths, _, err := g.FindPaths(nmSpec(goal))
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		var chosen = pathWith(paths, sc.desc)
		if chosen == nil {
			t.Fatalf("%s: no %q path", sc.name, sc.desc)
		}
		scripts, err := tb.NM.Compile(chosen, goal)
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.NM.Execute(scripts); err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if err := tb.VerifyConnectivity(60000); err != nil {
			t.Errorf("%s chain n=3: %v", sc.name, err)
		}
	}
}

func TestFig7Fig8Fig9Comparisons(t *testing.T) {
	for _, f := range []func() (*ConfigComparison, error){Fig7, Fig8, Fig9Run} {
		cmp, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if !cmp.Verified {
			t.Errorf("%s: data plane not verified", cmp.Scenario)
		}
		out := cmp.Render()
		for _, want := range []string{"Configuration today", "CONMan configuration", "Device-level commands"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s render missing %q", cmp.Scenario, want)
			}
		}
	}
}
