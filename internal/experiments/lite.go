package experiments

// Diamond-lite: the shared-core diamond of BuildDiamondShared without
// the simulated customer routers. Each of the k customers is just an
// external edge port on switches A and C, so setup cost is O(k) port
// registrations on two devices instead of O(k) extra devices and wires.
// That makes the topology usable at store scale (k = 10000) for the
// incremental-reconcile benchmarks: every intent still compiles its own
// per-port Tagged classification rules at the edges while sharing the
// VLAN tunnel across the transit arm, exactly the component mix the
// store's refcounting and delta diffing have to handle.

import (
	"fmt"

	"conman/internal/core"
	"conman/internal/modules"
	"conman/internal/netsim"
	"conman/internal/nm"
)

// LiteIntent returns the connectivity intent of customer j on a
// diamond-lite testbed built with at least j ports: an A-to-C VLAN
// tunnel classified on the customer's dedicated edge ports. Valid for
// any 1 <= j <= the k passed to BuildDiamondLite.
func LiteIntent(j int) nm.Intent {
	port := fmt.Sprintf("cust%d", j)
	return nm.Intent{
		Name:   fmt.Sprintf("vpn-c%d", j),
		Prefer: "VLAN tunnel",
		Goal: nm.Goal{
			From:          core.Ref(core.NameETH, "A", "a"),
			To:            core.Ref(core.NameETH, "C", "c"),
			FromPipe:      modules.PhysPipeID(port),
			ToPipe:        modules.PhysPipeID(port),
			TrafficDomain: fmt.Sprintf("C%d", j),
			TagClassified: true,
		},
	}
}

// BuildDiamondLite constructs the four-switch diamond with k external
// customer ports on each edge switch and no customer routers:
//
//	cust1..custk --\                    /-- cust1..custk
//	                A ==== B1 ==== C
//	                 \\              //
//	                  ==== B2 ====
//
// The returned testbed has all four switches started; submit
// LiteIntent(j) for 1 <= j <= k to configure customer j's tunnel. No
// traffic can be injected (there are no customer routers) — this
// topology exists for store-scale plan/apply/observe workloads, not
// data-plane verification.
func BuildDiamondLite(k int) (*Testbed, error) {
	if k < 1 {
		return nil, fmt.Errorf("experiments: diamond-lite needs k >= 1 customers, got %d", k)
	}
	tb, err := newBareBase(nil)
	if err != nil {
		return nil, err
	}
	custPorts := make([]string, k)
	for j := 1; j <= k; j++ {
		custPorts[j-1] = fmt.Sprintf("cust%d", j)
	}
	if err := mkVLANSwitch(tb, "A", "a", "d", custPorts, []string{"toB1", "toB2"}); err != nil {
		return nil, err
	}
	if err := mkVLANSwitch(tb, "B1", "m1", "v1", nil, []string{"left", "right"}); err != nil {
		return nil, err
	}
	if err := mkVLANSwitch(tb, "B2", "m2", "v2", nil, []string{"left", "right"}); err != nil {
		return nil, err
	}
	if err := mkVLANSwitch(tb, "C", "c", "f", custPorts, []string{"toB1", "toB2"}); err != nil {
		return nil, err
	}
	for _, l := range []struct {
		name string
		a, b netsim.PortID
	}{
		{"A-B1", netsim.PortID{Device: "A", Name: "toB1"}, netsim.PortID{Device: "B1", Name: "left"}},
		{"A-B2", netsim.PortID{Device: "A", Name: "toB2"}, netsim.PortID{Device: "B2", Name: "left"}},
		{"B1-C", netsim.PortID{Device: "B1", Name: "right"}, netsim.PortID{Device: "C", Name: "toB1"}},
		{"B2-C", netsim.PortID{Device: "B2", Name: "right"}, netsim.PortID{Device: "C", Name: "toB2"}},
	} {
		if err := connect(tb.Net, l.name, l.a, l.b); err != nil {
			return nil, err
		}
	}
	if err := tb.startAll(); err != nil {
		return nil, err
	}
	return tb, nil
}
