package experiments

import (
	"fmt"
	"testing"
	"time"

	"conman/internal/netsim"
	"conman/internal/nm"
)

// configureWithMode builds a fresh linear-n testbed and configures it in
// the given execution mode, returning the testbed and its counters.
func configureWithMode(t *testing.T, sc LinearScenario, n int, sequential bool) (*Testbed, nm.Counters) {
	t.Helper()
	tb, err := sc.Build(n)
	if err != nil {
		t.Fatalf("%s n=%d build: %v", sc.Name, n, err)
	}
	tb.NM.Sequential = sequential
	if _, err := sc.ConfigureLinear(tb, n); err != nil {
		t.Fatalf("%s n=%d (sequential=%v): %v", sc.Name, n, sequential, err)
	}
	return tb, tb.NM.Counters()
}

// TestTableVIInvariantsAtScale asserts the paper's message-count
// formulas hold for n in {4, 8, 16, 32} in BOTH execution modes, and
// that the concurrent executor's counters are byte-identical to the
// sequential ones (the concurrency refactor must not change the
// protocol, only the wall clock).
func TestTableVIInvariantsAtScale(t *testing.T) {
	ns := []int{4, 8, 16, 32}
	for _, sc := range LinearScenarios() {
		for _, n := range ns {
			t.Run(fmt.Sprintf("%s/n=%d", sc.Name, n), func(t *testing.T) {
				_, seq := configureWithMode(t, sc, n, true)
				_, conc := configureWithMode(t, sc, n, false)
				if seq.Sent() != sc.WantSent(n) || seq.Received() != sc.WantRecv(n) {
					t.Errorf("sequential: sent %d (want %d), received %d (want %d)",
						seq.Sent(), sc.WantSent(n), seq.Received(), sc.WantRecv(n))
				}
				if conc != seq {
					t.Errorf("concurrent counters %+v differ from sequential %+v", conc, seq)
				}
			})
		}
	}
}

// TestConcurrentConfigureDelivers checks end-to-end byte-level probe
// delivery D -> E after a CONCURRENT configuration run. MPLS forwards by
// label switching and VLAN by L2 flooding, so both work at any chain
// length; GRE transit needs IP reachability between the tunnel
// endpoints, which without an IGP only holds at the paper's n=3.
func TestConcurrentConfigureDelivers(t *testing.T) {
	cases := []struct {
		scenario string
		n        int
	}{
		{"GRE", 3},
		{"MPLS", 3},
		{"MPLS", 16},
		{"VLAN", 3},
		{"VLAN", 16},
	}
	for i, c := range cases {
		t.Run(fmt.Sprintf("%s/n=%d", c.scenario, c.n), func(t *testing.T) {
			sc, err := LinearScenarioByName(c.scenario)
			if err != nil {
				t.Fatal(err)
			}
			tb, _ := configureWithMode(t, sc, c.n, false)
			if err := tb.VerifyConnectivity(uint32(70000 + 100*i)); err != nil {
				t.Errorf("probe after concurrent configure: %v", err)
			}
		})
	}
}

// TestDiscoverAllConcurrentMatchesSequential builds the same chain twice
// and checks the NM ends up with identical device and module knowledge
// either way.
func TestDiscoverAllConcurrentMatchesSequential(t *testing.T) {
	build := func(sequential bool) *Testbed {
		tb, err := BuildLinearGRE(16)
		if err != nil {
			t.Fatal(err)
		}
		tb.NM.Sequential = sequential
		// startAll already discovered; re-run in the mode under test.
		if err := tb.NM.DiscoverAll(); err != nil {
			t.Fatal(err)
		}
		return tb
	}
	seqTB, concTB := build(true), build(false)
	seqDevs, concDevs := seqTB.NM.Devices(), concTB.NM.Devices()
	if len(seqDevs) != len(concDevs) {
		t.Fatalf("device counts differ: %d vs %d", len(seqDevs), len(concDevs))
	}
	for i := range seqDevs {
		if seqDevs[i] != concDevs[i] {
			t.Fatalf("device order differs at %d: %s vs %s", i, seqDevs[i], concDevs[i])
		}
		si, _ := seqTB.NM.Device(seqDevs[i])
		ci, _ := concTB.NM.Device(concDevs[i])
		if len(si.Modules) != len(ci.Modules) {
			t.Errorf("%s: module counts differ: %d vs %d", seqDevs[i], len(si.Modules), len(ci.Modules))
			continue
		}
		for j := range si.Modules {
			if si.Modules[j].Ref != ci.Modules[j].Ref {
				t.Errorf("%s module %d: %s vs %s", seqDevs[i], j, si.Modules[j].Ref, ci.Modules[j].Ref)
			}
		}
	}
}

// TestChainBoundaryWiring pins the chain-orientation rule down: R1's
// chainLeft port and Rn's chainRight port are the external edge ports,
// every other router port carries an ISP link, and interior routers are
// wired left-to-right neighbour by neighbour.
func TestChainBoundaryWiring(t *testing.T) {
	const n = 4
	tb, err := BuildLinearGRE(n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		dev := tb.Devices[rid(k)]
		if dev == nil {
			t.Fatalf("no device %s", rid(k))
		}
		wantExternal := map[string]bool{}
		if k == 1 {
			wantExternal[chainLeft] = true
		}
		if k == n {
			wantExternal[chainRight] = true
		}
		for _, port := range []string{chainLeft, chainRight} {
			if got := dev.IsExternal(port); got != wantExternal[port] {
				t.Errorf("%s %s: external=%v, want %v", rid(k), port, got, wantExternal[port])
			}
		}
		// Interior-facing ports carry the ISP link addresses.
		if k > 1 {
			if _, ok := dev.Kernel.AddrOf(chainLeft); !ok {
				t.Errorf("%s %s: missing left ISP link address", rid(k), chainLeft)
			}
		}
		if k < n {
			if _, ok := dev.Kernel.AddrOf(chainRight); !ok {
				t.Errorf("%s %s: missing right ISP link address", rid(k), chainRight)
			}
		}
	}
	// Neighbour wiring: R_k's chainRight faces R_{k+1}'s chainLeft.
	for k := 1; k < n; k++ {
		peers, err := tb.Net.Neighbor(netsim.PortID{Device: rid(k), Name: chainRight})
		if err != nil || len(peers) != 1 {
			t.Fatalf("R%d right neighbour: %v %v", k, peers, err)
		}
		want := netsim.PortID{Device: rid(k + 1), Name: chainLeft}
		if peers[0] != want {
			t.Errorf("R%d right neighbour = %v, want %v", k, peers[0], want)
		}
	}
}

// TestLargeChainConcurrent is the large-n smoke: build and concurrently
// configure n=64 (and n=128 unless -short), checking the Table VI
// formulas keep holding linearly far beyond the paper's lab scale.
func TestLargeChainConcurrent(t *testing.T) {
	ns := []int{64}
	if !testing.Short() {
		ns = append(ns, 128)
	}
	sc, err := LinearScenarioByName("GRE")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			_, c := configureWithMode(t, sc, n, false)
			if c.Sent() != sc.WantSent(n) || c.Received() != sc.WantRecv(n) {
				t.Errorf("sent %d (want %d), received %d (want %d)",
					c.Sent(), sc.WantSent(n), c.Received(), sc.WantRecv(n))
			}
		})
	}
}

// TestConcurrentFasterOnLatentChannel pins the point of the refactor: on
// a management channel with non-zero latency, concurrent execution beats
// sequential by a wide margin. The threshold is deliberately loose (2x
// is the acceptance bar; the typical ratio is ~10x) to stay robust on
// loaded CI machines.
func TestConcurrentFasterOnLatentChannel(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const (
		n       = 32
		latency = 200 * time.Microsecond
	)
	sc, err := LinearScenarioByName("GRE")
	if err != nil {
		t.Fatal(err)
	}
	run := func(sequential bool) time.Duration {
		tb, err := sc.Build(n)
		if err != nil {
			t.Fatal(err)
		}
		tb.NM.Sequential = sequential
		tb.NM.Workers = n
		plan, err := sc.PlanLinear(tb, n)
		if err != nil {
			t.Fatal(err)
		}
		tb.Hub.SetLatency(latency)
		start := time.Now()
		if err := tb.NM.Apply(plan); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	seq, conc := run(true), run(false)
	if conc*2 > seq {
		t.Errorf("concurrent execute %v not at least 2x faster than sequential %v", conc, seq)
	}
	t.Logf("n=%d latency=%v: sequential %v, concurrent %v (%.1fx)", n, latency, seq, conc, float64(seq)/float64(conc))
}
