package experiments

// End-to-end tests for the autonomous reconciliation daemon (ROADMAP
// item 1): injected faults — a cut wire, a killed pipe, a killed
// device — must heal with ZERO test-initiated Reconcile calls. The
// fault surfaces as events (carrier-loss topology re-reports,
// pipe-deleted notifies, §II-E dependency triggers); the daemon
// debounces them and drives Reconcile until the network converges
// again.

import (
	"testing"
	"time"

	"conman/internal/core"
	"conman/internal/nm"
	"conman/internal/obs"
)

const daemonWait = 15 * time.Second

// counterValue digs one counter out of a metrics snapshot.
func counterValue(t *testing.T, m *obs.Metrics, name string) uint64 {
	t.Helper()
	v, ok := m.Snapshot()[name]
	if !ok {
		t.Fatalf("metric %q not registered", name)
	}
	n, ok := v.(uint64)
	if !ok {
		t.Fatalf("metric %q is %T, want uint64", name, v)
	}
	return n
}

// wantTopologyEvents returns the inclusive range of push-side topology
// events expected for `cuts` concurrent wire cuts between live managed
// devices. Each cut's two adjacent devices re-report carrier loss, so
// the ceiling is 2 per cut; a single sequential cut hits it exactly.
// Under concurrent cuts sharing a device, near-simultaneous callbacks
// can snapshot the same (multi-cut) topology and the NM suppresses the
// identical re-report, so only a floor of one changed report per
// adjacent device of the episode is guaranteed — at least 2 overall.
func wantTopologyEvents(cuts int) (lo, hi uint64) {
	return 2, 2 * uint64(cuts)
}

// checkTopologyEvents asserts the topology-event delta of an episode of
// `cuts` concurrent wire cuts lies in the parameterized range.
func checkTopologyEvents(t *testing.T, got uint64, cuts int) {
	t.Helper()
	lo, hi := wantTopologyEvents(cuts)
	if got < lo || got > hi {
		t.Errorf("topology events for %d wire cut(s) = %d, want %d..%d", cuts, got, lo, hi)
	}
}

// histCount returns the observation count of a histogram metric.
func histCount(t *testing.T, m *obs.Metrics, name string) uint64 {
	t.Helper()
	v, ok := m.Snapshot()[name]
	if !ok {
		t.Fatalf("metric %q not registered", name)
	}
	h, ok := v.(obs.HistogramSnapshot)
	if !ok {
		t.Fatalf("metric %q is %T, want HistogramSnapshot", name, v)
	}
	return h.Count
}

// TestDaemonHealsKilledWireGRE runs the routed GRE diamond under the
// daemon: cutting the wire on the active arm produces carrier-loss
// topology re-reports from both adjacent devices (no manual
// ReportTopology), and the daemon reroutes the tunnel over the other
// arm autonomously.
func TestDaemonHealsKilledWireGRE(t *testing.T) {
	tb, err := BuildDiamondGRE()
	if err != nil {
		t.Fatal(err)
	}
	intent := nm.Intent{Name: "gre-diamond", Goal: DiamondGREGoal(), Prefer: "GRE-IP tunnel"}
	if err := tb.NM.Submit(intent); err != nil {
		t.Fatal(err)
	}
	d, stop := tb.StartDaemon(nm.DaemonConfig{})
	defer stop()
	if err := d.WaitConverged(0, daemonWait); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	if err := tb.VerifyConnectivity(95000); err != nil {
		t.Fatalf("after initial convergence: %v", err)
	}

	st := d.Status()
	if len(st.Intents) != 1 {
		t.Fatalf("status reports %d intents, want 1", len(st.Intents))
	}
	on := make(map[core.DeviceID]bool)
	for _, dev := range st.Intents[0].Devices {
		on[dev] = true
	}
	used, spare := core.DeviceID("B1"), core.DeviceID("B2")
	if on["B2"] {
		used, spare = "B2", "B1"
	}
	if !on[used] || on[spare] {
		t.Fatalf("initial path should cross exactly one arm, got %v", st.Intents[0].Devices)
	}

	topoBefore := counterValue(t, d.Metrics(), "conman_events_topology_total")
	gen := d.ConvergeGen()
	// The fault. Carrier callbacks make EL and the transit router
	// re-report; nobody calls Reconcile.
	if err := tb.Net.SetMediumUp("EL-"+string(used), false); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitConverged(gen, daemonWait); err != nil {
		t.Fatalf("convergence after wire cut: %v", err)
	}

	if err := tb.VerifyConnectivity(95100); err != nil {
		t.Fatalf("after autonomous reroute: %v", err)
	}
	st = d.Status()
	on = make(map[core.DeviceID]bool)
	for _, dev := range st.Intents[0].Devices {
		on[dev] = true
	}
	if on[used] || !on[spare] {
		t.Errorf("expected reroute via %s, path on %v", spare, st.Intents[0].Devices)
	}
	if deviceConfigured(t, tb, used) {
		t.Errorf("stranded %s still carries configuration", used)
	}
	if !st.Healthy() {
		t.Errorf("daemon not healthy after heal: %+v", st)
	}
	// Exactly the two adjacent devices re-reported a changed topology:
	// the push-side event count is deterministic even though reconciles
	// run on the concurrent executor.
	checkTopologyEvents(t, counterValue(t, d.Metrics(), "conman_events_topology_total")-topoBefore, 1)
	if histCount(t, d.Metrics(), "conman_trigger_to_converged_seconds") == 0 {
		t.Error("trigger-to-converged histogram has no observations")
	}
}

// TestDaemonHealsKilledWireVLANShared cuts the active diamond arm under
// two VLAN-tunnel intents sharing it: the daemon migrates both to the
// standby arm and prunes the stranded transit switch, autonomously.
func TestDaemonHealsKilledWireVLANShared(t *testing.T) {
	tb, pairs, err := BuildDiamondShared(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
			t.Fatal(err)
		}
	}
	d, stop := tb.StartDaemon(nm.DaemonConfig{})
	defer stop()
	if err := d.WaitConverged(0, daemonWait); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(95200+100*i)); err != nil {
			t.Fatalf("pair %d after initial convergence: %v", p.Index, err)
		}
	}
	for _, h := range d.Status().Intents {
		onB1 := false
		for _, dev := range h.Devices {
			if dev == "B1" {
				onB1 = true
			}
		}
		if !onB1 {
			t.Fatalf("intent %q not initially via B1: %v", h.Name, h.Devices)
		}
	}

	topoBefore := counterValue(t, d.Metrics(), "conman_events_topology_total")
	gen := d.ConvergeGen()
	if err := tb.Net.SetMediumUp("A-B1", false); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitConverged(gen, daemonWait); err != nil {
		t.Fatalf("convergence after wire cut: %v", err)
	}

	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(95400+100*i)); err != nil {
			t.Errorf("pair %d after autonomous reroute: %v", p.Index, err)
		}
	}
	if deviceConfigured(t, tb, "B1") {
		t.Error("stranded B1 still carries configuration")
	}
	checkTopologyEvents(t, counterValue(t, d.Metrics(), "conman_events_topology_total")-topoBefore, 1)
}

// TestDaemonHealsKilledPipe deletes a tunnel pipe out from under the
// applied GRE VPN: the MA's pipe-deleted notify reaches the daemon as a
// push event and the damage is repaired with no explicit Reconcile.
func TestDaemonHealsKilledPipe(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	intent := VPNIntent(Fig4Goal(), "GRE-IP tunnel")
	if err := tb.NM.Submit(intent); err != nil {
		t.Fatal(err)
	}
	d, stop := tb.StartDaemon(nm.DaemonConfig{})
	defer stop()
	if err := d.WaitConverged(0, daemonWait); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	if err := tb.VerifyConnectivity(95600); err != nil {
		t.Fatalf("after initial convergence: %v", err)
	}

	notifyBefore := counterValue(t, d.Metrics(), "conman_events_notify_total")
	gen := d.ConvergeGen()
	if err := tb.NM.Delete(core.DeleteRequest{
		Kind: core.ComponentPipe, Module: core.Ref(core.NameGRE, "A", "l"), ID: "P1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitConverged(gen, daemonWait); err != nil {
		t.Fatalf("convergence after pipe kill: %v", err)
	}

	if err := tb.VerifyConnectivity(95700); err != nil {
		t.Fatalf("after autonomous repair: %v", err)
	}
	if got := counterValue(t, d.Metrics(), "conman_events_notify_total"); got <= notifyBefore {
		t.Errorf("pipe kill produced no notify events (%d -> %d)", notifyBefore, got)
	}
}

// TestDaemonHealsKilledDevice kills transit switch B1 outright — wires
// cut, management endpoint detached — under two shared VLAN intents.
// The daemon must reroute both pairs over B2 without wedging on the
// unreachable device, and report it in /status.
func TestDaemonHealsKilledDevice(t *testing.T) {
	tb, pairs, err := BuildDiamondShared(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
			t.Fatal(err)
		}
	}
	d, stop := tb.StartDaemon(nm.DaemonConfig{})
	defer stop()
	if err := d.WaitConverged(0, daemonWait); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(95800+100*i)); err != nil {
			t.Fatalf("pair %d after initial convergence: %v", p.Index, err)
		}
	}

	gen := d.ConvergeGen()
	if err := tb.KillDevice("B1"); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitConverged(gen, daemonWait); err != nil {
		t.Fatalf("convergence after device kill: %v", err)
	}

	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(96000+100*i)); err != nil {
			t.Errorf("pair %d after autonomous reroute: %v", p.Index, err)
		}
	}
	st := d.Status()
	foundUnreachable := false
	for _, dev := range st.Unreachable {
		if dev == "B1" {
			foundUnreachable = true
		}
	}
	if !foundUnreachable {
		t.Errorf("status does not report killed B1 as unreachable: %+v", st.Unreachable)
	}
	for _, h := range st.Intents {
		for _, dev := range h.Devices {
			if dev == "B1" {
				t.Errorf("intent %q still routed via killed B1: %v", h.Name, h.Devices)
			}
		}
	}
}
