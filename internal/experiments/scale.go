package experiments

import (
	"fmt"

	"conman/internal/nm"
)

// LinearScenario is one Table VI row: a linear-n topology builder, the
// path flavour configured on it, and the paper's closed-form message
// counts.
type LinearScenario struct {
	Name     string
	PathDesc string
	Build    func(n int) (*Testbed, error)
	// BuildOver builds the same topology with the management channel on
	// an explicit transport (nil factory = in-process Hub).
	BuildOver func(n int, f EndpointFactory) (*Testbed, error)
	// Tag marks the L2 scenarios whose goal uses the Tagged
	// classification (Fig 9b).
	Tag bool
	// WantSent / WantRecv are the paper's formulas for configuration
	// messages the NM sends / receives on a chain of n devices.
	WantSent func(n int) int
	WantRecv func(n int) int
}

// LinearScenarios returns the three Table VI scenarios: GRE (3n+2 sent /
// 2n+2 received), MPLS and VLAN (both 3n-2 / 2n-1).
func LinearScenarios() []LinearScenario {
	return []LinearScenario{
		{
			Name: "GRE", PathDesc: "GRE-IP tunnel",
			Build: BuildLinearGRE, BuildOver: BuildLinearGREOver,
			WantSent: func(n int) int { return 3*n + 2 },
			WantRecv: func(n int) int { return 2*n + 2 },
		},
		{
			Name: "MPLS", PathDesc: "MPLS",
			Build: BuildLinearMPLS, BuildOver: BuildLinearMPLSOver,
			WantSent: func(n int) int { return 3*n - 2 },
			WantRecv: func(n int) int { return 2*n - 1 },
		},
		{
			Name: "VLAN", PathDesc: "VLAN tunnel",
			Build: BuildLinearVLAN, BuildOver: BuildLinearVLANOver, Tag: true,
			WantSent: func(n int) int { return 3*n - 2 },
			WantRecv: func(n int) int { return 2*n - 1 },
		},
	}
}

// GREIGPScenario is the GRE chain with an IGP routing control module on
// every router (§II-F): the compiled configuration includes the IGP
// adjacency pipes, so the tunnel forwards end-to-end at any n — the
// scale scenario the plain GRE row only delivers at n=3. It is not part
// of LinearScenarios(): the paper's Table VI has no row for it, and the
// flooding volume depends on arrival order under the concurrent
// executor, so there is no closed-form message count to assert.
func GREIGPScenario() LinearScenario {
	return LinearScenario{
		Name: "GRE+IGP", PathDesc: "GRE-IP tunnel",
		Build: BuildLinearGREIGP, BuildOver: BuildLinearGREIGPOver,
	}
}

// BenchApplyRow pairs a scenario with the chain lengths its LinearApply
// benchmark rows cover.
type BenchApplyRow struct {
	Scenario LinearScenario
	Ns       []int
}

// BenchApplyRows is the single source of truth for the scale-apply
// benchmark coverage: `BenchmarkLinearConfigure`, `conman bench` (and
// therefore the rows the CI benchcompare gate checks against the
// committed BENCH_baseline.json) all iterate this list. The IGP-enabled
// rows additionally pay the §II-F control modules' link-state flooding
// during apply.
func BenchApplyRows() []BenchApplyRow {
	gre, _ := LinearScenarioByName("GRE")
	return []BenchApplyRow{
		{Scenario: gre, Ns: []int{16, 64, 128}},
		{Scenario: GREIGPScenario(), Ns: []int{16, 64}},
	}
}

// LinearScenarioByName fetches a scenario ("GRE", "MPLS", "VLAN", or the
// extra "GRE+IGP" scale scenario).
func LinearScenarioByName(name string) (LinearScenario, error) {
	for _, sc := range LinearScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	if sc := GREIGPScenario(); sc.Name == name {
		return sc, nil
	}
	return LinearScenario{}, fmt.Errorf("experiments: no linear scenario %q", name)
}

// Intent names the scenario's connectivity goal on a chain of n devices
// as a declarative intent.
func (sc LinearScenario) Intent(n int) nm.Intent {
	return nm.Intent{
		Name:   fmt.Sprintf("%s-linear-%d", sc.Name, n),
		Goal:   LinearGoal(n, sc.Tag),
		Prefer: sc.PathDesc,
	}
}

// FindPathSpec builds the scenario's linear-n potential graph and the
// preferred-flavour finder spec the FindPath benchmarks drive. The Go
// benchmark (BenchmarkFindPath) and `conman bench` both use this, so
// the BENCH_scale.json rows and the benchmark output measure the
// identical search; callers toggle spec.Exhaustive to select the
// engine.
func (sc LinearScenario) FindPathSpec(n int) (*nm.Graph, nm.FindSpec, error) {
	tb, err := sc.Build(n)
	if err != nil {
		return nil, nm.FindSpec{}, err
	}
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		return nil, nm.FindSpec{}, err
	}
	goal := LinearGoal(n, sc.Tag)
	return g, nm.FindSpec{
		From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain,
		Prefer: sc.PathDesc,
	}, nil
}

// PlanLinear computes the scenario's reconciliation plan on a built
// linear-n testbed without applying it, so callers can time or inspect
// the apply separately (dry run).
func (sc LinearScenario) PlanLinear(tb *Testbed, n int) (*nm.Plan, error) {
	plan, err := tb.NM.Plan(sc.Intent(n))
	if err != nil {
		return nil, fmt.Errorf("%s n=%d: %w", sc.Name, n, err)
	}
	return plan, nil
}

// ConfigureLinear plans and applies the scenario on a built linear-n
// testbed. Counters are reset between planning and applying so
// tb.NM.Counters() afterwards holds configuration traffic only (the
// Table VI accounting; planning itself sends no configuration
// commands).
func (sc LinearScenario) ConfigureLinear(tb *Testbed, n int) (*nm.Plan, error) {
	plan, err := sc.PlanLinear(tb, n)
	if err != nil {
		return nil, err
	}
	tb.NM.ResetCounters()
	if err := tb.NM.Apply(plan); err != nil {
		return plan, fmt.Errorf("%s n=%d: %w", sc.Name, n, err)
	}
	return plan, nil
}
