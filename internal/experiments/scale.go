package experiments

import (
	"fmt"

	"conman/internal/nm"
)

// LinearScenario is one Table VI row: a linear-n topology builder, the
// path flavour configured on it, and the paper's closed-form message
// counts.
type LinearScenario struct {
	Name     string
	PathDesc string
	Build    func(n int) (*Testbed, error)
	// Tag marks the L2 scenarios whose goal uses the Tagged
	// classification (Fig 9b).
	Tag bool
	// WantSent / WantRecv are the paper's formulas for configuration
	// messages the NM sends / receives on a chain of n devices.
	WantSent func(n int) int
	WantRecv func(n int) int
}

// LinearScenarios returns the three Table VI scenarios: GRE (3n+2 sent /
// 2n+2 received), MPLS and VLAN (both 3n-2 / 2n-1).
func LinearScenarios() []LinearScenario {
	return []LinearScenario{
		{
			Name: "GRE", PathDesc: "GRE-IP tunnel", Build: BuildLinearGRE,
			WantSent: func(n int) int { return 3*n + 2 },
			WantRecv: func(n int) int { return 2*n + 2 },
		},
		{
			Name: "MPLS", PathDesc: "MPLS", Build: BuildLinearMPLS,
			WantSent: func(n int) int { return 3*n - 2 },
			WantRecv: func(n int) int { return 2*n - 1 },
		},
		{
			Name: "VLAN", PathDesc: "VLAN tunnel", Build: BuildLinearVLAN, Tag: true,
			WantSent: func(n int) int { return 3*n - 2 },
			WantRecv: func(n int) int { return 2*n - 1 },
		},
	}
}

// LinearScenarioByName fetches a scenario ("GRE", "MPLS", "VLAN").
func LinearScenarioByName(name string) (LinearScenario, error) {
	for _, sc := range LinearScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return LinearScenario{}, fmt.Errorf("experiments: no linear scenario %q", name)
}

// PlanLinear finds and compiles the scenario's path on a built linear-n
// testbed without executing it, so callers can time or inspect execution
// separately.
func (sc LinearScenario) PlanLinear(tb *Testbed, n int) ([]nm.DeviceScript, error) {
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		return nil, err
	}
	goal := LinearGoal(n, sc.Tag)
	paths, _, err := g.FindPaths(nmSpec(goal))
	if err != nil {
		return nil, fmt.Errorf("%s n=%d: %w", sc.Name, n, err)
	}
	chosen := pathWith(paths, sc.PathDesc)
	if chosen == nil {
		var got []string
		for _, p := range paths {
			got = append(got, p.Describe())
		}
		return nil, fmt.Errorf("%s n=%d: no %q path among %v", sc.Name, n, sc.PathDesc, got)
	}
	return tb.NM.Compile(chosen, goal)
}

// ConfigureLinear plans and executes the scenario on a built linear-n
// testbed. Counters are reset before execution so tb.NM.Counters()
// afterwards holds configuration traffic only (the Table VI accounting).
func (sc LinearScenario) ConfigureLinear(tb *Testbed, n int) ([]nm.DeviceScript, error) {
	scripts, err := sc.PlanLinear(tb, n)
	if err != nil {
		return nil, err
	}
	tb.NM.ResetCounters()
	if err := tb.NM.Execute(scripts); err != nil {
		return scripts, fmt.Errorf("%s n=%d: %w", sc.Name, n, err)
	}
	return scripts, nil
}
