package experiments

// Tests for the persistent, incremental intent datastore (ROADMAP item:
// reconcile in O(changed), survive restarts). The diamond-lite topology
// keeps the device count constant while the intent count scales, so the
// StoreStats assertions here pin the incremental cost model: a converged
// store reconciles with zero observes and zero diffs, one changed intent
// recompiles exactly one goal, and a restarted NM replays its snapshot +
// journal back to the same converged state without re-observing devices
// that did not change.

import (
	"context"
	"sync"
	"testing"
	"time"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/msg"
	"conman/internal/nm"
	"conman/internal/nm/datastore"
)

// TestDiamondLiteIncrementalStats pins the O(changed) cost model on the
// lite diamond: after convergence a Reconcile does no observation RPCs
// and no diffs, and submitting one intent among many recompiles exactly
// that intent and touches only the devices its components land on.
func TestDiamondLiteIncrementalStats(t *testing.T) {
	tb, err := BuildDiamondLite(4)
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j <= 3; j++ {
		if err := tb.NM.Submit(LiteIntent(j)); err != nil {
			t.Fatal(err)
		}
	}
	first, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Stats.FullRebuild {
		t.Error("first pass did not report a full rebuild")
	}
	if first.Stats.Recompiled != 3 {
		t.Errorf("first pass recompiled %d intents, want 3", first.Stats.Recompiled)
	}
	if first.Stats.Observed == 0 {
		t.Error("first pass observed no devices")
	}

	// Settling pass: a device whose creates answered Pending (the VLAN
	// pipe handshake) was invalidated by the bind fallback; one observe
	// confirms its state without any further commands.
	settle, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !settle.Empty() {
		t.Errorf("settling reconcile not empty:\n%s", settle.Render())
	}

	// Converged store: the pass must be free — no RPCs, no diffs.
	before := tb.NM.Counters()
	idle, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !idle.Empty() {
		t.Errorf("converged reconcile not empty:\n%s", idle.Render())
	}
	if s := idle.Stats; s.Recompiled != 0 || s.Observed != 0 || s.DiffedDevices != 0 || s.CacheMisses != 0 || s.FullRebuild {
		t.Errorf("converged reconcile did work: %+v", s)
	}
	if after := tb.NM.Counters(); before != after {
		t.Errorf("converged reconcile sent traffic: %+v -> %+v", before, after)
	}

	// One new intent among three resident: exactly one recompile, zero
	// observes (write-through cache), creates only on the edge switches
	// that carry its per-port classification.
	if err := tb.NM.Submit(LiteIntent(4)); err != nil {
		t.Fatal(err)
	}
	one, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if s := one.Stats; s.Recompiled != 1 || s.Observed != 0 || s.CacheMisses != 0 || s.FullRebuild {
		t.Errorf("1-dirty reconcile not incremental: %+v", s)
	}
	if len(one.Deletes) != 0 || len(one.Creates) == 0 {
		t.Fatalf("1-dirty reconcile wrong shape:\n%s", one.Render())
	}
	for _, ds := range one.Creates {
		if ds.Device != "A" && ds.Device != "C" {
			t.Errorf("1-dirty reconcile touched transit device %s:\n%s", ds.Device, ds.Script())
		}
	}

	// The write-through bind left the cache accurate: converging again
	// still needs no observation.
	again, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() || again.Stats.Observed != 0 {
		t.Errorf("post-apply reconcile observed %d devices, plan empty=%v",
			again.Stats.Observed, again.Empty())
	}
}

// lossyNM wraps the NM's management endpoint and, when armed, swallows
// command-batch responses. With the synchronous in-process hub this is
// the crash-mid-apply shape: the NM's batches reach the devices and are
// executed, but the NM never hears back — exactly what a process killed
// between its apply-begin journal record and its commit leaves behind.
type lossyNM struct {
	channel.Endpoint
	mu   sync.Mutex
	drop bool
}

func (l *lossyNM) arm() {
	l.mu.Lock()
	l.drop = true
	l.mu.Unlock()
}

func (l *lossyNM) SetHandler(h channel.Handler) {
	l.Endpoint.SetHandler(func(env msg.Envelope) {
		l.mu.Lock()
		drop := l.drop && env.Type == msg.TypeCommandBatchResp
		l.mu.Unlock()
		if drop {
			return
		}
		h(env)
	})
}

// TestDiamondLiteCrashRecovery kills the NM mid-apply — the apply-begin
// journal bracket is written, the device batches are in flight, the
// commit never lands — and restarts from snapshot + journal. The
// replacement NM must replay to the same registered intents, re-observe
// only the devices named in the dangling apply bracket, adopt the
// components the crashed apply actually created, and converge without a
// single spurious command. A clean restart afterwards converges with
// zero observation RPCs at all.
func TestDiamondLiteCrashRecovery(t *testing.T) {
	tb, err := BuildDiamondLite(3)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	backend, err := datastore.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := tb.NM.Persist(backend); err != nil || restored != 0 {
		t.Fatalf("fresh Persist restored %d intents, err %v", restored, err)
	}
	// Re-home the NM onto a wrappable endpoint so the crash can be armed
	// later; until then it forwards everything.
	lossy := &lossyNM{Endpoint: tb.Hub.Endpoint(msg.NMName)}
	tb.NM.AttachChannel(lossy)

	for j := 1; j <= 2; j++ {
		if err := tb.NM.Submit(LiteIntent(j)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		t.Fatal(err)
	}
	// Settle any bind fallback, then snapshot the converged state.
	if _, err := tb.NM.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if err := tb.NM.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Third intent: plan it, then crash mid-apply. The armed endpoint
	// swallows the batch acknowledgements, so ApplyStore journals its
	// apply-begin bracket, the devices execute the creates, and the NM
	// times out before any response — then "dies".
	if err := tb.NM.Submit(LiteIntent(3)); err != nil {
		t.Fatal(err)
	}
	plan, err := tb.NM.PlanStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Creates) == 0 {
		t.Fatalf("third intent plans no creates:\n%s", plan.Render())
	}
	lossy.arm()
	tb.NM.CallTimeout = 100 * time.Millisecond
	if err := tb.NM.ApplyStore(plan); err == nil {
		t.Fatal("mid-apply crash simulation: ApplyStore unexpectedly succeeded")
	}

	// Restart: a fresh NM on the same channel and state directory.
	tb.Hub.Detach(msg.NMName)
	n2 := nm.New()
	n2.AttachChannel(tb.Hub.Endpoint(msg.NMName))
	backend2, err := datastore.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := n2.Persist(backend2)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 {
		t.Fatalf("restart restored %d intents, want 3", restored)
	}
	names := make(map[string]bool)
	for _, it := range n2.Registered() {
		names[it.Name] = true
	}
	for _, want := range []string{"vpn-c1", "vpn-c2", "vpn-c3"} {
		if !names[want] {
			t.Errorf("restart lost intent %q (have %v)", want, names)
		}
	}

	// Recovery pass: only the apply bracket's devices (A and C carry the
	// third intent's edge rules) are re-observed; the rules the crashed
	// apply created are adopted, so nothing is sent.
	rec, err := n2.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Errorf("recovery reconcile sent spurious commands:\n%s", rec.Render())
	}
	if rec.Stats.Observed != 2 {
		t.Errorf("recovery observed %d devices, want 2 (the apply bracket's)", rec.Stats.Observed)
	}
	if got := n2.Counters().CmdSent; got != 0 {
		t.Errorf("recovery sent %d command batches, want 0", got)
	}
	idle, err := n2.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !idle.Empty() || idle.Stats.Observed != 0 {
		t.Errorf("post-recovery reconcile: empty=%v observed=%d", idle.Empty(), idle.Stats.Observed)
	}

	// Clean restart under the daemon: snapshot current state, start a
	// third NM from disk, and let the daemon converge. No device changed,
	// so convergence must need zero observation RPCs (the acceptance
	// event-counter assertion).
	if err := n2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tb.Hub.Detach(msg.NMName)
	n3 := nm.New()
	n3.AttachChannel(tb.Hub.Endpoint(msg.NMName))
	backend3, err := datastore.NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored, err := n3.Persist(backend3); err != nil || restored != 3 {
		t.Fatalf("clean restart restored %d intents, err %v", restored, err)
	}
	d := nm.NewDaemon(n3, nm.DaemonConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = d.Run(ctx) }()
	defer func() { cancel(); <-done }()
	if err := d.WaitConverged(0, daemonWait); err != nil {
		t.Fatalf("clean restart convergence: %v", err)
	}
	if got := counterValue(t, d.Metrics(), "conman_observes_total"); got != 0 {
		t.Errorf("clean restart re-observed %d devices, want 0", got)
	}
	if got := counterValue(t, d.Metrics(), "conman_observe_cache_hits_total"); got == 0 {
		t.Error("clean restart served no observations from cache")
	}
}

// TestDaemonPushVsPollRepair measures the same fault — a tunnel pipe
// deleted out from under the applied GRE VPN — healed by the daemon in
// push mode (§II-E style notifies drive reconciliation) versus pure
// polling (events disabled, fixed-interval cache invalidation). Push
// must repair in well under one poll interval; poll still heals, only
// later. The measured pair backs the DaemonConfig.Poll guidance in
// docs/daemon.md.
func TestDaemonPushVsPollRepair(t *testing.T) {
	const pollEvery = 500 * time.Millisecond

	run := func(cfg nm.DaemonConfig, token uint32) time.Duration {
		t.Helper()
		tb, err := BuildFig4()
		if err != nil {
			t.Fatal(err)
		}
		intent := VPNIntent(Fig4Goal(), "GRE-IP tunnel")
		if err := tb.NM.Submit(intent); err != nil {
			t.Fatal(err)
		}
		d, stop := tb.StartDaemon(cfg)
		defer stop()
		if err := d.WaitConverged(0, daemonWait); err != nil {
			t.Fatalf("initial convergence: %v", err)
		}
		if err := tb.VerifyConnectivity(token); err != nil {
			t.Fatalf("before fault: %v", err)
		}
		start := time.Now()
		if err := tb.NM.Delete(core.DeleteRequest{
			Kind: core.ComponentPipe, Module: core.Ref(core.NameGRE, "A", "l"), ID: "P1",
		}); err != nil {
			t.Fatal(err)
		}
		// Heal time is measured at the transport: first probe that
		// delivers again.
		deadline := time.Now().Add(daemonWait)
		for i := uint32(1); ; i++ {
			if time.Now().After(deadline) {
				t.Fatalf("fault not healed within %v (mode %+v)", daemonWait, cfg)
			}
			if err := tb.VerifyConnectivity(token + 10*i); err == nil {
				return time.Since(start)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	push := run(nm.DaemonConfig{}, 91000)
	poll := run(nm.DaemonConfig{EventsDisabled: true, Poll: pollEvery}, 92000)
	t.Logf("push repair: %v, poll repair (interval %v): %v", push, pollEvery, poll)
	if push >= pollEvery {
		t.Errorf("push repair took %v, not faster than the %v poll interval", push, pollEvery)
	}
}
