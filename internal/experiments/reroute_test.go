package experiments

import (
	"testing"

	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
	"conman/internal/modules"
	"conman/internal/netsim"
	"conman/internal/nm"
)

// buildDiamondVLAN constructs a switched diamond: customer D - edge
// switch A - transit {B1 | B2} - edge switch C - customer E, one VLAN
// tunnel. Two equivalent L2 paths exist; deterministic enumeration
// order picks the B1 path first (its module ids sort lower).
func buildDiamondVLAN() (*Testbed, error) {
	tb, err := newLinearBase(nil)
	if err != nil {
		return nil, err
	}
	// L2 endpoints share one subnet (as in the Fig 9 / linear VLAN
	// scenarios).
	resetCustomerL2(tb.Customer["D"], pfx("192.168.5.1/24"), ip("192.168.5.2"), pfx("10.0.2.0/24"))
	resetCustomerL2(tb.Customer["E"], pfx("192.168.5.2/24"), ip("192.168.5.1"), pfx("10.0.1.0/24"))
	tb.NM.SetGateway("S1-gateway", "192.168.5.1")
	tb.NM.SetGateway("S2-gateway", "192.168.5.2")

	mkSwitch := func(id core.DeviceID, ethID, vlanID core.ModuleID, custPort string, trunkPorts ...string) error {
		ports := append([]string{}, trunkPorts...)
		if custPort != "" {
			ports = append([]string{custPort}, ports...)
		}
		dev, err := device.New(tb.Net, id, kernel.RoleSwitch, ports...)
		if err != nil {
			return err
		}
		tb.Devices[id] = dev
		eth := modules.NewETH(dev.MA, ethID, true, ports...)
		if custPort != "" {
			dev.MarkExternal(custPort)
			eth.RegisterPhysical(dev.MA, custPort)
		} else {
			eth.RegisterPhysical(dev.MA)
		}
		dev.AddModule(eth)
		dev.AddModule(modules.NewVLAN(dev.MA, vlanID, 22, "C1", 1504))
		return nil
	}
	if err := mkSwitch("A", "a", "d", "cust", "toB1", "toB2"); err != nil {
		return nil, err
	}
	if err := mkSwitch("B1", "m1", "v1", "", "left", "right"); err != nil {
		return nil, err
	}
	if err := mkSwitch("B2", "m2", "v2", "", "left", "right"); err != nil {
		return nil, err
	}
	if err := mkSwitch("C", "c", "f", "cust", "toB1", "toB2"); err != nil {
		return nil, err
	}

	for _, l := range []struct {
		name string
		a, b netsim.PortID
	}{
		{"D-A", netsim.PortID{Device: "D", Name: "eth0"}, netsim.PortID{Device: "A", Name: "cust"}},
		{"A-B1", netsim.PortID{Device: "A", Name: "toB1"}, netsim.PortID{Device: "B1", Name: "left"}},
		{"A-B2", netsim.PortID{Device: "A", Name: "toB2"}, netsim.PortID{Device: "B2", Name: "left"}},
		{"B1-C", netsim.PortID{Device: "B1", Name: "right"}, netsim.PortID{Device: "C", Name: "toB1"}},
		{"B2-C", netsim.PortID{Device: "B2", Name: "right"}, netsim.PortID{Device: "C", Name: "toB2"}},
		{"C-E", netsim.PortID{Device: "C", Name: "cust"}, netsim.PortID{Device: "E", Name: "eth0"}},
	} {
		if err := connect(tb.Net, l.name, l.a, l.b); err != nil {
			return nil, err
		}
	}
	if err := tb.startAll(); err != nil {
		return nil, err
	}
	return tb, nil
}

func diamondIntent() nm.Intent {
	return nm.Intent{
		Name: "diamond-vpn",
		Goal: nm.Goal{
			From:          core.Ref(core.NameETH, "A", "a"),
			To:            core.Ref(core.NameETH, "C", "c"),
			FromDomain:    "C1-S1",
			ToDomain:      "C1-S2",
			FromGateway:   "S1-gateway",
			ToGateway:     "S2-gateway",
			TrafficDomain: "C1",
			TagClassified: true,
		},
		Prefer: "VLAN tunnel",
	}
}

// deviceConfigured reports whether the device has any NM-created pipes
// or switch rules.
func deviceConfigured(t *testing.T, tb *Testbed, dev core.DeviceID) bool {
	t.Helper()
	states, err := tb.NM.ShowActual(dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		if len(st.SwitchRules) > 0 {
			return true
		}
		for _, ps := range st.Pipes {
			if ps.End != core.EndPhy {
				return true
			}
		}
	}
	return false
}

func pathDevices(p *nm.Path) map[core.DeviceID]bool {
	out := map[core.DeviceID]bool{}
	for _, h := range p.Hops {
		out[h.Node.Ref.Device] = true
	}
	return out
}

// TestReroutePrunesStrandedDevice is the failure-recovery scenario the
// Intent API unlocks: the applied path runs through transit B1; the
// A-B1 wire is cut and the affected devices re-report topology;
// re-applying the same intent routes through B2, renegotiates the VLAN
// with the new neighbour (the kept pipes' peers changed, so they are
// churned), AND prunes every component the old path left on B1 —
// because the NM remembers which devices the intent touched.
func TestReroutePrunesStrandedDevice(t *testing.T) {
	tb, err := buildDiamondVLAN()
	if err != nil {
		t.Fatal(err)
	}
	intent := diamondIntent()
	plan, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if on := pathDevices(plan.Path); !on["B1"] || on["B2"] {
		t.Fatalf("expected initial path via B1 only, got %s", plan.Path.Modules())
	}
	if err := tb.NM.Apply(plan); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(95000); err != nil {
		t.Fatalf("via B1: %v", err)
	}

	// The A-B1 wire is cut; the affected devices re-report topology
	// (the paper's failure notification model, §II-D).
	if err := tb.Net.SetMediumUp("A-B1", false); err != nil {
		t.Fatal(err)
	}
	for _, id := range []core.DeviceID{"A", "B1"} {
		if err := tb.Devices[id].MA.ReportTopology(); err != nil {
			t.Fatal(err)
		}
	}

	replan, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if on := pathDevices(replan.Path); on["B1"] || !on["B2"] {
		t.Fatalf("expected rerouted path via B2, got %s", replan.Path.Modules())
	}
	prunesB1 := false
	for _, ds := range replan.Deletes {
		if ds.Device == "B1" {
			prunesB1 = true
		}
	}
	if !prunesB1 {
		t.Fatalf("replan does not prune stranded device B1:\n%s", replan.Render())
	}
	if err := tb.NM.Apply(replan); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(95100); err != nil {
		t.Fatalf("via B2: %v", err)
	}
	if deviceConfigured(t, tb, "B1") {
		t.Error("stranded device B1 still carries configuration after reroute")
	}
	// Reconciliation converged: a further plan is empty.
	again, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Errorf("plan after reroute not empty:\n%s", again.Render())
	}

	// Destroy clears the intent record and every remaining device.
	if _, err := tb.NM.Destroy(intent); err != nil {
		t.Fatal(err)
	}
	for _, dev := range []core.DeviceID{"A", "B2", "C"} {
		if deviceConfigured(t, tb, dev) {
			t.Errorf("device %s still configured after destroy", dev)
		}
	}
}
