package experiments

import (
	"testing"

	"conman/internal/core"
	"conman/internal/nm"
)

// deviceConfigured reports whether the device has any NM-created pipes
// or switch rules.
func deviceConfigured(t *testing.T, tb *Testbed, dev core.DeviceID) bool {
	t.Helper()
	states, err := tb.NM.ShowActual(dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		if len(st.SwitchRules) > 0 {
			return true
		}
		for _, ps := range st.Pipes {
			if ps.End != core.EndPhy {
				return true
			}
		}
	}
	return false
}

func pathDevices(p *nm.Path) map[core.DeviceID]bool {
	out := map[core.DeviceID]bool{}
	for _, h := range p.Hops {
		out[h.Node.Ref.Device] = true
	}
	return out
}

// TestReroutePrunesStrandedDevice is the failure-recovery scenario the
// Intent API unlocks: the applied path runs through transit B1; the
// A-B1 wire is cut and the affected devices re-report topology;
// re-applying the same intent routes through B2, renegotiates the VLAN
// with the new neighbour (the kept pipes' peers changed, so they are
// churned), AND prunes every component the old path left on B1 —
// because the NM remembers which devices the intent touched.
func TestReroutePrunesStrandedDevice(t *testing.T) {
	tb, pairs, err := BuildDiamondShared(1)
	if err != nil {
		t.Fatal(err)
	}
	intent := pairs[0].Intent("VLAN tunnel")
	plan, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if on := pathDevices(plan.Path); !on["B1"] || on["B2"] {
		t.Fatalf("expected initial path via B1 only, got %s", plan.Path.Modules())
	}
	if err := tb.NM.Apply(plan); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyPair(pairs[0], 95000); err != nil {
		t.Fatalf("via B1: %v", err)
	}

	// The A-B1 wire is cut; the affected devices re-report topology
	// (the paper's failure notification model, §II-D).
	if err := tb.Net.SetMediumUp("A-B1", false); err != nil {
		t.Fatal(err)
	}
	for _, id := range []core.DeviceID{"A", "B1"} {
		if err := tb.Devices[id].MA.ReportTopology(); err != nil {
			t.Fatal(err)
		}
	}

	replan, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if on := pathDevices(replan.Path); on["B1"] || !on["B2"] {
		t.Fatalf("expected rerouted path via B2, got %s", replan.Path.Modules())
	}
	prunesB1 := false
	for _, ds := range replan.Deletes {
		if ds.Device == "B1" {
			prunesB1 = true
		}
	}
	if !prunesB1 {
		t.Fatalf("replan does not prune stranded device B1:\n%s", replan.Render())
	}
	if err := tb.NM.Apply(replan); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyPair(pairs[0], 95100); err != nil {
		t.Fatalf("via B2: %v", err)
	}
	if deviceConfigured(t, tb, "B1") {
		t.Error("stranded device B1 still carries configuration after reroute")
	}
	// Reconciliation converged: a further plan is empty.
	again, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Errorf("plan after reroute not empty:\n%s", again.Render())
	}

	// Destroy clears the intent record and every remaining device.
	if _, err := tb.NM.Destroy(intent); err != nil {
		t.Fatal(err)
	}
	for _, dev := range []core.DeviceID{"A", "B2", "C"} {
		if deviceConfigured(t, tb, dev) {
			t.Errorf("device %s still configured after destroy", dev)
		}
	}
}
