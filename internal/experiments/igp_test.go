package experiments

import (
	"fmt"
	"testing"
	"time"

	"conman/internal/core"
	"conman/internal/nm"
)

// igpPipeOf fetches one adjacency pipe id of a device's IGP module from
// showActual (the NM-visible handle for self-testing it).
func igpPipeOf(t *testing.T, tb *Testbed, dev core.DeviceID) (core.ModuleRef, core.PipeID) {
	t.Helper()
	states, err := tb.NM.ShowActual(dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		if st.Ref.Name == core.NameIGP && len(st.Pipes) > 0 {
			return st.Ref, st.Pipes[0].ID
		}
	}
	t.Fatalf("%s: no IGP module with adjacency pipes", dev)
	return core.ModuleRef{}, ""
}

// greSelfTest runs the GRE module's self test on an edge device and
// fails the test run if the tunnel endpoint is unreachable.
func greSelfTest(t *testing.T, tb *Testbed, dev core.DeviceID) {
	t.Helper()
	ok, detail, err := tb.NM.SelfTest(core.Ref(core.NameGRE, dev, "gre"), "P1")
	if err != nil {
		t.Fatalf("%s GRE self-test: %v", dev, err)
	}
	if !ok {
		t.Errorf("%s GRE self-test failed: %s", dev, detail)
	}
}

// TestGREIGPDeliversAtScale is the scenario the ROADMAP's oldest open
// item asked for: a GRE chain that forwards end-to-end beyond n=3. With
// an IGP control module on every router the NM's compiled configuration
// includes one pipe per adjacency; the modules flood link state and
// install the transit routes, so the tunnel self-tests and the customer
// probes deliver at n in {16, 64, 128}.
func TestGREIGPDeliversAtScale(t *testing.T) {
	ns := []int{16, 64}
	if !testing.Short() {
		ns = append(ns, 128)
	}
	sc := GREIGPScenario()
	for i, n := range ns {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			tb, err := sc.Build(n)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sc.ConfigureLinear(tb, n); err != nil {
				t.Fatal(err)
			}
			// The tunnel endpoints must reach each other across the
			// transit routers (the paper's §II-D.2 self test).
			greSelfTest(t, tb, rid(1))
			greSelfTest(t, tb, rid(n))
			// An interior IGP adjacency is confirmed bidirectionally.
			igpRef, pipe := igpPipeOf(t, tb, rid(n/2))
			ok, detail, err := tb.NM.SelfTest(igpRef, pipe)
			if err != nil || !ok {
				t.Errorf("IGP self-test on %s: ok=%v detail=%q err=%v", rid(n/2), ok, detail, err)
			}
			// Transit routers learned routes to the far link subnets.
			far, _ := linkSubnet(n - 1)
			if _, _, ok := tb.Devices[rid(2)].Kernel.RouteLookup("", far.Addr()); !ok {
				t.Errorf("R2 has no route toward the far link subnet %s", far)
			}
			// End-to-end byte-level delivery plus isolation.
			if err := tb.VerifyConnectivity(uint32(91000 + 100*i)); err != nil {
				t.Errorf("n=%d: %v", n, err)
			}
			// Reconciliation sees the IGP pipes as in place: the fresh
			// plan is empty, so apply is idempotent with the control
			// modules in the loop.
			again, err := sc.PlanLinear(tb, n)
			if err != nil {
				t.Fatal(err)
			}
			if !again.Empty() {
				t.Errorf("re-plan not empty:\n%s", again.Render())
			}
		})
	}
}

// TestGREWithoutIGPStillCapped pins the baseline the IGP opens up: the
// plain GRE chain (no control modules) configures at n=5 but the data
// plane cannot deliver — transit routers have no routes between link
// subnets — so the scenario really is the IGP's doing, not a silent
// kernel change.
func TestGREWithoutIGPStillCapped(t *testing.T) {
	sc, err := LinearScenarioByName("GRE")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := sc.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ConfigureLinear(tb, 5); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(92000); err == nil {
		t.Error("plain GRE at n=5 delivered end-to-end; the no-IGP baseline changed")
	}
}

// TestGREIGPWithdrawRemovesRoutes pins route ownership: the routes the
// IGP installed belong to the intent's configuration, refcounted in the
// store like any component. Withdrawing the goal deletes the adjacency
// pipes, and the modules withdraw every owned route with them.
func TestGREIGPWithdrawRemovesRoutes(t *testing.T) {
	const n = 8
	sc := GREIGPScenario()
	tb, err := sc.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	intent := sc.Intent(n)
	if err := tb.NM.Submit(intent); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(93000); err != nil {
		t.Fatal(err)
	}
	transit := tb.Devices[rid(3)].Kernel
	hadIGPRoutes := 0
	for _, rt := range transit.Routes("main") {
		if rt.Via.IsValid() {
			hadIGPRoutes++
		}
	}
	if hadIGPRoutes == 0 {
		t.Fatal("no IGP routes on transit router after reconcile")
	}

	if err := tb.NM.Withdraw(intent.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		t.Fatal(err)
	}
	for _, rt := range transit.Routes("main") {
		if rt.Via.IsValid() {
			t.Errorf("route %v via %v survived withdrawal", rt.Dst, rt.Via)
		}
	}
	for k := 1; k <= n; k++ {
		if deviceConfigured(t, tb, rid(k)) {
			t.Errorf("%s still configured after withdrawal", rid(k))
		}
	}
}

// TestGREIGPRerouteConverges is the kill-wire scenario on the routed
// diamond: the applied GRE tunnel crosses one transit arm; cutting that
// arm's wire re-plans the intent over the other arm, the IGP
// re-converges, and the tunnel — whose cached endpoint addresses sit on
// the now-dead links — delivers again because the IGP advertises those
// link subnets over the surviving arm. The stranded transit router is
// pruned, its routes withdrawn with its pipes.
func TestGREIGPRerouteConverges(t *testing.T) {
	tb, err := BuildDiamondGRE()
	if err != nil {
		t.Fatal(err)
	}
	intent := nm.Intent{Name: "gre-diamond", Goal: DiamondGREGoal(), Prefer: "GRE-IP tunnel"}
	plan, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NM.Apply(plan); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(94000); err != nil {
		t.Fatalf("initial apply: %v", err)
	}
	greSelfTest(t, tb, "EL")

	on := pathDevices(plan.Path)
	used, spare := core.DeviceID("B1"), core.DeviceID("B2")
	if on["B2"] {
		used, spare = "B2", "B1"
	}
	if !on[used] || on[spare] {
		t.Fatalf("initial path should cross exactly one arm, got %s", plan.Path.Modules())
	}

	// Cut the wire on the used arm; the affected devices re-report.
	if err := tb.Net.SetMediumUp("EL-"+string(used), false); err != nil {
		t.Fatal(err)
	}
	for _, id := range []core.DeviceID{"EL", used} {
		if err := tb.Devices[id].MA.ReportTopology(); err != nil {
			t.Fatal(err)
		}
	}

	replan, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if on := pathDevices(replan.Path); on[used] || !on[spare] {
		t.Fatalf("expected reroute via %s, got %s", spare, replan.Path.Modules())
	}
	prunes := false
	for _, ds := range replan.Deletes {
		if ds.Device == used {
			prunes = true
		}
	}
	if !prunes {
		t.Fatalf("replan does not prune stranded transit %s:\n%s", used, replan.Render())
	}
	if err := tb.NM.Apply(replan); err != nil {
		t.Fatal(err)
	}

	// The stranded router's IGP lost its pipes: its owned routes are gone.
	for _, rt := range tb.Devices[used].Kernel.Routes("main") {
		if rt.Via.IsValid() {
			t.Errorf("stranded %s keeps IGP route %v via %v", used, rt.Dst, rt.Via)
		}
	}
	if deviceConfigured(t, tb, used) {
		t.Errorf("stranded %s still carries configuration", used)
	}

	// Re-converged: the tunnel endpoints (addresses on the dead links)
	// are reachable over the surviving arm, and the customer probes
	// deliver end-to-end again.
	greSelfTest(t, tb, "EL")
	greSelfTest(t, tb, "ER")
	if err := tb.VerifyConnectivity(94100); err != nil {
		t.Fatalf("after reroute: %v", err)
	}
	again, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Errorf("plan after reroute not empty:\n%s", again.Render())
	}
}

// TestGREIGPOverUDP runs the IGP-enabled chain with its management
// plane on real UDP sockets: flooding is asynchronous there, so the
// test waits for the management traffic to settle before verifying the
// data plane.
func TestGREIGPOverUDP(t *testing.T) {
	const n = 8
	sc := GREIGPScenario()
	tb, err := sc.BuildOver(n, newUDPFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if _, err := sc.ConfigureLinear(tb, n); err != nil {
		t.Fatal(err)
	}
	waitStableCounters(t, tb, 10*time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for {
		err = tb.VerifyConnectivity(uint32(95000 + time.Now().UnixNano()%1000))
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("over UDP: %v", err)
	}
}

// TestCompileEmitsIGPAdjacencies pins the compiler rule at the script
// level: with full provider coverage the per-device batches contain one
// pipe per adjacency (edges 1, transit 2), every one naming the IGP as
// both upper module and dependency provider; without control modules
// the compiled scripts are byte-identical to before (no IGP pipes).
func TestCompileEmitsIGPAdjacencies(t *testing.T) {
	const n = 5
	sc := GREIGPScenario()
	tb, err := sc.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sc.PlanLinear(tb, n)
	if err != nil {
		t.Fatal(err)
	}
	adjPipes := map[core.DeviceID]int{}
	for _, ds := range plan.Creates {
		for _, item := range ds.Items {
			if item.Pipe == nil || item.Pipe.Req.Upper.Name != core.NameIGP {
				continue
			}
			req := item.Pipe.Req
			if req.Lower.Name != core.NameIPv4 || req.UpperPeer.Name != core.NameIGP || req.LowerPeer.Name != core.NameIPv4 {
				t.Errorf("adjacency pipe with unexpected endpoints: %+v", req)
			}
			if len(req.Satisfy) != 1 || req.Satisfy[0].Provider != req.Upper.String() || req.Satisfy[0].Token == "" {
				t.Errorf("adjacency pipe does not name its provider: %+v", req.Satisfy)
			}
			adjPipes[ds.Device]++
		}
	}
	for k := 1; k <= n; k++ {
		want := 2
		if k == 1 || k == n {
			want = 1
		}
		if adjPipes[rid(k)] != want {
			t.Errorf("%s: %d adjacency pipes, want %d", rid(k), adjPipes[rid(k)], want)
		}
	}

	plain, err := LinearScenarioByName("GRE")
	if err != nil {
		t.Fatal(err)
	}
	ptb, err := plain.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	pplan, err := plain.PlanLinear(ptb, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range pplan.Creates {
		for _, item := range ds.Items {
			if item.Pipe != nil && item.Pipe.Req.Upper.Name == core.NameIGP {
				t.Fatalf("plain GRE compile emitted an IGP pipe on %s", ds.Device)
			}
		}
	}
}

// TestIGPRouteNextHopsOnLink spot-checks the routes the modules
// install: every IGP route's next hop must sit inside a subnet the
// router is directly connected to (the LSA subnet-matching rule), so
// the kernel can always ARP it.
func TestIGPRouteNextHopsOnLink(t *testing.T) {
	const n = 8
	sc := GREIGPScenario()
	tb, err := sc.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ConfigureLinear(tb, n); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		kern := tb.Devices[rid(k)].Kernel
		for _, rt := range kern.Routes("main") {
			if !rt.Via.IsValid() || rt.Dst.IsSingleIP() {
				continue // connected routes, and the IP module's /32
				// transit routes (whose next hops the permissive ARP
				// resolves even off-link)
			}
			if _, _, ok := kern.IfaceForSubnet(rt.Via); !ok {
				t.Errorf("%s: route %v via %v is not on a connected subnet", rid(k), rt.Dst, rt.Via)
			}
		}
	}
}
