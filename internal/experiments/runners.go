package experiments

import (
	"fmt"
	"strings"

	"conman/internal/core"
	"conman/internal/legacy"
	"conman/internal/nm"
)

// ---------------------------------------------------------------------------
// Table III — the GRE module abstraction

// Table3 returns the abstraction the GRE module on device A exposes,
// rendered row by row as the paper's Table III.
func Table3() (core.Abstraction, string, error) {
	tb, err := BuildFig4()
	if err != nil {
		return core.Abstraction{}, "", err
	}
	info, _ := tb.NM.Device("A")
	for _, abs := range info.Modules {
		if abs.Ref.Name == core.NameGRE {
			return abs, RenderTable3(abs), nil
		}
	}
	return core.Abstraction{}, "", fmt.Errorf("no GRE module on device A")
}

// RenderTable3 prints an abstraction in Table III's layout.
func RenderTable3(a core.Abstraction) string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-22s %s\n", k, v) }
	names := func(ns []core.ModuleName) string {
		parts := make([]string, len(ns))
		for i, n := range ns {
			parts[i] = n.Display()
		}
		if len(parts) == 0 {
			return "None"
		}
		return strings.Join(parts, ", ")
	}
	row("Name", a.Ref.String())
	row("Up.Con-Modules", names(a.Up.Connectable))
	deps := "None"
	if len(a.Up.Dependencies) > 0 {
		var ds []string
		for _, d := range a.Up.Dependencies {
			ds = append(ds, d.Description)
		}
		deps = strings.Join(ds, "; ")
	}
	row("Up.Dependencies", deps)
	row("Down.Con-Modules", names(a.Down.Connectable))
	deps = "None"
	if len(a.Down.Dependencies) > 0 {
		deps = fmt.Sprintf("%d dependencies", len(a.Down.Dependencies))
	}
	row("Down.Dependencies", deps)
	phys := "None"
	if len(a.Physical) > 0 {
		phys = fmt.Sprintf("%d pipes", len(a.Physical))
	}
	row("Physical pipes", phys)
	row("Peerable-Mod.", names(a.Peerable))
	filter := "Nil"
	if a.Filter.CanFilter() {
		filter = "classifiers available"
	}
	row("Filter", filter)
	row("Switch", a.Switch.ModesString())
	row("Perf Reporting", strings.Join(a.PerfReporting, "; "))
	var tos []string
	for _, t := range a.Tradeoffs {
		tos = append(tos, t.String())
	}
	to := "Nil"
	if len(tos) > 0 {
		to = strings.Join(tos, " ")
	}
	row("Perf Trade-Offs", to)
	enf := "Nil"
	if a.Enforcement.Queuing || a.Enforcement.Shaping || len(a.Enforcement.ServiceClasses) > 0 {
		enf = "queuing/shaping"
	}
	row("Perf Enforcement", enf)
	sec := "Nil"
	if a.Security.Offers() {
		sec = "integrity/authenticity/confidentiality"
	}
	row("Security", sec)
	return b.String()
}

// ---------------------------------------------------------------------------
// Table IV — connectivity and switching of device A's modules

// Table4 renders the connectivity and switching capabilities of every
// module on device A, as the paper's Table IV.
func Table4() (string, error) {
	tb, err := BuildFig4()
	if err != nil {
		return "", err
	}
	info, _ := tb.NM.Device("A")
	var b strings.Builder
	names := func(ns []core.ModuleName) string {
		parts := make([]string, len(ns))
		for i, n := range ns {
			parts[i] = n.Display()
		}
		if len(parts) == 0 {
			return "None"
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	for _, abs := range info.Modules {
		phy := "None"
		if len(abs.Physical) > 0 {
			var ps []string
			for _, p := range abs.Physical {
				if p.External {
					ps = append(ps, string(p.Pipe)+" (customer-facing)")
				} else {
					ps = append(ps, string(p.Pipe))
				}
			}
			phy = strings.Join(ps, ", ")
		}
		fmt.Fprintf(&b, "%s  Up: %s, Down: %s, Phy: %s, Switching: %s\n",
			abs.Ref, names(abs.Up.Connectable), names(abs.Down.Connectable), phy,
			abs.Switch.ModesString())
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// Fig 5 — potential connectivity sub-graph of device A

// Fig5 returns the edge list and DOT rendering of device A's potential
// connectivity sub-graph.
func Fig5() (edges []string, dot string, err error) {
	tb, err := BuildFig4()
	if err != nil {
		return nil, "", err
	}
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		return nil, "", err
	}
	return g.DeviceSubgraph("A"), g.DOT("A"), nil
}

// ---------------------------------------------------------------------------
// Fig 6 + §III-C.1 — path finder behaviour

// Paths9Result is the outcome of the path enumeration experiment.
type Paths9Result struct {
	Paths []*nm.Path
	Stats nm.PruneStats
}

// Paths9 enumerates all paths between <ETH,A,a> and <ETH,C,f> — the paper
// reports exactly nine.
func Paths9() (*Paths9Result, error) {
	tb, err := BuildFig4()
	if err != nil {
		return nil, err
	}
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		return nil, err
	}
	goal := Fig4Goal()
	paths, stats, err := g.FindPaths(nm.FindSpec{
		From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain,
	})
	if err != nil {
		return nil, err
	}
	return &Paths9Result{Paths: paths, Stats: stats}, nil
}

// Render prints the enumeration like the paper's path list.
func (r *Paths9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d paths between <ETH,A,a> and <ETH,C,f>:\n", len(r.Paths))
	for i, p := range r.Paths {
		fmt.Fprintf(&b, "(%c) %-32s %s\n", 'a'+i, p.Describe()+":", p.Modules())
	}
	fmt.Fprintf(&b, "pruned branches: %d protocol-sanity, %d address-domain (Fig 6b), %d cycle, %d customer-L2\n",
		r.Stats.NameMismatch, r.Stats.DomainMismatch, r.Stats.Visited, r.Stats.ExternalLeak)
	return b.String()
}

// ---------------------------------------------------------------------------
// Figs 7, 8, 9 — configuration comparisons

// ConfigComparison is one "today vs CONMan" experiment outcome.
type ConfigComparison struct {
	Scenario     string
	Today        legacy.Script
	CONManScript string // device A's rendered CONMan batch
	AllScripts   []nm.DeviceScript
	DeviceLog    []string // device-level commands the modules generated on A
	Messages     nm.Counters
	Verified     bool
}

// runVPN builds a testbed, configures the VPN along the path with the
// given description, verifies the data plane and returns the comparison.
func runVPN(buildVLAN bool, pathDesc string, today legacy.Script, token uint32) (*ConfigComparison, error) {
	var (
		tb  *Testbed
		err error
	)
	if buildVLAN {
		tb, err = BuildFig9()
	} else {
		tb, err = BuildFig4()
	}
	if err != nil {
		return nil, err
	}
	goal := Fig4Goal()
	if buildVLAN {
		goal = Fig9Goal()
	}
	// Plan the goal as a declarative intent; on the fresh testbed the
	// plan is pure creation, so the applied batches — and the message
	// accounting — are identical to the old one-shot compile+execute.
	plan, err := tb.NM.Plan(VPNIntent(goal, pathDesc))
	if err != nil {
		return nil, err
	}
	tb.NM.ResetCounters()
	if err := tb.NM.Apply(plan); err != nil {
		return nil, err
	}
	cmp := &ConfigComparison{
		Scenario:   pathDesc,
		Today:      today,
		AllScripts: plan.Creates,
		Messages:   tb.NM.Counters(),
		DeviceLog:  tb.Devices["A"].Kernel.ExecLog(),
	}
	for _, s := range plan.Creates {
		if s.Device == "A" {
			cmp.CONManScript = s.Script()
		}
	}
	if err := tb.VerifyConnectivity(token); err != nil {
		return cmp, err
	}
	cmp.Verified = true
	return cmp, nil
}

// Fig7 regenerates the GRE comparison.
func Fig7() (*ConfigComparison, error) {
	return runVPN(false, "GRE-IP tunnel", legacy.TodayGRE(), 7000)
}

// Fig8 regenerates the MPLS comparison.
func Fig8() (*ConfigComparison, error) {
	return runVPN(false, "MPLS", legacy.TodayMPLS(), 8000)
}

// Fig9Run regenerates the VLAN comparison.
func Fig9Run() (*ConfigComparison, error) {
	return runVPN(true, "VLAN tunnel", legacy.TodayVLAN(), 9000)
}

// Render prints the comparison side by side.
func (c *ConfigComparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", c.Scenario)
	fmt.Fprintf(&b, "--- Configuration today (%s):\n%s\n", c.Today.Title, c.Today.Text())
	fmt.Fprintf(&b, "\n--- CONMan configuration (algorithmically generated by the NM, router A):\n%s\n", c.CONManScript)
	fmt.Fprintf(&b, "\n--- Device-level commands the modules derived on router A:\n")
	for _, l := range c.DeviceLog {
		fmt.Fprintf(&b, "    %s\n", l)
	}
	fmt.Fprintf(&b, "\nNM messages: %d sent, %d received; data plane verified: %v\n",
		c.Messages.Sent(), c.Messages.Received(), c.Verified)
	return b.String()
}

// ---------------------------------------------------------------------------
// Table V — commands and state variables

// Table5 computes the full Table V from the live system: today scripts
// from the legacy package, CONMan scripts freshly compiled and counted.
func Table5() ([]legacy.TableVRow, string, error) {
	rows := make([]legacy.TableVRow, 0, 3)
	specs := []struct {
		name  string
		vlan  bool
		desc  string
		today legacy.Script
	}{
		{"GRE", false, "GRE-IP tunnel", legacy.TodayGRE()},
		{"MPLS", false, "MPLS", legacy.TodayMPLS()},
		{"VLAN", true, "VLAN tunnel", legacy.TodayVLAN()},
	}
	for i, s := range specs {
		cmp, err := runVPN(s.vlan, s.desc, s.today, uint32(50000+1000*i))
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", s.name, err)
		}
		conman := legacy.ClassifyCONMan(s.name, cmp.CONManScript)
		rows = append(rows, legacy.TableVRow{
			Scenario: s.name,
			Today:    legacy.Count(s.today),
			CONMan:   legacy.Count(conman),
		})
	}
	return rows, legacy.RenderTableV(rows), nil
}

// ---------------------------------------------------------------------------
// Table VI — NM messaging overhead vs path length

// Table6Row is one measurement.
type Table6Row struct {
	Scenario       string
	N              int
	Sent, Received int
	WantSent       int
	WantReceived   int
}

// Matches reports whether the measurement equals the paper's formula.
func (r Table6Row) Matches() bool {
	return r.Sent == r.WantSent && r.Received == r.WantReceived
}

// Table6 sweeps chain lengths and measures the NM's configuration
// messages, comparing them to the paper's closed forms: GRE 3n+2 / 2n+2,
// MPLS 3n-2 / 2n-1, VLAN 3n-2 / 2n-1. The paper's accounting runs were
// strictly sequential, so Table6 pins NM.Sequential; the scale tests
// assert the concurrent executor produces the same counters.
func Table6(ns []int) ([]Table6Row, string, error) {
	var rows []Table6Row
	for _, n := range ns {
		for _, sc := range LinearScenarios() {
			tb, err := sc.Build(n)
			if err != nil {
				return nil, "", fmt.Errorf("%s n=%d: %w", sc.Name, n, err)
			}
			tb.NM.Sequential = true
			if _, err := sc.ConfigureLinear(tb, n); err != nil {
				return nil, "", err
			}
			c := tb.NM.Counters()
			rows = append(rows, Table6Row{
				Scenario: sc.Name, N: n,
				Sent: c.Sent(), Received: c.Received(),
				WantSent: sc.WantSent(n), WantReceived: sc.WantRecv(n),
			})
		}
	}
	var b strings.Builder
	b.WriteString("Scenario  n   Sent (paper)   Received (paper)\n")
	for _, r := range rows {
		mark := "ok"
		if !r.Matches() {
			mark = "MISMATCH"
		}
		fmt.Fprintf(&b, "%-9s %-3d %4d (%4d)    %4d (%4d)   %s\n",
			r.Scenario, r.N, r.Sent, r.WantSent, r.Received, r.WantReceived, mark)
	}
	return rows, b.String(), nil
}
