package experiments

import (
	"testing"
	"time"

	"conman/internal/channel"
)

// Lossy-transport scenarios: the GRE+IGP chain configured over a UDP
// management plane that drops, reorders and delays datagrams. The
// transport's frame-level retransmission plus the NM's request retry
// must still converge the configuration and the data plane.

// lossyFaults is the standard 5%-loss episode the CI transport-smoke
// tier also runs; the seed pins the injector's verdict sequence.
func lossyFaults() channel.FaultConfig {
	return channel.FaultConfig{
		Seed:    42,
		Loss:    0.05,
		Reorder: 0.02,
		Jitter:  time.Millisecond,
	}
}

// runLossyLinear configures the GRE+IGP chain of n routers over a faulty
// UDP management plane and verifies end-to-end data-plane connectivity.
func runLossyLinear(t *testing.T, n int) {
	t.Helper()
	fn := channel.NewFaultyNetwork(channel.Config{}, lossyFaults())
	sc := GREIGPScenario()
	tb, err := sc.BuildOver(n, func(name string) (channel.Endpoint, error) {
		return fn.Endpoint(name)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	// Requests may need several transmissions: retry well inside the
	// call timeout so a lost exchange is retried, not timed out.
	tb.NM.RetryInterval = 100 * time.Millisecond
	tb.NM.CallTimeout = 20 * time.Second

	if _, err := sc.ConfigureLinear(tb, n); err != nil {
		t.Fatal(err)
	}
	waitStableCounters(t, tb, 20*time.Second)
	deadline := time.Now().Add(20 * time.Second)
	for {
		err = tb.VerifyConnectivity(uint32(97000 + time.Now().UnixNano()%1000))
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("lossy UDP n=%d: %v", n, err)
	}

	s := fn.Stats()
	if s.Retransmits == 0 {
		t.Error("5% loss produced zero frame retransmits")
	}
	if s.DupFrames == 0 {
		t.Error("retransmission produced zero duplicate frames at receivers")
	}
	if len(fn.Trace()) == 0 {
		t.Error("fault injector recorded no streams")
	}
	t.Logf("n=%d over lossy UDP: %d datagrams (%d retransmits, %d dups, %d batched), %d NM call retries",
		n, s.DatagramsSent, s.Retransmits, s.DupFrames, s.BatchedDatagrams, tb.NM.CallRetries())
}

// TestLinearGREIGPOverLossyUDP is the always-run smoke at n=8.
func TestLinearGREIGPOverLossyUDP(t *testing.T) {
	runLossyLinear(t, 8)
}

// TestLinearGREIGPOverLossyUDP128 is the CI transport tier's scenario:
// 128 routers, seeded 5% loss + reorder + 1ms jitter.
func TestLinearGREIGPOverLossyUDP128(t *testing.T) {
	if testing.Short() {
		t.Skip("n=128 lossy chain skipped in -short")
	}
	runLossyLinear(t, 128)
}
