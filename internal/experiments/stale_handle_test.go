package experiments

// Regression test for the §II-E dependency-churn bug: the IP module's
// classified-ingress route embeds the MPLS module's NHLFE key (an
// opaque low-level handle obtained via listFieldsAndValues). Kernel
// NHLFE keys are allocated sequentially and never reused, so when the
// MPLS~ETH pipe is killed and reconciliation recreates it, the new
// push rule gets a FRESH key — and a diff that compares only the
// abstract and resolved rule fields keeps the old IP route pointing at
// a deleted NHLFE: a silent black hole. The fix records the embedded
// handle (SwitchRuleState.HandleResolved), probes the provider's
// current fields at diff time, and replaces the consumer rule when
// they diverge — plus an installTrigger on the provider component so
// the churn reaches the daemon as a push event.

import (
	"testing"

	"conman/internal/core"
	"conman/internal/nm"
)

// TestDaemonHealsStaleNHLFE kills the MPLS~ETH pipe on ingress router A
// under the daemon. The repair is partial — only A's components churn,
// the rest of the LSP stays in place — and the kept-vs-replaced
// decision for the IP route is exactly what the §II-E handle tracking
// exists to get right: delivery must resume with the route rewritten
// to the regenerated NHLFE key, with zero test-initiated Reconciles
// and no full Destroy/Apply.
func TestDaemonHealsStaleNHLFE(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	intent := VPNIntent(Fig4Goal(), "MPLS")
	if err := tb.NM.Submit(intent); err != nil {
		t.Fatal(err)
	}
	d, stop := tb.StartDaemon(nm.DaemonConfig{})
	defer stop()
	if err := d.WaitConverged(0, daemonWait); err != nil {
		t.Fatalf("initial convergence: %v", err)
	}
	if err := tb.VerifyConnectivity(97000); err != nil {
		t.Fatalf("after initial convergence: %v", err)
	}

	// Locate the MPLS module's down pipe on A (MPLS o over ETH b) and
	// remember the NHLFE keys the ingress routes currently embed.
	mplsRef := core.Ref(core.NameMPLS, "A", "o")
	states, err := tb.NM.ShowActual("A")
	if err != nil {
		t.Fatal(err)
	}
	var downPipe core.PipeID
	for _, st := range states {
		if st.Ref != mplsRef {
			continue
		}
		for _, ps := range st.Pipes {
			if ps.End == core.EndDown {
				downPipe = ps.ID
			}
		}
	}
	if downPipe == "" {
		t.Fatalf("no down pipe found for %s", mplsRef)
	}
	kernelA := tb.Devices["A"].Kernel
	oldKeys := map[int]bool{}
	for _, rt := range kernelA.Routes("main") {
		if rt.MPLSKey > 0 {
			oldKeys[rt.MPLSKey] = true
		}
	}
	if len(oldKeys) == 0 {
		t.Fatal("no MPLS ingress route installed on A")
	}
	installedBaseline := counterValue(t, d.Metrics(), "conman_components_installed_total")

	// The fault: kill the MPLS~ETH pipe. The MA's undo clears the push
	// rule (deleting its NHLFEs) and the §II-E trigger plus the
	// pipe-deleted notify reach the daemon; nobody calls Reconcile.
	gen := d.ConvergeGen()
	if err := tb.NM.Delete(core.DeleteRequest{
		Kind: core.ComponentPipe, Module: mplsRef, ID: string(downPipe),
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.WaitConverged(gen, daemonWait); err != nil {
		t.Fatalf("convergence after pipe kill: %v", err)
	}

	// Delivery resumed: the kept-or-replaced decision went the right way.
	if err := tb.VerifyConnectivity(97100); err != nil {
		t.Fatalf("black hole after repair — stale NHLFE handle kept: %v", err)
	}
	// The route now references a live, regenerated NHLFE: keys are
	// allocated sequentially and never reused, so surviving on the old
	// key would mean the diff wrongly kept the stale route.
	found := false
	for _, rt := range kernelA.Routes("main") {
		if rt.MPLSKey <= 0 {
			continue
		}
		found = true
		if oldKeys[rt.MPLSKey] {
			t.Errorf("ingress route still embeds pre-kill NHLFE key %d", rt.MPLSKey)
		}
		if !kernelA.HasNHLFE(rt.MPLSKey) {
			t.Errorf("ingress route references missing NHLFE %d (black hole)", rt.MPLSKey)
		}
	}
	if !found {
		t.Error("no MPLS ingress route on A after repair")
	}
	// The repair was partial: far fewer components were (re)installed
	// than the initial from-scratch configuration.
	healInstalled := counterValue(t, d.Metrics(), "conman_components_installed_total") - installedBaseline
	if healInstalled == 0 {
		t.Error("repair installed nothing — fault not observed")
	}
	if healInstalled >= installedBaseline {
		t.Errorf("repair reinstalled %d of %d components — not a partial re-apply",
			healInstalled, installedBaseline)
	}
	// The provider's trigger fired (§II-E push path).
	if counterValue(t, d.Metrics(), "conman_events_trigger_total") == 0 {
		t.Error("no dependency trigger processed — installTrigger wiring broken")
	}
}
