package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/nm"
)

// fixture builds a testbed plus the matching intent for one path
// flavour of the evaluation topologies.
type fixture struct {
	name   string
	build  func() (*Testbed, error)
	intent nm.Intent
}

func intentFixtures() []fixture {
	return []fixture{
		{"GRE", BuildFig4, VPNIntent(Fig4Goal(), "GRE-IP tunnel")},
		{"MPLS", BuildFig4, VPNIntent(Fig4Goal(), "MPLS")},
		{"VLAN", BuildFig9, VPNIntent(Fig9Goal(), "VLAN tunnel")},
	}
}

// TestApplyIdempotent pins the core reconciliation contract: after a
// successful Apply, a fresh Plan for the same intent is empty and
// re-applying it sends zero commands (Counters delta == 0).
func TestApplyIdempotent(t *testing.T) {
	for i, fx := range intentFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			tb, err := fx.build()
			if err != nil {
				t.Fatal(err)
			}
			plan, err := tb.NM.Plan(fx.intent)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Deletes) != 0 {
				t.Errorf("fresh testbed plan has %d delete batches", len(plan.Deletes))
			}
			if err := tb.NM.Apply(plan); err != nil {
				t.Fatal(err)
			}
			if err := tb.VerifyConnectivity(uint32(90000 + 100*i)); err != nil {
				t.Fatalf("after first apply: %v", err)
			}

			before := tb.NM.Counters()
			second, err := tb.NM.Plan(fx.intent)
			if err != nil {
				t.Fatal(err)
			}
			if !second.Empty() {
				t.Fatalf("second plan not empty:\n%s", second.Render())
			}
			if err := tb.NM.Apply(second); err != nil {
				t.Fatal(err)
			}
			after := tb.NM.Counters()
			if before != after {
				t.Errorf("second apply sent traffic: before %+v, after %+v", before, after)
			}
		})
	}
}

// TestDestroyThenReapply proves full teardown: Destroy removes the
// intent's components (probes stop being delivered, self-test reports
// the path gone), and a following Apply restores delivery end to end.
func TestDestroyThenReapply(t *testing.T) {
	for i, fx := range intentFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			tb, err := fx.build()
			if err != nil {
				t.Fatal(err)
			}
			plan, err := tb.NM.Plan(fx.intent)
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.NM.Apply(plan); err != nil {
				t.Fatal(err)
			}
			token := uint32(91000 + 100*i)
			if err := tb.VerifyConnectivity(token); err != nil {
				t.Fatalf("before destroy: %v", err)
			}

			down, err := tb.NM.Destroy(fx.intent)
			if err != nil {
				t.Fatalf("destroy: %v", err)
			}
			if len(down.Deletes) == 0 {
				t.Fatal("destroy plan deleted nothing")
			}
			// Probe must no longer cross the (former) VPN path.
			d, e := tb.Customer["D"], tb.Customer["E"]
			dst := "10.0.2.1"
			if err := d.SendProbeFrom(ip("10.0.1.1"), ip(dst), token+10); err != nil {
				t.Fatal(err)
			}
			tb.Net.Flush()
			for _, tok := range e.ProbeEchoes() {
				if tok == token+10 {
					t.Fatal("probe still delivered after destroy")
				}
			}
			// The NM's own self-test on the path's first data module
			// confirms the path is gone.
			if fx.name == "GRE" {
				ok, detail, err := tb.NM.SelfTest(core.Ref(core.NameGRE, "A", "l"), "P1")
				if err != nil {
					t.Fatalf("selfTest: %v", err)
				}
				if ok {
					t.Errorf("GRE self-test still passes after destroy: %s", detail)
				}
			}
			// A destroyed intent plans as pure creation again.
			again, err := tb.NM.Plan(fx.intent)
			if err != nil {
				t.Fatal(err)
			}
			if len(again.Creates) == 0 {
				t.Fatal("post-destroy plan creates nothing")
			}
			if err := tb.NM.Apply(again); err != nil {
				t.Fatalf("re-apply: %v", err)
			}
			if err := tb.VerifyConnectivity(token + 20); err != nil {
				t.Fatalf("after re-apply: %v", err)
			}
		})
	}
}

// TestApplyHealsPartialFailure kills one configured component out of
// band (the paper's §II-D failure model: a module loses state) and
// checks the next Plan/Apply cycle repairs exactly the damage.
func TestApplyHealsPartialFailure(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	intent := VPNIntent(Fig4Goal(), "GRE-IP tunnel")
	plan, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NM.Apply(plan); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(92000); err != nil {
		t.Fatalf("before failure: %v", err)
	}

	// Kill the g/l pipe on router A: the GRE tunnel and the rules built
	// on the pipe vanish with it.
	if err := tb.NM.Delete(core.DeleteRequest{
		Kind: core.ComponentPipe, Module: core.Ref(core.NameGRE, "A", "l"), ID: "P1",
	}); err != nil {
		t.Fatal(err)
	}
	d, e := tb.Customer["D"], tb.Customer["E"]
	if err := d.SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 92100); err != nil {
		t.Fatal(err)
	}
	tb.Net.Flush()
	for _, tok := range e.ProbeEchoes() {
		if tok == 92100 {
			t.Fatal("path still up after killing pipe P1 on A")
		}
	}

	repair, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if repair.Empty() {
		t.Fatal("plan after failure is empty — damage not observed")
	}
	// The repair is local to A: only the missing pipe and its dependent
	// rules are recreated.
	for _, ds := range repair.Creates {
		if ds.Device != "A" {
			t.Errorf("repair touches %s:\n%s", ds.Device, ds.Script())
		}
	}
	if err := tb.NM.Apply(repair); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(92200); err != nil {
		t.Fatalf("after repair: %v", err)
	}
}

// TestReconfigureBetweenFlavours drives the A->B->A scenario the
// one-shot API could not express: the same Fig 4 testbed is reconciled
// from the GRE intent to the MPLS intent and back, with stale
// components pruned at each step.
func TestReconfigureBetweenFlavours(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	gre := VPNIntent(Fig4Goal(), "GRE-IP tunnel")
	mpls := VPNIntent(Fig4Goal(), "MPLS")

	step := func(intent nm.Intent, wantDeletes bool, token uint32) {
		t.Helper()
		plan, err := tb.NM.Plan(intent)
		if err != nil {
			t.Fatal(err)
		}
		if wantDeletes && len(plan.Deletes) == 0 {
			t.Fatalf("reconfigure to %q pruned nothing:\n%s", intent.Name, plan.Render())
		}
		if err := tb.NM.Apply(plan); err != nil {
			t.Fatalf("apply %q: %v", intent.Name, err)
		}
		if err := tb.VerifyConnectivity(token); err != nil {
			t.Fatalf("after %q: %v", intent.Name, err)
		}
	}
	step(gre, false, 93000)
	step(mpls, true, 93100)
	step(gre, true, 93200)

	// After the final flip the MPLS intent's state must be gone: its
	// plan is non-trivial again.
	p, err := tb.NM.Plan(mpls)
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Error("MPLS plan empty after reconfiguring back to GRE")
	}
}

// TestPlanIsDryRun checks that planning never mutates the network: the
// rendered plan lists the pending commands and the counters stay
// untouched.
func TestPlanIsDryRun(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	tb.NM.ResetCounters()
	plan, err := tb.NM.Plan(VPNIntent(Fig4Goal(), "GRE-IP tunnel"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.NM.Counters(); got.CmdSent != 0 {
		t.Errorf("planning sent %d command batches", got.CmdSent)
	}
	out := plan.Render()
	for _, want := range []string{"GRE-IP tunnel", "create (pipe", "to create"} {
		if !strings.Contains(out, want) {
			t.Errorf("dry-run rendering missing %q:\n%s", want, out)
		}
	}
	// Nothing was configured: the data plane must still be dark.
	d, e := tb.Customer["D"], tb.Customer["E"]
	if err := d.SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 94000); err != nil {
		t.Fatal(err)
	}
	tb.Net.Flush()
	for _, tok := range e.ProbeEchoes() {
		if tok == 94000 {
			t.Fatal("dry-run plan configured the network")
		}
	}
}

// TestMessageLogDeterministicUnderConcurrency pins the per-device
// sequence + stable merge: two concurrent configuration runs of the
// same testbed produce byte-identical traces (ROADMAP open item).
func TestMessageLogDeterministicUnderConcurrency(t *testing.T) {
	run := func() []string {
		tb, err := BuildLinearGRE(12)
		if err != nil {
			t.Fatal(err)
		}
		tb.NM.EnableMessageLog()
		sc, err := LinearScenarioByName("GRE")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.ConfigureLinear(tb, 12); err != nil {
			t.Fatal(err)
		}
		return tb.NM.MessageLog()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty message log")
	}
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("concurrent traces differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
}

// TestParallelSelfTestSweepAfterApply exercises the Network.Flush
// barrier: after Apply, self-tests fan out concurrently across the
// chain's modules and the net quiesces deterministically before the
// results are read (ROADMAP open item on concurrent data-plane tests).
func TestParallelSelfTestSweepAfterApply(t *testing.T) {
	const n = 8
	sc, err := LinearScenarioByName("MPLS")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := sc.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ConfigureLinear(tb, n); err != nil {
		t.Fatal(err)
	}
	// Sweep every MPLS module's down pipes concurrently.
	type probe struct {
		mod  core.ModuleRef
		pipe core.PipeID
	}
	var probes []probe
	for _, dev := range tb.NM.Devices() {
		states, err := tb.NM.ShowActual(dev)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range states {
			if st.Ref.Name != core.NameMPLS {
				continue
			}
			for _, ps := range st.Pipes {
				if ps.End == core.EndDown {
					probes = append(probes, probe{st.Ref, ps.ID})
				}
			}
		}
	}
	if len(probes) == 0 {
		t.Fatal("no MPLS down pipes found to self-test")
	}
	results := make([]bool, len(probes))
	details := make([]string, len(probes))
	var wg sync.WaitGroup
	for i := range probes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ok, detail, err := tb.NM.SelfTest(probes[i].mod, probes[i].pipe)
			if err != nil {
				details[i] = err.Error()
				return
			}
			results[i], details[i] = ok, detail
		}(i)
	}
	wg.Wait()
	tb.Net.Flush() // quiesce residual probe traffic deterministically
	for i, ok := range results {
		if !ok {
			t.Errorf("self-test %s %s failed: %s", probes[i].mod, probes[i].pipe, details[i])
		}
	}
}

// TestLinearScaleOverUDP runs the linear-n suite over real UDP sockets
// (the paper's pre-configured management network) instead of the
// in-process Hub: n=16 smoke with the Table VI formulas intact
// (ROADMAP open item).
func TestLinearScaleOverUDP(t *testing.T) {
	const n = 16
	for _, name := range []string{"GRE", "MPLS"} {
		t.Run(name, func(t *testing.T) {
			sc, err := LinearScenarioByName(name)
			if err != nil {
				t.Fatal(err)
			}
			udp := newUDPFactory(t)
			tb, err := sc.BuildOver(n, udp)
			if err != nil {
				t.Fatal(err)
			}
			defer tb.Close()
			if _, err := sc.ConfigureLinear(tb, n); err != nil {
				t.Fatal(err)
			}
			// Unlike the synchronous Hub, UDP delivers module relays
			// asynchronously: wait until the counters quiesce before
			// checking the Table VI formulas.
			c := waitStableCounters(t, tb, 5*time.Second)
			if c.Sent() != sc.WantSent(n) || c.Received() != sc.WantRecv(n) {
				t.Errorf("over UDP: sent %d (want %d), received %d (want %d)",
					c.Sent(), sc.WantSent(n), c.Received(), sc.WantRecv(n))
			}
		})
	}
}

// newUDPFactory wraps a fresh UDP loopback registry as an
// EndpointFactory.
func newUDPFactory(t *testing.T) EndpointFactory {
	t.Helper()
	udp := channel.NewUDPNetwork()
	return func(name string) (channel.Endpoint, error) {
		return udp.Endpoint(name)
	}
}

// waitStableCounters polls the NM counters until they stop changing
// (several consecutive identical reads), for asynchronous transports.
func waitStableCounters(t *testing.T, tb *Testbed, timeout time.Duration) nm.Counters {
	t.Helper()
	deadline := time.Now().Add(timeout)
	last := tb.NM.Counters()
	stable := 0
	for {
		time.Sleep(10 * time.Millisecond)
		cur := tb.NM.Counters()
		if cur == last {
			stable++
			if stable >= 10 {
				return cur
			}
		} else {
			stable = 0
			last = cur
		}
		if time.Now().After(deadline) {
			return cur
		}
	}
}
