package experiments

// Generated-topology testbeds: turn a topo.Wiring (fat-tree, ring,
// torus, Waxman) into a running netsim testbed, generalizing the
// hand-built BuildLinear*/BuildDiamond* shapes to arbitrary graphs.
// Three families:
//
//   - BuildTopoVLAN: every fabric device is a managed L2 switch (ETH
//     across all ports + VLAN module), with simulated customer routers
//     attached on dedicated edge ports — full data-plane verification
//     via VerifyPair.
//   - BuildTopoVLANLite: the same fabric with external customer ports
//     but no customer routers — O(pairs) setup on top of the fabric,
//     for plan-level workloads at generator scale (n in the thousands).
//   - BuildTopoGREIGP: every fabric device is a managed router with
//     per-port ETH modules, an ISP IP module and an IGP control module;
//     intent endpoints additionally carry a customer IP module and GRE.
//     The compiled configuration includes one pipe per IGP adjacency,
//     so applying an intent cold-starts link-state flooding across the
//     whole fabric — the workload of the IGPFlood benchmark rows.

import (
	"fmt"
	"net/netip"

	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
	"conman/internal/modules"
	"conman/internal/netsim"
	"conman/internal/nm"
	"conman/internal/topo"
)

// topoCustPorts assigns pair j (1-based) a dedicated customer port
// "cust<j>" on both of its endpoint devices.
func topoCustPorts(pairs []topo.Pair) map[core.DeviceID][]string {
	cust := make(map[core.DeviceID][]string)
	for j, p := range pairs {
		port := fmt.Sprintf("cust%d", j+1)
		cust[p.A] = append(cust[p.A], port)
		cust[p.B] = append(cust[p.B], port)
	}
	return cust
}

// wireSpecs converts the wiring's trunk wires to a netsim batch.
func wireSpecs(w *topo.Wiring) []netsim.WireSpec {
	specs := make([]netsim.WireSpec, len(w.Wires))
	for i, wi := range w.Wires {
		specs[i] = netsim.WireSpec{
			Name: wi.Name,
			A:    netsim.PortID{Device: wi.A.Device, Name: wi.A.Port},
			B:    netsim.PortID{Device: wi.B.Device, Name: wi.B.Port},
		}
	}
	return specs
}

// buildTopoVLANFabric creates the managed switches and trunk wires of
// a VLAN-family testbed; cust maps devices to their customer ports.
func buildTopoVLANFabric(w *topo.Wiring, cust map[core.DeviceID][]string) (*Testbed, error) {
	tb, err := newBareBase(nil)
	if err != nil {
		return nil, err
	}
	for _, d := range w.Devices {
		if err := mkVLANSwitch(tb, d.ID, "eth", "vlan", cust[d.ID], d.Ports); err != nil {
			return nil, err
		}
	}
	if err := tb.Net.ConnectAll(wireSpecs(w)); err != nil {
		return nil, err
	}
	return tb, nil
}

// BuildTopoVLAN builds the wiring as an L2 switching fabric carrying
// pairsN customer pairs on cross-core edge devices, each pair with
// simulated customer routers for data-plane verification. Submit
// p.Intent("VLAN tunnel") (or let a daemon reconcile) and VerifyPair
// as with the diamond testbeds.
func BuildTopoVLAN(w *topo.Wiring, pairsN int) (*Testbed, []SharedPair, error) {
	pairs, err := w.CrossCorePairs(pairsN)
	if err != nil {
		return nil, nil, err
	}
	tb, err := buildTopoVLANFabric(w, topoCustPorts(pairs))
	if err != nil {
		return nil, nil, err
	}
	out := make([]SharedPair, 0, pairsN)
	for j, pr := range pairs {
		port := fmt.Sprintf("cust%d", j+1)
		p, err := addL2CustomerPair(tb, j+1,
			core.Ref(core.NameETH, pr.A, "eth"),
			core.Ref(core.NameETH, pr.B, "eth"), port, port)
		if err != nil {
			return nil, nil, err
		}
		if err := connect(tb.Net, fmt.Sprintf("%s-%s", p.D, pr.A),
			netsim.PortID{Device: p.D, Name: "eth0"},
			netsim.PortID{Device: pr.A, Name: port}); err != nil {
			return nil, nil, err
		}
		if err := connect(tb.Net, fmt.Sprintf("%s-%s", pr.B, p.E),
			netsim.PortID{Device: pr.B, Name: port},
			netsim.PortID{Device: p.E, Name: "eth0"}); err != nil {
			return nil, nil, err
		}
		out = append(out, p)
	}
	if err := tb.startAll(); err != nil {
		return nil, nil, err
	}
	return tb, out, nil
}

// BuildTopoVLANLite builds the wiring as an L2 fabric with pairsN
// external customer ports and no customer routers (the diamond-lite
// pattern at generator scale): usable for plan/apply/observe workloads
// only, not data-plane verification. The returned intents are ready to
// Plan or Submit; intent j's goal pins the pair's dedicated edge ports
// via FromPipe/ToPipe.
func BuildTopoVLANLite(w *topo.Wiring, pairsN int) (*Testbed, []nm.Intent, error) {
	pairs, err := w.CrossCorePairs(pairsN)
	if err != nil {
		return nil, nil, err
	}
	tb, err := buildTopoVLANFabric(w, topoCustPorts(pairs))
	if err != nil {
		return nil, nil, err
	}
	intents := make([]nm.Intent, 0, pairsN)
	for j, pr := range pairs {
		port := fmt.Sprintf("cust%d", j+1)
		intents = append(intents, nm.Intent{
			Name:   fmt.Sprintf("vpn-c%d", j+1),
			Prefer: "VLAN tunnel",
			Goal: nm.Goal{
				From:          core.Ref(core.NameETH, pr.A, "eth"),
				To:            core.Ref(core.NameETH, pr.B, "eth"),
				FromPipe:      modules.PhysPipeID(port),
				ToPipe:        modules.PhysPipeID(port),
				TrafficDomain: fmt.Sprintf("C%d", j+1),
				TagClassified: true,
			},
		})
	}
	if err := tb.startAll(); err != nil {
		return nil, nil, err
	}
	return tb, intents, nil
}

// topoLinkSubnet returns the ISP /24 of trunk wire i in the routed
// family: 10.64.0.0/10 is untouched by every other testbed's
// addressing, and two octets of index keep subnets unique up to 16k
// wires.
func topoLinkSubnet(i int) (a, b netip.Prefix) {
	hi, lo := 64+i>>8, i&0xff
	return pfx(fmt.Sprintf("10.%d.%d.1/24", hi, lo)), pfx(fmt.Sprintf("10.%d.%d.2/24", hi, lo))
}

// routedPairNets returns pair j's addressing in the routed family: the
// two sites sit on distinct edge links (unlike the shared-subnet L2
// family), customer routers at .1, edge routers at .2.
func routedPairNets(j int) (uplinkD, edgeD, uplinkE, edgeE netip.Prefix, lanD, lanE netip.Prefix) {
	return pfx(fmt.Sprintf("172.16.%d.1/24", 2*j)),
		pfx(fmt.Sprintf("172.16.%d.2/24", 2*j)),
		pfx(fmt.Sprintf("172.16.%d.1/24", 2*j+1)),
		pfx(fmt.Sprintf("172.16.%d.2/24", 2*j+1)),
		pfx(fmt.Sprintf("10.%d.1.1/24", 10+j)),
		pfx(fmt.Sprintf("10.%d.2.1/24", 10+j))
}

// BuildTopoGREIGP builds the wiring as a routed fabric: per-port ETH
// modules, one ISP IP module holding every trunk link address, and an
// IGP control module on every router; the pairsN intent endpoints
// additionally carry a customer-domain IP module and GRE. Prefer
// "GRE-IP tunnel" when submitting the returned pairs' intents. Every
// endpoint device hosts at most one pair (CrossCorePairs guarantees
// distinct devices), keeping the per-edge module inventory fixed.
func BuildTopoGREIGP(w *topo.Wiring, pairsN int) (*Testbed, []SharedPair, error) {
	pairs, err := w.CrossCorePairs(pairsN)
	if err != nil {
		return nil, nil, err
	}
	tb, err := newBareBase(nil)
	if err != nil {
		return nil, nil, err
	}
	// Trunk port addresses, per wire.
	addr := make(map[topo.Port]netip.Prefix, 2*len(w.Wires))
	for i, wi := range w.Wires {
		a, b := topoLinkSubnet(i)
		addr[wi.A], addr[wi.B] = a, b
	}
	// Pair endpoint roles, per device.
	type endpoint struct {
		j    int // 1-based pair index
		port string
		addr netip.Prefix // edge router's customer-link address
	}
	eps := make(map[core.DeviceID]endpoint, 2*pairsN)
	for j, pr := range pairs {
		_, edgeD, _, edgeE, _, _ := routedPairNets(j + 1)
		eps[pr.A] = endpoint{j: j + 1, port: fmt.Sprintf("cust%d", j+1), addr: edgeD}
		eps[pr.B] = endpoint{j: j + 1, port: fmt.Sprintf("cust%d", j+1), addr: edgeE}
	}
	for _, d := range w.Devices {
		ep, isEdge := eps[d.ID]
		ports := append([]string{}, d.Ports...)
		if isEdge {
			ports = append(ports, ep.port)
		}
		dev, err := device.New(tb.Net, d.ID, kernel.RoleRouter, ports...)
		if err != nil {
			return nil, nil, err
		}
		tb.Devices[d.ID] = dev
		ispAddrs := make(map[string]netip.Prefix, len(d.Ports))
		for i, p := range d.Ports {
			eth := modules.NewETH(dev.MA, core.ModuleID(fmt.Sprintf("e%d", i)), false, p)
			eth.RegisterPhysical(dev.MA)
			dev.AddModule(eth)
			ispAddrs[p] = addr[topo.Port{Device: d.ID, Port: p}]
		}
		if isEdge {
			dev.MarkExternal(ep.port)
			ec := modules.NewETH(dev.MA, "ec", false, ep.port)
			ec.RegisterPhysical(dev.MA, ep.port)
			dev.AddModule(ec)
			ipc, err := modules.NewIP(dev.MA, "ipc", fmt.Sprintf("C%d", ep.j),
				map[string]netip.Prefix{ep.port: ep.addr})
			if err != nil {
				return nil, nil, err
			}
			dev.AddModule(ipc)
			dev.AddModule(modules.NewGRE(dev.MA, "gre"))
		}
		ips, err := modules.NewIP(dev.MA, "ips", "ISP", ispAddrs)
		if err != nil {
			return nil, nil, err
		}
		ips.AllowConnectable(core.NameIGP)
		dev.AddModule(ips)
		dev.AddModule(modules.NewIGP(dev.MA, "igp"))
	}
	if err := tb.Net.ConnectAll(wireSpecs(w)); err != nil {
		return nil, nil, err
	}
	out := make([]SharedPair, 0, pairsN)
	for j, pr := range pairs {
		uplinkD, edgeD, uplinkE, edgeE, lanD, lanE := routedPairNets(j + 1)
		dID := core.DeviceID(fmt.Sprintf("D%d", j+1))
		eID := core.DeviceID(fmt.Sprintf("E%d", j+1))
		d, err := customerRouter(tb.Net, dID, uplinkD, lanD, edgeD.Addr())
		if err != nil {
			return nil, nil, err
		}
		e, err := customerRouter(tb.Net, eID, uplinkE, lanE, edgeE.Addr())
		if err != nil {
			return nil, nil, err
		}
		tb.Customer[dID], tb.Customer[eID] = d, e
		port := fmt.Sprintf("cust%d", j+1)
		if err := connect(tb.Net, fmt.Sprintf("%s-%s", dID, pr.A),
			netsim.PortID{Device: dID, Name: "eth0"},
			netsim.PortID{Device: pr.A, Name: port}); err != nil {
			return nil, nil, err
		}
		if err := connect(tb.Net, fmt.Sprintf("%s-%s", pr.B, eID),
			netsim.PortID{Device: pr.B, Name: port},
			netsim.PortID{Device: eID, Name: "eth0"}); err != nil {
			return nil, nil, err
		}
		s1, s2 := fmt.Sprintf("C%d-S1", j+1), fmt.Sprintf("C%d-S2", j+1)
		gw1, gw2 := fmt.Sprintf("C%d-S1-gateway", j+1), fmt.Sprintf("C%d-S2-gateway", j+1)
		tb.NM.SetDomain(s1, lanD.Masked().String())
		tb.NM.SetDomain(s2, lanE.Masked().String())
		tb.NM.SetGateway(gw1, uplinkD.Addr().String())
		tb.NM.SetGateway(gw2, uplinkE.Addr().String())
		out = append(out, SharedPair{
			Index: j + 1, D: dID, E: eID,
			SrcIP: lanD.Addr(), DstIP: lanE.Addr(),
			Goal: nm.Goal{
				From:       core.Ref(core.NameETH, pr.A, "ec"),
				To:         core.Ref(core.NameETH, pr.B, "ec"),
				FromDomain: s1, ToDomain: s2,
				FromGateway: gw1, ToGateway: gw2,
				TrafficDomain: fmt.Sprintf("C%d", j+1),
			},
		})
	}
	if err := tb.startAll(); err != nil {
		return nil, nil, err
	}
	return tb, out, nil
}
