package experiments

// Shared-core scenarios for the NM's intent store: several customer
// pairs whose VPNs cross the same transit devices. These are the
// workloads the single-intent Plan/Apply cycle could not express —
// applying one goal used to prune the components of every other goal on
// shared devices — and the regression tests in shared_test.go pin the
// store semantics: Reconcile configures shared pipes and switch rules
// once, refcounts them across goals, and withdrawing one goal removes
// exactly its unshared components.

import (
	"fmt"
	"net/netip"

	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
	"conman/internal/modules"
	"conman/internal/netsim"
	"conman/internal/nm"
)

// SharedPair is one customer pair of a shared-core testbed: customer
// routers D and E attached to dedicated edge ports, with the pair's
// addressing and its ready-made connectivity goal.
type SharedPair struct {
	// Index is the pair's 1-based number.
	Index int
	// D and E are the pair's customer routers.
	D, E core.DeviceID
	// SrcIP and DstIP are the pair's site addresses used for probes.
	SrcIP, DstIP netip.Addr
	// Goal is the pair's connectivity goal, with FromPipe/ToPipe pinned
	// to the pair's customer ports on the shared edge devices.
	Goal nm.Goal
}

// Intent wraps the pair's goal as a named store intent ("vpn-c<index>").
func (p SharedPair) Intent(prefer string) nm.Intent {
	return nm.Intent{Name: fmt.Sprintf("vpn-c%d", p.Index), Goal: p.Goal, Prefer: prefer}
}

// pairNets returns the addressing of pair j: the shared L2 uplink
// subnet's two ends and the two site LANs.
func pairNets(j int) (uplinkD, uplinkE netip.Prefix, lanD, lanE netip.Prefix) {
	return pfx(fmt.Sprintf("192.168.%d.1/24", 4+j)),
		pfx(fmt.Sprintf("192.168.%d.2/24", 4+j)),
		pfx(fmt.Sprintf("10.%d.1.1/24", 10+j)),
		pfx(fmt.Sprintf("10.%d.2.1/24", 10+j))
}

// addL2CustomerPair creates customer routers D<j>/E<j> for one pair of
// a switched (shared-subnet) testbed, registers the pair's domains and
// gateways with the NM, and returns the pair descriptor. The caller
// wires the routers to the edge ports named in the returned goal.
func addL2CustomerPair(tb *Testbed, j int, fromMod, toMod core.ModuleRef, portA, portC string) (SharedPair, error) {
	uplinkD, uplinkE, lanD, lanE := pairNets(j)
	dID := core.DeviceID(fmt.Sprintf("D%d", j))
	eID := core.DeviceID(fmt.Sprintf("E%d", j))
	d, err := customerRouter(tb.Net, dID, uplinkD, lanD, uplinkE.Addr())
	if err != nil {
		return SharedPair{}, err
	}
	e, err := customerRouter(tb.Net, eID, uplinkE, lanE, uplinkD.Addr())
	if err != nil {
		return SharedPair{}, err
	}
	// L2 endpoints share one subnet: replace the default route with
	// site-specific routes via the peer router.
	resetCustomerL2(d, uplinkD, uplinkE.Addr(), lanE.Masked())
	resetCustomerL2(e, uplinkE, uplinkD.Addr(), lanD.Masked())
	tb.Customer[dID], tb.Customer[eID] = d, e

	s1, s2 := fmt.Sprintf("C%d-S1", j), fmt.Sprintf("C%d-S2", j)
	gw1, gw2 := fmt.Sprintf("C%d-S1-gateway", j), fmt.Sprintf("C%d-S2-gateway", j)
	tb.NM.SetDomain(s1, lanD.Masked().String())
	tb.NM.SetDomain(s2, lanE.Masked().String())
	tb.NM.SetGateway(gw1, uplinkD.Addr().String())
	tb.NM.SetGateway(gw2, uplinkE.Addr().String())

	return SharedPair{
		Index: j, D: dID, E: eID,
		SrcIP: lanD.Addr(), DstIP: lanE.Addr(),
		Goal: nm.Goal{
			From: fromMod, To: toMod,
			FromPipe: modules.PhysPipeID(portA), ToPipe: modules.PhysPipeID(portC),
			FromDomain: s1, ToDomain: s2,
			FromGateway: gw1, ToGateway: gw2,
			TrafficDomain: fmt.Sprintf("C%d", j),
			TagClassified: true,
		},
	}, nil
}

// mkVLANSwitch creates one managed L2 switch with an ETH module across
// all ports (the given customer ports marked external) and a VLAN
// module (VID 22).
func mkVLANSwitch(tb *Testbed, id core.DeviceID, ethID, vlanID core.ModuleID, custPorts, trunkPorts []string) error {
	ports := append(append([]string{}, custPorts...), trunkPorts...)
	dev, err := device.New(tb.Net, id, kernel.RoleSwitch, ports...)
	if err != nil {
		return err
	}
	tb.Devices[id] = dev
	eth := modules.NewETH(dev.MA, ethID, true, ports...)
	for _, p := range custPorts {
		dev.MarkExternal(p)
	}
	eth.RegisterPhysical(dev.MA, custPorts...)
	dev.AddModule(eth)
	dev.AddModule(modules.NewVLAN(dev.MA, vlanID, 22, "C1", 1504))
	return nil
}

// BuildDiamondShared constructs the shared-core diamond of the
// multi-intent scenarios: k customer pairs on edge switches A and C,
// two equivalent transit switches B1 and B2 (deterministic enumeration
// prefers B1), one VLAN tunnel domain. Pair j's VPN crosses the same
// edge and transit switches as every other pair's, so their
// configurations overlap on every managed device:
//
//	D1 --cust1--\                    /--cust1-- E1
//	             A ==== B1 ==== C
//	D2 --cust2--/  \\              //  \--cust2-- E2
//	                ==== B2 ====
//
// (A-B1/B1-C carry the tunnel; A-B2/B2-C are the standby diamond arm.)
func BuildDiamondShared(k int) (*Testbed, []SharedPair, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("experiments: diamond needs k >= 1 pairs, got %d", k)
	}
	tb, err := newBareBase(nil)
	if err != nil {
		return nil, nil, err
	}
	custPorts := make([]string, k)
	for j := 1; j <= k; j++ {
		custPorts[j-1] = fmt.Sprintf("cust%d", j)
	}
	if err := mkVLANSwitch(tb, "A", "a", "d", custPorts, []string{"toB1", "toB2"}); err != nil {
		return nil, nil, err
	}
	if err := mkVLANSwitch(tb, "B1", "m1", "v1", nil, []string{"left", "right"}); err != nil {
		return nil, nil, err
	}
	if err := mkVLANSwitch(tb, "B2", "m2", "v2", nil, []string{"left", "right"}); err != nil {
		return nil, nil, err
	}
	if err := mkVLANSwitch(tb, "C", "c", "f", custPorts, []string{"toB1", "toB2"}); err != nil {
		return nil, nil, err
	}
	for _, l := range []struct {
		name string
		a, b netsim.PortID
	}{
		{"A-B1", netsim.PortID{Device: "A", Name: "toB1"}, netsim.PortID{Device: "B1", Name: "left"}},
		{"A-B2", netsim.PortID{Device: "A", Name: "toB2"}, netsim.PortID{Device: "B2", Name: "left"}},
		{"B1-C", netsim.PortID{Device: "B1", Name: "right"}, netsim.PortID{Device: "C", Name: "toB1"}},
		{"B2-C", netsim.PortID{Device: "B2", Name: "right"}, netsim.PortID{Device: "C", Name: "toB2"}},
	} {
		if err := connect(tb.Net, l.name, l.a, l.b); err != nil {
			return nil, nil, err
		}
	}
	fromMod := core.Ref(core.NameETH, "A", "a")
	toMod := core.Ref(core.NameETH, "C", "c")
	pairs := make([]SharedPair, 0, k)
	for j := 1; j <= k; j++ {
		port := fmt.Sprintf("cust%d", j)
		p, err := addL2CustomerPair(tb, j, fromMod, toMod, port, port)
		if err != nil {
			return nil, nil, err
		}
		if err := connect(tb.Net, fmt.Sprintf("D%d-A", j),
			netsim.PortID{Device: p.D, Name: "eth0"},
			netsim.PortID{Device: "A", Name: port}); err != nil {
			return nil, nil, err
		}
		if err := connect(tb.Net, fmt.Sprintf("C-E%d", j),
			netsim.PortID{Device: "C", Name: port},
			netsim.PortID{Device: p.E, Name: "eth0"}); err != nil {
			return nil, nil, err
		}
		pairs = append(pairs, p)
	}
	if err := tb.startAll(); err != nil {
		return nil, nil, err
	}
	return tb, pairs, nil
}

// BuildLinearVLANShared builds a linear chain of n L2 switches carrying
// k concurrent customer pairs: every pair's VLAN tunnel traverses the
// same n-switch core, so all transit configuration is shared k ways and
// only the customer-port classification at the edges is per-pair.
func BuildLinearVLANShared(n, k int) (*Testbed, []SharedPair, error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("experiments: linear chain needs n >= 2, got %d", n)
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("experiments: shared chain needs k >= 1 pairs, got %d", k)
	}
	tb, err := newBareBase(nil)
	if err != nil {
		return nil, nil, err
	}
	custPorts := make([]string, k)
	for j := 1; j <= k; j++ {
		custPorts[j-1] = fmt.Sprintf("cust%d", j)
	}
	for i := 1; i <= n; i++ {
		var cust, trunks []string
		switch i {
		case 1:
			cust, trunks = custPorts, []string{chainRight}
		case n:
			cust, trunks = custPorts, []string{chainLeft}
		default:
			trunks = []string{chainLeft, chainRight}
		}
		if err := mkVLANSwitch(tb, rid(i), "eth", "vlan", cust, trunks); err != nil {
			return nil, nil, err
		}
	}
	for i := 1; i < n; i++ {
		if err := connect(tb.Net, fmt.Sprintf("R%d-R%d", i, i+1),
			netsim.PortID{Device: rid(i), Name: chainRight},
			netsim.PortID{Device: rid(i + 1), Name: chainLeft}); err != nil {
			return nil, nil, err
		}
	}
	fromMod := core.Ref(core.NameETH, rid(1), "eth")
	toMod := core.Ref(core.NameETH, rid(n), "eth")
	pairs := make([]SharedPair, 0, k)
	for j := 1; j <= k; j++ {
		port := fmt.Sprintf("cust%d", j)
		p, err := addL2CustomerPair(tb, j, fromMod, toMod, port, port)
		if err != nil {
			return nil, nil, err
		}
		if err := connect(tb.Net, fmt.Sprintf("D%d-R1", j),
			netsim.PortID{Device: p.D, Name: "eth0"},
			netsim.PortID{Device: rid(1), Name: port}); err != nil {
			return nil, nil, err
		}
		if err := connect(tb.Net, fmt.Sprintf("Rn-E%d", j),
			netsim.PortID{Device: rid(n), Name: port},
			netsim.PortID{Device: p.E, Name: "eth0"}); err != nil {
			return nil, nil, err
		}
		pairs = append(pairs, p)
	}
	if err := tb.startAll(); err != nil {
		return nil, nil, err
	}
	return tb, pairs, nil
}

// VerifyPair injects probe traffic between one customer pair's sites
// and reports whether both directions deliver; it also confirms that
// traffic to a prefix outside the pair's VPN does not leak through.
func (tb *Testbed) VerifyPair(p SharedPair, token uint32) error {
	d, e := tb.Customer[p.D], tb.Customer[p.E]
	if d == nil || e == nil {
		return fmt.Errorf("experiments: pair %d has no customer routers", p.Index)
	}
	if err := d.SendProbeFrom(p.SrcIP, p.DstIP, token); err != nil {
		return err
	}
	tb.Net.Flush()
	found := false
	for _, tok := range e.ProbeEchoes() {
		if tok == token {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("experiments: pair %d probe %d did not reach site S2", p.Index, token)
	}
	replied := false
	for _, tok := range d.ProbeReplies() {
		if tok == token {
			replied = true
		}
	}
	if !replied {
		return fmt.Errorf("experiments: pair %d probe %d reply did not return", p.Index, token)
	}
	if err := d.SendProbeFrom(p.SrcIP, ip("8.8.8.8"), token+1); err != nil {
		return err
	}
	tb.Net.Flush()
	for _, tok := range e.ProbeEchoes() {
		if tok == token+1 {
			return fmt.Errorf("experiments: pair %d traffic to a foreign prefix leaked", p.Index)
		}
	}
	return nil
}
