package experiments

import (
	"context"

	"conman/internal/core"
	"conman/internal/nm"
)

// StartDaemon runs an autonomous reconciliation daemon over the
// testbed's NM on its own goroutine and returns it with a stop
// function. The daemon performs an initial reconcile immediately, so
// callers typically WaitConverged before injecting faults.
func (tb *Testbed) StartDaemon(cfg nm.DaemonConfig) (*nm.Daemon, func()) {
	d := nm.NewDaemon(tb.NM, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = d.Run(ctx)
	}()
	return d, func() {
		cancel()
		<-done
	}
}

// KillDevice simulates a device dying: every wire touching it is cut —
// the device and its neighbours see carrier loss and re-report topology
// while the management channel still works, like NICs dropping before
// the box goes silent — and then its management endpoint is detached,
// so NM calls to it fail immediately instead of timing out.
func (tb *Testbed) KillDevice(id core.DeviceID) error {
	for _, name := range tb.Net.Media() {
		m, ok := tb.Net.Medium(name)
		if !ok || !m.Up() {
			continue
		}
		touches := false
		for _, p := range m.Ports() {
			if p.Device == id {
				touches = true
				break
			}
		}
		if !touches {
			continue
		}
		if err := tb.Net.SetMediumUp(name, false); err != nil {
			return err
		}
	}
	if tb.Hub != nil {
		tb.Hub.Detach(string(id))
	}
	return nil
}
