package experiments

import (
	"strings"
	"testing"

	"conman/internal/nm"
)

func findPaths(t *testing.T, tb *Testbed) []*nm.Path {
	t.Helper()
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		t.Fatal(err)
	}
	goal := Fig4Goal()
	paths, _, err := g.FindPaths(nm.FindSpec{
		From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain,
	})
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

func pathByDescription(t *testing.T, paths []*nm.Path, desc string) *nm.Path {
	t.Helper()
	for _, p := range paths {
		if p.Describe() == desc {
			return p
		}
	}
	var got []string
	for _, p := range paths {
		got = append(got, p.Describe()+" ["+p.Modules()+"]")
	}
	t.Fatalf("no path %q among:\n%s", desc, strings.Join(got, "\n"))
	return nil
}

func TestFig4PathFinderFindsNinePaths(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	paths := findPaths(t, tb)
	var got []string
	for _, p := range paths {
		got = append(got, p.Describe()+" ["+p.Modules()+"]")
	}
	if len(paths) != 9 {
		t.Fatalf("found %d paths, want 9 (§III-C.1):\n%s", len(paths), strings.Join(got, "\n"))
	}
	// The three expected paths of §III-C.1, with the paper's module
	// sequences.
	want := map[string]string{
		"IP-IP tunnel":  "a, g, h, b, c, i, d, e, j, k, f",
		"GRE-IP tunnel": "a, g, l, h, b, c, i, d, e, j, n, k, f",
		"MPLS":          "a, g, o, b, c, p, d, e, q, k, f",
	}
	for desc, mods := range want {
		p := pathByDescription(t, paths, desc)
		if p.Modules() != mods {
			t.Errorf("%s path = %q, want %q", desc, p.Modules(), mods)
		}
	}
	// The six additional combinations the paper reports.
	for _, desc := range []string{
		"IP-IP tunnel over MPLS",
		"GRE-IP tunnel over MPLS",
		"IP-IP tunnel over MPLS (A-B)",
		"IP-IP tunnel over MPLS (B-C)",
		"GRE-IP tunnel over MPLS (A-B)",
		"GRE-IP tunnel over MPLS (B-C)",
	} {
		pathByDescription(t, paths, desc)
	}
}

func TestFig4SelectorPrefersMPLS(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	paths := findPaths(t, tb)
	best := nm.SelectPath(paths)
	if best == nil {
		t.Fatal("no path selected")
	}
	// §III-C.1: MPLS and IP-IP tie on pipe count; the NM prefers MPLS
	// because its abstraction advertises good forwarding bandwidth.
	if best.Describe() != "MPLS" {
		t.Fatalf("selected %q [%s], want MPLS", best.Describe(), best.Modules())
	}
}

func TestFig7GREConfigurationEndToEnd(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	paths := findPaths(t, tb)
	gre := pathByDescription(t, paths, "GRE-IP tunnel")
	scripts, err := tb.NM.Compile(gre, Fig4Goal())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NM.Execute(scripts); err != nil {
		t.Fatal(err)
	}
	for id, dev := range tb.Devices {
		if n := dev.MA.PendingRules(); n != 0 {
			t.Fatalf("device %s still has %d pending rules; failed: %v", id, n, dev.MA.FailedRules())
		}
		if f := dev.MA.FailedRules(); len(f) != 0 {
			t.Fatalf("device %s failed rules: %v", id, f)
		}
	}
	if err := tb.VerifyConnectivity(1000); err != nil {
		t.Fatal(err)
	}
	// The generated device-level configuration on A must contain the
	// same command the paper shows (§III-B): a keyed GRE tunnel with
	// sequence numbers and checksums.
	log := strings.Join(tb.Devices["A"].Kernel.ExecLog(), "\n")
	for _, want := range []string{"ip tunnel add name gre-", "ikey", "okey", "iseq oseq", "icsum ocsum"} {
		if !strings.Contains(log, want) {
			t.Errorf("device A exec log missing %q:\n%s", want, log)
		}
	}
}

func TestFig8MPLSConfigurationEndToEnd(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	paths := findPaths(t, tb)
	mpls := pathByDescription(t, paths, "MPLS")
	scripts, err := tb.NM.Compile(mpls, Fig4Goal())
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NM.Execute(scripts); err != nil {
		t.Fatal(err)
	}
	for id, dev := range tb.Devices {
		if n := dev.MA.PendingRules(); n != 0 {
			t.Fatalf("device %s still has %d pending rules; failed: %v", id, n, dev.MA.FailedRules())
		}
	}
	if err := tb.VerifyConnectivity(2000); err != nil {
		t.Fatal(err)
	}
	// Fig 8a fidelity: A's device-level config uses ilm 10001 (in-label
	// from B) and pushes 2001 (B's in-label).
	log := strings.Join(tb.Devices["A"].Kernel.ExecLog(), "\n")
	for _, want := range []string{
		"mpls labelspace set dev eth2 labelspace 0",
		"mpls ilm add label gen 10001 labelspace 0",
		"push gen 2001 nexthop eth2 ipv4 204.9.168.2",
		"ip route add 10.0.2.0/24 via 204.9.168.2 mpls",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("device A exec log missing %q:\n%s", want, log)
		}
	}
	// The paper's Table VI notification: the far-end LSR reports the LSP.
	found := false
	for _, note := range tb.NM.Notifies() {
		if note.Kind == "lsp-established" {
			found = true
		}
	}
	if !found {
		t.Error("no lsp-established notification received by the NM")
	}
}

func TestFig9VLANConfigurationEndToEnd(t *testing.T) {
	tb, err := BuildFig9()
	if err != nil {
		t.Fatal(err)
	}
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		t.Fatal(err)
	}
	goal := Fig9Goal()
	paths, _, err := g.FindPaths(nm.FindSpec{
		From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no VLAN path found")
	}
	vlan := pathByDescription(t, paths, "VLAN tunnel")
	scripts, err := tb.NM.Compile(vlan, goal)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NM.Execute(scripts); err != nil {
		t.Fatal(err)
	}
	for id, dev := range tb.Devices {
		if n := dev.MA.PendingRules(); n != 0 {
			t.Fatalf("switch %s still has %d pending rules; failed: %v", id, n, dev.MA.FailedRules())
		}
	}
	if err := tb.VerifyConnectivity(3000); err != nil {
		t.Fatal(err)
	}
	// Fig 9a fidelity on switch A.
	log := strings.Join(tb.Devices["A"].Kernel.ExecLog(), "\n")
	for _, want := range []string{
		"set vlan 22 name C1 mtu 1504",
		"switchport access vlan 22",
		"switchport mode dot1q-tunnel",
		"set vlan 22 gigabitethernet0/9",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("switch A exec log missing %q:\n%s", want, log)
		}
	}
}
