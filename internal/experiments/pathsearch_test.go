package experiments

// Tests for the goal-directed best-first path finder: equivalence with
// the exhaustive enumerator on every built-in scenario, byte-identical
// determinism on long chains, and the beyond-the-cap regime (n=256)
// where enumerate-then-filter stops being trustworthy.

import (
	"fmt"
	"strings"
	"testing"

	"conman/internal/nm"
)

// pathSig renders a path for byte-exact comparison: module sequence
// plus switching-mode sequence (paths can share modules but differ in
// modes).
func pathSig(p *nm.Path) string {
	if p == nil {
		return "<none>"
	}
	var modes []string
	for _, h := range p.Hops {
		modes = append(modes, h.Mode.String())
	}
	return p.Modules() + " | " + strings.Join(modes, "")
}

// findBoth runs the same spec through the best-first engine and the
// exhaustive enumerator (uncapped, so small scenarios enumerate fully).
func findBoth(t *testing.T, g *nm.Graph, goal nm.Goal, prefer string) (best, exhaustive *nm.Path) {
	t.Helper()
	spec := nm.FindSpec{
		From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain,
		FromPipe: goal.FromPipe, ToPipe: goal.ToPipe,
		Prefer: prefer,
	}
	best, _, err := g.FindBest(spec)
	if err != nil {
		t.Fatalf("best-first (%q): %v", prefer, err)
	}
	spec.Exhaustive = true
	spec.MaxPaths = 200000
	exhaustive, _, err = g.FindBest(spec)
	if err != nil {
		t.Fatalf("exhaustive (%q): %v", prefer, err)
	}
	return best, exhaustive
}

// TestBestFirstMatchesExhaustive is the equivalence property over every
// built-in scenario: for the automatic selector and for every path
// flavour the enumerator can see, best-first and exhaustive must pick
// the identical path.
func TestBestFirstMatchesExhaustive(t *testing.T) {
	type scenario struct {
		name  string
		build func() (*Testbed, nm.Goal, error)
	}
	scenarios := []scenario{
		{"fig4", func() (*Testbed, nm.Goal, error) {
			tb, err := BuildFig4()
			return tb, Fig4Goal(), err
		}},
		{"fig9", func() (*Testbed, nm.Goal, error) {
			tb, err := BuildFig9()
			return tb, Fig9Goal(), err
		}},
		{"linear-GRE", func() (*Testbed, nm.Goal, error) {
			tb, err := BuildLinearGRE(6)
			return tb, LinearGoal(6, false), err
		}},
		{"linear-MPLS", func() (*Testbed, nm.Goal, error) {
			tb, err := BuildLinearMPLS(6)
			return tb, LinearGoal(6, false), err
		}},
		{"linear-VLAN", func() (*Testbed, nm.Goal, error) {
			tb, err := BuildLinearVLAN(6)
			return tb, LinearGoal(6, true), err
		}},
		{"diamond-shared", func() (*Testbed, nm.Goal, error) {
			tb, pairs, err := BuildDiamondShared(2)
			if err != nil {
				return nil, nm.Goal{}, err
			}
			return tb, pairs[0].Goal, nil
		}},
		{"linear-VLAN-shared", func() (*Testbed, nm.Goal, error) {
			tb, pairs, err := BuildLinearVLANShared(6, 2)
			if err != nil {
				return nil, nm.Goal{}, err
			}
			return tb, pairs[1].Goal, nil
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			tb, goal, err := sc.build()
			if err != nil {
				t.Fatal(err)
			}
			g, err := nm.BuildGraph(tb.NM)
			if err != nil {
				t.Fatal(err)
			}
			// Every flavour the (uncapped) enumerator can see, plus the
			// automatic selector.
			paths, _, err := g.FindPaths(nm.FindSpec{
				From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain,
				FromPipe: goal.FromPipe, ToPipe: goal.ToPipe, MaxPaths: 200000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(paths) == 0 {
				t.Fatal("enumerator found no paths")
			}
			flavours := []string{""}
			seen := map[string]bool{}
			for _, p := range paths {
				if d := p.Describe(); !seen[d] {
					seen[d] = true
					flavours = append(flavours, d)
				}
			}
			for _, prefer := range flavours {
				best, exh := findBoth(t, g, goal, prefer)
				if exh == nil {
					t.Fatalf("exhaustive found no path for prefer=%q", prefer)
				}
				if got, want := pathSig(best), pathSig(exh); got != want {
					t.Errorf("prefer=%q:\n best-first %s\n exhaustive %s", prefer, got, want)
				}
			}
		})
	}
}

// TestBestFirstDeterministicLongChain is the long-chain determinism
// golden: ten searches over the same n=128 graph must return
// byte-identical module and mode sequences (priority-queue tie-breaks
// must not leak map-iteration or heap-layout nondeterminism), and the
// result must be the canonical one-tag-spanning VLAN path.
func TestBestFirstDeterministicLongChain(t *testing.T) {
	const n = 128
	tb, err := BuildLinearVLAN(n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		t.Fatal(err)
	}
	goal := LinearGoal(n, true)
	spec := nm.FindSpec{From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain, Prefer: "VLAN tunnel"}

	// The canonical path enters each switch's ETH module, dives through
	// its VLAN module, and leaves through the ETH module again.
	canonical := strings.TrimSuffix(strings.Repeat("eth, vlan, eth, ", n), ", ")

	var first string
	for i := 0; i < 10; i++ {
		p, _, err := g.FindBest(spec)
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			t.Fatal("no path")
		}
		sig := pathSig(p)
		if i == 0 {
			first = sig
			if p.Modules() != canonical {
				t.Fatalf("run 0 is not the canonical path:\ngot  %s\nwant %s", p.Modules(), canonical)
			}
			continue
		}
		if sig != first {
			t.Fatalf("run %d differs:\nrun 0: %s\nrun %d: %s", i, first, i, sig)
		}
	}
}

// TestBestFirstBeyondEnumerationCap pins the regime the finder was
// rebuilt for: at n=256 the exhaustive enumerator truncates at
// DefaultMaxPaths — selection over the truncated set returns a
// cap-artifact hybrid — while best-first finds both the true automatic
// selection and the canonical preferred path, expanding an order of
// magnitude fewer states.
func TestBestFirstBeyondEnumerationCap(t *testing.T) {
	if testing.Short() {
		t.Skip("large topology")
	}
	const n = 256
	tb, err := BuildLinearVLAN(n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := nm.BuildGraph(tb.NM)
	if err != nil {
		t.Fatal(err)
	}
	goal := LinearGoal(n, true)
	base := nm.FindSpec{From: goal.From, To: goal.To, TrafficDomain: goal.TrafficDomain}

	// The old engine: enumeration hits the cap, and the minimum-pipe
	// selection over the truncated set is a hybrid artifact (canonical
	// prefix, transparent tail) instead of the true 4-pipe path.
	paths, exhStats, err := g.FindPaths(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < nm.DefaultMaxPaths {
		t.Fatalf("enumeration no longer hits the cap at n=%d (%d paths) — this test is stale", n, len(paths))
	}
	truncated := nm.SelectPath(paths)

	// Best-first, automatic selection: the true minimum-pipe path
	// (tag pushed at the edges, transparent core).
	best, bfStats, err := g.FindBest(base)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil {
		t.Fatal("best-first found no path")
	}
	if best.Pipes() >= truncated.Pipes() {
		t.Errorf("best-first pipes %d not better than truncated enumeration's %d", best.Pipes(), truncated.Pipes())
	}
	if best.Pipes() != 4 {
		t.Errorf("true best path has %d pipes, want 4 (%s)", best.Pipes(), best.Describe())
	}

	// Best-first, preferred canonical flavour.
	prefSpec := base
	prefSpec.Prefer = "VLAN tunnel"
	canon, prefStats, err := g.FindBest(prefSpec)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimSuffix(strings.Repeat("eth, vlan, eth, ", n), ", ")
	if canon == nil || canon.Modules() != want {
		t.Fatalf("best-first did not find the canonical VLAN path at n=%d", n)
	}

	// Cost: the goal-directed preferred search expands an order of
	// magnitude fewer states than the capped enumeration; the automatic
	// selector (which must sweep every flavour corridor before the
	// cheapest completion is provably best) still expands several times
	// fewer — and returns the right answer where the enumerator cannot.
	if prefStats.Expanded*10 > exhStats.Expanded {
		t.Errorf("prefer: best-first expanded %d states, exhaustive %d — want >=10x fewer",
			prefStats.Expanded, exhStats.Expanded)
	}
	if bfStats.Expanded*2 > exhStats.Expanded {
		t.Errorf("auto: best-first expanded %d states, exhaustive %d — want >=2x fewer",
			bfStats.Expanded, exhStats.Expanded)
	}
	t.Logf("n=%d: exhaustive %d expansions (capped at %d paths); best-first auto %d, prefer %d",
		n, exhStats.Expanded, len(paths), bfStats.Expanded, prefStats.Expanded)
}

// TestLongChainVLANConfigure drives the full intent pipeline on the L2
// chains the enumerator struggled with: plan + apply at n=64 (and
// n=128 unless -short) keeps the Table VI message formulas, proving
// the best-first finder feeds the compiler the canonical path far
// beyond the paper's lab scale.
func TestLongChainVLANConfigure(t *testing.T) {
	ns := []int{64}
	if !testing.Short() {
		ns = append(ns, 128)
	}
	sc, err := LinearScenarioByName("VLAN")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			tb, err := sc.Build(n)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sc.ConfigureLinear(tb, n); err != nil {
				t.Fatal(err)
			}
			c := tb.NM.Counters()
			if c.Sent() != sc.WantSent(n) || c.Received() != sc.WantRecv(n) {
				t.Errorf("sent %d (want %d), received %d (want %d)",
					c.Sent(), sc.WantSent(n), c.Received(), sc.WantRecv(n))
			}
		})
	}
}

// TestResolvedValueDriftReplan is the drift regression: a SetDomain or
// SetGateway change after a successful apply must surface as a
// non-empty plan (the installed rule still matches abstractly but its
// concrete resolution diverged), and applying that plan must converge.
func TestResolvedValueDriftReplan(t *testing.T) {
	sc, err := LinearScenarioByName("GRE")
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	tb, err := sc.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.ConfigureLinear(tb, n); err != nil {
		t.Fatal(err)
	}
	intent := sc.Intent(n)

	fresh, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Empty() {
		t.Fatalf("plan right after apply is not empty:\n%s", fresh.Render())
	}

	// Drift the destination domain: the ingress classifier's resolved
	// prefix changes while the abstract rule stays identical.
	tb.NM.SetDomain("C1-S2", "10.0.99.0/24")
	drifted, err := tb.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if drifted.Empty() {
		t.Fatal("SetDomain drift produced an empty plan — resolved-value drift not detected")
	}
	rendered := drifted.Render()
	if !strings.Contains(rendered, "dst:C1-S2") {
		t.Errorf("drift plan does not recreate the classified ingress rule:\n%s", rendered)
	}
	if len(drifted.Deletes) == 0 {
		t.Errorf("drift plan does not delete the stale rule:\n%s", rendered)
	}
	if err := tb.NM.Apply(drifted); err != nil {
		t.Fatal(err)
	}
	if again, err := tb.NM.Plan(intent); err != nil || !again.Empty() {
		t.Fatalf("plan after drift apply not empty (err=%v):\n%s", err, again.Render())
	}

	// Gateway drift is detected the same way, through the store tier.
	if err := tb.NM.Submit(intent); err != nil {
		t.Fatal(err)
	}
	if plan, err := tb.NM.Reconcile(); err != nil || !plan.Empty() {
		t.Fatalf("first store reconcile not clean (err=%v)", err)
	}
	tb.NM.SetGateway("S2-gateway", "192.168.1.77")
	plan, err := tb.NM.PlanStore()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty() {
		t.Fatal("SetGateway drift produced an empty store plan")
	}
}

// TestStoreConflictEndToEnd drives the conflict check through the real
// pipeline: two registered intents over the same goal but different
// flavours compile classified ingress rules that steer the same
// customer prefix into different tunnels — Reconcile must refuse with
// a ConflictError naming both.
func TestStoreConflictEndToEnd(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	goal := Fig4Goal()
	if err := tb.NM.Submit(nm.Intent{Name: "vpn-gre", Goal: goal, Prefer: "GRE-IP tunnel"}); err != nil {
		t.Fatal(err)
	}
	if err := tb.NM.Submit(nm.Intent{Name: "vpn-mpls", Goal: goal, Prefer: "MPLS"}); err != nil {
		t.Fatal(err)
	}
	_, err = tb.NM.Reconcile()
	ce, ok := err.(*nm.ConflictError)
	if !ok {
		t.Fatalf("Reconcile() = %v, want *nm.ConflictError", err)
	}
	names := []string{ce.IntentA, ce.IntentB}
	for _, want := range []string{"vpn-gre", "vpn-mpls"} {
		if names[0] != want && names[1] != want {
			t.Errorf("conflict does not name %q: %v", want, names)
		}
	}
	// Withdrawing one side resolves the conflict.
	if err := tb.NM.Withdraw("vpn-mpls"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		t.Fatalf("reconcile after withdraw: %v", err)
	}
}
