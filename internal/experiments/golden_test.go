package experiments

import (
	"os"
	"testing"
)

// TestRunnersMatchPreRefactorGoldens pins the Fig 7/8/9 comparisons and
// the Table VI rendering byte-for-byte to the outputs captured from the
// one-shot (pre-Intent-API) runners. The declarative Plan/Apply rebuild
// must not change a single byte of the paper artifacts.
func TestRunnersMatchPreRefactorGoldens(t *testing.T) {
	check := func(name, got string) {
		t.Helper()
		want, err := os.ReadFile("testdata/" + name)
		if err != nil {
			t.Fatalf("golden %s: %v", name, err)
		}
		if got != string(want) {
			t.Errorf("%s drifted from the pre-refactor output.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}

	f7, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	check("fig7.golden", f7.Render())

	f8, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	check("fig8.golden", f8.Render())

	f9, err := Fig9Run()
	if err != nil {
		t.Fatal(err)
	}
	check("fig9.golden", f9.Render())

	_, t6, err := Table6([]int{3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	check("table6.golden", t6)
}
