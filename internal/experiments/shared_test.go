package experiments

import (
	"fmt"
	"testing"

	"conman/internal/core"
)

// TestSharedCoreCoexistence is the regression test for the ROADMAP's
// shared-device pruning limitation: with the single-intent Plan, applying
// intent B on devices shared with intent A pruned A's components. With
// the intent store, Reconcile after Submit(B) must leave A's delivery
// intact — the two VPNs cross the same edge and transit switches, their
// shared pipes and rules are configured once, and a further Reconcile
// sends zero commands.
func TestSharedCoreCoexistence(t *testing.T) {
	tb, pairs, err := BuildDiamondShared(2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := pairs[0].Intent("VLAN tunnel"), pairs[1].Intent("VLAN tunnel")

	if err := tb.NM.Submit(a); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyPair(pairs[0], 96000); err != nil {
		t.Fatalf("pair 1 after first reconcile: %v", err)
	}

	// The old limitation: planning B would have deleted A's components
	// on the shared devices. The store-wide Reconcile must not.
	if err := tb.NM.Submit(b); err != nil {
		t.Fatal(err)
	}
	plan, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Deletes) != 0 {
		t.Errorf("reconcile after Submit(B) pruned intent A's components:\n%s", plan.Render())
	}
	if plan.Shared == 0 {
		t.Errorf("no shared components across the two VPNs:\n%s", plan.Render())
	}
	if err := tb.VerifyPair(pairs[0], 96100); err != nil {
		t.Errorf("pair 1 delivery broken by pair 2's configuration: %v", err)
	}
	if err := tb.VerifyPair(pairs[1], 96200); err != nil {
		t.Errorf("pair 2 after reconcile: %v", err)
	}

	// Idempotence: a further Reconcile observes only, sends nothing.
	before := tb.NM.Counters()
	again, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Errorf("second reconcile not empty:\n%s", again.Render())
	}
	if after := tb.NM.Counters(); before != after {
		t.Errorf("second reconcile sent traffic: before %+v, after %+v", before, after)
	}
}

// TestWithdrawRemovesOnlyUnshared continues the shared-core scenario:
// withdrawing one VPN must delete exactly its unshared components (the
// customer-port classification at the edges) and leave every shared
// pipe, transit rule and the other VPN's delivery untouched; withdrawing
// the last VPN then clears the remaining devices completely.
func TestWithdrawRemovesOnlyUnshared(t *testing.T) {
	tb, pairs, err := BuildDiamondShared(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(97000+100*i)); err != nil {
			t.Fatalf("pair %d before withdraw: %v", p.Index, err)
		}
	}

	if err := tb.NM.Withdraw("vpn-c1"); err != nil {
		t.Fatal(err)
	}
	plan, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Creates) != 0 {
		t.Errorf("withdraw reconcile created components:\n%s", plan.Render())
	}
	if len(plan.Deletes) == 0 {
		t.Fatalf("withdraw reconcile deleted nothing:\n%s", plan.Render())
	}
	for _, ds := range plan.Deletes {
		if ds.Device == "B1" || ds.Device == "B2" {
			t.Errorf("withdraw pruned shared transit device %s:\n%s", ds.Device, ds.Script())
		}
		for _, item := range ds.Items {
			if item.Delete != nil && item.Delete.Req.Kind == core.ComponentPipe {
				t.Errorf("withdraw deleted a shared pipe on %s: %s", ds.Device, item.Delete.Req.ID)
			}
		}
	}
	// The surviving VPN still delivers; the withdrawn one is dark.
	if err := tb.VerifyPair(pairs[1], 97500); err != nil {
		t.Errorf("surviving pair broken by withdraw: %v", err)
	}
	d := tb.Customer[pairs[0].D]
	if err := d.SendProbeFrom(pairs[0].SrcIP, pairs[0].DstIP, 97600); err != nil {
		t.Fatal(err)
	}
	tb.Net.Flush()
	for _, tok := range tb.Customer[pairs[0].E].ProbeEchoes() {
		if tok == 97600 {
			t.Error("withdrawn pair still delivers")
		}
	}

	// Withdrawing the last intent clears everything (Destroy parity).
	if err := tb.NM.Withdraw("vpn-c2"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		t.Fatal(err)
	}
	for _, dev := range []core.DeviceID{"A", "B1", "B2", "C"} {
		if deviceConfigured(t, tb, dev) {
			t.Errorf("device %s still configured after last withdraw", dev)
		}
	}
}

// TestWithdrawLastIsDestroyParity pins Destroy-vs-Withdraw equivalence
// on the Fig 4 routed testbed: withdrawing the only registered intent
// and reconciling leaves the network exactly as Destroy does — the GRE
// self-test reports the path gone, probes stop, and re-submitting plans
// pure creation again.
func TestWithdrawLastIsDestroyParity(t *testing.T) {
	intent := VPNIntent(Fig4Goal(), "GRE-IP tunnel")

	// Reference run: the per-intent lifecycle's Destroy.
	ref, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ref.NM.Plan(intent)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.NM.Apply(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.NM.Destroy(intent); err != nil {
		t.Fatal(err)
	}

	// Store run: Submit + Reconcile, then Withdraw + Reconcile.
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.NM.Submit(intent); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(98000); err != nil {
		t.Fatalf("after reconcile: %v", err)
	}
	if err := tb.NM.Withdraw(intent.Name); err != nil {
		t.Fatal(err)
	}
	down, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(down.Deletes) == 0 {
		t.Fatal("withdraw reconcile deleted nothing")
	}

	// Both testbeds must agree the path is gone.
	for name, b := range map[string]*Testbed{"destroy": ref, "withdraw": tb} {
		ok, detail, err := b.NM.SelfTest(core.Ref(core.NameGRE, "A", "l"), "P1")
		if err != nil {
			t.Fatalf("%s selfTest: %v", name, err)
		}
		if ok {
			t.Errorf("%s: GRE self-test still passes: %s", name, detail)
		}
		for _, dev := range []core.DeviceID{"A", "B", "C"} {
			if deviceConfigured(t, b, dev) {
				t.Errorf("%s: device %s still configured", name, dev)
			}
		}
	}
	d, e := tb.Customer["D"], tb.Customer["E"]
	if err := d.SendProbeFrom(ip("10.0.1.1"), ip("10.0.2.1"), 98100); err != nil {
		t.Fatal(err)
	}
	tb.Net.Flush()
	for _, tok := range e.ProbeEchoes() {
		if tok == 98100 {
			t.Error("probe still delivered after withdraw")
		}
	}
	// Re-submitting plans pure creation, and the network heals.
	if err := tb.NM.Submit(intent); err != nil {
		t.Fatal(err)
	}
	replan, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if len(replan.Creates) == 0 || len(replan.Deletes) != 0 {
		t.Errorf("post-withdraw resubmit is not pure creation:\n%s", replan.Render())
	}
	if err := tb.VerifyConnectivity(98200); err != nil {
		t.Fatalf("after resubmit: %v", err)
	}
}

// TestStoreHealsKilledPipe is the store-level failure-repair loop: one
// configured pipe is killed out of band, and the next Reconcile must
// observe the damage and repair exactly it — creates land only on the
// damaged device, every other intent component stays untouched.
func TestStoreHealsKilledPipe(t *testing.T) {
	tb, err := BuildFig4()
	if err != nil {
		t.Fatal(err)
	}
	intent := VPNIntent(Fig4Goal(), "GRE-IP tunnel")
	if err := tb.NM.Submit(intent); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.NM.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if err := tb.VerifyConnectivity(99000); err != nil {
		t.Fatalf("before failure: %v", err)
	}
	if err := tb.NM.Delete(core.DeleteRequest{
		Kind: core.ComponentPipe, Module: core.Ref(core.NameGRE, "A", "l"), ID: "P1",
	}); err != nil {
		t.Fatal(err)
	}
	repair, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if repair.Empty() {
		t.Fatal("reconcile after pipe kill is empty — damage not observed")
	}
	for _, ds := range repair.Creates {
		if ds.Device != "A" {
			t.Errorf("repair touches %s:\n%s", ds.Device, ds.Script())
		}
	}
	if err := tb.VerifyConnectivity(99100); err != nil {
		t.Fatalf("after repair: %v", err)
	}
}

// TestStoreRerouteKeepsOtherIntent combines failure rerouting with the
// store: both VPNs run via transit B1; the A-B1 wire is cut and the
// affected devices re-report topology. One Reconcile must migrate both
// VPNs to B2, prune everything stranded on B1, and keep both customer
// pairs delivering.
func TestStoreRerouteKeepsOtherIntent(t *testing.T) {
	tb, pairs, err := BuildDiamondShared(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
			t.Fatal(err)
		}
	}
	first, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range first.Views {
		if on := pathDevices(v.Path); !on["B1"] || on["B2"] {
			t.Fatalf("intent %q not initially via B1: %s", v.Intent.Name, v.Path.Modules())
		}
	}

	if err := tb.Net.SetMediumUp("A-B1", false); err != nil {
		t.Fatal(err)
	}
	for _, id := range []core.DeviceID{"A", "B1"} {
		if err := tb.Devices[id].MA.ReportTopology(); err != nil {
			t.Fatal(err)
		}
	}

	replan, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	prunesB1 := false
	for _, ds := range replan.Deletes {
		if ds.Device == "B1" {
			prunesB1 = true
		}
	}
	if !prunesB1 {
		t.Errorf("reroute reconcile does not prune stranded B1:\n%s", replan.Render())
	}
	if deviceConfigured(t, tb, "B1") {
		t.Error("stranded device B1 still carries configuration")
	}
	for i, p := range pairs {
		if err := tb.VerifyPair(p, uint32(99500+100*i)); err != nil {
			t.Errorf("pair %d after reroute: %v", p.Index, err)
		}
	}
	again, err := tb.NM.Reconcile()
	if err != nil {
		t.Fatal(err)
	}
	if !again.Empty() {
		t.Errorf("reconcile after reroute not converged:\n%s", again.Render())
	}
}

// TestLinearSharedGoals scales the store to k concurrent goals over one
// shared n-switch core, at the Table VI chain lengths n=16 and n=64:
// one Reconcile configures all pairs, transit state is shared k ways,
// withdrawal keeps the shared core for the surviving pairs, and the
// final withdrawal clears it.
func TestLinearSharedGoals(t *testing.T) {
	const k = 2
	for _, n := range []int{16, 64} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			if testing.Short() && n > 16 {
				t.Skip("short mode")
			}
			tb, pairs, err := BuildLinearVLANShared(n, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pairs {
				if err := tb.NM.Submit(p.Intent("VLAN tunnel")); err != nil {
					t.Fatal(err)
				}
			}
			plan, err := tb.NM.Reconcile()
			if err != nil {
				t.Fatal(err)
			}
			if plan.Shared == 0 {
				t.Errorf("no shared components on the %d-switch core", n)
			}
			for i, p := range pairs {
				if err := tb.VerifyPair(p, uint32(100000+1000*n+100*i)); err != nil {
					t.Fatalf("pair %d at n=%d: %v", p.Index, n, err)
				}
			}
			again, err := tb.NM.Reconcile()
			if err != nil {
				t.Fatal(err)
			}
			if !again.Empty() {
				t.Errorf("n=%d reconcile not idempotent:\n%s", n, again.Render())
			}

			// Withdraw the first pair: the shared core must survive for
			// the second.
			if err := tb.NM.Withdraw(pairs[0].Intent("VLAN tunnel").Name); err != nil {
				t.Fatal(err)
			}
			down, err := tb.NM.Reconcile()
			if err != nil {
				t.Fatal(err)
			}
			mid := rid(n / 2)
			for _, ds := range down.Deletes {
				if ds.Device == mid {
					t.Errorf("withdraw pruned shared transit %s:\n%s", mid, ds.Script())
				}
			}
			if err := tb.VerifyPair(pairs[1], uint32(101000+1000*n)); err != nil {
				t.Errorf("surviving pair at n=%d: %v", n, err)
			}
			if !deviceConfigured(t, tb, mid) {
				t.Errorf("transit %s lost its shared configuration", mid)
			}

			// Withdraw the last pair: the whole chain goes dark.
			if err := tb.NM.Withdraw(pairs[1].Intent("VLAN tunnel").Name); err != nil {
				t.Fatal(err)
			}
			if _, err := tb.NM.Reconcile(); err != nil {
				t.Fatal(err)
			}
			for _, dev := range []core.DeviceID{rid(1), mid, rid(n)} {
				if deviceConfigured(t, tb, dev) {
					t.Errorf("device %s still configured after last withdraw", dev)
				}
			}
		})
	}
}
