// Package experiments builds the paper's evaluation environments and
// regenerates every table and figure of the evaluation section (§III):
// the Fig 4 VPN testbed, the Fig 9 switched topology, linear-n sweeps for
// Table VI, and runners that produce the paper artifacts.
package experiments

import (
	"net/netip"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
	"conman/internal/modules"
	"conman/internal/msg"
	"conman/internal/netsim"
	"conman/internal/nm"
	"conman/internal/packet"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// EndpointFactory creates named management-channel endpoints; it
// abstracts the transport a testbed runs its management traffic over
// (in-process Hub, real UDP sockets, ...).
type EndpointFactory func(name string) (channel.Endpoint, error)

// Testbed is a built environment: simulated network, managed devices,
// unmanaged customer routers, management channel and NM.
type Testbed struct {
	Net *netsim.Network
	// Hub is the in-process management channel (nil when the testbed was
	// built over another transport via an EndpointFactory).
	Hub      *channel.Hub
	NM       *nm.NM
	Devices  map[core.DeviceID]*device.Device
	Customer map[core.DeviceID]*kernel.Kernel

	factory   EndpointFactory
	endpoints []channel.Endpoint
}

// newEndpoint creates (and tracks for Close) one management-channel
// endpoint through the testbed's transport.
func (tb *Testbed) newEndpoint(name string) (channel.Endpoint, error) {
	ep, err := tb.factory(name)
	if err != nil {
		return nil, err
	}
	tb.endpoints = append(tb.endpoints, ep)
	return ep, nil
}

// Close releases the management-channel endpoints (real sockets for
// transports like UDP; a no-op for the in-process Hub).
func (tb *Testbed) Close() {
	for _, ep := range tb.endpoints {
		_ = ep.Close()
	}
	tb.endpoints = nil
}

// customerRouter creates an unmanaged customer edge router (the paper's D
// and E): uplink address, site LAN, default route to the ISP, proxy ARP.
func customerRouter(net *netsim.Network, id core.DeviceID, uplinkAddr, lan netip.Prefix, gw netip.Addr) (*kernel.Kernel, error) {
	dev := id
	k := kernel.New(dev, kernel.RoleRouter,
		func(port string, frame []byte) error {
			return net.Send(netsim.PortID{Device: dev, Name: port}, frame)
		},
		func(port string) (packet.MAC, bool) {
			m, err := net.PortMAC(netsim.PortID{Device: dev, Name: port})
			return m, err == nil
		})
	net.AddDevice(id, k)
	if _, err := net.AddPort(id, "eth0"); err != nil {
		return nil, err
	}
	k.AddPhysical("eth0")
	if err := k.AddAddr("eth0", uplinkAddr); err != nil {
		return nil, err
	}
	k.AddLAN("lan0", lan)
	k.SetIPForward(true)
	k.SetProxyARP(true)
	if err := k.AddRoute("", kernel.Route{Via: gw, Dev: "eth0", MPLSKey: -1}); err != nil {
		return nil, err
	}
	return k, nil
}

// connect joins two ports.
func connect(net *netsim.Network, name string, a, b netsim.PortID) error {
	_, err := net.Connect(name, a, b)
	return err
}

// BuildFig4 constructs the paper's Fig 4 testbed: ISP edge routers A and
// C, core router B, customer routers D (site S1) and E (site S2), with
// the module inventory of Fig 4(b) / Table IV, a management channel and a
// started NM that has discovered topology and potential.
func BuildFig4() (*Testbed, error) {
	net := netsim.New()
	hub := channel.NewHub()
	tb := &Testbed{
		Net: net, Hub: hub, NM: nm.New(),
		Devices:  make(map[core.DeviceID]*device.Device),
		Customer: make(map[core.DeviceID]*kernel.Kernel),
	}
	tb.NM.AttachChannel(hub.Endpoint(msg.NMName))

	// Managed routers.
	a, err := device.New(net, "A", kernel.RoleRouter, "eth1", "eth2")
	if err != nil {
		return nil, err
	}
	b, err := device.New(net, "B", kernel.RoleRouter, "eth0", "eth1")
	if err != nil {
		return nil, err
	}
	c, err := device.New(net, "C", kernel.RoleRouter, "eth2", "eth1")
	if err != nil {
		return nil, err
	}
	a.MarkExternal("eth1")
	c.MarkExternal("eth1")
	tb.Devices["A"], tb.Devices["B"], tb.Devices["C"] = a, b, c

	// Customer routers (outside the managed domain).
	d, err := customerRouter(net, "D", pfx("192.168.0.1/24"), pfx("10.0.1.1/24"), ip("192.168.0.2"))
	if err != nil {
		return nil, err
	}
	e, err := customerRouter(net, "E", pfx("192.168.1.1/24"), pfx("10.0.2.1/24"), ip("192.168.1.2"))
	if err != nil {
		return nil, err
	}
	tb.Customer["D"], tb.Customer["E"] = d, e

	// Wires.
	for _, l := range []struct {
		name string
		a, b netsim.PortID
	}{
		{"DA", netsim.PortID{Device: "D", Name: "eth0"}, netsim.PortID{Device: "A", Name: "eth1"}},
		{"AB", netsim.PortID{Device: "A", Name: "eth2"}, netsim.PortID{Device: "B", Name: "eth0"}},
		{"BC", netsim.PortID{Device: "B", Name: "eth1"}, netsim.PortID{Device: "C", Name: "eth2"}},
		{"CE", netsim.PortID{Device: "C", Name: "eth1"}, netsim.PortID{Device: "E", Name: "eth0"}},
	} {
		if err := connect(net, l.name, l.a, l.b); err != nil {
			return nil, err
		}
	}

	// Modules, per Fig 4(b): A has ETH a,b; IP g (customer side), h
	// (ISP); GRE l; MPLS o. B has ETH c,d; IP i; MPLS p. C has ETH e,f;
	// IP j (ISP), k (customer); GRE n; MPLS q.
	addETH := func(dev *device.Device, id core.ModuleID, iface string, external bool) {
		m := modules.NewETH(dev.MA, id, false, iface)
		if external {
			m.RegisterPhysical(dev.MA, iface)
		} else {
			m.RegisterPhysical(dev.MA)
		}
		dev.AddModule(m)
	}
	addIP := func(dev *device.Device, id core.ModuleID, domain string, addrs map[string]netip.Prefix) error {
		m, err := modules.NewIP(dev.MA, id, domain, addrs)
		if err != nil {
			return err
		}
		dev.AddModule(m)
		return nil
	}

	addETH(a, "a", "eth1", true)
	addETH(a, "b", "eth2", false)
	if err := addIP(a, "g", "C1", map[string]netip.Prefix{"eth1": pfx("192.168.0.2/24")}); err != nil {
		return nil, err
	}
	if err := addIP(a, "h", "ISP", map[string]netip.Prefix{"eth2": pfx("204.9.168.1/24")}); err != nil {
		return nil, err
	}
	a.AddModule(modules.NewGRE(a.MA, "l"))
	a.AddModule(modules.NewMPLS(a.MA, "o", 10001))

	addETH(b, "c", "eth0", false)
	addETH(b, "d", "eth1", false)
	if err := addIP(b, "i", "ISP", map[string]netip.Prefix{
		"eth0": pfx("204.9.168.2/24"),
		"eth1": pfx("204.9.169.2/24"),
	}); err != nil {
		return nil, err
	}
	b.AddModule(modules.NewMPLS(b.MA, "p", 2001))

	addETH(c, "e", "eth2", false)
	addETH(c, "f", "eth1", true)
	if err := addIP(c, "j", "ISP", map[string]netip.Prefix{"eth2": pfx("204.9.169.1/24")}); err != nil {
		return nil, err
	}
	if err := addIP(c, "k", "C1", map[string]netip.Prefix{"eth1": pfx("192.168.1.2/24")}); err != nil {
		return nil, err
	}
	c.AddModule(modules.NewGRE(c.MA, "n"))
	c.AddModule(modules.NewMPLS(c.MA, "q", 3001))

	// Management channel + device start.
	for _, dev := range []*device.Device{a, b, c} {
		dev.MA.AttachChannel(hub.Endpoint(string(dev.ID)))
		if err := dev.MA.Start(); err != nil {
			return nil, err
		}
	}

	// The NM's admitted protocol-specific knowledge (§III-C): address
	// domains and site gateways.
	tb.NM.SetDomain("C1-S1", "10.0.1.0/24")
	tb.NM.SetDomain("C1-S2", "10.0.2.0/24")
	tb.NM.SetGateway("S1-gateway", "192.168.0.1")
	tb.NM.SetGateway("S2-gateway", "192.168.1.1")

	if err := tb.NM.DiscoverAll(); err != nil {
		return nil, err
	}
	return tb, nil
}

// Fig4Goal is the high-level goal of §III-C: connectivity between the
// customer-facing interfaces of A and C for traffic between C1-S1 and
// C1-S2.
func Fig4Goal() nm.Goal {
	return nm.Goal{
		From:          core.Ref(core.NameETH, "A", "a"),
		To:            core.Ref(core.NameETH, "C", "f"),
		FromDomain:    "C1-S1",
		ToDomain:      "C1-S2",
		FromGateway:   "S1-gateway",
		ToGateway:     "S2-gateway",
		TrafficDomain: "C1",
	}
}

// VerifyConnectivity injects probe traffic between the customer sites and
// reports whether both directions deliver (§"Data-plane verification" in
// DESIGN.md). It also confirms isolation: traffic to an unconfigured
// prefix must not leak. It probes the canonical D/E customer pair of the
// paper testbeds; shared-core testbeds verify each of their pairs via
// VerifyPair.
func (tb *Testbed) VerifyConnectivity(token uint32) error {
	return tb.VerifyPair(SharedPair{
		Index: 1, D: "D", E: "E",
		SrcIP: ip("10.0.1.1"), DstIP: ip("10.0.2.1"),
	}, token)
}

// BuildFig9 constructs the VLAN tunneling topology of Fig 9: three
// managed L2 switches between the customer routers, QinQ tunnel ports at
// the edges.
func BuildFig9() (*Testbed, error) {
	net := netsim.New()
	hub := channel.NewHub()
	tb := &Testbed{
		Net: net, Hub: hub, NM: nm.New(),
		Devices:  make(map[core.DeviceID]*device.Device),
		Customer: make(map[core.DeviceID]*kernel.Kernel),
	}
	tb.NM.AttachChannel(hub.Endpoint(msg.NMName))

	mkSwitch := func(id core.DeviceID, custPort, trunkLeft, trunkRight string) (*device.Device, error) {
		ports := []string{}
		if custPort != "" {
			ports = append(ports, custPort)
		}
		if trunkLeft != "" {
			ports = append(ports, trunkLeft)
		}
		if trunkRight != "" {
			ports = append(ports, trunkRight)
		}
		dev, err := device.New(net, id, kernel.RoleSwitch, ports...)
		if err != nil {
			return nil, err
		}
		if custPort != "" {
			dev.MarkExternal(custPort)
		}
		ethID := core.ModuleID(map[core.DeviceID]string{"A": "a", "B": "b", "C": "c"}[id])
		eth := modules.NewETH(dev.MA, ethID, true, ports...)
		if custPort != "" {
			eth.RegisterPhysical(dev.MA, custPort)
		} else {
			eth.RegisterPhysical(dev.MA)
		}
		dev.AddModule(eth)
		vlanID := core.ModuleID(map[core.DeviceID]string{"A": "d", "B": "e", "C": "f"}[id])
		dev.AddModule(modules.NewVLAN(dev.MA, vlanID, 22, "C1", 1504))
		tb.Devices[id] = dev
		return dev, nil
	}

	swA, err := mkSwitch("A", "gigabitethernet0/7", "", "gigabitethernet0/9")
	if err != nil {
		return nil, err
	}
	swB, err := mkSwitch("B", "", "gigabitethernet0/1", "gigabitethernet0/2")
	if err != nil {
		return nil, err
	}
	swC, err := mkSwitch("C", "gigabitethernet0/7", "gigabitethernet0/9", "")
	if err != nil {
		return nil, err
	}

	// Customer routers share a subnet across the L2 tunnel.
	d, err := customerRouter(net, "D", pfx("192.168.5.1/24"), pfx("10.0.1.1/24"), ip("192.168.5.2"))
	if err != nil {
		return nil, err
	}
	e, err := customerRouter(net, "E", pfx("192.168.5.2/24"), pfx("10.0.2.1/24"), ip("192.168.5.1"))
	if err != nil {
		return nil, err
	}
	if err := d.AddRoute("", kernel.Route{Dst: pfx("10.0.2.0/24"), Via: ip("192.168.5.2"), Dev: "eth0", MPLSKey: -1}); err != nil {
		return nil, err
	}
	if err := e.AddRoute("", kernel.Route{Dst: pfx("10.0.1.0/24"), Via: ip("192.168.5.1"), Dev: "eth0", MPLSKey: -1}); err != nil {
		return nil, err
	}
	tb.Customer["D"], tb.Customer["E"] = d, e

	for _, l := range []struct {
		name string
		a, b netsim.PortID
	}{
		{"D-SwA", netsim.PortID{Device: "D", Name: "eth0"}, netsim.PortID{Device: "A", Name: "gigabitethernet0/7"}},
		{"SwA-SwB", netsim.PortID{Device: "A", Name: "gigabitethernet0/9"}, netsim.PortID{Device: "B", Name: "gigabitethernet0/1"}},
		{"SwB-SwC", netsim.PortID{Device: "B", Name: "gigabitethernet0/2"}, netsim.PortID{Device: "C", Name: "gigabitethernet0/9"}},
		{"SwC-E", netsim.PortID{Device: "C", Name: "gigabitethernet0/7"}, netsim.PortID{Device: "E", Name: "eth0"}},
	} {
		if err := connect(net, l.name, l.a, l.b); err != nil {
			return nil, err
		}
	}

	for _, dev := range []*device.Device{swA, swB, swC} {
		dev.MA.AttachChannel(hub.Endpoint(string(dev.ID)))
		if err := dev.MA.Start(); err != nil {
			return nil, err
		}
	}
	tb.NM.SetDomain("C1-S1", "10.0.1.0/24")
	tb.NM.SetDomain("C1-S2", "10.0.2.0/24")
	tb.NM.SetGateway("S1-gateway", "192.168.5.1")
	tb.NM.SetGateway("S2-gateway", "192.168.5.2")
	if err := tb.NM.DiscoverAll(); err != nil {
		return nil, err
	}
	return tb, nil
}

// Fig9Goal is the VLAN tunnel goal: connectivity between the two
// customer-facing switch ports.
func Fig9Goal() nm.Goal {
	return nm.Goal{
		From:          core.Ref(core.NameETH, "A", "a"),
		To:            core.Ref(core.NameETH, "C", "c"),
		FromDomain:    "C1-S1",
		ToDomain:      "C1-S2",
		FromGateway:   "S1-gateway",
		ToGateway:     "S2-gateway",
		TrafficDomain: "C1",
		TagClassified: true,
	}
}
