package msg

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func mkEnv(t *testing.T, typ Type, from, to string, id uint64, body any) Envelope {
	t.Helper()
	env, err := New(typ, from, to, id, body)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestBatchRoundTrip(t *testing.T) {
	in := Batch{
		Src: "R1",
		Seq: 7,
		Ack: 42,
		Envelopes: []Envelope{
			mkEnv(t, TypeHello, "R1", NMName, 0, Hello{Device: "R1"}),
			mkEnv(t, TypeCommandBatchReq, NMName, "R1", 9, CommandBatchReq{}),
			mkEnv(t, TypeError, "R1", NMName, 9, Error{Message: "boom"}),
		},
	}
	data, err := in.EncodeBatch()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Src != in.Src || out.Seq != in.Seq || out.Ack != in.Ack {
		t.Fatalf("header mismatch: got %q/%d/%d", out.Src, out.Seq, out.Ack)
	}
	if len(out.Envelopes) != len(in.Envelopes) {
		t.Fatalf("got %d envelopes, want %d", len(out.Envelopes), len(in.Envelopes))
	}
	for i := range in.Envelopes {
		if !reflect.DeepEqual(out.Envelopes[i], in.Envelopes[i]) {
			t.Errorf("envelope %d: got %+v want %+v", i, out.Envelopes[i], in.Envelopes[i])
		}
	}
}

func TestBatchAckOnly(t *testing.T) {
	in := Batch{Src: "nm", Seq: 0, Ack: 1234}
	data, err := in.EncodeBatch()
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 0 || out.Ack != 1234 || len(out.Envelopes) != 0 {
		t.Fatalf("ack-only round trip: %+v", out)
	}
}

func TestBatchDecodeRejects(t *testing.T) {
	good, err := Batch{Src: "a", Seq: 1, Envelopes: []Envelope{
		mkEnv(t, TypeHello, "a", NMName, 0, Hello{Device: "a"}),
	}}.EncodeBatch()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           nil,
		"bad magic":       []byte("NOPE" + string(good[4:])),
		"truncated":       good[:len(good)-3],
		"trailing":        append(append([]byte{}, good...), 'x'),
		"old single json": []byte(`{"type":"hello","from":"a","to":"nm"}`),
	}
	for name, data := range cases {
		if _, err := DecodeBatch(data); err == nil {
			t.Errorf("%s: decode accepted invalid input", name)
		}
	}
	// A count claiming more envelopes than the payload holds must fail,
	// not over-read.
	huge := Batch{Src: "a", Seq: 1}
	data, _ := huge.EncodeBatch()
	data[len(data)-1] = 0x20 // count=32 with no envelope bytes
	if _, err := DecodeBatch(data); err == nil {
		t.Error("oversized count accepted")
	}
}

func TestIsResponse(t *testing.T) {
	cases := []struct {
		t    Type
		want bool
	}{
		{TypeHello, false}, {TypeCommandBatchReq, false}, {TypeConvey, false},
		{TypeCommandBatchResp, true}, {TypeListFieldsResp, true},
		{TypeSelfTestResp, true}, {TypeError, true},
	}
	for _, c := range cases {
		if got := c.t.IsResponse(); got != c.want {
			t.Errorf("IsResponse(%s) = %v, want %v", c.t, got, c.want)
		}
	}
}

// FuzzBatchDecode shakes the frame decoder with arbitrary bytes and
// pins the canonical round trip: decoding must never panic or
// over-read, and any frame that decodes must re-encode to a stable
// fixed point (encode→decode→encode is byte-identical, since Marshal
// compacts envelope JSON on the first encode).
func FuzzBatchDecode(f *testing.F) {
	seed := func(b Batch) {
		data, err := b.EncodeBatch()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	env := MustNew(TypeHello, "R1", NMName, 0, Hello{Device: "R1"})
	cmd := MustNew(TypeCommandBatchReq, NMName, "R1", 3, CommandBatchReq{
		Items: []CommandItem{{Pipe: &CreatePipeItem{ID: "P0"}}},
	})
	seed(Batch{Src: "R1", Seq: 1, Ack: 0, Envelopes: []Envelope{env}})
	seed(Batch{Src: "nm", Seq: 2, Ack: 7, Envelopes: []Envelope{cmd, env}})
	seed(Batch{Src: "nm", Seq: 0, Ack: 99})
	seed(Batch{Src: strings.Repeat("x", maxBatchSrc), Seq: 1 << 40, Ack: 1 << 50})
	f.Add([]byte("CMB1"))
	f.Add([]byte("CMB1\x01a\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		enc1, err := b.EncodeBatch()
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		b2, err := DecodeBatch(enc1)
		if err != nil {
			t.Fatalf("decode of re-encoded frame failed: %v", err)
		}
		enc2, err := b2.EncodeBatch()
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode not a fixed point:\n%q\n%q", enc1, enc2)
		}
		if b2.Src != b.Src || b2.Seq != b.Seq || b2.Ack != b.Ack || len(b2.Envelopes) != len(b.Envelopes) {
			t.Fatalf("round trip changed header: %+v vs %+v", b, b2)
		}
	})
}
