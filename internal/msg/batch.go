package msg

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Batch is the framed multi-envelope datagram of the heavy-traffic UDP
// transport: one datagram carries up to MaxBatchEnvelopes envelopes plus
// the sender's sliding-window bookkeeping (frame sequence number and the
// cumulative acknowledgement of the peer's frames). The frame layer —
// not the envelopes — is what the transport retransmits and dedups, so
// the encoding is deliberately minimal: a magic tag, the sender's
// channel name, two uvarints, and length-prefixed envelope JSON.
//
// Wire layout:
//
//	"CMB1"                      4-byte magic
//	uvarint len | src bytes     sender channel name
//	uvarint seq                 frame sequence (0 = unsequenced ack-only)
//	uvarint ack                 cumulative ack of the peer's frames
//	uvarint count               number of envelopes
//	count × (uvarint len | envelope JSON)
type Batch struct {
	Src       string
	Seq       uint64 // 0 marks a pure ack frame: never retransmitted, never deduped
	Ack       uint64 // highest contiguous peer frame seq received
	Envelopes []Envelope
}

// batchMagic tags batch frames so stray datagrams (old single-envelope
// senders, port scans) fail fast instead of half-decoding.
const batchMagic = "CMB1"

// MaxBatchEnvelopes bounds envelopes per frame: a decode limit against
// hostile counts, far above what a 64KB datagram can carry in practice.
const MaxBatchEnvelopes = 4096

// maxBatchSrc bounds the sender-name field during decode.
const maxBatchSrc = 256

// ErrBadBatch is wrapped by every batch decode failure.
var ErrBadBatch = errors.New("msg: bad batch frame")

// EncodeBatch serialises the frame.
func (b Batch) EncodeBatch() ([]byte, error) {
	raw := make([][]byte, len(b.Envelopes))
	for i, env := range b.Envelopes {
		data, err := env.Marshal()
		if err != nil {
			return nil, err
		}
		raw[i] = data
	}
	return EncodeBatchRaw(b.Src, b.Seq, b.Ack, raw)
}

// EncodeBatchRaw serialises a frame from pre-marshaled envelope JSON, so
// the transport can re-frame a retransmission (fresh cumulative ack)
// without re-marshaling its envelopes.
func EncodeBatchRaw(src string, seq, ack uint64, envs [][]byte) ([]byte, error) {
	if len(src) > maxBatchSrc {
		return nil, fmt.Errorf("msg: batch src %q too long", src)
	}
	if len(envs) > MaxBatchEnvelopes {
		return nil, fmt.Errorf("msg: batch of %d envelopes exceeds %d", len(envs), MaxBatchEnvelopes)
	}
	var buf bytes.Buffer
	buf.WriteString(batchMagic)
	putUvarint(&buf, uint64(len(src)))
	buf.WriteString(src)
	putUvarint(&buf, seq)
	putUvarint(&buf, ack)
	putUvarint(&buf, uint64(len(envs)))
	for _, data := range envs {
		putUvarint(&buf, uint64(len(data)))
		buf.Write(data)
	}
	return buf.Bytes(), nil
}

// DecodeBatch parses a frame, validating every length against the
// remaining input and every envelope as JSON.
func DecodeBatch(data []byte) (Batch, error) {
	if len(data) < len(batchMagic) || string(data[:len(batchMagic)]) != batchMagic {
		return Batch{}, fmt.Errorf("%w: missing magic", ErrBadBatch)
	}
	r := data[len(batchMagic):]
	srcLen, r, err := getUvarint(r)
	if err != nil {
		return Batch{}, fmt.Errorf("%w: src length: %v", ErrBadBatch, err)
	}
	if srcLen > maxBatchSrc || srcLen > uint64(len(r)) {
		return Batch{}, fmt.Errorf("%w: src length %d out of range", ErrBadBatch, srcLen)
	}
	src := string(r[:srcLen])
	if strings.ContainsRune(src, 0) {
		return Batch{}, fmt.Errorf("%w: src contains NUL", ErrBadBatch)
	}
	r = r[srcLen:]
	seq, r, err := getUvarint(r)
	if err != nil {
		return Batch{}, fmt.Errorf("%w: seq: %v", ErrBadBatch, err)
	}
	ack, r, err := getUvarint(r)
	if err != nil {
		return Batch{}, fmt.Errorf("%w: ack: %v", ErrBadBatch, err)
	}
	count, r, err := getUvarint(r)
	if err != nil {
		return Batch{}, fmt.Errorf("%w: count: %v", ErrBadBatch, err)
	}
	if count > MaxBatchEnvelopes {
		return Batch{}, fmt.Errorf("%w: %d envelopes exceeds %d", ErrBadBatch, count, MaxBatchEnvelopes)
	}
	b := Batch{Src: src, Seq: seq, Ack: ack}
	for i := uint64(0); i < count; i++ {
		n, rest, err := getUvarint(r)
		if err != nil {
			return Batch{}, fmt.Errorf("%w: envelope %d length: %v", ErrBadBatch, i, err)
		}
		if n > uint64(len(rest)) {
			return Batch{}, fmt.Errorf("%w: envelope %d length %d exceeds remaining %d", ErrBadBatch, i, n, len(rest))
		}
		env, err := Unmarshal(rest[:n])
		if err != nil {
			return Batch{}, fmt.Errorf("%w: envelope %d: %v", ErrBadBatch, i, err)
		}
		b.Envelopes = append(b.Envelopes, env)
		r = rest[n:]
	}
	if len(r) != 0 {
		return Batch{}, fmt.Errorf("%w: %d trailing bytes", ErrBadBatch, len(r))
	}
	return b, nil
}

func putUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func getUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, errors.New("truncated uvarint")
	}
	return v, data[n:], nil
}

// IsResponse reports whether t answers a pending request (a ".resp"
// type or an error reply). The transport's handler pool dispatches
// responses on their own goroutines — a response must never queue
// behind the request that is blocked waiting for it.
func (t Type) IsResponse() bool {
	return t == TypeError || strings.HasSuffix(string(t), ".resp")
}
