// Package msg defines the management-channel wire protocol: JSON-encoded
// envelopes carrying the CONMan primitives (Table I) between the network
// manager and the management agents (MAs) of devices, plus the
// module-to-module relays (conveyMessage, listFieldsAndValues) that always
// pass through the NM because the management channel only connects devices
// to the NM (paper §II-D.1.d).
package msg

import (
	"encoding/json"
	"fmt"

	"conman/internal/core"
)

// NMName is the well-known channel name of the network manager.
const NMName = "nm"

// Type discriminates envelope payloads.
type Type string

const (
	// Device -> NM, unsolicited.
	TypeHello    Type = "hello"    // device boot announcement
	TypeTopology Type = "topology" // physical connectivity report
	TypeNotify   Type = "notify"   // module event (e.g. lsp-established)
	TypeTrigger  Type = "trigger"  // installed trigger fired (§II-E)

	// NM -> device requests and their responses.
	TypeShowPotentialReq   Type = "showPotential"
	TypeShowPotentialResp  Type = "showPotential.resp"
	TypeShowActualReq      Type = "showActual"
	TypeShowActualResp     Type = "showActual.resp"
	TypeCreatePipeReq      Type = "create.pipe"
	TypeCreatePipeResp     Type = "create.pipe.resp"
	TypeCreateSwitchReq    Type = "create.switch"
	TypeCreateSwitchResp   Type = "create.switch.resp"
	TypeCreateFilterReq    Type = "create.filter"
	TypeCreateFilterResp   Type = "create.filter.resp"
	TypeDeleteReq          Type = "delete"
	TypeDeleteResp         Type = "delete.resp"
	TypeInstallTriggerReq  Type = "installTrigger"
	TypeInstallTriggerResp Type = "installTrigger.resp"
	TypeSelfTestReq        Type = "selfTest"
	TypeSelfTestResp       Type = "selfTest.resp"

	// Module <-> module, relayed by the NM.
	TypeConvey         Type = "conveyMessage"
	TypeListFieldsReq  Type = "listFieldsAndValues"
	TypeListFieldsResp Type = "listFieldsAndValues.resp"

	// Error response to any request.
	TypeError Type = "error"
)

// Envelope is one management-channel message.
type Envelope struct {
	Type Type            `json:"type"`
	From string          `json:"from"` // device id or NMName
	To   string          `json:"to"`
	ID   uint64          `json:"id,omitempty"` // request/response correlation
	Body json.RawMessage `json:"body,omitempty"`
}

// New builds an envelope, marshalling body.
func New(t Type, from, to string, id uint64, body any) (Envelope, error) {
	var raw json.RawMessage
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return Envelope{}, fmt.Errorf("msg: marshal %s: %w", t, err)
		}
		raw = b
	}
	return Envelope{Type: t, From: from, To: to, ID: id, Body: raw}, nil
}

// MustNew is New for bodies that cannot fail to marshal.
func MustNew(t Type, from, to string, id uint64, body any) Envelope {
	e, err := New(t, from, to, id, body)
	if err != nil {
		panic(err)
	}
	return e
}

// Decode unmarshals the body into out.
func (e Envelope) Decode(out any) error {
	if err := json.Unmarshal(e.Body, out); err != nil {
		return fmt.Errorf("msg: decode %s body: %w", e.Type, err)
	}
	return nil
}

// Marshal encodes the envelope for the wire.
func (e Envelope) Marshal() ([]byte, error) { return json.Marshal(e) }

// Unmarshal decodes an envelope from the wire.
func Unmarshal(data []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return Envelope{}, fmt.Errorf("msg: unmarshal envelope: %w", err)
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Bodies

// Hello announces a device to the NM.
type Hello struct {
	Device core.DeviceID `json:"device"`
}

// PortReport is one physical port in a topology report.
type PortReport struct {
	Name       string        `json:"name"`
	MAC        string        `json:"mac"`
	Attached   bool          `json:"attached"`
	PeerDevice core.DeviceID `json:"peer_device,omitempty"`
	PeerPort   string        `json:"peer_port,omitempty"`
	External   bool          `json:"external,omitempty"`
}

// Topology is a device's physical connectivity report (paper §II-D).
type Topology struct {
	Device core.DeviceID `json:"device"`
	Ports  []PortReport  `json:"ports"`
}

// ShowPotentialResp returns every module's abstraction (Table II).
type ShowPotentialResp struct {
	Modules []core.Abstraction `json:"modules"`
}

// ShowActualResp returns every module's actual state.
type ShowActualResp struct {
	Modules []core.ModuleState `json:"modules"`
}

// CreatePipeReq asks a device to create an up-down pipe pair.
type CreatePipeReq struct {
	Req core.PipeRequest `json:"req"`
}

// CreatePipeResp returns the allocated pipe id.
type CreatePipeResp struct {
	Pipe core.PipeID `json:"pipe"`
}

// CreateSwitchReq installs a switch rule. The NM resolves abstract
// classifier/gateway tokens it owns (address domains, §III-C) into
// MatchResolved/ViaResolved so no extra round-trips are needed.
type CreateSwitchReq struct {
	Rule          core.SwitchRule `json:"rule"`
	MatchResolved string          `json:"match_resolved,omitempty"`
	ViaResolved   string          `json:"via_resolved,omitempty"`
}

// CreateSwitchResp acknowledges a switch rule.
type CreateSwitchResp struct {
	RuleID string `json:"rule_id"`
}

// CreateFilterReq installs an abstract filter rule (§II-E).
type CreateFilterReq struct {
	Rule core.FilterRule `json:"rule"`
}

// CreateFilterResp acknowledges a filter rule.
type CreateFilterResp struct {
	RuleID string `json:"rule_id"`
}

// DeleteReq deletes a component.
type DeleteReq struct {
	Req core.DeleteRequest `json:"req"`
}

// DeleteResp acknowledges a delete.
type DeleteResp struct{}

// Convey is a module-to-module message relayed via the NM (§II-D.1.d).
type Convey struct {
	FromModule core.ModuleRef  `json:"from_module"`
	ToModule   core.ModuleRef  `json:"to_module"`
	Kind       string          `json:"kind"`
	Body       json.RawMessage `json:"body,omitempty"`
}

// ListFieldsReq asks a target module for the low-level fields and values
// behind one of its abstract components (§II-E).
type ListFieldsReq struct {
	Requester core.ModuleRef `json:"requester"`
	Target    core.ModuleRef `json:"target"`
	Component string         `json:"component"` // pipe id or "self"
}

// ListFieldsResp carries the resolved fields.
type ListFieldsResp struct {
	Target    core.ModuleRef    `json:"target"`
	Component string            `json:"component"`
	Fields    map[string]string `json:"fields"`
}

// Notify is an unsolicited module -> NM event.
type Notify struct {
	Module core.ModuleRef `json:"module"`
	Kind   string         `json:"kind"`
	Detail string         `json:"detail,omitempty"`
}

// InstallTriggerReq asks a module to report when the low-level values
// behind a component change (dependency maintenance, §II-E).
type InstallTriggerReq struct {
	Module    core.ModuleRef `json:"module"`
	Component string         `json:"component"`
}

// InstallTriggerResp acknowledges trigger installation.
type InstallTriggerResp struct {
	TriggerID string `json:"trigger_id"`
}

// Trigger reports that a watched component's low-level values changed.
type Trigger struct {
	Module    core.ModuleRef    `json:"module"`
	Component string            `json:"component"`
	Fields    map[string]string `json:"fields"`
}

// SelfTestReq asks a module to probe data-plane connectivity to its peer
// on a pipe (§II-D.2).
type SelfTestReq struct {
	Module core.ModuleRef `json:"module"`
	Pipe   core.PipeID    `json:"pipe"`
}

// SelfTestResp reports the probe outcome.
type SelfTestResp struct {
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// CommandItem is one primitive invocation inside a batch. Exactly one
// field is set.
type CommandItem struct {
	Pipe   *CreatePipeItem  `json:"pipe,omitempty"`
	Switch *CreateSwitchReq `json:"switch,omitempty"`
	Filter *CreateFilterReq `json:"filter,omitempty"`
	Delete *DeleteReq       `json:"delete,omitempty"`
}

// CreatePipeItem carries the NM-chosen pipe identifier so later switch
// rules in the same batch can reference it symbolically (P0, P1, ... as in
// Fig 7b).
type CreatePipeItem struct {
	ID  core.PipeID      `json:"id"`
	Req core.PipeRequest `json:"req"`
}

// CommandBatchReq is the NM's per-device configuration message: the paper's
// Table VI accounting sends one command message to each router along the
// path, so the executor batches all of a device's primitives into one
// envelope.
type CommandBatchReq struct {
	Items []CommandItem `json:"items"`
}

// CommandBatchResp reports per-item results ("" = success).
type CommandBatchResp struct {
	Errors []string `json:"errors"`
	// Results carries the created component identifiers, aligned with the
	// request items, so the NM can bind desired state to device state
	// without a follow-up showActual sweep.
	Results []CommandItemResult `json:"results,omitempty"`
}

// CommandItemResult identifies what one batch item produced on the device.
type CommandItemResult struct {
	PipeID core.PipeID `json:"pipe_id,omitempty"`
	RuleID string      `json:"rule_id,omitempty"`
	// Pending marks a switch rule that was accepted but whose install is
	// deferred on an external dependency (ErrPending); its observable
	// state is not yet what the NM asked for.
	Pending bool `json:"pending,omitempty"`
}

// OK reports whether every item succeeded.
func (r CommandBatchResp) OK() bool {
	for _, e := range r.Errors {
		if e != "" {
			return false
		}
	}
	return true
}

// Batch message types.
const (
	TypeCommandBatchReq  Type = "commandBatch"
	TypeCommandBatchResp Type = "commandBatch.resp"
)

// Error is the body of a TypeError response.
type Error struct {
	Message string `json:"message"`
}

// Errorf builds an error envelope answering req.
func Errorf(req Envelope, from string, format string, args ...any) Envelope {
	return MustNew(TypeError, from, req.From, req.ID, Error{Message: fmt.Sprintf(format, args...)})
}
