package msg

import (
	"testing"

	"conman/internal/core"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	env, err := New(TypeHello, "A", NMName, 7, Hello{Device: "A"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := env.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != TypeHello || back.From != "A" || back.To != NMName || back.ID != 7 {
		t.Fatalf("envelope %+v", back)
	}
	var h Hello
	if err := back.Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Device != "A" {
		t.Fatalf("hello %+v", h)
	}
}

func TestUnmarshalError(t *testing.T) {
	if _, err := Unmarshal([]byte("{nonsense")); err == nil {
		t.Fatal("want error")
	}
}

func TestDecodeError(t *testing.T) {
	env := MustNew(TypeHello, "A", NMName, 0, Hello{Device: "A"})
	var wrong []int
	if err := env.Decode(&wrong); err == nil {
		t.Fatal("want decode error")
	}
}

func TestErrorf(t *testing.T) {
	req := MustNew(TypeShowPotentialReq, NMName, "A", 42, nil)
	resp := Errorf(req, "A", "boom %d", 9)
	if resp.Type != TypeError || resp.To != NMName || resp.ID != 42 {
		t.Fatalf("error envelope %+v", resp)
	}
	var e Error
	if err := resp.Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Message != "boom 9" {
		t.Fatalf("message %q", e.Message)
	}
}

func TestCommandBatchBodies(t *testing.T) {
	batch := CommandBatchReq{Items: []CommandItem{
		{Pipe: &CreatePipeItem{ID: "P0", Req: core.PipeRequest{
			Upper: core.Ref(core.NameIPv4, "A", "g"),
			Lower: core.Ref(core.NameETH, "A", "a"),
		}}},
		{Switch: &CreateSwitchReq{Rule: core.SwitchRule{
			Module: core.Ref(core.NameIPv4, "A", "g"), From: "P0", To: "P1",
		}}},
	}}
	env := MustNew(TypeCommandBatchReq, NMName, "A", 1, batch)
	var back CommandBatchReq
	if err := env.Decode(&back); err != nil {
		t.Fatal(err)
	}
	if len(back.Items) != 2 || back.Items[0].Pipe == nil || back.Items[1].Switch == nil {
		t.Fatalf("batch %+v", back)
	}
	if back.Items[0].Pipe.ID != "P0" {
		t.Fatalf("pipe id %q", back.Items[0].Pipe.ID)
	}
}

func TestCommandBatchRespOK(t *testing.T) {
	ok := CommandBatchResp{Errors: []string{"", "", ""}}
	if !ok.OK() {
		t.Error("all-empty should be OK")
	}
	bad := CommandBatchResp{Errors: []string{"", "x"}}
	if bad.OK() {
		t.Error("error present should not be OK")
	}
}

func TestConveyBodyPassThrough(t *testing.T) {
	c := Convey{
		FromModule: core.Ref(core.NameGRE, "A", "l"),
		ToModule:   core.Ref(core.NameGRE, "C", "n"),
		Kind:       "gre-params",
		Body:       []byte(`{"my_ikey":1001}`),
	}
	env := MustNew(TypeConvey, "A", NMName, 0, c)
	var back Convey
	if err := env.Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != "gre-params" || string(back.Body) != `{"my_ikey":1001}` {
		t.Fatalf("convey %+v", back)
	}
}

func TestTopologyBody(t *testing.T) {
	top := Topology{Device: "A", Ports: []PortReport{
		{Name: "eth1", Attached: true, External: true},
		{Name: "eth2", Attached: true, PeerDevice: "B", PeerPort: "eth0"},
	}}
	env := MustNew(TypeTopology, "A", NMName, 0, top)
	var back Topology
	if err := env.Decode(&back); err != nil {
		t.Fatal(err)
	}
	if len(back.Ports) != 2 || back.Ports[1].PeerDevice != "B" || !back.Ports[0].External {
		t.Fatalf("topology %+v", back)
	}
}

func TestNewRejectsUnmarshalable(t *testing.T) {
	if _, err := New(TypeHello, "A", "B", 0, make(chan int)); err == nil {
		t.Fatal("want marshal error")
	}
}
