// Package legacy models "configuration today" (paper §III-C.2): the
// hand-written device-level scripts of Figs 7(a), 8(a) and 9(a), with
// every command and state variable tagged as generic or protocol-specific
// so the Table V comparison can be computed mechanically. It also counts
// CONMan scripts with the same metric.
//
// Classification rule (DESIGN.md §5): a command's identity is its leading
// keyword phrase; a variable is protocol-specific if understanding it
// requires protocol knowledge beyond the module abstraction (tunnel keys,
// checksum/sequence flags, label numbers, routing-table ids, 802.1Q mode
// values), generic otherwise (interface names, addresses the NM assigned,
// prefixes, module/pipe identifiers).
package legacy

import (
	"fmt"
	"sort"
	"strings"
)

// Class tags a command or variable.
type Class uint8

const (
	Generic Class = iota
	Specific
)

func (c Class) String() string {
	if c == Generic {
		return "generic"
	}
	return "specific"
}

// Var is one state variable occurrence in a script.
type Var struct {
	Ident string // identity for deduplication
	Class Class
}

// Command is one script command with its classification.
type Command struct {
	Name  string // command identity, e.g. "ip tunnel add"
	Class Class
	Text  string // full command line
	Vars  []Var
}

// Script is a classified configuration script.
type Script struct {
	Title    string
	Commands []Command
}

// Text renders the raw script.
func (s Script) Text() string {
	lines := make([]string, len(s.Commands))
	for i, c := range s.Commands {
		lines[i] = c.Text
	}
	return strings.Join(lines, "\n")
}

// Counts is one Table V column.
type Counts struct {
	GenericCommands  int
	SpecificCommands int
	GenericVars      int
	SpecificVars     int
}

// Count tallies distinct command and variable identities per class.
func Count(s Script) Counts {
	cmdSeen := map[string]Class{}
	varSeen := map[string]Class{}
	for _, c := range s.Commands {
		cmdSeen[c.Name] = c.Class
		for _, v := range c.Vars {
			varSeen[v.Ident] = v.Class
		}
	}
	var out Counts
	for _, cl := range cmdSeen {
		if cl == Generic {
			out.GenericCommands++
		} else {
			out.SpecificCommands++
		}
	}
	for _, cl := range varSeen {
		if cl == Generic {
			out.GenericVars++
		} else {
			out.SpecificVars++
		}
	}
	return out
}

func g(id string) Var  { return Var{Ident: id, Class: Generic} }
func sp(id string) Var { return Var{Ident: id, Class: Specific} }

// TodayGRE is the Fig 7(a) script: the Linux configuration a human (or a
// management application with full GRE knowledge) writes on router A.
func TodayGRE() Script {
	return Script{
		Title: "GRE VPN configuration today (Fig 7a, router A)",
		Commands: []Command{
			{Name: "insmod", Class: Specific,
				Text: "insmod /lib/modules/2.6.14-2/ip_gre.ko",
				Vars: []Var{sp("ip_gre.ko")}},
			{Name: "ip tunnel add", Class: Specific,
				Text: "ip tunnel add name greA mode gre remote 204.9.169.1 local 204.9.168.1 ikey 1001 okey 2001 icsum ocsum iseq oseq",
				Vars: []Var{sp("greA"), sp("mode:gre"), g("204.9.169.1"), g("204.9.168.1"),
					sp("ikey:1001"), sp("okey:2001"), sp("icsum"), sp("ocsum"), sp("iseq"), sp("oseq")}},
			{Name: "ifconfig", Class: Specific,
				Text: "ifconfig greA 192.168.3.1",
				Vars: []Var{sp("greA"), g("192.168.3.1")}},
			{Name: "echo", Class: Generic,
				Text: "echo 1 > /proc/sys/net/ipv4/ip_forward",
				Vars: []Var{g("ip_forward:1")}},
			{Name: "echo", Class: Generic,
				Text: "echo 202 tun-1-2 >> /etc/iproute2/rt_tables",
				Vars: []Var{sp("table:tun-1-2")}},
			{Name: "ip rule add", Class: Specific,
				Text: "ip rule add to 10.0.2.0/24 table tun-1-2",
				Vars: []Var{g("10.0.2.0/24"), sp("table:tun-1-2")}},
			{Name: "ip route add default", Class: Specific,
				Text: "ip route add default dev greA table tun-1-2",
				Vars: []Var{g("default"), sp("greA"), sp("table:tun-1-2")}},
			{Name: "echo", Class: Generic,
				Text: "echo 203 tun-2-1 >> /etc/iproute2/rt_tables",
				Vars: []Var{sp("table:tun-2-1")}},
			{Name: "ip rule add", Class: Specific,
				Text: "ip rule add iff greA table tun-2-1",
				Vars: []Var{sp("greA"), sp("table:tun-2-1")}},
			{Name: "ip route add default", Class: Specific,
				Text: "ip route add default dev eth1 table tun-2-1",
				Vars: []Var{g("default"), g("eth1"), sp("table:tun-2-1")}},
			{Name: "ip route add to", Class: Specific,
				Text: "ip route add to 204.9.169.1 via 204.9.168.2 dev eth2",
				Vars: []Var{g("204.9.169.1"), g("204.9.168.2"), g("eth2")}},
		},
	}
}

// TodayMPLS is the Fig 8(a) script on router A.
func TodayMPLS() Script {
	return Script{
		Title: "MPLS LSP configuration today (Fig 8a, router A)",
		Commands: []Command{
			{Name: "modprobe", Class: Specific,
				Text: "modprobe mpls",
				Vars: []Var{sp("mpls-modules")}},
			{Name: "modprobe", Class: Specific,
				Text: "modprobe mpls4",
				Vars: []Var{sp("mpls-modules")}},
			{Name: "mpls labelspace set", Class: Specific,
				Text: "mpls labelspace set dev eth2 labelspace 0",
				Vars: []Var{g("eth2"), sp("labelspace:0")}},
			{Name: "mpls ilm add", Class: Specific,
				Text: "mpls ilm add label gen 10001 labelspace 0",
				Vars: []Var{sp("label:gen"), sp("label:10001"), sp("labelspace:0")}},
			{Name: "mpls nhlfe add", Class: Specific,
				Text: "KEY-S2-S1=`mpls nhlfe add key 0 mtu 1500 instructions nexthop eth1 ipv4 192.168.0.1 | grep key | cut -c 17-26`",
				Vars: []Var{sp("key:KEY-S2-S1"), sp("mtu:1500"), g("eth1"), g("192.168.0.1")}},
			{Name: "mpls xc add", Class: Specific,
				Text: "mpls xc add ilm label gen 10001 ilm labelspace 0 nhlfe key $KEY-S2-S1",
				Vars: []Var{sp("label:gen"), sp("label:10001"), sp("labelspace:0"), sp("key:KEY-S2-S1")}},
			{Name: "mpls nhlfe add", Class: Specific,
				Text: "KEY-S1-S2=`mpls nhlfe add key 0 mtu 1500 instructions push gen 2001 nexthop eth2 ipv4 204.9.168.2 | grep key | cut -c 17-26`",
				Vars: []Var{sp("key:KEY-S1-S2"), sp("mtu:1500"), sp("label:2001"), g("eth2"), g("204.9.168.2")}},
			{Name: "echo", Class: Generic,
				Text: "echo 1> /proc/sys/net/ipv4/ip_forward",
				Vars: []Var{g("ip_forward:1")}},
			{Name: "ip route add mpls", Class: Specific,
				Text: "ip route add 10.0.2.0/24 via 204.9.168.2 mpls $KEY-S1-S2",
				Vars: []Var{g("10.0.2.0/24"), g("204.9.168.2"), sp("key:KEY-S1-S2")}},
		},
	}
}

// TodayVLAN is the Fig 9(a) CatOS script on switch A.
func TodayVLAN() Script {
	return Script{
		Title: "VLAN tunnel configuration today (Fig 9a, switch A, CatOS)",
		Commands: []Command{
			{Name: "set vlan", Class: Specific,
				Text: "set vlan 22 name C1 mtu 1504",
				Vars: []Var{sp("vlan:22"), g("C1"), sp("mtu:1504")}},
			{Name: "set vlan", Class: Specific,
				Text: "set vlan 22 gigabitethernet0/9",
				Vars: []Var{sp("vlan:22"), g("gigabitethernet0/9")}},
			{Name: "interface", Class: Generic,
				Text: "interface gigabitethernet0/7",
				Vars: []Var{g("gigabitethernet0/7")}},
			{Name: "switchport access vlan", Class: Specific,
				Text: "switchport access vlan 22",
				Vars: []Var{sp("mode:access"), sp("vlan:22")}},
			{Name: "switchport mode", Class: Specific,
				Text: "switchport mode dot1q-tunnel",
				Vars: []Var{sp("mode:dot1q-tunnel")}},
			{Name: "exit", Class: Generic, Text: "exit"},
			{Name: "vlan dot1q tag native", Class: Specific,
				Text: "vlan dot1q tag native",
				Vars: []Var{sp("dot1q:native")}},
			{Name: "end", Class: Generic, Text: "end"},
		},
	}
}

// ClassifyCONMan tokenizes a rendered CONMan script (the compiler's
// output) into the same metric: commands are the create() primitives;
// variables are pipe ids, module references and trade-off names (all
// generic — the devices themselves exposed them), plus the domain and
// gateway tokens, which are protocol-specific (the NM's admitted IP
// knowledge, §III-C.2).
func ClassifyCONMan(title, script string) Script {
	out := Script{Title: title}
	for _, line := range strings.Split(script, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var cmd Command
		cmd.Text = line
		switch {
		case strings.Contains(line, "create (pipe"):
			cmd.Name = "create (pipe)"
		case strings.Contains(line, "create (switch"):
			cmd.Name = "create (switch)"
		case strings.Contains(line, "create (filter"):
			cmd.Name = "create (filter)"
		default:
			cmd.Name = "other"
		}
		cmd.Class = Generic
		cmd.Vars = conmanVars(line)
		out.Commands = append(out.Commands, cmd)
	}
	return out
}

func conmanVars(line string) []Var {
	var vars []Var
	// Module references <NAME,DEV,ID>.
	rest := line
	for {
		i := strings.IndexByte(rest, '<')
		if i < 0 {
			break
		}
		j := strings.IndexByte(rest[i:], '>')
		if j < 0 {
			break
		}
		vars = append(vars, g(rest[i:i+j+1]))
		rest = rest[i+j+1:]
	}
	// Pipe identifiers and classifier tokens.
	clean := strings.NewReplacer("(", " ", ")", " ", "[", " ", "]", " ", ",", " ").Replace(line)
	fields := strings.Fields(clean)
	for i := 0; i < len(fields); i++ {
		f := strings.TrimSuffix(fields[i], ",")
		switch {
		case strings.HasPrefix(f, "P") && len(f) <= 4 && f != "Phy":
			vars = append(vars, g("pipe:"+f))
		case strings.HasPrefix(f, "Phy-"):
			vars = append(vars, g("pipe:"+f))
		case strings.HasPrefix(f, "dst:"):
			vars = append(vars, sp("domain:"+strings.TrimPrefix(f, "dst:")))
		case strings.HasSuffix(f, "-gateway"):
			vars = append(vars, sp("gateway:"+f))
		case f == "trade-off:":
			if i+1 < len(fields) {
				vars = append(vars, g("tradeoff:"+fields[i+1]))
			}
		case f == "Tagged":
			vars = append(vars, g("classifier:tagged"))
		}
	}
	return vars
}

// TableVRow is one scenario of Table V.
type TableVRow struct {
	Scenario string
	Today    Counts
	CONMan   Counts
}

// RenderTableV prints rows in the paper's Table V layout.
func RenderTableV(rows []TableVRow) string {
	var b strings.Builder
	b.WriteString("                      ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s", r.Scenario)
	}
	b.WriteString("\n                      ")
	for range rows {
		b.WriteString("T      C      ")
	}
	b.WriteString("\n")
	rowLine := func(label string, f func(Counts) int) {
		fmt.Fprintf(&b, "%-22s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, "%-7d%-7d", f(r.Today), f(r.CONMan))
		}
		b.WriteString("\n")
	}
	rowLine("Generic Commands", func(c Counts) int { return c.GenericCommands })
	rowLine("Specific Commands", func(c Counts) int { return c.SpecificCommands })
	rowLine("Generic State Var.", func(c Counts) int { return c.GenericVars })
	rowLine("Specific State Var.", func(c Counts) int { return c.SpecificVars })
	return b.String()
}

// Vars returns the distinct variable identities of a script per class,
// sorted (used in tests and reports).
func Vars(s Script) (generic, specific []string) {
	seen := map[string]Class{}
	for _, c := range s.Commands {
		for _, v := range c.Vars {
			seen[v.Ident] = v.Class
		}
	}
	for id, cl := range seen {
		if cl == Generic {
			generic = append(generic, id)
		} else {
			specific = append(specific, id)
		}
	}
	sort.Strings(generic)
	sort.Strings(specific)
	return generic, specific
}
