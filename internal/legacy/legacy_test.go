package legacy

import "testing"

func TestTodayGREMatchesTableV(t *testing.T) {
	c := Count(TodayGRE())
	want := Counts{GenericCommands: 1, SpecificCommands: 6, GenericVars: 9, SpecificVars: 11}
	if c != want {
		gen, spec := Vars(TodayGRE())
		t.Fatalf("GRE today = %+v, want %+v\ngeneric: %v\nspecific: %v", c, want, gen, spec)
	}
}

func TestTodayMPLSMatchesTableV(t *testing.T) {
	c := Count(TodayMPLS())
	want := Counts{GenericCommands: 1, SpecificCommands: 6, GenericVars: 6, SpecificVars: 8}
	if c != want {
		gen, spec := Vars(TodayMPLS())
		t.Fatalf("MPLS today = %+v, want %+v\ngeneric: %v\nspecific: %v", c, want, gen, spec)
	}
}

func TestTodayVLANMatchesTableV(t *testing.T) {
	c := Count(TodayVLAN())
	want := Counts{GenericCommands: 3, SpecificCommands: 4, GenericVars: 3, SpecificVars: 5}
	if c != want {
		gen, spec := Vars(TodayVLAN())
		t.Fatalf("VLAN today = %+v, want %+v\ngeneric: %v\nspecific: %v", c, want, gen, spec)
	}
}

func TestClassifyCONManGRE(t *testing.T) {
	// The compiler-rendered router-A script of Fig 7b (from the live
	// system; regenerated in the experiments package — this pins the
	// classifier behaviour).
	script := `P0 = create (pipe, <IP,A,g>, <ETH,A,a>, None, None, None)
P1 = create (pipe, <IP,A,g>, <GRE,A,l>, <IP,C,k>, <GRE,C,n>, trade-off: ordering, trade-off: error-rate)
create (switch, <IP,A,g>, [P0, dst:C1-S2 => P1])
create (switch, <IP,A,g>, [P1 => P0, S1-gateway])
P2 = create (pipe, <GRE,A,l>, <IP,A,h>, <GRE,C,n>, <IP,C,j>, None)
create (switch, <GRE,A,l>, P1, P2)
P3 = create (pipe, <IP,A,h>, <ETH,A,b>, <IP,B,i>, <ETH,B,c>, None)
create (switch, <IP,A,h>, P2, P3)
create (switch, <ETH,A,b>, P3, Phy-eth2)`
	s := ClassifyCONMan("gre", script)
	c := Count(s)
	if c.GenericCommands != 2 || c.SpecificCommands != 0 {
		t.Fatalf("commands = %+v, want 2 generic / 0 specific", c)
	}
	// The paper's headline: exactly two protocol-specific state
	// variables remain (the customer prefix and the gateway).
	if c.SpecificVars != 2 {
		_, spec := Vars(s)
		t.Fatalf("specific vars = %d (%v), want 2", c.SpecificVars, spec)
	}
	if c.GenericVars < 15 {
		t.Fatalf("generic vars = %d, implausibly low", c.GenericVars)
	}
}

func TestCountDeduplicates(t *testing.T) {
	s := Script{Commands: []Command{
		{Name: "x", Class: Generic, Vars: []Var{g("a"), g("a"), sp("b")}},
		{Name: "x", Class: Generic, Vars: []Var{sp("b")}},
	}}
	c := Count(s)
	if c.GenericCommands != 1 || c.GenericVars != 1 || c.SpecificVars != 1 {
		t.Fatalf("count = %+v", c)
	}
}

func TestScriptTextRoundTrip(t *testing.T) {
	txt := TodayGRE().Text()
	for _, want := range []string{"insmod", "ip tunnel add", "ikey 1001", "iff greA"} {
		if !contains(txt, want) {
			t.Errorf("script text missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > len(sub) && (s[:len(sub)] == sub || contains(s[1:], sub))))
}

func TestRenderTableV(t *testing.T) {
	out := RenderTableV([]TableVRow{
		{Scenario: "GRE", Today: Count(TodayGRE()), CONMan: Counts{GenericCommands: 2, GenericVars: 17, SpecificVars: 2}},
	})
	for _, want := range []string{"Generic Commands", "Specific State Var."} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
