// Package packet implements byte-level codecs for the protocol headers the
// CONMan reproduction forwards through its simulated data plane: Ethernet,
// 802.1Q VLAN tags, ARP, IPv4, GRE (RFC 2784/2890), MPLS label stacks
// (RFC 3032) and UDP, plus a small probe payload used by module self-tests.
//
// The design follows the gopacket model: serialization PREPENDS each layer
// onto a buffer, treating the buffer's current contents as the layer's
// payload, so a full packet is built by serializing layers innermost-first
// (Serialize handles the ordering). Decoding walks outermost-in, each layer
// naming the decoder for its payload.
package packet

import "fmt"

// Buffer accumulates packet bytes with cheap prepends. The zero value is
// not usable; call NewBuffer.
type Buffer struct {
	data  []byte
	start int
}

// NewBuffer returns a buffer whose current contents are payload. The
// payload bytes are copied, with headroom reserved for headers.
func NewBuffer(payload []byte) *Buffer {
	const headroom = 128
	b := &Buffer{
		data:  make([]byte, headroom+len(payload)),
		start: headroom,
	}
	copy(b.data[headroom:], payload)
	return b
}

// Prepend makes room for n bytes at the front of the buffer and returns
// the slice to fill in.
func (b *Buffer) Prepend(n int) []byte {
	if n > b.start {
		grown := make([]byte, len(b.data)+n+128)
		shift := n + 128
		copy(grown[b.start+shift:], b.data[b.start:])
		b.data = grown
		b.start += shift
	}
	b.start -= n
	return b.data[b.start : b.start+n]
}

// Bytes returns the current contents (headers prepended so far followed by
// the payload). The slice aliases the buffer; callers that retain it across
// further prepends must copy.
func (b *Buffer) Bytes() []byte { return b.data[b.start:] }

// Len returns the current content length.
func (b *Buffer) Len() int { return len(b.data) - b.start }

// SerializableLayer is implemented by header types that can prepend
// themselves onto a buffer.
type SerializableLayer interface {
	// SerializeTo prepends the layer's wire form onto b. The buffer's
	// prior contents are the layer's payload (lengths and checksums are
	// computed from it).
	SerializeTo(b *Buffer) error
	// LayerType names the layer.
	LayerType() LayerType
}

// Serialize builds a packet from layers listed outermost-first followed by
// an optional raw payload, mirroring gopacket.SerializeLayers.
func Serialize(payload []byte, layers ...SerializableLayer) ([]byte, error) {
	b := NewBuffer(payload)
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(b); err != nil {
			return nil, fmt.Errorf("packet: serialize %s: %w", layers[i].LayerType(), err)
		}
	}
	out := make([]byte, b.Len())
	copy(out, b.Bytes())
	return out, nil
}
