package packet

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
)

// FuzzPacketDecode formalizes TestQuickDecodeNeverPanics as a native
// fuzz target with a stronger contract: Decode must return an error,
// never panic, on arbitrary bytes from any starting layer — and a
// successful decode must survive a serialize/re-decode round trip
// unchanged. (Byte equality is deliberately not required: the decoder
// tolerates representations the serializer normalizes away, such as
// IPv4 options it does not model.)
func FuzzPacketDecode(f *testing.F) {
	// Seed with real frames so the fuzzer starts at the interesting
	// boundaries rather than in random noise.
	eth := Ethernet{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{6, 5, 4, 3, 2, 1}, Type: EtherTypeIPv4}
	ip := IPv4{TTL: 64, Proto: ProtoProbe, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}
	if frame, err := Serialize(nil, eth, ip, Probe{Op: ProbeEcho, Token: 99}); err == nil {
		f.Add(frame, uint8(LayerTypeEthernet))
	}
	udpIP := IPv4{TTL: 64, Proto: ProtoUDP, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}
	if frame, err := Serialize([]byte("hello"), udpIP, UDP{Src: 53, Dst: 1053}); err == nil {
		f.Add(frame, uint8(LayerTypeIPv4))
	}
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xff}, uint8(255))

	f.Fuzz(func(t *testing.T, data []byte, start uint8) {
		lt := LayerType(start % uint8(LayerTypePayload+1))
		d1, err := Decode(data, lt)
		if err != nil {
			return
		}
		layers := make([]SerializableLayer, 0, len(d1.Layers))
		for _, l := range d1.Layers {
			sl, ok := l.(SerializableLayer)
			if !ok {
				t.Fatalf("decoded layer %s is not serializable", l.LayerType())
			}
			layers = append(layers, sl)
		}
		out, err := Serialize(d1.Payload, layers...)
		if err != nil {
			t.Fatalf("decoded packet does not re-serialize: %v", err)
		}
		d2, err := Decode(out, lt)
		if err != nil {
			t.Fatalf("re-serialized packet does not re-decode: %v\nin  %x\nout %x", err, data, out)
		}
		if !reflect.DeepEqual(d1.Layers, d2.Layers) {
			t.Fatalf("round trip changed the layers\nfirst  %s\nsecond %s", d1.Summary(), d2.Summary())
		}
		if !bytes.Equal(d1.Payload, d2.Payload) {
			t.Fatalf("round trip changed the payload\nfirst  %x\nsecond %x", d1.Payload, d2.Payload)
		}
	})
}
