package packet

import "fmt"

// Layer is one decoded header.
type Layer interface {
	LayerType() LayerType
}

// Decoded is the result of decoding a packet: the parsed headers
// outermost-first and the remaining payload bytes.
type Decoded struct {
	Layers  []Layer
	Payload []byte
}

// Layer returns the first decoded layer of type t, or nil.
func (d *Decoded) Layer(t LayerType) Layer {
	for _, l := range d.Layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// Decode walks the packet from the given first layer, decoding headers
// until it reaches an opaque payload. Unlike gopacket we fail the whole
// decode on a malformed header: the simulator never needs partial decodes,
// and a hard error surfaces bugs immediately.
func Decode(data []byte, first LayerType) (*Decoded, error) {
	d := &Decoded{}
	cur := first
	rest := data
	for {
		if cur == LayerTypePayload {
			d.Payload = rest
			return d, nil
		}
		var (
			layer Layer
			n     int
			next  LayerType
			err   error
		)
		switch cur {
		case LayerTypeEthernet:
			var e Ethernet
			e, n, next, err = DecodeEthernet(rest)
			layer = e
		case LayerTypeDot1Q:
			var q Dot1Q
			q, n, next, err = DecodeDot1Q(rest)
			layer = q
		case LayerTypeARP:
			var a ARP
			a, n, next, err = DecodeARP(rest)
			layer = a
		case LayerTypeIPv4:
			var ip IPv4
			ip, n, next, err = DecodeIPv4(rest)
			layer = ip
		case LayerTypeGRE:
			var g GRE
			g, n, next, err = DecodeGRE(rest)
			layer = g
		case LayerTypeMPLS:
			var m MPLS
			m, n, next, err = DecodeMPLS(rest)
			layer = m
		case LayerTypeUDP:
			var u UDP
			u, n, next, err = DecodeUDP(rest)
			layer = u
		case LayerTypeProbe:
			var p Probe
			p, n, next, err = DecodeProbe(rest)
			layer = p
		default:
			return nil, fmt.Errorf("packet: no decoder for %s", cur)
		}
		if err != nil {
			return nil, err
		}
		d.Layers = append(d.Layers, layer)
		rest = rest[n:]
		cur = next
	}
}

// Summary renders a one-line protocol summary like
// "Ethernet > IPv4 > GRE > IPv4 > Probe", useful in tests and captures.
func (d *Decoded) Summary() string {
	s := ""
	for i, l := range d.Layers {
		if i > 0 {
			s += " > "
		}
		s += l.LayerType().String()
	}
	if len(d.Payload) > 0 {
		if s != "" {
			s += " > "
		}
		s += fmt.Sprintf("Payload(%dB)", len(d.Payload))
	}
	return s
}
