package packet

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func mac(b byte) MAC { return MAC{0x02, 0, 0, 0, 0, b} }

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestBufferPrepend(t *testing.T) {
	b := NewBuffer([]byte("payload"))
	copy(b.Prepend(3), "abc")
	copy(b.Prepend(2), "XY")
	if got := string(b.Bytes()); got != "XYabcpayload" {
		t.Fatalf("got %q", got)
	}
	if b.Len() != len("XYabcpayload") {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBufferPrependGrows(t *testing.T) {
	b := NewBuffer(nil)
	big := b.Prepend(4096)
	for i := range big {
		big[i] = byte(i)
	}
	if b.Len() != 4096 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Bytes()[1] != 1 || b.Bytes()[4095] != byte(4095%256) {
		t.Fatal("contents corrupted by growth")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	e := Ethernet{Dst: mac(1), Src: mac(2), Type: EtherTypeIPv4}
	data, err := Serialize([]byte{0xde, 0xad}, e)
	if err != nil {
		t.Fatal(err)
	}
	got, n, next, err := DecodeEthernet(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != e || n != 14 || next != LayerTypeIPv4 {
		t.Fatalf("got %+v n=%d next=%v", got, n, next)
	}
	if !bytes.Equal(data[n:], []byte{0xde, 0xad}) {
		t.Fatal("payload mangled")
	}
}

func TestEthernetTruncated(t *testing.T) {
	if _, _, _, err := DecodeEthernet(make([]byte, 13)); err == nil {
		t.Fatal("want error for truncated frame")
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0x02, 0x42, 0xac, 0x11, 0x00, 0x02}
	s := m.String()
	if s != "02:42:ac:11:00:02" {
		t.Fatalf("got %q", s)
	}
	back, err := ParseMAC(s)
	if err != nil || back != m {
		t.Fatalf("ParseMAC: %v %v", back, err)
	}
	if _, err := ParseMAC("nonsense"); err == nil {
		t.Fatal("want parse error")
	}
	if !BroadcastMAC.IsBroadcast() || m.IsBroadcast() {
		t.Fatal("IsBroadcast wrong")
	}
	if !(MAC{}).IsZero() || m.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestDot1QRoundTrip(t *testing.T) {
	q := Dot1Q{PCP: 5, DEI: true, VID: 22, Type: EtherTypeIPv4}
	data, err := Serialize(nil, q)
	if err != nil {
		t.Fatal(err)
	}
	got, n, next, err := DecodeDot1Q(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != q || n != 4 || next != LayerTypeIPv4 {
		t.Fatalf("got %+v n=%d next=%v", got, n, next)
	}
}

func TestDot1QValidation(t *testing.T) {
	if _, err := Serialize(nil, Dot1Q{VID: 5000}); err == nil {
		t.Fatal("want VID range error")
	}
	if _, err := Serialize(nil, Dot1Q{PCP: 9}); err == nil {
		t.Fatal("want PCP range error")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := ARP{
		Op:        ARPRequest,
		SenderMAC: mac(9),
		SenderIP:  addr("10.0.0.1"),
		TargetMAC: MAC{},
		TargetIP:  addr("10.0.0.2"),
	}
	data, err := Serialize(nil, a)
	if err != nil {
		t.Fatal(err)
	}
	got, n, _, err := DecodeARP(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != a || n != 28 {
		t.Fatalf("got %+v n=%d", got, n)
	}
}

func TestARPRejectsIPv6(t *testing.T) {
	a := ARP{Op: ARPRequest, SenderIP: addr("::1"), TargetIP: addr("10.0.0.2")}
	if _, err := Serialize(nil, a); err == nil {
		t.Fatal("want error for IPv6 address in ARP")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	ip := IPv4{
		TOS: 0x10, ID: 4242, DontFrag: true, TTL: 63,
		Proto: ProtoGRE,
		Src:   addr("204.9.168.1"), Dst: addr("204.9.169.1"),
	}
	payload := []byte("hello world")
	data, err := Serialize(payload, ip)
	if err != nil {
		t.Fatal(err)
	}
	got, n, next, err := DecodeIPv4(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != ip {
		t.Fatalf("got %+v want %+v", got, ip)
	}
	if n != 20 || next != LayerTypeGRE {
		t.Fatalf("n=%d next=%v", n, next)
	}
	if !bytes.Equal(data[n:], payload) {
		t.Fatal("payload mangled")
	}
}

func TestIPv4ChecksumDetectsCorruption(t *testing.T) {
	ip := IPv4{TTL: 64, Proto: ProtoUDP, Src: addr("1.2.3.4"), Dst: addr("5.6.7.8")}
	data, err := Serialize(nil, ip)
	if err != nil {
		t.Fatal(err)
	}
	data[8] ^= 0xff // flip TTL
	if _, _, _, err := DecodeIPv4(data); err == nil {
		t.Fatal("want checksum error")
	}
}

func TestIPv4BadVersion(t *testing.T) {
	data := make([]byte, 20)
	data[0] = 0x65
	if _, _, _, err := DecodeIPv4(data); err == nil {
		t.Fatal("want version error")
	}
}

func TestGRERoundTripAllFlagCombos(t *testing.T) {
	for i := 0; i < 8; i++ {
		g := GRE{
			ChecksumPresent: i&1 != 0,
			KeyPresent:      i&2 != 0,
			SeqPresent:      i&4 != 0,
			Proto:           EtherTypeIPv4,
		}
		if g.KeyPresent {
			g.Key = 1001
		}
		if g.SeqPresent {
			g.Seq = 77
		}
		payload := []byte{1, 2, 3, 4, 5}
		data, err := Serialize(payload, g)
		if err != nil {
			t.Fatalf("combo %d: %v", i, err)
		}
		got, n, next, err := DecodeGRE(data)
		if err != nil {
			t.Fatalf("combo %d: %v", i, err)
		}
		if got != g {
			t.Fatalf("combo %d: got %+v want %+v", i, got, g)
		}
		if next != LayerTypeIPv4 {
			t.Fatalf("combo %d: next=%v", i, next)
		}
		if !bytes.Equal(data[n:], payload) {
			t.Fatalf("combo %d: payload mangled", i)
		}
	}
}

func TestGREChecksumDetectsCorruption(t *testing.T) {
	g := GRE{ChecksumPresent: true, KeyPresent: true, Key: 5, Proto: EtherTypeIPv4}
	data, err := Serialize([]byte("x"), g)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x55
	if _, _, _, err := DecodeGRE(data); err == nil {
		t.Fatal("want GRE checksum error")
	}
}

func TestMPLSRoundTrip(t *testing.T) {
	m := MPLS{Entries: []MPLSEntry{
		{Label: 10001, TC: 3, TTL: 64},
		{Label: 2001, TTL: 64},
	}}
	inner := IPv4{TTL: 10, Proto: ProtoProbe, Src: addr("10.0.1.1"), Dst: addr("10.0.2.1")}
	data, err := Serialize(nil, m, inner)
	if err != nil {
		t.Fatal(err)
	}
	got, n, next, err := DecodeMPLS(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 {
		t.Fatalf("entries = %d", len(got.Entries))
	}
	if got.Entries[0].Label != 10001 || got.Entries[0].S {
		t.Fatalf("top entry %+v", got.Entries[0])
	}
	if got.Entries[1].Label != 2001 || !got.Entries[1].S {
		t.Fatalf("bottom entry %+v", got.Entries[1])
	}
	if n != 8 || next != LayerTypeIPv4 {
		t.Fatalf("n=%d next=%v", n, next)
	}
}

func TestMPLSValidation(t *testing.T) {
	if _, err := Serialize(nil, MPLS{}); err == nil {
		t.Fatal("want empty-stack error")
	}
	if _, err := Serialize(nil, MPLS{Entries: []MPLSEntry{{Label: 1 << 21}}}); err == nil {
		t.Fatal("want label range error")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := UDP{Src: 500, Dst: 592}
	payload := []byte("ike-ish")
	data, err := Serialize(payload, u)
	if err != nil {
		t.Fatal(err)
	}
	got, n, _, err := DecodeUDP(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != u || n != 8 {
		t.Fatalf("got %+v n=%d", got, n)
	}
	if !bytes.Equal(data[n:], payload) {
		t.Fatal("payload mangled")
	}
}

func TestProbeRoundTrip(t *testing.T) {
	p := Probe{Op: ProbeEcho, Token: 0xdeadbeef}
	data, err := Serialize(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := DecodeProbe(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeFullStackGREOverIP(t *testing.T) {
	// The exact on-the-wire nesting of the paper's Fig 2/7 GRE path:
	// ETH | IP(outer) | GRE | IP(inner) | Probe
	inner := IPv4{TTL: 64, Proto: ProtoProbe, Src: addr("10.0.1.1"), Dst: addr("10.0.2.1")}
	gre := GRE{KeyPresent: true, Key: 2001, SeqPresent: true, Seq: 1, Proto: EtherTypeIPv4}
	outer := IPv4{TTL: 64, Proto: ProtoGRE, Src: addr("204.9.168.1"), Dst: addr("204.9.169.1")}
	eth := Ethernet{Dst: mac(3), Src: mac(4), Type: EtherTypeIPv4}
	data, err := Serialize(nil, eth, outer, gre, inner, Probe{Op: ProbeEcho, Token: 7})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(data, LayerTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	want := "Ethernet > IPv4 > GRE > IPv4 > Probe"
	if got := d.Summary(); got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
	g := d.Layer(LayerTypeGRE).(GRE)
	if g.Key != 2001 || g.Seq != 1 {
		t.Fatalf("GRE layer %+v", g)
	}
	if d.Layer(LayerTypeMPLS) != nil {
		t.Fatal("unexpected MPLS layer")
	}
}

func TestDecodeFullStackVLAN(t *testing.T) {
	// QinQ as in Fig 9: ETH | 802.1Q(outer, ISP VLAN 22) | 802.1Q(customer) | IP
	ip := IPv4{TTL: 9, Proto: ProtoProbe, Src: addr("10.0.1.1"), Dst: addr("10.0.2.1")}
	inner := Dot1Q{VID: 7, Type: EtherTypeIPv4}
	outer := Dot1Q{VID: 22, Type: EtherTypeDot1Q}
	eth := Ethernet{Dst: mac(8), Src: mac(9), Type: EtherTypeDot1Q}
	data, err := Serialize(nil, eth, outer, inner, ip, Probe{Op: ProbeEcho})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(data, LayerTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	want := "Ethernet > Dot1Q > Dot1Q > IPv4 > Probe"
	if got := d.Summary(); got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
}

func TestDecodeErrorPropagates(t *testing.T) {
	eth := Ethernet{Dst: mac(1), Src: mac(2), Type: EtherTypeIPv4}
	data, err := Serialize([]byte{0x45}, eth) // truncated IPv4
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data, LayerTypeEthernet); err == nil {
		t.Fatal("want decode error")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style vector: checksum of a block containing its
	// own correct checksum is zero.
	data := []byte{0x45, 0x00, 0x00, 0x28, 0x12, 0x34, 0x40, 0x00, 0x40, 0x06,
		0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0x02}
	c := Checksum(data)
	data[10] = byte(c >> 8)
	data[11] = byte(c)
	if Checksum(data) != 0 {
		t.Fatal("checksum of self-checksummed block must be 0")
	}
}

// ---------------------------------------------------------------------------
// Property-based tests (testing/quick)

func ipv4ForQuick(r *rand.Rand) IPv4 {
	var s, d [4]byte
	r.Read(s[:])
	r.Read(d[:])
	return IPv4{
		TOS:      uint8(r.Intn(256)),
		ID:       uint16(r.Intn(1 << 16)),
		DontFrag: r.Intn(2) == 0,
		TTL:      uint8(r.Intn(256)),
		Proto:    IPProto(r.Intn(256)),
		Src:      netip.AddrFrom4(s),
		Dst:      netip.AddrFrom4(d),
	}
}

func TestQuickIPv4RoundTrip(t *testing.T) {
	f := func(seed int64, payloadLen uint16) bool {
		r := rand.New(rand.NewSource(seed))
		ip := ipv4ForQuick(r)
		payload := make([]byte, int(payloadLen)%1400)
		r.Read(payload)
		data, err := Serialize(payload, ip)
		if err != nil {
			return false
		}
		got, n, _, err := DecodeIPv4(data)
		return err == nil && got == ip && bytes.Equal(data[n:], payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGRERoundTrip(t *testing.T) {
	f := func(flags uint8, key, seq uint32, payload []byte) bool {
		g := GRE{
			ChecksumPresent: flags&1 != 0,
			KeyPresent:      flags&2 != 0,
			SeqPresent:      flags&4 != 0,
			Proto:           EtherTypeIPv4,
		}
		if g.KeyPresent {
			g.Key = key
		}
		if g.SeqPresent {
			g.Seq = seq
		}
		data, err := Serialize(payload, g)
		if err != nil {
			return false
		}
		got, n, _, err := DecodeGRE(data)
		return err == nil && got == g && bytes.Equal(data[n:], payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMPLSRoundTrip(t *testing.T) {
	f := func(labels []uint32, ttl uint8) bool {
		if len(labels) == 0 {
			return true
		}
		if len(labels) > 16 {
			labels = labels[:16]
		}
		m := MPLS{}
		for _, l := range labels {
			m.Entries = append(m.Entries, MPLSEntry{Label: l % (1 << 20), TTL: ttl})
		}
		data, err := Serialize([]byte{0x45}, m) // payload first nibble 4 => IPv4 next
		if err != nil {
			return false
		}
		got, _, next, err := DecodeMPLS(data)
		if err != nil || next != LayerTypeIPv4 {
			return false
		}
		if len(got.Entries) != len(m.Entries) {
			return false
		}
		for i := range got.Entries {
			wantS := i == len(m.Entries)-1
			if got.Entries[i].Label != m.Entries[i].Label || got.Entries[i].S != wantS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDot1QRoundTrip(t *testing.T) {
	f := func(pcp uint8, dei bool, vid uint16) bool {
		q := Dot1Q{PCP: pcp % 8, DEI: dei, VID: vid % 4096, Type: EtherTypeIPv4}
		data, err := Serialize(nil, q)
		if err != nil {
			return false
		}
		got, _, _, err := DecodeDot1Q(data)
		return err == nil && got == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChecksumIncremental(t *testing.T) {
	// Property: appending the ones-complement checksum as a trailing
	// 16-bit word makes the overall checksum zero (even-length blocks).
	f := func(data []byte) bool {
		if len(data)%2 == 1 {
			data = append(data, 0)
		}
		c := Checksum(data)
		whole := append(append([]byte{}, data...), byte(c>>8), byte(c))
		return Checksum(whole) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	// Fuzz-ish robustness: Decode must return an error, never panic, on
	// arbitrary input from any starting layer.
	f := func(data []byte, start uint8) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %v: %v", data, r)
			}
		}()
		_, _ = Decode(data, LayerType(start%uint8(LayerTypePayload+1)))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeReflectsLayerOrder(t *testing.T) {
	// Serialize with outermost-first ordering must equal manual prepends
	// in reverse order.
	eth := Ethernet{Dst: mac(1), Src: mac(2), Type: EtherTypeIPv4}
	ip := IPv4{TTL: 64, Proto: ProtoProbe, Src: addr("1.1.1.1"), Dst: addr("2.2.2.2")}
	p := Probe{Op: ProbeEcho, Token: 1}
	want, err := Serialize(nil, eth, ip, p)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuffer(nil)
	for _, l := range []SerializableLayer{p, ip, eth} {
		if err := l.SerializeTo(b); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(want, b.Bytes()) {
		t.Fatal("Serialize disagrees with manual prepends")
	}
	if !reflect.DeepEqual(want[:14], b.Bytes()[:14]) {
		t.Fatal("header bytes differ")
	}
}
