package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// LayerType identifies a decodable/serializable header type.
type LayerType uint8

const (
	LayerTypeEthernet LayerType = iota
	LayerTypeDot1Q
	LayerTypeARP
	LayerTypeIPv4
	LayerTypeGRE
	LayerTypeMPLS
	LayerTypeUDP
	LayerTypeProbe
	LayerTypePayload
)

var layerTypeNames = [...]string{
	"Ethernet", "Dot1Q", "ARP", "IPv4", "GRE", "MPLS", "UDP", "Probe", "Payload",
}

func (t LayerType) String() string {
	if int(t) < len(layerTypeNames) {
		return layerTypeNames[t]
	}
	return fmt.Sprintf("LayerType(%d)", uint8(t))
}

// EtherType is an Ethernet (or GRE protocol-type) value.
type EtherType uint16

const (
	EtherTypeIPv4  EtherType = 0x0800
	EtherTypeARP   EtherType = 0x0806
	EtherTypeDot1Q EtherType = 0x8100
	EtherTypeMPLS  EtherType = 0x8847
	// EtherTypeMgmt is the experimental EtherType the self-bootstrapping
	// management channel uses for its raw frames (paper §III-A).
	EtherTypeMgmt EtherType = 0x88B5
	// EtherTypeTransparentBridging is the GRE protocol type for
	// bridged Ethernet payloads.
	EtherTypeTransparentBridging EtherType = 0x6558
)

func (t EtherType) String() string {
	switch t {
	case EtherTypeIPv4:
		return "IPv4"
	case EtherTypeARP:
		return "ARP"
	case EtherTypeDot1Q:
		return "802.1Q"
	case EtherTypeMPLS:
		return "MPLS"
	case EtherTypeMgmt:
		return "Mgmt"
	case EtherTypeTransparentBridging:
		return "TEB"
	}
	return fmt.Sprintf("EtherType(0x%04x)", uint16(t))
}

// IPProto is an IPv4 protocol number.
type IPProto uint8

const (
	ProtoIPIP  IPProto = 4
	ProtoUDP   IPProto = 17
	ProtoGRE   IPProto = 47
	ProtoESP   IPProto = 50
	ProtoProbe IPProto = 253 // RFC 3692 experimental; used by self-tests
)

func (p IPProto) String() string {
	switch p {
	case ProtoIPIP:
		return "IPIP"
	case ProtoUDP:
		return "UDP"
	case ProtoGRE:
		return "GRE"
	case ProtoESP:
		return "ESP"
	case ProtoProbe:
		return "Probe"
	}
	return fmt.Sprintf("IPProto(%d)", uint8(p))
}

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// BroadcastMAC is ff:ff:ff:ff:ff:ff.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsZero reports whether the address is all zeros.
func (m MAC) IsZero() bool { return m == MAC{} }

// ParseMAC parses the colon-separated form produced by MAC.String.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x",
		&m[0], &m[1], &m[2], &m[3], &m[4], &m[5])
	if err != nil || n != 6 {
		return MAC{}, fmt.Errorf("packet: bad MAC %q", s)
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// Ethernet

// Ethernet is a DIX Ethernet II header.
type Ethernet struct {
	Dst, Src MAC
	Type     EtherType
}

const ethernetLen = 14

// LayerType implements SerializableLayer.
func (Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// SerializeTo implements SerializableLayer.
func (e Ethernet) SerializeTo(b *Buffer) error {
	h := b.Prepend(ethernetLen)
	copy(h[0:6], e.Dst[:])
	copy(h[6:12], e.Src[:])
	binary.BigEndian.PutUint16(h[12:14], uint16(e.Type))
	return nil
}

// DecodeEthernet parses an Ethernet header, returning the header, the
// number of bytes consumed and the payload's layer type.
func DecodeEthernet(data []byte) (Ethernet, int, LayerType, error) {
	var e Ethernet
	if len(data) < ethernetLen {
		return e, 0, 0, errTruncated("Ethernet", ethernetLen, len(data))
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.Type = EtherType(binary.BigEndian.Uint16(data[12:14]))
	return e, ethernetLen, nextFromEtherType(e.Type), nil
}

func nextFromEtherType(t EtherType) LayerType {
	switch t {
	case EtherTypeIPv4:
		return LayerTypeIPv4
	case EtherTypeARP:
		return LayerTypeARP
	case EtherTypeDot1Q:
		return LayerTypeDot1Q
	case EtherTypeMPLS:
		return LayerTypeMPLS
	default:
		return LayerTypePayload
	}
}

// ---------------------------------------------------------------------------
// 802.1Q

// Dot1Q is an IEEE 802.1Q VLAN tag (the 4 bytes following the MAC
// addresses; Type is the encapsulated EtherType).
type Dot1Q struct {
	PCP  uint8  // priority code point (3 bits)
	DEI  bool   // drop eligible indicator
	VID  uint16 // VLAN identifier (12 bits)
	Type EtherType
}

const dot1qLen = 4

// LayerType implements SerializableLayer.
func (Dot1Q) LayerType() LayerType { return LayerTypeDot1Q }

// SerializeTo implements SerializableLayer.
func (q Dot1Q) SerializeTo(b *Buffer) error {
	if q.VID > 0x0fff {
		return fmt.Errorf("VID %d out of range", q.VID)
	}
	if q.PCP > 7 {
		return fmt.Errorf("PCP %d out of range", q.PCP)
	}
	h := b.Prepend(dot1qLen)
	tci := uint16(q.PCP)<<13 | uint16(q.VID)
	if q.DEI {
		tci |= 1 << 12
	}
	binary.BigEndian.PutUint16(h[0:2], tci)
	binary.BigEndian.PutUint16(h[2:4], uint16(q.Type))
	return nil
}

// DecodeDot1Q parses an 802.1Q tag.
func DecodeDot1Q(data []byte) (Dot1Q, int, LayerType, error) {
	var q Dot1Q
	if len(data) < dot1qLen {
		return q, 0, 0, errTruncated("Dot1Q", dot1qLen, len(data))
	}
	tci := binary.BigEndian.Uint16(data[0:2])
	q.PCP = uint8(tci >> 13)
	q.DEI = tci&(1<<12) != 0
	q.VID = tci & 0x0fff
	q.Type = EtherType(binary.BigEndian.Uint16(data[2:4]))
	return q, dot1qLen, nextFromEtherType(q.Type), nil
}

// ---------------------------------------------------------------------------
// ARP (IPv4 over Ethernet only)

// ARP operation codes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARP is an ARP packet for IPv4-over-Ethernet.
type ARP struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  netip.Addr
	TargetMAC MAC
	TargetIP  netip.Addr
}

const arpLen = 28

// LayerType implements SerializableLayer.
func (ARP) LayerType() LayerType { return LayerTypeARP }

// SerializeTo implements SerializableLayer.
func (a ARP) SerializeTo(b *Buffer) error {
	if !a.SenderIP.Is4() || !a.TargetIP.Is4() {
		return errors.New("ARP addresses must be IPv4")
	}
	h := b.Prepend(arpLen)
	binary.BigEndian.PutUint16(h[0:2], 1)                     // htype: Ethernet
	binary.BigEndian.PutUint16(h[2:4], uint16(EtherTypeIPv4)) // ptype
	h[4] = 6                                                  // hlen
	h[5] = 4                                                  // plen
	binary.BigEndian.PutUint16(h[6:8], a.Op)
	copy(h[8:14], a.SenderMAC[:])
	s4 := a.SenderIP.As4()
	copy(h[14:18], s4[:])
	copy(h[18:24], a.TargetMAC[:])
	t4 := a.TargetIP.As4()
	copy(h[24:28], t4[:])
	return nil
}

// DecodeARP parses an ARP packet.
func DecodeARP(data []byte) (ARP, int, LayerType, error) {
	var a ARP
	if len(data) < arpLen {
		return a, 0, 0, errTruncated("ARP", arpLen, len(data))
	}
	if binary.BigEndian.Uint16(data[0:2]) != 1 ||
		EtherType(binary.BigEndian.Uint16(data[2:4])) != EtherTypeIPv4 ||
		data[4] != 6 || data[5] != 4 {
		return a, 0, 0, errors.New("packet: ARP: unsupported hardware/protocol types")
	}
	a.Op = binary.BigEndian.Uint16(data[6:8])
	copy(a.SenderMAC[:], data[8:14])
	a.SenderIP = netip.AddrFrom4([4]byte(data[14:18]))
	copy(a.TargetMAC[:], data[18:24])
	a.TargetIP = netip.AddrFrom4([4]byte(data[24:28]))
	return a, arpLen, LayerTypePayload, nil
}

// ---------------------------------------------------------------------------
// IPv4

// IPv4 is an IPv4 header without options.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	DontFrag bool
	TTL      uint8
	Proto    IPProto
	Src, Dst netip.Addr
}

const ipv4Len = 20

// LayerType implements SerializableLayer.
func (IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// SerializeTo implements SerializableLayer.
func (ip IPv4) SerializeTo(b *Buffer) error {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return errors.New("IPv4 addresses must be IPv4")
	}
	total := ipv4Len + b.Len()
	if total > 0xffff {
		return fmt.Errorf("IPv4 total length %d exceeds 65535", total)
	}
	h := b.Prepend(ipv4Len)
	h[0] = 0x45 // version 4, IHL 5
	h[1] = ip.TOS
	binary.BigEndian.PutUint16(h[2:4], uint16(total))
	binary.BigEndian.PutUint16(h[4:6], ip.ID)
	var flags uint16
	if ip.DontFrag {
		flags = 0x4000
	}
	binary.BigEndian.PutUint16(h[6:8], flags)
	h[8] = ip.TTL
	h[9] = uint8(ip.Proto)
	h[10], h[11] = 0, 0
	s4 := ip.Src.As4()
	copy(h[12:16], s4[:])
	d4 := ip.Dst.As4()
	copy(h[16:20], d4[:])
	csum := Checksum(h[:ipv4Len])
	binary.BigEndian.PutUint16(h[10:12], csum)
	return nil
}

// DecodeIPv4 parses an IPv4 header, validating version, length and header
// checksum.
func DecodeIPv4(data []byte) (IPv4, int, LayerType, error) {
	var ip IPv4
	if len(data) < ipv4Len {
		return ip, 0, 0, errTruncated("IPv4", ipv4Len, len(data))
	}
	if data[0]>>4 != 4 {
		return ip, 0, 0, fmt.Errorf("packet: IPv4: version %d", data[0]>>4)
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < ipv4Len || len(data) < ihl {
		return ip, 0, 0, fmt.Errorf("packet: IPv4: bad IHL %d", ihl)
	}
	total := int(binary.BigEndian.Uint16(data[2:4]))
	if total < ihl || total > len(data) {
		return ip, 0, 0, fmt.Errorf("packet: IPv4: total length %d vs %d available", total, len(data))
	}
	if Checksum(data[:ihl]) != 0 {
		return ip, 0, 0, errors.New("packet: IPv4: bad header checksum")
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ip.DontFrag = binary.BigEndian.Uint16(data[6:8])&0x4000 != 0
	ip.TTL = data[8]
	ip.Proto = IPProto(data[9])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	return ip, ihl, nextFromIPProto(ip.Proto), nil
}

func nextFromIPProto(p IPProto) LayerType {
	switch p {
	case ProtoIPIP:
		return LayerTypeIPv4
	case ProtoUDP:
		return LayerTypeUDP
	case ProtoGRE:
		return LayerTypeGRE
	case ProtoProbe:
		return LayerTypeProbe
	default:
		return LayerTypePayload
	}
}

// Checksum computes the RFC 1071 Internet checksum over data. Computing it
// over a block that embeds a correct checksum yields zero.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

// ---------------------------------------------------------------------------
// GRE (RFC 2784 with the RFC 2890 key and sequence extensions)

// GRE is a GRE header. The Checksum/Key/Seq fields are present on the wire
// only when the corresponding *Present flag is set — exactly the icsum/
// okey/oseq knobs of the Linux "ip tunnel add" command the paper's GRE
// module wraps.
type GRE struct {
	ChecksumPresent bool
	KeyPresent      bool
	SeqPresent      bool
	Proto           EtherType
	Key             uint32
	Seq             uint32
}

func (g GRE) headerLen() int {
	n := 4
	if g.ChecksumPresent {
		n += 4
	}
	if g.KeyPresent {
		n += 4
	}
	if g.SeqPresent {
		n += 4
	}
	return n
}

// LayerType implements SerializableLayer.
func (GRE) LayerType() LayerType { return LayerTypeGRE }

// SerializeTo implements SerializableLayer.
func (g GRE) SerializeTo(b *Buffer) error {
	n := g.headerLen()
	h := b.Prepend(n)
	var flags uint16
	if g.ChecksumPresent {
		flags |= 0x8000
	}
	if g.KeyPresent {
		flags |= 0x2000
	}
	if g.SeqPresent {
		flags |= 0x1000
	}
	binary.BigEndian.PutUint16(h[0:2], flags)
	binary.BigEndian.PutUint16(h[2:4], uint16(g.Proto))
	off := 4
	if g.ChecksumPresent {
		// Checksum computed below over header+payload; zero for now.
		binary.BigEndian.PutUint32(h[off:off+4], 0)
		off += 4
	}
	if g.KeyPresent {
		binary.BigEndian.PutUint32(h[off:off+4], g.Key)
		off += 4
	}
	if g.SeqPresent {
		binary.BigEndian.PutUint32(h[off:off+4], g.Seq)
	}
	if g.ChecksumPresent {
		csum := Checksum(b.Bytes())
		binary.BigEndian.PutUint16(h[4:6], csum)
	}
	return nil
}

// DecodeGRE parses a GRE header, verifying the checksum when present.
func DecodeGRE(data []byte) (GRE, int, LayerType, error) {
	var g GRE
	if len(data) < 4 {
		return g, 0, 0, errTruncated("GRE", 4, len(data))
	}
	flags := binary.BigEndian.Uint16(data[0:2])
	if flags&0x0800 != 0 {
		return g, 0, 0, errors.New("packet: GRE: routing present not supported")
	}
	if ver := flags & 0x0007; ver != 0 {
		return g, 0, 0, fmt.Errorf("packet: GRE: version %d", ver)
	}
	g.ChecksumPresent = flags&0x8000 != 0
	g.KeyPresent = flags&0x2000 != 0
	g.SeqPresent = flags&0x1000 != 0
	g.Proto = EtherType(binary.BigEndian.Uint16(data[2:4]))
	n := g.headerLen()
	if len(data) < n {
		return g, 0, 0, errTruncated("GRE", n, len(data))
	}
	off := 4
	if g.ChecksumPresent {
		if Checksum(data) != 0 {
			return g, 0, 0, errors.New("packet: GRE: bad checksum")
		}
		off += 4
	}
	if g.KeyPresent {
		g.Key = binary.BigEndian.Uint32(data[off : off+4])
		off += 4
	}
	if g.SeqPresent {
		g.Seq = binary.BigEndian.Uint32(data[off : off+4])
	}
	return g, n, nextFromEtherType(g.Proto), nil
}

// ---------------------------------------------------------------------------
// MPLS (RFC 3032 label stack)

// MPLSEntry is one 32-bit MPLS label stack entry.
type MPLSEntry struct {
	Label uint32 // 20 bits
	TC    uint8  // 3 bits (traffic class, formerly EXP)
	S     bool   // bottom of stack
	TTL   uint8
}

// MPLS is a label stack (top first). On serialization the S bit is set
// automatically on the last entry.
type MPLS struct {
	Entries []MPLSEntry
}

// LayerType implements SerializableLayer.
func (MPLS) LayerType() LayerType { return LayerTypeMPLS }

// SerializeTo implements SerializableLayer.
func (m MPLS) SerializeTo(b *Buffer) error {
	if len(m.Entries) == 0 {
		return errors.New("MPLS: empty label stack")
	}
	h := b.Prepend(4 * len(m.Entries))
	for i, e := range m.Entries {
		if e.Label > 0xfffff {
			return fmt.Errorf("MPLS: label %d out of range", e.Label)
		}
		if e.TC > 7 {
			return fmt.Errorf("MPLS: TC %d out of range", e.TC)
		}
		v := e.Label<<12 | uint32(e.TC)<<9 | uint32(e.TTL)
		if i == len(m.Entries)-1 {
			v |= 1 << 8
		}
		binary.BigEndian.PutUint32(h[4*i:4*i+4], v)
	}
	return nil
}

// DecodeMPLS parses a label stack through the bottom-of-stack entry. The
// payload type is inferred from the first nibble of the payload (the same
// heuristic label-switching routers use): 4 ⇒ IPv4, otherwise opaque.
func DecodeMPLS(data []byte) (MPLS, int, LayerType, error) {
	var m MPLS
	off := 0
	for {
		if len(data) < off+4 {
			return m, 0, 0, errTruncated("MPLS", off+4, len(data))
		}
		v := binary.BigEndian.Uint32(data[off : off+4])
		e := MPLSEntry{
			Label: v >> 12,
			TC:    uint8(v >> 9 & 0x7),
			S:     v&(1<<8) != 0,
			TTL:   uint8(v),
		}
		m.Entries = append(m.Entries, e)
		off += 4
		if e.S {
			break
		}
	}
	next := LayerTypePayload
	if len(data) > off && data[off]>>4 == 4 {
		next = LayerTypeIPv4
	}
	return m, off, next, nil
}

// ---------------------------------------------------------------------------
// UDP

// UDP is a UDP header. The checksum is computed over the IPv4
// pseudo-header when SerializeTo can see the enclosing addresses; since
// the prepend model serializes UDP before IPv4, we follow common simulator
// practice and emit checksum 0 ("no checksum", legal for UDP over IPv4).
type UDP struct {
	Src, Dst uint16
}

const udpLen = 8

// LayerType implements SerializableLayer.
func (UDP) LayerType() LayerType { return LayerTypeUDP }

// SerializeTo implements SerializableLayer.
func (u UDP) SerializeTo(b *Buffer) error {
	total := udpLen + b.Len()
	if total > 0xffff {
		return fmt.Errorf("UDP length %d exceeds 65535", total)
	}
	h := b.Prepend(udpLen)
	binary.BigEndian.PutUint16(h[0:2], u.Src)
	binary.BigEndian.PutUint16(h[2:4], u.Dst)
	binary.BigEndian.PutUint16(h[4:6], uint16(total))
	binary.BigEndian.PutUint16(h[6:8], 0)
	return nil
}

// DecodeUDP parses a UDP header.
func DecodeUDP(data []byte) (UDP, int, LayerType, error) {
	var u UDP
	if len(data) < udpLen {
		return u, 0, 0, errTruncated("UDP", udpLen, len(data))
	}
	u.Src = binary.BigEndian.Uint16(data[0:2])
	u.Dst = binary.BigEndian.Uint16(data[2:4])
	if l := int(binary.BigEndian.Uint16(data[4:6])); l < udpLen || l > len(data) {
		return u, 0, 0, fmt.Errorf("packet: UDP: bad length %d", l)
	}
	return u, udpLen, LayerTypePayload, nil
}

// ---------------------------------------------------------------------------
// Probe (module self-test payload, paper §II-D.2)

// Probe operation codes.
const (
	ProbeEcho  uint8 = 1
	ProbeReply uint8 = 2
)

// Probe is the tiny echo/reply payload protocol modules use for data-plane
// self-tests. It rides directly over IPv4 as IPProto 253.
type Probe struct {
	Op    uint8
	Token uint32 // correlates replies with requests
}

const probeLen = 8

// LayerType implements SerializableLayer.
func (Probe) LayerType() LayerType { return LayerTypeProbe }

// SerializeTo implements SerializableLayer.
func (p Probe) SerializeTo(b *Buffer) error {
	h := b.Prepend(probeLen)
	h[0] = p.Op
	h[1], h[2], h[3] = 0, 0, 0
	binary.BigEndian.PutUint32(h[4:8], p.Token)
	return nil
}

// DecodeProbe parses a probe payload.
func DecodeProbe(data []byte) (Probe, int, LayerType, error) {
	var p Probe
	if len(data) < probeLen {
		return p, 0, 0, errTruncated("Probe", probeLen, len(data))
	}
	p.Op = data[0]
	p.Token = binary.BigEndian.Uint32(data[4:8])
	return p, probeLen, LayerTypePayload, nil
}

func errTruncated(layer string, want, have int) error {
	return fmt.Errorf("packet: %s: truncated (want %d bytes, have %d)", layer, want, have)
}
