package channel

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"conman/internal/msg"
)

// ErrBacklog is returned by Send when the destination's queue is at
// Config.QueueDepth and Config.Block is false: the caller is producing
// faster than the wire (or the peer) can drain.
var ErrBacklog = errors.New("channel: send backlog full")

// Config tunes the batched, windowed UDP transport. The zero value
// selects defaults suited to the management workload; NewUDPNetwork
// uses them unchanged.
type Config struct {
	// MaxBatchMsgs caps envelopes per datagram (default 32).
	MaxBatchMsgs int
	// MaxBatchBytes budgets the datagram payload (default 60000). A
	// single envelope above it is rejected by Send.
	MaxBatchBytes int
	// FlushAge holds a partial batch at most this long waiting for more
	// envelopes. Zero (the default) never delays: a partial batch goes
	// out as soon as the sender goroutine is free, so batching comes
	// only from natural queue accumulation (group commit).
	FlushAge time.Duration
	// QueueDepth bounds each peer's send queue (default 1024).
	QueueDepth int
	// Block makes Send wait for queue room instead of returning
	// ErrBacklog when the peer's queue is at QueueDepth.
	Block bool
	// HandlerWorkers bounds the request-handler pool (default 8).
	// Responses bypass the pool on their own goroutines so a response
	// can never queue behind the request blocked waiting for it.
	HandlerWorkers int
	// Window caps sequenced frames in flight per peer (default 32).
	Window int
	// RTO is the per-frame retransmit timeout (default 25ms).
	RTO time.Duration
	// MaxRetries caps retransmissions per frame before it is abandoned
	// and the peer presumed dead (default 40).
	MaxRetries int
}

func (c Config) withDefaults() Config {
	if c.MaxBatchMsgs <= 0 {
		c.MaxBatchMsgs = 32
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 60000
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.HandlerWorkers <= 0 {
		c.HandlerWorkers = 8
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.RTO <= 0 {
		c.RTO = 25 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 40
	}
	return c
}

// TransportStats are the UDP transport's shared counters, aggregated
// across every endpoint of a network. All fields are atomics.
type TransportStats struct {
	DatagramsSent      atomic.Uint64 // every datagram handed to the wire (data, retransmit, ack)
	DatagramsRecv      atomic.Uint64
	DataFrames         atomic.Uint64 // first transmissions of sequenced frames (excludes retransmits and acks)
	BatchedDatagrams   atomic.Uint64 // data frames carrying ≥2 envelopes
	Retransmits        atomic.Uint64
	AckOnly            atomic.Uint64 // standalone cumulative-ack frames
	DupFrames          atomic.Uint64 // sequenced frames already delivered (dropped, re-acked)
	AbandonedFrames    atomic.Uint64 // frames dropped after MaxRetries
	EnvelopesSent      atomic.Uint64
	EnvelopesDelivered atomic.Uint64
	BacklogDrops       atomic.Uint64 // Sends refused with ErrBacklog
	QueueHighWater     atomic.Uint64 // max send/handler queue depth observed
}

func (s *TransportStats) highWater(n uint64) {
	for {
		cur := s.QueueHighWater.Load()
		if n <= cur || s.QueueHighWater.CompareAndSwap(cur, n) {
			return
		}
	}
}

// TransportSnapshot is a point-in-time copy of TransportStats.
type TransportSnapshot struct {
	DatagramsSent      uint64 `json:"datagrams_sent"`
	DatagramsRecv      uint64 `json:"datagrams_recv"`
	DataFrames         uint64 `json:"data_frames"`
	BatchedDatagrams   uint64 `json:"batched_datagrams"`
	Retransmits        uint64 `json:"retransmits"`
	AckOnly            uint64 `json:"ack_only"`
	DupFrames          uint64 `json:"dup_frames"`
	AbandonedFrames    uint64 `json:"abandoned_frames"`
	EnvelopesSent      uint64 `json:"envelopes_sent"`
	EnvelopesDelivered uint64 `json:"envelopes_delivered"`
	BacklogDrops       uint64 `json:"backlog_drops"`
	QueueHighWater     uint64 `json:"queue_high_water"`
}

// UDPNetwork is the pre-configured management network of the paper's
// testbed (§III-A): every MA and the NM bind a real UDP socket on
// loopback, and a shared registry (standing in for the separate
// management-NIC addressing plan) maps channel names to socket
// addresses. Unlike the original goroutine-per-envelope transport, each
// endpoint batches envelopes per destination into framed datagrams
// (msg.Batch), keeps a sliding window of sequenced frames with
// cumulative acks and RTO retransmission, dedups on receive, and
// dispatches requests through a bounded handler pool — so the channel
// survives loss/reorder/duplication and stays cheap under LSA floods.
type UDPNetwork struct {
	cfg    Config
	stats  TransportStats
	inject *faultInjector // set once at construction, nil for a clean network

	mu    sync.Mutex
	addrs map[string]*net.UDPAddr // guarded by mu
}

// NewUDPNetwork creates an empty registry with default tuning.
func NewUDPNetwork() *UDPNetwork { return NewUDPNetworkConfig(Config{}) }

// NewUDPNetworkConfig creates an empty registry with explicit tuning.
func NewUDPNetworkConfig(cfg Config) *UDPNetwork {
	return &UDPNetwork{cfg: cfg.withDefaults(), addrs: make(map[string]*net.UDPAddr)}
}

// Stats snapshots the network-wide transport counters.
func (n *UDPNetwork) Stats() TransportSnapshot {
	s := &n.stats
	return TransportSnapshot{
		DatagramsSent:      s.DatagramsSent.Load(),
		DatagramsRecv:      s.DatagramsRecv.Load(),
		DataFrames:         s.DataFrames.Load(),
		BatchedDatagrams:   s.BatchedDatagrams.Load(),
		Retransmits:        s.Retransmits.Load(),
		AckOnly:            s.AckOnly.Load(),
		DupFrames:          s.DupFrames.Load(),
		AbandonedFrames:    s.AbandonedFrames.Load(),
		EnvelopesSent:      s.EnvelopesSent.Load(),
		EnvelopesDelivered: s.EnvelopesDelivered.Load(),
		BacklogDrops:       s.BacklogDrops.Load(),
		QueueHighWater:     s.QueueHighWater.Load(),
	}
}

// udpEndpoint is one bound socket.
type udpEndpoint struct {
	net  *UDPNetwork
	cfg  Config
	name string
	conn *net.UDPConn

	mu      sync.Mutex
	handler Handler                // guarded by mu
	peers   map[string]*udpPeer    // guarded by mu
	recv    map[string]*recvWindow // guarded by mu
	closed  bool                   // guarded by mu

	done      chan struct{}  // closed by Close: stops peer sender loops
	readWG    sync.WaitGroup // read loop
	peerWG    sync.WaitGroup // peer sender loops
	poolWG    sync.WaitGroup // handler pool workers
	handlerWG sync.WaitGroup // in-flight response handler goroutines
	hq        handlerQueue
}

// Endpoint binds a loopback UDP socket for name and registers it.
func (n *UDPNetwork) Endpoint(name string) (Endpoint, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("channel: bind udp: %w", err)
	}
	n.mu.Lock()
	n.addrs[name] = conn.LocalAddr().(*net.UDPAddr)
	n.mu.Unlock()

	e := &udpEndpoint{
		net:   n,
		cfg:   n.cfg,
		name:  name,
		conn:  conn,
		peers: make(map[string]*udpPeer),
		recv:  make(map[string]*recvWindow),
		done:  make(chan struct{}),
	}
	e.hq.cond = sync.NewCond(&e.hq.mu)
	e.hq.stats = &n.stats
	for i := 0; i < e.cfg.HandlerWorkers; i++ {
		e.poolWG.Add(1)
		go e.poolWorker()
	}
	e.readWG.Add(1)
	go e.readLoop()
	return e, nil
}

func (e *udpEndpoint) Name() string { return e.name }

func (e *udpEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

// Send queues the envelope for env.To. Unknown destinations fail
// immediately; a full peer queue blocks or returns ErrBacklog per
// Config; otherwise delivery is asynchronous and reliable (frame-level
// retransmission until acked or MaxRetries).
func (e *udpEndpoint) Send(env msg.Envelope) error {
	e.net.mu.Lock()
	_, ok := e.net.addrs[env.To]
	e.net.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDestination, env.To)
	}
	data, err := env.Marshal()
	if err != nil {
		return err
	}
	if len(data) > e.cfg.MaxBatchBytes {
		return fmt.Errorf("channel: envelope too large for UDP (%d bytes)", len(data))
	}
	p := e.peer(env.To)
	if p == nil {
		return fmt.Errorf("channel: endpoint %s closed", e.name)
	}
	return p.enqueue(data)
}

// peer returns (creating and starting on first use) the sender state
// for a destination, or nil when the endpoint is closed.
func (e *udpEndpoint) peer(name string) *udpPeer {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	if p, ok := e.peers[name]; ok {
		return p
	}
	p := &udpPeer{ep: e, name: name, kick: make(chan struct{}, 1)}
	p.cond = sync.NewCond(&p.mu)
	e.peers[name] = p
	e.peerWG.Add(1)
	go p.loop()
	return p
}

// peerIfExists avoids creating sender state for sources we never send
// to; acking them happens lazily once reverse traffic exists.
func (e *udpEndpoint) peerIfExists(name string) *udpPeer {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peers[name]
}

// markRecv records a sequenced frame from src, returning whether it was
// fresh and the updated cumulative ack to advertise.
func (e *udpEndpoint) markRecv(src string, seq uint64) (bool, uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	w := e.recv[src]
	if w == nil {
		w = &recvWindow{}
		e.recv[src] = w
	}
	return w.mark(seq), w.cum
}

func (e *udpEndpoint) readLoop() {
	defer e.readWG.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-e.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		e.net.stats.DatagramsRecv.Add(1)
		b, err := msg.DecodeBatch(buf[:n])
		if err != nil {
			continue
		}
		e.receive(b)
	}
}

// receive processes one decoded frame on the read-loop goroutine.
func (e *udpEndpoint) receive(b msg.Batch) {
	if b.Src == "" {
		return
	}
	if p := e.peerIfExists(b.Src); p != nil {
		p.acked(b.Ack)
	}
	if b.Seq == 0 {
		return // pure ack frame
	}
	fresh, cum := e.markRecv(b.Src, b.Seq)
	// Ack through the peer sender (piggybacked on reverse data when
	// there is any, standalone otherwise). Duplicates are re-acked too:
	// the retransmit means our previous ack was lost.
	if p := e.peer(b.Src); p != nil {
		p.noteAckDue(cum)
	}
	if !fresh {
		e.net.stats.DupFrames.Add(1)
		return
	}
	e.mu.Lock()
	h := e.handler
	e.mu.Unlock()
	if h == nil {
		return
	}
	e.net.stats.EnvelopesDelivered.Add(uint64(len(b.Envelopes)))
	for _, env := range b.Envelopes {
		if env.Type.IsResponse() {
			// Responses bypass the bounded pool: a pool worker may be
			// the very caller blocked waiting for this response.
			e.handlerWG.Add(1)
			go func(env msg.Envelope) {
				defer e.handlerWG.Done()
				h(env)
			}(env)
		} else {
			e.hq.push(env)
		}
	}
}

func (e *udpEndpoint) poolWorker() {
	defer e.poolWG.Done()
	for {
		env, ok := e.hq.pop()
		if !ok {
			return
		}
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		if h != nil {
			h(env)
		}
	}
}

// writeDatagram resolves the destination and hands one datagram to the
// wire (or to the fault injector, which models the wire misbehaving).
func (e *udpEndpoint) writeDatagram(to string, payload []byte) {
	e.net.mu.Lock()
	addr, ok := e.net.addrs[to]
	e.net.mu.Unlock()
	if !ok {
		return // peer deregistered; retransmit path will abandon the frame
	}
	e.net.stats.DatagramsSent.Add(1)
	if inj := e.net.inject; inj != nil {
		inj.apply(e.name, to, payload, func(p []byte) { _, _ = e.conn.WriteToUDP(p, addr) })
		return
	}
	_, _ = e.conn.WriteToUDP(payload, addr)
}

// Close stops the endpoint and joins every goroutine it owns: the peer
// sender loops, the read loop, the handler pool (draining queued
// requests), and every in-flight response handler. Pending outbound
// queues are dropped — reliability ends when the endpoint does.
func (e *udpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	peers := make([]*udpPeer, 0, len(e.peers))
	for _, p := range e.peers {
		peers = append(peers, p)
	}
	e.mu.Unlock()
	close(e.done)
	for _, p := range peers {
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	e.peerWG.Wait()
	err := e.conn.Close()
	e.readWG.Wait()
	e.hq.close()
	e.poolWG.Wait()
	e.handlerWG.Wait()
	e.net.mu.Lock()
	delete(e.net.addrs, e.name)
	e.net.mu.Unlock()
	return err
}

// ---------------------------------------------------------------------------
// Per-peer sender

// queuedEnv is one marshaled envelope waiting in a peer queue.
type queuedEnv struct {
	data []byte
	at   time.Time
}

// udpPeer owns one destination's send queue, batch former and sliding
// window, drained by a single sender goroutine.
type udpPeer struct {
	ep   *udpEndpoint
	name string
	kick chan struct{} // cap 1: wake the sender loop

	mu     sync.Mutex
	cond   *sync.Cond  // broadcast when queue room frees or the peer closes
	queue  []queuedEnv // guarded by mu
	win    sendWindow  // guarded by mu
	ackDue bool        // guarded by mu
	ackVal uint64      // guarded by mu
	closed bool        // guarded by mu
}

func (p *udpPeer) enqueue(data []byte) error {
	cfg := p.ep.cfg
	p.mu.Lock()
	if cfg.Block {
		for !p.closed && len(p.queue) >= cfg.QueueDepth {
			p.cond.Wait()
		}
	}
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("channel: endpoint %s closed", p.ep.name)
	}
	if len(p.queue) >= cfg.QueueDepth {
		p.ep.net.stats.BacklogDrops.Add(1)
		p.mu.Unlock()
		return fmt.Errorf("%w: %d envelopes queued for %s", ErrBacklog, cfg.QueueDepth, p.name)
	}
	p.queue = append(p.queue, queuedEnv{data: data, at: time.Now()})
	depth := uint64(len(p.queue))
	p.mu.Unlock()
	p.ep.net.stats.EnvelopesSent.Add(1)
	p.ep.net.stats.highWater(depth)
	p.wake()
	return nil
}

func (p *udpPeer) wake() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

// noteAckDue records the cumulative ack to advertise and wakes the
// sender to carry it (piggybacked or standalone).
func (p *udpPeer) noteAckDue(cum uint64) {
	p.mu.Lock()
	if cum > p.ackVal {
		p.ackVal = cum
	}
	p.ackDue = true
	p.mu.Unlock()
	p.wake()
}

// acked retires frames covered by the peer's cumulative ack.
func (p *udpPeer) acked(a uint64) {
	p.mu.Lock()
	retired := p.win.ack(a)
	p.mu.Unlock()
	if retired > 0 {
		p.wake() // window room may unblock queued data
	}
}

// loop is the peer's single sender goroutine: it forms batches, sends
// and retransmits frames, and emits standalone acks, sleeping on a
// timer armed to the earliest deadline (RTO or FlushAge).
func (p *udpPeer) loop() {
	defer p.ep.peerWG.Done()
	const idle = time.Hour
	timer := time.NewTimer(idle)
	defer timer.Stop()
	for {
		frames, wake := p.collect(time.Now())
		for _, payload := range frames {
			p.ep.writeDatagram(p.name, payload)
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		if wake.IsZero() {
			timer.Reset(idle)
		} else {
			d := time.Until(wake)
			if d < 0 {
				d = 0
			}
			timer.Reset(d)
		}
		select {
		case <-p.kick:
		case <-timer.C:
		case <-p.ep.done:
			return
		}
	}
}

// collect forms the next datagrams to write: RTO retransmissions first,
// then new batches while the window has room, then a standalone ack if
// one is owed and no data frame carried it. It returns the earliest
// future deadline the loop must wake for.
func (p *udpPeer) collect(now time.Time) (payloads [][]byte, wake time.Time) {
	cfg := p.ep.cfg
	stats := &p.ep.net.stats
	p.mu.Lock()
	defer p.mu.Unlock()
	ack := p.ackVal

	// Retransmit overdue frames with a fresh ack; abandon hopeless ones.
	if len(p.win.unacked) > 0 {
		kept := p.win.unacked[:0]
		for _, f := range p.win.unacked {
			if now.Before(f.due(cfg.RTO)) {
				kept = append(kept, f)
				continue
			}
			if f.attempts > cfg.MaxRetries {
				stats.AbandonedFrames.Add(1)
				continue
			}
			f.lastSent = now
			f.attempts++
			stats.Retransmits.Add(1)
			if data, err := msg.EncodeBatchRaw(p.ep.name, f.seq, ack, f.envs); err == nil {
				payloads = append(payloads, data)
			}
			kept = append(kept, f)
		}
		p.win.unacked = kept
	}

	// Form new batches from the queue.
	freed := false
	for len(p.queue) > 0 && p.win.inFlight() < cfg.Window {
		n := len(p.queue)
		if n > cfg.MaxBatchMsgs {
			n = cfg.MaxBatchMsgs
		}
		if n < cfg.MaxBatchMsgs && cfg.FlushAge > 0 {
			// Partial batch: hold it while young in case more arrives.
			if due := p.queue[0].at.Add(cfg.FlushAge); now.Before(due) {
				if wake.IsZero() || due.Before(wake) {
					wake = due
				}
				break
			}
		}
		size := 0
		take := 0
		for take < n {
			size += len(p.queue[take].data) + 8
			if take > 0 && size > cfg.MaxBatchBytes {
				break
			}
			take++
		}
		envs := make([][]byte, take)
		for i := 0; i < take; i++ {
			envs[i] = p.queue[i].data
		}
		p.queue = p.queue[take:]
		if len(p.queue) == 0 {
			p.queue = nil
		}
		freed = true
		f := &outFrame{seq: p.win.next(), envs: envs, lastSent: now, attempts: 1}
		p.win.add(f)
		data, err := msg.EncodeBatchRaw(p.ep.name, f.seq, ack, f.envs)
		if err != nil {
			continue
		}
		payloads = append(payloads, data)
		stats.DataFrames.Add(1)
		if take > 1 {
			stats.BatchedDatagrams.Add(1)
		}
	}
	if freed {
		p.cond.Broadcast()
	}

	if len(payloads) > 0 {
		p.ackDue = false // every frame above carried the current ack
	} else if p.ackDue {
		p.ackDue = false
		if data, err := msg.EncodeBatchRaw(p.ep.name, 0, ack, nil); err == nil {
			payloads = append(payloads, data)
			stats.AckOnly.Add(1)
		}
	}
	if d, ok := p.win.nextDeadline(cfg.RTO); ok && (wake.IsZero() || d.Before(wake)) {
		wake = d
	}
	return payloads, wake
}

// ---------------------------------------------------------------------------
// Bounded handler pool queue

// handlerQueue feeds request envelopes to the pool workers. It is
// unbounded in memory but bounds execution concurrency: the read loop
// must never block (a blocked read loop cannot deliver the responses
// that would drain the pool).
type handlerQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	stats  *TransportStats
	items  []msg.Envelope // guarded by mu
	head   int            // guarded by mu
	closed bool           // guarded by mu
}

func (q *handlerQueue) push(env msg.Envelope) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, env)
	depth := uint64(len(q.items) - q.head)
	q.cond.Signal()
	q.mu.Unlock()
	q.stats.highWater(depth)
}

// pop blocks for the next envelope; ok=false means closed and drained.
func (q *handlerQueue) pop() (msg.Envelope, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return msg.Envelope{}, false
	}
	env := q.items[q.head]
	q.items[q.head] = msg.Envelope{}
	q.head++
	if q.head == len(q.items) {
		q.items, q.head = nil, 0
	}
	return env, true
}

func (q *handlerQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
