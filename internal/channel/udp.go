package channel

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"conman/internal/msg"
)

// UDPNetwork is the pre-configured management network of the paper's
// testbed (§III-A): every MA and the NM bind a real UDP socket on
// loopback, and a shared registry (standing in for the separate
// management-NIC addressing plan) maps channel names to socket addresses.
type UDPNetwork struct {
	mu    sync.Mutex
	addrs map[string]*net.UDPAddr
}

// NewUDPNetwork creates an empty registry.
func NewUDPNetwork() *UDPNetwork {
	return &UDPNetwork{addrs: make(map[string]*net.UDPAddr)}
}

// udpEndpoint is one bound socket.
type udpEndpoint struct {
	net  *UDPNetwork
	name string
	conn *net.UDPConn

	mu      sync.Mutex
	handler Handler

	wg     sync.WaitGroup
	closed chan struct{}
}

// Endpoint binds a loopback UDP socket for name and registers it.
func (n *UDPNetwork) Endpoint(name string) (Endpoint, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("channel: bind udp: %w", err)
	}
	n.mu.Lock()
	n.addrs[name] = conn.LocalAddr().(*net.UDPAddr)
	n.mu.Unlock()

	e := &udpEndpoint{net: n, name: name, conn: conn, closed: make(chan struct{})}
	e.wg.Add(1)
	go e.readLoop()
	return e, nil
}

func (e *udpEndpoint) Name() string { return e.name }

func (e *udpEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *udpEndpoint) Send(env msg.Envelope) error {
	e.net.mu.Lock()
	addr, ok := e.net.addrs[env.To]
	e.net.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDestination, env.To)
	}
	data, err := env.Marshal()
	if err != nil {
		return err
	}
	if len(data) > 60000 {
		return fmt.Errorf("channel: envelope too large for UDP (%d bytes)", len(data))
	}
	_, err = e.conn.WriteToUDP(data, addr)
	return err
}

func (e *udpEndpoint) readLoop() {
	defer e.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-e.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		env, err := msg.Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		e.mu.Lock()
		h := e.handler
		e.mu.Unlock()
		if h != nil {
			// Dispatch on a fresh goroutine: handlers may issue nested
			// blocking request/response calls (listFieldsAndValues
			// relays), which must not stall the read loop.
			go h(env)
		}
	}
}

func (e *udpEndpoint) Close() error {
	close(e.closed)
	err := e.conn.Close()
	e.net.mu.Lock()
	delete(e.net.addrs, e.name)
	e.net.mu.Unlock()
	e.wg.Wait()
	return err
}
