package channel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"conman/internal/msg"
)

func udpPair(t *testing.T, net *UDPNetwork) (Endpoint, Endpoint) {
	t.Helper()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// waitFor polls cond until true or the deadline fails the test.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestUDPCloseDrainsHandlers is the regression test for the handler
// leak: Close previously joined only the read loop, abandoning
// in-flight handler goroutines. It must now wait for both the pooled
// request path and the direct response path to finish.
func TestUDPCloseDrainsHandlers(t *testing.T) {
	for _, tc := range []struct {
		name string
		typ  msg.Type
	}{
		{"request-pool", msg.TypeHello},
		{"response-direct", msg.Type("probe.resp")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := NewUDPNetwork()
			a, err := net.Endpoint("a")
			if err != nil {
				t.Fatal(err)
			}
			b, err := net.Endpoint("b")
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()

			var entered, finished atomic.Bool
			release := make(chan struct{})
			b.SetHandler(func(env msg.Envelope) {
				entered.Store(true)
				<-release
				finished.Store(true)
			})
			if err := a.Send(msg.MustNew(tc.typ, "a", "b", 1, nil)); err != nil {
				t.Fatal(err)
			}
			waitFor(t, 5*time.Second, "handler entry", entered.Load)

			closed := make(chan struct{})
			go func() {
				b.Close()
				close(closed)
			}()
			select {
			case <-closed:
				t.Fatal("Close returned while a handler was still running")
			case <-time.After(50 * time.Millisecond):
			}
			close(release)
			select {
			case <-closed:
			case <-time.After(5 * time.Second):
				t.Fatal("Close did not return after the handler finished")
			}
			if !finished.Load() {
				t.Fatal("Close returned before the handler finished")
			}
		})
	}
}

// TestUDPBatching: a burst toward one peer must coalesce into
// multi-envelope datagrams — far fewer frames than envelopes.
func TestUDPBatching(t *testing.T) {
	net := NewUDPNetworkConfig(Config{MaxBatchMsgs: 64, FlushAge: 20 * time.Millisecond, Window: 64})
	a, b := udpPair(t, net)
	const burst = 256
	var got atomic.Uint64
	b.SetHandler(func(env msg.Envelope) { got.Add(1) })
	for i := 0; i < burst; i++ {
		if err := a.Send(msg.MustNew(msg.TypeConvey, "a", "b", 0, msg.Convey{Kind: fmt.Sprintf("lsa-%d", i)})); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "burst delivery", func() bool { return got.Load() == burst })
	s := net.Stats()
	if s.BatchedDatagrams == 0 {
		t.Fatalf("no multi-envelope datagrams in a %d-envelope burst: %+v", burst, s)
	}
	if s.DataFrames*4 > burst {
		t.Fatalf("batching too weak: %d data frames for %d envelopes (want ≥4x reduction)", s.DataFrames, burst)
	}
}

// TestUDPBacklog: with Block=false a full peer queue returns the typed
// ErrBacklog instead of queueing without bound.
func TestUDPBacklog(t *testing.T) {
	// Window 1 + 100% loss: the first frame stays in flight forever, so
	// the 4-deep queue fills and further sends must fail fast.
	fn := NewFaultyNetwork(Config{QueueDepth: 4, Window: 1, MaxBatchMsgs: 1, RTO: time.Hour}, FaultConfig{Seed: 1, Loss: 1})
	a, err := fn.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	bEp, err := fn.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer bEp.Close()

	sawBacklog := false
	for i := 0; i < 64; i++ {
		err := a.Send(msg.MustNew(msg.TypeHello, "a", "b", uint64(i+1), nil))
		if errors.Is(err, ErrBacklog) {
			sawBacklog = true
			break
		}
		if err != nil {
			t.Fatalf("unexpected send error: %v", err)
		}
	}
	if !sawBacklog {
		t.Fatal("queue never reported ErrBacklog (64 sends, depth 4, 100% loss)")
	}
	if fn.Stats().BacklogDrops == 0 {
		t.Fatal("BacklogDrops counter not incremented")
	}
}

// TestUDPBlockingBackpressure: with Block=true Send waits for queue
// room instead of failing, and Close releases blocked senders.
func TestUDPBlockingBackpressure(t *testing.T) {
	fn := NewFaultyNetwork(Config{QueueDepth: 2, Window: 1, MaxBatchMsgs: 1, RTO: time.Hour, Block: true},
		FaultConfig{Seed: 1, Loss: 1})
	a, err := fn.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	bEp, err := fn.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer bEp.Close()

	var blocked atomic.Bool
	done := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			blocked.Store(true)
			if err := a.Send(msg.MustNew(msg.TypeHello, "a", "b", uint64(i+1), nil)); err != nil {
				done <- err
				return
			}
		}
	}()
	// The sender must wedge (queue 2 + window 1, all datagrams lost).
	select {
	case err := <-done:
		t.Fatalf("sender finished instead of blocking: %v", err)
	case <-time.After(200 * time.Millisecond):
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("blocked Send returned nil after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the blocked sender")
	}
}

// TestUDPLossyDelivery: under 20% loss + reorder + dup + jitter, every
// envelope still arrives exactly once (retransmission upstream, seq
// dedup downstream).
func TestUDPLossyDelivery(t *testing.T) {
	fn := NewFaultyNetwork(Config{}, FaultConfig{
		Seed: 7, Loss: 0.2, Dup: 0.1, Reorder: 0.1, Jitter: 500 * time.Microsecond,
	})
	a, err := fn.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fn.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	const total = 200
	var mu sync.Mutex
	seen := make(map[uint64]int) // guarded by mu
	b.SetHandler(func(env msg.Envelope) {
		mu.Lock()
		seen[env.ID]++
		mu.Unlock()
	})
	for i := 1; i <= total; i++ {
		if err := a.Send(msg.MustNew(msg.TypeNotify, "a", "b", uint64(i), nil)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, "lossy delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) == total
	})
	mu.Lock()
	for id, count := range seen {
		if count != 1 {
			t.Errorf("envelope %d delivered %d times", id, count)
		}
	}
	mu.Unlock()
	s := fn.Stats()
	if s.Retransmits == 0 {
		t.Error("20% loss produced zero retransmits")
	}
	if len(fn.Trace()) == 0 {
		t.Error("fault injector recorded no streams")
	}
}

// TestFaultInjectorDeterministic is the seeded-episode property: the
// same seed and the same per-stream datagram sequence reproduce a
// byte-identical verdict trace and delivered-payload sequence; a
// different seed diverges.
func TestFaultInjectorDeterministic(t *testing.T) {
	run := func(seed int64) (map[string]string, map[string][]string) {
		inj := newFaultInjector(FaultConfig{Seed: seed, Loss: 0.3, Dup: 0.2, Reorder: 0.15})
		delivered := make(map[string][]string)
		var mu sync.Mutex
		for i := 0; i < 400; i++ {
			for _, st := range []struct{ src, dst string }{{"nm", "R1"}, {"R1", "nm"}, {"nm", "R2"}} {
				key := st.src + ">" + st.dst
				payload := []byte(fmt.Sprintf("%s#%d", key, i))
				inj.apply(st.src, st.dst, payload, func(p []byte) {
					mu.Lock()
					delivered[key] = append(delivered[key], string(p))
					mu.Unlock()
				})
			}
		}
		return inj.trace(), delivered
	}
	t1, d1 := run(99)
	t2, d2 := run(99)
	if len(t1) != 3 {
		t.Fatalf("expected 3 streams, got %d", len(t1))
	}
	for k := range t1 {
		if t1[k] != t2[k] {
			t.Errorf("stream %s: traces diverged under the same seed:\n%s\n%s", k, t1[k], t2[k])
		}
		if fmt.Sprint(d1[k]) != fmt.Sprint(d2[k]) {
			t.Errorf("stream %s: delivered sequences diverged under the same seed", k)
		}
	}
	t3, _ := run(100)
	same := 0
	for k := range t1 {
		if t1[k] == t3[k] {
			same++
		}
	}
	if same == len(t1) {
		t.Error("every stream trace identical under a different seed — PRNG not seeded per stream")
	}
}

func TestSendWindow(t *testing.T) {
	var w sendWindow
	now := time.Now()
	for i := 0; i < 5; i++ {
		w.add(&outFrame{seq: w.next(), lastSent: now})
	}
	if w.inFlight() != 5 {
		t.Fatalf("inFlight = %d, want 5", w.inFlight())
	}
	if got := w.ack(3); got != 3 {
		t.Fatalf("ack(3) retired %d, want 3", got)
	}
	if w.inFlight() != 2 || w.unacked[0].seq != 4 {
		t.Fatalf("window after ack: %d in flight, head seq %d", w.inFlight(), w.unacked[0].seq)
	}
	if got := w.ack(2); got != 0 {
		t.Fatalf("stale ack retired %d frames", got)
	}
	due, ok := w.nextDeadline(10 * time.Millisecond)
	if !ok || !due.Equal(now.Add(10*time.Millisecond)) {
		t.Fatalf("nextDeadline = %v ok=%v", due, ok)
	}
}

func TestRecvWindow(t *testing.T) {
	var w recvWindow
	if !w.mark(1) || w.cum != 1 {
		t.Fatal("first in-order frame")
	}
	if w.mark(1) {
		t.Fatal("duplicate accepted")
	}
	if !w.mark(3) || w.cum != 1 {
		t.Fatal("out-of-order frame should be fresh without advancing cum")
	}
	if w.mark(3) {
		t.Fatal("out-of-order duplicate accepted")
	}
	if !w.mark(2) || w.cum != 3 {
		t.Fatalf("gap fill should advance cum to 3, got %d", w.cum)
	}
	if len(w.ahead) != 0 {
		t.Fatalf("ahead set not drained: %v", w.ahead)
	}
}
