package channel

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"conman/internal/core"
	"conman/internal/kernel"
	"conman/internal/msg"
	"conman/internal/netsim"
	"conman/internal/packet"
)

func TestHubDelivery(t *testing.T) {
	h := NewHub()
	a := h.Endpoint("A")
	nm := h.Endpoint(msg.NMName)
	var got []msg.Envelope
	nm.SetHandler(func(e msg.Envelope) { got = append(got, e) })
	a.SetHandler(func(e msg.Envelope) {})

	env := msg.MustNew(msg.TypeHello, "A", msg.NMName, 1, msg.Hello{Device: "A"})
	if err := a.Send(env); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Type != msg.TypeHello {
		t.Fatalf("got %+v", got)
	}
	var hello msg.Hello
	if err := got[0].Decode(&hello); err != nil {
		t.Fatal(err)
	}
	if hello.Device != "A" {
		t.Fatalf("hello = %+v", hello)
	}
}

func TestHubUnknownDestination(t *testing.T) {
	h := NewHub()
	a := h.Endpoint("A")
	a.SetHandler(func(msg.Envelope) {})
	if err := a.Send(msg.MustNew(msg.TypeHello, "A", "ghost", 0, nil)); err == nil {
		t.Fatal("want unknown destination error")
	}
}

func TestHubSynchronousNesting(t *testing.T) {
	// A request whose handler sends a response before returning: the
	// response must be delivered re-entrantly without deadlock (this is
	// how the NM relays conveyMessage chains).
	h := NewHub()
	a := h.Endpoint("A")
	b := h.Endpoint("B")
	var resp []msg.Envelope
	a.SetHandler(func(e msg.Envelope) { resp = append(resp, e) })
	b.SetHandler(func(e msg.Envelope) {
		_ = b.Send(msg.MustNew(msg.TypeShowPotentialResp, "B", "A", e.ID, nil))
	})
	if err := a.Send(msg.MustNew(msg.TypeShowPotentialReq, "A", "B", 7, nil)); err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1 || resp[0].ID != 7 {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestHubClosedEndpoint(t *testing.T) {
	h := NewHub()
	a := h.Endpoint("A")
	b := h.Endpoint("B")
	b.SetHandler(func(msg.Envelope) {})
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(msg.MustNew(msg.TypeHello, "A", "B", 0, nil)); err == nil {
		t.Fatal("want error sending to closed endpoint")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(msg.MustNew(msg.TypeHello, "A", "B", 0, nil)); err == nil {
		t.Fatal("want error sending from closed endpoint")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	n := NewUDPNetwork()
	a, err := n.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	nm, err := n.Endpoint(msg.NMName)
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()

	got := make(chan msg.Envelope, 4)
	nm.SetHandler(func(e msg.Envelope) { got <- e })
	echo := make(chan msg.Envelope, 4)
	a.SetHandler(func(e msg.Envelope) { echo <- e })

	if err := a.Send(msg.MustNew(msg.TypeHello, "A", msg.NMName, 1, msg.Hello{Device: "A"})); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-got:
		if e.Type != msg.TypeHello || e.From != "A" {
			t.Fatalf("got %+v", e)
		}
		// And back.
		if err := nm.Send(msg.MustNew(msg.TypeShowPotentialReq, msg.NMName, "A", 2, nil)); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for UDP delivery")
	}
	select {
	case e := <-echo:
		if e.Type != msg.TypeShowPotentialReq || e.ID != 2 {
			t.Fatalf("echo %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout waiting for reverse UDP delivery")
	}
}

func TestUDPUnknownDestination(t *testing.T) {
	n := NewUDPNetwork()
	a, err := n.Endpoint("A")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(msg.MustNew(msg.TypeHello, "A", "ghost", 0, nil)); err == nil {
		t.Fatal("want unknown destination error")
	}
}

func TestUDPConcurrentSenders(t *testing.T) {
	n := NewUDPNetwork()
	nm, err := n.Endpoint(msg.NMName)
	if err != nil {
		t.Fatal(err)
	}
	defer nm.Close()
	var mu sync.Mutex
	count := 0
	done := make(chan struct{})
	nm.SetHandler(func(e msg.Envelope) {
		mu.Lock()
		count++
		if count == 20 {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < 4; i++ {
		ep, err := n.Endpoint(string(rune('A' + i)))
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		ep.SetHandler(func(msg.Envelope) {})
		go func(e Endpoint) {
			for j := 0; j < 5; j++ {
				_ = e.Send(msg.MustNew(msg.TypeHello, e.Name(), msg.NMName, uint64(j), msg.Hello{Device: core.DeviceID(e.Name())}))
			}
		}(ep)
	}
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		mu.Lock()
		t.Fatalf("only %d of 20 messages arrived", count)
	}
}

// floodRig builds a chain of devices A - B - C with flood nodes and
// returns the network plus the nodes.
func floodRig(t *testing.T) (*netsim.Network, map[core.DeviceID]*FloodNode) {
	t.Helper()
	net := netsim.New()
	nodes := map[core.DeviceID]*FloodNode{}
	mk := func(id core.DeviceID, ports ...string) {
		dev := id
		k := kernel.New(dev, kernel.RoleRouter,
			func(port string, frame []byte) error {
				return net.Send(netsim.PortID{Device: dev, Name: port}, frame)
			},
			func(port string) (packet.MAC, bool) {
				m, err := net.PortMAC(netsim.PortID{Device: dev, Name: port})
				return m, err == nil
			})
		net.AddDevice(id, k)
		for _, p := range ports {
			if _, err := net.AddPort(id, p); err != nil {
				t.Fatal(err)
			}
			k.AddPhysical(p)
		}
		ps := append([]string(nil), ports...)
		node := NewFloodNode(dev,
			func(port string, frame []byte) error {
				return net.Send(netsim.PortID{Device: dev, Name: port}, frame)
			},
			func() []string { return ps })
		k.RegisterEtherType(packet.EtherTypeMgmt, node.HandleMgmtFrame)
		nodes[id] = node
	}
	mk("A", "eth0")
	mk("B", "eth0", "eth1")
	mk("C", "eth0")
	if _, err := net.Connect("AB", netsim.PortID{Device: "A", Name: "eth0"}, netsim.PortID{Device: "B", Name: "eth0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Connect("BC", netsim.PortID{Device: "B", Name: "eth1"}, netsim.PortID{Device: "C", Name: "eth0"}); err != nil {
		t.Fatal(err)
	}
	return net, nodes
}

func TestFloodMultiHopDelivery(t *testing.T) {
	_, nodes := floodRig(t)
	// NM lives on device A; MA endpoints on every device. No addressing
	// was configured anywhere: the channel must still deliver A -> C.
	nm := nodes["A"].Endpoint(msg.NMName)
	var got []msg.Envelope
	cEP := nodes["C"].Endpoint("C")
	cEP.SetHandler(func(e msg.Envelope) { got = append(got, e) })
	nodes["B"].Endpoint("B").SetHandler(func(msg.Envelope) {})
	nm.SetHandler(func(msg.Envelope) {})

	if err := nm.Send(msg.MustNew(msg.TypeShowPotentialReq, msg.NMName, "C", 5, nil)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 5 {
		t.Fatalf("C got %+v", got)
	}
}

func TestFloodDuplicateSuppression(t *testing.T) {
	// Build a RING so frames can circulate: A-B, B-C, C-A. Dedup must
	// keep the flood finite and deliver exactly one copy.
	net := netsim.New()
	nodes := map[core.DeviceID]*FloodNode{}
	mk := func(id core.DeviceID) {
		dev := id
		k := kernel.New(dev, kernel.RoleRouter,
			func(port string, frame []byte) error {
				return net.Send(netsim.PortID{Device: dev, Name: port}, frame)
			},
			func(port string) (packet.MAC, bool) { return packet.MAC{}, true })
		net.AddDevice(id, k)
		for _, p := range []string{"eth0", "eth1"} {
			if _, err := net.AddPort(id, p); err != nil {
				t.Fatal(err)
			}
			k.AddPhysical(p)
		}
		node := NewFloodNode(dev,
			func(port string, frame []byte) error {
				return net.Send(netsim.PortID{Device: dev, Name: port}, frame)
			},
			func() []string { return []string{"eth0", "eth1"} })
		k.RegisterEtherType(packet.EtherTypeMgmt, node.HandleMgmtFrame)
		nodes[id] = node
	}
	mk("A")
	mk("B")
	mk("C")
	for _, l := range [][2]netsim.PortID{
		{{Device: "A", Name: "eth1"}, {Device: "B", Name: "eth0"}},
		{{Device: "B", Name: "eth1"}, {Device: "C", Name: "eth0"}},
		{{Device: "C", Name: "eth1"}, {Device: "A", Name: "eth0"}},
	} {
		if _, err := net.Connect(l[0].String()+"-"+l[1].String(), l[0], l[1]); err != nil {
			t.Fatal(err)
		}
	}
	var got int
	nodes["C"].Endpoint("C").SetHandler(func(msg.Envelope) { got++ })
	nodes["B"].Endpoint("B").SetHandler(func(msg.Envelope) {})
	a := nodes["A"].Endpoint("A")
	a.SetHandler(func(msg.Envelope) {})
	if err := a.Send(msg.MustNew(msg.TypeHello, "A", "C", 1, nil)); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("C received %d copies, want exactly 1", got)
	}
}

func TestFloodLocalDelivery(t *testing.T) {
	_, nodes := floodRig(t)
	// NM and MA both on device A: local loopback without touching wires.
	nm := nodes["A"].Endpoint(msg.NMName)
	nm.SetHandler(func(msg.Envelope) {})
	var got []msg.Envelope
	nodes["A"].Endpoint("A").SetHandler(func(e msg.Envelope) { got = append(got, e) })
	if err := nm.Send(msg.MustNew(msg.TypeShowPotentialReq, msg.NMName, "A", 9, nil)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 9 {
		t.Fatalf("A got %+v", got)
	}
}

func TestFloodBidirectionalRequestResponse(t *testing.T) {
	_, nodes := floodRig(t)
	nm := nodes["A"].Endpoint(msg.NMName)
	var resp []msg.Envelope
	nm.SetHandler(func(e msg.Envelope) { resp = append(resp, e) })
	nodes["B"].Endpoint("B").SetHandler(func(msg.Envelope) {})
	cEP := nodes["C"].Endpoint("C")
	cEP.SetHandler(func(e msg.Envelope) {
		_ = cEP.Send(msg.MustNew(msg.TypeShowPotentialResp, "C", msg.NMName, e.ID, nil))
	})
	if err := nm.Send(msg.MustNew(msg.TypeShowPotentialReq, msg.NMName, "C", 11, nil)); err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1 || resp[0].ID != 11 || resp[0].From != "C" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestHubConcurrentSenders(t *testing.T) {
	hub := NewHub()
	var mu sync.Mutex
	got := map[uint64]bool{}
	sink := hub.Endpoint("sink")
	sink.SetHandler(func(env msg.Envelope) {
		mu.Lock()
		got[env.ID] = true
		mu.Unlock()
	})
	const senders, each = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		ep := hub.Endpoint(fmt.Sprintf("src%d", s))
		ep.SetHandler(func(msg.Envelope) {})
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := uint64(s*each + i + 1)
				if err := ep.Send(msg.MustNew(msg.TypeHello, ep.Name(), "sink", id, nil)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if len(got) != senders*each {
		t.Fatalf("delivered %d of %d", len(got), senders*each)
	}
}

func TestHubLatency(t *testing.T) {
	hub := NewHub()
	a := hub.Endpoint("a")
	a.SetHandler(func(msg.Envelope) {})
	b := hub.Endpoint("b")
	b.SetHandler(func(msg.Envelope) {})
	const d = 5 * time.Millisecond
	hub.SetLatency(d)
	start := time.Now()
	if err := a.Send(msg.MustNew(msg.TypeHello, "a", "b", 1, nil)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Errorf("send took %v, want >= %v", elapsed, d)
	}
	// Resetting to zero disables the sleep; only assert delivery still
	// works (an upper wall-clock bound would flake on loaded machines).
	hub.SetLatency(0)
	if err := a.Send(msg.MustNew(msg.TypeHello, "a", "b", 2, nil)); err != nil {
		t.Fatal(err)
	}
}
