package channel

import (
	"encoding/json"
	"fmt"
	"sync"

	"conman/internal/core"
	"conman/internal/msg"
	"conman/internal/packet"
)

// floodTTL bounds how many hops a management frame travels.
const floodTTL = 32

// floodFrame is the wire wrapper around an envelope.
type floodFrame struct {
	Origin core.DeviceID `json:"o"`
	Seq    uint64        `json:"s"`
	TTL    int           `json:"t"`
	Env    msg.Envelope  `json:"e"`
}

// FloodNode is a device's attachment to the self-bootstrapping management
// channel: management frames are flooded over the device's physical ports
// with duplicate suppression, so no addressing or spanning tree needs to
// be configured first (paper §III-A, after 4D). One node can host several
// named endpoints (a device's MA, and on the NM's device also the NM).
type FloodNode struct {
	device core.DeviceID
	send   func(port string, frame []byte) error
	ports  func() []string

	mu        sync.Mutex
	seq       uint64
	handlers  map[string]Handler
	seen      map[string]bool
	seenOrder []string
}

// NewFloodNode creates a node for a device. send transmits raw frames out
// of a named port; ports enumerates the device's physical ports.
func NewFloodNode(device core.DeviceID, send func(port string, frame []byte) error, ports func() []string) *FloodNode {
	return &FloodNode{
		device:   device,
		send:     send,
		ports:    ports,
		handlers: make(map[string]Handler),
		seen:     make(map[string]bool),
	}
}

// HandleMgmtFrame is registered with the device kernel for
// packet.EtherTypeMgmt frames.
func (n *FloodNode) HandleMgmtFrame(port string, _ packet.Ethernet, payload []byte) {
	var f floodFrame
	if err := json.Unmarshal(payload, &f); err != nil {
		return
	}
	key := fmt.Sprintf("%s/%d", f.Origin, f.Seq)
	n.mu.Lock()
	if n.seen[key] {
		n.mu.Unlock()
		return
	}
	n.remember(key)
	h := n.handlers[f.Env.To]
	n.mu.Unlock()

	if h != nil {
		h(f.Env)
		return
	}
	// Not for us: keep flooding.
	if f.TTL <= 1 {
		return
	}
	f.TTL--
	n.emit(f, port)
}

// remember records a frame key with a bounded history. Caller holds n.mu.
func (n *FloodNode) remember(key string) {
	n.seen[key] = true
	n.seenOrder = append(n.seenOrder, key)
	if len(n.seenOrder) > 8192 {
		old := n.seenOrder[:4096]
		n.seenOrder = append([]string(nil), n.seenOrder[4096:]...)
		for _, k := range old {
			delete(n.seen, k)
		}
	}
}

func (n *FloodNode) emit(f floodFrame, exceptPort string) {
	data, err := json.Marshal(f)
	if err != nil {
		return
	}
	frame, err := packet.Serialize(data, packet.Ethernet{
		Dst:  packet.BroadcastMAC,
		Type: packet.EtherTypeMgmt,
	})
	if err != nil {
		return
	}
	for _, p := range n.ports() {
		if p == exceptPort {
			continue
		}
		_ = n.send(p, frame)
	}
}

// Endpoint attaches a named endpoint to the node.
func (n *FloodNode) Endpoint(name string) Endpoint {
	return &floodEndpoint{node: n, name: name}
}

type floodEndpoint struct {
	node *FloodNode
	name string
}

func (e *floodEndpoint) Name() string { return e.name }

func (e *floodEndpoint) SetHandler(h Handler) {
	e.node.mu.Lock()
	defer e.node.mu.Unlock()
	e.node.handlers[e.name] = h
}

func (e *floodEndpoint) Send(env msg.Envelope) error {
	n := e.node
	n.mu.Lock()
	n.seq++
	f := floodFrame{Origin: n.device, Seq: n.seq, TTL: floodTTL, Env: env}
	key := fmt.Sprintf("%s/%d", f.Origin, f.Seq)
	n.remember(key) // don't process our own flood when it loops back
	local := n.handlers[env.To]
	n.mu.Unlock()

	if local != nil {
		// Destination is hosted on this very device (e.g. the NM talking
		// to its own MA): deliver directly.
		local(env)
		return nil
	}
	n.emit(f, "")
	return nil
}

func (e *floodEndpoint) Close() error {
	e.node.mu.Lock()
	defer e.node.mu.Unlock()
	delete(e.node.handlers, e.name)
	return nil
}
