package channel

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// FaultConfig describes a seeded misbehaving management network:
// per-datagram loss, duplication, reordering and latency jitter,
// injected below the transport's reliability layer so retransmission
// and dedup are what the tests exercise.
type FaultConfig struct {
	// Seed derives every per-stream PRNG; the same seed and the same
	// per-stream send sequence reproduce the same verdicts.
	Seed int64
	// Loss is the probability a datagram is silently dropped.
	Loss float64
	// Dup is the probability a datagram is delivered twice.
	Dup float64
	// Reorder is the probability a datagram is held back and released
	// only after the stream's next datagram has gone out.
	Reorder float64
	// Jitter adds a uniform random delay in [0, Jitter) per datagram.
	Jitter time.Duration
}

// FaultyNetwork wraps a UDPNetwork with seeded fault injection at the
// endpoint layer: every datagram an endpoint writes passes the
// injector, which may drop, duplicate, delay or reorder it. Verdicts
// are drawn from a deterministic per-(src,dst)-stream PRNG, so a given
// seed and per-stream traffic sequence replay byte-identically —
// Trace() exposes the verdict history for that property.
type FaultyNetwork struct {
	*UDPNetwork
	faults *faultInjector
}

// NewFaultyNetwork creates a UDP network whose datagrams suffer the
// configured faults.
func NewFaultyNetwork(cfg Config, faults FaultConfig) *FaultyNetwork {
	n := NewUDPNetworkConfig(cfg)
	inj := newFaultInjector(faults)
	n.inject = inj
	return &FaultyNetwork{UDPNetwork: n, faults: inj}
}

// Trace returns each stream's verdict history ('.' pass, 'D' drop,
// '2' duplicate, 'R' reorder-hold, 'J' jittered) keyed "src>dst".
func (f *FaultyNetwork) Trace() map[string]string {
	return f.faults.trace()
}

// TraceString renders every stream trace in sorted order, one line per
// stream — a byte-comparable episode transcript.
func (f *FaultyNetwork) TraceString() string {
	t := f.Trace()
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %s\n", k, t[k])
	}
	return b.String()
}

// faultInjector applies FaultConfig verdicts per stream.
type faultInjector struct {
	cfg FaultConfig

	mu      sync.Mutex
	streams map[string]*faultStream // guarded by mu
}

// faultStream is the deterministic state of one src->dst direction.
type faultStream struct {
	mu   sync.Mutex
	rng  *rand.Rand // guarded by mu
	held []byte     // guarded by mu: datagram awaiting the next one (reorder)
	log  []byte     // guarded by mu: verdict history
}

func newFaultInjector(cfg FaultConfig) *faultInjector {
	return &faultInjector{cfg: cfg, streams: make(map[string]*faultStream)}
}

func streamKey(src, dst string) string { return src + ">" + dst }

func (inj *faultInjector) stream(src, dst string) *faultStream {
	key := streamKey(src, dst)
	inj.mu.Lock()
	defer inj.mu.Unlock()
	s, ok := inj.streams[key]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(key))
		s = &faultStream{rng: rand.New(rand.NewSource(inj.cfg.Seed ^ int64(h.Sum64())))}
		inj.streams[key] = s
	}
	return s
}

// apply passes one datagram through the stream's fault model. write
// must be safe for concurrent use (UDPConn writes are); delayed and
// held datagrams are copied since the caller may reuse the buffer.
func (inj *faultInjector) apply(src, dst string, payload []byte, write func([]byte)) {
	cfg := inj.cfg
	s := inj.stream(src, dst)

	s.mu.Lock()
	if cfg.Loss > 0 && s.rng.Float64() < cfg.Loss {
		s.log = append(s.log, 'D')
		s.mu.Unlock()
		return
	}
	dup := cfg.Dup > 0 && s.rng.Float64() < cfg.Dup
	hold := cfg.Reorder > 0 && s.held == nil && s.rng.Float64() < cfg.Reorder
	var jitter time.Duration
	if cfg.Jitter > 0 {
		jitter = time.Duration(s.rng.Int63n(int64(cfg.Jitter)))
	}
	if hold {
		s.log = append(s.log, 'R')
		s.held = append([]byte(nil), payload...)
		s.mu.Unlock()
		return
	}
	switch {
	case dup:
		s.log = append(s.log, '2')
	case jitter > 0:
		s.log = append(s.log, 'J')
	default:
		s.log = append(s.log, '.')
	}
	released := s.held
	s.held = nil
	s.mu.Unlock()

	deliver := func(p []byte) {
		if jitter > 0 {
			p = append([]byte(nil), p...)
			time.AfterFunc(jitter, func() { write(p) })
			return
		}
		write(p)
	}
	deliver(payload)
	if dup {
		deliver(payload)
	}
	if released != nil {
		// The held datagram rides out after this one: a reorder.
		deliver(released)
	}
}

func (inj *faultInjector) trace() map[string]string {
	inj.mu.Lock()
	keys := make([]string, 0, len(inj.streams))
	for k := range inj.streams {
		keys = append(keys, k)
	}
	inj.mu.Unlock()
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		inj.mu.Lock()
		s := inj.streams[k]
		inj.mu.Unlock()
		s.mu.Lock()
		out[k] = string(append([]byte(nil), s.log...))
		s.mu.Unlock()
	}
	return out
}
