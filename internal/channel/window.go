package channel

import "time"

// This file holds the sliding-window bookkeeping of the UDP transport:
// pure data structures, locked by their owning peer/endpoint, so the
// retransmit and dedup logic is unit-testable without sockets.

// outFrame is one sequenced data frame awaiting acknowledgement.
type outFrame struct {
	seq      uint64
	envs     [][]byte // marshaled envelope JSON; re-framed with a fresh ack on retransmit
	lastSent time.Time
	attempts int // transmissions so far (1 = first send)
}

// due reports when the frame becomes eligible for (re)transmission:
// exponential backoff doubles the base RTO per transmission, capped at
// 16x, so a congested or slow receiver sees a thinning retry stream
// instead of a fixed-rate storm.
func (f *outFrame) due(rto time.Duration) time.Time {
	shift := f.attempts - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 4 {
		shift = 4
	}
	return f.lastSent.Add(rto << shift)
}

// sendWindow tracks the sequenced frames in flight toward one peer.
// Frames stay until the peer's cumulative ack covers them or the
// retransmit budget runs out; the unacked slice is kept in ascending
// seq order.
type sendWindow struct {
	nextSeq uint64
	unacked []*outFrame
}

// next allocates the next frame sequence number (first frame is 1; 0 is
// reserved for unsequenced ack-only frames).
func (w *sendWindow) next() uint64 {
	w.nextSeq++
	return w.nextSeq
}

func (w *sendWindow) add(f *outFrame) { w.unacked = append(w.unacked, f) }

func (w *sendWindow) inFlight() int { return len(w.unacked) }

// ack retires every frame covered by the cumulative ack a and returns
// how many were retired.
func (w *sendWindow) ack(a uint64) int {
	i := 0
	for i < len(w.unacked) && w.unacked[i].seq <= a {
		i++
	}
	if i > 0 {
		w.unacked = w.unacked[i:]
		if len(w.unacked) == 0 {
			w.unacked = nil
		}
	}
	return i
}

// nextDeadline reports the earliest instant any in-flight frame becomes
// due for retransmission (backoff included).
func (w *sendWindow) nextDeadline(rto time.Duration) (time.Time, bool) {
	var earliest time.Time
	for _, f := range w.unacked {
		due := f.due(rto)
		if earliest.IsZero() || due.Before(earliest) {
			earliest = due
		}
	}
	return earliest, !earliest.IsZero()
}

// maxRecvAhead bounds the out-of-order set per source; beyond it a frame
// is dropped (not acked) and the sender retransmits once the cumulative
// edge catches up. Far larger than any sane sender window.
const maxRecvAhead = 4096

// recvWindow dedups sequenced frames from one source: cum is the
// highest contiguous seq received, ahead holds out-of-order arrivals.
type recvWindow struct {
	cum   uint64
	ahead map[uint64]bool
}

// mark records seq and reports whether it was fresh (first delivery).
func (w *recvWindow) mark(seq uint64) bool {
	if seq <= w.cum || w.ahead[seq] {
		return false
	}
	if seq == w.cum+1 {
		w.cum++
		for w.ahead[w.cum+1] {
			w.cum++
			delete(w.ahead, w.cum)
		}
		return true
	}
	if len(w.ahead) >= maxRecvAhead {
		return false
	}
	if w.ahead == nil {
		w.ahead = make(map[uint64]bool)
	}
	w.ahead[seq] = true
	return true
}
