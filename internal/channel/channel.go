// Package channel provides the CONMan management channel (paper §II-A):
// an out-of-band path between every device's management agent and the
// network manager. Three transports implement the same Endpoint interface:
//
//   - Hub: in-process synchronous delivery, used by tests and the
//     deterministic experiment harness.
//   - UDPNetwork: real UDP sockets over loopback, reproducing the paper's
//     pre-configured separate management NIC (§III-A).
//   - FloodNode: raw Ethernet frames (EtherType 0x88B5) flooded hop-by-hop
//     over the simulated data-plane links with TTL and duplicate
//     suppression — the paper's straw-man self-bootstrapping channel built
//     with SOCK_PACKET, after 4D's discovery/dissemination plane. It needs
//     no pre-configuration at all.
package channel

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"conman/internal/msg"
)

// Handler receives delivered envelopes.
type Handler func(env msg.Envelope)

// Endpoint is one named attachment to a management channel.
type Endpoint interface {
	// Name returns the channel name (device id or msg.NMName).
	Name() string
	// Send transmits an envelope to env.To. Delivery may be synchronous
	// (Hub, FloodNode) or asynchronous (UDP).
	Send(env msg.Envelope) error
	// SetHandler installs the delivery callback. Must be called before
	// traffic flows.
	SetHandler(h Handler)
	// Close detaches the endpoint.
	Close() error
}

// ErrUnknownDestination is returned when the channel has no endpoint for
// the destination name.
var ErrUnknownDestination = errors.New("channel: unknown destination")

// ---------------------------------------------------------------------------
// Hub: in-process channel

// Hub is an in-process management channel with synchronous delivery.
type Hub struct {
	mu      sync.Mutex
	eps     map[string]*hubEndpoint
	latency time.Duration
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{eps: make(map[string]*hubEndpoint)}
}

type hubEndpoint struct {
	hub  *Hub
	name string

	mu      sync.Mutex
	handler Handler
	closed  bool
}

// SetLatency installs an artificial per-delivery latency (zero by
// default), modelling the propagation delay of a real management
// network. Each Send sleeps for d on the caller's goroutine before
// delivering, so latency accumulates along synchronous message cascades
// exactly as round trips would on the wire. Concurrent senders pay it in
// parallel — the scale benchmarks use this to expose the wall-clock gap
// between sequential and concurrent NM configuration.
func (h *Hub) SetLatency(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.latency = d
}

// Detach closes and removes the named endpoint, modelling the
// management channel losing a device (power failure, crash). Later
// Sends to the name fail immediately with ErrUnknownDestination.
func (h *Hub) Detach(name string) bool {
	h.mu.Lock()
	ep, ok := h.eps[name]
	h.mu.Unlock()
	if !ok {
		return false
	}
	_ = ep.Close()
	return true
}

// Endpoint attaches a named endpoint to the hub.
func (h *Hub) Endpoint(name string) Endpoint {
	h.mu.Lock()
	defer h.mu.Unlock()
	ep := &hubEndpoint{hub: h, name: name}
	h.eps[name] = ep
	return ep
}

func (e *hubEndpoint) Name() string { return e.name }

func (e *hubEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = h
}

func (e *hubEndpoint) Send(env msg.Envelope) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return errors.New("channel: endpoint closed")
	}
	e.hub.mu.Lock()
	dst, ok := e.hub.eps[env.To]
	latency := e.hub.latency
	e.hub.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDestination, env.To)
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	dst.mu.Lock()
	h := dst.handler
	dclosed := dst.closed
	dst.mu.Unlock()
	if dclosed || h == nil {
		return fmt.Errorf("%w: %q has no handler", ErrUnknownDestination, env.To)
	}
	h(env)
	return nil
}

func (e *hubEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.hub.mu.Lock()
	delete(e.hub.eps, e.name)
	e.hub.mu.Unlock()
	return nil
}
