// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary, just large enough to
// host conman's repo-specific invariant checkers (clonecheck,
// lockcheck, pairedstate) and to drive them through `go vet
// -vettool=conmanvet`.
//
// The build environment deliberately has no module proxy access, so
// instead of depending on x/tools this package implements the three
// pieces the real framework would provide:
//
//   - the Analyzer/Pass/Diagnostic types (analysis.go),
//   - a type-checking package loader fed by compiler export data
//     (load.go) — the same data `go vet` hands every vet tool,
//   - the cmd/go unitchecker wire protocol (unitchecker.go): -V=full
//     version handshake, -flags discovery, and vet.cfg processing.
//
// The API mirrors x/tools closely on purpose: if a future environment
// gains network access, the analyzers port to the real framework by
// changing imports only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name, a documentation
// string, and the function that inspects a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must
	// be a valid Go identifier.
	Name string

	// Doc is the summary printed by `conmanvet help`.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and returns an optional result (unused by this
	// driver, kept for x/tools signature compatibility).
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one analyzer run and the driver: the
// syntax, type information and report sink for a single package.
type Pass struct {
	// Analyzer is the checker being run.
	Analyzer *Analyzer

	// Fset maps token positions to file/line/column.
	Fset *token.FileSet

	// Files are the parsed syntax trees of the package, including its
	// in-package test files when driven by `go vet`.
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo carries the type-checker's findings for the syntax in
	// Files: uses, definitions, selections, and expression types.
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver
// prefixes the analyzer name when rendering.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Analyzer is filled in by the driver so multichecker output can
	// attribute findings; Run functions may leave it empty.
	Analyzer string
}
