// Fixture for lockcheck: `guarded by mu` field discipline and
// blocking-under-lock detection.
package a

import (
	"sync"
	"time"
)

type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	events chan int
}

// Good holds the lock across the access.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Bad reads the guarded field with no lock at all.
func (c *Counter) Bad() int {
	return c.n // want `c\.n is accessed without holding c\.mu`
}

// AfterUnlock reads the guarded field after releasing the lock.
func (c *Counter) AfterUnlock() int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n + c.n // want `c\.n is accessed without holding c\.mu`
}

// EarlyExit releases the lock only on the early-return branch; the
// fall-through access is still protected and must not be flagged.
func (c *Counter) EarlyExit(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// bumpLocked asserts by name that the caller holds the lock.
func (c *Counter) bumpLocked() {
	c.n++
}

// Fresh builds the value locally; nothing else can see it yet.
func Fresh() int {
	c := &Counter{}
	c.n = 41
	d := Counter{}
	d.n++
	var e = &Counter{}
	return c.n + d.n + e.n
}

// Allowed uses the escape hatch.
func (c *Counter) Allowed() int {
	return c.n //conmanvet:allow — snapshot read, staleness is fine here
}

// Closure scopes are independent: the literal runs later, without the
// lock the creator held.
func (c *Counter) Leaky() func() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int {
		return c.n // want `c\.n is accessed without holding c\.mu`
	}
}

// ClosureGood locks inside the literal itself.
func (c *Counter) ClosureGood() func() int {
	return func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.n
	}
}

// SendUnderLock is the historical regression shape: a bare channel
// send while holding the mutex wedges the holder behind a slow
// receiver.
func (c *Counter) SendUnderLock(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events <- v // want `blocking channel send while holding c\.mu`
}

// PublishNonBlocking is the compliant form: select with default.
func (c *Counter) PublishNonBlocking(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case c.events <- v:
	default:
	}
}

// SendAfterUnlock is fine: the lock is gone before the send.
func (c *Counter) SendAfterUnlock(v int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	c.events <- n + v
}

// SleepUnderLock blocks every contender for the duration.
func (c *Counter) SleepUnderLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding c\.mu`
}

// WaitUnderLock parks while holding the lock.
func (c *Counter) WaitUnderLock(wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while holding c\.mu`
}

// RW checks RWMutex handling: RLock counts as held.
type RW struct {
	mu   sync.RWMutex
	data map[string]int // guarded by mu
}

func (r *RW) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.data[k]
}

func (r *RW) GetRacy(k string) int {
	return r.data[k] // want `r\.data is accessed without holding r\.mu`
}

// Embedded checks promoted-lock path expansion: m.Lock() is
// m.Mutex.Lock(), matching `guarded by Mutex`.
type Embedded struct {
	sync.Mutex
	n int // guarded by Mutex
}

func (m *Embedded) Bump() {
	m.Lock()
	m.n++
	m.Unlock()
}

// Bad annotations are themselves diagnosed.
type BadGuardName struct {
	// guarded by lock
	n  int // want `field is guarded by "lock" but the struct has no such field`
	mu sync.Mutex
}

type BadGuardType struct {
	mu int
	// guarded by mu
	n int // want `field is guarded by "mu" which is not a sync\.Mutex or sync\.RWMutex`
}
