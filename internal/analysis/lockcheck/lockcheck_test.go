package lockcheck_test

import (
	"testing"

	"conman/internal/analysis/analysistest"
	"conman/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockcheck.Analyzer, "a")
}
