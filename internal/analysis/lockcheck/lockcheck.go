// Package lockcheck enforces the repo's `// guarded by mu` field
// convention and the non-blocking-under-lock invariant.
//
// Two invariants, both previously honored by eyeball:
//
//  1. A struct field whose doc or line comment says "guarded by <mu>"
//     may only be read or written while <mu> — a sync.Mutex or
//     sync.RWMutex field of the same struct — is held. The race-unsafe
//     NM.onTrigger field fixed in PR 6 is the archetype: the comment
//     said what the rule was, nothing checked it.
//
//  2. While any mutex is held, the function must not block: no bare
//     channel sends, no select without a default, no time.Sleep, no
//     sync.WaitGroup.Wait. (sync.Cond.Wait is exempt: it requires the
//     lock and releases it while parked.) This is the
//     non-blocking-publish contract of the NM event feed
//     (internal/nm/events.go): publishers run on the management
//     channel handler and must never wedge behind a slow subscriber.
//     A select with a default clause is the compliant form.
//
// The analysis is intentionally syntactic and per-function. Lock state
// is tracked positionally through the statement list: <path>.Lock()
// sets held, <path>.Unlock() clears it — unless the Unlock is deferred
// (held to return) or immediately followed by a return/break/continue
// (an early-exit branch; the fall-through path is still locked).
// Each function literal is its own scope: a closure runs at a
// different time than the function that creates it.
//
// Recognized conventions and escapes:
//
//   - functions whose name ends in "Locked" assert "caller holds the
//     lock" and are exempt from invariant 1 (publishLocked,
//     sortedOriginsLocked);
//   - accesses through a value freshly built in the same scope
//     (v := T{...}, v := &T{...}, v := new(T)) are exempt: the object
//     is not yet shared;
//   - _test.go files are exempt (tests poke fields single-threaded);
//   - a line ending in //conmanvet:allow suppresses lockcheck on that
//     line, for discipline the checker cannot see.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"conman/internal/analysis"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "check `guarded by mu` field access and blocking calls under held locks",
	Run:  run,
}

const allowMarker = "conmanvet:allow"

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guard describes one annotated field: the mutex sibling that guards it.
type guard struct {
	mutex string // sibling field name
}

func run(pass *analysis.Pass) (interface{}, error) {
	guards := collectGuards(pass)
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		allowed := allowedLines(pass.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScopes(pass, fd.Name.Name, fd.Body, guards, allowed)
		}
	}
	return nil, nil
}

// collectGuards finds every `guarded by <mu>` field annotation in the
// package and validates that the named mutex exists as a sibling
// field of lock type.
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	out := map[*types.Var]guard{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardNameOf(field)
				if mu == "" {
					continue
				}
				sibling := findField(st, mu)
				if sibling == nil {
					pass.Reportf(field.Pos(), "field is guarded by %q but the struct has no such field", mu)
					continue
				}
				if !isLockType(pass, sibling) {
					pass.Reportf(field.Pos(), "field is guarded by %q which is not a sync.Mutex or sync.RWMutex", mu)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = guard{mutex: mu}
					}
				}
			}
			return true
		})
	}
	return out
}

func guardNameOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func findField(st *ast.StructType, name string) *ast.Field {
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			if embeddedName(f.Type) == name {
				return f
			}
			continue
		}
		for _, n := range f.Names {
			if n.Name == name {
				return f
			}
		}
	}
	return nil
}

// embeddedName is the implicit field name of an embedded type.
func embeddedName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.StarExpr:
		return embeddedName(x.X)
	}
	return ""
}

func isLockType(pass *analysis.Pass, field *ast.Field) bool {
	tv, ok := pass.TypesInfo.Types[field.Type]
	if !ok {
		return false
	}
	s := tv.Type.String()
	return s == "sync.Mutex" || s == "sync.RWMutex" || s == "*sync.Mutex" || s == "*sync.RWMutex"
}

// allowedLines collects source lines carrying the //conmanvet:allow
// escape.
func allowedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, allowMarker) {
				out[fset.Position(c.Slash).Line] = true
			}
		}
	}
	return out
}

// lockEvent is one positional change of lock state.
type lockEvent struct {
	pos    token.Pos
	path   string // rendered mutex path, e.g. "m.mu"
	lock   bool   // Lock/RLock vs Unlock/RUnlock
	noop   bool   // deferred or early-exit unlock: does not clear
	anyPos bool
}

// scope is the per-function analysis state.
type scope struct {
	funcName string
	events   []lockEvent
	// fresh maps local objects built in this scope (composite
	// literal, new) — accesses through them are unshared.
	fresh map[types.Object]bool
	// selectDefaults are the ranges of select statements that have a
	// default clause (non-blocking form).
	selectDefaults [][2]token.Pos
}

// checkScopes analyzes body as one scope and recurses into any
// function literals as separate scopes.
func checkScopes(pass *analysis.Pass, funcName string, body *ast.BlockStmt, guards map[*types.Var]guard, allowed map[int]bool) {
	sc := &scope{funcName: funcName, fresh: map[types.Object]bool{}}
	var lits []*ast.FuncLit
	collectScope(pass, body, sc, &lits)
	analyzeScope(pass, sc, body, guards, allowed, lits)
	for _, lit := range lits {
		checkScopes(pass, funcName+" (func literal)", lit.Body, guards, allowed)
	}
}

// collectScope gathers lock events, fresh locals and select-default
// ranges from the statements of one scope, not descending into
// function literals.
func collectScope(pass *analysis.Pass, body *ast.BlockStmt, sc *scope, lits *[]*ast.FuncLit) {
	var walkStmts func(list []ast.Stmt, top bool)
	var walkStmt func(s ast.Stmt, next []ast.Stmt, top bool)

	walkStmts = func(list []ast.Stmt, top bool) {
		for i, s := range list {
			walkStmt(s, list[i+1:], top)
		}
	}

	record := func(call *ast.CallExpr, deferred bool, next []ast.Stmt, top bool) bool {
		path, lock, ok := lockCall(pass, call)
		if !ok {
			return false
		}
		ev := lockEvent{pos: call.Pos(), path: path, lock: lock}
		if !lock {
			if deferred {
				ev.noop = true
			} else if !top && len(next) > 0 && terminates(next[0]) {
				// Unlock on an early-exit branch nested inside the
				// function: the fall-through continues locked. (At the
				// top level the unlock is unconditional, so it really
				// does release — even right before a return.)
				ev.noop = true
			}
		}
		sc.events = append(sc.events, ev)
		return true
	}

	var scanExpr func(e ast.Expr)
	scanExpr = func(e ast.Expr) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				*lits = append(*lits, lit)
				return false
			}
			return true
		})
	}

	walkStmt = func(s ast.Stmt, next []ast.Stmt, top bool) {
		switch st := s.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if record(call, false, next, top) {
					return
				}
			}
			scanExpr(st.X)
		case *ast.DeferStmt:
			if record(st.Call, true, nil, top) {
				return
			}
			scanExpr(st.Call)
		case *ast.AssignStmt:
			// Track fresh locals: v := T{...}, v := &T{...}, v := new(T).
			if st.Tok == token.DEFINE {
				for i, lhs := range st.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(st.Rhs) {
						continue
					}
					if isFreshExpr(st.Rhs[i]) {
						if obj := pass.TypesInfo.Defs[id]; obj != nil {
							sc.fresh[obj] = true
						}
					}
				}
			}
			for _, e := range st.Rhs {
				scanExpr(e)
			}
			for _, e := range st.Lhs {
				scanExpr(e)
			}
		case *ast.BlockStmt:
			walkStmts(st.List, false)
		case *ast.IfStmt:
			scanExpr(st.Cond)
			walkStmts(st.Body.List, false)
			if st.Else != nil {
				walkStmt(st.Else, nil, false)
			}
		case *ast.ForStmt:
			if st.Init != nil {
				walkStmt(st.Init, nil, false)
			}
			if st.Cond != nil {
				scanExpr(st.Cond)
			}
			walkStmts(st.Body.List, false)
			if st.Post != nil {
				walkStmt(st.Post, nil, false)
			}
		case *ast.RangeStmt:
			scanExpr(st.X)
			walkStmts(st.Body.List, false)
		case *ast.SwitchStmt:
			if st.Init != nil {
				walkStmt(st.Init, nil, false)
			}
			scanExpr(st.Tag)
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, false)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkStmts(cc.Body, false)
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if cc.Comm == nil {
						hasDefault = true
					}
					walkStmts(cc.Body, false)
				}
			}
			if hasDefault {
				sc.selectDefaults = append(sc.selectDefaults, [2]token.Pos{st.Pos(), st.End()})
			}
		case *ast.LabeledStmt:
			walkStmt(st.Stmt, next, top)
		case *ast.GoStmt:
			scanExpr(st.Call)
		case *ast.ReturnStmt:
			for _, e := range st.Results {
				scanExpr(e)
			}
		case *ast.SendStmt:
			scanExpr(st.Chan)
			scanExpr(st.Value)
		case *ast.DeclStmt:
			if gd, ok := st.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for i, name := range vs.Names {
							if i < len(vs.Values) && isFreshExpr(vs.Values[i]) {
								if obj := pass.TypesInfo.Defs[name]; obj != nil {
									sc.fresh[obj] = true
								}
							}
						}
						for _, v := range vs.Values {
							scanExpr(v)
						}
					}
				}
			}
		}
	}
	walkStmts(body.List, true)
}

func isFreshExpr(e ast.Expr) bool {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := unparen(x.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

func terminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// lockCall classifies a call as a mutex Lock/Unlock and renders the
// mutex path ("m.mu", expanding embedded-promotion hops).
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (path string, lock bool, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk {
		return "", false, false
	}
	fn, fnOk := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !fnOk {
		return "", false, false
	}
	full := fn.FullName()
	switch full {
	case "(*sync.Mutex).Lock", "(*sync.RWMutex).Lock", "(*sync.RWMutex).RLock":
		lock = true
	case "(*sync.Mutex).Unlock", "(*sync.RWMutex).Unlock", "(*sync.RWMutex).RUnlock":
		lock = false
	default:
		return "", false, false
	}
	base, baseOk := renderPath(unparen(sel.X))
	if !baseOk {
		return "", false, false
	}
	// Promoted lock (embedded sync.Mutex): include the elided hops so
	// the path matches a "guarded by Mutex"-style annotation.
	if s := pass.TypesInfo.Selections[sel]; s != nil {
		idx := s.Index()
		t := s.Recv()
		for _, i := range idx[:len(idx)-1] {
			stru, sok := structUnder(t)
			if !sok {
				break
			}
			f := stru.Field(i)
			base += "." + f.Name()
			t = f.Type()
		}
	}
	return base, lock, true
}

// renderPath flattens an ident/selector chain to a dotted string; any
// other expression shape (calls, indexing) is unsupported.
func renderPath(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := renderPath(unparen(x.X))
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func structUnder(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// heldAt reports whether the mutex at path is held at pos, per the
// positional event stream.
func (sc *scope) heldAt(path string, pos token.Pos) bool {
	held := false
	for _, ev := range sc.events {
		if ev.pos >= pos || ev.path != path {
			continue
		}
		if ev.lock {
			held = true
		} else if !ev.noop {
			held = false
		}
	}
	return held
}

// anyHeldAt reports whether any mutex is held at pos.
func (sc *scope) anyHeldAt(pos token.Pos) (string, bool) {
	held := map[string]bool{}
	for _, ev := range sc.events {
		if ev.pos >= pos {
			continue
		}
		if ev.lock {
			held[ev.path] = true
		} else if !ev.noop {
			delete(held, ev.path)
		}
	}
	for p := range held {
		return p, true
	}
	return "", false
}

func (sc *scope) inSelectDefault(pos token.Pos) bool {
	for _, r := range sc.selectDefaults {
		if pos >= r[0] && pos < r[1] {
			return true
		}
	}
	return false
}

// analyzeScope applies both invariants to one collected scope.
func analyzeScope(pass *analysis.Pass, sc *scope, body *ast.BlockStmt, guards map[*types.Var]guard, allowed map[int]bool, lits []*ast.FuncLit) {
	inLit := func(pos token.Pos) bool {
		for _, l := range lits {
			if pos >= l.Pos() && pos < l.End() {
				return true
			}
		}
		return false
	}
	line := func(pos token.Pos) int { return pass.Fset.Position(pos).Line }

	callerHolds := strings.HasSuffix(strings.TrimSuffix(sc.funcName, " (func literal)"), "Locked")

	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope
		}
		if inLit(n.Pos()) {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if callerHolds {
				return true
			}
			selInfo := pass.TypesInfo.Selections[x]
			if selInfo == nil || selInfo.Kind() != types.FieldVal {
				return true
			}
			v, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var)
			if !ok {
				return true
			}
			g, guarded := guards[v]
			if !guarded || allowed[line(x.Pos())] {
				return true
			}
			base, ok := renderPath(unparen(x.X))
			if !ok {
				return true // can't reason about the base; stay quiet
			}
			if root := rootIdent(x.X); root != nil {
				if obj := pass.TypesInfo.Uses[root]; obj != nil && sc.fresh[obj] {
					return true // freshly built, unshared
				}
			}
			mutexPath := base + "." + g.mutex
			if !sc.heldAt(mutexPath, x.Pos()) {
				pass.Reportf(x.Pos(),
					"%s.%s is accessed without holding %s (field is marked `guarded by %s`; use %s.Lock(), a *Locked helper, or //conmanvet:allow)",
					base, x.Sel.Name, mutexPath, g.mutex, mutexPath)
			}
		case *ast.SendStmt:
			if allowed[line(x.Pos())] || sc.inSelectDefault(x.Pos()) {
				return true
			}
			if mu, held := sc.anyHeldAt(x.Pos()); held {
				pass.Reportf(x.Pos(),
					"blocking channel send while holding %s; use a select with default (non-blocking publish) or send after unlocking", mu)
			}
		case *ast.CallExpr:
			if allowed[line(x.Pos())] {
				return true
			}
			if name, blocking := blockingCall(pass, x); blocking {
				if mu, held := sc.anyHeldAt(x.Pos()); held {
					pass.Reportf(x.Pos(), "%s while holding %s; a blocked holder wedges every contender", name, mu)
				}
			}
		}
		return true
	})
}

// blockingCall recognizes well-known blocking calls.
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	switch fn.FullName() {
	case "time.Sleep":
		return "time.Sleep", true
	case "(*sync.WaitGroup).Wait":
		return "sync.WaitGroup.Wait", true
		// (*sync.Cond).Wait is deliberately absent: Cond requires the
		// lock held and releases it while parked.
	}
	return "", false
}

// unparen strips parentheses. (ast.Unparen needs go1.22; go.mod says 1.21.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
