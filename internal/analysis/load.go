package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ExportDataImporter returns a types.Importer that resolves imports
// from compiler export data files on disk — the representation cmd/go
// hands vet tools via vet.cfg's PackageFile map, and the one `go list
// -export` emits. importMap translates source-level import paths to
// canonical package paths (vendoring); packageFile maps canonical
// paths to export data files.
func ExportDataImporter(fset *token.FileSet, importMap, packageFile map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// LoadFiles parses and type-checks one package from its file list.
// goVersion ("go1.24", possibly with a point release) selects the
// language version; empty means the toolchain default.
func LoadFiles(fset *token.FileSet, path, goVersion string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return CheckFiles(fset, path, goVersion, files, imp)
}

// CheckFiles type-checks already-parsed files as one package.
func CheckFiles(fset *token.FileSet, path, goVersion string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp, GoVersion: goVersion}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// RunAnalyzers applies each analyzer to the package and returns the
// merged findings sorted by position then analyzer name, so output is
// deterministic regardless of analyzer order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
