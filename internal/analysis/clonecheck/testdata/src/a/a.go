// Fixture for clonecheck: Clone() methods that do and do not deep-copy
// their receiver's reference fields.
package a

import "time"

type Dep struct {
	Token string
}

type Inner struct {
	List []int
}

// Good deep-copies everything: exact mentions, nil-checked pointer
// copy, nested struct path, and an opaque foreign value type.
type Good struct {
	Names  []string
	Attrs  map[string]string
	Dep    *Dep
	Nested Inner
	When   time.Time
	val    int
}

func (g Good) Clone() Good {
	out := g
	out.Names = append([]string(nil), g.Names...)
	if g.Attrs != nil {
		out.Attrs = make(map[string]string, len(g.Attrs))
		for k, v := range g.Attrs {
			out.Attrs[k] = v
		}
	}
	if g.Dep != nil {
		d := *g.Dep
		out.Dep = &d
	}
	out.Nested.List = append([]int(nil), g.Nested.List...)
	return out
}

// Bad reproduces the historical drift: a field was added (Extra) and
// Clone was never extended — plus a nested path nobody copied.
type Bad struct {
	Names  []string
	Extra  []string
	Nested Inner
}

func (b Bad) Clone() Bad { // want `Bad.Clone\(\) does not deep-copy reference field Bad.Extra` `Bad.Clone\(\) does not deep-copy reference field Bad.Nested.List`
	out := b
	out.Names = append([]string(nil), b.Names...)
	return out
}

// Shallow explicitly assigns the same path on both sides — aliasing
// dressed up as handling.
type Shallow struct {
	Attrs map[string]string
}

func (s Shallow) Clone() Shallow { // want `Shallow.Clone\(\) shallow-copies reference field Shallow.Attrs`
	out := s
	out.Attrs = s.Attrs
	return out
}

// SharedOK opts a deliberately aliased field out with the escape hatch.
type SharedOK struct {
	Registry map[string]int //conmanvet:shared — one process-wide table
	Names    []string
}

func (s SharedOK) Clone() SharedOK {
	out := s
	out.Names = append([]string(nil), s.Names...)
	return out
}

// PtrRecv checks the pointer-receiver form.
type PtrRecv struct {
	Names []string
}

func (p *PtrRecv) Clone() *PtrRecv { // want `PtrRecv.Clone\(\) does not deep-copy reference field PtrRecv.Names`
	out := *p
	return &out
}

// Emb checks that a promoted mention (e.Clone's out.List) satisfies
// the full embedded path Inner.List.
type Emb struct {
	Inner
	Tag string
}

func (e Emb) Clone() Emb {
	out := e
	out.List = append([]int(nil), e.List...)
	return out
}

// Helper checks the call-argument rule: handing the field to a helper
// satisfies its subtree.
type Helper struct {
	M map[string]int
}

func copyMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (h Helper) Clone() Helper {
	out := h
	out.M = copyMap(h.M)
	return out
}

// SubClone checks the method-receiver prefix rule: calling Clone on a
// nested same-package struct satisfies everything beneath it.
type Sub struct {
	List []int
}

func (s Sub) Clone() Sub {
	out := s
	out.List = append([]int(nil), s.List...)
	return out
}

type HasSub struct {
	S Sub
}

func (h HasSub) Clone() HasSub {
	out := h
	out.S = h.S.Clone()
	return out
}
