// Package clonecheck verifies that every Clone() method deep-copies
// every reference-typed field of its receiver.
//
// The invariant: conman modules hand out core.Abstraction (and friends)
// by value, relying on Clone() to sever aliasing — "callers can mutate
// their copy without aliasing the module's own state". Clone() is
// hand-maintained, so every new slice/map/pointer field silently
// drifts to a shallow copy unless someone remembers to extend the
// method (PR 5 had to remember Switch.StateDependency by hand). This
// analyzer turns that memory into a build failure.
//
// For each method named Clone with a struct receiver declared in the
// package, the analyzer computes the set of reference field paths of
// the receiver type: fields whose type is (or contains, recursing
// through nested and embedded same-package structs) a slice, map,
// pointer or channel. Named struct types from other packages are
// treated as opaque values — their Clone semantics are their own
// package's contract. Each reference path must be mentioned by the
// method body in a non-shallow position:
//
//   - an exact mention (b.Up.Connectable = append(...), a range over
//     a.Tradeoffs, a nil check of a.Switch.StateDependency) satisfies
//     the path;
//   - a mention of a path prefix as a call argument or method receiver
//     (b.Up = a.Up.Clone()) satisfies everything below that prefix;
//   - an assignment whose left and right sides are the same field path
//     (b.Attributes = a.Attributes) is a shallow copy and is reported
//     as such, not merely unhandled.
//
// Deliberately shared references are annotated on the struct field:
//
//	Shared *Registry //conmanvet:shared
//
// which exempts the field (and everything beneath it) from the check.
package clonecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"conman/internal/analysis"
)

// Analyzer is the clonecheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "clonecheck",
	Doc:  "check that Clone() methods deep-copy every reference-typed field",
	Run:  run,
}

// sharedMarker on a struct field's comment exempts it from the check.
const sharedMarker = "conmanvet:shared"

func run(pass *analysis.Pass) (interface{}, error) {
	shared := sharedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Clone" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Type.Params != nil && len(fd.Type.Params.List) > 0 {
				continue // not the zero-arg Clone convention
			}
			checkClone(pass, fd, shared)
		}
	}
	return nil, nil
}

// sharedFields collects the *types.Var of every struct field annotated
// //conmanvet:shared anywhere in the package.
func sharedFields(pass *analysis.Pass) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !fieldMarked(field) {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

func fieldMarked(field *ast.Field) bool {
	if field.Comment != nil {
		for _, c := range field.Comment.List {
			if strings.Contains(c.Text, sharedMarker) {
				return true
			}
		}
	}
	if field.Doc != nil {
		for _, c := range field.Doc.List {
			if strings.Contains(c.Text, sharedMarker) {
				return true
			}
		}
	}
	return false
}

// refPath is one reference-typed field path below the receiver type.
type refPath struct {
	path []string
	kind string // rendering of the reference type
}

func checkClone(pass *analysis.Pass, fd *ast.FuncDecl, shared map[*types.Var]bool) {
	recv := fd.Recv.List[0]
	var recvIdent *ast.Ident
	if len(recv.Names) == 1 {
		recvIdent = recv.Names[0]
	}
	var recvType types.Type
	if recvIdent != nil {
		if v, ok := pass.TypesInfo.Defs[recvIdent].(*types.Var); ok {
			recvType = v.Type()
		}
	}
	if recvType == nil {
		tv, ok := pass.TypesInfo.Types[recv.Type]
		if !ok {
			return
		}
		recvType = tv.Type
	}
	named, ok := derefNamed(recvType)
	if !ok {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}

	paths := refPaths(st, named.Obj().Pkg(), nil, map[*types.Named]bool{named: true}, shared)
	if len(paths) == 0 {
		return
	}

	strong, shallow, prefixCalls := mentions(pass, fd, named)
	for _, p := range paths {
		key := strings.Join(p.path, ".")
		if strong[key] || prefixSatisfied(p.path, prefixCalls) {
			continue
		}
		typeName := named.Obj().Name()
		if shallow[key] || shallowPrefix(p.path, shallow) {
			pass.Reportf(fd.Name.Pos(),
				"%s.Clone() shallow-copies reference field %s.%s (%s); the copy aliases the original",
				typeName, typeName, key, p.kind)
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"%s.Clone() does not deep-copy reference field %s.%s (%s); mutations through the copy alias the original (annotate the field //conmanvet:shared if aliasing is intended)",
			typeName, typeName, key, p.kind)
	}
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// refPaths walks the struct's fields, recursing through same-package
// struct fields (named or embedded), and returns every path whose
// terminal type is a reference.
func refPaths(st *types.Struct, pkg *types.Package, prefix []string, seen map[*types.Named]bool, shared map[*types.Var]bool) []refPath {
	var out []refPath
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if shared[f] {
			continue
		}
		path := append(append([]string(nil), prefix...), f.Name())
		t := f.Type()

		// Unwrap one layer of named type to decide the shape, but
		// remember whether recursion would cross a package boundary.
		var under types.Type = t
		var namedT *types.Named
		if n, ok := t.(*types.Named); ok {
			namedT = n
			under = n.Underlying()
		}

		switch u := under.(type) {
		case *types.Slice, *types.Map, *types.Chan:
			out = append(out, refPath{path: path, kind: types.TypeString(t, types.RelativeTo(pkg))})
		case *types.Pointer:
			out = append(out, refPath{path: path, kind: types.TypeString(t, types.RelativeTo(pkg))})
		case *types.Struct:
			if namedT != nil {
				if namedT.Obj().Pkg() != pkg || seen[namedT] {
					continue // opaque foreign type, or cycle
				}
				seen[namedT] = true
				out = append(out, refPaths(u, pkg, path, seen, shared)...)
				delete(seen, namedT)
			} else {
				out = append(out, refPaths(u, pkg, path, seen, shared)...)
			}
		case *types.Array:
			if containsReference(u.Elem(), pkg, map[*types.Named]bool{}) {
				out = append(out, refPath{path: path, kind: types.TypeString(t, types.RelativeTo(pkg))})
			}
		}
	}
	return out
}

// containsReference reports whether t transitively contains a
// reference type, with the same foreign-package opacity rule.
func containsReference(t types.Type, pkg *types.Package, seen map[*types.Named]bool) bool {
	var namedT *types.Named
	if n, ok := t.(*types.Named); ok {
		namedT = n
		if seen[namedT] {
			return false
		}
		seen[namedT] = true
		t = n.Underlying()
	}
	switch u := t.(type) {
	case *types.Slice, *types.Map, *types.Chan, *types.Pointer:
		return true
	case *types.Array:
		return containsReference(u.Elem(), pkg, seen)
	case *types.Struct:
		if namedT != nil && namedT.Obj().Pkg() != pkg {
			return false
		}
		for i := 0; i < u.NumFields(); i++ {
			if containsReference(u.Field(i).Type(), pkg, seen) {
				return true
			}
		}
	}
	return false
}

// mentions scans the Clone body and classifies every selector chain
// rooted at a value of the receiver type:
//
//	strong:      paths used anywhere except a pure same-path shallow
//	             assignment (append args, make, nil checks, ranges, ...)
//	shallow:     paths whose only role is b.P = a.P
//	prefixCalls: paths used as the receiver of a method call
//	             (a.Up.Clone()) — satisfies everything beneath.
func mentions(pass *analysis.Pass, fd *ast.FuncDecl, root *types.Named) (strong, shallow, prefixCalls map[string]bool) {
	strong = map[string]bool{}
	shallow = map[string]bool{}
	prefixCalls = map[string]bool{}

	// Pure same-path assignments first, so the walk below can skip
	// exactly those selector nodes.
	shallowNodes := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			lp, lok := selectorPath(pass, as.Lhs[i], root)
			rp, rok := selectorPath(pass, as.Rhs[i], root)
			if lok && rok && lp == rp {
				shallowNodes[as.Lhs[i]] = true
				shallowNodes[as.Rhs[i]] = true
				shallow[lp] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if pass.TypesInfo.Selections[sel] != nil && pass.TypesInfo.Selections[sel].Kind() == types.MethodVal {
					if p, ok := selectorPath(pass, sel.X, root); ok {
						prefixCalls[p] = true
					}
				}
			}
			// A field handed whole to a helper (b.Up = deepCopy(a.Up))
			// is that helper's responsibility: satisfy its subtree.
			for _, arg := range call.Args {
				if p, ok := selectorPath(pass, arg, root); ok {
					prefixCalls[p] = true
				}
			}
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || shallowNodes[sel] {
			return true
		}
		if p, ok := selectorPath(pass, sel, root); ok {
			strong[p] = true
		}
		return true
	})
	return strong, shallow, prefixCalls
}

// selectorPath resolves expr to a field path rooted at a value of the
// receiver type, expanding promoted (embedded) selections to their
// full path.
func selectorPath(pass *analysis.Pass, expr ast.Expr, root *types.Named) (string, bool) {
	expr = unparen(expr)
	var chain []*ast.SelectorExpr
	cur := expr
	for {
		s, ok := cur.(*ast.SelectorExpr)
		if !ok {
			break
		}
		chain = append([]*ast.SelectorExpr{s}, chain...)
		cur = unparen(s.X)
	}
	if len(chain) == 0 {
		return "", false
	}
	baseTV, ok := pass.TypesInfo.Types[cur]
	if !ok {
		return "", false
	}
	baseNamed, ok := derefNamed(baseTV.Type)
	if !ok || baseNamed.Obj() != root.Obj() {
		return "", false
	}
	var parts []string
	for _, s := range chain {
		sel := pass.TypesInfo.Selections[s]
		if sel == nil || sel.Kind() != types.FieldVal {
			return "", false
		}
		// Expand the index chain so promoted fields contribute the
		// embedded hops their syntax elides.
		t := sel.Recv()
		for _, idx := range sel.Index() {
			st, ok := structUnder(t)
			if !ok {
				return "", false
			}
			f := st.Field(idx)
			parts = append(parts, f.Name())
			t = f.Type()
		}
	}
	return strings.Join(parts, "."), true
}

func structUnder(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

func prefixSatisfied(path []string, prefixCalls map[string]bool) bool {
	for i := 1; i < len(path); i++ {
		p := strings.Join(path[:i], ".")
		if prefixCalls[p] {
			return true
		}
	}
	return false
}

func shallowPrefix(path []string, shallow map[string]bool) bool {
	for i := 1; i < len(path); i++ {
		if shallow[strings.Join(path[:i], ".")] {
			return true
		}
	}
	return false
}

// unparen strips parentheses. (ast.Unparen needs go1.22; go.mod says 1.21.)
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
