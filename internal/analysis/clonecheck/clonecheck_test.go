package clonecheck_test

import (
	"testing"

	"conman/internal/analysis/analysistest"
	"conman/internal/analysis/clonecheck"
)

func TestClonecheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), clonecheck.Analyzer, "a")
}
