// Fixture for pairedstate: kernel installer calls and their removers.
// The package path contains "modules", so the analyzer is active.
package modules

// Kernel stands in for the real shared-kernel API: the analyzer keys
// on the type name.
type Kernel struct{}

func (k *Kernel) AddRoute(dst string)               {}
func (k *Kernel) DelRouteWhere(f func(string) bool) {}
func (k *Kernel) AddFilter(id int)                  {}
func (k *Kernel) DelFilter(id int)                  {}
func (k *Kernel) AddOrphan(id int)                  {}
func (k *Kernel) AddAddr(iface string)              {}
func (k *Kernel) RegisterUDP(port int)              {}
func (k *Kernel) UnregisterUDP(port int)            {}
func (k *Kernel) DefineVLAN(vid int)                {}
func (k *Kernel) UndefineVLAN(vid int)              {}
func (k *Kernel) AddLabel(l int)                    {}
func (k *Kernel) DelLabel(l int)                    {}

// Good pairs its installer with a remover in DeleteRule.
type Good struct{ k *Kernel }

func (g *Good) InstallRule() { g.k.AddFilter(1) }
func (g *Good) DeleteRule()  { g.k.DelFilter(1) }

// PrefixOK: DelRouteWhere (prefix of the Del+Route stem) covers
// AddRoute, and the remover sits behind a transitive same-module call
// from PipeDeleted.
type PrefixOK struct{ k *Kernel }

func (p *PrefixOK) Install()     { p.k.AddRoute("10.0.0.0/8") }
func (p *PrefixOK) PipeDeleted() { p.cleanup() }
func (p *PrefixOK) cleanup() {
	p.k.DelRouteWhere(func(string) bool { return true })
}

// UndoClosure keeps its remover in a stored closure — the
// install-time-undo convention.
type UndoClosure struct {
	k    *Kernel
	undo map[string]func()
}

func (u *UndoClosure) Install(name string) {
	u.k.AddLabel(7)
	u.undo[name] = func() { u.k.DelLabel(7) }
}

// Orphan is the historical regression shape: state installed, no
// remover anywhere.
type Orphan struct{ k *Kernel }

func (o *Orphan) Install() {
	o.k.AddOrphan(2) // want `Orphan installs kernel state via AddOrphan but no matching remover`
}

// RegNoUnreg registers a callback and never unregisters it; having an
// unrelated Shutdown does not help.
type RegNoUnreg struct{ k *Kernel }

func (r *RegNoUnreg) Bind() {
	r.k.RegisterUDP(67) // want `RegNoUnreg installs kernel state via RegisterUDP but no matching remover`
}
func (r *RegNoUnreg) Shutdown() {}

// DefinePair pairs Define with Undefine via Shutdown.
type DefinePair struct{ k *Kernel }

func (d *DefinePair) Setup()    { d.k.DefineVLAN(100) }
func (d *DefinePair) Shutdown() { d.k.UndefineVLAN(100) }

// Owned uses the escape hatch for device-lifetime state installed by
// its constructor.
type Owned struct{ k *Kernel }

func NewOwned(k *Kernel) *Owned {
	k.AddAddr("eth0") //conmanvet:owned-elsewhere — device-lifetime address
	return &Owned{k: k}
}

// CtorLeak is the constructor variant of the regression: installer in
// a New* function with no remover on any delete path.
type CtorLeak struct{ k *Kernel }

func NewCtorLeak(k *Kernel) *CtorLeak {
	k.AddOrphan(3) // want `CtorLeak installs kernel state via AddOrphan but no matching remover`
	return &CtorLeak{k: k}
}
