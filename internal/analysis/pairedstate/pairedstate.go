// Package pairedstate checks that module code which installs kernel
// state also knows how to take it back out.
//
// CONMan modules own the kernel state they create: when the NM deletes
// a rule or a pipe goes away, the module must remove exactly what it
// installed (the paper's complexity argument depends on modules being
// self-cleaning). The drift this catches is the half-pair: someone adds
// a k.AddFoo() on the install path and never writes the k.DelFoo() on
// any delete path, so torn-down pipes leak routes, filters, labels or
// sockets in the shared kernel.
//
// Mechanically, in any package whose path contains "modules":
//
//   - an installer is a call to a method named Add*, Define*, Register*
//     or SetLabelSpace on a value of (named) type Kernel;
//   - its removers are the matching Del*/Remove*/Drop*, Undefine*,
//     Unregister*/Deregister*, or Clear*/Unset* names;
//   - a remover call counts if it is reachable from a delete-path root
//     — a method of the same module named DeleteRule, Delete*,
//     PipeDeleted, Shutdown, Close, Stop or Teardown, followed through
//     same-module method calls — or if it appears inside any function
//     literal of the module (the ruleUndo/undo-closure convention:
//     closures registered at install time ARE the delete path);
//   - an installer with no reachable remover is reported at the call
//     site.
//
// When the state is genuinely owned by someone else (device-lifetime
// addresses installed by the constructor, sockets rebound rather than
// deleted), annotate the call line:
//
//	k.AddAddr(iface, p) //conmanvet:owned-elsewhere — device-lifetime
package pairedstate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"conman/internal/analysis"
)

// Analyzer is the pairedstate analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "pairedstate",
	Doc:  "check kernel-state installer calls in modules have a remover on a delete path",
	Run:  run,
}

const ownedMarker = "conmanvet:owned-elsewhere"

// deleteRoots are method names that begin a delete path.
var deleteRoots = map[string]bool{
	"DeleteRule":  true,
	"PipeDeleted": true,
	"Shutdown":    true,
	"Close":       true,
	"Stop":        true,
	"Teardown":    true,
}

// installCall is one installer call site awaiting a remover.
type installCall struct {
	pos    token.Pos
	method string // e.g. "AddFilter"
	module string
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !strings.Contains(pass.Pkg.Path(), "modules") {
		return nil, nil
	}

	// funcs groups the package's functions by owning module: methods by
	// receiver type, constructors by named result type.
	type modFuncs struct {
		methods map[string]*ast.FuncDecl
		ctors   []*ast.FuncDecl
	}
	mods := map[string]*modFuncs{}
	owned := map[int]bool{} // lines carrying the owned-elsewhere escape

	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, ownedMarker) {
					owned[pass.Fset.Position(c.Slash).Line] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			mod := owningModule(pass, fd)
			if mod == "" {
				continue
			}
			mf := mods[mod]
			if mf == nil {
				mf = &modFuncs{methods: map[string]*ast.FuncDecl{}}
				mods[mod] = mf
			}
			if fd.Recv != nil {
				mf.methods[fd.Name.Name] = fd
			} else {
				mf.ctors = append(mf.ctors, fd)
			}
		}
	}

	for mod, mf := range mods {
		var installs []installCall
		removers := map[string]bool{}

		// Pass 1: installers anywhere in the module's functions, and
		// removers inside any function literal (undo closures run on
		// the delete path by construction).
		all := append([]*ast.FuncDecl(nil), mf.ctors...)
		for _, fd := range mf.methods {
			all = append(all, fd)
		}
		for _, fd := range all {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					collectKernelCalls(pass, lit.Body, func(name string, pos token.Pos) {
						removers[name] = true
					})
					// Installers inside closures still count as
					// installs, so keep walking the literal too.
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, pos, ok := kernelCall(pass, call)
				if !ok || !isInstaller(name) {
					return true
				}
				if owned[pass.Fset.Position(pos).Line] {
					return true
				}
				installs = append(installs, installCall{pos: pos, method: name, module: mod})
				return true
			})
		}

		// Pass 2: removers reachable from the delete roots through
		// same-module method calls.
		seen := map[string]bool{}
		var queue []string
		for name := range mf.methods {
			if deleteRoots[name] || strings.HasPrefix(name, "Delete") {
				queue = append(queue, name)
			}
		}
		for len(queue) > 0 {
			name := queue[0]
			queue = queue[1:]
			if seen[name] {
				continue
			}
			seen[name] = true
			fd := mf.methods[name]
			if fd == nil {
				continue
			}
			collectKernelCalls(pass, fd.Body, func(kname string, pos token.Pos) {
				removers[kname] = true
			})
			for _, callee := range sameModuleCalls(pass, fd.Body, mod) {
				if !seen[callee] {
					queue = append(queue, callee)
				}
			}
		}

		for _, in := range installs {
			if !removerCovers(in.method, removers) {
				pass.Reportf(in.pos,
					"%s installs kernel state via %s but no matching remover (%s) is reachable from a delete path (DeleteRule/PipeDeleted/Shutdown/Close/Stop/Teardown or an undo closure); add one or annotate //conmanvet:owned-elsewhere",
					in.module, in.method, strings.Join(removerNames(in.method), "/"))
			}
		}
	}
	return nil, nil
}

// owningModule attributes a function to a module type: the receiver's
// named type for methods, the first named in-package result type for
// plain functions (constructor convention).
func owningModule(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]; ok {
			if n := namedOf(tv.Type); n != nil {
				return n.Obj().Name()
			}
		}
		return ""
	}
	if fd.Type.Results == nil {
		return ""
	}
	for _, r := range fd.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[r.Type]
		if !ok {
			continue
		}
		n := namedOf(tv.Type)
		if n == nil || n.Obj().Pkg() != pass.Pkg {
			continue
		}
		if _, isStruct := n.Underlying().(*types.Struct); isStruct {
			return n.Obj().Name()
		}
	}
	return ""
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// kernelCall classifies call as a method call on a value of named type
// Kernel and returns the method name.
func kernelCall(pass *analysis.Pass, call *ast.CallExpr) (string, token.Pos, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", 0, false
	}
	n := namedOf(tv.Type)
	if n == nil || n.Obj().Name() != "Kernel" {
		return "", 0, false
	}
	return sel.Sel.Name, call.Pos(), true
}

// collectKernelCalls invokes fn for every Kernel method call in body.
func collectKernelCalls(pass *analysis.Pass, body ast.Node, fn func(name string, pos token.Pos)) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, pos, ok := kernelCall(pass, call); ok {
			fn(name, pos)
		}
		return true
	})
}

// sameModuleCalls lists names of methods of module mod called in body.
func sameModuleCalls(pass *analysis.Pass, body ast.Node, mod string) []string {
	var out []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			return true
		}
		if nm := namedOf(tv.Type); nm != nil && nm.Obj().Name() == mod && nm.Obj().Pkg() == pass.Pkg {
			out = append(out, sel.Sel.Name)
		}
		return true
	})
	return out
}

// isInstaller reports whether a Kernel method name installs state. The
// character after the verb must be upper case so that getters like
// AddrOf do not match Add.
func isInstaller(name string) bool {
	if name == "SetLabelSpace" {
		return true
	}
	for _, p := range []string{"Add", "Define", "Register"} {
		if strings.HasPrefix(name, p) && len(name) > len(p) &&
			name[len(p)] >= 'A' && name[len(p)] <= 'Z' {
			return true
		}
	}
	return false
}

// removerNames lists the acceptable remover name stems for an
// installer method name. A remover call whose name begins with any
// stem satisfies the pair (DelRouteWhere covers AddRoute).
func removerNames(installer string) []string {
	switch {
	case installer == "SetLabelSpace":
		return []string{"ClearLabelSpace", "UnsetLabelSpace"}
	case strings.HasPrefix(installer, "Add"):
		rest := installer[len("Add"):]
		return []string{"Del" + rest, "Remove" + rest, "Drop" + rest}
	case strings.HasPrefix(installer, "Define"):
		return []string{"Undefine" + installer[len("Define"):]}
	case strings.HasPrefix(installer, "Register"):
		rest := installer[len("Register"):]
		return []string{"Unregister" + rest, "Deregister" + rest}
	}
	return nil
}

func removerCovers(installer string, removers map[string]bool) bool {
	stems := removerNames(installer)
	for r := range removers {
		for _, stem := range stems {
			if strings.HasPrefix(r, stem) {
				return true
			}
		}
	}
	return false
}
