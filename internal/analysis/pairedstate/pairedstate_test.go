package pairedstate_test

import (
	"testing"

	"conman/internal/analysis/analysistest"
	"conman/internal/analysis/pairedstate"
)

func TestPairedstate(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), pairedstate.Analyzer, "modules")
}
