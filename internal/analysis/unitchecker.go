package analysis

// The cmd/go vet-tool wire protocol. `go vet -vettool=conmanvet ./...`
// drives the tool through three kinds of invocation:
//
//	conmanvet -flags          enumerate tool flags (JSON array)
//	conmanvet -V=full         version/build-ID handshake (cache key)
//	conmanvet <dir>/vet.cfg   analyze one package
//
// The vet.cfg file carries everything needed to re-typecheck the
// package without a build system: the file list, the import map, and a
// compiler export-data file per dependency. Dependency packages arrive
// with VetxOnly=true — they exist only so fact-based analyzers can
// export facts. conman's analyzers are deliberately package-local (the
// module-abstraction invariants they check are, too), so those passes
// just write an empty facts file and exit.
//
// Invoked any other way, Main re-execs `go vet -vettool=<self>` with
// the given package patterns, so `conmanvet ./...` works directly.

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"strings"
)

// Config mirrors the JSON schema of cmd/go's vet.cfg (see
// cmd/go/internal/work.vetConfig). Fields the driver does not need are
// still listed so unmarshalling stays strict-compatible across
// toolchains.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a conmanvet-style multichecker binary.
// It never returns.
func Main(analyzers ...*Analyzer) {
	progname := "conmanvet"
	args := os.Args[1:]

	// Flag handshakes from cmd/go.
	for _, a := range args {
		switch {
		case a == "-flags" || a == "--flags":
			// No tool-specific flags: cmd/go passes none through.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasPrefix(a, "-V") || strings.HasPrefix(a, "--V"):
			// The full line is cmd/go's cache key for vet results; the
			// content hash of the binary is embedded by the build, so
			// "devel" suffices here.
			fmt.Printf("%s version devel comments-go-here buildID=devel\n", progname)
			os.Exit(0)
		case a == "help" || a == "-h" || a == "-help" || a == "--help":
			fmt.Printf("%s is a `go vet` tool checking conman's module-invariant contracts.\n\n", progname)
			fmt.Printf("usage: %s [package pattern ...]   (runs go vet -vettool=%s)\n\n", progname, progname)
			fmt.Println("Registered analyzers:")
			for _, an := range analyzers {
				doc := an.Doc
				if i := strings.IndexByte(doc, '\n'); i >= 0 {
					doc = doc[:i]
				}
				fmt.Printf("  %-12s %s\n", an.Name, doc)
			}
			os.Exit(0)
		}
	}

	// vet.cfg mode: a single JSON config argument.
	if len(args) >= 1 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		code, err := runUnit(args[len(args)-1], jsonRequested(args), analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		os.Exit(code)
	}

	// Standalone mode: delegate to go vet so the build system computes
	// export data, caching and package patterns for us.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: cannot locate own binary: %v\n", progname, err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	os.Exit(0)
}

func jsonRequested(args []string) bool {
	for _, a := range args {
		if a == "-json" || a == "--json" {
			return true
		}
	}
	return false
}

// runUnit analyzes the single package described by a vet.cfg file and
// returns the process exit code: 0 clean, 2 diagnostics reported (the
// exit-code convention cmd/go expects from vet tools).
func runUnit(cfgPath string, asJSON bool, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// Always produce the facts output cmd/go caches, even when empty:
	// a missing output file would defeat vet result caching.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: facts only, and we export none.
		return 0, nil
	}

	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, cfg.ImportMap, cfg.PackageFile)
	pkg, err := LoadFiles(fset, cfg.ImportPath, cfg.GoVersion, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		return 0, err
	}
	if len(diags) == 0 {
		return 0, nil
	}
	if asJSON {
		// cmd/go's -json shape: {pkgID: {analyzer: [{posn, message}]}}.
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := map[string][]jsonDiag{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
				Posn:    fset.Position(d.Pos).String(),
				Message: d.Message,
			})
		}
		out, err := json.MarshalIndent(map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}, "", "\t")
		if err != nil {
			return 0, err
		}
		fmt.Println(string(out))
		return 0, nil
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return 2, nil
}
