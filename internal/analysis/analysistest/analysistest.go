// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// fixtures would work unchanged under the real harness.
//
// Fixture layout: <testdata>/src/<pkg>/*.go, one package per
// directory. A diagnostic is expected on a source line by suffixing it
// with a comment of the form
//
//	// want "regexp"
//	// want `regexp` "second regexp"
//
// Every diagnostic must match a pattern on its line and every pattern
// must be matched by a diagnostic; anything else fails the test.
//
// Fixtures may import standard-library packages; their export data is
// resolved by shelling out to `go list -export`, which requires the go
// toolchain (always present under `go test`).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"conman/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run analyzes each fixture package under dir/src and reports
// mismatches between produced diagnostics and // want expectations as
// test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, filepath.Join(dir, "src", pkg), pkg, a)
		})
	}
}

func runOne(t *testing.T, pkgDir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(pkgDir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", pkgDir)
	}

	imp, err := stdlibImporter(fset, files)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	pkg, err := analysis.CheckFiles(fset, pkgPath, "", files, imp)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", pkgPath, err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	checkDiagnostics(t, fset, diags, wants)
	_ = names
}

// want is one expectation: a compiled pattern at file:line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Slash)
				for _, raw := range splitPatterns(t, m[1], pos) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// splitPatterns parses the space-separated quoted ("..." or `...`)
// patterns of a want comment.
func splitPatterns(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %s: %v", pos, s[:end+1], err)
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern: %s", pos, s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			t.Fatalf("%s: want patterns must be quoted, got: %s", pos, s)
		}
	}
	return out
}

func checkDiagnostics(t *testing.T, fset *token.FileSet, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// stdlibImporter builds an importer covering the transitive imports of
// the fixture files, using `go list -export` to locate (and, on a cold
// cache, produce) compiler export data.
func stdlibImporter(fset *token.FileSet, files []*ast.File) (types.Importer, error) {
	seen := map[string]bool{}
	var paths []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p == "C" || seen[p] {
				continue
			}
			seen[p] = true
			paths = append(paths, p)
		}
	}
	packageFile := map[string]string{}
	if len(paths) > 0 {
		m, err := goListExport(paths)
		if err != nil {
			return nil, err
		}
		packageFile = m
	}
	return analysis.ExportDataImporter(fset, nil, packageFile), nil
}

// goListExport resolves import paths (plus their transitive deps) to
// compiler export data files.
func goListExport(paths []string) (map[string]string, error) {
	args := append([]string{"list", "-deps", "-export", "-f", "{{.ImportPath}}={{.Export}}"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list -export %v: %v\n%s", paths, err, ee.Stderr)
		}
		return nil, err
	}
	m := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		k, v, ok := strings.Cut(line, "=")
		if ok && v != "" {
			m[k] = v
		}
	}
	return m, nil
}
