package obs

import (
	"encoding/json"
	"net/http"
)

// NewMux builds the daemon's HTTP surface: GET /status serves the
// JSON encoding of status(), GET /metrics the Prometheus rendering of
// m. Callers register additional handlers (fault injection, health)
// on the returned mux.
func NewMux(status func() any, m *Metrics) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_, _ = w.Write([]byte(m.RenderPrometheus()))
	})
	return mux
}
