package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if math.Abs(snap.Sum-5.56) > 1e-9 {
		t.Fatalf("sum = %v, want ~5.56", snap.Sum)
	}
	wantCum := []uint64{2, 3, 4} // <=0.01, <=0.1, <=1; the 5s lands in +Inf
	for i, b := range snap.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%v cumulative = %d, want %d", b.Le, b.Count, wantCum[i])
		}
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(1) // le="1" is inclusive in Prometheus semantics
	if got := h.Snapshot().Buckets[0].Count; got != 1 {
		t.Errorf("observation on the bound counted in bucket = %d, want 1", got)
	}
}

func TestMetricsGetOrCreate(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("x_total", "help")
	b := m.Counter("x_total", "help")
	if a != b {
		t.Error("same name returned distinct counters")
	}
	a.Add(3)
	if got := m.Snapshot()["x_total"]; got != uint64(3) {
		t.Errorf("snapshot = %v, want 3", got)
	}
}

func TestGauge(t *testing.T) {
	m := NewMetrics()
	g := m.Gauge("depth", "queue depth")
	if g != m.Gauge("depth", "queue depth") {
		t.Error("same name returned distinct gauges")
	}
	g.Set(7)
	g.Set(4) // gauges move both ways
	if got := m.Snapshot()["depth"]; got != uint64(4) {
		t.Errorf("snapshot = %v, want 4", got)
	}
	out := m.RenderPrometheus()
	for _, want := range []string{"# TYPE depth gauge", "depth 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderPrometheus(t *testing.T) {
	m := NewMetrics()
	m.Counter("runs_total", "passes").Add(2)
	m.Histogram("lat_seconds", "latency", 0.5, 1).Observe(0.25)
	out := m.RenderPrometheus()
	for _, want := range []string{
		"# TYPE runs_total counter",
		"runs_total 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.5"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_sum 0.25",
		"lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMuxEndpoints(t *testing.T) {
	m := NewMetrics()
	m.Counter("hits_total", "hits").Inc()
	mux := NewMux(func() any { return map[string]any{"healthy": true} }, m)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/status not JSON: %v\n%s", err, body)
	}
	if doc["healthy"] != true {
		t.Errorf("/status = %v", doc)
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "hits_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
}
