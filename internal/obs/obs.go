// Package obs provides the small observability surface the
// reconciliation daemon exposes: named counters and fixed-bucket
// histograms collected in a registry, rendered either as JSON
// snapshots (the /status endpoint) or in Prometheus text exposition
// format (the /metrics endpoint). It depends only on the standard
// library and knows nothing about the NM.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Get returns the current value.
func (c *Counter) Get() uint64 { return c.v.Load() }

// Gauge is a value that can move in both directions (queue depths,
// window occupancy). Updated with Set; transports publish snapshots of
// internal state through it.
type Gauge struct {
	v atomic.Uint64
}

// Set replaces the current value.
func (g *Gauge) Set(v uint64) { g.v.Store(v) }

// Get returns the current value.
func (g *Gauge) Get() uint64 { return g.v.Load() }

// DefaultLatencyBuckets suit management-plane latencies: 1ms to 10s.
var DefaultLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (seconds, for the daemon's latency metrics).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bucket bounds, ascending; +Inf implicit
	counts []uint64  // len(bounds)+1, last is the overflow bucket
	sum    float64
	count  uint64
}

// NewHistogram creates a histogram with the given ascending upper
// bounds (DefaultLatencyBuckets when none are given).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot returns the histogram's current cumulative buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		snap.Buckets = append(snap.Buckets, Bucket{Le: b, Count: cum})
	}
	return snap
}

// Metrics is an ordered registry of counters, gauges and histograms.
type Metrics struct {
	mu       sync.Mutex
	order    []string
	help     map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		help:     make(map[string]string),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating on first use) the named counter.
func (m *Metrics) Counter(name, help string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.counters[name]; ok {
		return c
	}
	c := &Counter{}
	m.counters[name] = c
	m.help[name] = help
	m.order = append(m.order, name)
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (m *Metrics) Gauge(name, help string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok := m.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	m.gauges[name] = g
	m.help[name] = help
	m.order = append(m.order, name)
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (m *Metrics) Histogram(name, help string, bounds ...float64) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.hists[name]; ok {
		return h
	}
	h := NewHistogram(bounds...)
	m.hists[name] = h
	m.help[name] = help
	m.order = append(m.order, name)
	return h
}

// Snapshot returns every metric's current value keyed by name
// (counters as uint64, histograms as HistogramSnapshot), for the
// /status JSON document.
func (m *Metrics) Snapshot() map[string]any {
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make(map[string]any, len(names))
	for _, name := range names {
		m.mu.Lock()
		c, isC := m.counters[name]
		g, isG := m.gauges[name]
		h, isH := m.hists[name]
		m.mu.Unlock()
		switch {
		case isC:
			out[name] = c.Get()
		case isG:
			out[name] = g.Get()
		case isH:
			out[name] = h.Snapshot()
		}
	}
	return out
}

// RenderPrometheus renders the registry in Prometheus text exposition
// format, in registration order.
func (m *Metrics) RenderPrometheus() string {
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	m.mu.Unlock()
	var b strings.Builder
	for _, name := range names {
		m.mu.Lock()
		help := m.help[name]
		c, isC := m.counters[name]
		g, isG := m.gauges[name]
		h, isH := m.hists[name]
		m.mu.Unlock()
		switch {
		case isC:
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, c.Get())
		case isG:
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, g.Get())
		case isH:
			snap := h.Snapshot()
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
			for _, bk := range snap.Buckets {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatLe(bk.Le), bk.Count)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
			fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", name, snap.Sum, name, snap.Count)
		}
	}
	return b.String()
}

func formatLe(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
