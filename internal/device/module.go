// Package device implements CONMan devices: the per-device management
// agent (MA) that registers protocol modules, serves the NM's primitives
// over the management channel, relays module-to-module messages through
// the NM, and bridges modules to the simulated kernel and physical
// network (paper §II).
package device

import (
	"errors"

	"conman/internal/core"
	"conman/internal/kernel"
)

// PipeSide says which end of a pipe a module is: the module above
// (for which the pipe is a down pipe) or the module below (up pipe).
type PipeSide uint8

const (
	SideUpper PipeSide = iota
	SideLower
)

func (s PipeSide) String() string {
	if s == SideUpper {
		return "upper"
	}
	return "lower"
}

// Pipe is one configured up-down pipe between two modules of this device,
// or a physical pipe owned by an ETH module.
type Pipe struct {
	ID        core.PipeID
	Upper     core.ModuleRef
	Lower     core.ModuleRef
	UpperPeer core.ModuleRef // remote peer of the upper module, if known
	LowerPeer core.ModuleRef
	Satisfy   []core.DependencyChoice
	Status    core.PipeStatus

	Physical bool
	Iface    string // kernel interface for physical pipes
	External bool   // leads outside the managed domain
}

// TradeoffChosen reports whether the NM's dependency choices for this pipe
// selected a trade-off obtaining the given metric.
func (p *Pipe) TradeoffChosen(get core.Metric) bool {
	for _, c := range p.Satisfy {
		if c.Tradeoff == "" {
			continue
		}
		for _, t := range parseTradeoffGets(c.Tradeoff) {
			if t == get {
				return true
			}
		}
	}
	return false
}

// parseTradeoffGets extracts the "get" metrics from a Tradeoff.Key().
func parseTradeoffGets(key string) []core.Metric {
	// Key format: "give1, give2|get1, get2|scope".
	var gets []core.Metric
	parts := splitKey(key)
	if len(parts) != 3 {
		return nil
	}
	for _, name := range splitList(parts[1]) {
		if m, err := core.ParseMetric(name); err == nil {
			gets = append(gets, m)
		}
	}
	return gets
}

func splitKey(s string) []string {
	var parts []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			parts = append(parts, s[start:i])
			start = i + 1
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func splitList(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			item := trimSpace(s[start:i])
			if item != "" {
				out = append(out, item)
			}
			start = i + 1
		}
	}
	return out
}

func trimSpace(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// SwitchRuleInstance is an installed (or installing) switch rule with the
// NM's resolutions of abstract tokens.
type SwitchRuleInstance struct {
	ID            string
	Rule          core.SwitchRule
	MatchResolved string // e.g. "10.0.2.0/24" for dst-domain:C1-S2
	ViaResolved   string // e.g. "192.168.0.1" for S1-gateway
	// HandleResolved is set by the installing module when the rule
	// embeds low-level fields exported by the module below
	// (core.CanonicalHandle of the consumed listFieldsAndValues map);
	// it is reported back through showActual so the NM can detect the
	// embedded copy going stale (§II-E).
	HandleResolved string
}

// FilterRuleInstance is an installed abstract filter rule.
type FilterRuleInstance struct {
	ID             string
	Rule           core.FilterRule
	ResolvedFields map[string]string
	KernelID       string
}

// ErrPending is returned by module operations that cannot complete yet
// (e.g. a switch rule needing parameters another module has not derived);
// the MA retries them as state settles (paper §III-B's "the parameters for
// this command already having been determined" ordering).
var ErrPending = errors.New("device: operation pending on unresolved parameters")

// ErrUnsupported is returned for operations a module does not implement.
var ErrUnsupported = errors.New("device: operation unsupported by module")

// Module is the interface every protocol module implements toward its MA.
// It is deliberately protocol-agnostic: everything protocol-specific stays
// inside the implementation (the whole point of CONMan).
type Module interface {
	// Ref returns the module's <name, module-id, device-id> tuple.
	Ref() core.ModuleRef
	// Abstraction self-describes the module (Table II).
	Abstraction() core.Abstraction
	// Actual reports current state (showActual).
	Actual() core.ModuleState
	// PipeAttached notifies the module of a new pipe at the given side.
	PipeAttached(p *Pipe, side PipeSide) error
	// PipeDeleted notifies the module that a pipe was removed.
	PipeDeleted(p *Pipe, side PipeSide) error
	// InstallSwitchRule directs packet switching between two pipes.
	// Returning ErrPending defers the rule until dependencies resolve.
	InstallSwitchRule(r *SwitchRuleInstance) error
	// InstallFilterRule installs an abstract filter (§II-E).
	InstallFilterRule(r *FilterRuleInstance) error
	// HandleConvey processes a message from a (remote) peer module.
	HandleConvey(from core.ModuleRef, kind string, body []byte) error
	// ListFields resolves an abstract component to low-level fields
	// (§II-E). Component is a pipe id or "self".
	ListFields(component string) (map[string]string, error)
	// SelfTest probes data-plane connectivity to the module's peer on
	// the given pipe (§II-D.2).
	SelfTest(pipe core.PipeID) (bool, string)
}

// Services is what the MA offers to its modules.
type Services interface {
	// Device returns the owning device id.
	Device() core.DeviceID
	// Kernel returns the device's kernel.
	Kernel() *kernel.Kernel
	// Convey sends a message to a remote module through the NM
	// (conveyMessage, §II-D.1.d).
	Convey(from, to core.ModuleRef, kind string, body any) error
	// QueryFields performs listFieldsAndValues on a remote module via
	// the NM and waits for the answer.
	QueryFields(requester, target core.ModuleRef, component string) (map[string]string, error)
	// LocalFields queries a module on this same device directly.
	LocalFields(target core.ModuleID, component string) (map[string]string, error)
	// LocalModule fetches a co-located module.
	LocalModule(id core.ModuleID) (Module, bool)
	// PipeByID fetches a pipe of this device.
	PipeByID(id core.PipeID) (*Pipe, bool)
	// Notify sends an unsolicited event to the NM.
	Notify(module core.ModuleRef, kind, detail string) error
	// FieldsChanged reports that a component's low-level values changed,
	// firing any installed triggers (dependency maintenance, §II-E).
	FieldsChanged(module core.ModuleRef, component string, fields map[string]string)
	// Kick schedules a retry of pending operations.
	Kick()
}

// BaseModule provides default implementations so concrete modules only
// override what they support.
type BaseModule struct {
	ModRef core.ModuleRef
	Svc    Services
}

// Ref implements Module.
func (b *BaseModule) Ref() core.ModuleRef { return b.ModRef }

// PipeAttached implements Module (accepts silently).
func (b *BaseModule) PipeAttached(*Pipe, PipeSide) error { return nil }

// PipeDeleted implements Module.
func (b *BaseModule) PipeDeleted(*Pipe, PipeSide) error { return nil }

// InstallSwitchRule implements Module (unsupported).
func (b *BaseModule) InstallSwitchRule(*SwitchRuleInstance) error { return ErrUnsupported }

// InstallFilterRule implements Module (unsupported).
func (b *BaseModule) InstallFilterRule(*FilterRuleInstance) error { return ErrUnsupported }

// HandleConvey implements Module (ignores).
func (b *BaseModule) HandleConvey(core.ModuleRef, string, []byte) error { return nil }

// ListFields implements Module (nothing to report).
func (b *BaseModule) ListFields(string) (map[string]string, error) {
	return map[string]string{}, nil
}

// SelfTest implements Module (unsupported).
func (b *BaseModule) SelfTest(core.PipeID) (bool, string) {
	return false, "self-test unsupported"
}
