package device

import (
	"encoding/json"
	"fmt"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/kernel"
	"conman/internal/msg"
	"conman/internal/netsim"
	"conman/internal/packet"
)

// Device bundles one simulated network element: its netsim ports, kernel,
// and management agent. Protocol modules are registered on top.
type Device struct {
	ID     core.DeviceID
	Net    *netsim.Network
	Kernel *kernel.Kernel
	MA     *MA

	ports    []string
	external map[string]bool
	flood    *channel.FloodNode
}

// New creates a device with the given forwarding role and physical ports,
// wiring the kernel into the network.
func New(net *netsim.Network, id core.DeviceID, role kernel.Role, ports ...string) (*Device, error) {
	d := &Device{ID: id, Net: net, ports: ports, external: make(map[string]bool)}
	k := kernel.New(id, role,
		func(port string, frame []byte) error {
			return net.Send(netsim.PortID{Device: id, Name: port}, frame)
		},
		func(port string) (packet.MAC, bool) {
			m, err := net.PortMAC(netsim.PortID{Device: id, Name: port})
			return m, err == nil
		})
	d.Kernel = k
	net.AddDevice(id, k)
	for _, p := range ports {
		if _, err := net.AddPort(id, p); err != nil {
			return nil, err
		}
		k.AddPhysical(p)
	}
	d.MA = NewMA(id, k, d.portReports)
	// Link-state interrupt: a wire going up or down re-reports topology
	// to the NM unprompted, so reconciliation can react without polling
	// (§III-C.2's failure detection). Errors are ignored — the channel
	// may not be attached yet, or the NM may be gone.
	net.OnCarrierChange(id, func() { _ = d.MA.ReportTopology() })
	// 802.1D topology-change behaviour: every bridge in the domain
	// fast-ages its forwarding table when any link flips, adjacent or
	// not. Entries learned before the change may steer unicast frames
	// into the failed direction, and the simulator has no aging clock
	// to expire them.
	net.OnTopologyChange(id, k.FlushFDB)
	return d, nil
}

// MarkExternal flags a customer-facing port: the device knows from
// provisioning that the far end is outside the managed domain.
func (d *Device) MarkExternal(port string) { d.external[port] = true }

// Ports returns the device's physical port names.
func (d *Device) Ports() []string { return append([]string(nil), d.ports...) }

// IsExternal reports whether a port is customer-facing.
func (d *Device) IsExternal(port string) bool { return d.external[port] }

func (d *Device) portReports() []msg.PortReport {
	var out []msg.PortReport
	for _, p := range d.ports {
		id := netsim.PortID{Device: d.ID, Name: p}
		mac, _ := d.Net.PortMAC(id)
		rep := msg.PortReport{
			Name:     p,
			MAC:      mac.String(),
			Attached: d.Net.Attached(id),
			External: d.external[p],
		}
		if peers, err := d.Net.Neighbor(id); err == nil && len(peers) > 0 {
			rep.PeerDevice = peers[0].Device
			rep.PeerPort = peers[0].Name
		}
		out = append(out, rep)
	}
	return out
}

// FloodNode returns (creating on first use) the device's attachment to the
// self-bootstrapping management channel and registers it with the kernel.
func (d *Device) FloodNode() *channel.FloodNode {
	if d.flood == nil {
		id := d.ID
		ports := append([]string(nil), d.ports...)
		d.flood = channel.NewFloodNode(id,
			func(port string, frame []byte) error {
				return d.Net.Send(netsim.PortID{Device: id, Name: port}, frame)
			},
			func() []string { return ports })
		d.Kernel.RegisterEtherType(packet.EtherTypeMgmt, d.flood.HandleMgmtFrame)
	}
	return d.flood
}

// AddModule registers a protocol module with the MA.
func (d *Device) AddModule(m Module) { d.MA.Register(m) }

// PortMAC returns a port's MAC address.
func (d *Device) PortMAC(port string) (packet.MAC, error) {
	return d.Net.PortMAC(netsim.PortID{Device: d.ID, Name: port})
}

// String implements fmt.Stringer.
func (d *Device) String() string { return fmt.Sprintf("device(%s)", d.ID) }

// jsonBody marshals a convey body, passing through raw JSON.
func jsonBody(body any) (json.RawMessage, error) {
	switch b := body.(type) {
	case nil:
		return nil, nil
	case json.RawMessage:
		return b, nil
	case []byte:
		return json.RawMessage(b), nil
	default:
		raw, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		return json.RawMessage(raw), nil
	}
}
