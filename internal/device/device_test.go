package device_test

import (
	"net/netip"
	"testing"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
	"conman/internal/modules"
	"conman/internal/msg"
	"conman/internal/netsim"
	"conman/internal/nm"
)

// rig: one managed router with ETH + IP modules, a hub channel and an NM.
func rig(t *testing.T) (*device.Device, *nm.NM) {
	t.Helper()
	net := netsim.New()
	hub := channel.NewHub()
	manager := nm.New()
	manager.AttachChannel(hub.Endpoint(msg.NMName))

	d, err := device.New(net, "X", kernel.RoleRouter, "eth0", "eth1")
	if err != nil {
		t.Fatal(err)
	}
	d.MarkExternal("eth0")
	e0 := modules.NewETH(d.MA, "a", false, "eth0")
	e0.RegisterPhysical(d.MA, "eth0")
	d.AddModule(e0)
	e1 := modules.NewETH(d.MA, "b", false, "eth1")
	e1.RegisterPhysical(d.MA)
	d.AddModule(e1)
	ipm, err := modules.NewIP(d.MA, "g", "C1", map[string]netip.Prefix{
		"eth0": netip.MustParsePrefix("192.168.0.2/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.AddModule(ipm)
	d.AddModule(modules.NewGRE(d.MA, "l"))

	d.MA.AttachChannel(hub.Endpoint("X"))
	if err := d.MA.Start(); err != nil {
		t.Fatal(err)
	}
	return d, manager
}

func TestHelloAndTopologyReachNM(t *testing.T) {
	_, manager := rig(t)
	devs := manager.Devices()
	if len(devs) != 1 || devs[0] != "X" {
		t.Fatalf("devices = %v", devs)
	}
	info, ok := manager.Device("X")
	if !ok || !info.Hello {
		t.Fatal("no hello recorded")
	}
	if len(info.Topology.Ports) != 2 {
		t.Fatalf("ports = %+v", info.Topology.Ports)
	}
	for _, p := range info.Topology.Ports {
		if p.Name == "eth0" && !p.External {
			t.Error("eth0 should be external")
		}
	}
}

func TestShowPotentialOverChannel(t *testing.T) {
	_, manager := rig(t)
	abs, err := manager.ShowPotential("X")
	if err != nil {
		t.Fatal(err)
	}
	if len(abs) != 4 {
		t.Fatalf("modules = %d", len(abs))
	}
	// Registration order preserved: a, b, g, l.
	if abs[0].Ref.Module != "a" || abs[3].Ref.Name != core.NameGRE {
		t.Fatalf("order: %v %v", abs[0].Ref, abs[3].Ref)
	}
}

func TestCreatePipeValidation(t *testing.T) {
	d, manager := rig(t)
	_ = d
	// Valid: IP over ETH.
	resp, err := manager.ExecuteBatch("X", []msg.CommandItem{{
		Pipe: &msg.CreatePipeItem{ID: "P0", Req: core.PipeRequest{
			Upper: core.Ref(core.NameIPv4, "X", "g"),
			Lower: core.Ref(core.NameETH, "X", "a"),
		}},
	}})
	if err != nil || !resp.OK() {
		t.Fatalf("valid pipe rejected: %v %v", err, resp)
	}
	// Invalid: ETH cannot sit above IP on a router.
	resp, err = manager.ExecuteBatch("X", []msg.CommandItem{{
		Pipe: &msg.CreatePipeItem{ID: "P9", Req: core.PipeRequest{
			Upper: core.Ref(core.NameETH, "X", "b"),
			Lower: core.Ref(core.NameIPv4, "X", "g"),
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK() {
		t.Fatal("connectable-module validation missing")
	}
	// Invalid: GRE up pipe without satisfying the trade-off dependency.
	resp, err = manager.ExecuteBatch("X", []msg.CommandItem{{
		Pipe: &msg.CreatePipeItem{ID: "P1", Req: core.PipeRequest{
			Upper: core.Ref(core.NameIPv4, "X", "g"),
			Lower: core.Ref(core.NameGRE, "X", "l"),
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK() {
		t.Fatal("unsatisfied dependency accepted")
	}
	// Duplicate pipe id.
	resp, _ = manager.ExecuteBatch("X", []msg.CommandItem{{
		Pipe: &msg.CreatePipeItem{ID: "P0", Req: core.PipeRequest{
			Upper: core.Ref(core.NameIPv4, "X", "g"),
			Lower: core.Ref(core.NameETH, "X", "b"),
		}},
	}})
	if resp.OK() {
		t.Fatal("duplicate pipe id accepted")
	}
	// Unknown module.
	resp, _ = manager.ExecuteBatch("X", []msg.CommandItem{{
		Pipe: &msg.CreatePipeItem{ID: "P2", Req: core.PipeRequest{
			Upper: core.Ref(core.NameIPv4, "X", "ghost"),
			Lower: core.Ref(core.NameETH, "X", "a"),
		}},
	}})
	if resp.OK() {
		t.Fatal("unknown module accepted")
	}
}

func TestSwitchRuleUnknownPipeRejected(t *testing.T) {
	_, manager := rig(t)
	resp, err := manager.ExecuteBatch("X", []msg.CommandItem{{
		Switch: &msg.CreateSwitchReq{Rule: core.SwitchRule{
			Module: core.Ref(core.NameIPv4, "X", "g"), From: "Pnope", To: "Phy-eth0",
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK() {
		t.Fatal("rule with unknown pipe accepted")
	}
}

func TestPhysicalPipeVisibleAndUndeletable(t *testing.T) {
	d, manager := rig(t)
	if _, ok := d.MA.PipeByID("Phy-eth0"); !ok {
		t.Fatal("physical pipe not registered")
	}
	err := manager.Delete(core.DeleteRequest{
		Kind:   core.ComponentPipe,
		Module: core.Ref(core.NameETH, "X", "a"),
		ID:     "Phy-eth0",
	})
	if err == nil {
		t.Fatal("physical pipe deletion must fail (NM can only disable them)")
	}
}

func TestTradeoffParsingOnPipe(t *testing.T) {
	p := &device.Pipe{Satisfy: []core.DependencyChoice{
		{Tradeoff: "jitter, delay|ordering|up"},
		{Tradeoff: "loss-rate|error-rate|up"},
	}}
	if !p.TradeoffChosen(core.MetricOrdering) || !p.TradeoffChosen(core.MetricErrorRate) {
		t.Error("chosen trade-offs not detected")
	}
	if p.TradeoffChosen(core.MetricBandwidth) {
		t.Error("unchosen trade-off detected")
	}
}

func TestListFieldsAcrossChannel(t *testing.T) {
	_, manager := rig(t)
	// The NM-side API is exercised indirectly; here query a module via
	// the MA's service interface used by modules.
	states, err := manager.ShowActual("X")
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 4 {
		t.Fatalf("states = %d", len(states))
	}
	var found bool
	for _, st := range states {
		if st.Ref.Name == core.NameIPv4 {
			if st.LowLevel["addr:eth0"] == "192.168.0.2/24" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("IP module state missing address binding")
	}
}

func TestErrorEnvelopeForBadBatch(t *testing.T) {
	_, manager := rig(t)
	resp, err := manager.ExecuteBatch("X", []msg.CommandItem{{}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK() {
		t.Fatal("empty command item accepted")
	}
}

// TestRetransmittedBatchServedFromCache: a byte-identical duplicate of a
// mutating request (the transport's retry path) must be answered from
// the MA's reply cache — same successful response, no re-execution —
// while a different request that happens to reuse the envelope ID must
// execute normally.
func TestRetransmittedBatchServedFromCache(t *testing.T) {
	net := netsim.New()
	hub := channel.NewHub()
	var replies []msg.Envelope
	nmEp := hub.Endpoint(msg.NMName)
	nmEp.SetHandler(func(env msg.Envelope) {
		replies = append(replies, env) // hub delivery is synchronous
	})

	d, err := device.New(net, "X", kernel.RoleRouter, "eth0", "eth1")
	if err != nil {
		t.Fatal(err)
	}
	e0 := modules.NewETH(d.MA, "a", false, "eth0")
	e0.RegisterPhysical(d.MA, "eth0")
	d.AddModule(e0)
	ipm, err := modules.NewIP(d.MA, "g", "C1", map[string]netip.Prefix{
		"eth0": netip.MustParsePrefix("192.168.0.2/24"),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.AddModule(ipm)
	d.MA.AttachChannel(hub.Endpoint("X"))

	mkReq := func(pipe core.PipeID) msg.Envelope {
		return msg.MustNew(msg.TypeCommandBatchReq, msg.NMName, "X", 77, msg.CommandBatchReq{
			Items: []msg.CommandItem{{Pipe: &msg.CreatePipeItem{ID: pipe, Req: core.PipeRequest{
				Upper: core.Ref(core.NameIPv4, "X", "g"),
				Lower: core.Ref(core.NameETH, "X", "a"),
			}}}},
		})
	}
	req := mkReq("P5")
	for i := 0; i < 2; i++ {
		if err := nmEp.Send(req); err != nil {
			t.Fatal(err)
		}
	}
	if len(replies) != 2 {
		t.Fatalf("%d replies, want 2", len(replies))
	}
	for i, env := range replies {
		var resp msg.CommandBatchResp
		if env.Type != msg.TypeCommandBatchResp || env.Decode(&resp) != nil || !resp.OK() {
			t.Fatalf("reply %d: %v", i, env)
		}
		if resp.Results[0].PipeID != "P5" {
			t.Fatalf("reply %d: pipe %q", i, resp.Results[0].PipeID)
		}
	}
	if string(replies[0].Body) != string(replies[1].Body) {
		t.Fatalf("cached reply differs:\n%s\n%s", replies[0].Body, replies[1].Body)
	}

	// Same envelope ID, different content: must execute, not hit cache.
	if err := nmEp.Send(mkReq("P6")); err != nil {
		t.Fatal(err)
	}
	var resp msg.CommandBatchResp
	if len(replies) != 3 || replies[2].Decode(&resp) != nil || !resp.OK() {
		t.Fatalf("ID-colliding request not executed: %v", replies)
	}
	if resp.Results[0].PipeID != "P6" {
		t.Fatalf("ID-colliding request served stale pipe %q", resp.Results[0].PipeID)
	}
}
