package device

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/kernel"
	"conman/internal/msg"
)

// trigger is one installed dependency-maintenance trigger (§II-E).
type trigger struct {
	ID        string
	Module    core.ModuleRef
	Component string
}

type pendingRule struct {
	module Module
	inst   *SwitchRuleInstance
}

// MA is a device's management agent: it owns the module registry and pipe
// table, serves the NM's primitives, and relays module messages.
type MA struct {
	dev      core.DeviceID
	kern     *kernel.Kernel
	portInfo func() []msg.PortReport

	mu       sync.Mutex
	ep       channel.Endpoint
	modules  map[core.ModuleID]Module
	order    []core.ModuleID
	pipes    map[core.PipeID]*Pipe
	pipeSeq  int
	ruleSeq  int
	pending  []pendingRule
	failed   []string
	reqSeq   uint64
	waiters  map[uint64]chan msg.Envelope
	triggers []trigger
	trigSeq  int

	// replies caches the reply sent for each completed request keyed
	// (requester, envelope ID), and inflight marks requests still
	// executing, so a retransmitted request (lossy channel, NM
	// RetryInterval) is answered idempotently — resent from cache, or
	// dropped while the first execution is still running — instead of
	// re-executed. replyOrder evicts FIFO at maxReplyCache.
	replies    map[string]msg.Envelope // guarded by mu
	inflight   map[string]bool         // guarded by mu
	replyOrder []string                // guarded by mu

	// QueryTimeout bounds blocking listFieldsAndValues calls.
	QueryTimeout time.Duration

	// RetryInterval, when positive, retransmits an unanswered
	// listFieldsAndValues request every interval until QueryTimeout —
	// the device-side mirror of NM.RetryInterval. The NM re-relays the
	// query (module reads are side-effect-free) and the waiter's
	// buffered channel drops any duplicate response.
	RetryInterval time.Duration
}

// maxReplyCache bounds the per-device reply cache; retransmits arrive
// within a few RTOs, so even a small window of recent replies suffices.
const maxReplyCache = 512

// NewMA creates a management agent.
func NewMA(dev core.DeviceID, kern *kernel.Kernel, portInfo func() []msg.PortReport) *MA {
	return &MA{
		dev:          dev,
		kern:         kern,
		portInfo:     portInfo,
		modules:      make(map[core.ModuleID]Module),
		pipes:        make(map[core.PipeID]*Pipe),
		waiters:      make(map[uint64]chan msg.Envelope),
		replies:      make(map[string]msg.Envelope),
		inflight:     make(map[string]bool),
		QueryTimeout: 5 * time.Second,
	}
}

// Device implements Services.
func (a *MA) Device() core.DeviceID { return a.dev }

// Kernel implements Services.
func (a *MA) Kernel() *kernel.Kernel { return a.kern }

// Register adds a module to the device.
func (a *MA) Register(m Module) {
	a.mu.Lock()
	defer a.mu.Unlock()
	id := m.Ref().Module
	if _, dup := a.modules[id]; !dup {
		a.order = append(a.order, id)
	}
	a.modules[id] = m
}

// RegisterPhysicalPipe records a physical pipe owned by an (ETH) module.
func (a *MA) RegisterPhysicalPipe(p *Pipe) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pipes[p.ID] = p
}

// AttachChannel connects the MA to the management channel.
func (a *MA) AttachChannel(ep channel.Endpoint) {
	a.mu.Lock()
	a.ep = ep
	a.mu.Unlock()
	ep.SetHandler(a.handle)
}

// Start announces the device and its physical connectivity to the NM.
func (a *MA) Start() error {
	if err := a.send(msg.MustNew(msg.TypeHello, string(a.dev), msg.NMName, 0, msg.Hello{Device: a.dev})); err != nil {
		return err
	}
	return a.ReportTopology()
}

// ReportTopology (re-)sends the physical connectivity report.
func (a *MA) ReportTopology() error {
	top := msg.Topology{Device: a.dev, Ports: a.portInfo()}
	return a.send(msg.MustNew(msg.TypeTopology, string(a.dev), msg.NMName, 0, top))
}

func (a *MA) send(env msg.Envelope) error {
	a.mu.Lock()
	ep := a.ep
	a.mu.Unlock()
	if ep == nil {
		return fmt.Errorf("device[%s]: no management channel attached", a.dev)
	}
	return ep.Send(env)
}

// Modules returns the registered modules in registration order.
func (a *MA) Modules() []Module {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Module, 0, len(a.order))
	for _, id := range a.order {
		out = append(out, a.modules[id])
	}
	return out
}

// LocalModule implements Services.
func (a *MA) LocalModule(id core.ModuleID) (Module, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	m, ok := a.modules[id]
	return m, ok
}

// PipeByID implements Services.
func (a *MA) PipeByID(id core.PipeID) (*Pipe, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	p, ok := a.pipes[id]
	return p, ok
}

// Pipes returns all pipes sorted by id.
func (a *MA) Pipes() []*Pipe {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]*Pipe, 0, len(a.pipes))
	for _, p := range a.pipes {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PendingRules reports how many switch rules are still waiting on
// unresolved parameters.
func (a *MA) PendingRules() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.pending)
}

// FailedRules returns terminal rule failures.
func (a *MA) FailedRules() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.failed...)
}

// LocalFields implements Services: intra-device field resolution.
func (a *MA) LocalFields(target core.ModuleID, component string) (map[string]string, error) {
	m, ok := a.LocalModule(target)
	if !ok {
		return nil, fmt.Errorf("device[%s]: no module %q", a.dev, target)
	}
	return m.ListFields(component)
}

// Convey implements Services: module-to-module message via the NM.
func (a *MA) Convey(from, to core.ModuleRef, kind string, body any) error {
	inner, err := jsonBody(body)
	if err != nil {
		return err
	}
	env, err := msg.New(msg.TypeConvey, string(a.dev), msg.NMName, 0, msg.Convey{
		FromModule: from, ToModule: to, Kind: kind, Body: inner,
	})
	if err != nil {
		return err
	}
	return a.send(env)
}

// Notify implements Services.
func (a *MA) Notify(module core.ModuleRef, kind, detail string) error {
	return a.send(msg.MustNew(msg.TypeNotify, string(a.dev), msg.NMName, 0,
		msg.Notify{Module: module, Kind: kind, Detail: detail}))
}

// QueryFields implements Services: remote listFieldsAndValues via the NM.
func (a *MA) QueryFields(requester, target core.ModuleRef, component string) (map[string]string, error) {
	a.mu.Lock()
	a.reqSeq++
	id := a.reqSeq
	ch := make(chan msg.Envelope, 1)
	a.waiters[id] = ch
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.waiters, id)
		a.mu.Unlock()
	}()

	env := msg.MustNew(msg.TypeListFieldsReq, string(a.dev), msg.NMName, id, msg.ListFieldsReq{
		Requester: requester, Target: target, Component: component,
	})
	if err := a.send(env); err != nil {
		return nil, err
	}
	deadline := time.After(a.QueryTimeout)
	var retry <-chan time.Time
	if a.RetryInterval > 0 {
		ticker := time.NewTicker(a.RetryInterval)
		defer ticker.Stop()
		retry = ticker.C
	}
	for {
		select {
		case resp := <-ch:
			if resp.Type == msg.TypeError {
				var e msg.Error
				_ = resp.Decode(&e)
				return nil, fmt.Errorf("device[%s]: listFieldsAndValues(%s): %s", a.dev, target, e.Message)
			}
			var body msg.ListFieldsResp
			if err := resp.Decode(&body); err != nil {
				return nil, err
			}
			return body.Fields, nil
		case <-retry:
			_ = a.send(env)
		case <-deadline:
			return nil, fmt.Errorf("device[%s]: listFieldsAndValues(%s): timeout", a.dev, target)
		}
	}
}

// FieldsChanged implements Services: fire matching triggers.
func (a *MA) FieldsChanged(module core.ModuleRef, component string, fields map[string]string) {
	a.mu.Lock()
	var fire []trigger
	for _, t := range a.triggers {
		if t.Module.Module == module.Module && (t.Component == component || t.Component == "*") {
			fire = append(fire, t)
		}
	}
	a.mu.Unlock()
	for range fire {
		_ = a.send(msg.MustNew(msg.TypeTrigger, string(a.dev), msg.NMName, 0,
			msg.Trigger{Module: module, Component: component, Fields: fields}))
	}
	a.Kick()
}

// Kick implements Services: retry pending switch rules.
func (a *MA) Kick() { a.retryPending() }

func (a *MA) retryPending() {
	for {
		a.mu.Lock()
		pend := a.pending
		a.pending = nil
		a.mu.Unlock()
		if len(pend) == 0 {
			return
		}
		progressed := false
		var still []pendingRule
		for _, pr := range pend {
			err := pr.module.InstallSwitchRule(pr.inst)
			switch {
			case err == nil:
				progressed = true
			case err == ErrPending:
				still = append(still, pr)
			default:
				progressed = true
				a.mu.Lock()
				a.failed = append(a.failed, fmt.Sprintf("%s: %v", pr.inst.ID, err))
				a.mu.Unlock()
			}
		}
		a.mu.Lock()
		a.pending = append(still, a.pending...)
		a.mu.Unlock()
		if !progressed {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Channel handler

// cacheableRequest reports whether env is a mutating request the dedup
// cache should cover. Read-only requests (showPotential, showActual,
// listFields, selfTest) are deliberately excluded: re-executing a read on
// retransmit is harmless and returns fresher state, and caching them
// would serve stale observations to a restarted NM whose envelope IDs
// restart from 1. ID 0 marks fire-and-forget traffic (hello, topology,
// notify, convey) whose delivery the transport already dedups at the
// frame layer.
func cacheableRequest(env msg.Envelope) bool {
	if env.ID == 0 {
		return false
	}
	switch env.Type {
	case msg.TypeCommandBatchReq, msg.TypeCreatePipeReq, msg.TypeCreateSwitchReq,
		msg.TypeCreateFilterReq, msg.TypeDeleteReq, msg.TypeInstallTriggerReq:
		return true
	}
	return false
}

// replyKey identifies a request for dedup. The body hash keeps a
// restarted requester's ID collisions from matching an old entry: only a
// byte-identical retransmission of the same request hits the cache.
func replyKey(req msg.Envelope) string {
	h := fnv.New64a()
	h.Write([]byte(req.Type))
	h.Write([]byte{0})
	h.Write(req.Body)
	return fmt.Sprintf("%s#%d#%x", req.From, req.ID, h.Sum64())
}

// beginRequest consults the dedup cache: a completed duplicate yields the
// cached reply to resend, an in-flight duplicate is dropped, and a fresh
// request is marked in flight.
func (a *MA) beginRequest(env msg.Envelope) (cached msg.Envelope, resend, drop bool) {
	key := replyKey(env)
	a.mu.Lock()
	defer a.mu.Unlock()
	if r, ok := a.replies[key]; ok {
		return r, true, false
	}
	if a.inflight[key] {
		return msg.Envelope{}, false, true
	}
	a.inflight[key] = true
	return msg.Envelope{}, false, false
}

// finishRequest records the reply for req and evicts the oldest cache
// entry beyond maxReplyCache.
func (a *MA) finishRequest(req, reply msg.Envelope) {
	if !cacheableRequest(req) {
		return
	}
	key := replyKey(req)
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.inflight, key)
	if _, dup := a.replies[key]; dup {
		return
	}
	a.replies[key] = reply
	a.replyOrder = append(a.replyOrder, key)
	if len(a.replyOrder) > maxReplyCache {
		delete(a.replies, a.replyOrder[0])
		a.replyOrder = a.replyOrder[1:]
	}
}

func (a *MA) handle(env msg.Envelope) {
	if cacheableRequest(env) {
		if cached, resend, drop := a.beginRequest(env); resend {
			_ = a.send(cached)
			return
		} else if drop {
			return
		}
	}
	switch env.Type {
	case msg.TypeShowPotentialReq:
		mods := a.Modules()
		abs := make([]core.Abstraction, 0, len(mods))
		for _, m := range mods {
			abs = append(abs, m.Abstraction())
		}
		a.reply(env, msg.TypeShowPotentialResp, msg.ShowPotentialResp{Modules: abs})

	case msg.TypeShowActualReq:
		mods := a.Modules()
		states := make([]core.ModuleState, 0, len(mods))
		for _, m := range mods {
			states = append(states, m.Actual())
		}
		a.reply(env, msg.TypeShowActualResp, msg.ShowActualResp{Modules: states})

	case msg.TypeCommandBatchReq:
		var batch msg.CommandBatchReq
		if err := env.Decode(&batch); err != nil {
			a.replyErr(env, "bad batch: %v", err)
			return
		}
		resp := msg.CommandBatchResp{
			Errors:  make([]string, len(batch.Items)),
			Results: make([]msg.CommandItemResult, len(batch.Items)),
		}
		for i, item := range batch.Items {
			res, err := a.execItem(item)
			if err != nil {
				resp.Errors[i] = err.Error()
			}
			resp.Results[i] = res
			a.retryPending()
		}
		a.reply(env, msg.TypeCommandBatchResp, resp)

	case msg.TypeCreatePipeReq:
		var body msg.CreatePipeReq
		if err := env.Decode(&body); err != nil {
			a.replyErr(env, "bad create.pipe: %v", err)
			return
		}
		id, err := a.createPipe("", body.Req)
		if err != nil {
			a.replyErr(env, "%v", err)
			return
		}
		a.retryPending()
		a.reply(env, msg.TypeCreatePipeResp, msg.CreatePipeResp{Pipe: id})

	case msg.TypeCreateSwitchReq:
		var body msg.CreateSwitchReq
		if err := env.Decode(&body); err != nil {
			a.replyErr(env, "bad create.switch: %v", err)
			return
		}
		id, _, err := a.createSwitch(body)
		if err != nil {
			a.replyErr(env, "%v", err)
			return
		}
		a.retryPending()
		a.reply(env, msg.TypeCreateSwitchResp, msg.CreateSwitchResp{RuleID: id})

	case msg.TypeCreateFilterReq:
		var body msg.CreateFilterReq
		if err := env.Decode(&body); err != nil {
			a.replyErr(env, "bad create.filter: %v", err)
			return
		}
		id, err := a.createFilter(body)
		if err != nil {
			a.replyErr(env, "%v", err)
			return
		}
		a.reply(env, msg.TypeCreateFilterResp, msg.CreateFilterResp{RuleID: id})

	case msg.TypeDeleteReq:
		var body msg.DeleteReq
		if err := env.Decode(&body); err != nil {
			a.replyErr(env, "bad delete: %v", err)
			return
		}
		if err := a.deleteComponent(body.Req); err != nil {
			a.replyErr(env, "%v", err)
			return
		}
		a.reply(env, msg.TypeDeleteResp, msg.DeleteResp{})

	case msg.TypeConvey:
		var body msg.Convey
		if err := env.Decode(&body); err != nil {
			return
		}
		m, ok := a.LocalModule(body.ToModule.Module)
		if !ok {
			return
		}
		_ = m.HandleConvey(body.FromModule, body.Kind, body.Body)
		a.retryPending()

	case msg.TypeListFieldsReq:
		var body msg.ListFieldsReq
		if err := env.Decode(&body); err != nil {
			a.replyErr(env, "bad listFields: %v", err)
			return
		}
		m, ok := a.LocalModule(body.Target.Module)
		if !ok {
			a.replyErr(env, "no module %q", body.Target.Module)
			return
		}
		fields, err := m.ListFields(body.Component)
		if err != nil {
			a.replyErr(env, "%v", err)
			return
		}
		a.reply(env, msg.TypeListFieldsResp, msg.ListFieldsResp{
			Target: body.Target, Component: body.Component, Fields: fields,
		})

	case msg.TypeListFieldsResp, msg.TypeError:
		a.mu.Lock()
		ch, ok := a.waiters[env.ID]
		a.mu.Unlock()
		if ok {
			select {
			case ch <- env:
			default:
			}
		}

	case msg.TypeInstallTriggerReq:
		var body msg.InstallTriggerReq
		if err := env.Decode(&body); err != nil {
			a.replyErr(env, "bad installTrigger: %v", err)
			return
		}
		a.mu.Lock()
		// Installing the same watch twice is idempotent: the NM
		// re-requests triggers on every Apply, and duplicates would
		// multiply every fired event.
		var id string
		for _, t := range a.triggers {
			if t.Module == body.Module && t.Component == body.Component {
				id = t.ID
				break
			}
		}
		if id == "" {
			a.trigSeq++
			id = fmt.Sprintf("%s-t%d", a.dev, a.trigSeq)
			a.triggers = append(a.triggers, trigger{ID: id, Module: body.Module, Component: body.Component})
		}
		a.mu.Unlock()
		a.reply(env, msg.TypeInstallTriggerResp, msg.InstallTriggerResp{TriggerID: id})

	case msg.TypeSelfTestReq:
		var body msg.SelfTestReq
		if err := env.Decode(&body); err != nil {
			a.replyErr(env, "bad selfTest: %v", err)
			return
		}
		m, ok := a.LocalModule(body.Module.Module)
		if !ok {
			a.replyErr(env, "no module %q", body.Module.Module)
			return
		}
		ok2, detail := m.SelfTest(body.Pipe)
		a.reply(env, msg.TypeSelfTestResp, msg.SelfTestResp{OK: ok2, Detail: detail})
	}
}

func (a *MA) reply(req msg.Envelope, t msg.Type, body any) {
	env, err := msg.New(t, string(a.dev), req.From, req.ID, body)
	if err != nil {
		// Unmarshalable reply body: clear the in-flight mark so a
		// retransmit gets to retry rather than being dropped forever.
		a.mu.Lock()
		delete(a.inflight, replyKey(req))
		a.mu.Unlock()
		return
	}
	a.finishRequest(req, env)
	_ = a.send(env)
}

func (a *MA) replyErr(req msg.Envelope, format string, args ...any) {
	env := msg.Errorf(req, string(a.dev), format, args...)
	a.finishRequest(req, env)
	_ = a.send(env)
}

// ---------------------------------------------------------------------------
// Primitive execution

func (a *MA) execItem(item msg.CommandItem) (msg.CommandItemResult, error) {
	switch {
	case item.Pipe != nil:
		id, err := a.createPipe(item.Pipe.ID, item.Pipe.Req)
		return msg.CommandItemResult{PipeID: id}, err
	case item.Switch != nil:
		id, pending, err := a.createSwitch(*item.Switch)
		return msg.CommandItemResult{RuleID: id, Pending: pending}, err
	case item.Filter != nil:
		id, err := a.createFilter(*item.Filter)
		return msg.CommandItemResult{RuleID: id}, err
	case item.Delete != nil:
		return msg.CommandItemResult{}, a.deleteComponent(item.Delete.Req)
	}
	return msg.CommandItemResult{}, fmt.Errorf("device[%s]: empty command item", a.dev)
}

func (a *MA) createPipe(id core.PipeID, req core.PipeRequest) (core.PipeID, error) {
	upper, ok := a.LocalModule(req.Upper.Module)
	if !ok {
		return "", fmt.Errorf("device[%s]: no module %s", a.dev, req.Upper)
	}
	lower, ok := a.LocalModule(req.Lower.Module)
	if !ok {
		return "", fmt.Errorf("device[%s]: no module %s", a.dev, req.Lower)
	}
	upAbs, downAbs := upper.Abstraction(), lower.Abstraction()
	if !upAbs.Down.CanConnect(downAbs.Ref.Name) {
		return "", fmt.Errorf("device[%s]: %s cannot have a down pipe to %s", a.dev, req.Upper, req.Lower)
	}
	if !downAbs.Up.CanConnect(upAbs.Ref.Name) {
		return "", fmt.Errorf("device[%s]: %s cannot have an up pipe to %s", a.dev, req.Lower, req.Upper)
	}
	// Every declared dependency for this pipe must be satisfied.
	deps := append(append([]core.Dependency(nil), upAbs.Down.Dependencies...), downAbs.Up.Dependencies...)
	for _, d := range deps {
		if !dependencySatisfied(d, req.Satisfy) {
			return "", fmt.Errorf("device[%s]: dependency %q of pipe %s/%s not satisfied",
				a.dev, d.Description, req.Upper, req.Lower)
		}
	}

	a.mu.Lock()
	if id == "" {
		id = core.PipeID(fmt.Sprintf("P%d", a.pipeSeq))
		a.pipeSeq++
	}
	if _, dup := a.pipes[id]; dup {
		a.mu.Unlock()
		return "", fmt.Errorf("device[%s]: pipe %s already exists", a.dev, id)
	}
	p := &Pipe{
		ID: id, Upper: req.Upper, Lower: req.Lower,
		UpperPeer: req.UpperPeer, LowerPeer: req.LowerPeer,
		Satisfy: req.Satisfy, Status: core.PipeUp,
	}
	a.pipes[id] = p
	a.mu.Unlock()

	// Attach the lower module first: the upper module's attachment logic
	// may immediately query the lower end (e.g. MPLS asking the ETH below
	// for its interface to include a link address in its label exchange).
	if err := lower.PipeAttached(p, SideLower); err != nil {
		a.mu.Lock()
		delete(a.pipes, id)
		a.mu.Unlock()
		return "", err
	}
	if err := upper.PipeAttached(p, SideUpper); err != nil {
		_ = lower.PipeDeleted(p, SideLower)
		a.mu.Lock()
		delete(a.pipes, id)
		a.mu.Unlock()
		return "", err
	}
	return id, nil
}

func dependencySatisfied(d core.Dependency, choices []core.DependencyChoice) bool {
	for _, c := range choices {
		if d.Token != "" && c.Token == d.Token {
			return true
		}
		if d.Kind == core.DepTradeoff && c.Tradeoff != "" {
			return true
		}
		if d.Kind == core.DepExternalState && (c.Value != "" || c.Provider != "") {
			return true
		}
	}
	return false
}

func (a *MA) createSwitch(body msg.CreateSwitchReq) (string, bool, error) {
	m, ok := a.LocalModule(body.Rule.Module.Module)
	if !ok {
		return "", false, fmt.Errorf("device[%s]: no module %s", a.dev, body.Rule.Module)
	}
	if _, ok := a.PipeByID(body.Rule.From); !ok {
		return "", false, fmt.Errorf("device[%s]: switch rule references unknown pipe %s", a.dev, body.Rule.From)
	}
	if _, ok := a.PipeByID(body.Rule.To); !ok {
		return "", false, fmt.Errorf("device[%s]: switch rule references unknown pipe %s", a.dev, body.Rule.To)
	}
	a.mu.Lock()
	a.ruleSeq++
	inst := &SwitchRuleInstance{
		ID:            fmt.Sprintf("%s-sw%d", a.dev, a.ruleSeq),
		Rule:          body.Rule,
		MatchResolved: body.MatchResolved,
		ViaResolved:   body.ViaResolved,
	}
	a.mu.Unlock()

	err := m.InstallSwitchRule(inst)
	if err == ErrPending {
		a.mu.Lock()
		a.pending = append(a.pending, pendingRule{module: m, inst: inst})
		a.mu.Unlock()
		return inst.ID, true, nil
	}
	if err != nil {
		return "", false, err
	}
	return inst.ID, false, nil
}

func (a *MA) createFilter(body msg.CreateFilterReq) (string, error) {
	m, ok := a.LocalModule(body.Rule.Module.Module)
	if !ok {
		return "", fmt.Errorf("device[%s]: no module %s", a.dev, body.Rule.Module)
	}
	a.mu.Lock()
	a.ruleSeq++
	inst := &FilterRuleInstance{
		ID:   fmt.Sprintf("%s-f%d", a.dev, a.ruleSeq),
		Rule: body.Rule,
	}
	a.mu.Unlock()
	if err := m.InstallFilterRule(inst); err != nil {
		return "", err
	}
	return inst.ID, nil
}

func (a *MA) deleteComponent(req core.DeleteRequest) error {
	m, ok := a.LocalModule(req.Module.Module)
	if !ok {
		return fmt.Errorf("device[%s]: no module %s", a.dev, req.Module)
	}
	switch req.Kind {
	case core.ComponentPipe:
		a.mu.Lock()
		p, ok := a.pipes[core.PipeID(req.ID)]
		if ok && !p.Physical {
			delete(a.pipes, core.PipeID(req.ID))
		}
		a.mu.Unlock()
		if !ok {
			return fmt.Errorf("device[%s]: no pipe %s", a.dev, req.ID)
		}
		if p.Physical {
			return fmt.Errorf("device[%s]: physical pipe %s cannot be deleted, only disabled", a.dev, req.ID)
		}
		upper, uok := a.LocalModule(p.Upper.Module)
		lower, lok := a.LocalModule(p.Lower.Module)
		if uok {
			_ = upper.PipeDeleted(p, SideUpper)
		}
		if lok {
			_ = lower.PipeDeleted(p, SideLower)
		}
		// Unsolicited event so the NM learns about deletions it did not
		// itself order (a killed pipe heals autonomously, §II-E).
		_ = a.Notify(p.Lower, "pipe-deleted", string(p.ID))
		return nil
	case core.ComponentSwitchRule, core.ComponentFilterRule:
		// Modules own rule teardown.
		type ruleDeleter interface{ DeleteRule(id string) error }
		if rd, ok := m.(ruleDeleter); ok {
			return rd.DeleteRule(req.ID)
		}
		return ErrUnsupported
	}
	return fmt.Errorf("device[%s]: delete of %s unsupported", a.dev, req.Kind)
}
