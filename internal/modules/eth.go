// Package modules implements the CONMan protocol modules of the paper's
// §III as wrappers around the simulated device kernel: ETH, IP (IPv4),
// GRE, MPLS and VLAN, plus application modules and the IPsec/IKE
// control-module pair. Each module self-describes through the generic
// module abstraction, derives its own low-level parameters by talking to
// peer modules through the NM (conveyMessage / listFieldsAndValues), and
// translates abstract pipes and switch rules into device-level
// configuration — keeping every protocol detail out of the management
// plane.
package modules

import (
	"fmt"
	"strconv"
	"sync"

	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
)

// ETH models an Ethernet module. On a router it wraps one NIC
// ([phy=>up]/[up=>phy]); on an L2 switch one ETH module covers all ports
// and additionally offers [phy=>phy] and the [phy=>down]/[down=>phy] pair
// used with a VLAN module (Fig 9).
type ETH struct {
	device.BaseModule

	mu        sync.Mutex
	isSwitch  bool
	ifaces    []string               // kernel port names
	physPipes map[core.PipeID]string // physical pipe id -> iface
	external  map[core.PipeID]bool
	upPipes   map[core.PipeID]*device.Pipe
	rules     []*device.SwitchRuleInstance
	// ruleUndo maps an installed rule's id to the action undoing the
	// CatOS port configuration it emitted (nil for router NIC rules).
	ruleUndo map[string]func()
	// vlanRefs counts installed rules per emitted CatOS port config.
	// Several intents' paths may ride the same (port, vid) membership —
	// the kernel state is shared, so only the last rule out may clear
	// it. A boolean here once let a rerouted intent's teardown strip a
	// membership another intent still depended on, with every module
	// still reporting its rules installed: converged control plane,
	// black-holed data plane.
	vlanRefs map[string]int
}

// NewETH creates an Ethernet module. For routers pass a single interface;
// for switches pass every port. Physical pipes are registered with the MA
// under the ids "Phy-<iface>".
func NewETH(svc device.Services, id core.ModuleID, isSwitch bool, ifaces ...string) *ETH {
	e := &ETH{
		BaseModule: device.BaseModule{
			ModRef: core.Ref(core.NameETH, svc.Device(), id),
			Svc:    svc,
		},
		isSwitch:  isSwitch,
		ifaces:    append([]string(nil), ifaces...),
		physPipes: make(map[core.PipeID]string),
		external:  make(map[core.PipeID]bool),
		upPipes:   make(map[core.PipeID]*device.Pipe),
		ruleUndo:  make(map[string]func()),
		vlanRefs:  make(map[string]int),
	}
	return e
}

// RegisterPhysical registers the module's physical pipes with the MA and
// marks external (customer-facing) ports. Call once after construction.
func (e *ETH) RegisterPhysical(ma *device.MA, externalIfaces ...string) {
	ext := make(map[string]bool, len(externalIfaces))
	for _, i := range externalIfaces {
		ext[i] = true
	}
	for _, iface := range e.ifaces {
		id := PhysPipeID(iface)
		p := &device.Pipe{
			ID:       id,
			Lower:    e.Ref(), // the ETH module owns its physical pipes
			Status:   core.PipeUp,
			Physical: true,
			Iface:    iface,
			External: ext[iface],
		}
		e.mu.Lock()
		e.physPipes[id] = iface
		e.external[id] = ext[iface]
		e.mu.Unlock()
		ma.RegisterPhysicalPipe(p)
	}
}

// PhysPipeID names the physical pipe of an interface.
func PhysPipeID(iface string) core.PipeID {
	return core.PipeID("Phy-" + iface)
}

// Abstraction implements device.Module (paper Table II/IV).
func (e *ETH) Abstraction() core.Abstraction {
	e.mu.Lock()
	defer e.mu.Unlock()
	a := core.Abstraction{
		Ref:      e.Ref(),
		Kind:     core.KindData,
		Peerable: []core.ModuleName{core.NameETH},
		Up:       core.PipeSpec{Connectable: []core.ModuleName{core.NameIPv4, core.NameMPLS, core.NameVLAN}},
		Filter: core.FilterSpec{
			Classifiers: []core.FilterClassifier{core.FilterByPipe},
			Locations:   []core.PipeEnd{core.EndPhy},
		},
		PerfReporting: []string{"rx-packets/pipe", "tx-packets/pipe"},
	}
	if e.isSwitch {
		a.Down = core.PipeSpec{Connectable: []core.ModuleName{core.NameVLAN}}
		a.Switch = core.SwitchSpec{
			Modes: []core.SwitchMode{
				core.SwPhyUp, core.SwUpPhy, core.SwPhyPhy, core.SwPhyDown, core.SwDownPhy,
			},
			Multicast:   true,
			StateSource: core.StateLocal,
		}
	} else {
		a.Switch = core.SwitchSpec{
			Modes:       []core.SwitchMode{core.SwPhyUp, core.SwUpPhy},
			StateSource: core.StateLocal,
		}
	}
	for id, iface := range e.physPipes {
		a.Physical = append(a.Physical, core.PhysicalPipeInfo{
			Pipe:     id,
			Enabled:  true,
			External: e.external[id],
			// Peer fields are filled by the NM from topology reports.
		})
		_ = iface
	}
	sortPhysical(a.Physical)
	return a
}

func sortPhysical(ps []core.PhysicalPipeInfo) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].Pipe < ps[j-1].Pipe; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// Actual implements device.Module.
func (e *ETH) Actual() core.ModuleState {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := core.ModuleState{Ref: e.Ref(), LowLevel: map[string]string{}}
	for id, iface := range e.physPipes {
		rx, tx := e.Svc.Kernel().IfaceCounters(iface)
		st.Pipes = append(st.Pipes, core.PipeState{
			ID: id, End: core.EndPhy, Status: core.PipeUp, RxPkts: rx, TxPkts: tx,
		})
		st.LowLevel["iface:"+iface] = iface
	}
	for id, p := range e.upPipes {
		// Peer is this (lower) module's own remote peer, matching how
		// every other module reports its pipes.
		st.Pipes = append(st.Pipes, core.PipeState{
			ID: id, End: core.EndUp, Other: p.Upper, Peer: p.LowerPeer, Status: p.Status,
		})
	}
	for _, r := range e.rules {
		st.SwitchRules = append(st.SwitchRules, core.SwitchRuleState{
			ID: r.ID, From: r.Rule.From, To: r.Rule.To, Match: r.Rule.Match, Via: r.Rule.Via,
			MatchResolved: r.MatchResolved, ViaResolved: r.ViaResolved,
		})
	}
	return st
}

// PipeAttached implements device.Module.
func (e *ETH) PipeAttached(p *device.Pipe, side device.PipeSide) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch side {
	case device.SideLower:
		// Something above us (IP, MPLS, VLAN).
		e.upPipes[p.ID] = p
	case device.SideUpper:
		// Only switch ETH modules accept a module "below" them (the VLAN
		// dance of Fig 9b); nothing to do until the switch rule.
		if !e.isSwitch {
			return fmt.Errorf("%s: router ETH has no down pipes", e.Ref())
		}
	}
	return nil
}

// PipeDeleted implements device.Module: switch rules referencing the
// pipe go with it, undoing any port configuration they emitted.
func (e *ETH) PipeDeleted(p *device.Pipe, side device.PipeSide) error {
	e.mu.Lock()
	delete(e.upPipes, p.ID)
	var undos []func()
	kept := e.rules[:0]
	for _, r := range e.rules {
		if r.Rule.From == p.ID || r.Rule.To == p.ID {
			if u := e.ruleUndo[r.ID]; u != nil {
				undos = append(undos, u)
			}
			delete(e.ruleUndo, r.ID)
			continue
		}
		kept = append(kept, r)
	}
	e.rules = kept
	e.mu.Unlock()
	for _, u := range undos {
		u()
	}
	return nil
}

// DeleteRule removes a switch rule by id (invoked via delete()),
// undoing its port configuration.
func (e *ETH) DeleteRule(id string) error {
	e.mu.Lock()
	for i, r := range e.rules {
		if r.ID != id {
			continue
		}
		e.rules = append(e.rules[:i], e.rules[i+1:]...)
		undo := e.ruleUndo[id]
		delete(e.ruleUndo, id)
		e.mu.Unlock()
		if undo != nil {
			undo()
		}
		return nil
	}
	e.mu.Unlock()
	return fmt.Errorf("%s: no switch rule %q", e.Ref(), id)
}

// ifaceOf resolves a physical pipe id to its kernel interface.
func (e *ETH) ifaceOf(pipe core.PipeID) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	i, ok := e.physPipes[pipe]
	return i, ok
}

// InstallSwitchRule implements device.Module. Router NIC rules ([up-pipe,
// phys-pipe]) need no kernel action — the routed interface is already
// live. Switch rules involving a VLAN module translate to CatOS port
// configuration once the VLAN module has settled on a VID.
func (e *ETH) InstallSwitchRule(r *device.SwitchRuleInstance) error {
	from, ok1 := e.Svc.PipeByID(r.Rule.From)
	to, ok2 := e.Svc.PipeByID(r.Rule.To)
	if !ok1 || !ok2 {
		return fmt.Errorf("%s: switch rule references unknown pipes", e.Ref())
	}
	phys, other := from, to
	if !phys.Physical {
		phys, other = to, from
	}
	if !phys.Physical {
		return fmt.Errorf("%s: ETH switch rules must involve a physical pipe", e.Ref())
	}
	if other.Physical && e.isSwitch {
		// [phy => phy] transit switching of tagged frames: the port VLAN
		// membership is protocol state only the VLAN module knows; a
		// path that bypasses it cannot be configured (the NM then picks
		// the canonical path through the VLAN module instead).
		return fmt.Errorf("%s: transit [phy => phy] switching needs the VLAN module in the path", e.Ref())
	}
	iface, ok := e.ifaceOf(phys.ID)
	if !ok {
		return fmt.Errorf("%s: physical pipe %s is not mine", e.Ref(), phys.ID)
	}

	// Which module is on the other side of the non-physical pipe?
	var counterpart core.ModuleRef
	if other.Upper.Module == e.Ref().Module {
		counterpart = other.Lower
	} else {
		counterpart = other.Upper
	}

	var undo func()
	if counterpart.Name == core.NameVLAN && e.isSwitch {
		var err error
		undo, err = e.installVLANPortRule(r, iface, counterpart)
		if err != nil {
			return err
		}
	}
	e.mu.Lock()
	e.rules = append(e.rules, r)
	if undo != nil {
		e.ruleUndo[r.ID] = undo
	}
	e.mu.Unlock()
	return nil
}

// installVLANPortRule emits the CatOS port configuration for one side of
// a VLAN tunnel: rules classified "Tagged" mark the customer-facing QinQ
// tunnel port; unclassified rules mark trunk membership (Fig 9). The
// returned undo clears the port configuration this rule emitted.
func (e *ETH) installVLANPortRule(r *device.SwitchRuleInstance, iface string, vlanMod core.ModuleRef) (func(), error) {
	fields, err := e.Svc.LocalFields(vlanMod.Module, "self")
	if err != nil {
		return nil, err
	}
	vidStr := fields["vid"]
	if vidStr == "" {
		return nil, device.ErrPending // VID not negotiated yet
	}
	vid, err := strconv.Atoi(vidStr)
	if err != nil {
		return nil, fmt.Errorf("%s: bad vid %q from %s", e.Ref(), vidStr, vlanMod)
	}
	k := e.Svc.Kernel()

	key := fmt.Sprintf("%s/%d/%v", iface, vid, r.Rule.Match != nil)
	e.mu.Lock()
	e.vlanRefs[key]++
	first := e.vlanRefs[key] == 1
	e.mu.Unlock()

	// release drops this rule's claim on the port config and reports
	// whether it was the last one; only then may the kernel state go.
	release := func() bool {
		e.mu.Lock()
		defer e.mu.Unlock()
		e.vlanRefs[key]--
		if e.vlanRefs[key] <= 0 {
			delete(e.vlanRefs, key)
			return true
		}
		return false
	}
	undo := func() {
		if release() {
			k.ClearPortVLAN(iface, uint16(vid))
		}
	}
	if !first {
		// The port config is already emitted on another rule's behalf;
		// this rule only holds a reference so teardown of one intent's
		// path cannot strip a membership a co-riding intent still uses.
		return undo, nil
	}

	if r.Rule.Match != nil && r.Rule.Match.Kind == "tagged" {
		// Customer-facing QinQ tunnel port.
		script := fmt.Sprintf("interface %s\nswitchport access vlan %d\nswitchport mode dot1q-tunnel\nexit", iface, vid)
		if _, err := k.ExecScript(script); err != nil {
			release()
			return nil, err
		}
		return undo, nil
	}
	// Trunk membership toward the next switch — unless the port is
	// already a customer tunnel/access port (the reverse rule of a
	// [Phy, Tagged => P] pair names the same port and must not
	// reconfigure it).
	if mode, _ := k.PortModeOf(iface); mode == kernel.ModeDot1qTunnel || mode == kernel.ModeAccess {
		release()
		return nil, nil
	}
	if _, err := k.Exec(fmt.Sprintf("set vlan %d %s", vid, iface)); err != nil {
		release()
		return nil, err
	}
	return undo, nil
}

// ListFields implements device.Module: physical pipe (or up-pipe) to
// interface-level fields.
func (e *ETH) ListFields(component string) (map[string]string, error) {
	if len(component) > 5 && component[:5] == "pipe:" {
		component = component[5:]
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if iface, ok := e.physPipes[core.PipeID(component)]; ok {
		return e.fieldsForIface(iface)
	}
	// A router NIC has exactly one interface: any up-pipe (even one still
	// being attached) or "self" maps onto it.
	if !e.isSwitch && len(e.ifaces) == 1 {
		return e.fieldsForIface(e.ifaces[0])
	}
	return nil, fmt.Errorf("%s: unknown component %q", e.Ref(), component)
}

func (e *ETH) fieldsForIface(iface string) (map[string]string, error) {
	out := map[string]string{"dev": iface}
	if mac, ok := e.Svc.Kernel().PortMAC(iface); ok {
		out["mac"] = mac.String()
	}
	return out, nil
}

// SelfTest implements device.Module: checks the physical pipe is attached
// and carrying frames.
func (e *ETH) SelfTest(pipe core.PipeID) (bool, string) {
	iface, ok := e.ifaceOf(pipe)
	if !ok {
		return false, fmt.Sprintf("no physical pipe %s", pipe)
	}
	rx, tx := e.Svc.Kernel().IfaceCounters(iface)
	return true, fmt.Sprintf("iface %s rx=%d tx=%d", iface, rx, tx)
}
