package modules_test

import (
	"testing"

	"conman/internal/channel"
	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
	"conman/internal/modules"
	"conman/internal/msg"
	"conman/internal/netsim"
	"conman/internal/nm"
)

// TestIPSecIKEControlModuleDependency reproduces Fig 1 / §II-F: the IPSec
// data module advertises an external-state security dependency; the IKE
// control module advertises that it provides it; the NM wires the two by
// naming the provider in the pipe's dependency choice, and the IKE peers
// negotiate a shared key over the management channel.
func TestIPSecIKEControlModuleDependency(t *testing.T) {
	net := netsim.New()
	hub := channel.NewHub()
	manager := nm.New()
	manager.AttachChannel(hub.Endpoint(msg.NMName))

	mk := func(id core.DeviceID) (*device.Device, *modules.IPSec, *modules.IKE) {
		d, err := device.New(net, id, kernel.RoleRouter, "eth0")
		if err != nil {
			t.Fatal(err)
		}
		ipm, err := modules.NewIP(d.MA, "ip", "ISP", nil)
		if err != nil {
			t.Fatal(err)
		}
		ipm.AllowConnectable(core.NameIPSec)
		d.AddModule(ipm)
		sec := modules.NewIPSec(d.MA, "sec")
		d.AddModule(sec)
		ike := modules.NewIKE(d.MA, "ike")
		d.AddModule(ike)
		d.MA.AttachChannel(hub.Endpoint(string(id)))
		if err := d.MA.Start(); err != nil {
			t.Fatal(err)
		}
		return d, sec, ike
	}
	_, secA, _ := mk("A")
	_, secB, _ := mk("B")

	// The NM can match the dependency to the provider without protocol
	// knowledge: token equality between StateDependency and ProvidesState.
	absA, err := manager.ShowPotential("A")
	if err != nil {
		t.Fatal(err)
	}
	var dep *core.Dependency
	var provider core.ModuleRef
	for _, a := range absA {
		if a.Security.StateDependency != nil {
			dep = a.Security.StateDependency
		}
		for _, tok := range a.ProvidesState {
			if dep != nil && tok == dep.Token {
				provider = a.Ref
			}
		}
	}
	if dep == nil || provider.IsZero() {
		t.Fatalf("dependency/provider matching failed: dep=%v provider=%v", dep, provider)
	}
	if provider != core.Ref(core.NameIKE, "A", "ike") {
		t.Fatalf("provider = %v", provider)
	}

	// Create the IPSec pipes on both devices, naming the provider.
	mkPipe := func(dev core.DeviceID, peerDev core.DeviceID, prov core.ModuleRef) {
		resp, err := manager.ExecuteBatch(dev, []msg.CommandItem{
			{Pipe: &msg.CreatePipeItem{ID: "P0", Req: core.PipeRequest{
				Upper:     core.Ref(core.NameIPv4, dev, "ip"),
				Lower:     core.Ref(core.NameIPSec, dev, "sec"),
				LowerPeer: core.Ref(core.NameIPSec, peerDev, "sec"),
				Satisfy: []core.DependencyChoice{{
					Token: modules.IPSecKeyToken, Provider: prov.String(),
				}},
			}}},
			{Pipe: &msg.CreatePipeItem{ID: "P1", Req: core.PipeRequest{
				Upper: core.Ref(core.NameIPSec, dev, "sec"),
				Lower: core.Ref(core.NameIPv4, dev, "ip"),
			}}},
			{Switch: &msg.CreateSwitchReq{Rule: core.SwitchRule{
				Module: core.Ref(core.NameIPSec, dev, "sec"), From: "P0", To: "P1",
			}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range resp.Errors {
			if e != "" {
				t.Fatalf("%s item %d: %s", dev, i, e)
			}
		}
	}
	mkPipe("A", "B", core.Ref(core.NameIKE, "A", "ike"))
	mkPipe("B", "A", core.Ref(core.NameIKE, "B", "ike"))

	// Both sides must have converged on the same SA key, negotiated by
	// the IKE modules — the NM never saw it.
	keyA, okA := secA.SAKey(core.Ref(core.NameIPSec, "B", "sec"))
	keyB, okB := secB.SAKey(core.Ref(core.NameIPSec, "A", "sec"))
	if !okA || !okB {
		t.Fatalf("SA keys missing: A=%v B=%v", okA, okB)
	}
	if keyA != keyB || keyA == 0 {
		t.Fatalf("SA keys diverge: %#x vs %#x", keyA, keyB)
	}
}

// TestIPSecPipeRequiresProvider checks the dependency is enforced.
func TestIPSecPipeRequiresProvider(t *testing.T) {
	net := netsim.New()
	hub := channel.NewHub()
	manager := nm.New()
	manager.AttachChannel(hub.Endpoint(msg.NMName))
	d, err := device.New(net, "A", kernel.RoleRouter, "eth0")
	if err != nil {
		t.Fatal(err)
	}
	ipm, err := modules.NewIP(d.MA, "ip", "ISP", nil)
	if err != nil {
		t.Fatal(err)
	}
	ipm.AllowConnectable(core.NameIPSec)
	d.AddModule(ipm)
	d.AddModule(modules.NewIPSec(d.MA, "sec"))
	d.MA.AttachChannel(hub.Endpoint("A"))
	if err := d.MA.Start(); err != nil {
		t.Fatal(err)
	}
	resp, err := manager.ExecuteBatch("A", []msg.CommandItem{
		{Pipe: &msg.CreatePipeItem{ID: "P0", Req: core.PipeRequest{
			Upper:     core.Ref(core.NameIPv4, "A", "ip"),
			Lower:     core.Ref(core.NameIPSec, "A", "sec"),
			LowerPeer: core.Ref(core.NameIPSec, "B", "sec"),
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK() {
		t.Fatal("IPSec pipe without a key provider must be rejected")
	}
}
