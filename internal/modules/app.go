package modules

import (
	"fmt"
	"net/netip"
	"sync"

	"conman/internal/core"
	"conman/internal/device"
)

// App models an application module (the paper's "<FOO,C,z>" example in
// §II-E): a service listening on a UDP port. Its role in the
// reproduction is to be the abstract endpoint of filter rules — the NM
// says "drop packets going to <FOO,C,z>", and the inspecting module
// resolves the address/port through listFieldsAndValues. Changing the
// port fires the installed triggers so dependent state (filters) is
// updated — the dependency-maintenance scenario of §II-E.
type App struct {
	device.BaseModule

	mu       sync.Mutex
	name     core.ModuleName
	addr     netip.Addr
	port     uint16   // guarded by mu
	received [][]byte // guarded by mu
}

// NewApp creates an application module listening on addr:port.
func NewApp(svc device.Services, name core.ModuleName, id core.ModuleID, addr netip.Addr, port uint16) *App {
	a := &App{
		BaseModule: device.BaseModule{
			ModRef: core.ModuleRef{Name: name, Module: id, Device: svc.Device()},
			Svc:    svc,
		},
		name: name,
		addr: addr,
		port: port,
	}
	a.bind()
	return a
}

func (a *App) bind() {
	port := a.Port()
	// The socket is module-lifetime state: App modules are never torn
	// down, and SetPort rebinds (UnregisterUDP + bind) rather than
	// deletes.
	a.Svc.Kernel().RegisterUDP(port, func(src netip.Addr, sport uint16, payload []byte) { //conmanvet:owned-elsewhere
		a.mu.Lock()
		a.received = append(a.received, append([]byte(nil), payload...))
		a.mu.Unlock()
	})
}

// Port returns the current listening port.
func (a *App) Port() uint16 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.port
}

// Received returns payloads delivered to the app.
func (a *App) Received() [][]byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([][]byte, len(a.received))
	copy(out, a.received)
	return out
}

// SetPort rebinds the app to a new port — "the application was started on
// some other port", the classic dependency break of §I — and fires the
// dependency triggers so the NM can update filters.
func (a *App) SetPort(port uint16) {
	a.mu.Lock()
	old := a.port
	a.port = port
	a.mu.Unlock()
	a.Svc.Kernel().UnregisterUDP(old)
	a.bind()
	a.Svc.FieldsChanged(a.Ref(), "self", map[string]string{
		"address": a.addr.String(),
		"port":    fmt.Sprintf("%d", port),
	})
}

// Abstraction implements device.Module.
func (a *App) Abstraction() core.Abstraction {
	return core.Abstraction{
		Ref:      a.Ref(),
		Kind:     core.KindApplication,
		Down:     core.PipeSpec{Connectable: []core.ModuleName{core.NameUDP, core.NameIPv4}},
		Peerable: []core.ModuleName{a.name},
		Switch: core.SwitchSpec{
			Modes:       []core.SwitchMode{core.SwUpDown, core.SwDownUp},
			StateSource: core.StateLocal,
		},
	}
}

// Actual implements device.Module.
func (a *App) Actual() core.ModuleState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return core.ModuleState{
		Ref: a.Ref(),
		LowLevel: map[string]string{
			"address": a.addr.String(),
			"port":    fmt.Sprintf("%d", a.port),
			"proto":   "udp",
		},
	}
}

// ListFields implements device.Module: this is what inspecting modules
// ask for when resolving abstract filter rules (§II-E).
func (a *App) ListFields(component string) (map[string]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return map[string]string{
		"address": a.addr.String(),
		"port":    fmt.Sprintf("%d", a.port),
		"proto":   "udp",
	}, nil
}
