package modules

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"sync"

	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
)

// IGP is a routing control module (paper §II-F): like a real routing
// daemon it wraps the kernel's routing table, floods link-state
// advertisements to its peer IGP modules — over the module-to-module
// management channel, standing in for the protocol's own link-local
// packets — and installs the transit routes that make multi-hop IP
// forwarding work. The NM never sees a route: it only creates one pipe
// per adjacency (Upper = IGP, Lower = the co-located IP module, peers =
// the neighbouring IGP/IP pair), exactly as it names IKE as the provider
// of IPSec's keying dependency. Deleting the pipes withdraws the routes
// the module owns.
//
// # Protocol
//
// Each module originates a sequence-numbered LSA describing its router:
// the kernel's connected subnets (with the router's host address on
// each, so neighbours can resolve next hops by subnet matching) and the
// set of adjacent IGP modules. LSAs flood reliably over the adjacency
// graph with duplicate suppression on (origin, seq); convergence is
// deterministic because acceptance depends only on sequence numbers,
// never on arrival order. Route computation is a breadth-first shortest
// path over the *bidirectionally confirmed* adjacency graph (an edge
// exists only if both ends advertise it), so a cut link disappears as
// soon as either end re-originates, and an unreachable router's subnets
// are withdrawn even while its stale LSA lingers in the database.
type IGP struct {
	device.BaseModule

	mu sync.Mutex
	// adjs maps this module's down pipes to their adjacencies.
	adjs map[core.PipeID]*igpAdj // guarded by mu
	// lsdb is the link-state database, keyed by origin module ref.
	lsdb map[string]*igpLSA // guarded by mu
	// seq is the sequence number of this module's own LSA.
	seq uint64
	// installed tracks the kernel routes this module owns, keyed by
	// dst|via|dev, so recomputation withdraws exactly the stale ones.
	installed map[string]kernel.Route // guarded by mu
}

// igpAdj is one adjacency derived from an NM-created pipe (keyed by
// the pipe id in IGP.adjs).
type igpAdj struct {
	nbr core.ModuleRef // neighbouring IGP module
}

// IPRouteToken is the dependency token linking the IP module's transit
// switching state to a routing control module, mirroring IPSecKeyToken.
const IPRouteToken = "ipv4-routes"

// igpUpdate is the convey body: a batch of LSAs, like a real IGP's
// Link State Update packet. Batching matters — a database sync or a
// multi-LSA reflood costs one management-channel round trip instead of
// one per LSA, which keeps the flooding traffic linear in what actually
// changed.
type igpUpdate struct {
	LSAs []*igpLSA `json:"lsas"`
}

// igpLSA is the flooded link-state advertisement.
type igpLSA struct {
	Origin string   `json:"origin"` // ModuleRef.String() of the advertiser
	Seq    uint64   `json:"seq"`
	Addrs  []string `json:"addrs"`     // host addresses with prefix length
	Nbrs   []string `json:"neighbors"` // adjacent IGP module refs

	// prefixes is the parsed form of Addrs, filled on store (unexported,
	// so it never rides the wire).
	prefixes []netip.Prefix
}

func (l *igpLSA) parse() {
	l.prefixes = l.prefixes[:0]
	for _, a := range l.Addrs {
		if p, err := netip.ParsePrefix(a); err == nil {
			l.prefixes = append(l.prefixes, p)
		}
	}
}

// NewIGP creates an IGP control module.
func NewIGP(svc device.Services, id core.ModuleID) *IGP {
	return &IGP{
		BaseModule: device.BaseModule{
			ModRef: core.Ref(core.NameIGP, svc.Device(), id),
			Svc:    svc,
		},
		adjs:      make(map[core.PipeID]*igpAdj),
		lsdb:      make(map[string]*igpLSA),
		installed: make(map[string]kernel.Route),
	}
}

// Abstraction implements device.Module: a control module advertising
// that it can provide IPv4 reachability state (§II-F), runnable over an
// IPv4 module below.
func (g *IGP) Abstraction() core.Abstraction {
	return core.Abstraction{
		Ref:           g.Ref(),
		Kind:          core.KindControl,
		Down:          core.PipeSpec{Connectable: []core.ModuleName{core.NameIPv4}},
		Peerable:      []core.ModuleName{core.NameIGP},
		ProvidesState: []string{IPRouteToken},
	}
}

// Actual implements device.Module: the adjacencies (as pipes), the LSDB
// summary and the owned routes, for showActual and reconciliation.
func (g *IGP) Actual() core.ModuleState {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := core.ModuleState{Ref: g.Ref(), LowLevel: map[string]string{}}
	for id, adj := range g.adjs {
		p, ok := g.Svc.PipeByID(id)
		if !ok {
			continue
		}
		st.Pipes = append(st.Pipes, core.PipeState{
			ID: id, End: core.EndDown, Other: p.Lower, Peer: adj.nbr, Status: p.Status,
		})
	}
	sort.Slice(st.Pipes, func(i, j int) bool { return st.Pipes[i].ID < st.Pipes[j].ID })
	for origin, lsa := range g.lsdb {
		st.LowLevel["lsa:"+origin] = fmt.Sprintf("seq=%d addrs=%d nbrs=%d", lsa.Seq, len(lsa.Addrs), len(lsa.Nbrs))
	}
	for key := range g.installed {
		st.LowLevel["route:"+key] = "installed"
	}
	return st
}

// localAddrs lists the kernel's connected interface addresses, excluding
// tunnel interfaces (their state is derived, not topology) in
// deterministic order.
func (g *IGP) localAddrs() []netip.Prefix {
	k := g.Svc.Kernel()
	var out []netip.Prefix
	for _, name := range k.Ifaces() {
		i, ok := k.Iface(name)
		if !ok || i.Kind == kernel.IfaceGRE {
			continue
		}
		out = append(out, i.Addrs...)
	}
	return out
}

// ownLSALocked builds this module's current LSA. Caller holds g.mu.
func (g *IGP) ownLSALocked() *igpLSA {
	lsa := &igpLSA{Origin: g.Ref().String(), Seq: g.seq}
	for _, p := range g.localAddrs() {
		lsa.Addrs = append(lsa.Addrs, p.String())
	}
	sort.Strings(lsa.Addrs)
	seen := map[string]bool{}
	for _, adj := range g.adjs {
		if !seen[adj.nbr.String()] {
			seen[adj.nbr.String()] = true
			lsa.Nbrs = append(lsa.Nbrs, adj.nbr.String())
		}
	}
	sort.Strings(lsa.Nbrs)
	lsa.parse()
	return lsa
}

// neighbors snapshots the distinct adjacent IGP modules. Caller holds g.mu.
func (g *IGP) neighborsLocked() []core.ModuleRef {
	var out []core.ModuleRef
	seen := map[string]bool{}
	for _, adj := range g.adjs {
		if !seen[adj.nbr.String()] {
			seen[adj.nbr.String()] = true
			out = append(out, adj.nbr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// reoriginate bumps this module's sequence number, stores the fresh LSA
// and floods it to every neighbour, then recomputes routes.
func (g *IGP) reoriginate() {
	g.mu.Lock()
	g.seq++
	lsa := g.ownLSALocked()
	g.lsdb[lsa.Origin] = lsa
	nbrs := g.neighborsLocked()
	g.mu.Unlock()
	for _, nbr := range nbrs {
		g.sendUpdate(nbr, []*igpLSA{lsa})
	}
	g.recompute()
}

// sendUpdate conveys a batch of LSAs to a neighbouring IGP module,
// omitting the ones the neighbour originated itself. Never called with
// g.mu held: the in-process channel delivers synchronously and the
// receiver may flood back into us.
func (g *IGP) sendUpdate(to core.ModuleRef, lsas []*igpLSA) {
	var out []*igpLSA
	for _, lsa := range lsas {
		if lsa.Origin != to.String() {
			out = append(out, lsa)
		}
	}
	if len(out) == 0 {
		return
	}
	_ = g.Svc.Convey(g.Ref(), to, "igp-lsa", igpUpdate{LSAs: out})
}

// PipeAttached implements device.Module. The IGP end of an adjacency
// pipe is the upper end; forming the adjacency re-originates our LSA and
// synchronises the full database to the new neighbour (so a late joiner
// converges no matter the order the NM's concurrent executor created the
// pipes in).
func (g *IGP) PipeAttached(p *device.Pipe, side device.PipeSide) error {
	if side != device.SideUpper {
		return nil
	}
	nbr := p.UpperPeer
	if nbr.IsZero() || nbr.Name != core.NameIGP {
		return fmt.Errorf("%s: adjacency pipe %s has no IGP peer", g.Ref(), p.ID)
	}
	g.mu.Lock()
	g.adjs[p.ID] = &igpAdj{nbr: nbr}
	g.seq++
	own := g.ownLSALocked()
	g.lsdb[own.Origin] = own
	var db []*igpLSA
	for _, origin := range g.sortedOriginsLocked() {
		db = append(db, g.lsdb[origin])
	}
	var others []core.ModuleRef
	for _, n := range g.neighborsLocked() {
		if n != nbr {
			others = append(others, n)
		}
	}
	g.mu.Unlock()
	// One batched database sync to the new neighbour (including the
	// fresh self-LSA that now lists it), and the self-LSA alone to the
	// established ones so the rest of the network learns the new edge.
	g.sendUpdate(nbr, db)
	for _, n := range others {
		g.sendUpdate(n, []*igpLSA{own})
	}
	g.recompute()
	return nil
}

// PipeDeleted implements device.Module: losing an adjacency
// re-originates (so the rest of the network drops the edge), and losing
// the last adjacency withdraws every owned route and clears the
// database — the module's entire footprint goes with its pipes, which
// is what lets Withdraw/Destroy reconcile IGP state like any other
// component.
func (g *IGP) PipeDeleted(p *device.Pipe, side device.PipeSide) error {
	if side != device.SideUpper {
		return nil
	}
	g.mu.Lock()
	delete(g.adjs, p.ID)
	last := len(g.adjs) == 0
	if last {
		k := g.Svc.Kernel()
		for _, rt := range g.installed {
			rt := rt
			k.DelRouteWhere("main", func(r kernel.Route) bool {
				return r.Dst == rt.Dst && r.Via == rt.Via && r.Dev == rt.Dev
			})
		}
		g.installed = make(map[string]kernel.Route)
		g.lsdb = make(map[string]*igpLSA)
	}
	g.mu.Unlock()
	if !last {
		g.reoriginate()
	}
	return nil
}

func (g *IGP) sortedOriginsLocked() []string {
	origins := make([]string, 0, len(g.lsdb))
	for o := range g.lsdb {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	return origins
}

// HandleConvey implements device.Module: accept every LSA in the batch
// that is news (higher sequence number than what we hold), re-flood the
// accepted ones — as one batch per neighbour — and recompute routes
// once.
func (g *IGP) HandleConvey(from core.ModuleRef, kind string, body []byte) error {
	if kind != "igp-lsa" {
		return nil
	}
	var upd igpUpdate
	if err := json.Unmarshal(body, &upd); err != nil {
		return err
	}
	g.mu.Lock()
	var accepted []*igpLSA
	for _, lsa := range upd.LSAs {
		if lsa == nil {
			continue
		}
		if cur, ok := g.lsdb[lsa.Origin]; ok && cur.Seq >= lsa.Seq {
			continue
		}
		lsa.parse()
		g.lsdb[lsa.Origin] = lsa
		accepted = append(accepted, lsa)
	}
	if len(accepted) == 0 {
		g.mu.Unlock()
		return nil
	}
	var flood []core.ModuleRef
	for _, nbr := range g.neighborsLocked() {
		if nbr != from {
			flood = append(flood, nbr)
		}
	}
	g.mu.Unlock()
	for _, nbr := range flood {
		g.sendUpdate(nbr, accepted)
	}
	g.recompute()
	g.Svc.Kick()
	return nil
}

// recompute runs the shortest-path computation over the LSDB and
// reconciles the kernel's main table with the result: routes to every
// reachable remote subnet via the first-hop neighbour, installed and
// withdrawn incrementally so the module owns exactly the routes the
// current topology wants.
func (g *IGP) recompute() {
	g.mu.Lock()
	self := g.Ref().String()
	own, haveSelf := g.lsdb[self]
	if !haveSelf || len(g.adjs) == 0 {
		g.mu.Unlock()
		return
	}

	// Bidirectionally confirmed adjacency graph.
	edges := make(map[string][]string, len(g.lsdb))
	declared := func(lsa *igpLSA, nbr string) bool {
		for _, n := range lsa.Nbrs {
			if n == nbr {
				return true
			}
		}
		return false
	}
	for _, origin := range g.sortedOriginsLocked() {
		lsa := g.lsdb[origin]
		for _, nbr := range lsa.Nbrs {
			if peer, ok := g.lsdb[nbr]; ok && declared(peer, origin) {
				edges[origin] = append(edges[origin], nbr)
			}
		}
	}

	// BFS from self; firstHop[o] is the neighbour a packet toward o
	// leaves through. Deterministic: origins and edge lists are sorted.
	firstHop := map[string]string{}
	queue := []string{self}
	visited := map[string]bool{self: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range edges[cur] {
			if visited[next] {
				continue
			}
			visited[next] = true
			if cur == self {
				firstHop[next] = next
			} else {
				firstHop[next] = firstHop[cur]
			}
			queue = append(queue, next)
		}
	}

	// Local subnets are never routed: they are directly connected.
	local := map[netip.Prefix]bool{}
	for _, p := range own.prefixes {
		local[p.Masked()] = true
	}

	// Desired routes: every reachable remote subnet via the next-hop
	// address — the first-hop neighbour's address inside one of our
	// connected subnets.
	k := g.Svc.Kernel()
	desired := map[string]kernel.Route{}
	for _, origin := range g.sortedOriginsLocked() {
		if origin == self {
			continue
		}
		hop, reachable := firstHop[origin]
		if !reachable {
			continue
		}
		hopLSA := g.lsdb[hop]
		var via netip.Addr
		var dev string
		for _, p := range hopLSA.prefixes {
			if iface, _, ok := k.IfaceForSubnet(p.Addr()); ok {
				via, dev = p.Addr(), iface
				break
			}
		}
		if !via.IsValid() {
			continue // adjacency formed but no shared subnet yet
		}
		for _, p := range g.lsdb[origin].prefixes {
			dst := p.Masked()
			if local[dst] {
				continue
			}
			key := dst.String() + "|" + via.String() + "|" + dev
			if _, dup := desired[key]; !dup {
				desired[key] = kernel.Route{Dst: dst, Via: via, Dev: dev, MPLSKey: -1}
			}
		}
	}

	// Reconcile the kernel under the module lock (kernel calls never
	// re-enter the module, and the g.mu -> kernel.mu order is the one
	// every module method uses), so two concurrent recomputations cannot
	// interleave their installs and withdrawals.
	changed := false
	for key, rt := range g.installed {
		if _, keep := desired[key]; keep {
			continue
		}
		rt := rt
		k.DelRouteWhere("main", func(r kernel.Route) bool {
			return r.Dst == rt.Dst && r.Via == rt.Via && r.Dev == rt.Dev
		})
		delete(g.installed, key)
		changed = true
	}
	keys := make([]string, 0, len(desired))
	for key := range desired {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if _, have := g.installed[key]; have {
			continue
		}
		rt := desired[key]
		_ = k.AddRoute("", rt)
		g.installed[key] = rt
		changed = true
	}
	g.mu.Unlock()

	if changed {
		g.Svc.Kick()
	}
}

// RouteCount reports how many kernel routes the module currently owns
// (tests and operators poll it for convergence).
func (g *IGP) RouteCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.installed)
}

// ListFields implements device.Module: convergence status for operators
// and the NM's debugging walk.
func (g *IGP) ListFields(component string) (map[string]string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return map[string]string{
		"lsdb-size":   fmt.Sprint(len(g.lsdb)),
		"adjacencies": fmt.Sprint(len(g.adjs)),
		"routes":      fmt.Sprint(len(g.installed)),
	}, nil
}

// SelfTest implements device.Module: an IGP is healthy when every
// adjacency pipe's neighbour has a database entry confirming us back.
func (g *IGP) SelfTest(pipe core.PipeID) (bool, string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	adj, ok := g.adjs[pipe]
	if !ok {
		return false, fmt.Sprintf("no adjacency on pipe %s", pipe)
	}
	lsa, ok := g.lsdb[adj.nbr.String()]
	if !ok {
		return false, fmt.Sprintf("no LSA from neighbour %s", adj.nbr)
	}
	for _, n := range lsa.Nbrs {
		if n == g.Ref().String() {
			return true, fmt.Sprintf("adjacency with %s confirmed (seq %d)", adj.nbr, lsa.Seq)
		}
	}
	return false, fmt.Sprintf("neighbour %s does not list us", adj.nbr)
}
