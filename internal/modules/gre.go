package modules

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"
	"sync"

	"conman/internal/core"
	"conman/internal/device"
)

// GRE models the paper's GRE module (§III-B, Table III): a user-level
// wrapper around the kernel GRE implementation that negotiates keys,
// sequence numbers and checksums with its peer GRE module through the
// management channel and keeps all of that out of the NM's sight. The NM
// only ever expresses trade-offs: in-order delivery (=> sequence numbers)
// and low error-rate (=> checksums).
type GRE struct {
	device.BaseModule

	mu      sync.Mutex
	upPipes map[core.PipeID]*device.Pipe
	dnPipes map[core.PipeID]*device.Pipe
	// params holds per-peer negotiated parameters.
	params map[string]*greParams
	// tunnels maps a kernel interface name to the up/down pipes the
	// tunnel was built across.
	tunnels  map[string]greTun
	keySeq   uint32
	insmoded bool
	rules    []*device.SwitchRuleInstance
}

// greTun records which pipes a kernel tunnel belongs to, so teardown
// can match pipe ids exactly.
type greTun struct {
	up, dn core.PipeID
}

type greParams struct {
	IKey, OKey uint32
	Seq, Csum  bool
	Done       bool
}

// greProposal is the convey body of the key negotiation (Fig 3's
// "Key Values, Seq No. usage and other parameters" exchange).
type greProposal struct {
	// YourIKey is the key the initiator proposes the responder use for
	// its inbound direction (the initiator's okey).
	YourIKey uint32 `json:"your_ikey"`
	// MyIKey is the initiator's inbound key.
	MyIKey uint32 `json:"my_ikey"`
	Seq    bool   `json:"seq"`
	Csum   bool   `json:"csum"`
	Ack    bool   `json:"ack"`
}

// NewGRE creates a GRE module.
func NewGRE(svc device.Services, id core.ModuleID) *GRE {
	return &GRE{
		BaseModule: device.BaseModule{
			ModRef: core.Ref(core.NameGRE, svc.Device(), id),
			Svc:    svc,
		},
		upPipes: make(map[core.PipeID]*device.Pipe),
		dnPipes: make(map[core.PipeID]*device.Pipe),
		params:  make(map[string]*greParams),
		tunnels: make(map[string]greTun),
	}
}

// Tradeoffs advertised in Table III row xi.
func greTradeoffs() []core.Tradeoff {
	return []core.Tradeoff{
		{
			Give:  []core.Metric{core.MetricJitter, core.MetricDelay},
			Get:   []core.Metric{core.MetricOrdering},
			Scope: core.EndUp,
		},
		{
			Give:  []core.Metric{core.MetricLossRate},
			Get:   []core.Metric{core.MetricErrorRate},
			Scope: core.EndUp,
		},
	}
}

// Abstraction implements device.Module — Table III, row by row.
func (g *GRE) Abstraction() core.Abstraction {
	return core.Abstraction{
		Ref:  g.Ref(), // (i)   Name <GRE, device-id, module-id>
		Kind: core.KindData,
		Up: core.PipeSpec{ // (ii, iii)
			Connectable: []core.ModuleName{core.NameIPv4},
			Dependencies: []core.Dependency{{
				Kind:        core.DepTradeoff,
				Description: "Performance trade-offs to be specified",
			}},
		},
		Down: core.PipeSpec{ // (iv, v)
			Connectable: []core.ModuleName{core.NameIPv4},
		},
		// (vi) no physical pipes; (vii) peerable: GRE.
		Peerable: []core.ModuleName{core.NameGRE},
		// (viii) no filtering.
		Switch: core.SwitchSpec{ // (ix)
			Modes:       []core.SwitchMode{core.SwUpDown, core.SwDownUp},
			StateSource: core.StateLocal,
		},
		// (x) limited performance reporting.
		PerfReporting: []string{"rx-packets/pipe", "tx-packets/pipe"},
		// (xi) trade-offs; (xii) no enforcement; (xiii) no security.
		Tradeoffs: greTradeoffs(),
	}
}

// Actual implements device.Module.
func (g *GRE) Actual() core.ModuleState {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := core.ModuleState{Ref: g.Ref(), LowLevel: map[string]string{}}
	k := g.Svc.Kernel()
	for id, p := range g.upPipes {
		st.Pipes = append(st.Pipes, core.PipeState{
			ID: id, End: core.EndUp, Other: p.Upper, Peer: p.LowerPeer, Status: p.Status,
		})
	}
	for id, p := range g.dnPipes {
		st.Pipes = append(st.Pipes, core.PipeState{
			ID: id, End: core.EndDown, Other: p.Lower, Peer: p.UpperPeer, Status: p.Status,
		})
	}
	for iface := range g.tunnels {
		if tun, ok := k.Tunnel(iface); ok {
			st.LowLevel["tunnel:"+iface] = fmt.Sprintf("dev=%s local=%s remote=%s ikey=%d okey=%d seq=%v csum=%v",
				iface, tun.Local, tun.Remote, tun.IKey, tun.OKey, tun.ISeq, tun.ICsum)
		}
		rx, tx := k.IfaceCounters(iface)
		st.Perf.Metrics = map[string]float64{
			"rx-packets": float64(rx),
			"tx-packets": float64(tx),
		}
	}
	for _, r := range g.rules {
		st.SwitchRules = append(st.SwitchRules, core.SwitchRuleState{
			ID: r.ID, From: r.Rule.From, To: r.Rule.To, Match: r.Rule.Match, Via: r.Rule.Via,
			MatchResolved: r.MatchResolved, ViaResolved: r.ViaResolved,
		})
	}
	return st
}

// PipeAttached implements device.Module.
func (g *GRE) PipeAttached(p *device.Pipe, side device.PipeSide) error {
	var (
		propose bool
		peer    core.ModuleRef
		prop    greProposal
	)
	g.mu.Lock()
	switch side {
	case device.SideLower:
		// Our up pipe (IP payload above). Kick off parameter negotiation
		// with the peer GRE module if we are the initiator (the module
		// with the lexically smaller reference, so each pair negotiates
		// exactly once).
		g.upPipes[p.ID] = p
		peer = p.LowerPeer
		if !peer.IsZero() && peer.Name == core.NameGRE {
			pkey := peer.String()
			_, have := g.params[pkey]
			if !have && g.Ref().String() < pkey {
				pr := &greParams{
					IKey: 1001 + 2*g.keySeq,
					OKey: 2001 + 2*g.keySeq,
					Seq:  p.TradeoffChosen(core.MetricOrdering),
					Csum: p.TradeoffChosen(core.MetricErrorRate),
					Done: true,
				}
				g.keySeq++
				g.params[pkey] = pr
				prop = greProposal{YourIKey: pr.OKey, MyIKey: pr.IKey, Seq: pr.Seq, Csum: pr.Csum}
				propose = true
			}
		}
	case device.SideUpper:
		// Our down pipe (delivery IP below).
		g.dnPipes[p.ID] = p
	}
	g.mu.Unlock()
	// The convey can synchronously trigger the peer's reply (in-process
	// channel), which re-enters HandleConvey: send without holding g.mu.
	if propose {
		_ = g.Svc.Convey(g.Ref(), peer, "gre-params", prop)
	}
	return nil
}

// PipeDeleted implements device.Module: tears down tunnels and switch
// rules built on the pipe (their state vanishes with it, so a later
// re-Apply recreates both). The peer GRE module is told so it can reset
// its receive-sequence state.
func (g *GRE) PipeDeleted(p *device.Pipe, side device.PipeSide) error {
	peer := p.LowerPeer
	if side == device.SideUpper {
		peer = p.UpperPeer
	}
	g.mu.Lock()
	delete(g.upPipes, p.ID)
	delete(g.dnPipes, p.ID)
	torn := g.dropTunnelsLocked(p.ID)
	kept := g.rules[:0]
	for _, r := range g.rules {
		if r.Rule.From != p.ID && r.Rule.To != p.ID {
			kept = append(kept, r)
		}
	}
	g.rules = kept
	g.mu.Unlock()
	g.notifyTunnelDown(torn, peer)
	return nil
}

// dropTunnelsLocked deletes kernel tunnels whose up or down pipe is
// exactly the given pipe and reports how many went. Caller holds g.mu.
func (g *GRE) dropTunnelsLocked(id core.PipeID) int {
	torn := 0
	for iface, tun := range g.tunnels {
		if tun.up == id || tun.dn == id {
			g.Svc.Kernel().DelIface(iface)
			delete(g.tunnels, iface)
			torn++
		}
	}
	return torn
}

// notifyTunnelDown tells the peer GRE module the tunnel went away so it
// resets its receive-sequence protection: a re-created near end restarts
// transmit sequences at zero, which the peer would otherwise drop as
// replay (§II-D coordination through the NM, never on the data path).
func (g *GRE) notifyTunnelDown(torn int, peer core.ModuleRef) {
	if torn == 0 || peer.IsZero() || peer.Name != core.NameGRE {
		return
	}
	_ = g.Svc.Convey(g.Ref(), peer, "gre-down", struct{}{})
}

// DeleteRule removes a switch rule by id (invoked via delete()),
// tearing down the kernel tunnel the rule created.
func (g *GRE) DeleteRule(id string) error {
	g.mu.Lock()
	for i, r := range g.rules {
		if r.ID != id {
			continue
		}
		g.rules = append(g.rules[:i], g.rules[i+1:]...)
		torn := g.dropTunnelsLocked(r.Rule.From) + g.dropTunnelsLocked(r.Rule.To)
		var peer core.ModuleRef
		if up, ok := g.upPipes[r.Rule.From]; ok {
			peer = up.LowerPeer
		} else if up, ok := g.upPipes[r.Rule.To]; ok {
			peer = up.LowerPeer
		}
		g.mu.Unlock()
		g.notifyTunnelDown(torn, peer)
		return nil
	}
	g.mu.Unlock()
	return fmt.Errorf("%s: no switch rule %q", g.Ref(), id)
}

// HandleConvey implements device.Module: the responder half of the key
// negotiation, plus the teardown notification resetting sequence state.
func (g *GRE) HandleConvey(from core.ModuleRef, kind string, body []byte) error {
	if kind == "gre-down" {
		// The peer tore its tunnel end down: accept a restarted transmit
		// sequence when it comes back.
		g.mu.Lock()
		for iface := range g.tunnels {
			g.Svc.Kernel().ResetTunnelSeq(iface)
		}
		g.mu.Unlock()
		return nil
	}
	if kind != "gre-params" {
		return nil
	}
	var prop greProposal
	if err := json.Unmarshal(body, &prop); err != nil {
		return err
	}
	g.mu.Lock()
	pkey := from.String()
	if prop.Ack {
		if pr, ok := g.params[pkey]; ok {
			pr.Done = true
		}
		g.mu.Unlock()
		g.Svc.Kick()
		return nil
	}
	// The initiator proposed; adopt (our ikey = their "YourIKey").
	g.params[pkey] = &greParams{
		IKey: prop.YourIKey, OKey: prop.MyIKey,
		Seq: prop.Seq, Csum: prop.Csum, Done: true,
	}
	g.mu.Unlock()
	_ = g.Svc.Convey(g.Ref(), from, "gre-params", greProposal{Ack: true})
	g.Svc.Kick()
	return nil
}

// InstallSwitchRule implements device.Module: [up-pipe <=> down-pipe]
// binds the tunnel together. By now the peer negotiation supplies keys and
// options, and the IP module below supplies the endpoint addresses; the
// module then emits the same `ip tunnel add` command a human writes in
// Fig 7(a) — but nobody had to write it.
func (g *GRE) InstallSwitchRule(r *device.SwitchRuleInstance) error {
	g.mu.Lock()
	up, upOK := g.upPipes[r.Rule.From]
	dn, dnOK := g.dnPipes[r.Rule.To]
	if !upOK || !dnOK {
		up, upOK = g.upPipes[r.Rule.To]
		dn, dnOK = g.dnPipes[r.Rule.From]
	}
	g.mu.Unlock()
	if !upOK || !dnOK {
		return fmt.Errorf("%s: switch rule needs one up and one down pipe", g.Ref())
	}

	peer := up.LowerPeer
	g.mu.Lock()
	pr, haveParams := g.params[peer.String()]
	g.mu.Unlock()
	if peer.IsZero() {
		return fmt.Errorf("%s: up pipe %s has no peer", g.Ref(), up.ID)
	}
	if !haveParams || !pr.Done {
		return device.ErrPending
	}

	// Tunnel endpoints from the IP module below (which exchanged
	// addresses with its own peer).
	lowerIP, ok := g.Svc.LocalModule(dn.Lower.Module)
	if !ok {
		return fmt.Errorf("%s: no lower module %s", g.Ref(), dn.Lower)
	}
	fields, err := lowerIP.ListFields("peer:" + dn.LowerPeer.String())
	if err != nil {
		return err
	}
	if fields["local"] == "" || fields["remote"] == "" {
		return device.ErrPending
	}
	local, err1 := netip.ParseAddr(fields["local"])
	remote, err2 := netip.ParseAddr(fields["remote"])
	if err1 != nil || err2 != nil {
		return fmt.Errorf("%s: bad endpoint addresses %q/%q", g.Ref(), fields["local"], fields["remote"])
	}

	name := fmt.Sprintf("gre-%s-%s", up.ID, dn.ID)
	k := g.Svc.Kernel()
	g.mu.Lock()
	if _, exists := g.tunnels[name]; exists {
		g.mu.Unlock()
		return nil
	}
	needInsmod := !g.insmoded
	g.insmoded = true
	g.mu.Unlock()

	if needInsmod {
		if _, err := k.Exec("insmod /lib/modules/2.6.14-2/ip_gre.ko"); err != nil {
			return err
		}
	}
	cmd := fmt.Sprintf("ip tunnel add name %s mode gre remote %s local %s ikey %d okey %d",
		name, remote, local, pr.IKey, pr.OKey)
	if pr.Csum {
		cmd += " icsum ocsum"
	}
	if pr.Seq {
		cmd += " iseq oseq"
	}
	if _, err := k.Exec(cmd); err != nil {
		return err
	}
	g.mu.Lock()
	g.tunnels[name] = greTun{up: up.ID, dn: dn.ID}
	g.rules = append(g.rules, r)
	g.mu.Unlock()
	// The IP module above may be waiting for our device handle.
	g.Svc.Kick()
	return nil
}

// ListFields implements device.Module: exposes the tunnel device handle
// to the IP module above, and the negotiated low-level values to
// showActual/debugging.
func (g *GRE) ListFields(component string) (map[string]string, error) {
	comp := strings.TrimPrefix(component, "pipe:")
	g.mu.Lock()
	defer g.mu.Unlock()
	// Any pipe of ours maps onto the single tunnel built across it.
	if _, ok := g.upPipes[core.PipeID(comp)]; ok || comp == "self" {
		for iface := range g.tunnels {
			return map[string]string{"dev": iface}, nil
		}
		return map[string]string{}, nil
	}
	if _, ok := g.dnPipes[core.PipeID(comp)]; ok {
		for iface := range g.tunnels {
			return map[string]string{"dev": iface}, nil
		}
		return map[string]string{}, nil
	}
	return nil, fmt.Errorf("%s: unknown component %q", g.Ref(), component)
}

// SelfTest implements device.Module: checks IP reachability of the tunnel
// remote endpoint (detects the paper's "invalid filter rule blocking IP
// connectivity between the tunnel end points").
func (g *GRE) SelfTest(pipe core.PipeID) (bool, string) {
	g.mu.Lock()
	var iface string
	for i := range g.tunnels {
		iface = i
	}
	g.mu.Unlock()
	if iface == "" {
		return false, "no tunnel configured"
	}
	k := g.Svc.Kernel()
	tun, ok := k.Tunnel(iface)
	if !ok {
		return false, "tunnel interface missing"
	}
	token := probeToken()
	before := len(k.ProbeReplies())
	if err := k.SendProbeFrom(tun.Local, tun.Remote, token); err != nil {
		return false, err.Error()
	}
	for _, tok := range k.ProbeReplies()[before:] {
		if tok == token {
			return true, fmt.Sprintf("endpoint %s reachable", tun.Remote)
		}
	}
	return false, fmt.Sprintf("endpoint %s unreachable", tun.Remote)
}
