package modules

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sync"

	"conman/internal/core"
	"conman/internal/device"
	"conman/internal/kernel"
)

// IP models an IPv4 module. A device may host several (the paper's router
// A has a customer-facing virtual router g and an ISP-facing h); each owns
// its own policy-routing state in the shared kernel. The NM assigns
// addresses and knows address domains (§III-C); the module derives
// everything else: tunnel endpoints and next hops through conveyMessage
// exchanges with peer IP modules, device handles (tunnel interface names,
// MPLS keys) from the modules below it.
type IP struct {
	device.BaseModule

	mu     sync.Mutex
	domain string
	// addrs binds kernel interfaces to this module's assigned addresses.
	addrs map[string]netip.Prefix // guarded by mu

	pipes map[core.PipeID]*ipPipe // guarded by mu
	// peerAddrs caches addresses learned through ip-exchange conveys,
	// keyed by peer module ref string.
	peerAddrs map[string]netip.Addr // guarded by mu
	// exchangesDone dedups initiations.
	exchangesDone map[string]bool // guarded by mu

	rules []*device.SwitchRuleInstance // guarded by mu
	// ruleUndo maps an installed switch rule's id to the action undoing
	// its kernel state (routes, policy tables), run when the rule or a
	// pipe it references is deleted.
	ruleUndo map[string]func() // guarded by mu
	// delivery is the resolved customer-delivery next hop ([pipe =>
	// customer-pipe, gateway] rules); MPLS egress modules query it.
	delivery map[string]string // guarded by mu

	// extraConnectable extends the advertised connectable lists beyond
	// the paper's Table IV defaults (e.g. IPSec for the §II-F scenario).
	extraConnectable []core.ModuleName

	filters []*device.FilterRuleInstance // guarded by mu

	emittedRoutes []string // guarded by mu
}

type ipPipe struct {
	pipe *device.Pipe
	side device.PipeSide
}

// ipExchange is the convey body for address exchanges between peer IP
// modules (the paper's Fig 3 "IP-address of tunnel end-points" and
// "IP-address of next-hop" steps).
type ipExchange struct {
	Addr  string `json:"addr"`
	Reply bool   `json:"reply"`
}

// NewIP creates an IP module in the given address domain with interface
// address bindings (NM-assigned, §III-C). The bindings are applied to the
// kernel immediately.
func NewIP(svc device.Services, id core.ModuleID, domain string, addrs map[string]netip.Prefix) (*IP, error) {
	m := &IP{
		BaseModule: device.BaseModule{
			ModRef: core.Ref(core.NameIPv4, svc.Device(), id),
			Svc:    svc,
		},
		domain:        domain,
		addrs:         make(map[string]netip.Prefix),
		pipes:         make(map[core.PipeID]*ipPipe),
		peerAddrs:     make(map[string]netip.Addr),
		exchangesDone: make(map[string]bool),
		ruleUndo:      make(map[string]func()),
		delivery:      make(map[string]string),
	}
	for iface, p := range addrs {
		// NM-assigned interface addresses are device-lifetime state:
		// they outlive every rule and pipe this module will manage.
		if err := svc.Kernel().AddAddr(iface, p); err != nil { //conmanvet:owned-elsewhere
			return nil, err
		}
		m.addrs[iface] = p
	}
	return m, nil
}

// Domain returns the module's address domain.
func (m *IP) Domain() string { return m.domain }

// PrimaryAddr returns the module's first assigned address (deterministic
// by interface name order).
func (m *IP) PrimaryAddr() (netip.Addr, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	best := ""
	for iface := range m.addrs {
		if best == "" || iface < best {
			best = iface
		}
	}
	if best == "" {
		return netip.Addr{}, false
	}
	return m.addrs[best].Addr(), true
}

// AllowConnectable extends the module's advertised connectable lists
// (used by deployments with additional protocols such as IPSec).
func (m *IP) AllowConnectable(names ...core.ModuleName) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.extraConnectable = append(m.extraConnectable, names...)
}

// Abstraction implements device.Module (Table IV's IP rows).
func (m *IP) Abstraction() core.Abstraction {
	m.mu.Lock()
	extra := append([]core.ModuleName(nil), m.extraConnectable...)
	m.mu.Unlock()
	up := append([]core.ModuleName{core.NameIPv4, core.NameGRE}, extra...)
	down := append([]core.ModuleName{
		core.NameIPv4, core.NameGRE, core.NameMPLS, core.NameETH,
	}, extra...)
	return core.Abstraction{
		Ref:      m.Ref(),
		Kind:     core.KindData,
		Up:       core.PipeSpec{Connectable: up},
		Down:     core.PipeSpec{Connectable: down},
		Peerable: []core.ModuleName{core.NameIPv4},
		Switch: core.SwitchSpec{
			Modes: []core.SwitchMode{
				core.SwDownUp, core.SwUpDown, core.SwDownDown, core.SwUpUp,
			},
			StateSource: core.StateLocal,
			// Transit switching between subnets the module is not
			// directly connected to needs reachability state it cannot
			// derive from its own peer exchanges; a routing control
			// module (§II-F) advertising ProvidesState for the same
			// token supplies it. The NM matches the two by token
			// equality, exactly like IPSec's keying dependency on IKE.
			StateDependency: &core.Dependency{
				Kind:        core.DepExternalState,
				Token:       IPRouteToken,
				Description: "transit routes from a routing control module (IGP)",
			},
		},
		Filter: core.FilterSpec{
			Classifiers: []core.FilterClassifier{
				core.FilterByModule, core.FilterByDevice, core.FilterByModuleType,
			},
			Locations: []core.PipeEnd{core.EndUp, core.EndDown},
		},
		PerfReporting: []string{"rx-packets/pipe", "tx-packets/pipe"},
		Attributes: map[string]string{
			"address-domain": m.domain,
			// The paper notes the IP module relies on ARP for IP-to-MAC
			// mapping and exposes that in its abstraction (§III-B).
			"resolves-peers-via": "ARP",
		},
	}
}

// Actual implements device.Module.
func (m *IP) Actual() core.ModuleState {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := core.ModuleState{Ref: m.Ref(), LowLevel: map[string]string{}}
	for iface, p := range m.addrs {
		st.LowLevel["addr:"+iface] = p.String()
	}
	for id, ip := range m.pipes {
		ps := core.PipeState{ID: id, Status: ip.pipe.Status}
		if ip.side == device.SideUpper {
			ps.End = core.EndDown
			ps.Other = ip.pipe.Lower
			ps.Peer = ip.pipe.UpperPeer
		} else {
			ps.End = core.EndUp
			ps.Other = ip.pipe.Upper
			ps.Peer = ip.pipe.LowerPeer
		}
		st.Pipes = append(st.Pipes, ps)
	}
	for _, r := range m.rules {
		st.SwitchRules = append(st.SwitchRules, core.SwitchRuleState{
			ID: r.ID, From: r.Rule.From, To: r.Rule.To, Match: r.Rule.Match, Via: r.Rule.Via,
			MatchResolved: r.MatchResolved, ViaResolved: r.ViaResolved,
			HandleResolved: r.HandleResolved,
		})
	}
	for _, f := range m.filters {
		st.Filters = append(st.Filters, core.FilterRuleState{
			ID: f.ID, Rule: f.Rule, ResolvedFields: f.ResolvedFields,
		})
	}
	for peer, a := range m.peerAddrs {
		st.LowLevel["peer-addr:"+peer] = a.String()
	}
	for i, r := range m.emittedRoutes {
		st.LowLevel[fmt.Sprintf("route:%d", i)] = r
	}
	return st
}

// PipeAttached implements device.Module: triggers the address exchanges.
func (m *IP) PipeAttached(p *device.Pipe, side device.PipeSide) error {
	m.mu.Lock()
	m.pipes[p.ID] = &ipPipe{pipe: p, side: side}
	m.mu.Unlock()

	var peer core.ModuleRef
	switch side {
	case device.SideLower:
		// Our up pipe: something above us (GRE, or IP for IP-IP). The
		// peer is the far IP module — the tunnel's other endpoint.
		peer = p.LowerPeer
	case device.SideUpper:
		// Our down pipe. Exchange only with a next-hop IP peer across an
		// ETH hop (Fig 3's "IP-address of next-hop" step).
		if p.Lower.Name != core.NameETH {
			return nil
		}
		peer = p.UpperPeer
	}
	if peer.IsZero() || peer.Name != core.NameIPv4 {
		return nil
	}
	m.maybeInitiateExchange(peer)
	return nil
}

// PipeDeleted implements device.Module: forget the pipe and tear down
// any switch rules built on it (a rule's kernel state vanishes with its
// pipe, so a later re-Apply recreates both).
func (m *IP) PipeDeleted(p *device.Pipe, side device.PipeSide) error {
	m.mu.Lock()
	delete(m.pipes, p.ID)
	m.mu.Unlock()
	m.dropRulesOnPipe(p.ID)
	return nil
}

// dropRulesOnPipe removes installed switch rules referencing the pipe,
// running their kernel undo actions.
func (m *IP) dropRulesOnPipe(id core.PipeID) {
	m.mu.Lock()
	var undos []func()
	kept := m.rules[:0]
	for _, r := range m.rules {
		if r.Rule.From == id || r.Rule.To == id {
			if u := m.ruleUndo[r.ID]; u != nil {
				undos = append(undos, u)
			}
			delete(m.ruleUndo, r.ID)
			continue
		}
		kept = append(kept, r)
	}
	m.rules = kept
	m.mu.Unlock()
	for _, u := range undos {
		u()
	}
}

// maybeInitiateExchange starts the 2-message address exchange with a peer
// IP module. The module with the smaller reference initiates, so each
// pair exchanges exactly once — the paper's Table VI accounting (2 sent,
// 2 received at the NM per pair).
func (m *IP) maybeInitiateExchange(peer core.ModuleRef) {
	if m.Ref().String() >= peer.String() {
		return
	}
	key := peer.String()
	m.mu.Lock()
	if m.exchangesDone[key] {
		m.mu.Unlock()
		return
	}
	m.exchangesDone[key] = true
	m.mu.Unlock()

	addr, ok := m.PrimaryAddr()
	if !ok {
		return
	}
	_ = m.Svc.Convey(m.Ref(), peer, "ip-exchange", ipExchange{Addr: addr.String()})
}

// HandleConvey implements device.Module.
func (m *IP) HandleConvey(from core.ModuleRef, kind string, body []byte) error {
	if kind != "ip-exchange" {
		return nil
	}
	var x ipExchange
	if err := json.Unmarshal(body, &x); err != nil {
		return err
	}
	a, err := netip.ParseAddr(x.Addr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.peerAddrs[from.String()] = a
	m.mu.Unlock()

	if !x.Reply {
		// Answer with our own address: prefer the one facing the peer.
		my, ok := m.addrFacing(a)
		if !ok {
			my, ok = m.PrimaryAddr()
		}
		if ok {
			_ = m.Svc.Convey(m.Ref(), from, "ip-exchange", ipExchange{Addr: my.String(), Reply: true})
		}
	}
	m.Svc.Kick()
	return nil
}

// addrFacing picks this module's address on the subnet containing a.
func (m *IP) addrFacing(a netip.Addr) (netip.Addr, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.addrs {
		if p.Masked().Contains(a) {
			return p.Addr(), true
		}
	}
	return netip.Addr{}, false
}

// peerAddr fetches a learned peer address.
func (m *IP) peerAddr(peer core.ModuleRef) (netip.Addr, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.peerAddrs[peer.String()]
	return a, ok
}

// ListFields implements device.Module (§II-E): resolves pipes and peers
// to concrete fields.
func (m *IP) ListFields(component string) (map[string]string, error) {
	switch {
	case component == "self":
		out := map[string]string{"domain": m.domain}
		if a, ok := m.PrimaryAddr(); ok {
			out["address"] = a.String()
		}
		return out, nil
	case component == "delivery":
		m.mu.Lock()
		defer m.mu.Unlock()
		out := map[string]string{}
		for k, v := range m.delivery {
			out[k] = v
		}
		return out, nil
	case len(component) > 5 && component[:5] == "peer:":
		ref, err := core.ParseModuleRef(component[5:])
		if err != nil {
			return nil, err
		}
		out := map[string]string{}
		if a, ok := m.PrimaryAddr(); ok {
			out["local"] = a.String()
		}
		if a, ok := m.peerAddr(ref); ok {
			out["remote"] = a.String()
		}
		return out, nil
	default:
		m.mu.Lock()
		defer m.mu.Unlock()
		if ip, ok := m.pipes[core.PipeID(component)]; ok {
			out := map[string]string{}
			if a, ok := m.PrimaryAddr(); ok {
				out["address"] = a.String()
			}
			peer := ip.pipe.LowerPeer
			if ip.side == device.SideUpper {
				peer = ip.pipe.UpperPeer
			}
			if !peer.IsZero() {
				out["peer"] = peer.String()
			}
			return out, nil
		}
		return nil, fmt.Errorf("%s: unknown component %q", m.Ref(), component)
	}
}

// lowerHandle asks the module below a pipe how to send traffic into it:
// {"dev": iface} for ETH and GRE, {"mpls-key", "via"} for MPLS.
func (m *IP) lowerHandle(p *device.Pipe) (map[string]string, error) {
	lower, ok := m.Svc.LocalModule(p.Lower.Module)
	if !ok {
		return nil, fmt.Errorf("%s: no lower module %s", m.Ref(), p.Lower)
	}
	return lower.ListFields("pipe:" + string(p.ID))
}

// InstallSwitchRule implements device.Module. Three shapes arise in the
// paper's scripts:
//
//   - classified ingress ([P0, dst:C1-S2 => P1], Fig 7b/8b (3)): route the
//     customer prefix into the pipe below — a policy table + default route
//     for GRE/IP tunnels, an `mpls` route for MPLS.
//   - classified egress ([P1 => P0, gateway], Fig 7b/8b (4)): deliver
//     tunnel traffic to the customer gateway.
//   - plain bidirectional (Fig 2's (5): switch(c, P2, P3)): the outer
//     tunnel route `ip route add to <peer> via <next-hop> dev <iface>`.
func (m *IP) InstallSwitchRule(r *device.SwitchRuleInstance) error {
	from, ok1 := m.Svc.PipeByID(r.Rule.From)
	to, ok2 := m.Svc.PipeByID(r.Rule.To)
	if !ok1 || !ok2 {
		return fmt.Errorf("%s: switch rule references unknown pipes", m.Ref())
	}
	var (
		undo func()
		err  error
	)
	switch {
	case r.Rule.Match != nil:
		undo, err = m.installClassifiedIngress(r, from, to)
	case r.Rule.Via != "":
		undo, err = m.installClassifiedEgress(r, from, to)
	default:
		undo, err = m.installTransit(r, from, to)
	}
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.rules = append(m.rules, r)
	if undo != nil {
		m.ruleUndo[r.ID] = undo
	}
	m.mu.Unlock()
	m.Svc.Kick()
	return nil
}

// installClassifiedIngress handles [fromPipe, dst:<domain> => toPipe].
// The returned undo removes the routes/tables it installed.
func (m *IP) installClassifiedIngress(r *device.SwitchRuleInstance, from, to *device.Pipe) (func(), error) {
	if r.MatchResolved == "" {
		return nil, fmt.Errorf("%s: classifier %v not resolved by NM", m.Ref(), r.Rule.Match)
	}
	prefix, err := netip.ParsePrefix(r.MatchResolved)
	if err != nil {
		return nil, fmt.Errorf("%s: bad resolved classifier %q: %v", m.Ref(), r.MatchResolved, err)
	}
	handle, err := m.lowerHandle(to)
	if err != nil || (handle["dev"] == "" && handle["mpls-key"] == "") {
		return nil, device.ErrPending
	}
	// Record the low-level handle this rule embeds (the MPLS NHLFE key,
	// the tunnel interface) so showActual exposes it and the NM can
	// detect the embedded copy going stale when the provider churns
	// (§II-E dependency maintenance).
	r.HandleResolved = core.CanonicalHandle(handle)
	k := m.Svc.Kernel()
	// A virtual router forwards by definition (Fig 7a/8a command
	// "echo 1 > /proc/sys/net/ipv4/ip_forward").
	if !k.IPForward() {
		if _, err := k.Exec("echo 1 > /proc/sys/net/ipv4/ip_forward"); err != nil {
			return nil, err
		}
	}
	switch {
	case handle["mpls-key"] != "":
		// MPLS below: one route in main, exactly as Fig 8a.
		cmd := fmt.Sprintf("ip route add %s via %s mpls %s", prefix, handle["via"], handle["mpls-key"])
		if _, err := k.Exec(cmd); err != nil {
			return nil, err
		}
		m.recordRoute(cmd)
		return func() {
			k.DelRouteWhere("main", func(rt kernel.Route) bool {
				return rt.MPLSKey > 0 && rt.Dst == prefix
			})
		}, nil
	default:
		// GRE (or IP-IP) tunnel below: policy table + default route, as
		// Fig 7a lines (5)-(7).
		table := fmt.Sprintf("tun-%s-%s", r.Rule.From, r.Rule.To)
		num := 202 + k.NumberedTables()
		script := fmt.Sprintf("echo %d %s >> /etc/iproute2/rt_tables\nip rule add to %s table %s\nip route add default dev %s table %s",
			num, table, prefix, table, handle["dev"], table)
		if _, err := k.ExecScript(script); err != nil {
			return nil, err
		}
		m.recordRoute(script)
		return func() { k.DropTable(table) }, nil
	}
}

// installClassifiedEgress handles [fromPipe => toPipe, gateway]: deliver
// decapsulated traffic to the customer gateway out of toPipe. The
// returned undo removes the policy table and the delivery record.
func (m *IP) installClassifiedEgress(r *device.SwitchRuleInstance, from, to *device.Pipe) (func(), error) {
	if r.ViaResolved == "" {
		return nil, fmt.Errorf("%s: gateway token %q not resolved by NM", m.Ref(), r.Rule.Via)
	}
	gw, err := netip.ParseAddr(r.ViaResolved)
	if err != nil {
		return nil, fmt.Errorf("%s: bad resolved gateway %q: %v", m.Ref(), r.ViaResolved, err)
	}
	// The customer-facing pipe must sit on ETH; find its interface.
	outHandle, err := m.lowerHandle(to)
	if err != nil || outHandle["dev"] == "" {
		return nil, device.ErrPending
	}
	dev := outHandle["dev"]
	k := m.Svc.Kernel()

	// Record the delivery next hop for co-located egress modules (MPLS
	// pops straight to the customer gateway).
	m.mu.Lock()
	m.delivery["via"] = gw.String()
	m.delivery["dev"] = dev
	m.mu.Unlock()
	m.Svc.FieldsChanged(m.Ref(), "delivery", map[string]string{"via": gw.String(), "dev": dev})
	undoDelivery := func() {
		m.mu.Lock()
		delete(m.delivery, "via")
		delete(m.delivery, "dev")
		m.mu.Unlock()
	}

	// Note: on the pending paths below, the delivery record stays
	// published — a co-located MPLS module consumes it to configure its
	// egress, which in turn supplies the mpls-key this rule is waiting
	// for. Teardown only happens through the returned undo.
	inHandle, err := m.lowerHandle(from)
	if err != nil {
		return nil, device.ErrPending
	}
	if inHandle["mpls-key"] != "" {
		// MPLS handles egress delivery in its own NHLFE; nothing more
		// to install here.
		return undoDelivery, nil
	}
	if inHandle["dev"] == "" {
		// The module below has not derived its device handle yet (the
		// GRE tunnel is still negotiating, or the MPLS key will appear
		// once the LSR is configured): retry later.
		return nil, device.ErrPending
	}
	// Tunnel (GRE) ingress from `from`: policy-route by input interface,
	// as Fig 7a lines (8)-(10).
	table := fmt.Sprintf("tun-%s-%s", r.Rule.From, r.Rule.To)
	num := 202 + k.NumberedTables()
	script := fmt.Sprintf("echo %d %s >> /etc/iproute2/rt_tables\nip rule add iff %s table %s\nip route add default via %s dev %s table %s",
		num, table, inHandle["dev"], table, gw, dev, table)
	if _, err := k.ExecScript(script); err != nil {
		return nil, err
	}
	m.recordRoute(script)
	return func() {
		k.DropTable(table)
		undoDelivery()
	}, nil
}

// installTransit handles the plain bidirectional rule: route traffic for
// the up-pipe's remote peer via the next-hop learned across the down
// pipe (Fig 2 command (5) -> `ip route add to 204.9.169.1 via 204.9.168.1
// dev eth1`).
func (m *IP) installTransit(r *device.SwitchRuleInstance, from, to *device.Pipe) (func(), error) {
	// Identify which pipe is our up pipe (tunnel above) and which is the
	// down pipe (toward the wire).
	up, down := from, to
	if up.Lower.Module != m.Ref().Module {
		up, down = down, up
	}
	if up.Lower.Module != m.Ref().Module || down.Upper.Module != m.Ref().Module {
		// Neither orientation fits: treat as forwarding enable only.
		m.Svc.Kernel().SetIPForward(true)
		return nil, nil
	}
	// Destination: our peer on the up pipe (the tunnel's far endpoint).
	peer := up.LowerPeer
	if peer.IsZero() {
		m.Svc.Kernel().SetIPForward(true)
		return nil, nil
	}
	dst, ok := m.peerAddr(peer)
	if !ok {
		return nil, device.ErrPending
	}
	// Next hop: our peer across the down pipe, if it is a remote IP
	// module; a directly-connected peer needs no via.
	handle, err := m.lowerHandle(down)
	if err != nil || handle["dev"] == "" {
		return nil, device.ErrPending
	}
	k := m.Svc.Kernel()
	if _, err := k.Exec("echo 1 > /proc/sys/net/ipv4/ip_forward"); err != nil {
		return nil, err
	}
	nhPeer := down.UpperPeer
	var cmd string
	if !nhPeer.IsZero() && nhPeer.Name == core.NameIPv4 {
		nh, ok := m.peerAddr(nhPeer)
		if !ok {
			return nil, device.ErrPending
		}
		cmd = fmt.Sprintf("ip route add to %s via %s dev %s", dst, nh, handle["dev"])
	} else {
		cmd = fmt.Sprintf("ip route add to %s dev %s", dst, handle["dev"])
	}
	if _, err := k.Exec(cmd); err != nil {
		return nil, err
	}
	m.recordRoute(cmd)
	dstPrefix := netip.PrefixFrom(dst, dst.BitLen())
	dev := handle["dev"]
	return func() {
		k.DelRouteWhere("main", func(rt kernel.Route) bool {
			return rt.Dst == dstPrefix && rt.Dev == dev
		})
	}, nil
}

func (m *IP) recordRoute(s string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.emittedRoutes = append(m.emittedRoutes, s)
}

// InstallFilterRule implements device.Module (§II-E): resolve the abstract
// endpoints via listFieldsAndValues, then install a concrete kernel
// filter.
func (m *IP) InstallFilterRule(r *device.FilterRuleInstance) error {
	var f kernel.FilterEntry
	f.ID = r.ID
	f.Action = r.Rule.Action
	resolved := map[string]string{}

	if r.Rule.FromModule != nil {
		fields, err := m.Svc.QueryFields(m.Ref(), *r.Rule.FromModule, "self")
		if err != nil {
			return err
		}
		if a := fields["address"]; a != "" {
			addr, err := netip.ParseAddr(a)
			if err != nil {
				return fmt.Errorf("%s: filter source address %q: %v", m.Ref(), a, err)
			}
			f.SrcPrefix = netip.PrefixFrom(addr, addr.BitLen())
			resolved["src"] = a
		}
	}
	if r.Rule.ToModule != nil {
		fields, err := m.Svc.QueryFields(m.Ref(), *r.Rule.ToModule, "self")
		if err != nil {
			return err
		}
		if a := fields["address"]; a != "" {
			addr, err := netip.ParseAddr(a)
			if err != nil {
				return fmt.Errorf("%s: filter destination address %q: %v", m.Ref(), a, err)
			}
			f.DstPrefix = netip.PrefixFrom(addr, addr.BitLen())
			resolved["dst"] = a
		}
		if p := fields["port"]; p != "" {
			var port uint16
			if _, err := fmt.Sscanf(p, "%d", &port); err != nil {
				return fmt.Errorf("%s: filter port %q: %v", m.Ref(), p, err)
			}
			f.DstPort, f.HasPort = port, true
			resolved["dst-port"] = p
		}
	}
	m.Svc.Kernel().AddFilter(f)
	r.ResolvedFields = resolved
	r.KernelID = f.ID
	m.mu.Lock()
	m.filters = append(m.filters, r)
	m.mu.Unlock()
	return nil
}

// DeleteRule removes a filter or switch rule by id (invoked via
// delete()), undoing the kernel state the rule installed.
func (m *IP) DeleteRule(id string) error {
	m.mu.Lock()
	for i, r := range m.rules {
		if r.ID != id {
			continue
		}
		m.rules = append(m.rules[:i], m.rules[i+1:]...)
		undo := m.ruleUndo[id]
		delete(m.ruleUndo, id)
		m.mu.Unlock()
		if undo != nil {
			undo()
		}
		return nil
	}
	m.mu.Unlock()
	m.mu.Lock()
	found := false
	kept := m.filters[:0]
	for _, f := range m.filters {
		if f.ID != id {
			kept = append(kept, f)
			continue
		}
		found = true
	}
	m.filters = kept
	m.mu.Unlock()
	if !found {
		return fmt.Errorf("%s: no rule %q", m.Ref(), id)
	}
	m.Svc.Kernel().DelFilter(id)
	return nil
}

// ReResolveFilter re-resolves and reinstalls a filter after a dependency
// trigger fired (§II-E dependency maintenance).
func (m *IP) ReResolveFilter(id string) error {
	m.mu.Lock()
	var inst *device.FilterRuleInstance
	for _, f := range m.filters {
		if f.ID == id {
			inst = f
			break
		}
	}
	m.mu.Unlock()
	if inst == nil {
		return fmt.Errorf("%s: no filter %q", m.Ref(), id)
	}
	m.Svc.Kernel().DelFilter(id)
	m.mu.Lock()
	kept := m.filters[:0]
	for _, f := range m.filters {
		if f.ID != id {
			kept = append(kept, f)
		}
	}
	m.filters = kept
	m.mu.Unlock()
	return m.InstallFilterRule(inst)
}

// SelfTest implements device.Module: probe the peer across a pipe
// (§II-D.2 — "errors like path MTU problems are detected when NM asks the
// IP module to self test its connectivity to its peer").
func (m *IP) SelfTest(pipe core.PipeID) (bool, string) {
	m.mu.Lock()
	ip, ok := m.pipes[pipe]
	m.mu.Unlock()
	if !ok {
		return false, fmt.Sprintf("no pipe %s", pipe)
	}
	peer := ip.pipe.LowerPeer
	if ip.side == device.SideUpper {
		peer = ip.pipe.UpperPeer
	}
	if peer.IsZero() {
		return false, "pipe has no known peer"
	}
	dst, ok := m.peerAddr(peer)
	if !ok {
		return false, fmt.Sprintf("peer %s address unknown", peer)
	}
	k := m.Svc.Kernel()
	token := probeToken()
	before := len(k.ProbeReplies())
	src, _ := m.PrimaryAddr()
	if err := k.SendProbeFrom(src, dst, token); err != nil {
		return false, err.Error()
	}
	for _, tok := range k.ProbeReplies()[before:] {
		if tok == token {
			return true, fmt.Sprintf("probe to %s answered", dst)
		}
	}
	return false, fmt.Sprintf("probe to %s unanswered", dst)
}

var probeCounter uint32
var probeMu sync.Mutex

func probeToken() uint32 {
	probeMu.Lock()
	defer probeMu.Unlock()
	probeCounter++
	return 0xC0000000 + probeCounter
}
