package modules

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"conman/internal/core"
	"conman/internal/device"
)

// VLAN models the 802.1Q VLAN module on an L2 switch (Fig 9). The VLAN
// identifier, name and MTU are coordinated hop-by-hop between neighbouring
// VLAN modules through the management channel (the endpoint module with
// the smaller reference allocates them); switch rules then translate to
// the CatOS `set vlan` definition, while the ETH module emits the port
// configuration.
type VLAN struct {
	device.BaseModule

	mu sync.Mutex
	// vidBase seeds the allocator (the Fig 9 experiment uses 22).
	vidBase uint16
	vid     uint16
	name    string
	mtu     int

	endpoint     bool // has a customer-facing pipe (P1-style)
	farPeer      core.ModuleRef
	pipes        map[core.PipeID]*device.Pipe
	sides        map[core.PipeID]device.PipeSide
	pendingPeers []core.ModuleRef // exchanges waiting for the VID
	exchanged    map[string]bool
	initiatedAny bool
	responded    bool
	notified     bool
	rules        []*device.SwitchRuleInstance
	defEmitted   bool
}

// vlanMsg is the convey body of the VID coordination.
type vlanMsg struct {
	VID   uint16 `json:"vid"`
	Name  string `json:"name"`
	MTU   int    `json:"mtu"`
	Reply bool   `json:"reply"`
}

// NewVLAN creates a VLAN module. name/mtu are used when this module ends
// up allocating the VLAN (customer name "C1", MTU 1504 in Fig 9).
func NewVLAN(svc device.Services, id core.ModuleID, vidBase uint16, name string, mtu int) *VLAN {
	return &VLAN{
		BaseModule: device.BaseModule{
			ModRef: core.Ref(core.NameVLAN, svc.Device(), id),
			Svc:    svc,
		},
		vidBase:   vidBase,
		name:      name,
		mtu:       mtu,
		pipes:     make(map[core.PipeID]*device.Pipe),
		sides:     make(map[core.PipeID]device.PipeSide),
		exchanged: make(map[string]bool),
	}
}

// Abstraction implements device.Module.
func (v *VLAN) Abstraction() core.Abstraction {
	return core.Abstraction{
		Ref:      v.Ref(),
		Kind:     core.KindData,
		Up:       core.PipeSpec{Connectable: []core.ModuleName{core.NameETH}},
		Down:     core.PipeSpec{Connectable: []core.ModuleName{core.NameETH}},
		Peerable: []core.ModuleName{core.NameVLAN},
		Switch: core.SwitchSpec{
			Modes: []core.SwitchMode{
				core.SwUpDown, core.SwDownUp, core.SwDownDown,
			},
			StateSource: core.StateLocal,
		},
		PerfReporting: []string{"rx-packets/pipe", "tx-packets/pipe"},
	}
}

// Actual implements device.Module.
func (v *VLAN) Actual() core.ModuleState {
	v.mu.Lock()
	defer v.mu.Unlock()
	st := core.ModuleState{Ref: v.Ref(), LowLevel: map[string]string{}}
	if v.vid != 0 {
		st.LowLevel["vid"] = fmt.Sprintf("%d", v.vid)
		st.LowLevel["vlan-name"] = v.name
		st.LowLevel["mtu"] = fmt.Sprintf("%d", v.mtu)
	}
	for id, p := range v.pipes {
		end := core.EndDown
		other, peer := p.Lower, p.UpperPeer
		if v.sides[id] == device.SideLower {
			end = core.EndUp
			other, peer = p.Upper, p.LowerPeer
		}
		st.Pipes = append(st.Pipes, core.PipeState{ID: id, End: end, Other: other, Peer: peer, Status: p.Status})
	}
	for _, r := range v.rules {
		st.SwitchRules = append(st.SwitchRules, core.SwitchRuleState{
			ID: r.ID, From: r.Rule.From, To: r.Rule.To, Match: r.Rule.Match, Via: r.Rule.Via,
			MatchResolved: r.MatchResolved, ViaResolved: r.ViaResolved,
		})
	}
	return st
}

// PipeAttached implements device.Module.
func (v *VLAN) PipeAttached(p *device.Pipe, side device.PipeSide) error {
	v.mu.Lock()
	v.pipes[p.ID] = p
	v.sides[p.ID] = side

	var myPeer core.ModuleRef
	if side == device.SideLower {
		myPeer = p.LowerPeer
	} else {
		myPeer = p.UpperPeer
	}
	if !myPeer.IsZero() && myPeer.Name == core.NameVLAN {
		if side == device.SideLower {
			// P1-style endpoint pipe (ETH above us, far VLAN peer): if
			// we are the smaller endpoint we allocate the VLAN.
			v.endpoint = true
			v.farPeer = myPeer
			if v.Ref().String() < myPeer.String() && v.vid == 0 {
				v.vid = v.vidBase
			}
		} else {
			// P2-style neighbour pipe: coordinate the VID hop-by-hop.
			// Either side may initiate once it knows the VID. Restricting
			// initiation to the smaller reference (as first written)
			// deadlocks on arbitrary topologies: when the allocating
			// endpoint's chain reaches a hop whose VID-less side has the
			// smaller reference, the knowing side never speaks and the
			// ignorant side has nothing to say. The exchanged set keeps
			// the handshake to one exchange per pair regardless of who
			// fires first.
			if !v.exchanged[myPeer.String()] {
				v.pendingPeers = append(v.pendingPeers, myPeer)
			}
		}
	}
	v.mu.Unlock()
	v.tryExchanges()
	return nil
}

// tryExchanges sends VID coordination messages for which the VID is known.
func (v *VLAN) tryExchanges() {
	for {
		v.mu.Lock()
		if v.vid == 0 || len(v.pendingPeers) == 0 {
			v.mu.Unlock()
			return
		}
		peer := v.pendingPeers[0]
		v.pendingPeers = v.pendingPeers[1:]
		if v.exchanged[peer.String()] {
			v.mu.Unlock()
			continue
		}
		v.exchanged[peer.String()] = true
		v.initiatedAny = true
		body := vlanMsg{VID: v.vid, Name: v.name, MTU: v.mtu}
		v.mu.Unlock()
		_ = v.Svc.Convey(v.Ref(), peer, "vlan-vid", body)
	}
}

// PipeDeleted implements device.Module: rules built on the pipe go with
// it.
func (v *VLAN) PipeDeleted(p *device.Pipe, side device.PipeSide) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.pipes, p.ID)
	delete(v.sides, p.ID)
	kept := v.rules[:0]
	for _, r := range v.rules {
		if r.Rule.From == p.ID || r.Rule.To == p.ID {
			continue
		}
		kept = append(kept, r)
	}
	v.rules = kept
	v.dropDefinitionIfUnused()
	return nil
}

// dropDefinitionIfUnused undoes the CatOS VLAN definition once no rule
// uses this module any more, so a later re-Apply re-emits it. Caller
// holds v.mu.
func (v *VLAN) dropDefinitionIfUnused() {
	if len(v.rules) > 0 || !v.defEmitted {
		return
	}
	v.defEmitted = false
	if v.vid != 0 {
		v.Svc.Kernel().UndefineVLAN(v.vid)
	}
}

// DeleteRule removes a switch rule by id (invoked via delete()).
func (v *VLAN) DeleteRule(id string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, r := range v.rules {
		if r.ID != id {
			continue
		}
		v.rules = append(v.rules[:i], v.rules[i+1:]...)
		v.dropDefinitionIfUnused()
		return nil
	}
	return fmt.Errorf("%s: no switch rule %q", v.Ref(), id)
}

// HandleConvey implements device.Module.
func (v *VLAN) HandleConvey(from core.ModuleRef, kind string, body []byte) error {
	if kind != "vlan-vid" {
		return nil
	}
	var x vlanMsg
	if err := json.Unmarshal(body, &x); err != nil {
		return err
	}
	var reply bool
	v.mu.Lock()
	if v.vid == 0 {
		v.vid = x.VID
		v.name = x.Name
		v.mtu = x.MTU
	}
	if !x.Reply {
		v.responded = true
		reply = true
	}
	v.exchanged[from.String()] = true
	resp := vlanMsg{VID: v.vid, Name: v.name, MTU: v.mtu, Reply: true}
	v.mu.Unlock()
	if reply {
		_ = v.Svc.Convey(v.Ref(), from, "vlan-vid", resp)
	}
	v.tryExchanges()
	v.Svc.Kick()
	return nil
}

// InstallSwitchRule implements device.Module: emits the CatOS VLAN
// definition once the VID is settled (`set vlan 22 name C1 mtu 1504`).
func (v *VLAN) InstallSwitchRule(r *device.SwitchRuleInstance) error {
	v.mu.Lock()
	vid, name, mtu := v.vid, v.name, v.mtu
	v.mu.Unlock()
	if vid == 0 {
		return device.ErrPending
	}
	v.mu.Lock()
	emit := !v.defEmitted
	v.defEmitted = true
	v.mu.Unlock()
	if emit {
		cmd := fmt.Sprintf("set vlan %d name %s mtu %d", vid, name, mtu)
		if _, err := v.Svc.Kernel().Exec(cmd); err != nil {
			return err
		}
	}
	v.mu.Lock()
	v.rules = append(v.rules, r)
	notify := v.responded && !v.initiatedAny && !v.notified
	if notify {
		v.notified = true
	}
	v.mu.Unlock()
	if notify {
		// Far-end pure responder: report establishment (Table VI's one
		// unsolicited received message).
		_ = v.Svc.Notify(v.Ref(), "vlan-established", fmt.Sprintf("vid %d configured", vid))
	}
	// The ETH module's port rules may be waiting on our VID.
	v.Svc.Kick()
	return nil
}

// ListFields implements device.Module: the negotiated VLAN parameters for
// the co-located ETH module.
func (v *VLAN) ListFields(component string) (map[string]string, error) {
	comp := strings.TrimPrefix(component, "pipe:")
	v.mu.Lock()
	defer v.mu.Unlock()
	if comp == "self" || v.pipes[core.PipeID(comp)] != nil {
		out := map[string]string{}
		if v.vid != 0 {
			out["vid"] = fmt.Sprintf("%d", v.vid)
			out["vlan-name"] = v.name
			out["mtu"] = fmt.Sprintf("%d", v.mtu)
		}
		return out, nil
	}
	return nil, fmt.Errorf("%s: unknown component %q", v.Ref(), component)
}
