package modules

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"conman/internal/core"
	"conman/internal/device"
)

// The IPsec/IKE pair implements the paper's Fig 1 and §II-F example of a
// data module depending on externally generated state: the IPSec module
// advertises that its security features need keying material it cannot
// derive itself (Security.StateDependency with token "ipsec-keys"), and
// the IKE control module advertises ProvidesState for that token. The NM
// matches the two without understanding either protocol: it simply names
// the provider in the DependencyChoice when creating the IPSec pipe.

// IPSecKeyToken is the dependency token linking IPSec to IKE.
const IPSecKeyToken = "ipsec-keys"

// IKE is a control module (§II-F): it does not fit the data-plane
// abstraction; it advertises the state it can provide and negotiates
// session keys with its peer IKE module over the management channel
// (standing in for its UDP/500 exchange).
type IKE struct {
	device.BaseModule

	mu   sync.Mutex
	keys map[string]uint64 // peer IKE ref -> negotiated key
}

// ikeMsg is the key negotiation convey body.
type ikeMsg struct {
	Nonce uint64 `json:"nonce"`
	Reply bool   `json:"reply"`
}

// NewIKE creates an IKE control module.
func NewIKE(svc device.Services, id core.ModuleID) *IKE {
	return &IKE{
		BaseModule: device.BaseModule{
			ModRef: core.Ref(core.NameIKE, svc.Device(), id),
			Svc:    svc,
		},
		keys: make(map[string]uint64),
	}
}

// Abstraction implements device.Module: a control module advertising the
// dependencies it can satisfy (§II-F's "LCP advertises that it can
// satisfy dependency X" pattern).
func (k *IKE) Abstraction() core.Abstraction {
	return core.Abstraction{
		Ref:           k.Ref(),
		Kind:          core.KindControl,
		Down:          core.PipeSpec{Connectable: []core.ModuleName{core.NameUDP, core.NameIPv4}},
		Peerable:      []core.ModuleName{core.NameIKE},
		ProvidesState: []string{IPSecKeyToken},
	}
}

// Actual implements device.Module.
func (k *IKE) Actual() core.ModuleState {
	k.mu.Lock()
	defer k.mu.Unlock()
	st := core.ModuleState{Ref: k.Ref(), LowLevel: map[string]string{}}
	for peer, key := range k.keys {
		st.LowLevel["sa:"+peer] = fmt.Sprintf("key=%#x", key)
	}
	return st
}

// Negotiate establishes keying material with a peer IKE module (invoked
// by the co-located IPSec module when its pipe dependency names this IKE
// instance as provider). The initiator derives the key from both module
// references so both sides converge deterministically.
func (k *IKE) Negotiate(peer core.ModuleRef) (uint64, error) {
	k.mu.Lock()
	if key, ok := k.keys[peer.String()]; ok {
		k.mu.Unlock()
		return key, nil
	}
	k.mu.Unlock()
	if k.Ref().String() < peer.String() {
		key := deriveKey(k.Ref(), peer)
		k.mu.Lock()
		k.keys[peer.String()] = key
		k.mu.Unlock()
		if err := k.Svc.Convey(k.Ref(), peer, "ike-sa", ikeMsg{Nonce: key}); err != nil {
			return 0, err
		}
		return key, nil
	}
	// Responder side: the key arrives via HandleConvey.
	k.mu.Lock()
	defer k.mu.Unlock()
	if key, ok := k.keys[peer.String()]; ok {
		return key, nil
	}
	return 0, device.ErrPending
}

func deriveKey(a, b core.ModuleRef) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range []string{a.String(), b.String()} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return h
}

// HandleConvey implements device.Module.
func (k *IKE) HandleConvey(from core.ModuleRef, kind string, body []byte) error {
	if kind != "ike-sa" {
		return nil
	}
	var m ikeMsg
	if err := json.Unmarshal(body, &m); err != nil {
		return err
	}
	k.mu.Lock()
	k.keys[from.String()] = m.Nonce
	k.mu.Unlock()
	if !m.Reply {
		_ = k.Svc.Convey(k.Ref(), from, "ike-sa", ikeMsg{Nonce: m.Nonce, Reply: true})
	}
	k.Svc.Kick()
	return nil
}

// ---------------------------------------------------------------------------

// IPSec is a data module offering confidentiality/integrity whose keying
// state must be provided externally (Fig 1's dependency arrow to IKE).
type IPSec struct {
	device.BaseModule

	mu       sync.Mutex
	upPipes  map[core.PipeID]*device.Pipe
	dnPipes  map[core.PipeID]*device.Pipe
	provider core.ModuleRef // IKE instance chosen by the NM
	saKeys   map[string]uint64
}

// NewIPSec creates an IPSec module.
func NewIPSec(svc device.Services, id core.ModuleID) *IPSec {
	return &IPSec{
		BaseModule: device.BaseModule{
			ModRef: core.Ref(core.NameIPSec, svc.Device(), id),
			Svc:    svc,
		},
		upPipes: make(map[core.PipeID]*device.Pipe),
		dnPipes: make(map[core.PipeID]*device.Pipe),
		saKeys:  make(map[string]uint64),
	}
}

// Abstraction implements device.Module: note the security state
// dependency — the module can secure traffic but cannot key itself.
func (s *IPSec) Abstraction() core.Abstraction {
	return core.Abstraction{
		Ref:      s.Ref(),
		Kind:     core.KindData,
		Up:       core.PipeSpec{Connectable: []core.ModuleName{core.NameIPv4}},
		Down:     core.PipeSpec{Connectable: []core.ModuleName{core.NameIPv4}},
		Peerable: []core.ModuleName{core.NameIPSec},
		Switch: core.SwitchSpec{
			Modes:       []core.SwitchMode{core.SwUpDown, core.SwDownUp},
			StateSource: core.StateLocal,
		},
		Security: core.SecuritySpec{
			Integrity:       true,
			Authenticity:    true,
			Confidentiality: true,
			StateDependency: &core.Dependency{
				Kind:        core.DepExternalState,
				Token:       IPSecKeyToken,
				Description: "keying material from a control module (IKE)",
			},
		},
	}
}

// PipeAttached implements device.Module: the up-pipe's dependency choice
// must name an IKE provider; the module then asks it for keys.
func (s *IPSec) PipeAttached(p *device.Pipe, side device.PipeSide) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch side {
	case device.SideLower:
		// Find the provider the NM chose for our keying dependency.
		for _, c := range p.Satisfy {
			if c.Token == IPSecKeyToken && c.Provider != "" {
				ref, err := core.ParseModuleRef(c.Provider)
				if err != nil {
					return fmt.Errorf("%s: bad provider %q: %v", s.Ref(), c.Provider, err)
				}
				s.provider = ref
			}
		}
		if s.provider.IsZero() {
			return fmt.Errorf("%s: pipe created without an %s provider", s.Ref(), IPSecKeyToken)
		}
		s.upPipes[p.ID] = p
	case device.SideUpper:
		s.dnPipes[p.ID] = p
	}
	return nil
}

// InstallSwitchRule implements device.Module: binds the SA together once
// IKE has keys for the peer's IKE instance.
func (s *IPSec) InstallSwitchRule(r *device.SwitchRuleInstance) error {
	s.mu.Lock()
	var up *device.Pipe
	for _, p := range s.upPipes {
		if p.ID == r.Rule.From || p.ID == r.Rule.To {
			up = p
		}
	}
	provider := s.provider
	s.mu.Unlock()
	if up == nil {
		return fmt.Errorf("%s: switch rule pipes not attached", s.Ref())
	}
	ike, ok := s.Svc.LocalModule(provider.Module)
	if !ok {
		return fmt.Errorf("%s: provider %s not on this device", s.Ref(), provider)
	}
	ikeMod, ok := ike.(*IKE)
	if !ok {
		return fmt.Errorf("%s: provider %s is not an IKE module", s.Ref(), provider)
	}
	// The peer's IKE instance lives on the peer IPSec module's device,
	// conventionally with the same module id as ours.
	peerIKE := core.Ref(core.NameIKE, up.LowerPeer.Device, provider.Module)
	key, err := ikeMod.Negotiate(peerIKE)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.saKeys[up.LowerPeer.String()] = key
	s.mu.Unlock()
	s.Svc.Kick()
	return nil
}

// SAKey reports the security association key for a peer (tests/operators).
func (s *IPSec) SAKey(peer core.ModuleRef) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.saKeys[peer.String()]
	return k, ok
}

// Actual implements device.Module.
func (s *IPSec) Actual() core.ModuleState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := core.ModuleState{Ref: s.Ref(), LowLevel: map[string]string{}}
	for peer, key := range s.saKeys {
		var kb [8]byte
		binary.BigEndian.PutUint64(kb[:], key)
		st.LowLevel["sa-key:"+peer] = fmt.Sprintf("%x", kb)
	}
	if !s.provider.IsZero() {
		st.LowLevel["key-provider"] = s.provider.String()
	}
	return st
}
